(* emmver — command-line front end of the verification platform. *)

open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun e ->
        Format.printf "%-20s %s@." e.Designs.Registry.name e.Designs.Registry.description)
      (Designs.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in designs") Term.(const run $ const ())

let design_arg =
  let doc =
    "Design name (see $(b,emmver list)), or a path to an .emn netlist file."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DESIGN" ~doc)

let load_design name =
  match Serve.load_design name with
  | Ok net -> net
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2

let props_cmd =
  let run design =
    let net = load_design design in
    List.iter (fun (name, _) -> print_endline name) (Netlist.properties net)
  in
  Cmd.v
    (Cmd.info "props" ~doc:"List the safety properties of a design")
    Term.(const run $ design_arg)

let stats_cmd =
  let run design =
    let net = load_design design in
    Format.printf "netlist: %a@." Netlist.pp_stats (Netlist.stats net);
    let expanded = Explicitmem.expand net in
    Format.printf "explicit model: %a@." Netlist.pp_stats (Netlist.stats expanded);
    List.iter
      (fun m ->
        Format.printf "memory %s: AW=%d DW=%d, %d write / %d read ports@."
          (Netlist.memory_name m) (Netlist.memory_addr_width m)
          (Netlist.memory_data_width m) (Netlist.num_write_ports m)
          (Netlist.num_read_ports m))
      (Netlist.memories net)
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Show model sizes for a design (EMM vs explicit)")
    Term.(const run $ design_arg)

let method_arg =
  let doc =
    "Verification method: emm (BMC-3), emm-falsify (BMC-2), emm-pba, explicit \
     (BMC-1 on the expanded model), explicit-pba, abstract (memories removed), bdd."
  in
  Arg.(value & opt string "emm" & info [ "m"; "method" ] ~docv:"METHOD" ~doc)

let property_arg =
  let doc = "Property to check; defaults to every property of the design." in
  Arg.(value & opt (some string) None & info [ "p"; "property" ] ~docv:"PROP" ~doc)

let depth_arg =
  let doc = "Maximum BMC depth." in
  Arg.(value & opt int 100 & info [ "k"; "max-depth" ] ~docv:"DEPTH" ~doc)

let timeout_arg =
  let doc = "Wall-clock timeout in seconds per property." in
  Arg.(value & opt (some float) None & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc)

let show_trace_arg =
  let doc = "Print the counterexample trace when a property is falsified." in
  Arg.(value & flag & info [ "trace" ] ~doc)

let vcd_arg =
  let doc = "Write the counterexample as a VCD waveform to this file." in
  Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc)

let jobs_arg =
  let doc =
    "Verify properties in parallel over this many forked worker processes \
     (1 = sequential, in-process). Results are reported in property order \
     and verdicts do not depend on the job count; a worker that crashes or \
     overruns its deadline only loses its own property."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let domains_arg =
  let doc =
    "Race every SAT query over this many diversified in-process CDCL \
     instances (OCaml domains) that exchange learnt glue clauses \
     (1 = sequential solving). Verdicts do not depend on the domain count."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)

let no_share_arg =
  let doc =
    "With $(b,--domains N), disable learnt-clause exchange between the \
     racing instances (pure diversified racing)."
  in
  Arg.(value & flag & info [ "no-share" ] ~doc)

let certify_arg =
  let doc =
    "Certify every verdict: DRAT-check the solver refutations behind proofs \
     and bounded-safe answers, replay counterexamples on the concrete design. \
     Prints one certificate line per property (drat-checked, trace-replayed, \
     refuted or unchecked)."
  in
  Arg.(value & flag & info [ "certify" ] ~doc)

let proof_dir_arg =
  let doc = "With $(b,--certify), dump each run's DRAT derivation under this directory." in
  Arg.(value & opt (some string) None & info [ "proof-dir" ] ~docv:"DIR" ~doc)

let conflict_budget_arg =
  let doc =
    "Conflicts allowed per SAT query before the run gives up (exit code 4)."
  in
  Arg.(value & opt (some int) None & info [ "conflict-budget" ] ~docv:"N" ~doc)

let learnt_mb_arg =
  let doc = "Learnt-clause database ceiling in MB, same failure mode." in
  Arg.(value & opt (some float) None & info [ "learnt-mb" ] ~docv:"MB" ~doc)

let trace_out_arg =
  let doc =
    "Write a structured trace of the run (spans per unroll depth with \
     encode/solve/certify children, solver counters, merged worker spans \
     under $(b,-j N)) to this file: Chrome trace_event JSON loadable in \
     Perfetto, or JSON-lines if the file ends in .jsonl. The \
     $(b,EMMVER_TRACE) environment variable is an equivalent default."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let cache_flag_arg =
  let doc =
    "Consult and populate the persistent verification-result cache: verdicts \
     are keyed by the property's canonical cone structure plus the \
     verdict-relevant options, counterexample hits are replayed before being \
     believed, and with $(b,--certify) proof hits are only served after their \
     stored DRAT evidence passes the independent checker again."
  in
  Arg.(value & flag & info [ "cache" ] ~doc)

let no_cache_arg =
  let doc = "Force the result cache off (overrides $(b,--cache) and $(b,--cache-dir))." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_dir_arg =
  let doc =
    "Result-cache directory (implies $(b,--cache)). Default: \
     $(b,\\$EMMVER_CACHE_DIR), else $(b,\\$XDG_CACHE_HOME/emmver), else \
     $(b,~/.cache/emmver)."
  in
  Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)

(* [--cache-dir] implies [--cache]; [--no-cache] beats both (so scripts can
   export a blanket alias and still switch caching off per run). *)
let cache_options ?(default = false) ~cache ~no_cache ~cache_dir options =
  { options with Emmver.cache = (default || cache || cache_dir <> None) && not no_cache;
    cache_dir }

let fallback_arg =
  let doc =
    "Comma-separated engine fallback chain (e.g. emm,explicit,bdd): run each \
     property under the resilience policy, retrying a killed worker once and \
     degrading to the next engine when one fails or exhausts its budgets."
  in
  Arg.(value & opt (some string) None & info [ "fallback" ] ~docv:"M1,M2,..." ~doc)

let parse_method name =
  match Emmver.method_of_string (String.trim name) with
  | Ok m -> m
  | Error msg ->
    Format.eprintf "%s@." msg;
    exit 2

let policy_of_fallback = function
  | None -> None
  | Some s ->
    let names = List.map String.trim (String.split_on_char ',' s) in
    List.iter (fun n -> ignore (parse_method n)) names;
    Some { Policy.default with Policy.fallback = names }

(* Exit codes: 0 = every property proved (or honestly inconclusive with no
   error), 1 = genuine falsification, 2 = usage, 4 = a budget ran out,
   5 = an infrastructure error (dead worker, encode error, refuted
   certificate).  Falsification dominates errors; a non-budget error
   dominates a mere exhausted budget. *)
let rank_of_outcome (o : Emmver.outcome) =
  match (o.Emmver.conclusion, o.Emmver.error) with
  | Emmver.Falsified { genuine = Some false; _ }, _ -> 0
  | Emmver.Falsified _, _ -> 3
  | _, Some (Policy.Budget_exhausted _) -> 1
  | _, Some _ -> 2
  | _, None -> 0

let exit_of_rank = function 3 -> 1 | 2 -> 5 | 1 -> 4 | _ -> 0

(* [pp_outcome] already reports checked certificates; by default this only
   covers the unchecked case so --certify runs always show exactly one
   certificate line. *)
let print_certificate ?(always = false) outcome =
  let cert = outcome.Emmver.certificate in
  let unchecked = match cert with Cert.Unchecked _ -> true | _ -> false in
  if always || unchecked then
    Format.printf "  certificate: %s@." (Cert.label cert)

let verify_cmd =
  let run design method_name property max_depth timeout_s show_trace vcd jobs certify
      proof_dir conflict_budget learnt_mb_budget fallback trace_out domains no_share
      cache no_cache cache_dir =
    (* The verdict rank is computed inside [run_with_trace] and [exit]
       happens after it, so the trace file is written on every path. *)
    let rank =
      Obs.run_with_trace ?out:trace_out ~label:"run" @@ fun () ->
    let net = load_design design in
    let method_ = parse_method method_name in
    let options =
      {
        Emmver.default_options with
        max_depth;
        timeout_s;
        certify;
        proof_dir;
        conflict_budget;
        learnt_mb_budget;
        domains;
        share_clauses = not no_share;
      }
      |> cache_options ~cache ~no_cache ~cache_dir
    in
    let policy = policy_of_fallback fallback in
    let props =
      match property with
      | Some p -> [ p ]
      | None -> List.map fst (Netlist.properties net)
    in
    let worst = ref 0 in
    List.iter
      (fun (prop, outcome) ->
        Format.printf "@[<v 2>%s [%s]:@,%a@]@." prop
          (Emmver.method_to_string method_)
          Emmver.pp_outcome outcome;
        if certify then print_certificate outcome;
        (match outcome.Emmver.emm_counts with
        | Some c -> Format.printf "  EMM constraints: %a@." Emm.pp_counts c
        | None -> ());
        (match outcome.Emmver.abstraction with
        | Some a -> Format.printf "  %a@." (Pba.pp_abstraction net) a
        | None -> ());
        worst := max !worst (rank_of_outcome outcome);
        match outcome.Emmver.conclusion with
        | Emmver.Falsified { trace = Some t; _ } ->
          if show_trace then Format.printf "%a@." Bmc.Trace.pp t;
          (match vcd with
          | Some path ->
            Bmc.Vcd.write_file net t path;
            Format.printf "  waveform written to %s@." path
          | None -> ())
        | Emmver.Falsified _ | Emmver.Proved _ | Emmver.Inconclusive _ -> ())
      (Emmver.verify_many ~options ~jobs ?policy ~method_ net ~properties:props);
    !worst
    in
    exit (exit_of_rank rank)
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify safety properties of a design")
    Term.(
      const run $ design_arg $ method_arg $ property_arg $ depth_arg $ timeout_arg
      $ show_trace_arg $ vcd_arg $ jobs_arg $ certify_arg $ proof_dir_arg
      $ conflict_budget_arg $ learnt_mb_arg $ fallback_arg $ trace_out_arg
      $ domains_arg $ no_share_arg $ cache_flag_arg $ no_cache_arg $ cache_dir_arg)

let portfolio_cmd =
  let methods_arg =
    let doc =
      "Comma-separated engines to race (default: emm,explicit,bdd). See \
       $(b,--method) of $(b,emmver verify) for the names."
    in
    Arg.(value & opt (some string) None & info [ "methods" ] ~docv:"M1,M2,..." ~doc)
  in
  let run design property max_depth timeout_s methods certify trace_out domains
      no_share cache no_cache cache_dir =
    let rank =
      Obs.run_with_trace ?out:trace_out ~label:"portfolio" @@ fun () ->
    let net = load_design design in
    let methods =
      match methods with
      | None -> Emmver.default_portfolio
      | Some s -> List.map parse_method (String.split_on_char ',' s)
    in
    (* [--domains N] composes with the fork race: each forked engine worker
       runs its SAT queries over an in-process Domain portfolio of N
       diversified instances.  The fork pool stays the crash-isolation
       layer; the domains share clauses inside one worker's address
       space. *)
    let options =
      {
        Emmver.default_options with
        max_depth;
        timeout_s;
        certify;
        domains;
        share_clauses = not no_share;
      }
      |> cache_options ~cache ~no_cache ~cache_dir
    in
    let props =
      match property with
      | Some p -> [ p ]
      | None -> List.map fst (Netlist.properties net)
    in
    let worst = ref 0 in
    List.iter
      (fun prop ->
        let (winner, outcome), all =
          Emmver.portfolio ~options ~methods net ~property:prop
        in
        Format.printf "@[<v 2>%s: %a [won by %s, %.2fs]@]@." prop
          Emmver.pp_conclusion outcome.Emmver.conclusion
          (Emmver.method_to_string winner)
          outcome.Emmver.time_s;
        if certify then print_certificate ~always:true outcome;
        List.iter
          (fun (m, o) ->
            Format.printf "  %-12s %a@."
              (Emmver.method_to_string m)
              Emmver.pp_conclusion o.Emmver.conclusion)
          all;
        worst := max !worst (rank_of_outcome outcome))
      props;
    !worst
    in
    exit (exit_of_rank rank)
  in
  Cmd.v
    (Cmd.info "portfolio"
       ~doc:
         "Race several engines on each property in parallel forked workers; \
          the first conclusive verdict wins and the losers are killed")
    Term.(
      const run $ design_arg $ property_arg $ depth_arg $ timeout_arg $ methods_arg
      $ certify_arg $ trace_out_arg $ domains_arg $ no_share_arg $ cache_flag_arg
      $ no_cache_arg $ cache_dir_arg)

let cache_cmd =
  let action_arg =
    let doc = "$(b,stats) (default), $(b,clear), or $(b,gc) (evict oldest entries down to $(b,--max-mb))." in
    Arg.(
      value
      & pos 0 (enum [ ("stats", `Stats); ("clear", `Clear); ("gc", `Gc) ]) `Stats
      & info [] ~docv:"ACTION" ~doc)
  in
  let max_mb_arg =
    let doc = "Size budget for $(b,gc), in MB." in
    Arg.(value & opt int 512 & info [ "max-mb" ] ~docv:"MB" ~doc)
  in
  let max_age_h_arg =
    let doc =
      "With $(b,gc), also evict entries not used (loaded) for this many hours."
    in
    Arg.(value & opt (some float) None & info [ "max-age-h" ] ~docv:"HOURS" ~doc)
  in
  let run action cache_dir max_mb max_age_h =
    let cfg = Vcache.config ?dir:cache_dir () in
    match action with
    | `Stats ->
      let s = Vcache.stats cfg in
      Format.printf "store: %s@." cfg.Vcache.dir;
      Format.printf "entries: %d (%.2f MB)@." s.Vcache.entries
        (float_of_int s.Vcache.bytes /. 1048576.0);
      Format.printf "  proved: %d, falsified: %d, bounded: %d@." s.Vcache.proved
        s.Vcache.falsified s.Vcache.bounded;
      Format.printf "  carrying evidence payloads: %d@." s.Vcache.with_payload
    | `Clear ->
      let n = Vcache.clear cfg in
      Format.printf "deleted %d entries from %s@." n cfg.Vcache.dir
    | `Gc ->
      (* Say which directory was resolved and be honest when there is
         nothing to collect — a typo'd --cache-dir used to "succeed". *)
      if not (Sys.file_exists cfg.Vcache.dir) then begin
        Format.printf "gc %s: store directory does not exist, nothing to collect@."
          cfg.Vcache.dir;
        exit 0
      end;
      let policy =
        Vcache.gc_policy ~max_bytes:(max_mb * 1048576)
          ?max_age_s:(Option.map (fun h -> h *. 3600.0) max_age_h)
          ()
      in
      let r = Vcache.maintain cfg policy in
      if r.Vcache.evicted_age + r.Vcache.evicted_size + r.Vcache.kept = 0 then
        Format.printf "gc %s: store is empty, nothing to collect@." cfg.Vcache.dir
      else
        Format.printf
          "gc %s: evicted %d entries (%d by age, %d by size of which %d \
           never-hit), kept %d (%.2f MB, budget %d MB)@."
          cfg.Vcache.dir
          (r.Vcache.evicted_age + r.Vcache.evicted_size)
          r.Vcache.evicted_age r.Vcache.evicted_size r.Vcache.evicted_cold
          r.Vcache.kept
          (float_of_int r.Vcache.kept_bytes /. 1048576.0)
          max_mb
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Administer the persistent verification-result cache")
    Term.(const run $ action_arg $ cache_dir_arg $ max_mb_arg $ max_age_h_arg)

let diff_verify_cmd =
  let old_design_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"OLD" ~doc:"The previously verified design (name or .emn/.aag path).")
  in
  let new_design_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"NEW" ~doc:"The edited design to re-verify.")
  in
  let run old_design new_design method_name max_depth timeout_s jobs trace_out no_cache
      cache_dir =
    let rank =
      Obs.run_with_trace ?out:trace_out ~label:"diff-verify" @@ fun () ->
    let before = load_design old_design in
    let net = load_design new_design in
    let method_ = parse_method method_name in
    (* Incremental re-verification is the cache's flagship use, so the cache
       defaults ON here; [--no-cache] still degrades it to a plain full
       re-run with change annotations. *)
    let options =
      { Emmver.default_options with max_depth; timeout_s }
      |> cache_options ~default:true ~cache:false ~no_cache ~cache_dir
    in
    let props = List.map fst (Netlist.properties net) in
    let worst = ref 0 in
    let unchanged = ref 0 and hits = ref 0 in
    List.iter
      (fun (prop, status, outcome) ->
        (if status = Emmver.Delta_unchanged then incr unchanged);
        (if outcome.Emmver.cache = Emmver.Cache_hit then incr hits);
        Format.printf "@[<v 2>%s [%s, %s%s]:@,%a@]@." prop
          (Emmver.method_to_string method_)
          (Emmver.delta_status_to_string status)
          (match outcome.Emmver.cache with
          | Emmver.Cache_hit -> ", cache hit"
          | Emmver.Cache_dedup -> ", deduplicated"
          | Emmver.Cache_miss -> ", re-verified"
          | Emmver.Cache_off -> "")
          Emmver.pp_conclusion outcome.Emmver.conclusion;
        worst := max !worst (rank_of_outcome outcome))
      (Emmver.verify_delta ~options ~jobs ~method_ ~before net ~properties:props);
    Format.printf "%d properties: %d unchanged cones, %d served from cache@."
      (List.length props) !unchanged !hits;
    !worst
    in
    exit (exit_of_rank rank)
  in
  Cmd.v
    (Cmd.info "diff-verify"
       ~doc:
         "Re-verify an edited design incrementally: classify each property's \
          verification cone as unchanged/changed/added against the old \
          design, then let the result cache serve every unchanged cone so \
          only the edit's blast radius reaches a solver")
    Term.(
      const run $ old_design_arg $ new_design_arg $ method_arg $ depth_arg $ timeout_arg
      $ jobs_arg $ trace_out_arg $ no_cache_arg $ cache_dir_arg)

let save_cmd =
  let file_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE" ~doc:"Output path: .emn (native) or .aag (AIGER, memory-free)")
  in
  let run design file =
    let net = load_design design in
    if Filename.check_suffix file ".aag" then
      (* AIGER has no memory modules: expand first if needed. *)
      let net = if Netlist.memories net = [] then net else Explicitmem.expand net in
      Aiger.save net file
    else Netio.save net file;
    Format.printf "wrote %s@." file
  in
  Cmd.v
    (Cmd.info "save"
       ~doc:"Serialize a design to an .emn netlist or .aag AIGER file")
    Term.(const run $ design_arg $ file_arg)

let races_cmd =
  let run design max_depth =
    let net = load_design design in
    match Emm.find_data_race ~max_depth net with
    | Some race ->
      Format.printf "data race on memory %s at depth %d between write ports %d and %d@."
        race.Emm.race_memory race.Emm.race_depth (fst race.Emm.race_ports)
        (snd race.Emm.race_ports);
      Format.printf "%a@." Bmc.Trace.pp race.Emm.race_trace;
      exit 1
    | None ->
      Format.printf "no data race reachable within depth %d@." max_depth
  in
  Cmd.v
    (Cmd.info "races" ~doc:"Search for write-write data races on multi-port memories")
    Term.(const run $ design_arg $ depth_arg)

let solve_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cnf" ~doc:"DIMACS CNF file")
  in
  let run file =
    let problem = Satsolver.Dimacs.parse_file file in
    let solver = Satsolver.Solver.create () in
    Satsolver.Dimacs.load_into solver problem;
    (match Satsolver.Solver.solve solver with
    | Satsolver.Solver.Sat ->
      print_endline "s SATISFIABLE";
      let buf = Buffer.create 256 in
      Buffer.add_string buf "v ";
      for v = 0 to problem.Satsolver.Dimacs.num_vars - 1 do
        if not (Satsolver.Solver.value_var solver v) then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int (v + 1));
        Buffer.add_char buf ' '
      done;
      Buffer.add_string buf "0";
      print_endline (Buffer.contents buf)
    | Satsolver.Solver.Unsat ->
      print_endline "s UNSATISFIABLE";
      Format.printf "c core: %d of %d clauses@."
        (List.length (Satsolver.Solver.unsat_core solver))
        (List.length problem.Satsolver.Dimacs.clauses));
    Format.printf "c %a@." Satsolver.Solver.pp_stats solver
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Run the built-in CDCL solver on a DIMACS file")
    Term.(const run $ file_arg)

let socket_arg =
  let doc =
    "Unix-domain socket path of the daemon. Default: $(b,\\$EMMVER_SOCKET), \
     else /tmp/emmver-<uid>.sock."
  in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_cmd =
  let workers_arg =
    let doc = "Concurrent forked job workers. Default: the machine's core count." in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let max_queue_arg =
    let doc = "Queued-job bound; beyond it submissions get an immediate $(b,busy) reply." in
    Arg.(value & opt int 64 & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let gc_max_mb_arg =
    let doc = "Cache size watermark in MB: the server loop evicts LRU entries down to it." in
    Arg.(value & opt (some int) None & info [ "gc-max-mb" ] ~docv:"MB" ~doc)
  in
  let gc_max_age_h_arg =
    let doc = "Cache age watermark in hours: entries not used for this long are evicted." in
    Arg.(value & opt (some float) None & info [ "gc-max-age-h" ] ~docv:"HOURS" ~doc)
  in
  let gc_interval_arg =
    let doc = "Seconds between cache-maintenance sweeps." in
    Arg.(value & opt float 60.0 & info [ "gc-interval" ] ~docv:"SECONDS" ~doc)
  in
  let budget_wall_arg =
    let doc = "Per-job wall-clock ceiling in seconds; submissions are clamped to it." in
    Arg.(value & opt (some float) None & info [ "budget-wall" ] ~docv:"SECONDS" ~doc)
  in
  let budget_depth_arg =
    let doc = "Per-job BMC depth ceiling; submissions are clamped to it." in
    Arg.(value & opt (some int) None & info [ "budget-depth" ] ~docv:"DEPTH" ~doc)
  in
  let budget_conflicts_arg =
    let doc = "Conflict budget forced onto every job's SAT queries." in
    Arg.(value & opt (some int) None & info [ "budget-conflicts" ] ~docv:"N" ~doc)
  in
  let budget_learnt_mb_arg =
    let doc = "Learnt-clause ceiling in MB forced onto every job." in
    Arg.(value & opt (some float) None & info [ "budget-learnt-mb" ] ~docv:"MB" ~doc)
  in
  let quiet_arg =
    let doc = "Suppress the per-event log lines on stdout." in
    Arg.(value & flag & info [ "quiet" ] ~doc)
  in
  let journal_arg =
    let doc =
      "Write-ahead job journal path. Accepted jobs and undelivered results \
       survive a daemon crash or restart. Default: $(i,SOCKET).journal."
    in
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"PATH" ~doc)
  in
  let no_journal_arg =
    let doc =
      "Disable the job journal: a restart forgets the queue and client \
       disconnects cancel their jobs (the pre-v2 behavior)."
    in
    Arg.(value & flag & info [ "no-journal" ] ~doc)
  in
  let run socket workers max_queue no_cache cache_dir gc_max_mb gc_max_age_h
      gc_interval budget_wall budget_depth budget_conflicts budget_learnt_mb
      quiet journal no_journal =
    let socket = match socket with Some s -> s | None -> Serve.default_socket () in
    let journal =
      if no_journal then None
      else Some (match journal with Some p -> p | None -> socket ^ ".journal")
    in
    let cache_dir =
      if no_cache then Some None else Option.map Option.some cache_dir
    in
    let gc_policy =
      Vcache.gc_policy
        ?max_bytes:(Option.map (fun mb -> mb * 1048576) gc_max_mb)
        ?max_age_s:(Option.map (fun h -> h *. 3600.0) gc_max_age_h)
        ()
    in
    let budgets =
      {
        Policy.wall_s = budget_wall;
        conflicts = budget_conflicts;
        learnt_mb = budget_learnt_mb;
        max_depth = budget_depth;
      }
    in
    let cfg =
      Serve.Server.config ?workers ~max_queue ?cache_dir ~gc_policy
        ~gc_interval_s:gc_interval ~budgets ~quiet ?journal ~socket ()
    in
    match Serve.Server.run cfg with
    | () -> ()
    | exception Failure msg ->
      Format.eprintf "%s@." msg;
      exit 5
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the verification daemon: a long-lived process on a Unix-domain \
          socket that serves $(b,emmver client) submissions from a bounded \
          fair queue of forked workers, keeps the result cache warm and \
          self-maintained, and drains gracefully on SIGTERM (in-flight jobs \
          finish, queued jobs get shutdown replies). A write-ahead journal \
          (on by default) makes accepted jobs and undelivered results \
          survive crashes: a restarted daemon replays it and reconnecting \
          clients $(b,resume) their results")
    Term.(
      const run $ socket_arg $ workers_arg $ max_queue_arg $ no_cache_arg
      $ cache_dir_arg $ gc_max_mb_arg $ gc_max_age_h_arg $ gc_interval_arg
      $ budget_wall_arg $ budget_depth_arg $ budget_conflicts_arg
      $ budget_learnt_mb_arg $ quiet_arg $ journal_arg $ no_journal_arg)

(* The client cannot see the server-side [Policy.error]; it ranks from the
   wire fields instead: a genuine falsification beats everything, a killed
   worker is an infrastructure error, any other inconclusive is honest. *)
let rank_of_result (r : Serve.Proto.result_line) =
  match (r.Serve.Proto.r_verdict, r.Serve.Proto.r_genuine, r.Serve.Proto.r_reason) with
  | "falsified", Some false, _ -> 0
  | "falsified", _, _ -> 3
  | _, _, Some why when String.length why >= 13 && String.sub why 0 13 = "worker killed" -> 2
  | _ -> 0

let client_cmd =
  let action_arg =
    let doc =
      "$(b,ping), $(b,submit) DESIGN, $(b,poll) JOB, $(b,resume), \
       $(b,ack) JOB, $(b,metrics), or $(b,shutdown)."
    in
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("ping", `Ping);
                  ("submit", `Submit);
                  ("poll", `Poll);
                  ("resume", `Resume);
                  ("ack", `Ack);
                  ("metrics", `Metrics);
                  ("shutdown", `Shutdown);
                ]))
          None
      & info [] ~docv:"ACTION" ~doc)
  in
  let arg_arg =
    let doc = "The design to submit, or the job id to poll or ack." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"ARG" ~doc)
  in
  let client_id_arg =
    let doc = "Client (tenant) id declared to the server's fairness scheduler." in
    Arg.(value & opt (some string) None & info [ "client" ] ~docv:"ID" ~doc)
  in
  let request_id_arg =
    let doc = "Request id echoed in every reply." in
    Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID" ~doc)
  in
  let client_depth_arg =
    let doc = "Maximum BMC depth requested (the server may clamp it)." in
    Arg.(value & opt (some int) None & info [ "k"; "max-depth" ] ~docv:"DEPTH" ~doc)
  in
  let reply_timeout_arg =
    let doc = "Seconds to wait for each reply line." in
    Arg.(value & opt float 600.0 & info [ "reply-timeout" ] ~docv:"SECONDS" ~doc)
  in
  let retries_arg =
    let doc =
      "Retries after a $(b,busy)/draining reply or an unreachable daemon, \
       with capped jittered exponential backoff that honors the server's \
       retry hint. 0 disables retrying."
    in
    Arg.(value & opt int 5 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let no_ack_arg =
    let doc =
      "Do not acknowledge received results; a journalled server retains \
       them for a later $(b,resume)."
    in
    Arg.(value & flag & info [ "no-ack" ] ~doc)
  in
  let run action arg socket client property method_name max_depth timeout_s
      no_cache request_id reply_timeout retries no_ack =
    let socket = match socket with Some s -> s | None -> Serve.default_socket () in
    let tenant = Option.value client ~default:"cli" in
    let fail code msg =
      Format.eprintf "%s@." msg;
      exit code
    in
    let backoff = Serve.Backoff.create ~attempts:retries () in
    (* Shared retry driver: sleep per the backoff schedule (seeded by the
       server's hint when it gave one) and re-run [k]; exit 7 once the
       attempts are spent. *)
    let retry_or ~hint_s msg k =
      match Serve.Backoff.next backoff ~hint_s with
      | None ->
        fail 7
          (if retries = 0 then msg else msg ^ "; attempts exhausted")
      | Some delay ->
        Format.eprintf "%s; retrying in %.1fs@." msg delay;
        Unix.sleepf delay;
        k ()
    in
    let rec connect () =
      match Serve.Client.connect ~client:tenant socket with
      | Ok c -> c
      | Error msg -> retry_or ~hint_s:None ("cannot reach daemon: " ^ msg) connect
    in
    let finish c code =
      Serve.Client.close c;
      exit code
    in
    let request c req =
      match Serve.Client.request ~timeout_s:reply_timeout c req with
      | Ok reply -> reply
      | Error msg -> fail 5 msg
    in
    let unexpected r =
      fail 5 ("unexpected reply: " ^ Serve.Proto.reply_to_string r)
    in
    let print_result (r : Serve.Proto.result_line) =
      let open Serve.Proto in
      let detail =
        match (r.r_verdict, r.r_depth, r.r_reason) with
        | "proved", Some d, _ ->
          Printf.sprintf "proved (depth %d%s)" d
            (if r.r_induction = Some true then ", by induction" else "")
        | "falsified", Some d, _ ->
          Printf.sprintf "falsified at depth %d%s" d
            (match r.r_genuine with
            | Some true -> " (genuine)"
            | Some false -> " (spurious)"
            | None -> "")
        | _, _, Some why -> "inconclusive: " ^ why
        | v, _, None -> v
      in
      Format.printf "%s [%s%s]: %s in %.3fs@." r.r_property r.r_method
        (match r.r_cache with
        | "hit" -> ", cache hit"
        | "dedup" -> ", deduplicated"
        | _ -> "")
        detail r.r_time_s;
      rank_of_result r
    in
    (* Confirm delivery so a journalled server can forget the result; the
       [acked] replies interleave with the result stream and are absorbed
       by the catch-all read arm. *)
    let maybe_ack c (r : Serve.Proto.result_line) =
      if
        (not no_ack)
        && (match Serve.Client.server_version c with
           | Some v -> v >= 2
           | None -> false)
      then ignore (Serve.Client.send c (Serve.Proto.Ack r.Serve.Proto.r_job))
    in
    match action with
    | `Ping -> (
      let c = connect () in
      match request c Serve.Proto.Ping with
      | Serve.Proto.Pong ->
        print_endline "pong";
        finish c 0
      | r -> unexpected r)
    | `Metrics -> (
      let c = connect () in
      match request c Serve.Proto.Metrics with
      | Serve.Proto.Metrics_reply _ as r ->
        (* The canonical line, as greppable JSON. *)
        print_endline (Serve.Proto.reply_to_string r);
        finish c 0
      | r -> unexpected r)
    | `Shutdown -> (
      let c = connect () in
      match request c Serve.Proto.Shutdown with
      | Serve.Proto.Draining ->
        print_endline "draining";
        finish c 0
      | r -> unexpected r)
    | `Poll -> (
      let job =
        match arg with
        | Some s -> (
          match int_of_string_opt s with
          | Some j -> j
          | None -> fail 2 "poll needs a numeric job id")
        | None -> fail 2 "poll needs a job id"
      in
      let c = connect () in
      match request c (Serve.Proto.Poll job) with
      | Serve.Proto.Status { job; state } ->
        Format.printf "job %d: %s@." job state;
        finish c 0
      | r -> unexpected r)
    | `Ack -> (
      let job =
        match arg with
        | Some s -> (
          match int_of_string_opt s with
          | Some j -> j
          | None -> fail 2 "ack needs a numeric job id")
        | None -> fail 2 "ack needs a job id"
      in
      let c = connect () in
      match request c (Serve.Proto.Ack job) with
      | Serve.Proto.Acked { job } ->
        Format.printf "acked %d@." job;
        finish c 0
      | r -> unexpected r)
    | `Resume -> (
      let c = connect () in
      match request c (Serve.Proto.Resume tenant) with
      | Serve.Proto.Resumed { results; pending; _ } ->
        let worst = ref 0 in
        let got = ref 0 in
        while !got < results do
          match Serve.Client.read_reply ~timeout_s:reply_timeout c with
          | Error msg -> fail 5 msg
          | Ok (Serve.Proto.Result r) ->
            incr got;
            worst := max !worst (print_result r);
            maybe_ack c r
          | Ok _ -> ()
        done;
        if pending > 0 then
          Format.printf "%d job(s) still pending; resume again later@." pending;
        finish c (exit_of_rank !worst)
      | r -> unexpected r)
    | `Submit ->
      let design =
        match arg with
        | Some d -> d
        | None -> fail 2 "submit needs a design (name or .emn/.aag path)"
      in
      let s =
        {
          Serve.Proto.s_id = request_id;
          s_design = design;
          s_property = property;
          s_method = method_name;
          s_max_depth = max_depth;
          s_timeout_s = timeout_s;
          s_cache = (if no_cache then Some false else None);
        }
      in
      let rec attempt () =
        let c = connect () in
        match request c (Serve.Proto.Submit s) with
        | Serve.Proto.Busy { queue_depth; max_queue; retry_after_s; _ } ->
          Serve.Client.close c;
          retry_or ~hint_s:(Some retry_after_s)
            (Printf.sprintf "server busy: queue %d/%d full" queue_depth
               max_queue)
            attempt
        | Serve.Proto.Shutdown_reply { retry_after_s; _ } ->
          Serve.Client.close c;
          retry_or ~hint_s:retry_after_s "server is draining" attempt
        | Serve.Proto.Error { message; _ } -> fail 5 message
        | Serve.Proto.Accepted { jobs; queue_depth; _ } ->
          Format.printf "accepted %d job(s), queue depth %d@."
            (List.length jobs) queue_depth;
          let remaining = ref (List.map fst jobs) in
          let worst = ref 0 in
          while !remaining <> [] do
            match Serve.Client.read_reply ~timeout_s:reply_timeout c with
            | Error msg -> fail 5 msg
            | Ok (Serve.Proto.Result r) when List.mem r.Serve.Proto.r_job !remaining ->
              remaining := List.filter (fun j -> j <> r.Serve.Proto.r_job) !remaining;
              worst := max !worst (print_result r);
              maybe_ack c r
            | Ok (Serve.Proto.Shutdown_reply { job = Some j; _ }) ->
              remaining := List.filter (fun j' -> j' <> j) !remaining;
              Format.eprintf "job %d dropped: server draining@." j;
              worst := max !worst 2
            | Ok _ -> ()
          done;
          finish c (exit_of_rank !worst)
        | r -> unexpected r
      in
      attempt ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running $(b,emmver serve) daemon: submit a design and \
          stream back per-property results, poll a job, $(b,resume) results \
          that were completed while disconnected, fetch the metrics \
          snapshot, or start a graceful drain. Busy/draining replies and an \
          unreachable daemon are retried with jittered exponential backoff. \
          Exit codes follow $(b,emmver verify), plus 7 when the daemon \
          stays busy or unreachable after the retries")
    Term.(
      const run $ action_arg $ arg_arg $ socket_arg $ client_id_arg
      $ property_arg $ method_arg $ client_depth_arg $ timeout_arg
      $ no_cache_arg $ request_id_arg $ reply_timeout_arg $ retries_arg
      $ no_ack_arg)

let () =
  let doc = "verification of embedded memory systems using efficient memory modeling" in
  let info = Cmd.info "emmver" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            props_cmd;
            stats_cmd;
            verify_cmd;
            portfolio_cmd;
            diff_verify_cmd;
            serve_cmd;
            client_cmd;
            cache_cmd;
            solve_cmd;
            save_cmd;
            races_cmd;
          ]))
