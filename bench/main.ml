(* Benchmark harness: regenerates every table and in-text result of the
   paper's evaluation (§5), plus constraint-growth validation, ablations and
   bechamel micro-benchmarks.

     dune exec bench/main.exe               # everything, scaled-down sizes
     dune exec bench/main.exe -- table1     # one artifact
     dune exec bench/main.exe -- --full all # paper-sized sweeps (slow)

   Absolute times differ from the paper (different machine, different SAT
   solver); the comparisons EMM-vs-explicit and the growth trends are the
   reproduced claims.  See EXPERIMENTS.md for the side-by-side record. *)

let full = ref false
let timeout = ref 120.0
let jobs = ref 1
let certify = ref false
let only = ref None
let out_file = ref "BENCH_solver.json"
let trace_out = ref None

(* [--domains N] runs every matrix SAT query over an in-process Domain
   portfolio of N diversified CDCL instances (lib/portfolio); [--no-share]
   disables the learnt-clause exchange between them.  Orthogonal to [-j],
   which forks whole table cells. *)
let domains = ref 1
let no_share = ref false

(* [--cache-dir DIR] (solver-json only): run the matrix with the persistent
   verification-result cache rooted at DIR; each row then records whether it
   was solved or served ("cache": off/miss/hit).  The cold-vs-warm sweep
   below uses its own throwaway store and runs with or without this flag
   (it honours [--only] like every other section). *)
let cache_dir = ref None

(* [--overhead-budget PCT] (solver-json only): fail with exit 6 when this
   run's summed matrix CPU time exceeds the baseline file's recorded
   matrix_cpu_s by more than PCT percent (plus a 2s absolute slack against
   scheduler noise on short rows).  CPU rather than wall time: wall depends
   on -j and machine load, the per-row sum is what tracing overhead would
   inflate. *)
let overhead_budget = ref None

(* DRAT derivations land here when [--certify]; the largest one is copied to
   BENCH_largest.drat as the CI proof artifact. *)
let proof_dir = "bench_proofs"

(* {2 Small helpers} *)

let hr title =
  Format.printf "@.=== %s ===@." title

(* Run the independent cells of a table, honouring [-j N]: with more than
   one job the cells execute in forked workers (deterministic order, crash
   containment — see lib/parallel); a worker that dies is reported through
   [on_fail] instead of aborting the sweep. *)
let run_cells ~f ~on_fail cells =
  if !jobs <= 1 then List.map f cells
  else
    Parallel.map ~jobs:!jobs ~f cells
    |> List.map (function Ok v -> v | Error failure -> on_fail failure)

let failed_outcome (failure : Parallel.failure) =
  Emmver.killed_outcome ~elapsed_s:failure.Parallel.elapsed_s
    (Parallel.failure_message failure)

let time f =
  let t0 = Obs.now () in
  let r = f () in
  (r, Obs.now () -. t0)

let mb () =
  let gc = Gc.quick_stat () in
  float_of_int (gc.Gc.heap_words * 8) /. 1e6

let options ?(max_depth = 150) () =
  { Emmver.default_options with max_depth; timeout_s = Some !timeout }

(* Cell text for a conclusion: proof depth or the timeout marker. *)
let depth_cell = function
  | Emmver.Proved { depth; _ } -> string_of_int depth
  | Emmver.Falsified { depth; _ } -> Printf.sprintf "CE@%d" depth
  | Emmver.Inconclusive _ -> "-"

let time_cell outcome =
  match outcome.Emmver.conclusion with
  | Emmver.Inconclusive _ -> Printf.sprintf ">%.0fs" !timeout
  | Emmver.Proved _ | Emmver.Falsified _ -> Printf.sprintf "%.1f" outcome.Emmver.time_s

let mem_cell outcome =
  match outcome.Emmver.conclusion with
  | Emmver.Inconclusive _ -> "NA"
  | Emmver.Proved _ | Emmver.Falsified _ -> Printf.sprintf "%.0f" outcome.Emmver.memory_mb

(* Quicksort sized like the paper: the arrays are much larger than the N
   sorted elements, which is precisely what explicit modeling pays for. *)
let quicksort_config n =
  let aw = if !full then 8 else 6 in
  { (Designs.Quicksort.default_config ~n) with
    Designs.Quicksort.addr_width = aw;
    stack_addr_width = aw + 1;
  }

let table1_sizes () = if !full then [ 3; 4; 5 ] else [ 3; 4 ]

(* {2 Table 1 — quicksort, EMM vs explicit induction proofs} *)

let table1 () =
  hr "Table 1: performance summary on Quick Sort (forward induction proofs)";
  Format.printf "%-4s %-5s %-4s | %-8s %-6s | %-8s %-6s@." "N" "Prop" "D" "EMM s"
    "MB" "Expl s" "MB";
  let pairs =
    List.concat_map
      (fun n -> List.map (fun prop -> (n, prop)) [ "P1"; "P2" ])
      (table1_sizes ())
  in
  let cells =
    List.concat_map
      (fun (n, prop) -> [ (n, prop, Emmver.Emm_bmc); (n, prop, Emmver.Explicit_bmc) ])
      pairs
  in
  let t0 = Obs.now () in
  let outcomes =
    run_cells ~on_fail:failed_outcome
      ~f:(fun (n, prop, method_) ->
        let net = Designs.Quicksort.build (quicksort_config n) in
        Emmver.verify ~options:(options ()) ~method_ net ~property:prop)
      cells
  in
  let rec rows pairs outcomes =
    match (pairs, outcomes) with
    | (n, prop) :: pairs, emm :: exp :: outcomes ->
      Format.printf "%-4d %-5s %-4s | %-8s %-6s | %-8s %-6s@." n prop
        (depth_cell emm.Emmver.conclusion) (time_cell emm) (mem_cell emm)
        (time_cell exp) (mem_cell exp);
      rows pairs outcomes
    | _ -> ()
  in
  rows pairs outcomes;
  Format.printf "table1 wall-clock: %.1fs (-j %d, cpu %.1fs over %d cells)@."
    (Obs.now () -. t0)
    !jobs
    (List.fold_left (fun acc o -> acc +. o.Emmver.time_s) 0.0 outcomes)
    (List.length cells)

(* {2 Table 2 — quicksort P2 with proof-based abstraction} *)

(* One side of a Table-2 row, rendered to a string so the cells can run in
   forked workers and still print in deterministic order. *)
let table2_side name ~use_emm net =
  let orig = List.length (Netlist.latches net) in
  match
    time (fun () ->
        Pba.discover ~max_depth:150 ~stability:10
          ~deadline:(Obs.now () +. !timeout) ~use_emm net ~property:"P2")
  with
  | Either.Right _, t ->
    Printf.sprintf "  %-14s discovery did not stabilise (%.1fs)" name t
  | Either.Left a, t_pba ->
    let config =
      {
        Bmc.Engine.default_config with
        max_depth = 150;
        deadline = Some (Obs.now () +. !timeout);
      }
    in
    let (result, _), t_proof =
      time (fun () -> Pba.check_with_abstraction ~config net a ~property:"P2")
    in
    let proof_cell =
      match result.Bmc.Engine.verdict with
      | Bmc.Engine.Proof _ -> Printf.sprintf "%.1f" t_proof
      | _ -> Printf.sprintf ">%.0f" !timeout
    in
    Printf.sprintf "  %-14s FF %d (%d)  PBA %.1fs  proof %ss  %.0fMB  memories kept: %s"
      name
      (List.length a.Pba.kept_latches)
      orig t_pba proof_cell (mb ())
      (match a.Pba.modeled_memories with
      | [] -> "(none)"
      | ms -> String.concat "," (List.map Netlist.memory_name ms))

let table2 () =
  hr "Table 2: Quick Sort P2 with proof-based abstraction";
  let cells =
    List.concat_map (fun n -> [ (n, true); (n, false) ]) (table1_sizes ())
  in
  let t0 = Obs.now () in
  let lines =
    run_cells
      ~on_fail:(fun failure -> "  worker killed: " ^ Parallel.failure_message failure)
      ~f:(fun (n, use_emm) ->
        let cfg = quicksort_config n in
        if use_emm then table2_side "EMM+PBA" ~use_emm:true (Designs.Quicksort.build cfg)
        else
          table2_side "Explicit+PBA" ~use_emm:false
            (Explicitmem.expand (Designs.Quicksort.build cfg)))
      cells
  in
  List.iter2
    (fun (n, use_emm) line ->
      if use_emm then Format.printf "N = %d:@." n;
      Format.printf "%s@." line)
    cells lines;
  Format.printf "table2 wall-clock: %.1fs (-j %d)@." (Obs.now () -. t0) !jobs

(* {2 Case study I — image filter reachability sweep} *)

let case1 () =
  hr "Case study: Industry Design I (low-pass image filter)";
  let cfg =
    if !full then Designs.Image_filter.default_config
    else { Designs.Image_filter.default_config with addr_width = 3 }
  in
  let net = Designs.Image_filter.build cfg in
  Format.printf "design: %a; %d reachability properties@." Netlist.pp_stats
    (Netlist.stats net) cfg.Designs.Image_filter.num_properties;
  let names = Designs.Image_filter.property_names cfg in
  let picked =
    if !full then names
    else List.filteri (fun i _ -> i mod 8 = 0 || i >= List.length names - 5) names
  in
  (* One incremental run for all properties, as the paper's platform did. *)
  let config =
    {
      Bmc.Engine.default_config with
      max_depth = 45;
      deadline = Some (Obs.now () +. (10.0 *. !timeout));
    }
  in
  let sweep method_label results =
    let witnesses = ref 0 and proofs = ref 0 and other = ref 0 in
    let max_d = ref 0 in
    List.iter
      (fun (_, r) ->
        match r.Bmc.Engine.verdict with
        | Bmc.Engine.Counterexample t ->
          incr witnesses;
          max_d := max !max_d t.Bmc.Trace.depth
        | Bmc.Engine.Proof _ -> incr proofs
        | Bmc.Engine.Bounded_safe _ | Bmc.Engine.Reasons_stable _
        | Bmc.Engine.Timed_out _ | Bmc.Engine.Out_of_budget _ -> incr other)
      results;
    Format.printf
      "  %-10s %d properties: %d witnesses (max depth %d), %d induction proofs, %d unresolved"
      method_label (List.length results) !witnesses !max_d !proofs !other
  in
  let (emm_results, _, _), t_emm =
    time (fun () -> Emm.check_many ~config net ~properties:picked)
  in
  sweep "EMM" emm_results;
  Format.printf " — %.1fs, %.0fMB@." t_emm (mb ());
  let expanded = Explicitmem.expand net in
  let (exp_results, _), t_exp =
    time (fun () -> Bmc.Engine.check_all ~config expanded ~properties:picked)
  in
  sweep "Explicit" exp_results;
  Format.printf " — %.1fs, %.0fMB@." t_exp (mb ())

(* {2 Case study II — multi-port lookup engine} *)

let case2 () =
  hr "Case study: Industry Design II (multi-port lookup engine)";
  let cfg = Designs.Multiport.default_config in
  let net = Designs.Multiport.build cfg in
  Format.printf "design: %a@." Netlist.pp_stats (Netlist.stats net);
  (* (a) full memory abstraction: spurious witnesses. *)
  let o =
    Emmver.verify ~options:(options ~max_depth:30 ()) ~method_:Emmver.Abstract_bmc net
      ~property:"hit0"
  in
  Format.printf "  memory abstracted:      hit0 %a@." Emmver.pp_conclusion
    o.Emmver.conclusion;
  (* (b) EMM deep bounded search: no witness. *)
  let depth = if !full then 200 else 60 in
  let (o, t) =
    time (fun () ->
        Emmver.verify
          ~options:{ (options ~max_depth:depth ()) with Emmver.max_depth = depth }
          ~method_:Emmver.Emm_falsify net ~property:"hit0")
  in
  Format.printf "  EMM to depth %d:        hit0 %a (%.1fs)@." depth Emmver.pp_conclusion
    o.Emmver.conclusion t;
  (* (c) PBA model reduction. *)
  (match Pba.discover ~max_depth:60 ~stability:10 net ~property:"hit0" with
  | Either.Left a ->
    Format.printf "  PBA reduction:          %d of %d latches kept@."
      (List.length a.Pba.kept_latches)
      (List.length (Netlist.latches net))
  | Either.Right v ->
    Format.printf "  PBA reduction:          %a@." Bmc.Engine.pp_verdict v);
  (* (d) the invariant G(WE=0 \/ WD=0), EMM vs explicit. *)
  let inv_emm, t_emm =
    time (fun () -> Emmver.verify ~options:(options ()) ~method_:Emmver.Emm_bmc net ~property:"mem_quiet")
  in
  let _, t_exp =
    time (fun () ->
        Emmver.verify ~options:(options ()) ~method_:Emmver.Explicit_bmc net
          ~property:"mem_quiet")
  in
  Format.printf "  invariant G(WE=0|WD=0): %a — EMM %.2fs, explicit %.2fs@."
    Emmver.pp_conclusion inv_emm.Emmver.conclusion t_emm t_exp;
  (* (e) invariant applied: all 8 properties proved on the memory-free model. *)
  let reduced = Designs.Multiport.build ~rd_tied_zero:true cfg in
  let proved = ref 0 in
  let _, t =
    time (fun () ->
        List.iter
          (fun prop ->
            match
              (Emmver.verify ~options:(options ()) ~method_:Emmver.Emm_bmc reduced
                 ~property:prop)
                .Emmver.conclusion
            with
            | Emmver.Proved _ -> incr proved
            | Emmver.Falsified _ | Emmver.Inconclusive _ -> ())
          Designs.Multiport.property_names)
  in
  Format.printf "  rd tied to 0:           %d/8 properties proved by induction (%.2fs)@."
    !proved t

(* {2 Constraint growth — the size formulas of §3 and §4.1} *)

let growth () =
  hr "Constraint growth: measured vs predicted ((4m+2n+1)kW+2n+1)R clauses, 3kWR gates";
  let configs = [ (4, 8, 1, 1); (4, 8, 2, 3); (6, 16, 2, 2); (8, 32, 3, 2) ] in
  List.iter
    (fun (m, n, w, r) ->
      Format.printf "AW=%d DW=%d W=%d R=%d:@." m n w r;
      Format.printf "  %-5s %-22s %-22s %-10s@." "k" "clauses (meas/pred)"
        "gates (meas/pred)" "cumulative";
      let ctx = Hdl.create () in
      let mem =
        Hdl.memory ctx ~name:"m" ~addr_width:m ~data_width:n ~init:Netlist.Zeros
      in
      for p = 0 to w - 1 do
        let addr = Hdl.input ctx (Printf.sprintf "wa%d" p) ~width:m in
        let data = Hdl.input ctx (Printf.sprintf "wd%d" p) ~width:n in
        let enable = Hdl.input_bit ctx (Printf.sprintf "we%d" p) in
        Hdl.write_port ctx mem ~addr ~data ~enable
      done;
      for p = 0 to r - 1 do
        let addr = Hdl.input ctx (Printf.sprintf "ra%d" p) ~width:m in
        ignore (Hdl.read_port ctx mem ~addr ~enable:Netlist.true_)
      done;
      Hdl.assert_always ctx "true" Netlist.true_;
      let net = Hdl.netlist ctx in
      let solver = Satsolver.Solver.create () in
      (* Plain paper-faithful encoding: the §4.1 size formulas only hold
         there; simplify mode is measured by solver-json instead. *)
      let unr = Cnf.create ~simplify:false solver net in
      let emm = Emm.create ~init_consistency:false ~simplify:false unr in
      let cumulative = ref 0 in
      let next = ref 0 in
      List.iter
        (fun k ->
          while !next <= k do
            Emm.add_constraints emm !next;
            incr next
          done;
          let c = Emm.counts_at emm k in
          let meas_cl = c.Emm.addr_clauses + c.Emm.data_clauses in
          let pred_cl = Emm.predicted_clauses ~aw:m ~dw:n ~k ~writes:w ~reads:r in
          let pred_g = Emm.predicted_gates ~k ~writes:w ~reads:r in
          cumulative := !cumulative + meas_cl;
          Format.printf "  %-5d %10d/%-10d %10d/%-10d %-10d%s@." k meas_cl pred_cl
            c.Emm.excl_gates pred_g !cumulative
            (if meas_cl = pred_cl && c.Emm.excl_gates = pred_g then "" else "  MISMATCH"))
        [ 0; 1; 2; 4; 8; 12 ])
    configs

(* {2 Ablation — the equation-(6) initial-state constraints} *)

let ablation () =
  hr "Ablation: arbitrary-initial-state consistency (equation 6)";
  let cfg = Designs.Quicksort.default_config ~n:3 in
  let net = Designs.Quicksort.build cfg in
  let o_full =
    Emmver.verify ~options:(options ()) ~method_:Emmver.Emm_bmc net ~property:"P1"
  in
  Format.printf "  quicksort P1 with eq-(6):    %a (%.1fs)@." Emmver.pp_conclusion
    o_full.Emmver.conclusion o_full.Emmver.time_s;
  let config =
    {
      Bmc.Engine.default_config with
      max_depth = 60;
      deadline = Some (Obs.now () +. !timeout);
    }
  in
  let (result, _), t =
    time (fun () -> Emm.check ~config ~init_consistency:false net ~property:"P1")
  in
  (match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample tr ->
    Format.printf
      "  quicksort P1 without eq-(6): counterexample at depth %d — replay on simulator: %b (SPURIOUS) (%.1fs)@."
      tr.Bmc.Trace.depth (Bmc.Trace.replay net tr) t
  | v -> Format.printf "  quicksort P1 without eq-(6): %a (%.1fs)@." Bmc.Engine.pp_verdict v t);
  (* The read-validity clause ablation: measured via the multiport engine. *)
  let mnet = Designs.Multiport.build Designs.Multiport.default_config in
  let (r_with, _), t_with =
    time (fun () ->
        Emm.check
          ~config:{ Bmc.Engine.default_config with max_depth = 40; proof_checks = false }
          mnet ~property:"hit0")
  in
  ignore r_with;
  Format.printf "  multiport hit0, EMM depth 40: %.2fs@." t_with

(* {2 Bechamel micro-benchmarks — one per table/figure artifact} *)

let micro () =
  hr "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let qs_net = lazy (Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3)) in
  let filter_net =
    lazy (Designs.Image_filter.build { Designs.Image_filter.default_config with addr_width = 3 })
  in
  let mp_net = lazy (Designs.Multiport.build Designs.Multiport.default_config) in
  (* Table 1 unit: one EMM falsification depth on the quicksort machine. *)
  let t_table1 =
    Test.make ~name:"table1/emm-unroll-qs3"
      (Staged.stage (fun () ->
           let net = Lazy.force qs_net in
           let config =
             { Bmc.Engine.default_config with max_depth = 6; proof_checks = false }
           in
           ignore (Emm.check ~config net ~property:"P1")))
  in
  (* Table 2 unit: PBA discovery on the quicksort machine. *)
  let t_table2 =
    Test.make ~name:"table2/pba-discovery-qs3"
      (Staged.stage (fun () ->
           let net = Lazy.force qs_net in
           ignore (Pba.discover ~max_depth:12 ~stability:4 net ~property:"P2")))
  in
  (* Case study I unit: one witness search on the image filter. *)
  let t_case1 =
    Test.make ~name:"case1/filter-witness"
      (Staged.stage (fun () ->
           let net = Lazy.force filter_net in
           let config =
             { Bmc.Engine.default_config with max_depth = 10; proof_checks = false }
           in
           ignore (Emm.check ~config net ~property:"P40")))
  in
  (* Case study II unit: the induction proof of the invariant. *)
  let t_case2 =
    Test.make ~name:"case2/invariant-induction"
      (Staged.stage (fun () ->
           let net = Lazy.force mp_net in
           let config = { Bmc.Engine.default_config with max_depth = 6 } in
           ignore (Emm.check ~config net ~property:"mem_quiet")))
  in
  (* Growth artifact unit: raw EMM constraint generation at depth 16. *)
  let t_growth =
    Test.make ~name:"growth/emm-constraints-k16"
      (Staged.stage (fun () ->
           let ctx = Hdl.create () in
           let mem =
             Hdl.memory ctx ~name:"m" ~addr_width:8 ~data_width:16 ~init:Netlist.Zeros
           in
           let wa = Hdl.input ctx "wa" ~width:8 in
           let wd = Hdl.input ctx "wd" ~width:16 in
           let we = Hdl.input_bit ctx "we" in
           Hdl.write_port ctx mem ~addr:wa ~data:wd ~enable:we;
           let ra = Hdl.input ctx "ra" ~width:8 in
           ignore (Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_);
           Hdl.assert_always ctx "true" Netlist.true_;
           let solver = Satsolver.Solver.create () in
           let unr = Cnf.create solver (Hdl.netlist ctx) in
           let emm = Emm.create unr in
           for k = 0 to 16 do
             Emm.add_constraints emm k
           done))
  in
  let tests = [ t_table1; t_table2; t_case1; t_case2; t_growth ] in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:20 ~quota:(Time.second 1.5) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false
        ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Format.printf "  %-32s %10.0f ns/run@." name est
          | _ -> Format.printf "  %-32s (no estimate)@." name)
        results)
    tests

(* {2 solver-json — machine-readable CDCL telemetry for the perf trajectory} *)

(* The fixed design/property/method matrix recorded in BENCH_solver.json;
   depths chosen so the whole run stays under about a minute. *)
let solver_matrix =
  [
    ("quicksort-n3", "P1", Emmver.Emm_bmc, 60);
    ("quicksort-buggy-n3", "P1", Emmver.Emm_falsify, 100);
    ("multiport", "mem_quiet", Emmver.Emm_bmc, 100);
    ("multiport", "hit0", Emmver.Emm_falsify, 40);
    ("fifo", "fifo_data", Emmver.Emm_bmc, 12);
    ("cache", "coherent", Emmver.Emm_bmc, 14);
    ("memcpy", "copied", Emmver.Emm_bmc, 100);
    ("memcpy", "copied", Emmver.Explicit_bmc, 100);
    ("bubblesort-n4", "sorted", Emmver.Emm_bmc, 100);
    ("regfile", "read_consistent", Emmver.Emm_bmc, 100);
    ("regfile", "read_consistent", Emmver.Explicit_bmc, 100);
    (* The latch-only termination over-proof regression: both rows depend on
       the memory-state distinctness constraints for their recorded depths
       (reach1 would otherwise vanish behind a bogus diameter-2 proof). *)
    ("latchpoor", "reach1", Emmver.Emm_bmc, 12);
    ("latchpoor", "never2", Emmver.Emm_bmc, 12);
    ("latchpoor", "never2", Emmver.Explicit_bmc, 12);
  ]

let pigeonhole_clauses pigeons holes =
  (* var p*holes + h <-> pigeon p sits in hole h *)
  let v p h = Satsolver.Lit.of_var ((p * holes) + h) true in
  let at_least_one =
    List.init pigeons (fun p -> List.init holes (fun h -> v p h))
  in
  let at_most_one =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if q > p then
                  Some [ Satsolver.Lit.negate (v p h); Satsolver.Lit.negate (v q h) ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  (pigeons * holes, at_least_one @ at_most_one)

let cache_status_cell (o : Emmver.outcome) =
  match o.Emmver.cache with
  | Emmver.Cache_off -> "off"
  | Emmver.Cache_miss -> "miss"
  | Emmver.Cache_hit -> "hit"
  | Emmver.Cache_dedup -> "dedup"

let json_row ~design ~property ~method_ ~verdict ~time_s ~solve_time_s
    ~encode_time_s ~num_vars ~num_clauses ~vars_saved ~clauses_saved
    ?(certificate = "unchecked") ?(proof_steps = 0) ?(cache = "off")
    (s : Satsolver.Solver.stats) =
  Printf.sprintf
    {|    {"design": %S, "property": %S, "method": %S, "verdict": %S,
     "time_s": %.3f, "solve_time_s": %.3f, "encode_time_s": %.3f,
     "num_vars": %d, "num_clauses": %d, "vars_saved": %d, "clauses_saved": %d,
     "certificate": %S, "proof_steps": %d, "cache": %S,
     "conflicts": %d, "decisions": %d,
     "propagations": %d, "restarts": %d, "learnt": %d, "deleted": %d,
     "minimised_lits": %d, "avg_lbd": %.2f,
     "shared_out": %d, "shared_in": %d}|}
    design property method_ verdict time_s solve_time_s encode_time_s num_vars
    num_clauses vars_saved clauses_saved certificate proof_steps cache
    s.Satsolver.Solver.conflicts
    s.decisions s.propagations s.restarts s.learnt_clauses s.deleted_clauses
    s.minimised_lits s.avg_lbd s.shared_out s.shared_in

(* {2 Baseline comparison (--baseline FILE)}

   A hand-rolled reader for the BENCH_solver.json format written below: we
   only need the (design, property, method) -> verdict map, and we wrote the
   file ourselves, so substring scanning is enough. *)

let find_sub s pat from =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some i
    else go (i + 1)
  in
  go from

let json_string_field chunk name =
  let pat = Printf.sprintf "\"%s\": \"" name in
  match find_sub chunk pat 0 with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    String.index_from_opt chunk start '"'
    |> Option.map (fun stop -> String.sub chunk start (stop - start))

let json_float_field chunk name =
  let pat = Printf.sprintf "\"%s\": " name in
  match find_sub chunk pat 0 with
  | None -> None
  | Some i ->
    let start = i + String.length pat in
    let stop = ref start in
    let n = String.length chunk in
    while
      !stop < n
      && (match chunk.[!stop] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr stop
    done;
    float_of_string_opt (String.sub chunk start (!stop - start))

let verdict_class v =
  if String.length v >= 6 && String.sub v 0 6 = "proved" then `Proved
  else if String.length v >= 9 && String.sub v 0 9 = "falsified" then `Falsified
  else `Inconclusive

let baseline_verdicts file =
  if not (Sys.file_exists file) then begin
    Format.eprintf "baseline file %s does not exist@." file;
    exit 2
  end;
  let ic = open_in file in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  (* Split the row array on the opening brace of each object. *)
  let rec chunks from acc =
    match String.index_from_opt s from '{' with
    | None -> List.rev acc
    | Some i ->
      let stop =
        match String.index_from_opt s (i + 1) '}' with
        | Some j -> j
        | None -> String.length s - 1
      in
      chunks (stop + 1) (String.sub s i (stop - i + 1) :: acc)
  in
  List.filter_map
    (fun chunk ->
      match
        ( json_string_field chunk "design",
          json_string_field chunk "property",
          json_string_field chunk "method",
          json_string_field chunk "verdict" )
      with
      | Some d, Some p, Some m, Some v -> Some ((d, p, m), v)
      | _ -> None)
    (chunks 0 [])

(* Fail (exit 3) if any design/property/method row that was conclusive in
   the baseline file became inconclusive — the CI regression gate. *)
let check_against_baseline ~name ~old rows =
  let regressions =
    List.filter_map
      (fun ((key : string * string * string), v) ->
        match List.assoc_opt key old with
        | Some old_v
          when verdict_class old_v <> `Inconclusive
               && verdict_class v = `Inconclusive ->
          Some (key, old_v, v)
        | _ -> None)
      rows
  in
  match regressions with
  | [] ->
    Format.printf "baseline check against %s: OK (%d rows compared)@." name
      (List.length old)
  | _ ->
    List.iter
      (fun (((d, p, m) : string * string * string), old_v, v) ->
        Format.eprintf "REGRESSION %s/%s/%s: %S -> %S@." d p m old_v v)
      regressions;
    exit 3

(* The committed baseline's summed matrix CPU time, for the tracing-off
   overhead gate. *)
let baseline_matrix_cpu_s file =
  if not (Sys.file_exists file) then None
  else begin
    let ic = open_in file in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    json_float_field s "matrix_cpu_s"
  end

let baseline = ref None

(* With [--only d1,d2] every section is restricted to rows whose design
   name contains one of the given substrings — the verification matrix and
   also the raw-SAT ("php-7-6"...), cache, serve and portfolio sweeps. *)
let matrix_selected design =
  match !only with
  | None -> true
  | Some pats ->
    List.exists (fun p -> find_sub design p 0 <> None)
      (List.map String.trim (String.split_on_char ',' pats))

let copy_file src dst =
  let ic = open_in_bin src in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  let oc = open_out_bin dst in
  output_string oc data;
  close_out oc

(* Promote the run's largest DRAT derivation to BENCH_largest.drat. *)
let export_largest_proof () =
  if Sys.file_exists proof_dir && Sys.is_directory proof_dir then
    let largest =
      Array.fold_left
        (fun acc name ->
          if Filename.check_suffix name ".drat" then
            let path = Filename.concat proof_dir name in
            let size = (Unix.stat path).Unix.st_size in
            match acc with
            | Some (_, best) when best >= size -> acc
            | _ -> Some (path, size)
          else acc)
        None (Sys.readdir proof_dir)
    in
    match largest with
    | Some (path, size) ->
      copy_file path "BENCH_largest.drat";
      Format.printf "largest proof: %s (%d bytes) -> BENCH_largest.drat@." path size
    | None -> ()

(* In-process Domain portfolio sweep on the headline proof row
   (quicksort-n3 P1): domains x sharing, honest wall-clock plus the
   exchange counters.  On a single-core host the domains timeshare, so
   wall grows with N — the counters (and the verdict agreement) are the
   point there; the wall comparison only becomes meaningful with
   [host_cores >= domains].  Runs at a scaled-down depth unless
   [--full]. *)
let domain_sweep () =
  let depth = if !full then 60 else 24 in
  let net = (Designs.Registry.find "quicksort-n3").Designs.Registry.build () in
  Format.printf "@.domain portfolio sweep: quicksort-n3 P1 (depth %d, %d host cores)@."
    depth
    (Domain.recommended_domain_count ());
  Format.printf "%-8s %-6s %-24s %8s %10s %11s %10s@." "domains" "share" "verdict"
    "wall" "conflicts" "shared-out" "shared-in";
  List.map
    (fun (d, share) ->
      let options =
        {
          Emmver.default_options with
          max_depth = depth;
          timeout_s = Some !timeout;
          domains = d;
          share_clauses = share;
        }
      in
      let o, wall_s =
        time (fun () -> Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:"P1")
      in
      let verdict = Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion in
      let verdict =
        match String.index_opt verdict ':' with
        | Some i -> String.sub verdict 0 i
        | None -> verdict
      in
      let s =
        Option.value o.Emmver.solver_stats ~default:Satsolver.Solver.empty_stats
      in
      Format.printf "%-8d %-6b %-24s %7.2fs %10d %11d %10d@." d share verdict wall_s
        s.Satsolver.Solver.conflicts s.shared_out s.shared_in;
      Printf.sprintf
        {|    {"domains": %d, "share": %b, "verdict": %S, "wall_s": %.3f,
     "conflicts": %d, "shared_out": %d, "shared_in": %d}|}
        d share verdict wall_s s.Satsolver.Solver.conflicts s.shared_out
        s.shared_in)
    [ (1, true); (2, true); (2, false); (4, true); (4, false) ]

(* Cold-vs-warm result-cache sweep on two matrix rows, against a throwaway
   store: the cold run solves and records, the warm run must serve the same
   verdict from the store.  The recorded speedup is the headline number of
   the caching work (EXPERIMENTS.md); CI separately gates warm wall-clock at
   25% of cold. *)
let cache_sweep () =
  let store =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emmver-bench-cache-%d" (Unix.getpid ()))
  in
  let cells =
    List.filter
      (fun (d, _, _, _) -> matrix_selected d)
      [
        ("quicksort-n3", "P1", Emmver.Emm_bmc, 60);
        ("fifo", "fifo_data", Emmver.Emm_bmc, 12);
      ]
  in
  if cells = [] then []
  else begin
    Format.printf "@.result-cache sweep: cold vs warm against a fresh store@.";
    Format.printf "%-16s %-12s %10s %10s %9s %7s@." "design" "property" "cold"
      "warm" "speedup" "agree";
    let rows =
      List.map
        (fun (design, property, method_, max_depth) ->
          let net = (Designs.Registry.find design).Designs.Registry.build () in
          let options =
            {
              Emmver.default_options with
              max_depth;
              timeout_s = Some !timeout;
              cache = true;
              cache_dir = Some store;
            }
          in
          let cold, cold_s =
            time (fun () -> Emmver.verify ~options ~method_ net ~property)
          in
          let warm, warm_s =
            time (fun () -> Emmver.verify ~options ~method_ net ~property)
          in
          let concl o = Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion in
          let agree = String.equal (concl cold) (concl warm) in
          let speedup = cold_s /. Float.max 1e-9 warm_s in
          Format.printf "%-16s %-12s %9.3fs %9.3fs %8.1fx %7b@." design property
            cold_s warm_s speedup agree;
          Printf.sprintf
            {|    {"design": %S, "property": %S, "method": %S,
     "cold_s": %.3f, "warm_s": %.3f, "cache_speedup": %.1f,
     "cold_status": %S, "warm_status": %S, "verdicts_agree": %b}|}
            design property
            (Emmver.method_to_string method_)
            cold_s warm_s speedup (cache_status_cell cold) (cache_status_cell warm)
            agree)
        cells
    in
    ignore (Vcache.clear (Vcache.config ~dir:store ()));
    (try Unix.rmdir store with _ -> ());
    rows
  end

(* End-to-end daemon throughput: a throwaway daemon on a private socket with
   a fresh cache store, the fifo matrix row submitted N times sequentially
   over one connection.  The first round trip is the cold price (protocol +
   scheduling + fork + solve + cache record); the mean of the rest is the
   service-level price of an already-verified property, where the forked
   worker answers from the warm store.  The emitted object carries no
   "verdict" field, so the baseline reader skips it (timing-only telemetry,
   like the "cache" rows above). *)
let serve_sweep () =
  if not (matrix_selected "fifo") then []
  else begin
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "emmver-bench-serve-%d" (Unix.getpid ()))
    in
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "daemon.sock" in
    let cache_dir = Filename.concat dir "cache" in
    let cfg =
      Serve.Server.config ~workers:1 ~cache_dir:(Some cache_dir) ~quiet:true
        ~socket ()
    in
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
      (try Serve.Server.run cfg with _ -> Unix._exit 1);
      Unix._exit 0
    | pid ->
      let cleanup () =
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        ignore
          (try Unix.waitpid [] pid
           with Unix.Unix_error _ -> (pid, Unix.WEXITED 0));
        ignore (Vcache.clear (Vcache.config ~dir:cache_dir ()));
        (try Sys.remove socket with Sys_error _ -> ());
        (try Unix.rmdir dir with Unix.Unix_error _ -> ())
      in
      Fun.protect ~finally:cleanup (fun () ->
          let rec wait_socket n =
            if Sys.file_exists socket then ()
            else if n = 0 then failwith "bench daemon never bound its socket"
            else begin
              Unix.sleepf 0.02;
              wait_socket (n - 1)
            end
          in
          wait_socket 250;
          let c =
            match Serve.Client.connect ~client:"bench" socket with
            | Ok c -> c
            | Error e -> failwith ("bench daemon connect: " ^ e)
          in
          let design = "fifo" and property = "fifo_data" in
          let round i =
            let req =
              Serve.Proto.Submit
                {
                  Serve.Proto.s_id = Printf.sprintf "bench-%d" i;
                  s_design = design;
                  s_property = Some property;
                  s_method = "emm";
                  s_max_depth = Some 12;
                  s_timeout_s = Some !timeout;
                  s_cache = Some true;
                }
            in
            let t0 = Obs.now () in
            (match Serve.Client.request ~timeout_s:120.0 c req with
            | Ok (Serve.Proto.Accepted _) -> ()
            | Ok r ->
              failwith ("bench submit: " ^ Serve.Proto.reply_to_string r)
            | Error e -> failwith ("bench submit: " ^ e));
            let rec result () =
              match Serve.Client.read_reply ~timeout_s:120.0 c with
              | Ok (Serve.Proto.Result r) -> r
              | Ok _ -> result ()
              | Error e -> failwith ("bench result: " ^ e)
            in
            let r = result () in
            (Obs.now () -. t0, r.Serve.Proto.r_cache, r.Serve.Proto.r_verdict)
          in
          let n = 6 in
          let rounds = List.init n round in
          Serve.Client.close c;
          let cold_s, _, cold_verdict = List.hd rounds in
          let warm = List.tl rounds in
          let warm_mean_s =
            List.fold_left (fun acc (t, _, _) -> acc +. t) 0.0 warm
            /. float_of_int (List.length warm)
          in
          let warm_hits =
            List.length (List.filter (fun (_, c, _) -> c = "hit") warm)
          in
          let agree =
            List.for_all (fun (_, _, v) -> String.equal v cold_verdict) warm
          in
          Format.printf
            "@.serve throughput: %s/%s x%d over one connection@." design
            property n;
          Format.printf
            "cold %.3fs, warm mean %.3fs (%.1fx), %d/%d warm cache hits, agree %b@."
            cold_s warm_mean_s
            (cold_s /. Float.max 1e-9 warm_mean_s)
            warm_hits (List.length warm) agree;
          [
            Printf.sprintf
              {|    {"design": %S, "property": %S, "method": "emm", "submissions": %d,
     "cold_s": %.3f, "warm_mean_s": %.3f, "serve_speedup": %.1f,
     "warm_hits": %d, "verdicts_agree": %b}|}
              design property n cold_s warm_mean_s
              (cold_s /. Float.max 1e-9 warm_mean_s)
              warm_hits agree;
          ])
  end

let solver_json () =
  hr "solver-json: CDCL telemetry over the bench matrix -> BENCH_solver.json";
  (* Read the baseline before the run: it may be the very file we are about
     to overwrite. *)
  let old = Option.map (fun f -> (f, baseline_verdicts f)) !baseline in
  let old_cpu_s = Option.bind !baseline baseline_matrix_cpu_s in
  let solver_matrix =
    List.filter (fun (d, _, _, _) -> matrix_selected d) solver_matrix
  in
  let rows = ref [] in
  let verdicts = ref [] in
  let unchecked = ref [] in
  let add_row ?key r =
    rows := r :: !rows;
    match key with Some kv -> verdicts := kv :: !verdicts | None -> ()
  in
  Format.printf "%-20s %-16s %-12s %-24s %8s %10s %12s@." "design" "property"
    "method" "verdict" "time" "conflicts" "props";
  let matrix_t0 = Obs.now () in
  let matrix_outcomes =
    run_cells
      ~on_fail:(fun failure ->
        let o = failed_outcome failure in
        (o, o.Emmver.time_s))
      ~f:(fun (design, property, method_, max_depth) ->
        let net = (Designs.Registry.find design).Designs.Registry.build () in
        let options =
          {
            Emmver.default_options with
            max_depth;
            timeout_s = Some !timeout;
            certify = !certify;
            proof_dir = (if !certify then Some proof_dir else None);
            domains = !domains;
            share_clauses = not !no_share;
            cache = !cache_dir <> None;
            cache_dir = !cache_dir;
          }
        in
        time (fun () -> Emmver.verify ~options ~method_ net ~property))
      solver_matrix
  in
  let matrix_wall_s = Obs.now () -. matrix_t0 in
  List.iter2
    (fun (design, property, method_, _) (o, time_s) ->
      let verdict = Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion in
      let verdict =
        (* keep only the headline, not the explanation *)
        match String.index_opt verdict ':' with
        | Some i -> String.sub verdict 0 i
        | None -> verdict
      in
      let s =
        Option.value o.Emmver.solver_stats ~default:Satsolver.Solver.empty_stats
      in
      Format.printf "%-20s %-16s %-12s %-24s %7.2fs %10d %12d@." design property
        (Emmver.method_to_string method_)
        verdict time_s s.Satsolver.Solver.conflicts s.Satsolver.Solver.propagations;
      let method_ = Emmver.method_to_string method_ in
      let certificate = Cert.label o.Emmver.certificate in
      (if !certify then
         match o.Emmver.certificate with
         | Cert.Certified _ -> ()
         | Cert.Refuted _ | Cert.Unchecked _ ->
           unchecked := Printf.sprintf "%s/%s/%s: %s" design property method_ certificate :: !unchecked);
      add_row
        ~key:((design, property, method_), verdict)
        (json_row ~design ~property ~method_ ~verdict ~time_s
           ~solve_time_s:o.Emmver.solve_time_s
           ~encode_time_s:o.Emmver.encode_time_s ~num_vars:o.Emmver.model_vars
           ~num_clauses:o.Emmver.model_clauses ~vars_saved:o.Emmver.vars_saved
           ~clauses_saved:o.Emmver.clauses_saved ~certificate
           ~proof_steps:o.Emmver.proof_steps ~cache:(cache_status_cell o) s))
    solver_matrix matrix_outcomes;
  let matrix_cpu_s =
    List.fold_left (fun acc (_, t) -> acc +. t) 0.0 matrix_outcomes
  in
  Format.printf "matrix wall-clock: %.1fs, cpu %.1fs, speedup %.2fx (-j %d)@."
    matrix_wall_s matrix_cpu_s
    (matrix_cpu_s /. Float.max 1e-9 matrix_wall_s)
    !jobs;
  (* Raw SAT rows: pigeonhole refutations exercise the learning machinery
     without any BMC structure on top. *)
  List.iter
    (fun (pigeons, holes) ->
      let design = Printf.sprintf "php-%d-%d" pigeons holes in
      let solver = Satsolver.Solver.create () in
      Satsolver.Solver.set_proof_logging solver !certify;
      let nvars, clauses = pigeonhole_clauses pigeons holes in
      Satsolver.Solver.ensure_vars solver nvars;
      List.iter (Satsolver.Solver.add_clause solver) clauses;
      let result, time_s = time (fun () -> Satsolver.Solver.solve solver) in
      let verdict =
        match result with Satsolver.Solver.Sat -> "sat" | Satsolver.Solver.Unsat -> "unsat"
      in
      let certificate, proof_steps =
        if not !certify then ("unchecked", 0)
        else begin
          let proof = Satsolver.Solver.proof solver in
          (if not (Sys.file_exists proof_dir) then Unix.mkdir proof_dir 0o755);
          let oc = open_out (Filename.concat proof_dir (design ^ ".drat")) in
          Cert.Drat.output oc proof;
          close_out oc;
          let label =
            match
              Cert.Drat.check ~num_vars:nvars ~original:clauses ~proof
                ~obligations:[ [] ] ()
            with
            | Cert.Drat.Valid _ -> "drat-checked"
            | Cert.Drat.Invalid why -> "refuted: " ^ why
          in
          if label <> "drat-checked" then
            unchecked := Printf.sprintf "%s: %s" design label :: !unchecked;
          (label, List.length proof)
        end
      in
      let s = Satsolver.Solver.stats solver in
      Format.printf "%-20s %-16s %-12s %-24s %7.2fs %10d %12d@." design "-" "raw-sat"
        verdict time_s s.Satsolver.Solver.conflicts s.Satsolver.Solver.propagations;
      add_row
        (json_row ~design ~property:"-" ~method_:"raw-sat" ~verdict ~time_s
           ~solve_time_s:s.Satsolver.Solver.solve_time_s ~encode_time_s:0.0
           ~num_vars:nvars ~num_clauses:(List.length clauses) ~vars_saved:0
           ~clauses_saved:0 ~certificate ~proof_steps s))
    (List.filter
       (fun (pigeons, holes) ->
         matrix_selected (Printf.sprintf "php-%d-%d" pigeons holes))
       [ (7, 6); (8, 7); (9, 8) ]);
  (* The Domain-portfolio sweep varies the domain count internally, so it
     only runs for the default configuration (no --domains/--no-share
     override) and only when its headline row is in the selected matrix
     (CI smoke restricts with [--only]). *)
  (* The serve sweep forks a daemon, which OCaml forbids once other domains
     have ever been spawned — so it must run before the domain portfolio
     sweep below. *)
  let serve_rows = serve_sweep () in
  let sweep_rows =
    if !domains = 1 && (not !no_share) && matrix_selected "quicksort-n3" then
      domain_sweep ()
    else []
  in
  let cache_rows = cache_sweep () in
  let oc = open_out !out_file in
  output_string oc "{\n  \"rows\": [\n";
  output_string oc (String.concat ",\n" (List.rev !rows));
  output_string oc "\n  ],\n";
  (* Fan-out telemetry for the verification matrix above (the raw-SAT rows,
     when selected, run sequentially): wall vs. summed per-row time is the
     measured speedup of this run.  The baseline reader skips this object — it has no
     "design" field; the same goes for the per-combination "domains" entries
     of the in-process portfolio sweep. *)
  output_string oc
    (Printf.sprintf
       "  \"parallel\": {\"jobs\": %d, \"matrix_wall_s\": %.3f, \"matrix_cpu_s\": %.3f, \"host_cores\": %d"
       !jobs matrix_wall_s matrix_cpu_s
       (Domain.recommended_domain_count ()));
  (match sweep_rows with
  | [] -> output_string oc "}"
  | rows ->
    output_string oc ",\n  \"domains\": [\n";
    output_string oc (String.concat ",\n" rows);
    output_string oc "\n  ]}");
  (* Cold-vs-warm result-cache telemetry; like the sweep entries, these
     objects carry no "verdict" field so the baseline reader skips them. *)
  (match cache_rows with
  | [] -> ()
  | rows ->
    output_string oc ",\n  \"cache\": [\n";
    output_string oc (String.concat ",\n" rows);
    output_string oc "\n  ]");
  (* Daemon round-trip telemetry — also verdict-free, also skipped by the
     baseline reader. *)
  (match serve_rows with
  | [] -> ()
  | rows ->
    output_string oc ",\n  \"serve\": [\n";
    output_string oc (String.concat ",\n" rows);
    output_string oc "\n  ]");
  output_string oc "\n}\n";
  close_out oc;
  Format.printf "wrote %s (%d rows)@." !out_file (List.length !rows);
  (match old with
  | Some (name, old) -> check_against_baseline ~name ~old !verdicts
  | None -> ());
  (match (!overhead_budget, old_cpu_s) with
  | Some pct, Some old_s ->
    (* 2s absolute slack: on a sub-10s matrix a single scheduler hiccup
       would otherwise trip a relative-only gate. *)
    let limit = (old_s *. (1.0 +. (pct /. 100.0))) +. 2.0 in
    if matrix_cpu_s > limit then begin
      Format.eprintf
        "OVERHEAD matrix cpu %.1fs exceeds baseline %.1fs + %.0f%% + 2s (limit %.1fs)@."
        matrix_cpu_s old_s pct limit;
      exit 6
    end
    else
      Format.printf "overhead check: matrix cpu %.1fs within %.0f%% of baseline %.1fs@."
        matrix_cpu_s pct old_s
  | Some pct, None ->
    Format.eprintf
      "overhead check skipped: no matrix_cpu_s in baseline (budget %.0f%%)@." pct
  | None, _ -> ());
  if !certify then begin
    export_largest_proof ();
    (* The certification gate: with [--certify], every row must carry a
       checked certificate — an unchecked or refuted verdict fails the run. *)
    match !unchecked with
    | [] -> Format.printf "certification: every row certified@."
    | bad ->
      List.iter (fun b -> Format.eprintf "UNCERTIFIED %s@." b) bad;
      exit 4
  end

(* {2 phases — per-depth wall-time attribution via the observability layer} *)

(* Runs quicksort-n3/P1 under a local recorder and folds the span tree into
   an encode/solve table per unroll depth (the EXPERIMENTS.md attribution
   table).  Certification is a run-level phase — it happens once, after the
   depth loop — so it is reported as its own row. *)
let phases () =
  hr "phases: quicksort-n3 P1 (emm) wall time by phase per unroll depth";
  let saved = Obs.current () in
  let r = Obs.create () in
  Obs.set_current (Some r);
  let outcome =
    Fun.protect
      ~finally:(fun () -> Obs.set_current saved)
      (fun () ->
        let net = (Designs.Registry.find "quicksort-n3").Designs.Registry.build () in
        let options = { (options ()) with Emmver.certify = !certify } in
        Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:"P1")
  in
  match Obs.spans (Obs.rows r) with
  | Error why ->
    Format.eprintf "malformed trace: %s@." why;
    exit 2
  | Ok spans ->
    let arr = Array.of_list spans in
    let rec depth_of idx =
      let sp = arr.(idx) in
      if sp.Obs.sp_name = "depth" then Obs.attr_int "k" sp.Obs.sp_attrs
      else match sp.Obs.sp_parent with Some p -> depth_of p | None -> None
    in
    let tbl = Hashtbl.create 32 in
    let phase_total = Hashtbl.create 4 in
    let bump_total name d =
      Hashtbl.replace phase_total name
        ((try Hashtbl.find phase_total name with Not_found -> 0.0) +. d)
    in
    Array.iteri
      (fun i sp ->
        match sp.Obs.sp_name with
        | ("encode" | "solve" | "certify") as name ->
          let d = Obs.duration sp in
          bump_total name d;
          (match depth_of i with
          | Some k ->
            let e, s =
              try Hashtbl.find tbl k with Not_found -> (0.0, 0.0)
            in
            Hashtbl.replace tbl k
              (if name = "encode" then (e +. d, s) else (e, s +. d))
          | None -> ())
        | _ -> ())
      arr;
    let total name =
      try Hashtbl.find phase_total name with Not_found -> 0.0
    in
    let ks = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []) in
    Format.printf "%-6s %-10s %-10s %-10s@." "k" "encode_s" "solve_s" "depth_s";
    List.iter
      (fun k ->
        let e, s = Hashtbl.find tbl k in
        Format.printf "%-6d %-10.3f %-10.3f %-10.3f@." k e s (e +. s))
      ks;
    Format.printf "certify (run level): %.3fs@." (total "certify");
    Format.printf "totals: encode %.3fs, solve %.3fs, certify %.3fs over %d depths@."
      (total "encode") (total "solve") (total "certify") (List.length ks);
    Format.printf "conclusion: %a (%.2fs)@." Emmver.pp_conclusion
      outcome.Emmver.conclusion outcome.Emmver.time_s

(* {2 Driver} *)

let () =
  let cmds = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--full" -> full := true
        | "--certify" -> certify := true
        | "--no-share" -> no_share := true
        | "--timeout" | "--baseline" | "-j" | "--jobs" | "--only" | "--out"
        | "--trace-out" | "--overhead-budget" | "--domains" | "--cache-dir" ->
          () (* value consumed below *)
        | _ ->
          if i > 1 && Sys.argv.(i - 1) = "--timeout" then timeout := float_of_string arg
          else if i > 1 && Sys.argv.(i - 1) = "--baseline" then baseline := Some arg
          else if i > 1 && Sys.argv.(i - 1) = "--only" then only := Some arg
          else if i > 1 && Sys.argv.(i - 1) = "--out" then out_file := arg
          else if i > 1 && Sys.argv.(i - 1) = "--trace-out" then trace_out := Some arg
          else if i > 1 && Sys.argv.(i - 1) = "--overhead-budget" then
            overhead_budget := Some (float_of_string arg)
          else if i > 1 && Sys.argv.(i - 1) = "--domains" then
            domains := max 1 (int_of_string arg)
          else if i > 1 && Sys.argv.(i - 1) = "--cache-dir" then cache_dir := Some arg
          else if i > 1 && (Sys.argv.(i - 1) = "-j" || Sys.argv.(i - 1) = "--jobs") then
            jobs := max 1 (int_of_string arg)
          else cmds := arg :: !cmds)
    Sys.argv;
  let cmds = if !cmds = [] then [ "all" ] else List.rev !cmds in
  let run = function
    | "table1" -> table1 ()
    | "table2" -> table2 ()
    | "case1" -> case1 ()
    | "case2" -> case2 ()
    | "growth" -> growth ()
    | "ablation" -> ablation ()
    | "micro" -> micro ()
    | "solver-json" -> solver_json ()
    | "phases" -> phases ()
    | "all" ->
      growth ();
      ablation ();
      case2 ();
      case1 ();
      table1 ();
      table2 ();
      micro ()
    | other ->
      Format.eprintf
        "unknown bench %S (expected \
         table1|table2|case1|case2|growth|ablation|micro|solver-json|phases|all)@."
        other;
      exit 2
  in
  Obs.run_with_trace ?out:!trace_out ~label:"bench" (fun () -> List.iter run cmds)
