(** Time-frame expansion of a netlist into CNF, with an optional
    simplifying, structurally-hashed encoding layer.

    Implements the [Unroll] step of the BMC algorithms (Figs. 1–3 of the
    paper): every netlist signal gets a solver literal per time frame,
    created on demand.  In {e plain} mode ([simplify = false]) the encoding
    is the paper-faithful baseline: AND gates receive standard Tseitin
    clauses and every node gets a fresh variable in every frame.

    In {e simplify} mode (the default) the encoder additionally performs:

    - {b constant folding} at the literal level — [And(x, false) = false],
      [And(x, true) = x], [And(x, x) = x], [And(x, ~x) = false] — including
      constants learned from latch initial values at frame 0 when
      [fold_init] is set;
    - {b structural hashing}: auxiliary variables are keyed on their
      normalized literal-level definition in one global table, so the same
      conjunction — within a frame or across frames via latch links —
      reuses one variable instead of being re-encoded;
    - {b n-ary collapsing}: single-fanout AND trees flatten into one n-ary
      conjunction (k+1 clauses instead of 3(k-1)), and the 3-gate
      mux/xor AIG pattern becomes one 4-clause MUX definition;
    - {b polarity-aware (Plaisted–Greenbaum) emission}: only the
      implication direction actually used is emitted, tracked per
      auxiliary variable; the missing direction is added on demand when a
      later frame or query needs it (clauses are only ever added, never
      retracted, so incremental solving stays sound);
    - {b latch aliasing} (only when [track_reasons = false]): the latch
      literal at frame [k > 0] {e is} the previous frame's next-state
      literal, eliminating one variable and two link clauses per latch per
      frame.

    Latches at frame [k > 0] otherwise get fresh variables linked to the
    previous frame's next-state literal by equivalence clauses {e tagged
    with the latch}, so that UNSAT cores translate into latch reasons
    ([Get_Latch_Reasons], Fig. 1 line 11).  Latch initial values are
    guarded by a dedicated activation literal {!act_init} so the same
    incremental solver serves initialised (forward) and uninitialised
    (backward-induction) queries.

    Memory read-data outputs ([Mem_out] nodes) become free variables per
    frame — the EMM layer constrains them; the explicit baseline never
    produces such nodes. *)

module Tag : sig
  (** What a clause tag refers to, for core-to-model mapping. *)
  type meaning =
    | Latch of Netlist.signal  (** transition-link / init clauses of a latch *)
    | Memory of int  (** EMM constraint clauses of a memory module *)
    | Misc of string
end

type polarity =
  | Pos  (** the literal may be forced true by its context *)
  | Neg  (** the literal may be forced false *)
  | Both

type t

val create :
  ?free_latches:(Netlist.signal -> bool) ->
  ?simplify:bool ->
  ?fold_init:bool ->
  ?track_reasons:bool ->
  Satsolver.Solver.t ->
  Netlist.t ->
  t
(** [free_latches] marks latches abstracted into pseudo-primary inputs (PBA
    abstraction): they get fresh unconstrained variables in every frame.

    [simplify] (default [true]) enables the simplifying encoder described
    above; [false] selects the plain paper-faithful baseline.

    [fold_init] (default [false]) folds frame-0 latches with concrete reset
    values into constants.  {b Only sound when every solver query assumes
    {!act_init}} (pure falsification mode): the folded values are
    unconditional, not guarded by the activation literal.

    [track_reasons] (default [true]) keeps the tagged latch link clauses
    needed for UNSAT-core reason extraction.  When [false] (and [simplify]
    is on), latches at frame [k > 0] are aliased to their previous-frame
    next-state literals instead. *)

val solver : t -> Satsolver.Solver.t
val net : t -> Netlist.t

val simplify_enabled : t -> bool
(** Whether this unroller was created with [simplify = true]. *)

val lit : ?pol:polarity -> t -> frame:int -> Netlist.signal -> Satsolver.Lit.t
(** The solver literal of a signal at a time frame ([frame >= 0]),
    elaborating the required cone on first use.  [pol] (default [Both])
    declares how the literal will be used, enabling polarity-aware
    emission; requesting a stronger polarity later adds the missing
    clauses. *)

val lit_opt : t -> frame:int -> Netlist.signal -> Satsolver.Lit.t option
(** The literal of an already-elaborated signal, or [None] when the signal
    has no encoding at that frame yet.  Unlike {!lit} this never extends the
    formula — safe to call after a [Sat] answer to read model values. *)

val fresh_lit : t -> Satsolver.Lit.t
(** A fresh positive literal, for auxiliary constraint variables. *)

val and_lit :
  ?tag:int -> ?pol:polarity -> t -> Satsolver.Lit.t list -> Satsolver.Lit.t
(** Conjunction of already-resolved literals, with constant folding,
    complement cancellation, deduplication and structural hashing: the same
    (sorted) literal set with the same [tag] always returns the same
    literal, encoded once.  An empty conjunction is the true literal. *)

val mux_lit :
  ?tag:int ->
  ?pol:polarity ->
  t ->
  Satsolver.Lit.t ->
  Satsolver.Lit.t ->
  Satsolver.Lit.t ->
  Satsolver.Lit.t
(** [mux_lit t s a b] is a literal equivalent to [if s then a else b]
    (4 clauses when a fresh definition is needed), folded and hashed like
    {!and_lit}. *)

val add_clause : ?tag:int -> t -> Satsolver.Lit.t list -> unit

val tag_for : t -> Tag.meaning -> int
(** Intern a tag.  The same meaning always yields the same tag. *)

val meaning_of : t -> int -> Tag.meaning option

val act_init : t -> Satsolver.Lit.t
(** Assumption literal activating the initial-state constraints (latch reset
    values; the EMM layer also guards reset memory contents with it). *)

val false_lit : t -> Satsolver.Lit.t
(** A literal constrained to false (shared by all constant nodes). *)

val is_free_latch : t -> Netlist.signal -> bool
val clauses_added : t -> int
val aux_vars : t -> int
(** Variables created by {!fresh_lit} (EMM bookkeeping: constraint size). *)

(** {2 Simplification telemetry} *)

type stats = {
  folds : int;  (** definitions removed by constant folding / cancellation *)
  hash_hits : int;  (** definitions shared through the structural hash *)
  collapsed_nodes : int;  (** AIG nodes swallowed into n-ary/MUX patterns *)
  vars_saved : int;
      (** circuit variables avoided vs. the plain per-frame Tseitin encoding
          of the same requests *)
  clauses_saved : int;  (** circuit clauses avoided, same baseline *)
  encode_time_s : float;  (** wall time spent inside {!lit}/{!and_lit} *)
}

val stats : t -> stats
