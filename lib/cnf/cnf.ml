module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

module Tag = struct
  type meaning =
    | Latch of Netlist.signal
    | Memory of int
    | Misc of string
end

(* Plaisted–Greenbaum polarity: [Pos] means the literal may be forced true
   by its context (the gate's downward implications are needed), [Neg] that
   it may be forced false (upward implications), [Both] both. *)
type polarity = Pos | Neg | Both

let flip = function Pos -> Neg | Neg -> Pos | Both -> Both
let needs = function Pos -> (true, false) | Neg -> (false, true) | Both -> (true, true)

(* Definition of a structurally-hashed auxiliary variable. *)
type def =
  | And_def of Lit.t array (* v <-> conjunction of the literals (sorted) *)
  | Mux_def of Lit.t * Lit.t * Lit.t (* v <-> if s then a else b, s positive *)

type gate = {
  g_var : int;
  g_def : def;
  g_tag : int option;
  mutable g_down : bool; (* v -> definition clauses emitted *)
  mutable g_up : bool; (* definition -> v clauses emitted *)
}

type stats = {
  folds : int;
  hash_hits : int;
  collapsed_nodes : int;
  vars_saved : int;
  clauses_saved : int;
  encode_time_s : float;
}

type t = {
  solver : Solver.t;
  net : Netlist.t;
  free_latches : Netlist.signal -> bool;
  simplify : bool;
  fold_init : bool;
  track_reasons : bool;
  frames : (int, (int, Lit.t) Hashtbl.t) Hashtbl.t; (* frame -> node id -> lit *)
  gate_hash : (def * int option, Lit.t) Hashtbl.t;
  gates : (int, gate) Hashtbl.t; (* var -> gate *)
  tags : (Tag.meaning, int) Hashtbl.t;
  meanings : (int, Tag.meaning) Hashtbl.t;
  mutable collapsible : Bytes.t option; (* node id -> may be swallowed *)
  mutable next_tag : int;
  mutable act_init : Lit.t option;
  mutable false_lit : Lit.t option;
  mutable clauses_added : int;
  mutable aux_vars : int;
  (* Simplification bookkeeping: [plain_*] is what the unsimplified encoder
     would have emitted for the same on-demand requests, [circ_*] what the
     circuit encoding actually emitted. *)
  mutable plain_vars : int;
  mutable plain_clauses : int;
  mutable circ_vars : int;
  mutable circ_clauses : int;
  mutable folds : int;
  mutable hash_hits : int;
  mutable collapsed : int;
  mutable encode_time : float;
}

let create ?(free_latches = fun _ -> false) ?(simplify = true) ?(fold_init = false)
    ?(track_reasons = true) solver net =
  {
    solver;
    net;
    free_latches;
    simplify;
    fold_init;
    track_reasons;
    frames = Hashtbl.create 64;
    gate_hash = Hashtbl.create 256;
    gates = Hashtbl.create 256;
    tags = Hashtbl.create 64;
    meanings = Hashtbl.create 64;
    collapsible = None;
    next_tag = 0;
    act_init = None;
    false_lit = None;
    clauses_added = 0;
    aux_vars = 0;
    plain_vars = 0;
    plain_clauses = 0;
    circ_vars = 0;
    circ_clauses = 0;
    folds = 0;
    hash_hits = 0;
    collapsed = 0;
    encode_time = 0.0;
  }

let solver t = t.solver
let net t = t.net
let simplify_enabled t = t.simplify

let add_clause ?tag t lits =
  t.clauses_added <- t.clauses_added + 1;
  Solver.add_clause ?tag t.solver lits

(* Circuit-encoding clause (counted against the plain-Tseitin baseline). *)
let emit ?tag t lits =
  t.circ_clauses <- t.circ_clauses + 1;
  add_clause ?tag t lits

let new_circ_var t =
  t.circ_vars <- t.circ_vars + 1;
  Solver.new_var t.solver

let bump_plain t vars clauses =
  t.plain_vars <- t.plain_vars + vars;
  t.plain_clauses <- t.plain_clauses + clauses

let fresh_lit t =
  t.aux_vars <- t.aux_vars + 1;
  Lit.pos (Solver.new_var t.solver)

let tag_for t meaning =
  match Hashtbl.find_opt t.tags meaning with
  | Some tag -> tag
  | None ->
    let tag = t.next_tag in
    t.next_tag <- tag + 1;
    Hashtbl.replace t.tags meaning tag;
    Hashtbl.replace t.meanings tag meaning;
    tag

let meaning_of t tag = Hashtbl.find_opt t.meanings tag

let act_init t =
  match t.act_init with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    t.act_init <- Some l;
    l

let false_lit t =
  match t.false_lit with
  | Some l -> l
  | None ->
    let l = Lit.pos (new_circ_var t) in
    emit t [ Lit.negate l ];
    t.false_lit <- Some l;
    l

let true_lit t = Lit.negate (false_lit t)
let is_false_lit t l = match t.false_lit with Some f -> l = f | None -> false
let is_true_lit t l = match t.false_lit with Some f -> l = Lit.negate f | None -> false

let frame_table t frame =
  match Hashtbl.find_opt t.frames frame with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    Hashtbl.replace t.frames frame tbl;
    tbl

let is_free_latch t l = t.free_latches l

(* An AND node may be swallowed into a parent's n-ary/MUX pattern iff it has
   exactly one AND fan-out reference and is not referenced from outside the
   combinational fabric (latch next-states, properties, outputs, memory port
   buses) — such nodes will be requested directly and would otherwise be
   encoded twice. *)
let collapsible t =
  match t.collapsible with
  | Some b -> b
  | None ->
    let n = Netlist.num_nodes t.net in
    let refs = Array.make n 0 in
    let rooted = Array.make n false in
    for id = 0 to n - 1 do
      match Netlist.node t.net id with
      | Netlist.And (a, b) ->
        refs.(Netlist.node_of a) <- refs.(Netlist.node_of a) + 1;
        refs.(Netlist.node_of b) <- refs.(Netlist.node_of b) + 1
      | Netlist.Latch { next = Some nx; _ } -> rooted.(Netlist.node_of nx) <- true
      | _ -> ()
    done;
    let root s =
      let i = Netlist.node_of s in
      if i < n then rooted.(i) <- true
    in
    List.iter (fun (_, s) -> root s) (Netlist.properties t.net);
    List.iter (fun (_, s) -> root s) (Netlist.outputs t.net);
    List.iter
      (fun m -> List.iter root (Netlist.memory_interface_signals m))
      (Netlist.memories t.net);
    let col = Bytes.make n '\000' in
    for id = 0 to n - 1 do
      match Netlist.node t.net id with
      | Netlist.And _ when refs.(id) <= 1 && not rooted.(id) -> Bytes.set col id '\001'
      | _ -> ()
    done;
    t.collapsible <- Some col;
    col

let node_collapsible t id =
  let col = collapsible t in
  id < Bytes.length col && Bytes.get col id = '\001'

(* {2 Polarity-aware clause emission} *)

let rec ensure_lit t l pol =
  let pol = if Lit.sign l then pol else flip pol in
  match Hashtbl.find_opt t.gates (Lit.var l) with
  | None -> ()
  | Some g -> ensure_gate t g pol

and ensure_gate t g pol =
  let need_down, need_up = needs pol in
  let v = Lit.pos g.g_var in
  if need_down && not g.g_down then begin
    g.g_down <- true;
    match g.g_def with
    | And_def ls ->
      Array.iter
        (fun l ->
          emit ?tag:g.g_tag t [ Lit.negate v; l ];
          ensure_lit t l Pos)
        ls
    | Mux_def (s, a, b) ->
      emit ?tag:g.g_tag t [ Lit.negate v; Lit.negate s; a ];
      emit ?tag:g.g_tag t [ Lit.negate v; s; b ];
      ensure_lit t s Both;
      ensure_lit t a Pos;
      ensure_lit t b Pos
  end;
  if need_up && not g.g_up then begin
    g.g_up <- true;
    match g.g_def with
    | And_def ls ->
      emit ?tag:g.g_tag t (v :: List.map Lit.negate (Array.to_list ls));
      Array.iter (fun l -> ensure_lit t l Neg) ls
    | Mux_def (s, a, b) ->
      emit ?tag:g.g_tag t [ v; Lit.negate s; Lit.negate a ];
      emit ?tag:g.g_tag t [ v; s; Lit.negate b ];
      ensure_lit t s Both;
      ensure_lit t a Neg;
      ensure_lit t b Neg
  end

(* {2 Structurally-hashed gate construction over literals} *)

let hashed_gate t ?tag pol def =
  let key = (def, tag) in
  match Hashtbl.find_opt t.gate_hash key with
  | Some l ->
    t.hash_hits <- t.hash_hits + 1;
    ensure_lit t l pol;
    l
  | None ->
    let v = new_circ_var t in
    let g = { g_var = v; g_def = def; g_tag = tag; g_down = false; g_up = false } in
    Hashtbl.replace t.gates v g;
    Hashtbl.replace t.gate_hash key (Lit.pos v);
    ensure_gate t g pol;
    Lit.pos v

(* Conjunction of already-resolved literals with constant folding, complement
   cancellation, deduplication and structural hashing. *)
let and_lits t ?tag pol lits =
  let n_in = List.length lits in
  let rec norm acc = function
    | [] -> Some acc
    | l :: rest ->
      if is_false_lit t l then None
      else if is_true_lit t l then norm acc rest
      else norm (l :: acc) rest
  in
  match norm [] lits with
  | None ->
    t.folds <- t.folds + 1;
    false_lit t
  | Some ls -> (
    let ls = List.sort_uniq compare ls in
    if List.exists (fun l -> List.mem (Lit.negate l) ls) ls then begin
      t.folds <- t.folds + 1;
      false_lit t
    end
    else
      match ls with
      | [] ->
        t.folds <- t.folds + 1;
        true_lit t
      | [ l ] ->
        t.folds <- t.folds + 1;
        l
      | _ ->
        if List.compare_length_with ls n_in < 0 then t.folds <- t.folds + 1;
        hashed_gate t ?tag pol (And_def (Array.of_list ls)))

(* v <-> if s then a else b, with branch-aware constant folding. *)
let mux_lits t ?tag pol s a b =
  if is_true_lit t s then a
  else if is_false_lit t s then b
  else begin
    let a = if a = s then true_lit t else if a = Lit.negate s then false_lit t else a in
    let b = if b = s then false_lit t else if b = Lit.negate s then true_lit t else b in
    if a = b then a
    else if is_true_lit t a && is_false_lit t b then s
    else if is_false_lit t a && is_true_lit t b then Lit.negate s
    else if is_false_lit t a then and_lits t ?tag pol [ Lit.negate s; b ]
    else if is_true_lit t a then
      Lit.negate (and_lits t ?tag (flip pol) [ Lit.negate s; Lit.negate b ])
    else if is_false_lit t b then and_lits t ?tag pol [ s; a ]
    else if is_true_lit t b then Lit.negate (and_lits t ?tag (flip pol) [ s; Lit.negate a ])
    else
      let s, a, b = if Lit.sign s then (s, a, b) else (Lit.negate s, b, a) in
      hashed_gate t ?tag pol (Mux_def (s, a, b))
  end

(* {2 Netlist elaboration} *)

(* MUX pattern: And(~A1, ~A2) with A1 = (p & r1), A2 = (q & r2), q = ~p, both
   A1 and A2 swallowable.  Then the node is ~mux(p, r1, r2). *)
let mux_match t id =
  match Netlist.node t.net id with
  | Netlist.And (c1, c2)
    when Netlist.is_complement c1 && Netlist.is_complement c2
         && node_collapsible t (Netlist.node_of c1)
         && node_collapsible t (Netlist.node_of c2) -> (
    match (Netlist.node t.net (Netlist.node_of c1), Netlist.node t.net (Netlist.node_of c2)) with
    | Netlist.And (u1, v1), Netlist.And (u2, v2) ->
      let compl_pair p q =
        Netlist.node_of p = Netlist.node_of q
        && Netlist.is_complement p <> Netlist.is_complement q
      in
      if compl_pair u1 u2 then Some (u1, v1, v2)
      else if compl_pair u1 v2 then Some (u1, v1, u2)
      else if compl_pair v1 u2 then Some (v1, u1, v2)
      else if compl_pair v1 v2 then Some (v1, u1, u2)
      else None
    | _ -> None)
  | _ -> None

exception False_leaf

let rec node_lit t frame id pol =
  let tbl = frame_table t frame in
  match Hashtbl.find_opt tbl id with
  | Some l ->
    if t.simplify then ensure_lit t l pol;
    l
  | None ->
    if not t.simplify then begin
      (* Plain mode: the paper-faithful per-frame Tseitin encoding,
         preserved verbatim for A/B comparison. *)
      let v = Solver.new_var t.solver in
      (* Register before elaborating the definition: latch links reach back
         to earlier frames only, so no cycle goes through (frame, id) itself,
         but early registration keeps the recursion linear. *)
      Hashtbl.replace tbl id (Lit.pos v);
      let lv = Lit.pos v in
      (match Netlist.node t.net id with
      | Netlist.Const_false -> add_clause t [ Lit.negate lv ]
      | Netlist.Input _ | Netlist.Mem_out _ -> ()
      | Netlist.And (a, b) ->
        let la = signal_lit t frame a Both in
        let lb = signal_lit t frame b Both in
        add_clause t [ Lit.negate lv; la ];
        add_clause t [ Lit.negate lv; lb ];
        add_clause t [ lv; Lit.negate la; Lit.negate lb ]
      | Netlist.Latch { init; next; _ } ->
        let lsig = Netlist.signal_of_node id false in
        if not (t.free_latches lsig) then begin
          let tag = tag_for t (Tag.Latch lsig) in
          if frame = 0 then begin
            match init with
            | Some b ->
              let a = act_init t in
              add_clause ~tag t [ Lit.negate a; (if b then lv else Lit.negate lv) ]
            | None -> ()
          end
          else begin
            match next with
            | Some n ->
              let ln = signal_lit t (frame - 1) n Both in
              add_clause ~tag t [ Lit.negate lv; ln ];
              add_clause ~tag t [ lv; Lit.negate ln ]
            | None -> invalid_arg "Cnf: latch with unset next-state"
          end
        end);
      lv
    end
    else begin
      let l =
        match Netlist.node t.net id with
        | Netlist.Const_false ->
          bump_plain t 1 1;
          false_lit t
        | Netlist.Input _ | Netlist.Mem_out _ ->
          bump_plain t 1 0;
          Lit.pos (new_circ_var t)
        | Netlist.And _ -> encode_and t frame id pol
        | Netlist.Latch { init; next; _ } -> encode_latch t frame id pol init next
      in
      Hashtbl.replace tbl id l;
      ensure_lit t l pol;
      l
    end

and encode_latch t frame id pol init next =
  let lsig = Netlist.signal_of_node id false in
  if t.free_latches lsig then begin
    bump_plain t 1 0;
    Lit.pos (new_circ_var t)
  end
  else if frame = 0 then begin
    match init with
    | Some b when t.fold_init ->
      (* Initial value folded to a constant: only sound when every solver
         query assumes [act_init] (falsification mode). *)
      bump_plain t 1 1;
      t.folds <- t.folds + 1;
      if b then true_lit t else false_lit t
    | Some b ->
      bump_plain t 1 1;
      let v = new_circ_var t in
      let lv = Lit.pos v in
      let tag = tag_for t (Tag.Latch lsig) in
      let a = act_init t in
      emit ~tag t [ Lit.negate a; (if b then lv else Lit.negate lv) ];
      lv
    | None ->
      bump_plain t 1 0;
      Lit.pos (new_circ_var t)
  end
  else begin
    match next with
    | None -> invalid_arg "Cnf: latch with unset next-state"
    | Some n ->
      bump_plain t 1 2;
      if t.track_reasons then begin
        let v = new_circ_var t in
        let lv = Lit.pos v in
        let ln = signal_lit t (frame - 1) n Both in
        let tag = tag_for t (Tag.Latch lsig) in
        emit ~tag t [ Lit.negate lv; ln ];
        emit ~tag t [ lv; Lit.negate ln ];
        lv
      end
      else
        (* Alias the latch to its previous-frame next-state literal: one
           variable and two clauses cheaper per latch per frame.  Requires
           [track_reasons = false]: the tagged link clauses consumed by
           UNSAT-core reason extraction disappear. *)
        signal_lit t (frame - 1) n pol
  end

and encode_and t frame id pol =
  bump_plain t 1 3;
  match mux_match t id with
  | Some (sel, r1, r2) ->
    (* ~((sel & r1) | (~sel & r2)) — both inner ANDs are swallowed. *)
    bump_plain t 2 6;
    t.collapsed <- t.collapsed + 2;
    let mpol = flip pol in
    let ls = signal_lit t frame sel Both in
    let la = signal_lit t frame r1 mpol in
    let lb = signal_lit t frame r2 mpol in
    Lit.negate (mux_lits t mpol ls la lb)
  | None ->
    (* n-ary flattening: expand swallowable non-complemented AND children
       into a single conjunction, short-circuiting on a false leaf. *)
    let leaves = ref [] in
    let rec go s =
      let cid = Netlist.node_of s in
      if (not (Netlist.is_complement s)) && node_collapsible t cid then begin
        match Netlist.node t.net cid with
        | Netlist.And (a, b) ->
          bump_plain t 1 3;
          t.collapsed <- t.collapsed + 1;
          go a;
          go b
        | _ -> assert false
      end
      else begin
        let l = signal_lit t frame s pol in
        if is_false_lit t l then raise False_leaf
        else if is_true_lit t l then ()
        else leaves := l :: !leaves
      end
    in
    (match Netlist.node t.net id with
    | Netlist.And (a, b) -> (
      try
        go a;
        go b;
        and_lits t pol !leaves
      with False_leaf ->
        t.folds <- t.folds + 1;
        false_lit t)
    | _ -> assert false)

and signal_lit t frame s pol =
  let pol = if Netlist.is_complement s then flip pol else pol in
  let l = node_lit t frame (Netlist.node_of s) pol in
  if Netlist.is_complement s then Lit.negate l else l

let lit ?(pol = Both) t ~frame s =
  if frame < 0 then invalid_arg "Cnf.lit: negative frame";
  if not t.simplify then signal_lit t frame s Both
  else begin
    let t0 = Unix.gettimeofday () in
    let l = signal_lit t frame s pol in
    t.encode_time <- t.encode_time +. (Unix.gettimeofday () -. t0);
    l
  end

let lit_opt t ~frame s =
  match Hashtbl.find_opt t.frames frame with
  | None -> None
  | Some tbl -> (
    match Hashtbl.find_opt tbl (Netlist.node_of s) with
    | None -> None
    | Some l -> Some (if Netlist.is_complement s then Lit.negate l else l))

let and_lit ?tag ?(pol = Both) t lits =
  let t0 = Unix.gettimeofday () in
  let l = and_lits t ?tag pol lits in
  t.encode_time <- t.encode_time +. (Unix.gettimeofday () -. t0);
  l

let mux_lit ?tag ?(pol = Both) t s a b =
  let t0 = Unix.gettimeofday () in
  let l = mux_lits t ?tag pol s a b in
  t.encode_time <- t.encode_time +. (Unix.gettimeofday () -. t0);
  l

let clauses_added t = t.clauses_added
let aux_vars t = t.aux_vars

let stats t =
  {
    folds = t.folds;
    hash_hits = t.hash_hits;
    collapsed_nodes = t.collapsed;
    vars_saved = t.plain_vars - t.circ_vars;
    clauses_saved = t.plain_clauses - t.circ_clauses;
    encode_time_s = t.encode_time;
  }
