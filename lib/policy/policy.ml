type error =
  | Budget_exhausted of string
  | Worker_killed of string
  | Encode_error of string
  | Cert_failed of string

let error_message = function
  | Budget_exhausted s -> "budget exhausted: " ^ s
  | Worker_killed s -> "worker killed: " ^ s
  | Encode_error s -> "encode error: " ^ s
  | Cert_failed s -> "certification failed: " ^ s

let pp_error ppf e = Format.pp_print_string ppf (error_message e)

type budgets = {
  wall_s : float option;
  conflicts : int option;
  learnt_mb : float option;
  max_depth : int option;
}

let unlimited = { wall_s = None; conflicts = None; learnt_mb = None; max_depth = None }

type event = {
  ev_stage : string;
  ev_attempt : int;
  ev_error : error;
  ev_elapsed_s : float;
}

let pp_event ppf ev =
  Format.fprintf ppf "%s (attempt %d, %.2fs): %a" ev.ev_stage ev.ev_attempt
    ev.ev_elapsed_s pp_error ev.ev_error

type t = { budgets : budgets; fallback : string list; worker_retries : int }

let default =
  { budgets = unlimited; fallback = [ "emm"; "explicit"; "bdd" ]; worker_retries = 1 }

type 'r attempt_result = Done of 'r | Soft of 'r | Failed of error

let execute ?(on_event = fun _ -> ()) policy ~stages ~stage_name ~run =
  let events = ref [] in
  let record stage attempt error elapsed =
    let ev =
      { ev_stage = stage; ev_attempt = attempt; ev_error = error; ev_elapsed_s = elapsed }
    in
    events := ev :: !events;
    on_event ev
  in
  let soft = ref None in
  let last_error = ref None in
  let rec attempt_stage stage n =
    let name = stage_name stage in
    let t0 = Unix.gettimeofday () in
    match run stage ~attempt:n with
    | Done r -> Some r
    | Soft r ->
      (match !soft with None -> soft := Some r | Some _ -> ());
      None
    | Failed err ->
      record name n err (Unix.gettimeofday () -. t0);
      last_error := Some err;
      (match err with
      | Worker_killed _ when n < policy.worker_retries -> attempt_stage stage (n + 1)
      | _ -> None)
  in
  let rec chain = function
    | [] -> (
      match (!soft, !last_error) with
      | Some r, _ -> Ok r
      | None, Some err -> Error err
      | None, None -> Error (Encode_error "no stages to run"))
    | stage :: rest -> (
      match attempt_stage stage 0 with Some r -> Ok r | None -> chain rest)
  in
  let result = chain stages in
  (result, List.rev !events)
