(** Resilience policy: resource budgets, a typed failure taxonomy and a
    declarative engine-fallback chain.

    A verification run should degrade, not die: when an engine exhausts its
    budget, its worker process is killed, its encoder raises, or its
    certificate fails to check, the policy layer records a degradation
    {!event} and moves on — to a retry of the same engine (worker death
    only) or to the next engine in the {!t.fallback} chain.  The generic
    executor {!execute} implements exactly this loop; [Emmver] instantiates
    it with real engines. *)

type error =
  | Budget_exhausted of string
      (** wall clock, conflict, memory or depth budget ran out *)
  | Worker_killed of string
      (** the forked worker died: signal, out-of-memory, nonzero exit *)
  | Encode_error of string
      (** the encoder (unroller, EMM layer) raised while building the
          formula *)
  | Cert_failed of string
      (** the verdict's certificate was {e refuted} — the result cannot be
          trusted *)

val error_message : error -> string
val pp_error : Format.formatter -> error -> unit

type budgets = {
  wall_s : float option;  (** wall-clock seconds for the whole attempt *)
  conflicts : int option;  (** solver conflicts per SAT query *)
  learnt_mb : float option;  (** learnt-clause database ceiling, MB *)
  max_depth : int option;  (** BMC unrolling depth cap *)
}

val unlimited : budgets
(** All fields [None]. *)

type event = {
  ev_stage : string;  (** engine (or stage) name that failed *)
  ev_attempt : int;  (** 0-based attempt number within that stage *)
  ev_error : error;
  ev_elapsed_s : float;  (** wall clock spent on the failed attempt *)
}

val pp_event : Format.formatter -> event -> unit

type t = {
  budgets : budgets;
  fallback : string list;
      (** stage names tried in order, e.g. [["emm"; "explicit"; "bdd"]] *)
  worker_retries : int;
      (** extra attempts granted to a stage whose {e worker} died (other
          failures advance to the next stage immediately) *)
}

val default : t
(** [emm -> explicit -> bdd], one retry on worker death, unlimited
    budgets. *)

type 'r attempt_result =
  | Done of 'r  (** conclusive — stop here *)
  | Soft of 'r
      (** inconclusive but honest (e.g. bounded-safe); kept as the answer of
          last resort while later stages are tried *)
  | Failed of error  (** the stage failed; consult the policy *)

val execute :
  ?on_event:(event -> unit) ->
  t ->
  stages:'s list ->
  stage_name:('s -> string) ->
  run:('s -> attempt:int -> 'r attempt_result) ->
  ('r, error) result * event list
(** Run the stages in order until one returns [Done].  A [Failed] with
    {!Worker_killed} is retried on the same stage up to [worker_retries]
    times; any other failure advances the chain.  When no stage concludes,
    the first [Soft] result (if any) is returned as [Ok]; otherwise the last
    error.  Degradation events are returned in chronological order and also
    streamed to [on_event]. *)
