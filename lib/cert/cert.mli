(** Independent certification of verification verdicts.

    A verdict produced by the SAT/BMC stack is only as trustworthy as the
    solver that produced it.  This module makes verdicts {e checkable}:

    - UNSAT answers (and therefore [Proved] verdicts, whose induction
      arguments are conjunctions of UNSAT queries) are validated by {!Drat},
      a reverse unit-propagation proof checker that replays the solver's
      DRAT derivation log over the original clauses using nothing but an
      independent unit-propagation engine;
    - SAT answers ([Falsified] verdicts) are validated by replaying the
      extracted counterexample trace through the cycle-accurate simulator on
      the {e concrete} memory design (see [Bmc.Trace.certify]).

    The result of either check is a {!t}: [Certified] with the kind of
    evidence, [Refuted] when the evidence contradicts the verdict (a solver
    or encoder bug), or [Unchecked] when no certification was attempted. *)

type kind =
  | Drat_checked  (** UNSAT obligations validated by the {!Drat} checker *)
  | Trace_replayed
      (** counterexample replayed on the concrete design, interface signals
          diffed cycle by cycle *)

type t =
  | Certified of kind
  | Refuted of string
      (** certification {e contradicted} the verdict; the payload says how *)
  | Unchecked of string  (** no check attempted; the payload says why *)

val label : t -> string
(** Short machine-readable tag: ["drat-checked"], ["trace-replayed"],
    ["refuted"] or ["unchecked"]. *)

val pp : Format.formatter -> t -> unit

(** Backward DRAT/RUP proof checker.

    The checker is deliberately independent of the solver: it shares no
    propagation code, no clause representation and no heuristics — only the
    literal encoding of {!Satsolver.Lit}.  It validates that a set of
    {e obligations} (assumption cubes the solver reported UNSAT) are each
    refutable by unit propagation over the original clauses plus the logged
    derivation, and — working backward — that every derivation step in the
    cone of some obligation is itself a reverse-unit-propagation (RUP)
    consequence of the clauses preceding it.  Deletion steps are honoured
    when propagating, which is what makes checking tractable; since deletion
    never removes logical implications, a failed obligation is re-tried once
    with all deleted lemmas revived before being rejected. *)
module Drat : sig
  type step = Satsolver.Solver.proof_step =
    | Padd of Satsolver.Lit.t list
    | Pdel of Satsolver.Lit.t list

  type report = {
    steps : int;  (** total proof steps replayed *)
    lemmas : int;  (** addition steps among them *)
    checked_lemmas : int;  (** lemmas actually RUP-verified (the cone) *)
    obligations : int;  (** UNSAT obligations validated *)
  }

  type outcome = Valid of report | Invalid of string

  val check :
    ?every_lemma:bool ->
    num_vars:int ->
    original:Satsolver.Lit.t list list ->
    proof:step list ->
    obligations:Satsolver.Lit.t list list ->
    unit ->
    outcome
  (** Validate that each obligation (a list of assumption literals; [[]]
      states plain unsatisfiability) conflicts under unit propagation at the
      end of the derivation, then verify the marked backward cone.  With
      [every_lemma] (default false) all addition steps are verified whether
      or not an obligation depends on them — slower, used by tests that
      must detect any corrupted line. *)

  val clause_is_rup :
    num_vars:int ->
    Satsolver.Lit.t list list ->
    Satsolver.Lit.t list ->
    bool
  (** [clause_is_rup ~num_vars set clause]: does asserting the negation of
      [clause] over [set] yield a conflict by unit propagation alone? *)

  val verify :
    num_vars:int ->
    original:Satsolver.Lit.t list list ->
    derivation:Satsolver.Lit.t list list ->
    bool
  (** Forward check (the interface of the retired [Satsolver.Checker]):
      every derivation clause is RUP in sequence and the final set is
      unit-refutable. *)

  val output : out_channel -> step list -> unit
  (** Write the derivation in standard textual DRAT format (DIMACS literals,
      deletions prefixed with ["d "]). *)
end
