module Lit = Satsolver.Lit
module Solver = Satsolver.Solver

type kind = Drat_checked | Trace_replayed
type t = Certified of kind | Refuted of string | Unchecked of string

let label = function
  | Certified Drat_checked -> "drat-checked"
  | Certified Trace_replayed -> "trace-replayed"
  | Refuted _ -> "refuted"
  | Unchecked _ -> "unchecked"

let pp ppf = function
  | Certified Drat_checked -> Format.pp_print_string ppf "certified (drat-checked)"
  | Certified Trace_replayed ->
    Format.pp_print_string ppf "certified (trace-replayed)"
  | Refuted why -> Format.fprintf ppf "REFUTED: %s" why
  | Unchecked why -> Format.fprintf ppf "unchecked (%s)" why

module Drat = struct
  type step = Solver.proof_step = Padd of Lit.t list | Pdel of Lit.t list

  type report = {
    steps : int;
    lemmas : int;
    checked_lemmas : int;
    obligations : int;
  }

  type outcome = Valid of report | Invalid of string

  exception Invalid_proof of string

  type cls = { lits : Lit.t array; mutable alive : bool; mutable marked : bool }

  type state = {
    nvars : int;
    occs : cls list array;  (* literal -> clauses containing it *)
    assign : int array;  (* per var: -1 unassigned / 0 false / 1 true *)
    reason : cls option array;  (* per var: clause that forced it *)
    visited : int array;  (* per var: cone-marking stamp *)
    mutable stamp : int;
    mutable units : cls list;  (* every unit clause ever added *)
    mutable empties : cls list;  (* every empty clause ever added *)
    index : (Lit.t list, cls list ref) Hashtbl.t;  (* sorted lits -> clauses *)
  }

  let create nvars =
    {
      nvars;
      occs = Array.make (2 * nvars) [];
      assign = Array.make nvars (-1);
      reason = Array.make nvars None;
      visited = Array.make nvars 0;
      stamp = 0;
      units = [];
      empties = [];
      index = Hashtbl.create 4096;
    }

  let add st lits =
    let key = List.sort_uniq compare lits in
    let arr = Array.of_list key in
    let c = { lits = arr; alive = true; marked = false } in
    Array.iter (fun l -> st.occs.(l) <- c :: st.occs.(l)) arr;
    (match Array.length arr with
    | 0 -> st.empties <- c :: st.empties
    | 1 -> st.units <- c :: st.units
    | _ -> ());
    (match Hashtbl.find_opt st.index key with
    | Some bucket -> bucket := c :: !bucket
    | None -> Hashtbl.add st.index key (ref [ c ]));
    c

  let pp_clause ppf lits =
    if Array.length lits = 0 then Format.pp_print_string ppf "<empty>"
    else
      Array.iteri
        (fun i l -> Format.fprintf ppf "%s%d" (if i = 0 then "" else " ") (Lit.to_dimacs l))
        lits

  let take_alive st lits =
    let key = List.sort_uniq compare lits in
    match Hashtbl.find_opt st.index key with
    | None -> None
    | Some bucket -> List.find_opt (fun c -> c.alive) !bucket

  let lit_value st l =
    match st.assign.(Lit.var l) with
    | -1 -> -1
    | v -> if Lit.sign l then v else 1 - v

  (* Conflict payload: the clause found falsified (if any) plus variables
     whose reason chains feed the conflict cone. *)
  exception Conflict of cls option * int list

  let enqueue st trail queue l reason =
    match lit_value st l with
    | 1 -> ()
    | 0 -> raise (Conflict (reason, [ Lit.var l ]))
    | _ ->
      st.assign.(Lit.var l) <- (if Lit.sign l then 1 else 0);
      st.reason.(Lit.var l) <- reason;
      trail := Lit.var l :: !trail;
      Queue.push l queue

  let scan_clause st trail queue c =
    let n = Array.length c.lits in
    let unit_lit = ref (-1) in
    let n_unassigned = ref 0 in
    let satisfied = ref false in
    let i = ref 0 in
    while (not !satisfied) && !i < n do
      let l = c.lits.(!i) in
      (match lit_value st l with
      | 1 -> satisfied := true
      | -1 ->
        incr n_unassigned;
        unit_lit := l
      | _ -> ());
      incr i
    done;
    if not !satisfied then
      if !n_unassigned = 0 then raise (Conflict (Some c, []))
      else if !n_unassigned = 1 then enqueue st trail queue !unit_lit (Some c)

  let propagate st trail queue =
    while not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      (* p just became true: clauses containing ¬p may be unit or empty. *)
      List.iter
        (fun c -> if c.alive then scan_clause st trail queue c)
        st.occs.(Lit.negate p)
    done

  let mark_cone st confl extra_vars =
    st.stamp <- st.stamp + 1;
    let s = st.stamp in
    let stack = ref [] in
    let push_var v =
      if st.visited.(v) <> s then begin
        st.visited.(v) <- s;
        stack := v :: !stack
      end
    in
    let push_clause c =
      c.marked <- true;
      Array.iter (fun l -> push_var (Lit.var l)) c.lits
    in
    (match confl with Some c -> push_clause c | None -> ());
    List.iter push_var extra_vars;
    let rec drain () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        (match st.reason.(v) with Some c -> push_clause c | None -> ());
        drain ()
    in
    drain ()

  let undo st trail =
    List.iter
      (fun v ->
        st.assign.(v) <- -1;
        st.reason.(v) <- None)
      trail

  (* Does propagation from the alive unit clauses plus [extra_lits] (asserted
     as given) yield a conflict?  On success the conflict cone is marked. *)
  let refutes st extra_lits =
    match List.find_opt (fun c -> c.alive) st.empties with
    | Some c ->
      c.marked <- true;
      true
    | None -> (
      let trail = ref [] in
      let queue = Queue.create () in
      match
        List.iter
          (fun c -> if c.alive then enqueue st trail queue c.lits.(0) (Some c))
          st.units;
        List.iter (fun l -> enqueue st trail queue l None) extra_lits;
        propagate st trail queue
      with
      | () ->
        undo st !trail;
        false
      | exception Conflict (confl, vars) ->
        (* Mark before undoing: the cone walks the reason chains. *)
        mark_cone st confl vars;
        undo st !trail;
        true)

  let nvars_of ~num_vars ~original ~proof ~obligations =
    let m = ref num_vars in
    let see l = if Lit.var l >= !m then m := Lit.var l + 1 in
    List.iter (List.iter see) original;
    List.iter (function Padd ls | Pdel ls -> List.iter see ls) proof;
    List.iter (List.iter see) obligations;
    !m

  let check ?(every_lemma = false) ~num_vars ~original ~proof ~obligations () =
    let nvars = nvars_of ~num_vars ~original ~proof ~obligations in
    let st = create nvars in
    List.iter (fun c -> ignore (add st c)) original;
    try
      (* Forward replay of the derivation, honouring deletions. *)
      let trail =
        List.mapi
          (fun i step ->
            match step with
            | Padd lits -> `Add (add st lits)
            | Pdel lits -> (
              match take_alive st lits with
              | Some c ->
                c.alive <- false;
                `Del c
              | None ->
                raise
                  (Invalid_proof
                     (Format.asprintf "step %d deletes absent clause [%a]" i
                        pp_clause
                        (Array.of_list (List.sort_uniq compare lits))))))
          proof
      in
      (* Every obligation must conflict at the end state.  Deletion weakens
         propagation but never implication, so revive deleted lemmas once
         before giving up. *)
      let revived = ref false in
      List.iteri
        (fun i a ->
          let ok =
            refutes st a
            ||
            (List.iter (function `Del c -> c.alive <- true | `Add _ -> ()) trail;
             revived := true;
             refutes st a)
          in
          if not ok then
            raise
              (Invalid_proof
                 (Format.asprintf
                    "obligation %d ([%a]) not refuted by unit propagation" i
                    pp_clause (Array.of_list a))))
        obligations;
      ignore !revived;
      (* Backward pass: walk the derivation in reverse, reviving deletions
         and retiring additions; verify each addition in the marked cone
         against exactly the clauses that preceded it. *)
      let checked = ref 0 in
      let lemmas = ref 0 in
      List.iteri
        (fun j step ->
          match step with
          | `Del c -> c.alive <- true
          | `Add c ->
            incr lemmas;
            c.alive <- false;
            if c.marked || every_lemma then begin
              let negs = List.map Lit.negate (Array.to_list c.lits) in
              if refutes st negs then incr checked
              else
                raise
                  (Invalid_proof
                     (Format.asprintf "lemma %d ([%a]) is not RUP"
                        (List.length trail - 1 - j)
                        pp_clause c.lits))
            end)
        (List.rev trail);
      Valid
        {
          steps = List.length proof;
          lemmas = !lemmas;
          checked_lemmas = !checked;
          obligations = List.length obligations;
        }
    with Invalid_proof why -> Invalid why

  let clause_is_rup ~num_vars set clause =
    let nvars = nvars_of ~num_vars ~original:set ~proof:[] ~obligations:[ clause ] in
    let st = create nvars in
    List.iter (fun c -> ignore (add st c)) set;
    refutes st (List.map Lit.negate clause)

  let verify ~num_vars ~original ~derivation =
    match
      check ~every_lemma:true ~num_vars ~original
        ~proof:(List.map (fun c -> Padd c) derivation)
        ~obligations:[ [] ] ()
    with
    | Valid _ -> true
    | Invalid _ -> false

  let output oc steps =
    List.iter
      (fun s ->
        let prefix, lits = match s with Padd l -> ("", l) | Pdel l -> ("d ", l) in
        output_string oc prefix;
        List.iter
          (fun l ->
            output_string oc (string_of_int (Lit.to_dimacs l));
            output_char oc ' ')
          lits;
        output_string oc "0\n")
      steps
end
