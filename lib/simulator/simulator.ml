type t = {
  net : Netlist.t;
  latch_state : (int, bool) Hashtbl.t; (* latch node id -> current value *)
  mem_state : (int, int array) Hashtbl.t; (* memory id -> contents *)
  mem_by_id : (int, Netlist.memory) Hashtbl.t;
  values : int array; (* node id -> -1 unknown / 0 / 1, for the current cycle *)
  on_stack : bool array; (* combinational-cycle detection *)
  mutable cycle : int;
  mutable evaluated : bool;
}

(* Little-endian: bit i of the bus is bit i of the word. *)
let bits_of_bus bus ~eval =
  let w = ref 0 in
  Array.iteri (fun i s -> if eval s then w := !w lor (1 lsl i)) bus;
  !w

let initial_word mem_values m a =
  match Netlist.memory_init m with
  | Netlist.Zeros -> 0
  | Netlist.Arbitrary -> mem_values m a
  | Netlist.Words ws -> if a < Array.length ws then ws.(a) else 0

let create ?(latch_values = fun _ -> false) ?(mem_values = fun _ _ -> 0) net =
  let latch_state = Hashtbl.create 64 in
  List.iter
    (fun l ->
      let v =
        match Netlist.latch_init net l with
        | Some b -> b
        | None -> latch_values l
      in
      Hashtbl.replace latch_state (Netlist.node_of l) v)
    (Netlist.latches net);
  let mem_state = Hashtbl.create 4 in
  let mem_by_id = Hashtbl.create 4 in
  List.iter
    (fun m ->
      let size = 1 lsl Netlist.memory_addr_width m in
      let contents = Array.init size (initial_word mem_values m) in
      Hashtbl.replace mem_state (Netlist.memory_id m) contents;
      Hashtbl.replace mem_by_id (Netlist.memory_id m) m)
    (Netlist.memories net);
  {
    net;
    latch_state;
    mem_state;
    mem_by_id;
    values = Array.make (max 1 (Netlist.num_nodes net)) (-1);
    on_stack = Array.make (max 1 (Netlist.num_nodes net)) false;
    cycle = 0;
    evaluated = false;
  }

(* Demand-driven combinational evaluation with cycle detection.  Memory read
   outputs observe the memory contents at the start of the cycle. *)
let rec eval_node t ~inputs id =
  match t.values.(id) with
  | 0 -> false
  | 1 -> true
  | _ ->
    if t.on_stack.(id) then failwith "Simulator: combinational cycle";
    t.on_stack.(id) <- true;
    let v =
      match Netlist.node t.net id with
      | Netlist.Const_false -> false
      | Netlist.Input name -> inputs name
      | Netlist.Latch _ -> Hashtbl.find t.latch_state id
      | Netlist.And (a, b) ->
        (* Strict in both operands so that every gate of the demanded cone
           has a recorded value for observers ([value], VCD). *)
        let va = eval_signal t ~inputs a in
        let vb = eval_signal t ~inputs b in
        va && vb
      | Netlist.Mem_out { mem; port; bit } ->
        let m = Hashtbl.find t.mem_by_id mem in
        let addr_bus, enable, _ = Netlist.read_port m port in
        let en = eval_signal t ~inputs enable in
        let addr = bits_of_bus addr_bus ~eval:(eval_signal t ~inputs) in
        if en then begin
          let word = (Hashtbl.find t.mem_state mem).(addr) in
          (word lsr bit) land 1 = 1
        end
        else false
    in
    t.on_stack.(id) <- false;
    t.values.(id) <- (if v then 1 else 0);
    v

and eval_signal t ~inputs s =
  let v = eval_node t ~inputs (Netlist.node_of s) in
  if Netlist.is_complement s then not v else v

let step t ~inputs =
  Array.fill t.values 0 (Array.length t.values) (-1);
  (* Evaluate everything reachable from next-states, memory ports, properties
     and outputs so that [value] works on any of them afterwards. *)
  let eval s = eval_signal t ~inputs s in
  (* Force current latch and input values so observers ([value], VCD dumps)
     can read any named signal of the cycle, not just those in live cones. *)
  List.iter (fun l -> ignore (eval l)) (Netlist.latches t.net);
  List.iter (fun s -> ignore (eval s)) (Netlist.inputs t.net);
  let next_latches =
    List.map
      (fun l -> (Netlist.node_of l, eval (Netlist.latch_next t.net l)))
      (Netlist.latches t.net)
  in
  List.iter (fun (name, s) -> ignore name; ignore (eval s)) (Netlist.properties t.net);
  List.iter (fun (name, s) -> ignore name; ignore (eval s)) (Netlist.outputs t.net);
  (* Sample write ports before advancing state. *)
  let writes =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun w ->
            let addr_bus, data_bus, enable = Netlist.write_port m w in
            (* Evaluate the buses even on idle cycles so [value] can report
               write-port bits to trace certification. *)
            let enabled = eval enable in
            let addr = bits_of_bus addr_bus ~eval in
            let data = bits_of_bus data_bus ~eval in
            if enabled then Some (Netlist.memory_id m, addr, data) else None)
          (List.init (Netlist.num_write_ports m) Fun.id))
      (Netlist.memories t.net)
  in
  (* Force read ports too so traces can report them. *)
  List.iter
    (fun m ->
      List.iter
        (fun r ->
          let addr_bus, enable, out = Netlist.read_port m r in
          ignore (eval enable);
          Array.iter (fun s -> ignore (eval s)) addr_bus;
          Array.iter (fun s -> ignore (eval s)) out)
        (List.init (Netlist.num_read_ports m) Fun.id))
    (Netlist.memories t.net);
  (* Advance the state. *)
  List.iter (fun (id, v) -> Hashtbl.replace t.latch_state id v) next_latches;
  List.iter
    (fun (mem, addr, data) -> (Hashtbl.find t.mem_state mem).(addr) <- data)
    writes;
  t.cycle <- t.cycle + 1;
  t.evaluated <- true

let value t s =
  if not t.evaluated then invalid_arg "Simulator.value: no step evaluated yet";
  let id = Netlist.node_of s in
  match t.values.(id) with
  | 0 -> Netlist.is_complement s
  | 1 -> not (Netlist.is_complement s)
  | _ -> invalid_arg "Simulator.value: signal not evaluated this cycle"

let latch_value t l =
  match Hashtbl.find_opt t.latch_state (Netlist.node_of l) with
  | Some v -> if Netlist.is_complement l then not v else v
  | None -> invalid_arg "Simulator.latch_value: not a latch"

let mem_word t m a = (Hashtbl.find t.mem_state (Netlist.memory_id m)).(a)
let cycle t = t.cycle
