(* Verification-as-a-service daemon.  See serve.mli for the contract and
   doc/protocol.mld for the wire format.

   Architecture: one single-threaded select loop multiplexes the listening
   socket, every client connection (buffered line reader + backpressured
   writer) and the result pipes of the forked job workers
   (Parallel.Async).  All blocking work — encoding, SAT solving, cache
   validation — happens in the workers; the loop only parses lines,
   schedules jobs and shuffles bytes, so a wedged client or a crashing job
   can never stall the service. *)

(* Version 2 adds the durability surface: [resume]/[ack] ops, retry hints
   on [busy]/[shutdown] replies, and the [durability] metrics object.  All
   v1 request and reply forms parse and render unchanged. *)
let protocol_version = 2

let default_socket () =
  match Sys.getenv_opt "EMMVER_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> Printf.sprintf "/tmp/emmver-%d.sock" (Unix.getuid ())

let load_design name =
  if Filename.check_suffix name ".emn" || Filename.check_suffix name ".aag" then
    try
      Ok (if Filename.check_suffix name ".emn" then Netio.load name else Aiger.load name)
    with e -> Error (Printf.sprintf "cannot load %s: %s" name (Printexc.to_string e))
  else
    match Designs.Registry.find name with
    | e -> Ok (e.Designs.Registry.build ())
    | exception Not_found ->
      Error (Printf.sprintf "unknown design %S; try `emmver list`" name)

(* Re-export the journal so tests and tooling reach it as [Serve.Journal]
   (the library is wrapped; [Journal] alone is internal). *)
module Journal = Journal

(* {1 Wire protocol} *)

module Proto = struct
  type submit = {
    s_id : string;
    s_design : string;
    s_property : string option;
    s_method : string;
    s_max_depth : int option;
    s_timeout_s : float option;
    s_cache : bool option;
  }

  type request =
    | Hello of string
    | Ping
    | Submit of submit
    | Poll of int
    | Resume of string
    | Ack of int
    | Metrics
    | Shutdown

  type result_line = {
    r_job : int;
    r_id : string;
    r_property : string;
    r_method : string;
    r_verdict : string;
    r_depth : int option;
    r_induction : bool option;
    r_genuine : bool option;
    r_reason : string option;
    r_time_s : float;
    r_cache : string;
    r_certificate : string;
  }

  type metrics_line = {
    m_uptime_s : float;
    m_queue_depth : int;
    m_running : int;
    m_clients : int;
    m_accepted : int;
    m_completed : int;
    m_failed : int;
    m_cancelled : int;
    m_rejected_busy : int;
    m_rejected_shutdown : int;
    m_protocol_errors : int;
    m_cache_hits : int;
    m_cache_misses : int;
    m_cache_entries : int;
    m_cache_bytes : int;
    m_gc_runs : int;
    m_gc_evicted : int;
    m_journal_records : int;
    m_journal_bytes : int;
    m_compactions : int;
    m_replayed : int;
    m_recovered : int;
    m_orphans_killed : int;
    m_redelivered : int;
    m_acked : int;
    m_retained : int;
    m_methods : (string * int * float) list;
  }

  type reply =
    | Hello_ok of { server : string; version : int }
    | Pong
    | Accepted of { id : string; jobs : (int * string) list; queue_depth : int }
    | Busy of {
        id : string;
        queue_depth : int;
        max_queue : int;
        retry_after_s : float;
      }
    | Shutdown_reply of {
        id : string;
        job : int option;
        retry_after_s : float option;
      }
    | Error of { id : string option; message : string }
    | Result of result_line
    | Status of { job : int; state : string }
    | Resumed of { client : string; results : int; pending : int }
    | Acked of { job : int }
    | Metrics_reply of metrics_line
    | Draining

  (* {2 Rendering}

     Field order and number format are fixed: the protocol golden tests
     compare rendered bytes against recorded transcripts, so any drift
     here breaks CI before it breaks a deployed client.  Times travel with
     millisecond precision — plenty for wall clocks, and deterministic. *)

  let add_jstring b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_field b ~first name f =
    if not first then Buffer.add_char b ',';
    add_jstring b name;
    Buffer.add_char b ':';
    f b

  let jint n b = Buffer.add_string b (string_of_int n)
  let jfloat x b = Buffer.add_string b (Printf.sprintf "%.3f" x)
  let jbool v b = Buffer.add_string b (if v then "true" else "false")
  let jstr s b = add_jstring b s

  let render f =
    let b = Buffer.create 128 in
    Buffer.add_char b '{';
    f b;
    Buffer.add_char b '}';
    Buffer.contents b

  let request_to_string = function
    | Hello client ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "hello");
          add_field b ~first:false "client" (jstr client))
    | Ping -> render (fun b -> add_field b ~first:true "op" (jstr "ping"))
    | Submit s ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "submit");
          add_field b ~first:false "id" (jstr s.s_id);
          add_field b ~first:false "design" (jstr s.s_design);
          (match s.s_property with
          | Some p -> add_field b ~first:false "property" (jstr p)
          | None -> ());
          add_field b ~first:false "method" (jstr s.s_method);
          (match s.s_max_depth with
          | Some d -> add_field b ~first:false "max_depth" (jint d)
          | None -> ());
          (match s.s_timeout_s with
          | Some t -> add_field b ~first:false "timeout_s" (jfloat t)
          | None -> ());
          (match s.s_cache with
          | Some c -> add_field b ~first:false "cache" (jbool c)
          | None -> ()))
    | Poll job ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "poll");
          add_field b ~first:false "job" (jint job))
    | Resume client ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "resume");
          add_field b ~first:false "client" (jstr client))
    | Ack job ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "ack");
          add_field b ~first:false "job" (jint job))
    | Metrics -> render (fun b -> add_field b ~first:true "op" (jstr "metrics"))
    | Shutdown -> render (fun b -> add_field b ~first:true "op" (jstr "shutdown"))

  let reply_to_string = function
    | Hello_ok { server; version } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "hello");
          add_field b ~first:false "server" (jstr server);
          add_field b ~first:false "version" (jint version))
    | Pong -> render (fun b -> add_field b ~first:true "reply" (jstr "pong"))
    | Accepted { id; jobs; queue_depth } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "accepted");
          add_field b ~first:false "id" (jstr id);
          add_field b ~first:false "jobs" (fun b ->
              Buffer.add_char b '[';
              List.iteri
                (fun i (job, property) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_char b '{';
                  add_field b ~first:true "job" (jint job);
                  add_field b ~first:false "property" (jstr property);
                  Buffer.add_char b '}')
                jobs;
              Buffer.add_char b ']');
          add_field b ~first:false "queue_depth" (jint queue_depth))
    | Busy { id; queue_depth; max_queue; retry_after_s } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "busy");
          add_field b ~first:false "id" (jstr id);
          add_field b ~first:false "queue_depth" (jint queue_depth);
          add_field b ~first:false "max_queue" (jint max_queue);
          add_field b ~first:false "retry_after_s" (jfloat retry_after_s))
    | Shutdown_reply { id; job; retry_after_s } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "shutdown");
          add_field b ~first:false "id" (jstr id);
          (match job with
          | Some j -> add_field b ~first:false "job" (jint j)
          | None -> ());
          match retry_after_s with
          | Some s -> add_field b ~first:false "retry_after_s" (jfloat s)
          | None -> ())
    | Error { id; message } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "error");
          (match id with
          | Some id -> add_field b ~first:false "id" (jstr id)
          | None -> ());
          add_field b ~first:false "message" (jstr message))
    | Result r ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "result");
          add_field b ~first:false "job" (jint r.r_job);
          add_field b ~first:false "id" (jstr r.r_id);
          add_field b ~first:false "property" (jstr r.r_property);
          add_field b ~first:false "method" (jstr r.r_method);
          add_field b ~first:false "verdict" (jstr r.r_verdict);
          (match r.r_depth with
          | Some d -> add_field b ~first:false "depth" (jint d)
          | None -> ());
          (match r.r_induction with
          | Some i -> add_field b ~first:false "induction" (jbool i)
          | None -> ());
          (match r.r_genuine with
          | Some g -> add_field b ~first:false "genuine" (jbool g)
          | None -> ());
          (match r.r_reason with
          | Some why -> add_field b ~first:false "reason" (jstr why)
          | None -> ());
          add_field b ~first:false "time_s" (jfloat r.r_time_s);
          add_field b ~first:false "cache" (jstr r.r_cache);
          add_field b ~first:false "certificate" (jstr r.r_certificate))
    | Status { job; state } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "status");
          add_field b ~first:false "job" (jint job);
          add_field b ~first:false "state" (jstr state))
    | Resumed { client; results; pending } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "resumed");
          add_field b ~first:false "client" (jstr client);
          add_field b ~first:false "results" (jint results);
          add_field b ~first:false "pending" (jint pending))
    | Acked { job } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "acked");
          add_field b ~first:false "job" (jint job))
    | Metrics_reply m ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "metrics");
          add_field b ~first:false "uptime_s" (jfloat m.m_uptime_s);
          add_field b ~first:false "queue_depth" (jint m.m_queue_depth);
          add_field b ~first:false "running" (jint m.m_running);
          add_field b ~first:false "clients" (jint m.m_clients);
          add_field b ~first:false "jobs" (fun b ->
              Buffer.add_char b '{';
              add_field b ~first:true "accepted" (jint m.m_accepted);
              add_field b ~first:false "completed" (jint m.m_completed);
              add_field b ~first:false "failed" (jint m.m_failed);
              add_field b ~first:false "cancelled" (jint m.m_cancelled);
              add_field b ~first:false "rejected_busy" (jint m.m_rejected_busy);
              add_field b ~first:false "rejected_shutdown" (jint m.m_rejected_shutdown);
              add_field b ~first:false "protocol_errors" (jint m.m_protocol_errors);
              Buffer.add_char b '}');
          add_field b ~first:false "cache" (fun b ->
              Buffer.add_char b '{';
              add_field b ~first:true "hits" (jint m.m_cache_hits);
              add_field b ~first:false "misses" (jint m.m_cache_misses);
              add_field b ~first:false "entries" (jint m.m_cache_entries);
              add_field b ~first:false "bytes" (jint m.m_cache_bytes);
              add_field b ~first:false "gc_runs" (jint m.m_gc_runs);
              add_field b ~first:false "gc_evicted" (jint m.m_gc_evicted);
              Buffer.add_char b '}');
          add_field b ~first:false "durability" (fun b ->
              Buffer.add_char b '{';
              add_field b ~first:true "journal_records" (jint m.m_journal_records);
              add_field b ~first:false "journal_bytes" (jint m.m_journal_bytes);
              add_field b ~first:false "compactions" (jint m.m_compactions);
              add_field b ~first:false "replayed" (jint m.m_replayed);
              add_field b ~first:false "recovered_results" (jint m.m_recovered);
              add_field b ~first:false "orphans_killed" (jint m.m_orphans_killed);
              add_field b ~first:false "redelivered" (jint m.m_redelivered);
              add_field b ~first:false "acked" (jint m.m_acked);
              add_field b ~first:false "retained" (jint m.m_retained);
              Buffer.add_char b '}');
          add_field b ~first:false "methods" (fun b ->
              Buffer.add_char b '[';
              List.iteri
                (fun i (name, jobs, wall_s) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_char b '{';
                  add_field b ~first:true "method" (jstr name);
                  add_field b ~first:false "jobs" (jint jobs);
                  add_field b ~first:false "wall_s" (jfloat wall_s);
                  Buffer.add_char b '}')
                m.m_methods;
              Buffer.add_char b ']'))
    | Draining -> render (fun b -> add_field b ~first:true "reply" (jstr "draining"))

  (* {2 Parsing} *)

  open Obs.Json

  let str_field name o =
    match member name o with Some (Str s) -> Some s | _ -> None

  let int_field name o =
    match member name o with Some (Num n) -> Some (int_of_float n) | _ -> None

  let num_field name o = match member name o with Some (Num n) -> Some n | _ -> None

  let bool_field name o =
    match member name o with Some (Bool v) -> Some v | _ -> None

  let required what = function
    | Some v -> Ok v
    | None -> Stdlib.Error (Printf.sprintf "missing or ill-typed field %S" what)

  let ( let* ) r f = match r with Ok v -> f v | Stdlib.Error _ as e -> e

  let request_of_string line =
    match parse line with
    | Stdlib.Error e -> Stdlib.Error ("bad JSON: " ^ e)
    | Ok o -> (
      let* op = required "op" (str_field "op" o) in
      match op with
      | "hello" ->
        let* client = required "client" (str_field "client" o) in
        Ok (Hello client)
      | "ping" -> Ok Ping
      | "submit" ->
        let* design = required "design" (str_field "design" o) in
        Ok
          (Submit
             {
               s_id = Option.value (str_field "id" o) ~default:"";
               s_design = design;
               s_property = str_field "property" o;
               s_method = Option.value (str_field "method" o) ~default:"emm";
               s_max_depth = int_field "max_depth" o;
               s_timeout_s = num_field "timeout_s" o;
               s_cache = bool_field "cache" o;
             })
      | "poll" ->
        let* job = required "job" (int_field "job" o) in
        Ok (Poll job)
      | "resume" ->
        let* client = required "client" (str_field "client" o) in
        Ok (Resume client)
      | "ack" ->
        let* job = required "job" (int_field "job" o) in
        Ok (Ack job)
      | "metrics" -> Ok Metrics
      | "shutdown" -> Ok Shutdown
      | op -> Stdlib.Error (Printf.sprintf "unknown op %S" op))

  let reply_of_string line =
    match parse line with
    | Stdlib.Error e -> Stdlib.Error ("bad JSON: " ^ e)
    | Ok o -> (
      let* reply = required "reply" (str_field "reply" o) in
      match reply with
      | "hello" ->
        let* server = required "server" (str_field "server" o) in
        let* version = required "version" (int_field "version" o) in
        Ok (Hello_ok { server; version })
      | "pong" -> Ok Pong
      | "accepted" ->
        let* id = required "id" (str_field "id" o) in
        let* jobs =
          match member "jobs" o with
          | Some (Arr l) ->
            List.fold_left
              (fun acc j ->
                let* acc = acc in
                let* job = required "job" (int_field "job" j) in
                let* property = required "property" (str_field "property" j) in
                Ok ((job, property) :: acc))
              (Ok []) l
            |> Result.map List.rev
          | _ -> Stdlib.Error "missing jobs array"
        in
        let* queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        Ok (Accepted { id; jobs; queue_depth })
      | "busy" ->
        let* id = required "id" (str_field "id" o) in
        let* queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        let* max_queue = required "max_queue" (int_field "max_queue" o) in
        (* Optional for v1-server compat: an old daemon sends no hint. *)
        let retry_after_s = Option.value (num_field "retry_after_s" o) ~default:0.0 in
        Ok (Busy { id; queue_depth; max_queue; retry_after_s })
      | "shutdown" ->
        let* id = required "id" (str_field "id" o) in
        Ok
          (Shutdown_reply
             {
               id;
               job = int_field "job" o;
               retry_after_s = num_field "retry_after_s" o;
             })
      | "error" ->
        let* message = required "message" (str_field "message" o) in
        Ok (Error { id = str_field "id" o; message })
      | "result" ->
        let* r_job = required "job" (int_field "job" o) in
        let* r_id = required "id" (str_field "id" o) in
        let* r_property = required "property" (str_field "property" o) in
        let* r_method = required "method" (str_field "method" o) in
        let* r_verdict = required "verdict" (str_field "verdict" o) in
        let* r_time_s = required "time_s" (num_field "time_s" o) in
        let* r_cache = required "cache" (str_field "cache" o) in
        let* r_certificate = required "certificate" (str_field "certificate" o) in
        Ok
          (Result
             {
               r_job;
               r_id;
               r_property;
               r_method;
               r_verdict;
               r_depth = int_field "depth" o;
               r_induction = bool_field "induction" o;
               r_genuine = bool_field "genuine" o;
               r_reason = str_field "reason" o;
               r_time_s;
               r_cache;
               r_certificate;
             })
      | "status" ->
        let* job = required "job" (int_field "job" o) in
        let* state = required "state" (str_field "state" o) in
        Ok (Status { job; state })
      | "resumed" ->
        let* client = required "client" (str_field "client" o) in
        let* results = required "results" (int_field "results" o) in
        let* pending = required "pending" (int_field "pending" o) in
        Ok (Resumed { client; results; pending })
      | "acked" ->
        let* job = required "job" (int_field "job" o) in
        Ok (Acked { job })
      | "metrics" ->
        let obj name =
          match member name o with Some (Obj _ as v) -> Some v | _ -> None
        in
        let* jobs = required "jobs" (obj "jobs") in
        let* cache = required "cache" (obj "cache") in
        let* m_uptime_s = required "uptime_s" (num_field "uptime_s" o) in
        let* m_queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        let* m_running = required "running" (int_field "running" o) in
        let* m_clients = required "clients" (int_field "clients" o) in
        let need name v = required name (int_field name v) in
        let* m_accepted = need "accepted" jobs in
        let* m_completed = need "completed" jobs in
        let* m_failed = need "failed" jobs in
        let* m_cancelled = need "cancelled" jobs in
        let* m_rejected_busy = need "rejected_busy" jobs in
        let* m_rejected_shutdown = need "rejected_shutdown" jobs in
        let* m_protocol_errors = need "protocol_errors" jobs in
        let* m_cache_hits = need "hits" cache in
        let* m_cache_misses = need "misses" cache in
        let* m_cache_entries = need "entries" cache in
        let* m_cache_bytes = need "bytes" cache in
        let* m_gc_runs = need "gc_runs" cache in
        let* m_gc_evicted = need "gc_evicted" cache in
        (* Optional for v1-server compat: absent object reads as zeros. *)
        let dur name =
          match obj "durability" with
          | None -> 0
          | Some d -> Option.value (int_field name d) ~default:0
        in
        let m_journal_records = dur "journal_records" in
        let m_journal_bytes = dur "journal_bytes" in
        let m_compactions = dur "compactions" in
        let m_replayed = dur "replayed" in
        let m_recovered = dur "recovered_results" in
        let m_orphans_killed = dur "orphans_killed" in
        let m_redelivered = dur "redelivered" in
        let m_acked = dur "acked" in
        let m_retained = dur "retained" in
        let* m_methods =
          match member "methods" o with
          | Some (Arr l) ->
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                let* name = required "method" (str_field "method" e) in
                let* jobs = required "jobs" (int_field "jobs" e) in
                let* wall_s = required "wall_s" (num_field "wall_s" e) in
                Ok ((name, jobs, wall_s) :: acc))
              (Ok []) l
            |> Result.map List.rev
          | _ -> Stdlib.Error "missing methods array"
        in
        Ok
          (Metrics_reply
             {
               m_uptime_s;
               m_queue_depth;
               m_running;
               m_clients;
               m_accepted;
               m_completed;
               m_failed;
               m_cancelled;
               m_rejected_busy;
               m_rejected_shutdown;
               m_protocol_errors;
               m_cache_hits;
               m_cache_misses;
               m_cache_entries;
               m_cache_bytes;
               m_gc_runs;
               m_gc_evicted;
               m_journal_records;
               m_journal_bytes;
               m_compactions;
               m_replayed;
               m_recovered;
               m_orphans_killed;
               m_redelivered;
               m_acked;
               m_retained;
               m_methods;
             })
      | "draining" -> Ok Draining
      | r -> Stdlib.Error (Printf.sprintf "unknown reply %S" r))
end

(* {1 Shared socket plumbing} *)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + retry_eintr (fun () -> Unix.write fd b !pos (n - !pos))
  done

(* {1 The client} *)

module Backoff = struct
  (* Capped jittered exponential backoff for busy/draining/unreachable
     daemons.  The k-th delay is [min cap (max base hint) * 2^k] scaled by
     a uniform factor in [0.5, 1.0) — the jitter keeps a fleet of clients
     that were all bounced by the same [busy] from stampeding back in
     lockstep. *)
  type t = {
    base_s : float;
    cap_s : float;
    attempts : int;
    mutable used : int;
  }

  let create ?(base_s = 0.5) ?(cap_s = 30.0) ?(attempts = 5) () =
    {
      base_s = Float.max 0.001 base_s;
      cap_s = Float.max 0.001 cap_s;
      attempts = max 0 attempts;
      used = 0;
    }

  let attempts_used t = t.used

  let next t ~hint_s =
    if t.used >= t.attempts then None
    else begin
      let base =
        match hint_s with
        | Some h when h > 0.0 -> Float.max t.base_s h
        | _ -> t.base_s
      in
      let ideal = Float.min t.cap_s (base *. (2.0 ** float_of_int t.used)) in
      t.used <- t.used + 1;
      Some (ideal *. (0.5 +. Random.float 0.5))
    end
end

module Client = struct
  type t = {
    fd : Unix.file_descr;
    mutable pending : string;
    mutable version : int option;
  }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
  let server_version t = t.version

  let send t req =
    try
      write_all t.fd (Proto.request_to_string req ^ "\n");
      Ok ()
    with
    | Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
    | Sys_error e -> Error ("send: " ^ e)

  let rec take_line t =
    match String.index_opt t.pending '\n' with
    | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <- String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      Some line
    | None -> None

  and read_reply ?(timeout_s = 60.0) t =
    match take_line t with
    | Some line -> Proto.reply_of_string line
    | None ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      let chunk = Bytes.create 65536 in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "timed out waiting for a reply"
        else
          let readable, _, _ =
            retry_eintr (fun () -> Unix.select [ t.fd ] [] [] remaining)
          in
          if readable = [] then Error "timed out waiting for a reply"
          else
            match retry_eintr (fun () -> Unix.read t.fd chunk 0 (Bytes.length chunk)) with
            | 0 -> Error "connection closed by server"
            | k ->
              t.pending <- t.pending ^ Bytes.sub_string chunk 0 k;
              (match take_line t with
              | Some line -> Proto.reply_of_string line
              | None -> wait ())
            | exception Unix.Unix_error (e, _, _) ->
              Error ("read: " ^ Unix.error_message e)
      in
      wait ()

  let request ?timeout_s t req =
    match send t req with Ok () -> read_reply ?timeout_s t | Error _ as e -> e

  (* Deadline-bounded connect: a wedged (but listening) daemon, or a
     backlogged listen queue, must not hang the client forever.  The
     socket goes non-blocking for the connect itself, then back to
     blocking — reads are already deadline-bounded by [read_reply]. *)
  let connect_fd ~timeout_s path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    try
      Unix.set_nonblock fd;
      (try Unix.connect fd (Unix.ADDR_UNIX path) with
      | Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
        let _, w, _ = retry_eintr (fun () -> Unix.select [] [ fd ] [] timeout_s) in
        if w = [] then raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", path));
        (match Unix.getsockopt_error fd with
        | None -> ()
        | Some e -> raise (Unix.Unix_error (e, "connect", path))));
      Unix.clear_nonblock fd;
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

  let connect ?client ?(timeout_s = 10.0) path =
    match { fd = connect_fd ~timeout_s path; pending = ""; version = None } with
    | t -> (
      match client with
      | None -> Ok t
      | Some c -> (
        match request ~timeout_s t (Proto.Hello c) with
        | Ok (Proto.Hello_ok { version; _ }) ->
          t.version <- Some version;
          Ok t
        | Ok r ->
          close t;
          Error ("unexpected hello reply: " ^ Proto.reply_to_string r)
        | Error e ->
          close t;
          Error e))
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
end

(* {1 The daemon} *)

module Server = struct
  type config = {
    socket : string;
    workers : int;
    max_queue : int;
    cache_dir : string option;
    gc_policy : Vcache.gc_policy;
    gc_interval_s : float;
    budgets : Policy.budgets;
    kill_grace_s : float;
    quiet : bool;
    journal : string option;
    runner :
      (Proto.submit -> property:string -> options:Emmver.options -> Emmver.outcome)
      option;
  }

  let config ?workers ?(max_queue = 64) ?cache_dir ?(gc_policy = Vcache.gc_policy ())
      ?(gc_interval_s = 60.0) ?(budgets = Policy.unlimited) ?(kill_grace_s = 10.0)
      ?(quiet = false) ?journal ?runner ~socket () =
    {
      socket;
      workers = (match workers with Some w -> max 1 w | None -> Parallel.default_jobs ());
      max_queue = max 1 max_queue;
      cache_dir =
        (match cache_dir with Some d -> d | None -> Some (Vcache.default_dir ()));
      gc_policy;
      gc_interval_s;
      budgets;
      kill_grace_s;
      quiet;
      journal;
      runner;
    }

  type conn = {
    fd : Unix.file_descr;
    cid : int;
    mutable client : string;
    mutable named : bool;  (* said hello/resume: a stable tenant identity *)
    inbuf : Buffer.t;
    mutable out : string;  (* pending unwritten reply bytes *)
    mutable out_pos : int;
    mutable closed : bool;
  }

  type job_state = Queued | Running | Done

  type job = {
    j_id : int;
    j_req : string;  (* the submit's request id, echoed in replies *)
    j_conn : int;
    j_tenant : string;  (* owning client name: results survive the conn *)
    j_property : string;
    j_method : string;
    j_kill_s : float option;
    mutable j_run : unit -> Emmver.outcome;
    mutable j_state : job_state;
    mutable j_abandoned : bool;  (* submitting connection went away *)
  }

  type metrics = {
    mutable accepted : int;
    mutable completed : int;
    mutable failed : int;
    mutable cancelled : int;
    mutable rejected_busy : int;
    mutable rejected_shutdown : int;
    mutable protocol_errors : int;
    mutable cache_hits : int;
    mutable cache_misses : int;
    mutable gc_runs : int;
    mutable gc_evicted : int;
    mutable replayed : int;
    mutable recovered : int;
    mutable orphans_killed : int;
    mutable redelivered : int;
    mutable acked : int;
    method_wall : (string, int * float) Hashtbl.t;
  }

  type state = {
    cfg : config;
    pool : Parallel.t;
    listen_fd : Unix.file_descr;
    jnl : Journal.t option;
    conns : (int, conn) Hashtbl.t;
    queues : (string, job Queue.t) Hashtbl.t;
    mutable rotation : string list;  (* round-robin order of client ids *)
    mutable queued : int;
    jobs_tbl : (int, job) Hashtbl.t;
    (* Completed results by job id, with the owning tenant: kept until the
       tenant acks (journal on) so a reconnecting client can [resume]. *)
    retained : (int, string * Proto.result_line) Hashtbl.t;
    mutable running : (job * Emmver.outcome Parallel.Async.handle) list;
    mutable draining : bool;
    mutable drain_since : float;
    mutable next_job : int;
    mutable next_conn : int;
    mutable last_gc : float;
    started : float;
    clients_seen : (string, unit) Hashtbl.t;
    m : metrics;
  }

  let log st fmt =
    Format.ksprintf
      (fun s ->
        if not st.cfg.quiet then begin
          print_string ("serve: " ^ s ^ "\n");
          flush stdout
        end)
      fmt

  (* {2 Connection plumbing} *)

  let push_reply st conn reply =
    if not conn.closed then begin
      conn.out <- conn.out ^ Proto.reply_to_string reply ^ "\n";
      ignore st
    end

  let flush_conn conn =
    if (not conn.closed) && String.length conn.out > conn.out_pos then
      match
        Unix.write_substring conn.fd conn.out conn.out_pos
          (String.length conn.out - conn.out_pos)
      with
      | n ->
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos = String.length conn.out then begin
          conn.out <- "";
          conn.out_pos <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> conn.closed <- true

  let pending_out conn = (not conn.closed) && String.length conn.out > conn.out_pos

  (* {2 Journal plumbing} *)

  let journal_append ?sync st r =
    match st.jnl with Some j -> Journal.append ?sync j r | None -> ()

  let journal_sync st = match st.jnl with Some j -> Journal.sync j | None -> ()

  let finished_of_line tenant (r : Proto.result_line) =
    {
      Journal.f_job = r.Proto.r_job;
      f_tenant = tenant;
      f_req = r.Proto.r_id;
      f_property = r.Proto.r_property;
      f_method = r.Proto.r_method;
      f_verdict = r.Proto.r_verdict;
      f_depth = r.Proto.r_depth;
      f_induction = r.Proto.r_induction;
      f_genuine = r.Proto.r_genuine;
      f_reason = r.Proto.r_reason;
      f_time_s = r.Proto.r_time_s;
      f_cache = r.Proto.r_cache;
      f_certificate = r.Proto.r_certificate;
    }

  let line_of_finished (f : Journal.result) =
    {
      Proto.r_job = f.Journal.f_job;
      r_id = f.Journal.f_req;
      r_property = f.Journal.f_property;
      r_method = f.Journal.f_method;
      r_verdict = f.Journal.f_verdict;
      r_depth = f.Journal.f_depth;
      r_induction = f.Journal.f_induction;
      r_genuine = f.Journal.f_genuine;
      r_reason = f.Journal.f_reason;
      r_time_s = f.Journal.f_time_s;
      r_cache = f.Journal.f_cache;
      r_certificate = f.Journal.f_certificate;
    }

  (* Bound on unacked retained results: a v1 client (or one run with
     [--no-ack]) never acks, so without a cap the table and the journal
     would grow forever.  At the cap the oldest result is dropped as if
     acked — at-least-once delivery holds for any client that resumes
     within [retained_cap] completions. *)
  let retained_cap = 4096

  let retain st tenant (line : Proto.result_line) =
    if st.jnl <> None then begin
      Hashtbl.replace st.retained line.Proto.r_job (tenant, line);
      if Hashtbl.length st.retained > retained_cap then begin
        let oldest = Hashtbl.fold (fun k _ acc -> min k acc) st.retained max_int in
        Hashtbl.remove st.retained oldest;
        journal_append st (Journal.Acked { job = oldest });
        log st "retained-results cap reached: dropped unacked job %d" oldest
      end
    end

  (* A connection's death cancels its footprint — unless the daemon is
     durable and the client introduced itself: a named tenant's jobs keep
     running, their results are retained, and a later [resume] on a fresh
     connection collects them.  Anonymous connections (and journal-off
     daemons) keep the old contract: queued jobs are dropped, running jobs
     are SIGKILLed — a caller that went away should not keep burning
     worker slots. *)
  let drop_conn st conn =
    if not conn.closed then conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove st.conns conn.cid;
    if st.jnl <> None && conn.named then
      log st "client %s (conn %d) disconnected; its jobs continue" conn.client
        conn.cid
    else begin
      Hashtbl.iter
        (fun _ q ->
          let keep = Queue.create () in
          Queue.iter
            (fun j ->
              if j.j_conn = conn.cid then begin
                j.j_state <- Done;
                j.j_run <- (fun () -> assert false);
                st.queued <- st.queued - 1;
                st.m.cancelled <- st.m.cancelled + 1;
                Obs.counter_add "serve.cancelled" 1;
                journal_append st (Journal.Cancelled { job = j.j_id })
              end
              else Queue.add j keep)
            q;
          Queue.clear q;
          Queue.transfer keep q)
        st.queues;
      List.iter
        (fun (j, h) ->
          if j.j_conn = conn.cid && not j.j_abandoned then begin
            j.j_abandoned <- true;
            Parallel.Async.cancel st.pool h
          end)
        st.running;
      log st "client %s (conn %d) disconnected" conn.client conn.cid
    end

  (* {2 Submission} *)

  let clamp_options st (s : Proto.submit) =
    let b = st.cfg.budgets in
    let o = Emmver.default_options in
    let max_depth =
      match (s.s_max_depth, b.Policy.max_depth) with
      | Some d, Some cap -> min d cap
      | Some d, None -> d
      | None, Some cap -> min cap o.Emmver.max_depth
      | None, None -> o.Emmver.max_depth
    in
    let timeout_s =
      match (s.s_timeout_s, b.Policy.wall_s) with
      | Some t, Some cap -> Some (Float.min t cap)
      | Some t, None -> Some t
      | None, cap -> cap
    in
    let cache_available = st.cfg.cache_dir <> None in
    {
      o with
      Emmver.max_depth;
      timeout_s;
      conflict_budget = b.Policy.conflicts;
      learnt_mb_budget = b.Policy.learnt_mb;
      cache =
        (match s.s_cache with
        | Some c -> c && cache_available
        | None -> cache_available);
      cache_dir = st.cfg.cache_dir;
    }

  let enqueue st (j : job) client =
    let q =
      match Hashtbl.find_opt st.queues client with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace st.queues client q;
        st.rotation <- st.rotation @ [ client ];
        q
    in
    Queue.add j q;
    st.queued <- st.queued + 1

  (* Round-robin across client ids: take the head client, rotate it to the
     tail, serve one job from its queue if it has one.  Bounded by the
     rotation length, so clients with empty queues just pass their turn. *)
  let pick_next st =
    let rec go tries =
      if tries = 0 then None
      else
        match st.rotation with
        | [] -> None
        | c :: rest -> (
          st.rotation <- rest @ [ c ];
          match Hashtbl.find_opt st.queues c with
          | Some q when not (Queue.is_empty q) ->
            let j = Queue.pop q in
            st.queued <- st.queued - 1;
            Some j
          | _ -> go (tries - 1))
    in
    go (List.length st.rotation)

  (* How long a bounced client should wait before retrying.  Busy: scale
     with the backlog per worker (each queued job is roughly one worker
     slot of delay), clamped to [0.5, 30] — deterministic, so the golden
     tests can record it; the client adds the jitter.  Draining: the
     successor daemon is typically up within seconds. *)
  let busy_hint st =
    let per_worker = float_of_int (st.queued + 1) /. float_of_int st.cfg.workers in
    Float.min 30.0 (Float.max 0.5 (0.5 *. per_worker))

  let drain_hint = 5.0

  let handle_submit st conn (s : Proto.submit) =
    if st.draining then begin
      st.m.rejected_shutdown <- st.m.rejected_shutdown + 1;
      Obs.counter_add "serve.rejected_shutdown" 1;
      push_reply st conn
        (Proto.Shutdown_reply
           { id = s.s_id; job = None; retry_after_s = Some drain_hint })
    end
    else
      let reject message =
        st.m.protocol_errors <- st.m.protocol_errors + 1;
        push_reply st conn (Proto.Error { id = Some s.s_id; message })
      in
      match Emmver.method_of_string s.s_method with
      | Error msg -> reject msg
      | Ok method_ -> (
        match load_design s.s_design with
        | Error msg -> reject msg
        | Ok net -> (
          let props =
            match s.s_property with
            | Some p ->
              if List.mem_assoc p (Netlist.properties net) then Ok [ p ]
              else
                Stdlib.Error
                  (Printf.sprintf "design %s has no property %S" s.s_design p)
            | None -> (
              match List.map fst (Netlist.properties net) with
              | [] -> Stdlib.Error (s.s_design ^ " has no properties")
              | ps -> Ok ps)
          in
          match props with
          | Error msg -> reject msg
          | Ok props ->
            let n = List.length props in
            if st.queued + n > st.cfg.max_queue then begin
              (* Explicit backpressure: the daemon never buffers beyond
                 [max_queue] — the caller retries or backs off. *)
              st.m.rejected_busy <- st.m.rejected_busy + 1;
              Obs.counter_add "serve.rejected_busy" 1;
              push_reply st conn
                (Proto.Busy
                   {
                     id = s.s_id;
                     queue_depth = st.queued;
                     max_queue = st.cfg.max_queue;
                     retry_after_s = busy_hint st;
                   })
            end
            else begin
              let options = clamp_options st s in
              let kill_s =
                match options.Emmver.timeout_s with
                | Some t -> Some (t +. st.cfg.kill_grace_s)
                | None -> None
              in
              let client = conn.client in
              Hashtbl.replace st.clients_seen client ();
              let jobs =
                List.map
                  (fun property ->
                    let id = st.next_job in
                    st.next_job <- st.next_job + 1;
                    let run =
                      match st.cfg.runner with
                      | Some r -> fun () -> r s ~property ~options
                      | None ->
                        fun () -> Emmver.verify ~options ~method_ net ~property
                    in
                    let j =
                      {
                        j_id = id;
                        j_req = s.s_id;
                        j_conn = conn.cid;
                        j_tenant = client;
                        j_property = property;
                        j_method = s.s_method;
                        j_kill_s = kill_s;
                        j_run = run;
                        j_state = Queued;
                        j_abandoned = false;
                      }
                    in
                    Hashtbl.replace st.jobs_tbl id j;
                    enqueue st j client;
                    journal_append st
                      (Journal.Accepted
                         {
                           Journal.a_job = id;
                           a_tenant = client;
                           a_req = s.s_id;
                           a_design = s.s_design;
                           a_property = property;
                           a_method = s.s_method;
                           a_max_depth = s.s_max_depth;
                           a_timeout_s = s.s_timeout_s;
                           a_cache = s.s_cache;
                         });
                    j)
                  props
              in
              (* The accepted records hit the platter before the accepted
                 reply hits the wire: once a client sees its jobs, no
                 SIGKILL loses them. *)
              journal_sync st;
              st.m.accepted <- st.m.accepted + n;
              Obs.counter_add "serve.accepted" n;
              log st "accepted %d job(s) for %s from %s (queue %d)" n s.s_design
                client st.queued;
              push_reply st conn
                (Proto.Accepted
                   {
                     id = s.s_id;
                     jobs = List.map (fun j -> (j.j_id, j.j_property)) jobs;
                     queue_depth = st.queued;
                   })
            end))

  (* {2 Results} *)

  let result_of_outcome (j : job) (o : Emmver.outcome) =
    let verdict, depth, induction, genuine, reason =
      match o.Emmver.conclusion with
      | Emmver.Proved { depth; induction } ->
        ("proved", Some depth, Some induction, None, None)
      | Emmver.Falsified { depth; genuine; _ } ->
        ("falsified", Some depth, None, genuine, None)
      | Emmver.Inconclusive why -> ("inconclusive", None, None, None, Some why)
    in
    {
      Proto.r_job = j.j_id;
      r_id = j.j_req;
      r_property = j.j_property;
      r_method = j.j_method;
      r_verdict = verdict;
      r_depth = depth;
      r_induction = induction;
      r_genuine = genuine;
      r_reason = reason;
      r_time_s = o.Emmver.time_s;
      r_cache =
        (match o.Emmver.cache with
        | Emmver.Cache_off -> "off"
        | Emmver.Cache_miss -> "miss"
        | Emmver.Cache_hit -> "hit"
        | Emmver.Cache_dedup -> "dedup");
      r_certificate = Cert.label o.Emmver.certificate;
    }

  (* Make a completed result durable, retain it for [resume], and push it
     to the best live connection — the submitting one if it is still
     there, else any live connection that introduced itself as the same
     tenant (a reconnected client needn't even ask).  The journal record
     is fsync'd {e before} any of that: a result a client saw is a result
     a restart can serve again. *)
  let finish st (j : job) (line : Proto.result_line) =
    (match st.jnl with
    | Some jn ->
      Journal.append jn (Journal.Finished (finished_of_line j.j_tenant line));
      Journal.sync jn
    | None -> ());
    retain st j.j_tenant line;
    let target =
      match Hashtbl.find_opt st.conns j.j_conn with
      | Some c when not c.closed -> Some c
      | _ ->
        Hashtbl.fold
          (fun _ c acc ->
            match acc with
            | Some _ -> acc
            | None ->
              if (not c.closed) && c.named && String.equal c.client j.j_tenant
              then Some c
              else None)
          st.conns None
    in
    Option.iter (fun c -> push_reply st c (Proto.Result line)) target

  let deliver st (j : job) (r : Emmver.outcome Parallel.job_result) =
    j.j_state <- Done;
    j.j_run <- (fun () -> assert false);
    let bump_method wall_s =
      let jobs, wall =
        match Hashtbl.find_opt st.m.method_wall j.j_method with
        | Some (n, w) -> (n, w)
        | None -> (0, 0.0)
      in
      Hashtbl.replace st.m.method_wall j.j_method (jobs + 1, wall +. wall_s)
    in
    match r with
    | _ when j.j_abandoned ->
      st.m.cancelled <- st.m.cancelled + 1;
      Obs.counter_add "serve.cancelled" 1;
      journal_append st (Journal.Cancelled { job = j.j_id });
      log st "job %d cancelled (client gone)" j.j_id
    | Ok o ->
      st.m.completed <- st.m.completed + 1;
      Obs.counter_add "serve.completed" 1;
      (match o.Emmver.cache with
      | Emmver.Cache_hit | Emmver.Cache_dedup ->
        st.m.cache_hits <- st.m.cache_hits + 1;
        Obs.counter_add "serve.cache_hits" 1
      | Emmver.Cache_miss ->
        st.m.cache_misses <- st.m.cache_misses + 1;
        Obs.counter_add "serve.cache_misses" 1
      | Emmver.Cache_off -> ());
      bump_method o.Emmver.time_s;
      let line = result_of_outcome j o in
      log st "job %d (%s/%s) %s in %.3fs [cache %s]" j.j_id line.Proto.r_property
        j.j_method line.Proto.r_verdict line.Proto.r_time_s line.Proto.r_cache;
      finish st j line
    | Error f ->
      st.m.failed <- st.m.failed + 1;
      Obs.counter_add "serve.failed" 1;
      bump_method f.Parallel.elapsed_s;
      let why = "worker killed: " ^ Parallel.failure_message f in
      log st "job %d failed: %s" j.j_id why;
      finish st j
        {
          Proto.r_job = j.j_id;
          r_id = j.j_req;
          r_property = j.j_property;
          r_method = j.j_method;
          r_verdict = "inconclusive";
          r_depth = None;
          r_induction = None;
          r_genuine = None;
          r_reason = Some why;
          r_time_s = f.Parallel.elapsed_s;
          r_cache = "off";
          r_certificate = "unchecked";
        }

  (* {2 Metrics} *)

  let metrics_line st =
    let entries, bytes =
      match st.cfg.cache_dir with
      | None -> (0, 0)
      | Some dir ->
        let s = Vcache.stats (Vcache.config ~dir ()) in
        (s.Vcache.entries, s.Vcache.bytes)
    in
    let methods =
      Hashtbl.fold (fun name (jobs, wall) acc -> (name, jobs, wall) :: acc)
        st.m.method_wall []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    {
      Proto.m_uptime_s = Obs.now () -. st.started;
      m_queue_depth = st.queued;
      m_running = List.length st.running;
      m_clients = Hashtbl.length st.clients_seen;
      m_accepted = st.m.accepted;
      m_completed = st.m.completed;
      m_failed = st.m.failed;
      m_cancelled = st.m.cancelled;
      m_rejected_busy = st.m.rejected_busy;
      m_rejected_shutdown = st.m.rejected_shutdown;
      m_protocol_errors = st.m.protocol_errors;
      m_cache_hits = st.m.cache_hits;
      m_cache_misses = st.m.cache_misses;
      m_cache_entries = entries;
      m_cache_bytes = bytes;
      m_gc_runs = st.m.gc_runs;
      m_gc_evicted = st.m.gc_evicted;
      m_journal_records = (match st.jnl with Some j -> Journal.records j | None -> 0);
      m_journal_bytes = (match st.jnl with Some j -> Journal.bytes j | None -> 0);
      m_compactions = (match st.jnl with Some j -> Journal.compactions j | None -> 0);
      m_replayed = st.m.replayed;
      m_recovered = st.m.recovered;
      m_orphans_killed = st.m.orphans_killed;
      m_redelivered = st.m.redelivered;
      m_acked = st.m.acked;
      m_retained = Hashtbl.length st.retained;
      m_methods = methods;
    }

  (* {2 Drain} *)

  let enter_drain st reason =
    if not st.draining then begin
      st.draining <- true;
      st.drain_since <- Unix.gettimeofday ();
      log st "draining (%s): %d running, %d queued" reason
        (List.length st.running) st.queued;
      (* Queued jobs are refused with [shutdown] replies; in-flight jobs
         run to completion and deliver normally.  With the journal on,
         their accepted records stay open on disk — the {e next}
         incarnation re-enqueues and runs them, so the shutdown reply is
         a "not now", not a cancellation. *)
      Hashtbl.iter
        (fun _ q ->
          Queue.iter
            (fun j ->
              j.j_state <- Done;
              j.j_run <- (fun () -> assert false);
              st.m.rejected_shutdown <- st.m.rejected_shutdown + 1;
              Obs.counter_add "serve.rejected_shutdown" 1;
              match Hashtbl.find_opt st.conns j.j_conn with
              | Some c ->
                push_reply st c
                  (Proto.Shutdown_reply
                     {
                       id = j.j_req;
                       job = Some j.j_id;
                       retry_after_s = Some drain_hint;
                     })
              | None -> ())
            q;
          Queue.clear q)
        st.queues;
      st.queued <- 0
    end

  (* {2 Request dispatch} *)

  let handle_request st conn = function
    | Proto.Hello client ->
      conn.client <- client;
      conn.named <- true;
      Hashtbl.replace st.clients_seen client ();
      push_reply st conn
        (Proto.Hello_ok { server = "emmver"; version = protocol_version })
    | Proto.Ping -> push_reply st conn Proto.Pong
    | Proto.Submit s -> handle_submit st conn s
    | Proto.Resume tenant ->
      (* [resume] doubles as a hello: the connection takes the tenant
         identity, receives every retained result for it (oldest first),
         and keeps receiving live results for the tenant's jobs still in
         flight. *)
      conn.client <- tenant;
      conn.named <- true;
      Hashtbl.replace st.clients_seen tenant ();
      let results =
        Hashtbl.fold
          (fun _ (t, line) acc -> if String.equal t tenant then line :: acc else acc)
          st.retained []
        |> List.sort (fun a b -> compare a.Proto.r_job b.Proto.r_job)
      in
      let pending =
        Hashtbl.fold
          (fun _ j acc ->
            if String.equal j.j_tenant tenant && j.j_state <> Done then acc + 1
            else acc)
          st.jobs_tbl 0
      in
      push_reply st conn
        (Proto.Resumed { client = tenant; results = List.length results; pending });
      List.iter
        (fun line ->
          st.m.redelivered <- st.m.redelivered + 1;
          Obs.counter_add "serve.redelivered" 1;
          push_reply st conn (Proto.Result line))
        results;
      if results <> [] || pending > 0 then
        log st "resume %s: %d result(s) redelivered, %d job(s) still pending"
          tenant (List.length results) pending
    | Proto.Ack job ->
      (* Idempotent: acking an unknown or already-acked job succeeds —
         at-least-once delivery means duplicate acks are normal. *)
      if Hashtbl.mem st.retained job then begin
        Hashtbl.remove st.retained job;
        st.m.acked <- st.m.acked + 1;
        Obs.counter_add "serve.acked" 1
      end;
      (match st.jnl with
      | Some jn ->
        Journal.append jn (Journal.Acked { job });
        if Journal.maybe_compact jn then
          log st "journal compacted: %d record(s), %d byte(s)"
            (Journal.records jn) (Journal.bytes jn)
      | None -> ());
      push_reply st conn (Proto.Acked { job })
    | Proto.Poll job ->
      let state =
        match Hashtbl.find_opt st.jobs_tbl job with
        | Some { j_state = Queued; _ } -> "queued"
        | Some { j_state = Running; _ } -> "running"
        | Some { j_state = Done; _ } -> "done"
        | None -> "unknown"
      in
      push_reply st conn (Proto.Status { job; state })
    | Proto.Metrics -> push_reply st conn (Proto.Metrics_reply (metrics_line st))
    | Proto.Shutdown ->
      push_reply st conn Proto.Draining;
      enter_drain st "shutdown request"

  let handle_line st conn line =
    let line = String.trim line in
    if line <> "" then
      match Proto.request_of_string line with
      | Ok req -> handle_request st conn req
      | Error message ->
        st.m.protocol_errors <- st.m.protocol_errors + 1;
        Obs.counter_add "serve.protocol_errors" 1;
        push_reply st conn (Proto.Error { id = None; message })

  let read_conn st conn =
    let chunk = Bytes.create 65536 in
    let rec drain () =
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> drop_conn st conn
      | k ->
        Buffer.add_subbytes conn.inbuf chunk 0 k;
        drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      | exception Unix.Unix_error _ -> drop_conn st conn
    in
    drain ();
    (* Process every complete line buffered so far. *)
    let data = Buffer.contents conn.inbuf in
    Buffer.clear conn.inbuf;
    let rec split from =
      match String.index_from_opt data from '\n' with
      | Some i ->
        handle_line st conn (String.sub data from (i - from));
        split (i + 1)
      | None ->
        Buffer.add_string conn.inbuf
          (String.sub data from (String.length data - from))
    in
    if data <> "" then split 0

  (* {2 Scheduling} *)

  (* Runs first inside a freshly forked worker: drop the daemon's socket
     fds.  Without this an orphaned worker (daemon SIGKILLed mid-run)
     keeps the inherited listening socket alive, so connects to the dead
     daemon's socket still succeed into a backlog nobody drains — and a
     restarted daemon mistakes its dead predecessor for a live one. *)
  let close_daemon_fds st =
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    Hashtbl.iter
      (fun _ (c : conn) ->
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      st.conns

  let start_jobs st =
    while List.length st.running < st.cfg.workers && st.queued > 0 do
      match pick_next st with
      | None -> st.queued <- 0 (* defensive: rotation lost track *)
      | Some j ->
        let run = j.j_run in
        let h =
          Parallel.Async.spawn st.pool ?job_timeout_s:j.j_kill_s
            ~f:(fun () ->
              close_daemon_fds st;
              run ())
            ()
        in
        j.j_state <- Running;
        st.running <- (j, h) :: st.running;
        (* Synced so a SIGKILL between here and delivery leaves a findable
           orphan: the next incarnation reaps the pid (token-guarded)
           before re-running the job. *)
        let pid = Parallel.Async.pid h in
        journal_append ~sync:true st
          (Journal.Started
             { job = j.j_id; pid; token = Parallel.process_token pid });
        log st "job %d (%s) started [%d/%d workers]" j.j_id j.j_property
          (List.length st.running) st.cfg.workers
    done

  let service_workers st readable =
    let still = ref [] in
    List.iter
      (fun (j, h) ->
        if List.mem (Parallel.Async.fd h) readable then
          match Parallel.Async.service st.pool h with
          | Some result -> deliver st j result
          | None -> still := (j, h) :: !still
        else begin
          Parallel.Async.check_deadline st.pool h;
          still := (j, h) :: !still
        end)
      st.running;
    st.running <- List.rev !still

  let maybe_gc st =
    match st.cfg.cache_dir with
    | Some dir
      when (st.cfg.gc_policy.Vcache.max_bytes <> None
           || st.cfg.gc_policy.Vcache.max_age_s <> None)
           && Unix.gettimeofday () -. st.last_gc >= st.cfg.gc_interval_s ->
      st.last_gc <- Unix.gettimeofday ();
      let r = Vcache.maintain (Vcache.config ~dir ()) st.cfg.gc_policy in
      st.m.gc_runs <- st.m.gc_runs + 1;
      let evicted = r.Vcache.evicted_age + r.Vcache.evicted_size in
      st.m.gc_evicted <- st.m.gc_evicted + evicted;
      if evicted > 0 then
        log st "cache gc: evicted %d (age %d, size %d of which %d never-hit), kept %d (%.2f MB)"
          evicted r.Vcache.evicted_age r.Vcache.evicted_size r.Vcache.evicted_cold
          r.Vcache.kept
          (float_of_int r.Vcache.kept_bytes /. 1048576.0)
    | _ -> ()

  (* {2 Recovery}

     Re-create a journalled-but-unfinished job in the fresh daemon.  The
     job id is reused verbatim (clients hold it), budgets are re-clamped
     under the {e current} config, and the design is re-loaded — if that
     now fails (registry changed, file gone), the job completes as an
     inconclusive result rather than silently vanishing: the tenant still
     gets an answer for every accepted job. *)
  let replay_submit st (a : Journal.submit) =
    let s =
      {
        Proto.s_id = a.Journal.a_req;
        s_design = a.Journal.a_design;
        s_property = Some a.Journal.a_property;
        s_method = a.Journal.a_method;
        s_max_depth = a.Journal.a_max_depth;
        s_timeout_s = a.Journal.a_timeout_s;
        s_cache = a.Journal.a_cache;
      }
    in
    let fail why =
      let line =
        {
          Proto.r_job = a.Journal.a_job;
          r_id = a.Journal.a_req;
          r_property = a.Journal.a_property;
          r_method = a.Journal.a_method;
          r_verdict = "inconclusive";
          r_depth = None;
          r_induction = None;
          r_genuine = None;
          r_reason = Some why;
          r_time_s = 0.0;
          r_cache = "off";
          r_certificate = "unchecked";
        }
      in
      (match st.jnl with
      | Some jn ->
        Journal.append ~sync:true jn
          (Journal.Finished (finished_of_line a.Journal.a_tenant line))
      | None -> ());
      retain st a.Journal.a_tenant line;
      st.m.failed <- st.m.failed + 1;
      log st "job %d could not be replayed: %s" a.Journal.a_job why
    in
    let accept run =
      let options = clamp_options st s in
      let kill_s =
        match options.Emmver.timeout_s with
        | Some t -> Some (t +. st.cfg.kill_grace_s)
        | None -> None
      in
      let j =
        {
          j_id = a.Journal.a_job;
          j_req = a.Journal.a_req;
          j_conn = 0;  (* no live connection: delivery goes by tenant *)
          j_tenant = a.Journal.a_tenant;
          j_property = a.Journal.a_property;
          j_method = a.Journal.a_method;
          j_kill_s = kill_s;
          j_run = (fun () -> run options);
          j_state = Queued;
          j_abandoned = false;
        }
      in
      Hashtbl.replace st.jobs_tbl j.j_id j;
      Hashtbl.replace st.clients_seen a.Journal.a_tenant ();
      enqueue st j a.Journal.a_tenant
    in
    match st.cfg.runner with
    | Some r ->
      accept (fun options -> r s ~property:a.Journal.a_property ~options)
    | None -> (
      match Emmver.method_of_string a.Journal.a_method with
      | Error msg -> fail msg
      | Ok method_ -> (
        match load_design a.Journal.a_design with
        | Error msg -> fail ("at recovery: " ^ msg)
        | Ok net ->
          accept (fun options ->
              Emmver.verify ~options ~method_ net ~property:a.Journal.a_property)))

  let recover st (r : Journal.recovery) =
    if r.Journal.corrupt > 0 then
      log st "journal: skipped %d corrupt record(s)" r.Journal.corrupt;
    st.next_job <- max st.next_job r.Journal.next_job;
    List.iter
      (fun (job, pid, token) ->
        if Parallel.reap_orphan ~pid ~token then begin
          st.m.orphans_killed <- st.m.orphans_killed + 1;
          Obs.counter_add "serve.orphans_killed" 1;
          log st "journal: killed orphan worker %d of job %d" pid job
        end)
      r.Journal.orphans;
    List.iter
      (fun (f : Journal.result) ->
        Hashtbl.replace st.retained f.Journal.f_job
          (f.Journal.f_tenant, line_of_finished f);
        st.m.recovered <- st.m.recovered + 1;
        Obs.counter_add "serve.recovered_results" 1)
      r.Journal.undelivered;
    List.iter
      (fun (a : Journal.submit) ->
        st.m.replayed <- st.m.replayed + 1;
        Obs.counter_add "serve.journal_replayed" 1;
        replay_submit st a)
      r.Journal.pending;
    if r.Journal.pending <> [] || r.Journal.undelivered <> [] then
      log st "journal: re-enqueued %d job(s), recovered %d undelivered result(s)"
        (List.length r.Journal.pending)
        (List.length r.Journal.undelivered)

  (* {2 The loop} *)

  let bind_socket cfg =
    if Sys.file_exists cfg.socket then begin
      (* A live daemon answers a connect; a stale file left by a dead one
         refuses it and is safe to replace. *)
      match Client.connect cfg.socket with
      | Ok c ->
        Client.close c;
        failwith (Printf.sprintf "socket %s is already served by a live daemon" cfg.socket)
      | Error _ -> ( try Sys.remove cfg.socket with Sys_error _ -> ())
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
    Unix.listen fd 64;
    fd

  let run cfg =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let term = ref false in
    let old_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true))
    in
    let old_int =
      Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> term := true))
    in
    let listen_fd = bind_socket cfg in
    let journal =
      Option.map (fun path -> Journal.open_ path) cfg.journal
    in
    let st =
      {
        cfg;
        pool = Parallel.create ~jobs:cfg.workers ();
        listen_fd;
        jnl = Option.map fst journal;
        conns = Hashtbl.create 16;
        queues = Hashtbl.create 16;
        rotation = [];
        queued = 0;
        jobs_tbl = Hashtbl.create 64;
        retained = Hashtbl.create 64;
        running = [];
        draining = false;
        drain_since = 0.0;
        next_job = 1;
        next_conn = 1;
        last_gc = Unix.gettimeofday ();
        started = Obs.now ();
        clients_seen = Hashtbl.create 16;
        m =
          {
            accepted = 0;
            completed = 0;
            failed = 0;
            cancelled = 0;
            rejected_busy = 0;
            rejected_shutdown = 0;
            protocol_errors = 0;
            cache_hits = 0;
            cache_misses = 0;
            gc_runs = 0;
            gc_evicted = 0;
            replayed = 0;
            recovered = 0;
            orphans_killed = 0;
            redelivered = 0;
            acked = 0;
            method_wall = Hashtbl.create 8;
          };
      }
    in
    log st "listening on %s (%d workers, queue %d, cache %s, journal %s)"
      cfg.socket cfg.workers cfg.max_queue
      (match cfg.cache_dir with Some d -> d | None -> "off")
      (match cfg.journal with Some p -> p | None -> "off");
    Option.iter (fun (_, r) -> recover st r) journal;
    let finished () =
      st.draining && st.queued = 0 && st.running = []
      && not (Hashtbl.fold (fun _ c acc -> acc || pending_out c) st.conns false)
    in
    let drain_expired () =
      (* A drain must terminate even if a client never reads its replies. *)
      st.draining && Unix.gettimeofday () -. st.drain_since > 30.0
    in
    while not (finished () || drain_expired ()) do
      if !term then enter_drain st "SIGTERM";
      if not st.draining then start_jobs st;
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> if c.closed then acc else c.fd :: acc) st.conns []
      in
      let write_fds =
        Hashtbl.fold
          (fun _ c acc -> if pending_out c then c.fd :: acc else acc)
          st.conns []
      in
      let worker_fds = List.map (fun (_, h) -> Parallel.Async.fd h) st.running in
      let read_fds =
        (if st.draining then [] else [ st.listen_fd ]) @ conn_fds @ worker_fds
      in
      let readable, writable, _ =
        match Unix.select read_fds write_fds [] 0.25 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if (not st.draining) && List.mem st.listen_fd readable then begin
        match Unix.accept st.listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          let cid = st.next_conn in
          st.next_conn <- st.next_conn + 1;
          Hashtbl.replace st.conns cid
            {
              fd;
              cid;
              client = Printf.sprintf "conn-%d" cid;
              named = false;
              inbuf = Buffer.create 256;
              out = "";
              out_pos = 0;
              closed = false;
            }
        | exception Unix.Unix_error _ -> ()
      end;
      Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []
      |> List.iter (fun c ->
             if (not c.closed) && List.mem c.fd readable then read_conn st c);
      service_workers st readable;
      Hashtbl.iter
        (fun _ c ->
          if List.mem c.fd writable || pending_out c then flush_conn c)
        st.conns;
      Hashtbl.fold
        (fun _ c acc -> if c.closed then c :: acc else acc)
        st.conns []
      |> List.iter (fun c -> drop_conn st c);
      maybe_gc st
    done;
    Hashtbl.iter
      (fun _ c ->
        flush_conn c;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      st.conns;
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove cfg.socket with Sys_error _ -> ());
    (match st.jnl with
    | Some jn ->
      (* Leave the smallest correct journal behind: drained state, no
         dead lines — the successor's replay is exactly the open jobs. *)
      (try Journal.compact jn with _ -> ());
      Journal.close jn
    | None -> ());
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    log st "drained: %d completed, %d failed, %d cancelled, %d cache hits"
      st.m.completed st.m.failed st.m.cancelled st.m.cache_hits
end
