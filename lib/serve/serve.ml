(* Verification-as-a-service daemon.  See serve.mli for the contract and
   doc/protocol.mld for the wire format.

   Architecture: one single-threaded select loop multiplexes the listening
   socket, every client connection (buffered line reader + backpressured
   writer) and the result pipes of the forked job workers
   (Parallel.Async).  All blocking work — encoding, SAT solving, cache
   validation — happens in the workers; the loop only parses lines,
   schedules jobs and shuffles bytes, so a wedged client or a crashing job
   can never stall the service. *)

let protocol_version = 1

let default_socket () =
  match Sys.getenv_opt "EMMVER_SOCKET" with
  | Some s when s <> "" -> s
  | _ -> Printf.sprintf "/tmp/emmver-%d.sock" (Unix.getuid ())

let load_design name =
  if Filename.check_suffix name ".emn" || Filename.check_suffix name ".aag" then
    try
      Ok (if Filename.check_suffix name ".emn" then Netio.load name else Aiger.load name)
    with e -> Error (Printf.sprintf "cannot load %s: %s" name (Printexc.to_string e))
  else
    match Designs.Registry.find name with
    | e -> Ok (e.Designs.Registry.build ())
    | exception Not_found ->
      Error (Printf.sprintf "unknown design %S; try `emmver list`" name)

(* {1 Wire protocol} *)

module Proto = struct
  type submit = {
    s_id : string;
    s_design : string;
    s_property : string option;
    s_method : string;
    s_max_depth : int option;
    s_timeout_s : float option;
    s_cache : bool option;
  }

  type request =
    | Hello of string
    | Ping
    | Submit of submit
    | Poll of int
    | Metrics
    | Shutdown

  type result_line = {
    r_job : int;
    r_id : string;
    r_property : string;
    r_method : string;
    r_verdict : string;
    r_depth : int option;
    r_induction : bool option;
    r_genuine : bool option;
    r_reason : string option;
    r_time_s : float;
    r_cache : string;
    r_certificate : string;
  }

  type metrics_line = {
    m_uptime_s : float;
    m_queue_depth : int;
    m_running : int;
    m_clients : int;
    m_accepted : int;
    m_completed : int;
    m_failed : int;
    m_cancelled : int;
    m_rejected_busy : int;
    m_rejected_shutdown : int;
    m_protocol_errors : int;
    m_cache_hits : int;
    m_cache_misses : int;
    m_cache_entries : int;
    m_cache_bytes : int;
    m_gc_runs : int;
    m_gc_evicted : int;
    m_methods : (string * int * float) list;
  }

  type reply =
    | Hello_ok of { server : string; version : int }
    | Pong
    | Accepted of { id : string; jobs : (int * string) list; queue_depth : int }
    | Busy of { id : string; queue_depth : int; max_queue : int }
    | Shutdown_reply of { id : string; job : int option }
    | Error of { id : string option; message : string }
    | Result of result_line
    | Status of { job : int; state : string }
    | Metrics_reply of metrics_line
    | Draining

  (* {2 Rendering}

     Field order and number format are fixed: the protocol golden tests
     compare rendered bytes against recorded transcripts, so any drift
     here breaks CI before it breaks a deployed client.  Times travel with
     millisecond precision — plenty for wall clocks, and deterministic. *)

  let add_jstring b s =
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 32 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.add_char b '"'

  let add_field b ~first name f =
    if not first then Buffer.add_char b ',';
    add_jstring b name;
    Buffer.add_char b ':';
    f b

  let jint n b = Buffer.add_string b (string_of_int n)
  let jfloat x b = Buffer.add_string b (Printf.sprintf "%.3f" x)
  let jbool v b = Buffer.add_string b (if v then "true" else "false")
  let jstr s b = add_jstring b s

  let render f =
    let b = Buffer.create 128 in
    Buffer.add_char b '{';
    f b;
    Buffer.add_char b '}';
    Buffer.contents b

  let request_to_string = function
    | Hello client ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "hello");
          add_field b ~first:false "client" (jstr client))
    | Ping -> render (fun b -> add_field b ~first:true "op" (jstr "ping"))
    | Submit s ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "submit");
          add_field b ~first:false "id" (jstr s.s_id);
          add_field b ~first:false "design" (jstr s.s_design);
          (match s.s_property with
          | Some p -> add_field b ~first:false "property" (jstr p)
          | None -> ());
          add_field b ~first:false "method" (jstr s.s_method);
          (match s.s_max_depth with
          | Some d -> add_field b ~first:false "max_depth" (jint d)
          | None -> ());
          (match s.s_timeout_s with
          | Some t -> add_field b ~first:false "timeout_s" (jfloat t)
          | None -> ());
          (match s.s_cache with
          | Some c -> add_field b ~first:false "cache" (jbool c)
          | None -> ()))
    | Poll job ->
      render (fun b ->
          add_field b ~first:true "op" (jstr "poll");
          add_field b ~first:false "job" (jint job))
    | Metrics -> render (fun b -> add_field b ~first:true "op" (jstr "metrics"))
    | Shutdown -> render (fun b -> add_field b ~first:true "op" (jstr "shutdown"))

  let reply_to_string = function
    | Hello_ok { server; version } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "hello");
          add_field b ~first:false "server" (jstr server);
          add_field b ~first:false "version" (jint version))
    | Pong -> render (fun b -> add_field b ~first:true "reply" (jstr "pong"))
    | Accepted { id; jobs; queue_depth } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "accepted");
          add_field b ~first:false "id" (jstr id);
          add_field b ~first:false "jobs" (fun b ->
              Buffer.add_char b '[';
              List.iteri
                (fun i (job, property) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_char b '{';
                  add_field b ~first:true "job" (jint job);
                  add_field b ~first:false "property" (jstr property);
                  Buffer.add_char b '}')
                jobs;
              Buffer.add_char b ']');
          add_field b ~first:false "queue_depth" (jint queue_depth))
    | Busy { id; queue_depth; max_queue } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "busy");
          add_field b ~first:false "id" (jstr id);
          add_field b ~first:false "queue_depth" (jint queue_depth);
          add_field b ~first:false "max_queue" (jint max_queue))
    | Shutdown_reply { id; job } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "shutdown");
          add_field b ~first:false "id" (jstr id);
          match job with
          | Some j -> add_field b ~first:false "job" (jint j)
          | None -> ())
    | Error { id; message } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "error");
          (match id with
          | Some id -> add_field b ~first:false "id" (jstr id)
          | None -> ());
          add_field b ~first:false "message" (jstr message))
    | Result r ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "result");
          add_field b ~first:false "job" (jint r.r_job);
          add_field b ~first:false "id" (jstr r.r_id);
          add_field b ~first:false "property" (jstr r.r_property);
          add_field b ~first:false "method" (jstr r.r_method);
          add_field b ~first:false "verdict" (jstr r.r_verdict);
          (match r.r_depth with
          | Some d -> add_field b ~first:false "depth" (jint d)
          | None -> ());
          (match r.r_induction with
          | Some i -> add_field b ~first:false "induction" (jbool i)
          | None -> ());
          (match r.r_genuine with
          | Some g -> add_field b ~first:false "genuine" (jbool g)
          | None -> ());
          (match r.r_reason with
          | Some why -> add_field b ~first:false "reason" (jstr why)
          | None -> ());
          add_field b ~first:false "time_s" (jfloat r.r_time_s);
          add_field b ~first:false "cache" (jstr r.r_cache);
          add_field b ~first:false "certificate" (jstr r.r_certificate))
    | Status { job; state } ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "status");
          add_field b ~first:false "job" (jint job);
          add_field b ~first:false "state" (jstr state))
    | Metrics_reply m ->
      render (fun b ->
          add_field b ~first:true "reply" (jstr "metrics");
          add_field b ~first:false "uptime_s" (jfloat m.m_uptime_s);
          add_field b ~first:false "queue_depth" (jint m.m_queue_depth);
          add_field b ~first:false "running" (jint m.m_running);
          add_field b ~first:false "clients" (jint m.m_clients);
          add_field b ~first:false "jobs" (fun b ->
              Buffer.add_char b '{';
              add_field b ~first:true "accepted" (jint m.m_accepted);
              add_field b ~first:false "completed" (jint m.m_completed);
              add_field b ~first:false "failed" (jint m.m_failed);
              add_field b ~first:false "cancelled" (jint m.m_cancelled);
              add_field b ~first:false "rejected_busy" (jint m.m_rejected_busy);
              add_field b ~first:false "rejected_shutdown" (jint m.m_rejected_shutdown);
              add_field b ~first:false "protocol_errors" (jint m.m_protocol_errors);
              Buffer.add_char b '}');
          add_field b ~first:false "cache" (fun b ->
              Buffer.add_char b '{';
              add_field b ~first:true "hits" (jint m.m_cache_hits);
              add_field b ~first:false "misses" (jint m.m_cache_misses);
              add_field b ~first:false "entries" (jint m.m_cache_entries);
              add_field b ~first:false "bytes" (jint m.m_cache_bytes);
              add_field b ~first:false "gc_runs" (jint m.m_gc_runs);
              add_field b ~first:false "gc_evicted" (jint m.m_gc_evicted);
              Buffer.add_char b '}');
          add_field b ~first:false "methods" (fun b ->
              Buffer.add_char b '[';
              List.iteri
                (fun i (name, jobs, wall_s) ->
                  if i > 0 then Buffer.add_char b ',';
                  Buffer.add_char b '{';
                  add_field b ~first:true "method" (jstr name);
                  add_field b ~first:false "jobs" (jint jobs);
                  add_field b ~first:false "wall_s" (jfloat wall_s);
                  Buffer.add_char b '}')
                m.m_methods;
              Buffer.add_char b ']'))
    | Draining -> render (fun b -> add_field b ~first:true "reply" (jstr "draining"))

  (* {2 Parsing} *)

  open Obs.Json

  let str_field name o =
    match member name o with Some (Str s) -> Some s | _ -> None

  let int_field name o =
    match member name o with Some (Num n) -> Some (int_of_float n) | _ -> None

  let num_field name o = match member name o with Some (Num n) -> Some n | _ -> None

  let bool_field name o =
    match member name o with Some (Bool v) -> Some v | _ -> None

  let required what = function
    | Some v -> Ok v
    | None -> Stdlib.Error (Printf.sprintf "missing or ill-typed field %S" what)

  let ( let* ) r f = match r with Ok v -> f v | Stdlib.Error _ as e -> e

  let request_of_string line =
    match parse line with
    | Stdlib.Error e -> Stdlib.Error ("bad JSON: " ^ e)
    | Ok o -> (
      let* op = required "op" (str_field "op" o) in
      match op with
      | "hello" ->
        let* client = required "client" (str_field "client" o) in
        Ok (Hello client)
      | "ping" -> Ok Ping
      | "submit" ->
        let* design = required "design" (str_field "design" o) in
        Ok
          (Submit
             {
               s_id = Option.value (str_field "id" o) ~default:"";
               s_design = design;
               s_property = str_field "property" o;
               s_method = Option.value (str_field "method" o) ~default:"emm";
               s_max_depth = int_field "max_depth" o;
               s_timeout_s = num_field "timeout_s" o;
               s_cache = bool_field "cache" o;
             })
      | "poll" ->
        let* job = required "job" (int_field "job" o) in
        Ok (Poll job)
      | "metrics" -> Ok Metrics
      | "shutdown" -> Ok Shutdown
      | op -> Stdlib.Error (Printf.sprintf "unknown op %S" op))

  let reply_of_string line =
    match parse line with
    | Stdlib.Error e -> Stdlib.Error ("bad JSON: " ^ e)
    | Ok o -> (
      let* reply = required "reply" (str_field "reply" o) in
      match reply with
      | "hello" ->
        let* server = required "server" (str_field "server" o) in
        let* version = required "version" (int_field "version" o) in
        Ok (Hello_ok { server; version })
      | "pong" -> Ok Pong
      | "accepted" ->
        let* id = required "id" (str_field "id" o) in
        let* jobs =
          match member "jobs" o with
          | Some (Arr l) ->
            List.fold_left
              (fun acc j ->
                let* acc = acc in
                let* job = required "job" (int_field "job" j) in
                let* property = required "property" (str_field "property" j) in
                Ok ((job, property) :: acc))
              (Ok []) l
            |> Result.map List.rev
          | _ -> Stdlib.Error "missing jobs array"
        in
        let* queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        Ok (Accepted { id; jobs; queue_depth })
      | "busy" ->
        let* id = required "id" (str_field "id" o) in
        let* queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        let* max_queue = required "max_queue" (int_field "max_queue" o) in
        Ok (Busy { id; queue_depth; max_queue })
      | "shutdown" ->
        let* id = required "id" (str_field "id" o) in
        Ok (Shutdown_reply { id; job = int_field "job" o })
      | "error" ->
        let* message = required "message" (str_field "message" o) in
        Ok (Error { id = str_field "id" o; message })
      | "result" ->
        let* r_job = required "job" (int_field "job" o) in
        let* r_id = required "id" (str_field "id" o) in
        let* r_property = required "property" (str_field "property" o) in
        let* r_method = required "method" (str_field "method" o) in
        let* r_verdict = required "verdict" (str_field "verdict" o) in
        let* r_time_s = required "time_s" (num_field "time_s" o) in
        let* r_cache = required "cache" (str_field "cache" o) in
        let* r_certificate = required "certificate" (str_field "certificate" o) in
        Ok
          (Result
             {
               r_job;
               r_id;
               r_property;
               r_method;
               r_verdict;
               r_depth = int_field "depth" o;
               r_induction = bool_field "induction" o;
               r_genuine = bool_field "genuine" o;
               r_reason = str_field "reason" o;
               r_time_s;
               r_cache;
               r_certificate;
             })
      | "status" ->
        let* job = required "job" (int_field "job" o) in
        let* state = required "state" (str_field "state" o) in
        Ok (Status { job; state })
      | "metrics" ->
        let obj name =
          match member name o with Some (Obj _ as v) -> Some v | _ -> None
        in
        let* jobs = required "jobs" (obj "jobs") in
        let* cache = required "cache" (obj "cache") in
        let* m_uptime_s = required "uptime_s" (num_field "uptime_s" o) in
        let* m_queue_depth = required "queue_depth" (int_field "queue_depth" o) in
        let* m_running = required "running" (int_field "running" o) in
        let* m_clients = required "clients" (int_field "clients" o) in
        let need name v = required name (int_field name v) in
        let* m_accepted = need "accepted" jobs in
        let* m_completed = need "completed" jobs in
        let* m_failed = need "failed" jobs in
        let* m_cancelled = need "cancelled" jobs in
        let* m_rejected_busy = need "rejected_busy" jobs in
        let* m_rejected_shutdown = need "rejected_shutdown" jobs in
        let* m_protocol_errors = need "protocol_errors" jobs in
        let* m_cache_hits = need "hits" cache in
        let* m_cache_misses = need "misses" cache in
        let* m_cache_entries = need "entries" cache in
        let* m_cache_bytes = need "bytes" cache in
        let* m_gc_runs = need "gc_runs" cache in
        let* m_gc_evicted = need "gc_evicted" cache in
        let* m_methods =
          match member "methods" o with
          | Some (Arr l) ->
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                let* name = required "method" (str_field "method" e) in
                let* jobs = required "jobs" (int_field "jobs" e) in
                let* wall_s = required "wall_s" (num_field "wall_s" e) in
                Ok ((name, jobs, wall_s) :: acc))
              (Ok []) l
            |> Result.map List.rev
          | _ -> Stdlib.Error "missing methods array"
        in
        Ok
          (Metrics_reply
             {
               m_uptime_s;
               m_queue_depth;
               m_running;
               m_clients;
               m_accepted;
               m_completed;
               m_failed;
               m_cancelled;
               m_rejected_busy;
               m_rejected_shutdown;
               m_protocol_errors;
               m_cache_hits;
               m_cache_misses;
               m_cache_entries;
               m_cache_bytes;
               m_gc_runs;
               m_gc_evicted;
               m_methods;
             })
      | "draining" -> Ok Draining
      | r -> Stdlib.Error (Printf.sprintf "unknown reply %S" r))
end

(* {1 Shared socket plumbing} *)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + retry_eintr (fun () -> Unix.write fd b !pos (n - !pos))
  done

(* {1 The client} *)

module Client = struct
  type t = { fd : Unix.file_descr; mutable pending : string }

  let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

  let send t req =
    try
      write_all t.fd (Proto.request_to_string req ^ "\n");
      Ok ()
    with
    | Unix.Unix_error (e, _, _) -> Error ("send: " ^ Unix.error_message e)
    | Sys_error e -> Error ("send: " ^ e)

  let rec take_line t =
    match String.index_opt t.pending '\n' with
    | Some i ->
      let line = String.sub t.pending 0 i in
      t.pending <- String.sub t.pending (i + 1) (String.length t.pending - i - 1);
      Some line
    | None -> None

  and read_reply ?(timeout_s = 60.0) t =
    match take_line t with
    | Some line -> Proto.reply_of_string line
    | None ->
      let deadline = Unix.gettimeofday () +. timeout_s in
      let chunk = Bytes.create 65536 in
      let rec wait () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "timed out waiting for a reply"
        else
          let readable, _, _ =
            retry_eintr (fun () -> Unix.select [ t.fd ] [] [] remaining)
          in
          if readable = [] then Error "timed out waiting for a reply"
          else
            match retry_eintr (fun () -> Unix.read t.fd chunk 0 (Bytes.length chunk)) with
            | 0 -> Error "connection closed by server"
            | k ->
              t.pending <- t.pending ^ Bytes.sub_string chunk 0 k;
              (match take_line t with
              | Some line -> Proto.reply_of_string line
              | None -> wait ())
            | exception Unix.Unix_error (e, _, _) ->
              Error ("read: " ^ Unix.error_message e)
      in
      wait ()

  let request ?timeout_s t req =
    match send t req with Ok () -> read_reply ?timeout_s t | Error _ as e -> e

  let connect ?client path =
    match
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      { fd; pending = "" }
    with
    | t -> (
      match client with
      | None -> Ok t
      | Some c -> (
        match request t (Proto.Hello c) with
        | Ok (Proto.Hello_ok _) -> Ok t
        | Ok r ->
          close t;
          Error ("unexpected hello reply: " ^ Proto.reply_to_string r)
        | Error e ->
          close t;
          Error e))
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
end

(* {1 The daemon} *)

module Server = struct
  type config = {
    socket : string;
    workers : int;
    max_queue : int;
    cache_dir : string option;
    gc_policy : Vcache.gc_policy;
    gc_interval_s : float;
    budgets : Policy.budgets;
    kill_grace_s : float;
    quiet : bool;
    runner :
      (Proto.submit -> property:string -> options:Emmver.options -> Emmver.outcome)
      option;
  }

  let config ?workers ?(max_queue = 64) ?cache_dir ?(gc_policy = Vcache.gc_policy ())
      ?(gc_interval_s = 60.0) ?(budgets = Policy.unlimited) ?(kill_grace_s = 10.0)
      ?(quiet = false) ?runner ~socket () =
    {
      socket;
      workers = (match workers with Some w -> max 1 w | None -> Parallel.default_jobs ());
      max_queue = max 1 max_queue;
      cache_dir =
        (match cache_dir with Some d -> d | None -> Some (Vcache.default_dir ()));
      gc_policy;
      gc_interval_s;
      budgets;
      kill_grace_s;
      quiet;
      runner;
    }

  type conn = {
    fd : Unix.file_descr;
    cid : int;
    mutable client : string;
    inbuf : Buffer.t;
    mutable out : string;  (* pending unwritten reply bytes *)
    mutable out_pos : int;
    mutable closed : bool;
  }

  type job_state = Queued | Running | Done

  type job = {
    j_id : int;
    j_req : string;  (* the submit's request id, echoed in replies *)
    j_conn : int;
    j_property : string;
    j_method : string;
    j_kill_s : float option;
    mutable j_run : unit -> Emmver.outcome;
    mutable j_state : job_state;
    mutable j_abandoned : bool;  (* submitting connection went away *)
  }

  type metrics = {
    mutable accepted : int;
    mutable completed : int;
    mutable failed : int;
    mutable cancelled : int;
    mutable rejected_busy : int;
    mutable rejected_shutdown : int;
    mutable protocol_errors : int;
    mutable cache_hits : int;
    mutable cache_misses : int;
    mutable gc_runs : int;
    mutable gc_evicted : int;
    method_wall : (string, int * float) Hashtbl.t;
  }

  type state = {
    cfg : config;
    pool : Parallel.t;
    listen_fd : Unix.file_descr;
    conns : (int, conn) Hashtbl.t;
    queues : (string, job Queue.t) Hashtbl.t;
    mutable rotation : string list;  (* round-robin order of client ids *)
    mutable queued : int;
    jobs_tbl : (int, job) Hashtbl.t;
    mutable running : (job * Emmver.outcome Parallel.Async.handle) list;
    mutable draining : bool;
    mutable drain_since : float;
    mutable next_job : int;
    mutable next_conn : int;
    mutable last_gc : float;
    started : float;
    clients_seen : (string, unit) Hashtbl.t;
    m : metrics;
  }

  let log st fmt =
    Format.ksprintf
      (fun s ->
        if not st.cfg.quiet then begin
          print_string ("serve: " ^ s ^ "\n");
          flush stdout
        end)
      fmt

  (* {2 Connection plumbing} *)

  let push_reply st conn reply =
    if not conn.closed then begin
      conn.out <- conn.out ^ Proto.reply_to_string reply ^ "\n";
      ignore st
    end

  let flush_conn conn =
    if (not conn.closed) && String.length conn.out > conn.out_pos then
      match
        Unix.write_substring conn.fd conn.out conn.out_pos
          (String.length conn.out - conn.out_pos)
      with
      | n ->
        conn.out_pos <- conn.out_pos + n;
        if conn.out_pos = String.length conn.out then begin
          conn.out <- "";
          conn.out_pos <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error _ -> conn.closed <- true

  let pending_out conn = (not conn.closed) && String.length conn.out > conn.out_pos

  (* A connection's death cancels its footprint: queued jobs are dropped,
     running jobs are SIGKILLed — a caller that went away should not keep
     burning worker slots.  Everything is counted as [cancelled]. *)
  let drop_conn st conn =
    if not conn.closed then conn.closed <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    Hashtbl.remove st.conns conn.cid;
    Hashtbl.iter
      (fun _ q ->
        let keep = Queue.create () in
        Queue.iter
          (fun j ->
            if j.j_conn = conn.cid then begin
              j.j_state <- Done;
              j.j_run <- (fun () -> assert false);
              st.queued <- st.queued - 1;
              st.m.cancelled <- st.m.cancelled + 1;
              Obs.counter_add "serve.cancelled" 1
            end
            else Queue.add j keep)
          q;
        Queue.clear q;
        Queue.transfer keep q)
      st.queues;
    List.iter
      (fun (j, h) ->
        if j.j_conn = conn.cid && not j.j_abandoned then begin
          j.j_abandoned <- true;
          Parallel.Async.cancel st.pool h
        end)
      st.running;
    List.iter
      (fun j ->
        if j.j_conn = conn.cid && j.j_state = Queued then j.j_abandoned <- true)
      [];
    log st "client %s (conn %d) disconnected" conn.client conn.cid

  (* {2 Submission} *)

  let clamp_options st (s : Proto.submit) =
    let b = st.cfg.budgets in
    let o = Emmver.default_options in
    let max_depth =
      match (s.s_max_depth, b.Policy.max_depth) with
      | Some d, Some cap -> min d cap
      | Some d, None -> d
      | None, Some cap -> min cap o.Emmver.max_depth
      | None, None -> o.Emmver.max_depth
    in
    let timeout_s =
      match (s.s_timeout_s, b.Policy.wall_s) with
      | Some t, Some cap -> Some (Float.min t cap)
      | Some t, None -> Some t
      | None, cap -> cap
    in
    let cache_available = st.cfg.cache_dir <> None in
    {
      o with
      Emmver.max_depth;
      timeout_s;
      conflict_budget = b.Policy.conflicts;
      learnt_mb_budget = b.Policy.learnt_mb;
      cache =
        (match s.s_cache with
        | Some c -> c && cache_available
        | None -> cache_available);
      cache_dir = st.cfg.cache_dir;
    }

  let enqueue st (j : job) client =
    let q =
      match Hashtbl.find_opt st.queues client with
      | Some q -> q
      | None ->
        let q = Queue.create () in
        Hashtbl.replace st.queues client q;
        st.rotation <- st.rotation @ [ client ];
        q
    in
    Queue.add j q;
    st.queued <- st.queued + 1

  (* Round-robin across client ids: take the head client, rotate it to the
     tail, serve one job from its queue if it has one.  Bounded by the
     rotation length, so clients with empty queues just pass their turn. *)
  let pick_next st =
    let rec go tries =
      if tries = 0 then None
      else
        match st.rotation with
        | [] -> None
        | c :: rest -> (
          st.rotation <- rest @ [ c ];
          match Hashtbl.find_opt st.queues c with
          | Some q when not (Queue.is_empty q) ->
            let j = Queue.pop q in
            st.queued <- st.queued - 1;
            Some j
          | _ -> go (tries - 1))
    in
    go (List.length st.rotation)

  let handle_submit st conn (s : Proto.submit) =
    if st.draining then begin
      st.m.rejected_shutdown <- st.m.rejected_shutdown + 1;
      Obs.counter_add "serve.rejected_shutdown" 1;
      push_reply st conn (Proto.Shutdown_reply { id = s.s_id; job = None })
    end
    else
      let reject message =
        st.m.protocol_errors <- st.m.protocol_errors + 1;
        push_reply st conn (Proto.Error { id = Some s.s_id; message })
      in
      match Emmver.method_of_string s.s_method with
      | Error msg -> reject msg
      | Ok method_ -> (
        match load_design s.s_design with
        | Error msg -> reject msg
        | Ok net -> (
          let props =
            match s.s_property with
            | Some p ->
              if List.mem_assoc p (Netlist.properties net) then Ok [ p ]
              else
                Stdlib.Error
                  (Printf.sprintf "design %s has no property %S" s.s_design p)
            | None -> (
              match List.map fst (Netlist.properties net) with
              | [] -> Stdlib.Error (s.s_design ^ " has no properties")
              | ps -> Ok ps)
          in
          match props with
          | Error msg -> reject msg
          | Ok props ->
            let n = List.length props in
            if st.queued + n > st.cfg.max_queue then begin
              (* Explicit backpressure: the daemon never buffers beyond
                 [max_queue] — the caller retries or backs off. *)
              st.m.rejected_busy <- st.m.rejected_busy + 1;
              Obs.counter_add "serve.rejected_busy" 1;
              push_reply st conn
                (Proto.Busy
                   {
                     id = s.s_id;
                     queue_depth = st.queued;
                     max_queue = st.cfg.max_queue;
                   })
            end
            else begin
              let options = clamp_options st s in
              let kill_s =
                match options.Emmver.timeout_s with
                | Some t -> Some (t +. st.cfg.kill_grace_s)
                | None -> None
              in
              let client = conn.client in
              Hashtbl.replace st.clients_seen client ();
              let jobs =
                List.map
                  (fun property ->
                    let id = st.next_job in
                    st.next_job <- st.next_job + 1;
                    let run =
                      match st.cfg.runner with
                      | Some r -> fun () -> r s ~property ~options
                      | None ->
                        fun () -> Emmver.verify ~options ~method_ net ~property
                    in
                    let j =
                      {
                        j_id = id;
                        j_req = s.s_id;
                        j_conn = conn.cid;
                        j_property = property;
                        j_method = s.s_method;
                        j_kill_s = kill_s;
                        j_run = run;
                        j_state = Queued;
                        j_abandoned = false;
                      }
                    in
                    Hashtbl.replace st.jobs_tbl id j;
                    enqueue st j client;
                    j)
                  props
              in
              st.m.accepted <- st.m.accepted + n;
              Obs.counter_add "serve.accepted" n;
              log st "accepted %d job(s) for %s from %s (queue %d)" n s.s_design
                client st.queued;
              push_reply st conn
                (Proto.Accepted
                   {
                     id = s.s_id;
                     jobs = List.map (fun j -> (j.j_id, j.j_property)) jobs;
                     queue_depth = st.queued;
                   })
            end))

  (* {2 Results} *)

  let result_of_outcome (j : job) (o : Emmver.outcome) =
    let verdict, depth, induction, genuine, reason =
      match o.Emmver.conclusion with
      | Emmver.Proved { depth; induction } ->
        ("proved", Some depth, Some induction, None, None)
      | Emmver.Falsified { depth; genuine; _ } ->
        ("falsified", Some depth, None, genuine, None)
      | Emmver.Inconclusive why -> ("inconclusive", None, None, None, Some why)
    in
    {
      Proto.r_job = j.j_id;
      r_id = j.j_req;
      r_property = j.j_property;
      r_method = j.j_method;
      r_verdict = verdict;
      r_depth = depth;
      r_induction = induction;
      r_genuine = genuine;
      r_reason = reason;
      r_time_s = o.Emmver.time_s;
      r_cache =
        (match o.Emmver.cache with
        | Emmver.Cache_off -> "off"
        | Emmver.Cache_miss -> "miss"
        | Emmver.Cache_hit -> "hit"
        | Emmver.Cache_dedup -> "dedup");
      r_certificate = Cert.label o.Emmver.certificate;
    }

  let deliver st (j : job) (r : Emmver.outcome Parallel.job_result) =
    j.j_state <- Done;
    j.j_run <- (fun () -> assert false);
    let conn = Hashtbl.find_opt st.conns j.j_conn in
    let bump_method wall_s =
      let jobs, wall =
        match Hashtbl.find_opt st.m.method_wall j.j_method with
        | Some (n, w) -> (n, w)
        | None -> (0, 0.0)
      in
      Hashtbl.replace st.m.method_wall j.j_method (jobs + 1, wall +. wall_s)
    in
    match r with
    | _ when j.j_abandoned ->
      st.m.cancelled <- st.m.cancelled + 1;
      Obs.counter_add "serve.cancelled" 1;
      log st "job %d cancelled (client gone)" j.j_id
    | Ok o ->
      st.m.completed <- st.m.completed + 1;
      Obs.counter_add "serve.completed" 1;
      (match o.Emmver.cache with
      | Emmver.Cache_hit | Emmver.Cache_dedup ->
        st.m.cache_hits <- st.m.cache_hits + 1;
        Obs.counter_add "serve.cache_hits" 1
      | Emmver.Cache_miss ->
        st.m.cache_misses <- st.m.cache_misses + 1;
        Obs.counter_add "serve.cache_misses" 1
      | Emmver.Cache_off -> ());
      bump_method o.Emmver.time_s;
      let line = result_of_outcome j o in
      log st "job %d (%s/%s) %s in %.3fs [cache %s]" j.j_id line.Proto.r_property
        j.j_method line.Proto.r_verdict line.Proto.r_time_s line.Proto.r_cache;
      Option.iter (fun c -> push_reply st c (Proto.Result line)) conn
    | Error f ->
      st.m.failed <- st.m.failed + 1;
      Obs.counter_add "serve.failed" 1;
      bump_method f.Parallel.elapsed_s;
      let why = "worker killed: " ^ Parallel.failure_message f in
      log st "job %d failed: %s" j.j_id why;
      Option.iter
        (fun c ->
          push_reply st c
            (Proto.Result
               {
                 Proto.r_job = j.j_id;
                 r_id = j.j_req;
                 r_property = j.j_property;
                 r_method = j.j_method;
                 r_verdict = "inconclusive";
                 r_depth = None;
                 r_induction = None;
                 r_genuine = None;
                 r_reason = Some why;
                 r_time_s = f.Parallel.elapsed_s;
                 r_cache = "off";
                 r_certificate = "unchecked";
               }))
        conn

  (* {2 Metrics} *)

  let metrics_line st =
    let entries, bytes =
      match st.cfg.cache_dir with
      | None -> (0, 0)
      | Some dir ->
        let s = Vcache.stats (Vcache.config ~dir ()) in
        (s.Vcache.entries, s.Vcache.bytes)
    in
    let methods =
      Hashtbl.fold (fun name (jobs, wall) acc -> (name, jobs, wall) :: acc)
        st.m.method_wall []
      |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)
    in
    {
      Proto.m_uptime_s = Obs.now () -. st.started;
      m_queue_depth = st.queued;
      m_running = List.length st.running;
      m_clients = Hashtbl.length st.clients_seen;
      m_accepted = st.m.accepted;
      m_completed = st.m.completed;
      m_failed = st.m.failed;
      m_cancelled = st.m.cancelled;
      m_rejected_busy = st.m.rejected_busy;
      m_rejected_shutdown = st.m.rejected_shutdown;
      m_protocol_errors = st.m.protocol_errors;
      m_cache_hits = st.m.cache_hits;
      m_cache_misses = st.m.cache_misses;
      m_cache_entries = entries;
      m_cache_bytes = bytes;
      m_gc_runs = st.m.gc_runs;
      m_gc_evicted = st.m.gc_evicted;
      m_methods = methods;
    }

  (* {2 Drain} *)

  let enter_drain st reason =
    if not st.draining then begin
      st.draining <- true;
      st.drain_since <- Unix.gettimeofday ();
      log st "draining (%s): %d running, %d queued" reason
        (List.length st.running) st.queued;
      (* Queued jobs are refused with [shutdown] replies; in-flight jobs
         run to completion and deliver normally. *)
      Hashtbl.iter
        (fun _ q ->
          Queue.iter
            (fun j ->
              j.j_state <- Done;
              j.j_run <- (fun () -> assert false);
              st.m.rejected_shutdown <- st.m.rejected_shutdown + 1;
              Obs.counter_add "serve.rejected_shutdown" 1;
              match Hashtbl.find_opt st.conns j.j_conn with
              | Some c ->
                push_reply st c
                  (Proto.Shutdown_reply { id = j.j_req; job = Some j.j_id })
              | None -> ())
            q;
          Queue.clear q)
        st.queues;
      st.queued <- 0
    end

  (* {2 Request dispatch} *)

  let handle_request st conn = function
    | Proto.Hello client ->
      conn.client <- client;
      Hashtbl.replace st.clients_seen client ();
      push_reply st conn
        (Proto.Hello_ok { server = "emmver"; version = protocol_version })
    | Proto.Ping -> push_reply st conn Proto.Pong
    | Proto.Submit s -> handle_submit st conn s
    | Proto.Poll job ->
      let state =
        match Hashtbl.find_opt st.jobs_tbl job with
        | Some { j_state = Queued; _ } -> "queued"
        | Some { j_state = Running; _ } -> "running"
        | Some { j_state = Done; _ } -> "done"
        | None -> "unknown"
      in
      push_reply st conn (Proto.Status { job; state })
    | Proto.Metrics -> push_reply st conn (Proto.Metrics_reply (metrics_line st))
    | Proto.Shutdown ->
      push_reply st conn Proto.Draining;
      enter_drain st "shutdown request"

  let handle_line st conn line =
    let line = String.trim line in
    if line <> "" then
      match Proto.request_of_string line with
      | Ok req -> handle_request st conn req
      | Error message ->
        st.m.protocol_errors <- st.m.protocol_errors + 1;
        Obs.counter_add "serve.protocol_errors" 1;
        push_reply st conn (Proto.Error { id = None; message })

  let read_conn st conn =
    let chunk = Bytes.create 65536 in
    let rec drain () =
      match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
      | 0 -> drop_conn st conn
      | k ->
        Buffer.add_subbytes conn.inbuf chunk 0 k;
        drain ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
      | exception Unix.Unix_error _ -> drop_conn st conn
    in
    drain ();
    (* Process every complete line buffered so far. *)
    let data = Buffer.contents conn.inbuf in
    Buffer.clear conn.inbuf;
    let rec split from =
      match String.index_from_opt data from '\n' with
      | Some i ->
        handle_line st conn (String.sub data from (i - from));
        split (i + 1)
      | None ->
        Buffer.add_string conn.inbuf
          (String.sub data from (String.length data - from))
    in
    if data <> "" then split 0

  (* {2 Scheduling} *)

  let start_jobs st =
    while List.length st.running < st.cfg.workers && st.queued > 0 do
      match pick_next st with
      | None -> st.queued <- 0 (* defensive: rotation lost track *)
      | Some j ->
        let run = j.j_run in
        let h =
          Parallel.Async.spawn st.pool ?job_timeout_s:j.j_kill_s
            ~f:(fun () -> run ())
            ()
        in
        j.j_state <- Running;
        st.running <- (j, h) :: st.running;
        log st "job %d (%s) started [%d/%d workers]" j.j_id j.j_property
          (List.length st.running) st.cfg.workers
    done

  let service_workers st readable =
    let still = ref [] in
    List.iter
      (fun (j, h) ->
        if List.mem (Parallel.Async.fd h) readable then
          match Parallel.Async.service st.pool h with
          | Some result -> deliver st j result
          | None -> still := (j, h) :: !still
        else begin
          Parallel.Async.check_deadline st.pool h;
          still := (j, h) :: !still
        end)
      st.running;
    st.running <- List.rev !still

  let maybe_gc st =
    match st.cfg.cache_dir with
    | Some dir
      when (st.cfg.gc_policy.Vcache.max_bytes <> None
           || st.cfg.gc_policy.Vcache.max_age_s <> None)
           && Unix.gettimeofday () -. st.last_gc >= st.cfg.gc_interval_s ->
      st.last_gc <- Unix.gettimeofday ();
      let r = Vcache.maintain (Vcache.config ~dir ()) st.cfg.gc_policy in
      st.m.gc_runs <- st.m.gc_runs + 1;
      let evicted = r.Vcache.evicted_age + r.Vcache.evicted_size in
      st.m.gc_evicted <- st.m.gc_evicted + evicted;
      if evicted > 0 then
        log st "cache gc: evicted %d (age %d, size %d), kept %d (%.2f MB)" evicted
          r.Vcache.evicted_age r.Vcache.evicted_size r.Vcache.kept
          (float_of_int r.Vcache.kept_bytes /. 1048576.0)
    | _ -> ()

  (* {2 The loop} *)

  let bind_socket cfg =
    if Sys.file_exists cfg.socket then begin
      (* A live daemon answers a connect; a stale file left by a dead one
         refuses it and is safe to replace. *)
      match Client.connect cfg.socket with
      | Ok c ->
        Client.close c;
        failwith (Printf.sprintf "socket %s is already served by a live daemon" cfg.socket)
      | Error _ -> ( try Sys.remove cfg.socket with Sys_error _ -> ())
    end;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX cfg.socket);
    Unix.listen fd 64;
    fd

  let run cfg =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let term = ref false in
    let old_term =
      Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> term := true))
    in
    let old_int =
      Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> term := true))
    in
    let listen_fd = bind_socket cfg in
    let st =
      {
        cfg;
        pool = Parallel.create ~jobs:cfg.workers ();
        listen_fd;
        conns = Hashtbl.create 16;
        queues = Hashtbl.create 16;
        rotation = [];
        queued = 0;
        jobs_tbl = Hashtbl.create 64;
        running = [];
        draining = false;
        drain_since = 0.0;
        next_job = 1;
        next_conn = 1;
        last_gc = Unix.gettimeofday ();
        started = Obs.now ();
        clients_seen = Hashtbl.create 16;
        m =
          {
            accepted = 0;
            completed = 0;
            failed = 0;
            cancelled = 0;
            rejected_busy = 0;
            rejected_shutdown = 0;
            protocol_errors = 0;
            cache_hits = 0;
            cache_misses = 0;
            gc_runs = 0;
            gc_evicted = 0;
            method_wall = Hashtbl.create 8;
          };
      }
    in
    log st "listening on %s (%d workers, queue %d, cache %s)" cfg.socket
      cfg.workers cfg.max_queue
      (match cfg.cache_dir with Some d -> d | None -> "off");
    let finished () =
      st.draining && st.queued = 0 && st.running = []
      && not (Hashtbl.fold (fun _ c acc -> acc || pending_out c) st.conns false)
    in
    let drain_expired () =
      (* A drain must terminate even if a client never reads its replies. *)
      st.draining && Unix.gettimeofday () -. st.drain_since > 30.0
    in
    while not (finished () || drain_expired ()) do
      if !term then enter_drain st "SIGTERM";
      if not st.draining then start_jobs st;
      let conn_fds =
        Hashtbl.fold (fun _ c acc -> if c.closed then acc else c.fd :: acc) st.conns []
      in
      let write_fds =
        Hashtbl.fold
          (fun _ c acc -> if pending_out c then c.fd :: acc else acc)
          st.conns []
      in
      let worker_fds = List.map (fun (_, h) -> Parallel.Async.fd h) st.running in
      let read_fds =
        (if st.draining then [] else [ st.listen_fd ]) @ conn_fds @ worker_fds
      in
      let readable, writable, _ =
        match Unix.select read_fds write_fds [] 0.25 with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if (not st.draining) && List.mem st.listen_fd readable then begin
        match Unix.accept st.listen_fd with
        | fd, _ ->
          Unix.set_nonblock fd;
          let cid = st.next_conn in
          st.next_conn <- st.next_conn + 1;
          Hashtbl.replace st.conns cid
            {
              fd;
              cid;
              client = Printf.sprintf "conn-%d" cid;
              inbuf = Buffer.create 256;
              out = "";
              out_pos = 0;
              closed = false;
            }
        | exception Unix.Unix_error _ -> ()
      end;
      Hashtbl.fold (fun _ c acc -> c :: acc) st.conns []
      |> List.iter (fun c ->
             if (not c.closed) && List.mem c.fd readable then read_conn st c);
      service_workers st readable;
      Hashtbl.iter
        (fun _ c ->
          if List.mem c.fd writable || pending_out c then flush_conn c)
        st.conns;
      Hashtbl.fold
        (fun _ c acc -> if c.closed then c :: acc else acc)
        st.conns []
      |> List.iter (fun c -> drop_conn st c);
      maybe_gc st
    done;
    Hashtbl.iter
      (fun _ c ->
        flush_conn c;
        try Unix.close c.fd with Unix.Unix_error _ -> ())
      st.conns;
    (try Unix.close st.listen_fd with Unix.Unix_error _ -> ());
    (try Sys.remove cfg.socket with Sys_error _ -> ());
    Sys.set_signal Sys.sigterm old_term;
    Sys.set_signal Sys.sigint old_int;
    log st "drained: %d completed, %d failed, %d cancelled, %d cache hits"
      st.m.completed st.m.failed st.m.cancelled st.m.cache_hits
end
