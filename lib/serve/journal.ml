(* Write-ahead job journal for the serve daemon.

   One file, append-only, one record per line:

     EMMVER-JOURNAL 1
     <md5-hex-of-json> <canonical json>
     ...

   The checksum covers exactly the JSON body of its own line, so every
   record is independently verifiable: a torn tail (daemon killed mid
   [write]), a flipped bit, or a stray partial line is detected and
   skipped during replay without poisoning the records around it.
   Records are idempotent under replay — duplicates (possible when a
   crash lands between a state change and its fsync on a previous
   incarnation's file) collapse to the same job state.

   Durability discipline mirrors the vcache store: appends are plain
   writes until the daemon is about to make a promise externally visible
   (an [accepted] reply, a [result] line), at which point it calls
   {!sync}; compaction writes a fresh file to [<path>.tmp], fsyncs it,
   [rename]s over the journal and fsyncs the directory. *)

let magic = "EMMVER-JOURNAL 1"

type submit = {
  a_job : int;
  a_tenant : string;
  a_req : string;
  a_design : string;
  a_property : string;
  a_method : string;
  a_max_depth : int option;
  a_timeout_s : float option;
  a_cache : bool option;
}

type result = {
  f_job : int;
  f_tenant : string;
  f_req : string;
  f_property : string;
  f_method : string;
  f_verdict : string;
  f_depth : int option;
  f_induction : bool option;
  f_genuine : bool option;
  f_reason : string option;
  f_time_s : float;
  f_cache : string;
  f_certificate : string;
}

type record =
  | Accepted of submit
  | Started of { job : int; pid : int; token : string }
  | Finished of result
  | Acked of { job : int }
  | Cancelled of { job : int }

(* {2 Canonical rendering} — same discipline as the wire protocol: fixed
   field order, [%.3f] floats, so a record has exactly one byte form. *)

let add_jstring b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_field b ~first name f =
  if not first then Buffer.add_char b ',';
  add_jstring b name;
  Buffer.add_char b ':';
  f b

let jint n b = Buffer.add_string b (string_of_int n)
let jfloat x b = Buffer.add_string b (Printf.sprintf "%.3f" x)
let jbool v b = Buffer.add_string b (if v then "true" else "false")
let jstr s b = add_jstring b s

let render f =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  f b;
  Buffer.add_char b '}';
  Buffer.contents b

let opt b name f = function
  | Some v -> add_field b ~first:false name (f v)
  | None -> ()

let record_to_json = function
  | Accepted a ->
    render (fun b ->
        add_field b ~first:true "rec" (jstr "accepted");
        add_field b ~first:false "job" (jint a.a_job);
        add_field b ~first:false "tenant" (jstr a.a_tenant);
        add_field b ~first:false "req" (jstr a.a_req);
        add_field b ~first:false "design" (jstr a.a_design);
        add_field b ~first:false "property" (jstr a.a_property);
        add_field b ~first:false "method" (jstr a.a_method);
        opt b "max_depth" jint a.a_max_depth;
        opt b "timeout_s" jfloat a.a_timeout_s;
        opt b "cache" jbool a.a_cache)
  | Started { job; pid; token } ->
    render (fun b ->
        add_field b ~first:true "rec" (jstr "started");
        add_field b ~first:false "job" (jint job);
        add_field b ~first:false "pid" (jint pid);
        add_field b ~first:false "token" (jstr token))
  | Finished f ->
    render (fun b ->
        add_field b ~first:true "rec" (jstr "result");
        add_field b ~first:false "job" (jint f.f_job);
        add_field b ~first:false "tenant" (jstr f.f_tenant);
        add_field b ~first:false "req" (jstr f.f_req);
        add_field b ~first:false "property" (jstr f.f_property);
        add_field b ~first:false "method" (jstr f.f_method);
        add_field b ~first:false "verdict" (jstr f.f_verdict);
        opt b "depth" jint f.f_depth;
        opt b "induction" jbool f.f_induction;
        opt b "genuine" jbool f.f_genuine;
        opt b "reason" jstr f.f_reason;
        add_field b ~first:false "time_s" (jfloat f.f_time_s);
        add_field b ~first:false "cache" (jstr f.f_cache);
        add_field b ~first:false "certificate" (jstr f.f_certificate))
  | Acked { job } ->
    render (fun b ->
        add_field b ~first:true "rec" (jstr "acked");
        add_field b ~first:false "job" (jint job))
  | Cancelled { job } ->
    render (fun b ->
        add_field b ~first:true "rec" (jstr "cancelled");
        add_field b ~first:false "job" (jint job))

(* {2 Parsing} *)

open Obs.Json

let str_field name o =
  match member name o with Some (Str s) -> Some s | _ -> None

let int_field name o =
  match member name o with Some (Num n) -> Some (int_of_float n) | _ -> None

let num_field name o = match member name o with Some (Num n) -> Some n | _ -> None

let bool_field name o =
  match member name o with Some (Bool v) -> Some v | _ -> None

let required what = function
  | Some v -> Ok v
  | None -> Stdlib.Error (Printf.sprintf "missing or ill-typed field %S" what)

let ( let* ) r f = match r with Ok v -> f v | Stdlib.Error _ as e -> e

let record_of_json body =
  match parse body with
  | Stdlib.Error e -> Stdlib.Error ("bad JSON: " ^ e)
  | Ok o -> (
    let* kind = required "rec" (str_field "rec" o) in
    match kind with
    | "accepted" ->
      let* a_job = required "job" (int_field "job" o) in
      let* a_tenant = required "tenant" (str_field "tenant" o) in
      let* a_design = required "design" (str_field "design" o) in
      let* a_property = required "property" (str_field "property" o) in
      let* a_method = required "method" (str_field "method" o) in
      Ok
        (Accepted
           {
             a_job;
             a_tenant;
             a_req = Option.value (str_field "req" o) ~default:"";
             a_design;
             a_property;
             a_method;
             a_max_depth = int_field "max_depth" o;
             a_timeout_s = num_field "timeout_s" o;
             a_cache = bool_field "cache" o;
           })
    | "started" ->
      let* job = required "job" (int_field "job" o) in
      let* pid = required "pid" (int_field "pid" o) in
      let* token = required "token" (str_field "token" o) in
      Ok (Started { job; pid; token })
    | "result" ->
      let* f_job = required "job" (int_field "job" o) in
      let* f_tenant = required "tenant" (str_field "tenant" o) in
      let* f_property = required "property" (str_field "property" o) in
      let* f_method = required "method" (str_field "method" o) in
      let* f_verdict = required "verdict" (str_field "verdict" o) in
      let* f_time_s = required "time_s" (num_field "time_s" o) in
      let* f_cache = required "cache" (str_field "cache" o) in
      let* f_certificate = required "certificate" (str_field "certificate" o) in
      Ok
        (Finished
           {
             f_job;
             f_tenant;
             f_req = Option.value (str_field "req" o) ~default:"";
             f_property;
             f_method;
             f_verdict;
             f_depth = int_field "depth" o;
             f_induction = bool_field "induction" o;
             f_genuine = bool_field "genuine" o;
             f_reason = str_field "reason" o;
             f_time_s;
             f_cache;
             f_certificate;
           })
    | "acked" ->
      let* job = required "job" (int_field "job" o) in
      Ok (Acked { job })
    | "cancelled" ->
      let* job = required "job" (int_field "job" o) in
      Ok (Cancelled { job })
    | kind -> Stdlib.Error (Printf.sprintf "unknown record kind %S" kind))

let job_of = function
  | Accepted a -> a.a_job
  | Started { job; _ } -> job
  | Finished f -> f.f_job
  | Acked { job } -> job
  | Cancelled { job } -> job

(* {2 Live state}

   The journal tracks per-job state as records are applied (both at replay
   and at runtime), so it can count dead lines for compaction and project
   the recovery view without a second pass. *)

type jstate = {
  mutable js_submit : submit option;
  mutable js_started : (int * string) option;
  mutable js_result : result option;
  mutable js_closed : bool;  (** acked or cancelled: nothing left to do *)
  mutable js_lines : int;  (** journal lines this job occupies *)
}

type t = {
  path : string;
  mutable fd : Unix.file_descr;
  mutable bytes : int;
  mutable records : int;
  mutable dead : int;  (** lines belonging to closed jobs *)
  mutable compactions : int;
  jobs : (int, jstate) Hashtbl.t;
}

type recovery = {
  pending : submit list;
  orphans : (int * int * string) list;
  undelivered : result list;
  next_job : int;
  replayed : int;
  corrupt : int;
}

let jstate t job =
  match Hashtbl.find_opt t.jobs job with
  | Some s -> s
  | None ->
    let s =
      {
        js_submit = None;
        js_started = None;
        js_result = None;
        js_closed = false;
        js_lines = 0;
      }
    in
    Hashtbl.replace t.jobs job s;
    s

let apply t r =
  let s = jstate t (job_of r) in
  s.js_lines <- s.js_lines + 1;
  if s.js_closed then t.dead <- t.dead + 1
  else
    match r with
    | Accepted a -> if s.js_submit = None then s.js_submit <- Some a
    | Started { pid; token; _ } -> s.js_started <- Some (pid, token)
    | Finished f ->
      if s.js_result = None then s.js_result <- Some f;
      s.js_started <- None
    | Acked _ | Cancelled _ ->
      s.js_closed <- true;
      t.dead <- t.dead + s.js_lines

(* {2 Low-level IO} *)

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with _ -> ());
    Unix.close fd
  | exception _ -> ()

let ensure_dir dir =
  let rec mk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let line_of_record r =
  let body = record_to_json r in
  Digest.to_hex (Digest.string body) ^ " " ^ body ^ "\n"

let parse_line line =
  (* <32 hex chars> <space> <json> *)
  let n = String.length line in
  if n < 34 || line.[32] <> ' ' then Stdlib.Error "malformed line"
  else
    let sum = String.sub line 0 32 in
    let body = String.sub line 33 (n - 33) in
    if not (String.equal sum (Digest.to_hex (Digest.string body))) then
      Stdlib.Error "checksum mismatch"
    else record_of_json body

(* {2 Compaction}

   Rewrites the journal to just the live truth: for every open job, its
   accepted record, its last started record (a running child of {e this}
   daemon, meaningless after recovery — the caller clears it first there)
   and its undelivered result.  Closed jobs vanish entirely. *)

let live_records t =
  Hashtbl.fold (fun job s acc -> (job, s) :: acc) t.jobs []
  |> List.filter (fun (_, s) -> not s.js_closed)
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.concat_map (fun (job, s) ->
         List.concat
           [
             (match s.js_submit with Some a -> [ Accepted a ] | None -> []);
             (match s.js_started with
             | Some (pid, token) -> [ Started { job; pid; token } ]
             | None -> []);
             (match s.js_result with Some f -> [ Finished f ] | None -> []);
           ])

let compact t =
  let records = live_records t in
  let tmp = t.path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let bytes = ref 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with _ -> ())
    (fun () ->
      let header = magic ^ "\n" in
      write_all fd header;
      bytes := String.length header;
      List.iter
        (fun r ->
          let line = line_of_record r in
          write_all fd line;
          bytes := !bytes + String.length line)
        records;
      Unix.fsync fd);
  Sys.rename tmp t.path;
  fsync_dir t.path;
  (try Unix.close t.fd with _ -> ());
  t.fd <- Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
  t.bytes <- !bytes;
  t.records <- List.length records;
  t.dead <- 0;
  t.compactions <- t.compactions + 1;
  (* Rebuild line accounting and forget closed jobs. *)
  Hashtbl.iter (fun _ s -> s.js_lines <- 0) t.jobs;
  let closed =
    Hashtbl.fold (fun job s acc -> if s.js_closed then job :: acc else acc) t.jobs []
  in
  List.iter (Hashtbl.remove t.jobs) closed;
  List.iter (fun r -> (jstate t (job_of r)).js_lines <- (jstate t (job_of r)).js_lines + 1) records

(* Compact when at least half the lines are dead and the waste is worth a
   rewrite.  Called opportunistically (after acks); cheap when it says no. *)
let maybe_compact t =
  if t.dead >= 64 && t.dead * 2 >= t.records then begin
    compact t;
    true
  end
  else false

let append ?(sync = false) t r =
  let line = line_of_record r in
  write_all t.fd line;
  t.bytes <- t.bytes + String.length line;
  t.records <- t.records + 1;
  apply t r;
  if sync then Unix.fsync t.fd

let sync t = Unix.fsync t.fd

let close t = try Unix.close t.fd with _ -> ()

let records t = t.records
let bytes t = t.bytes
let compactions t = t.compactions
let path t = t.path

(* {2 Open + replay} *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let open_ path =
  ensure_dir (Filename.dirname path);
  let content = if Sys.file_exists path then Some (read_file path) else None in
  let t =
    {
      path;
      fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644;
      bytes = 0;
      records = 0;
      dead = 0;
      compactions = 0;
      jobs = Hashtbl.create 64;
    }
  in
  let replayed = ref 0 and corrupt = ref 0 in
  (match content with
   | None -> ()
   | Some content ->
     match String.split_on_char '\n' content with
     | header :: lines when String.equal header magic ->
       List.iter
         (fun line ->
           if line <> "" then
             match parse_line line with
             | Ok r ->
               t.records <- t.records + 1;
               incr replayed;
               apply t r
             | Stdlib.Error _ -> incr corrupt)
         lines
     | lines ->
       (* Wrong or missing header: nothing in this file can be trusted to
          be ours; count it all corrupt and start fresh. *)
       List.iter (fun l -> if l <> "" then incr corrupt) lines);
  let open_jobs =
    Hashtbl.fold (fun job s acc -> if s.js_closed then acc else (job, s) :: acc) t.jobs []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let pending =
    List.filter_map
      (fun (_, s) ->
        match (s.js_submit, s.js_result) with Some a, None -> Some a | _ -> None)
      open_jobs
  in
  let orphans =
    List.filter_map
      (fun (job, s) ->
        match (s.js_started, s.js_result) with
        | Some (pid, token), None -> Some (job, pid, token)
        | _ -> None)
      open_jobs
  in
  let undelivered =
    List.filter_map (fun (_, s) -> s.js_result) open_jobs
    |> List.sort (fun a b -> compare a.f_job b.f_job)
  in
  let next_job = 1 + Hashtbl.fold (fun job _ acc -> max job acc) t.jobs 0 in
  (* The previous incarnation's workers are dead (or about to be reaped by
     the caller): a [started] record must not survive into the fresh file,
     or the *next* recovery would try to reap a long-recycled pid. *)
  Hashtbl.iter (fun _ s -> s.js_started <- None) t.jobs;
  (* Compaction rewrites the (possibly corrupt-tailed) file into a clean
     one and opens the append fd as a side effect. *)
  compact t;
  t.compactions <- 0;
  ( t,
    {
      pending;
      orphans;
      undelivered;
      next_job;
      replayed = !replayed;
      corrupt = !corrupt;
    } )
