(** Write-ahead job journal: the daemon's crash-safety spine.

    One append-only file of checksummed records.  Line 1 is the header
    [EMMVER-JOURNAL 1]; every further line is
    [<md5-hex-of-json> <canonical json>], so each record is independently
    verifiable — a torn tail, a flipped bit or a stray partial line is
    skipped at replay without poisoning its neighbours.  The record
    alphabet follows a job's life: [accepted] (the durable promise, fsync'd
    {e before} the wire [accepted] reply), [started] (worker pid + process
    token, for orphan reaping after a hard daemon death), [result] (fsync'd
    {e before} the result is pushed or retained), and [acked]/[cancelled]
    (the job is closed, its lines are garbage).  Compaction rewrites the
    file to just the open jobs with the vcache store discipline: tmp file,
    fsync, atomic [rename], directory fsync.

    Replay is idempotent: duplicated records collapse to the same job
    state, and {!open_} itself compacts, so a journal that crashed during
    compaction or grew a corrupt tail is clean again after one open. *)

type submit = {
  a_job : int;  (** daemon-assigned job id, reused verbatim at recovery *)
  a_tenant : string;  (** the [hello] client name the job belongs to *)
  a_req : string;  (** the client's request id (echoed in results) *)
  a_design : string;
  a_property : string;
  a_method : string;
  a_max_depth : int option;
  a_timeout_s : float option;
  a_cache : bool option;
}
(** Everything needed to re-create the job after a restart. *)

type result = {
  f_job : int;
  f_tenant : string;
  f_req : string;
  f_property : string;
  f_method : string;
  f_verdict : string;
  f_depth : int option;
  f_induction : bool option;
  f_genuine : bool option;
  f_reason : string option;
  f_time_s : float;
  f_cache : string;
  f_certificate : string;
}
(** A completed result, field-for-field what the wire [result] line
    carries, plus the owning tenant. *)

type record =
  | Accepted of submit
  | Started of { job : int; pid : int; token : string }
      (** [token] is {!Parallel.process_token} of the worker, recorded so
          a restarted daemon can SIGKILL the orphan without trusting a
          possibly-recycled pid *)
  | Finished of result
  | Acked of { job : int }  (** the client confirmed delivery *)
  | Cancelled of { job : int }  (** the job will never run (abandoned) *)

type t
(** An open journal: an append fd plus live per-job state (for recovery
    projection and dead-line accounting). *)

type recovery = {
  pending : submit list;  (** accepted, no result yet — re-enqueue these *)
  orphans : (int * int * string) list;
      (** [(job, pid, token)] for pending jobs that were mid-run: feed to
          {!Parallel.reap_orphan} before re-running them *)
  undelivered : result list;  (** completed but never acked — retain these *)
  next_job : int;  (** 1 + highest job id ever journalled *)
  replayed : int;  (** valid records read back *)
  corrupt : int;  (** lines skipped (bad checksum, torn tail, bad JSON) *)
}
(** What a fresh daemon must do about the previous incarnation. *)

val open_ : string -> t * recovery
(** Open (creating the file and its directory if needed), replay, and
    compact.  The returned journal is clean: corrupt lines and closed jobs
    are gone from disk, [started] records are cleared (their workers belong
    to the dead incarnation — reap via [recovery.orphans], then re-run).
    Raises [Unix.Unix_error] if the path cannot be created or written. *)

val append : ?sync:bool -> t -> record -> unit
(** Append one record ([sync] defaults to [false]: buffered in the OS, not
    yet durable).  Pass [~sync:true] — or call {!sync} after a batch —
    before making the recorded fact externally visible. *)

val sync : t -> unit
(** [fsync] the journal fd: everything appended so far is durable. *)

val maybe_compact : t -> bool
(** Compact when at least half the journal lines (and at least 64) belong
    to closed jobs.  Returns whether it rewrote the file. *)

val compact : t -> unit
(** Unconditionally rewrite the journal to just the open jobs (tmp +
    fsync + atomic rename + directory fsync). *)

val close : t -> unit

val records : t -> int
(** Record lines in the current file (post-compaction count). *)

val bytes : t -> int
(** Size of the current file in bytes. *)

val compactions : t -> int
(** Compactions performed since {!open_} returned. *)

val path : t -> string

(**/**)

(* Exposed for tests: the exact byte form of one journal line. *)
val line_of_record : record -> string
val record_to_json : record -> string
