(** Verification-as-a-service: the [emmver serve] daemon and its client.

    One long-running process amortizes everything the platform built for a
    single CLI invocation across many callers: the content-addressed result
    cache ({!Vcache}) stays warm, the fork worker pool ({!Parallel})
    absorbs crashes and deadline kills, and {!Obs} counters become a live
    metrics endpoint.  The daemon listens on a {e Unix-domain socket} and
    speaks a newline-delimited JSON {e line protocol} — one request or
    reply per line, no framing beyond ['\n'], no dependencies beyond
    [unix].

    Scheduling model:

    - a {b bounded job queue} with explicit backpressure: when the queue is
      full a [submit] gets an immediate [busy] reply — the daemon never
      buffers without bound;
    - {b per-client fairness}: queued jobs are organized per client id and
      dispatched round-robin across clients, so a flooding tenant cannot
      starve the others;
    - {b per-job budgets} from {!Policy.budgets}: the server clamps every
      submission's depth/timeout to its configured ceilings and enforces
      the wall budget with a SIGKILL deadline on the worker;
    - {b crash containment}: each job runs in a forked worker
      ({!Parallel.Async}); a crashing or overrunning job reports an
      [inconclusive] result for itself and nothing else;
    - {b graceful drain}: on SIGTERM/SIGINT (or a [shutdown] request)
      in-flight jobs finish and deliver their results, queued jobs receive
      [shutdown] replies, then the daemon exits cleanly;
    - {b cache maintenance}: the server loop periodically runs
      {!Vcache.maintain} with configurable size/age watermarks, so the
      store is administered without an operator;
    - {b crash safety} (with [config.journal] set): every accepted job and
      every completed result is written to a checksummed write-ahead
      {!Journal} and fsync'd before the corresponding reply leaves the
      daemon.  A restart replays the journal — undelivered results are
      retained for [resume], unfinished jobs re-enqueue, workers orphaned
      by a hard death are reaped ({!Parallel.reap_orphan}) — so a SIGKILL
      at any instant loses no accepted job.  Results are retained until
      the owning tenant [ack]s them: {e at-least-once} delivery.

    The wire protocol is specified in the {{!page-protocol}protocol
    manual}; operating the daemon (including durability and recovery) is
    covered in the {{!page-operations}operations manual}. *)

val protocol_version : int
(** Version tag carried by [hello] replies; bumped on protocol changes.
    Version 2 added [resume]/[ack], retry hints on [busy]/[shutdown]
    replies and the [durability] metrics object — all v1 forms are
    unchanged, and a v2 client parses v1 replies (missing hints read as
    [0] / absent). *)

(** Write-ahead job journal backing the daemon's crash safety; exposed for
    tests and tooling. *)
module Journal = Journal

val default_socket : unit -> string
(** [$EMMVER_SOCKET], else [/tmp/emmver-<uid>.sock] — shared default of
    [emmver serve] and [emmver client]. *)

val load_design : string -> (Netlist.t, string) result
(** Resolve a design reference the way the CLI does — a registry name (see
    [emmver list]), or a path to an [.emn] / [.aag] file — without
    exiting. *)

(** {1 Wire protocol} *)

module Proto : sig
  (** Message types plus their canonical JSON codec.  Rendering is
      deterministic (fixed field order, fixed number format), so recorded
      transcripts can be checked byte-for-byte — the golden tests in
      [test_serve.ml] do exactly that, and any drift in the codec breaks
      them rather than deployed clients. *)

  type submit = {
    s_id : string;  (** client-chosen request id, echoed in every reply *)
    s_design : string;  (** registry name or [.emn]/[.aag] path *)
    s_property : string option;  (** [None] = every property of the design *)
    s_method : string;  (** engine name; default ["emm"] *)
    s_max_depth : int option;
    s_timeout_s : float option;
    s_cache : bool option;  (** override the server's cache default *)
  }

  type request =
    | Hello of string  (** declare a client (tenant) id for fairness *)
    | Ping
    | Submit of submit
    | Poll of int  (** job id *)
    | Resume of string
        (** take the given tenant identity and stream every retained
            (completed, unacked) result it missed, oldest first *)
    | Ack of int
        (** confirm delivery of a result: the server may forget it *)
    | Metrics
    | Shutdown  (** begin a graceful drain, as SIGTERM does *)

  type result_line = {
    r_job : int;
    r_id : string;
    r_property : string;
    r_method : string;
    r_verdict : string;  (** ["proved"], ["falsified"] or ["inconclusive"] *)
    r_depth : int option;
    r_induction : bool option;
    r_genuine : bool option;
    r_reason : string option;  (** inconclusive explanation, if any *)
    r_time_s : float;
    r_cache : string;  (** ["off"], ["miss"], ["hit"] or ["dedup"] *)
    r_certificate : string;
  }

  type metrics_line = {
    m_uptime_s : float;
    m_queue_depth : int;
    m_running : int;
    m_clients : int;  (** distinct client ids seen since start *)
    m_accepted : int;
    m_completed : int;
    m_failed : int;  (** worker crashed or hit its kill deadline *)
    m_cancelled : int;  (** dropped by client disconnect or drain *)
    m_rejected_busy : int;
    m_rejected_shutdown : int;
    m_protocol_errors : int;
    m_cache_hits : int;
    m_cache_misses : int;
    m_cache_entries : int;  (** current store size, from {!Vcache.stats} *)
    m_cache_bytes : int;
    m_gc_runs : int;
    m_gc_evicted : int;
    m_journal_records : int;  (** journal lines in the current file *)
    m_journal_bytes : int;
    m_compactions : int;  (** journal compactions since startup replay *)
    m_replayed : int;  (** jobs re-enqueued from the journal at startup *)
    m_recovered : int;  (** undelivered results recovered at startup *)
    m_orphans_killed : int;  (** dead incarnation's workers reaped *)
    m_redelivered : int;  (** result lines re-sent via [resume] *)
    m_acked : int;  (** retained results released by [ack] *)
    m_retained : int;  (** results currently awaiting an [ack] *)
    m_methods : (string * int * float) list;
        (** per-method [(name, jobs, wall_s)] aggregates, sorted by name *)
  }

  type reply =
    | Hello_ok of { server : string; version : int }
    | Pong
    | Accepted of { id : string; jobs : (int * string) list; queue_depth : int }
        (** jobs as [(job id, property)]; results stream back later *)
    | Busy of {
        id : string;
        queue_depth : int;
        max_queue : int;
        retry_after_s : float;
      }
        (** queue full — nothing was enqueued; resubmit after roughly
            [retry_after_s] seconds ([0.] when talking to a v1 server) *)
    | Shutdown_reply of {
        id : string;
        job : int option;
        retry_after_s : float option;
      }
        (** the daemon is draining: with [job = None] the submission was
            refused, with [Some j] a previously queued job was dropped (a
            journalled daemon's successor will still run it); retry against
            the successor after [retry_after_s] *)
    | Error of { id : string option; message : string }
    | Result of result_line
    | Status of { job : int; state : string }
        (** [state]: ["queued"], ["running"], ["done"] or ["unknown"] *)
    | Resumed of { client : string; results : int; pending : int }
        (** [resume] header: [results] retained result lines follow
            immediately; [pending] jobs are still queued or running *)
    | Acked of { job : int }  (** [ack] acknowledgment (idempotent) *)
    | Metrics_reply of metrics_line
    | Draining  (** acknowledgment of a [shutdown] request *)

  val request_to_string : request -> string
  (** One line of JSON, without the trailing newline. *)

  val request_of_string : string -> (request, string) result
  val reply_to_string : reply -> string
  val reply_of_string : string -> (reply, string) result
end

(** {1 The daemon} *)

module Server : sig
  type config = {
    socket : string;
    workers : int;  (** concurrent forked jobs *)
    max_queue : int;  (** queued-job bound; beyond it submissions get [busy] *)
    cache_dir : string option;  (** [None] disables the result cache *)
    gc_policy : Vcache.gc_policy;
    gc_interval_s : float;  (** seconds between {!Vcache.maintain} runs *)
    budgets : Policy.budgets;
        (** per-job ceilings: submissions are clamped to [max_depth] /
            [wall_s], and [conflicts] / [learnt_mb] are forced onto every
            job's options *)
    kill_grace_s : float;
        (** slack added to a job's wall budget before the SIGKILL deadline
            fires, so the engine's own timeout gets to return a clean
            [Inconclusive] first *)
    quiet : bool;  (** suppress the per-event log lines on stdout *)
    journal : string option;
        (** write-ahead job journal path; [None] (the default) disables
            durability — a restart forgets the queue and disconnects
            cancel, exactly the v1 behavior *)
    runner : (Proto.submit -> property:string -> options:Emmver.options ->
             Emmver.outcome) option;
        (** test seam: replaces [Emmver.verify] as the forked job body;
            [None] (the default) runs the real engine *)
  }

  val config :
    ?workers:int ->
    ?max_queue:int ->
    ?cache_dir:string option ->
    ?gc_policy:Vcache.gc_policy ->
    ?gc_interval_s:float ->
    ?budgets:Policy.budgets ->
    ?kill_grace_s:float ->
    ?quiet:bool ->
    ?journal:string ->
    ?runner:(Proto.submit -> property:string -> options:Emmver.options ->
            Emmver.outcome) ->
    socket:string ->
    unit ->
    config
  (** Defaults: [workers = Parallel.default_jobs ()], [max_queue = 64],
      [cache_dir = Some (Vcache.default_dir ())], no watermarks,
      [gc_interval_s = 60.], unlimited budgets, [kill_grace_s = 10.],
      no journal. *)

  val run : config -> unit
  (** Bind the socket and serve until a graceful drain completes.  Installs
      SIGTERM/SIGINT handlers (drain) and ignores SIGPIPE.  Raises
      [Failure] if the socket path is already served by a live daemon;
      a stale socket file left by a dead one is replaced.

      With [config.journal] set, [run] first replays the journal: orphaned
      workers of a dead incarnation are token-checked and SIGKILLed,
      undelivered results go back to the retained set, unfinished jobs
      re-enqueue under their original ids, and the journal is compacted.
      On a graceful exit the journal is compacted again — carried-over
      jobs (e.g. queued jobs bounced by a drain) survive for the next
      incarnation. *)
end

(** {1 The client} *)

(** Capped jittered exponential backoff, for retrying [busy]/draining/
    unreachable daemons without stampeding them. *)
module Backoff : sig
  type t

  val create : ?base_s:float -> ?cap_s:float -> ?attempts:int -> unit -> t
  (** Defaults: [base_s = 0.5], [cap_s = 30.], [attempts = 5].
      [attempts = 0] means never retry ({!next} is immediately [None]). *)

  val next : t -> hint_s:float option -> float option
  (** The next delay to sleep, or [None] when the attempts are exhausted.
      The k-th delay (0-based) is [min cap_s (max base_s hint) * 2^k]
      scaled by a uniform jitter factor in [0.5, 1.0) — pass the server's
      [retry_after_s] as [hint_s] so the schedule respects it. *)

  val attempts_used : t -> int
end

module Client : sig
  type t

  val connect : ?client:string -> ?timeout_s:float -> string -> (t, string) result
  (** Connect to a daemon's socket, bounded by [timeout_s] (default 10 s —
      a listening-but-wedged daemon cannot hang the caller); with
      [client], introduce the given tenant id via [hello] (and check the
      reply) before returning. *)

  val close : t -> unit

  val server_version : t -> int option
  (** The daemon's protocol version from the [hello] exchange; [None] when
      {!connect} was called without [?client]. *)

  val send : t -> Proto.request -> (unit, string) result

  val read_reply : ?timeout_s:float -> t -> (Proto.reply, string) result
  (** Next reply line, in arrival order — [submit] acknowledgments and
      streamed [result] lines come through the same channel.  [Error] on
      timeout, EOF or an unparsable line. *)

  val request : ?timeout_s:float -> t -> Proto.request -> (Proto.reply, string) result
  (** [send] then [read_reply]. *)
end
