(** Verification-as-a-service: the [emmver serve] daemon and its client.

    One long-running process amortizes everything the platform built for a
    single CLI invocation across many callers: the content-addressed result
    cache ({!Vcache}) stays warm, the fork worker pool ({!Parallel})
    absorbs crashes and deadline kills, and {!Obs} counters become a live
    metrics endpoint.  The daemon listens on a {e Unix-domain socket} and
    speaks a newline-delimited JSON {e line protocol} — one request or
    reply per line, no framing beyond ['\n'], no dependencies beyond
    [unix].

    Scheduling model:

    - a {b bounded job queue} with explicit backpressure: when the queue is
      full a [submit] gets an immediate [busy] reply — the daemon never
      buffers without bound;
    - {b per-client fairness}: queued jobs are organized per client id and
      dispatched round-robin across clients, so a flooding tenant cannot
      starve the others;
    - {b per-job budgets} from {!Policy.budgets}: the server clamps every
      submission's depth/timeout to its configured ceilings and enforces
      the wall budget with a SIGKILL deadline on the worker;
    - {b crash containment}: each job runs in a forked worker
      ({!Parallel.Async}); a crashing or overrunning job reports an
      [inconclusive] result for itself and nothing else;
    - {b graceful drain}: on SIGTERM/SIGINT (or a [shutdown] request)
      in-flight jobs finish and deliver their results, queued jobs receive
      [shutdown] replies, then the daemon exits cleanly;
    - {b cache maintenance}: the server loop periodically runs
      {!Vcache.maintain} with configurable size/age watermarks, so the
      store is administered without an operator.

    The wire protocol is specified in the {{!page-protocol}protocol
    manual}; operating the daemon is covered in the
    {{!page-operations}operations manual}. *)

val protocol_version : int
(** Version tag carried by [hello] replies; bumped on breaking protocol
    changes. *)

val default_socket : unit -> string
(** [$EMMVER_SOCKET], else [/tmp/emmver-<uid>.sock] — shared default of
    [emmver serve] and [emmver client]. *)

val load_design : string -> (Netlist.t, string) result
(** Resolve a design reference the way the CLI does — a registry name (see
    [emmver list]), or a path to an [.emn] / [.aag] file — without
    exiting. *)

(** {1 Wire protocol} *)

module Proto : sig
  (** Message types plus their canonical JSON codec.  Rendering is
      deterministic (fixed field order, fixed number format), so recorded
      transcripts can be checked byte-for-byte — the golden tests in
      [test_serve.ml] do exactly that, and any drift in the codec breaks
      them rather than deployed clients. *)

  type submit = {
    s_id : string;  (** client-chosen request id, echoed in every reply *)
    s_design : string;  (** registry name or [.emn]/[.aag] path *)
    s_property : string option;  (** [None] = every property of the design *)
    s_method : string;  (** engine name; default ["emm"] *)
    s_max_depth : int option;
    s_timeout_s : float option;
    s_cache : bool option;  (** override the server's cache default *)
  }

  type request =
    | Hello of string  (** declare a client (tenant) id for fairness *)
    | Ping
    | Submit of submit
    | Poll of int  (** job id *)
    | Metrics
    | Shutdown  (** begin a graceful drain, as SIGTERM does *)

  type result_line = {
    r_job : int;
    r_id : string;
    r_property : string;
    r_method : string;
    r_verdict : string;  (** ["proved"], ["falsified"] or ["inconclusive"] *)
    r_depth : int option;
    r_induction : bool option;
    r_genuine : bool option;
    r_reason : string option;  (** inconclusive explanation, if any *)
    r_time_s : float;
    r_cache : string;  (** ["off"], ["miss"], ["hit"] or ["dedup"] *)
    r_certificate : string;
  }

  type metrics_line = {
    m_uptime_s : float;
    m_queue_depth : int;
    m_running : int;
    m_clients : int;  (** distinct client ids seen since start *)
    m_accepted : int;
    m_completed : int;
    m_failed : int;  (** worker crashed or hit its kill deadline *)
    m_cancelled : int;  (** dropped by client disconnect or drain *)
    m_rejected_busy : int;
    m_rejected_shutdown : int;
    m_protocol_errors : int;
    m_cache_hits : int;
    m_cache_misses : int;
    m_cache_entries : int;  (** current store size, from {!Vcache.stats} *)
    m_cache_bytes : int;
    m_gc_runs : int;
    m_gc_evicted : int;
    m_methods : (string * int * float) list;
        (** per-method [(name, jobs, wall_s)] aggregates, sorted by name *)
  }

  type reply =
    | Hello_ok of { server : string; version : int }
    | Pong
    | Accepted of { id : string; jobs : (int * string) list; queue_depth : int }
        (** jobs as [(job id, property)]; results stream back later *)
    | Busy of { id : string; queue_depth : int; max_queue : int }
        (** queue full — resubmit later; nothing was enqueued *)
    | Shutdown_reply of { id : string; job : int option }
        (** the daemon is draining: with [job = None] the submission was
            refused, with [Some j] a previously queued job was dropped *)
    | Error of { id : string option; message : string }
    | Result of result_line
    | Status of { job : int; state : string }
        (** [state]: ["queued"], ["running"], ["done"] or ["unknown"] *)
    | Metrics_reply of metrics_line
    | Draining  (** acknowledgment of a [shutdown] request *)

  val request_to_string : request -> string
  (** One line of JSON, without the trailing newline. *)

  val request_of_string : string -> (request, string) result
  val reply_to_string : reply -> string
  val reply_of_string : string -> (reply, string) result
end

(** {1 The daemon} *)

module Server : sig
  type config = {
    socket : string;
    workers : int;  (** concurrent forked jobs *)
    max_queue : int;  (** queued-job bound; beyond it submissions get [busy] *)
    cache_dir : string option;  (** [None] disables the result cache *)
    gc_policy : Vcache.gc_policy;
    gc_interval_s : float;  (** seconds between {!Vcache.maintain} runs *)
    budgets : Policy.budgets;
        (** per-job ceilings: submissions are clamped to [max_depth] /
            [wall_s], and [conflicts] / [learnt_mb] are forced onto every
            job's options *)
    kill_grace_s : float;
        (** slack added to a job's wall budget before the SIGKILL deadline
            fires, so the engine's own timeout gets to return a clean
            [Inconclusive] first *)
    quiet : bool;  (** suppress the per-event log lines on stdout *)
    runner : (Proto.submit -> property:string -> options:Emmver.options ->
             Emmver.outcome) option;
        (** test seam: replaces [Emmver.verify] as the forked job body;
            [None] (the default) runs the real engine *)
  }

  val config :
    ?workers:int ->
    ?max_queue:int ->
    ?cache_dir:string option ->
    ?gc_policy:Vcache.gc_policy ->
    ?gc_interval_s:float ->
    ?budgets:Policy.budgets ->
    ?kill_grace_s:float ->
    ?quiet:bool ->
    ?runner:(Proto.submit -> property:string -> options:Emmver.options ->
            Emmver.outcome) ->
    socket:string ->
    unit ->
    config
  (** Defaults: [workers = Parallel.default_jobs ()], [max_queue = 64],
      [cache_dir = Some (Vcache.default_dir ())], no watermarks,
      [gc_interval_s = 60.], unlimited budgets, [kill_grace_s = 10.]. *)

  val run : config -> unit
  (** Bind the socket and serve until a graceful drain completes.  Installs
      SIGTERM/SIGINT handlers (drain) and ignores SIGPIPE.  Raises
      [Failure] if the socket path is already served by a live daemon;
      a stale socket file left by a dead one is replaced. *)
end

(** {1 The client} *)

module Client : sig
  type t

  val connect : ?client:string -> string -> (t, string) result
  (** Connect to a daemon's socket; with [client], introduce the given
      tenant id via [hello] (and check the reply) before returning. *)

  val close : t -> unit

  val send : t -> Proto.request -> (unit, string) result

  val read_reply : ?timeout_s:float -> t -> (Proto.reply, string) result
  (** Next reply line, in arrival order — [submit] acknowledgments and
      streamed [result] lines come through the same channel.  [Error] on
      timeout, EOF or an unparsable line. *)

  val request : ?timeout_s:float -> t -> Proto.request -> (Proto.reply, string) result
  (** [send] then [read_reply]. *)
end
