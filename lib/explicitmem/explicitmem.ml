let expanded_latch_name mem addr bit = Printf.sprintf "%s<%d>[%d]" mem addr bit

let init_bit init addr bit =
  match init with
  | Netlist.Zeros -> Some false
  | Netlist.Arbitrary -> None
  | Netlist.Words ws ->
    let w = if addr < Array.length ws then ws.(addr) else 0 in
    Some ((w lsr bit) land 1 = 1)

let expand old_net =
  let net = Netlist.create () in
  let map : (int, Netlist.signal) Hashtbl.t = Hashtbl.create 1024 in
  (* Latch arrays per memory: mem_id -> word address -> bit -> latch signal *)
  let mem_latches : (int, Netlist.signal array array) Hashtbl.t = Hashtbl.create 4 in
  let mems = Netlist.memories old_net in
  (* State elements first, so combinational copying can reference them. *)
  List.iter
    (fun l ->
      let id = Netlist.node_of l in
      let nl =
        Netlist.latch net ~init:(Netlist.latch_init old_net l)
          (Netlist.latch_name old_net l)
      in
      Hashtbl.replace map id nl)
    (Netlist.latches old_net);
  List.iter
    (fun m ->
      let size = 1 lsl Netlist.memory_addr_width m in
      let dw = Netlist.memory_data_width m in
      let name = Netlist.memory_name m in
      let init = Netlist.memory_init m in
      let words =
        Array.init size (fun a ->
            Array.init dw (fun b ->
                Netlist.latch net ~init:(init_bit init a b)
                  (expanded_latch_name name a b)))
      in
      Hashtbl.replace mem_latches (Netlist.memory_id m) words)
    mems;
  let mem_by_id = Hashtbl.create 4 in
  List.iter (fun m -> Hashtbl.replace mem_by_id (Netlist.memory_id m) m) mems;
  (* Memoised read-port data vectors. *)
  let rports : (int * int, Netlist.signal array) Hashtbl.t = Hashtbl.create 8 in
  let rec copy s =
    let id = Netlist.node_of s in
    let pos =
      match Hashtbl.find_opt map id with
      | Some ns -> ns
      | None ->
        let ns =
          match Netlist.node old_net id with
          | Netlist.Const_false -> Netlist.false_
          | Netlist.Input name -> Netlist.input net name
          | Netlist.Latch _ -> assert false (* pre-mapped *)
          | Netlist.And (a, b) -> Netlist.and_ net (copy a) (copy b)
          | Netlist.Mem_out { mem; port; bit } -> (read_data mem port).(bit)
        in
        Hashtbl.replace map id ns;
        ns
    in
    if Netlist.is_complement s then Netlist.not_ pos else pos
  (* rd = enable ? mem[addr] : 0, as a mux tree over the address bits. *)
  and read_data mem port =
    match Hashtbl.find_opt rports (mem, port) with
    | Some v -> v
    | None ->
      let m = Hashtbl.find mem_by_id mem in
      let words = Hashtbl.find mem_latches mem in
      let addr_bus, enable, _ = Netlist.read_port m port in
      let addr = Array.map copy addr_bus in
      let en = copy enable in
      let dw = Netlist.memory_data_width m in
      (* Select among words.(lo .. lo + 2^level - 1) using address bits
         [0 .. level-1]. *)
      let rec select level lo bit =
        if level = 0 then words.(lo).(bit)
        else
          let half = 1 lsl (level - 1) in
          Netlist.mux net addr.(level - 1)
            (select (level - 1) (lo + half) bit)
            (select (level - 1) lo bit)
      in
      let aw = Netlist.memory_addr_width m in
      let v = Array.init dw (fun bit -> Netlist.and_ net en (select aw 0 bit)) in
      Hashtbl.replace rports (mem, port) v;
      v
  in
  (* Next-state functions of the design's own latches. *)
  List.iter
    (fun l ->
      let id = Netlist.node_of l in
      let nl = Hashtbl.find map id in
      Netlist.set_next net nl (copy (Netlist.latch_next old_net l)))
    (Netlist.latches old_net);
  (* Write logic: each memory bit keeps its value unless some write port hits
     its address this cycle (no data races assumed, as in the paper). *)
  List.iter
    (fun m ->
      let words = Hashtbl.find mem_latches (Netlist.memory_id m) in
      let aw = Netlist.memory_addr_width m in
      let dw = Netlist.memory_data_width m in
      let ports =
        List.init (Netlist.num_write_ports m) (fun w ->
            let addr_bus, data_bus, enable = Netlist.write_port m w in
            (Array.map copy addr_bus, Array.map copy data_bus, copy enable))
      in
      for a = 0 to (1 lsl aw) - 1 do
        (* hit_w = enable_w && (addr_w = a) *)
        let hits =
          List.map
            (fun (addr, data, en) ->
              let addr_eq = ref Netlist.true_ in
              for i = 0 to aw - 1 do
                let bit_set = (a lsr i) land 1 = 1 in
                let b = if bit_set then addr.(i) else Netlist.not_ addr.(i) in
                addr_eq := Netlist.and_ net !addr_eq b
              done;
              (Netlist.and_ net en !addr_eq, data))
            ports
        in
        for b = 0 to dw - 1 do
          (* Later ports wrap earlier ones, so on a same-address collision
             the last-listed port wins — matching the simulator, which
             applies the sampled writes in port order. *)
          let next =
            List.fold_left
              (fun acc (hit, data) -> Netlist.mux net hit data.(b) acc)
              words.(a).(b) hits
          in
          Netlist.set_next net words.(a).(b) next
        done
      done)
    mems;
  List.iter (fun (name, s) -> Netlist.add_property net name (copy s))
    (Netlist.properties old_net);
  List.iter (fun (name, s) -> Netlist.add_output net name (copy s))
    (Netlist.outputs old_net);
  net
