type abstraction = {
  kept_latches : Netlist.signal list;
  free_latches : Netlist.signal list;
  modeled_memories : Netlist.memory list;
  abstracted_memories : Netlist.memory list;
  discovery_depth : int;
  discovery_time : float;
}

let memory_control_latches net mem =
  Netlist.support_latches net (Netlist.memory_interface_signals mem)

let is_memory_modeled net reasons mem =
  let control = memory_control_latches net mem in
  List.exists (fun l -> List.mem l reasons) control

(* A memory stays modeled when its EMM constraints took part in some
   refutation; for discovery runs without EMM (explicit baseline) fall back
   to the latch-control criterion of §4.3. *)
let abstraction_of_reasons net ~depth ~time ~use_emm ~mem_reasons reasons =
  let kept = List.filter (fun l -> List.mem l reasons) (Netlist.latches net) in
  let free = List.filter (fun l -> not (List.mem l reasons)) (Netlist.latches net) in
  let modeled, abstracted =
    List.partition
      (fun m ->
        if use_emm then List.mem (Netlist.memory_id m) mem_reasons
        else is_memory_modeled net reasons m)
      (Netlist.memories net)
  in
  {
    kept_latches = kept;
    free_latches = free;
    modeled_memories = modeled;
    abstracted_memories = abstracted;
    discovery_depth = depth;
    discovery_time = time;
  }

let discover ?(max_depth = 200) ?(stability = 10) ?deadline ?(use_emm = true) ?within
    net ~property =
  let free_latches =
    match within with
    | Some a ->
      let free = a.free_latches in
      fun l -> List.mem l free
    | None -> fun _ -> false
  in
  let config =
    {
      Bmc.Engine.max_depth;
      deadline;
      proof_checks = false;
      collect_reasons = true;
      stop_on_stable = Some stability;
      free_latches;
      simplify = true;
      certify = false;
      conflict_budget = None;
      learnt_mb_budget = None;
      proof_file = None;
      portfolio = None;
    }
  in
  let t0 = Unix.gettimeofday () in
  let result =
    if use_emm then
      let memories = Option.map (fun a -> a.modeled_memories) within in
      fst (Emm.check ~config ?memories net ~property)
    else Bmc.Engine.check ~config net ~property
  in
  let time = Unix.gettimeofday () -. t0 in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Reasons_stable depth | Bmc.Engine.Bounded_safe depth ->
    let reasons = result.Bmc.Engine.stats.Bmc.Engine.latch_reasons in
    let mem_reasons = result.Bmc.Engine.stats.Bmc.Engine.memory_reasons in
    Either.Left (abstraction_of_reasons net ~depth ~time ~use_emm ~mem_reasons reasons)
  | ( Bmc.Engine.Counterexample _ | Bmc.Engine.Proof _ | Bmc.Engine.Timed_out _
    | Bmc.Engine.Out_of_budget _ ) as v ->
    Either.Right v

let iterate ?(rounds = 3) ?max_depth ?stability ?deadline net ~property =
  let rec go round within =
    match discover ?max_depth ?stability ?deadline ?within net ~property with
    | Either.Right _ as concluded -> (
      match within with
      | Some a -> Either.Left a (* keep the last stable abstraction *)
      | None -> concluded)
    | Either.Left a ->
      let shrunk =
        match within with
        | Some prev -> List.length a.kept_latches < List.length prev.kept_latches
        | None -> true
      in
      if round >= rounds || not shrunk then Either.Left a
      else go (round + 1) (Some a)
  in
  go 1 None

let check_with_abstraction ?config net abstraction ~property =
  let config = Option.value config ~default:Bmc.Engine.default_config in
  let free = abstraction.free_latches in
  let config =
    { config with Bmc.Engine.free_latches = (fun l -> List.mem l free) }
  in
  Emm.check ~config ~memories:abstraction.modeled_memories net ~property

let pp_abstraction net ppf a =
  Format.fprintf ppf
    "@[<v>abstraction: %d/%d latches kept (stable at depth %d, %.2fs)@,"
    (List.length a.kept_latches)
    (List.length a.kept_latches + List.length a.free_latches)
    a.discovery_depth a.discovery_time;
  Format.fprintf ppf "modeled memories:";
  List.iter (fun m -> Format.fprintf ppf " %s" (Netlist.memory_name m)) a.modeled_memories;
  if a.modeled_memories = [] then Format.fprintf ppf " (none)";
  Format.fprintf ppf "@,abstracted memories:";
  List.iter
    (fun m -> Format.fprintf ppf " %s" (Netlist.memory_name m))
    a.abstracted_memories;
  if a.abstracted_memories = [] then Format.fprintf ppf " (none)";
  ignore net;
  Format.fprintf ppf "@]"
