type result = Sat | Unsat

type clause = {
  cid : int;
  lits : int array; (* watched literals at positions 0 and 1 *)
  learnt : bool;
  mutable activity : float;
  mutable lbd : int; (* glue (distinct decision levels); 0 for originals *)
  mutable removed : bool;
}

(* Bookkeeping needed to rebuild refutations after clause deletion: original
   clauses keep their tag, learnt clauses keep the premises they were
   resolved from.  Premise entries >= 0 are clause ids; a negative entry
   -(v+1) refers to the root-level derivation of variable [v] (root
   assignments are permanent, so their reason chains can be re-traversed at
   core-extraction time). *)
type cid_info =
  | Original of int
  | Learnt_from of int array
  | Imported  (* clause imported from a portfolio peer; no local derivation *)

(* One line of a DRAT proof: clause additions (learnt clauses, in derivation
   order) interleaved with the deletions performed by DB reduction. *)
type proof_step = Padd of Lit.t list | Pdel of Lit.t list

let dummy_clause =
  { cid = -1; lits = [||]; learnt = false; activity = 0.; lbd = 0; removed = true }

(* One watch-list entry.  [blocker] is a literal of the clause other than the
   watched one: when it is already true the clause is satisfied and the
   clause cells are never touched, which is where most propagation cache
   misses used to come from.  For binary clauses the blocker is exactly the
   other literal, so propagation resolves them entirely from the watcher. *)
type watcher = { mutable blocker : int; wcl : clause }

let dummy_watcher = { blocker = 0; wcl = dummy_clause }

(* Cumulative search statistics, cheap enough to keep always-on. *)
type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;  (* total clauses ever learnt *)
  deleted_clauses : int;  (* learnt clauses dropped by DB reduction *)
  db_reductions : int;
  minimised_lits : int;  (* literals removed by conflict-clause minimisation *)
  avg_lbd : float;  (* mean LBD over all learnt clauses *)
  solve_time_s : float;  (* wall time spent inside [solve] *)
  shared_out : int;  (* learnt clauses accepted by the share callback *)
  shared_in : int;  (* peer clauses imported via [import_clauses] *)
}

let empty_stats =
  {
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_clauses = 0;
    deleted_clauses = 0;
    db_reductions = 0;
    minimised_lits = 0;
    avg_lbd = 0.0;
    solve_time_s = 0.0;
    shared_out = 0;
    shared_in = 0;
  }

type t = {
  mutable nvars : int;
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  mutable watches : watcher Vec.t array; (* indexed by literal *)
  mutable assign : int array; (* var -> -1 undef / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable phase : bool array;
  mutable seen : int array; (* 0 unseen / 1 in-clause / 2 removable / 3 failed *)
  mutable level_stamp : int array; (* level -> stamp, for LBD counting *)
  mutable stamp : int;
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  activity : float array ref;
  mutable var_inc : float;
  mutable cla_inc : float;
  order : Order_heap.t;
  cid_info : (int, cid_info) Hashtbl.t;
  mutable next_cid : int;
  mutable ok : bool;
  mutable last_core : int list;
  mutable last_failed : int list;
  mutable model : int array;
  mutable assumptions : int array;
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_total : int;
  mutable lbd_sum : int;
  mutable deleted_total : int;
  mutable db_reductions : int;
  mutable minimised_lits : int;
  mutable solve_time : float;
  mutable max_learnts : float;
  mutable deadline : float option;
  mutable proof_steps : proof_step list; (* DRAT log, newest first *)
  mutable proof_logging : bool;
  mutable conflict_budget : int option; (* max conflicts per [solve] call *)
  mutable conflict_base : int; (* [t.conflicts] at [solve] entry *)
  mutable learnt_budget_mb : float option; (* learnt-DB memory ceiling *)
  mutable learnt_words : int; (* words held by live learnt clauses *)
  (* Portfolio hooks — all inert by default; see lib/portfolio. *)
  mutable stop : bool Atomic.t option; (* cooperative cancellation flag *)
  mutable share_callback : (lbd:int -> Lit.t list -> bool) option;
  mutable import_source : (unit -> Lit.t list list) option;
  mutable clause_listener : (int -> Lit.t list -> unit) option;
  mutable shared_out : int;
  mutable shared_in : int;
  mutable core_tainted : bool; (* last refutation traversed an imported clause *)
  (* Diversification knobs for portfolio replicas. *)
  mutable var_decay_inv : float;
  mutable restart_base : float;
  mutable phase_default : bool;
  mutable rnd_state : int;
  mutable rnd_phase_freq : float;
}

exception Timeout

exception Budget_exceeded of string

exception Stopped

let var_decay = 1.0 /. 0.95
let cla_decay = 1.0 /. 0.999
let var_marker v = -v - 1

let create () =
  let activity = ref (Array.make 64 0.0) in
  {
    nvars = 0;
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    watches = Array.init 128 (fun _ -> Vec.create ~capacity:4 ~dummy:dummy_watcher ());
    assign = Array.make 64 (-1);
    level = Array.make 64 (-1);
    reason = Array.make 64 None;
    phase = Array.make 64 false;
    seen = Array.make 64 0;
    level_stamp = Array.make 65 0;
    stamp = 0;
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    activity;
    var_inc = 1.0;
    cla_inc = 1.0;
    order = Order_heap.create ~activity:(fun v -> !activity.(v));
    cid_info = Hashtbl.create 1024;
    next_cid = 0;
    ok = true;
    last_core = [];
    last_failed = [];
    model = [||];
    assumptions = [||];
    conflicts = 0;
    decisions = 0;
    propagations = 0;
    restarts = 0;
    learnt_total = 0;
    lbd_sum = 0;
    deleted_total = 0;
    db_reductions = 0;
    minimised_lits = 0;
    solve_time = 0.0;
    max_learnts = 0.0;
    deadline = None;
    proof_steps = [];
    proof_logging = false;
    conflict_budget = None;
    conflict_base = 0;
    learnt_budget_mb = None;
    learnt_words = 0;
    stop = None;
    share_callback = None;
    import_source = None;
    clause_listener = None;
    shared_out = 0;
    shared_in = 0;
    core_tainted = false;
    var_decay_inv = var_decay;
    restart_base = 100.0;
    phase_default = false;
    rnd_state = 0;
    rnd_phase_freq = 0.0;
  }

let set_deadline t d = t.deadline <- d
let set_proof_logging t b = t.proof_logging <- b
let set_conflict_budget t b = t.conflict_budget <- b
let set_learnt_budget_mb t b = t.learnt_budget_mb <- b
let set_stop t f = t.stop <- f
let set_share_callback t f = t.share_callback <- f
let set_import_source t f = t.import_source <- f
let set_clause_listener t f = t.clause_listener <- f

let set_var_decay t d =
  if d <= 0.0 || d > 1.0 then invalid_arg "Solver.set_var_decay";
  t.var_decay_inv <- 1.0 /. d

let set_restart_base t b =
  if b < 1 then invalid_arg "Solver.set_restart_base";
  t.restart_base <- float_of_int b

let set_default_phase t p =
  t.phase_default <- p;
  Array.fill t.phase 0 (Array.length t.phase) p

let set_random_seed t s = t.rnd_state <- s land max_int
let set_random_phase_freq t f = t.rnd_phase_freq <- f
let deadline t = t.deadline
let conflict_budget t = t.conflict_budget
let learnt_budget_mb t = t.learnt_budget_mb
let proof_logging_enabled t = t.proof_logging
let core_complete t = not t.core_tainted
let raw_model t = Array.copy t.model
let adopt_model t m = t.model <- Array.copy m
let proof t = List.rev t.proof_steps

let proof_log t =
  List.rev
    (List.filter_map (function Padd c -> Some c | Pdel _ -> None) t.proof_steps)

let num_vars t = t.nvars
let num_clauses t = Vec.size t.clauses
let num_learnts t = Vec.size t.learnts
let num_conflicts t = t.conflicts
let num_decisions t = t.decisions
let num_propagations t = t.propagations
let okay t = t.ok

let stats t =
  {
    conflicts = t.conflicts;
    decisions = t.decisions;
    propagations = t.propagations;
    restarts = t.restarts;
    learnt_clauses = t.learnt_total;
    deleted_clauses = t.deleted_total;
    db_reductions = t.db_reductions;
    minimised_lits = t.minimised_lits;
    avg_lbd =
      (if t.learnt_total = 0 then 0.0
       else float_of_int t.lbd_sum /. float_of_int t.learnt_total);
    solve_time_s = t.solve_time;
    shared_out = t.shared_out;
    shared_in = t.shared_in;
  }

let grow_arrays t n =
  let old = Array.length t.assign in
  if n > old then begin
    let cap = max (2 * old) n in
    let grow_int a def =
      let b = Array.make cap def in
      Array.blit a 0 b 0 old;
      b
    in
    t.assign <- grow_int t.assign (-1);
    t.level <- grow_int t.level (-1);
    t.seen <- grow_int t.seen 0;
    (let b = Array.make (cap + 1) 0 in
     Array.blit t.level_stamp 0 b 0 (Array.length t.level_stamp);
     t.level_stamp <- b);
    (let b = Array.make cap None in
     Array.blit t.reason 0 b 0 old;
     t.reason <- b);
    (let b = Array.make cap t.phase_default in
     Array.blit t.phase 0 b 0 old;
     t.phase <- b);
    let acts = Array.make cap 0.0 in
    Array.blit !(t.activity) 0 acts 0 old;
    t.activity := acts
  end;
  let oldw = Array.length t.watches in
  if 2 * n > oldw then begin
    let cap = max (2 * oldw) (2 * n) in
    let w = Array.init cap (fun i ->
        if i < oldw then t.watches.(i)
        else Vec.create ~capacity:4 ~dummy:dummy_watcher ())
    in
    t.watches <- w
  end

let new_var t =
  let v = t.nvars in
  t.nvars <- v + 1;
  grow_arrays t t.nvars;
  Order_heap.insert t.order v;
  v

let ensure_vars t n =
  while t.nvars < n do
    ignore (new_var t)
  done

(* -1 undef / 0 false / 1 true *)
let lit_value t l =
  let v = t.assign.(Lit.var l) in
  if v < 0 then -1 else if Lit.sign l then v else 1 - v

let decision_level t = Vec.size t.trail_lim

let bump_var t v =
  let a = !(t.activity) in
  a.(v) <- a.(v) +. t.var_inc;
  if a.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      a.(i) <- a.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Order_heap.update t.order v

let bump_clause t (c : clause) =
  c.activity <- c.activity +. t.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun (c : clause) -> c.activity <- c.activity *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

(* LBD (literal block distance) of a set of literals: the number of distinct
   non-root decision levels, counted with a stamped per-level scratch array
   (Audemard & Simon's "glue").  Only meaningful while the literals are
   assigned. *)
let lits_lbd t lits =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let n = ref 0 in
  List.iter
    (fun l ->
      let lv = t.level.(Lit.var l) in
      if lv > 0 && t.level_stamp.(lv) <> stamp then begin
        t.level_stamp.(lv) <- stamp;
        incr n
      end)
    lits;
  !n

let clause_lbd t (c : clause) =
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = t.level.(Lit.var l) in
      if lv > 0 && t.level_stamp.(lv) <> stamp then begin
        t.level_stamp.(lv) <- stamp;
        incr n
      end)
    c.lits;
  !n

let enqueue t l reason =
  let v = Lit.var l in
  t.assign.(v) <- (if Lit.sign l then 1 else 0);
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  Vec.push t.trail l

let new_decision_level t = Vec.push t.trail_lim (Vec.size t.trail)

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.phase.(v) <- Lit.sign l;
      t.assign.(v) <- -1;
      t.reason.(v) <- None;
      t.level.(v) <- -1;
      Order_heap.insert t.order v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* Two-watched-literal Boolean constraint propagation with blocking literals
   and inlined binary-clause handling.  Returns the conflicting clause, if
   any. *)
let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.propagations <- t.propagations + 1;
    let false_lit = Lit.negate p in
    let ws = t.watches.(false_lit) in
    let n = Vec.size ws in
    let j = ref 0 in
    let i = ref 0 in
    while !i < n do
      let w = Vec.unsafe_get ws !i in
      incr i;
      let c = w.wcl in
      if not c.removed then begin
        if lit_value t w.blocker = 1 then begin
          (* Blocker satisfies the clause; the clause itself stays cold. *)
          Vec.unsafe_set ws !j w;
          incr j
        end
        else if Array.length c.lits = 2 then begin
          (* Binary: the blocker is the other literal, so the watcher alone
             decides between unit propagation and conflict. *)
          Vec.unsafe_set ws !j w;
          incr j;
          let other = w.blocker in
          (* Keep the reason invariant: position 0 holds the implied
             literal. *)
          if c.lits.(0) <> other then begin
            c.lits.(0) <- other;
            c.lits.(1) <- false_lit
          end;
          if lit_value t other = 0 then begin
            confl := Some c;
            t.qhead <- Vec.size t.trail;
            while !i < n do
              Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
              incr i;
              incr j
            done
          end
          else enqueue t other (Some c)
        end
        else begin
          (* Normalise: the falsified watch sits at position 1. *)
          if c.lits.(0) = false_lit then begin
            c.lits.(0) <- c.lits.(1);
            c.lits.(1) <- false_lit
          end;
          let first = c.lits.(0) in
          if first <> w.blocker && lit_value t first = 1 then begin
            (* Clause already satisfied; refresh the blocker in place. *)
            w.blocker <- first;
            Vec.unsafe_set ws !j w;
            incr j
          end
          else begin
            (* Look for a replacement watch. *)
            let len = Array.length c.lits in
            let k = ref 2 in
            while !k < len && lit_value t c.lits.(!k) = 0 do
              incr k
            done;
            if !k < len then begin
              c.lits.(1) <- c.lits.(!k);
              c.lits.(!k) <- false_lit;
              Vec.push t.watches.(c.lits.(1)) { blocker = first; wcl = c }
            end
            else begin
              (* Unit or conflicting. *)
              w.blocker <- first;
              Vec.unsafe_set ws !j w;
              incr j;
              if lit_value t first = 0 then begin
                confl := Some c;
                t.qhead <- Vec.size t.trail;
                (* Keep the remaining watches. *)
                while !i < n do
                  Vec.unsafe_set ws !j (Vec.unsafe_get ws !i);
                  incr i;
                  incr j
                done
              end
              else enqueue t first (Some c)
            end
          end
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* DFS over the resolution bookkeeping.  Seeds follow the premise encoding:
   entries >= 0 are clause ids, negative entries refer to the reason closure
   of a variable's current assignment.  Returns the original clause ids
   reached, plus the assumption literals (reason-less assignments above the
   root level) encountered on the way. *)
let collect_refutation t seeds =
  t.core_tainted <- false;
  let visited_cid = Hashtbl.create 251 in
  let visited_var = Hashtbl.create 251 in
  let originals = ref [] in
  let failed = ref [] in
  let stack = ref seeds in
  let push s = stack := s :: !stack in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | s :: rest ->
      stack := rest;
      if s >= 0 then begin
        if not (Hashtbl.mem visited_cid s) then begin
          Hashtbl.add visited_cid s ();
          match Hashtbl.find_opt t.cid_info s with
          | Some (Original _) | None -> originals := s :: !originals
          | Some Imported ->
            (* No local derivation: the core under-approximates the original
               clauses actually needed.  Flag it so consumers that require an
               exact core ({!core_complete}) can degrade conservatively. *)
            t.core_tainted <- true
          | Some (Learnt_from premises) -> Array.iter push premises
        end
      end
      else begin
        let v = -s - 1 in
        if not (Hashtbl.mem visited_var v) then begin
          Hashtbl.add visited_var v ();
          match t.reason.(v) with
          | Some c ->
            push c.cid;
            Array.iter (fun l -> if Lit.var l <> v then push (var_marker (Lit.var l))) c.lits
          | None ->
            if t.level.(v) > 0 then
              failed := Lit.of_var v (t.assign.(v) = 1) :: !failed
        end
      end
  done;
  (List.sort_uniq compare !originals, !failed)

(* Recursive (MiniSat 2.2 [litRedundant]-style) redundancy check used by
   conflict-clause minimisation: a candidate literal is redundant when every
   path through its reason chain terminates in a literal of the learnt
   clause (seen = 1), an already-proved-removable literal (seen = 2) or the
   root level.  The traversal is an explicit-stack DFS with memoisation in
   [t.seen] (2 = removable, 3 = failed).

   Every reason clause consulted on a successful derivation participates in
   the implicit resolution, so its id — and markers for its root-level
   literals — must join [premises] to keep refutations reconstructible.
   Premises of sub-derivations that concluded "removable" are committed at
   marking time even if the top-level check later fails: a later check may
   reuse the cached mark, and an over-approximated premise set only makes
   the extracted core larger, never wrong. *)
let abstract_level t v = 1 lsl (t.level.(v) land 31)

let commit_removable_premises t premises v =
  match t.reason.(v) with
  | None -> ()
  | Some r ->
    premises := r.cid :: !premises;
    Array.iter
      (fun l ->
        let w = Lit.var l in
        if w <> v && t.level.(w) = 0 then premises := var_marker w :: !premises)
      r.lits

(* On BMC unrollings reason chains run thousands of assignments deep, so an
   unbounded walk can dwarf the savings; past the budget the literal is
   conservatively kept. *)
let redundancy_budget = 512

let lit_redundant t abstract_levels premises to_clear q =
  match t.reason.(Lit.var q) with
  | None -> false
  | Some c0 ->
    let stack = ref [] in (* (resume index, literal) continuations *)
    let p = ref q in
    let c = ref c0 in
    let i = ref 1 in
    let ok = ref true in
    let running = ref true in
    let budget = ref redundancy_budget in
    while !running do
      if !i < Array.length !c.lits then begin
        let l = !c.lits.(!i) in
        incr i;
        let v = Lit.var l in
        decr budget;
        if !budget < 0 then begin
          (* Out of budget: give up on the whole derivation. *)
          List.iter
            (fun (_, pl) ->
              let w = Lit.var pl in
              if t.seen.(w) = 0 then begin
                t.seen.(w) <- 3;
                to_clear := w :: !to_clear
              end)
            ((0, !p) :: !stack);
          ok := false;
          running := false
        end
        else if t.level.(v) = 0 || t.seen.(v) = 1 || t.seen.(v) = 2 then ()
        else if
          t.reason.(v) = None || t.seen.(v) = 3
          || abstract_level t v land abstract_levels = 0
        then begin
          (* Dead end: everything on the DFS path fails with it. *)
          List.iter
            (fun (_, pl) ->
              let w = Lit.var pl in
              if t.seen.(w) = 0 then begin
                t.seen.(w) <- 3;
                to_clear := w :: !to_clear
              end)
            ((0, !p) :: !stack);
          if t.seen.(v) = 0 then begin
            t.seen.(v) <- 3;
            to_clear := v :: !to_clear
          end;
          ok := false;
          running := false
        end
        else begin
          (* Descend into [l]'s reason. *)
          stack := (!i, !p) :: !stack;
          p := l;
          c := (match t.reason.(v) with Some r -> r | None -> assert false);
          i := 1
        end
      end
      else begin
        (* All parents of [p] proved redundant. *)
        let v = Lit.var !p in
        if t.seen.(v) = 0 then begin
          t.seen.(v) <- 2;
          to_clear := v :: !to_clear;
          commit_removable_premises t premises v
        end;
        match !stack with
        | [] -> running := false
        | (si, sp) :: rest ->
          stack := rest;
          p := sp;
          c := (match t.reason.(Lit.var sp) with Some r -> r | None -> assert false);
          i := si
      end
    done;
    !ok

(* First-UIP conflict analysis.  Returns the learnt clause (asserting literal
   first), its LBD, the backjump level, and the premises resolved on the
   way. *)
let analyze t confl =
  let learnt_tail = ref [] in
  let premises = ref [] in
  let to_clear = ref [] in
  let path_c = ref 0 in
  let p = ref (-1) in
  let c = ref confl in
  let index = ref (Vec.size t.trail - 1) in
  let conflict_level = decision_level t in
  let continue = ref true in
  while !continue do
    premises := !c.cid :: !premises;
    if !c.learnt then begin
      bump_clause t !c;
      (* Glucose-style dynamic LBD update: clauses that turn out to have a
         lower glue than when they were learnt are promoted. *)
      if !c.lbd > 2 then begin
        let d = clause_lbd t !c in
        if d < !c.lbd then !c.lbd <- d
      end
    end;
    let lits = !c.lits in
    let start = if !p = -1 then 0 else 1 in
    for idx = start to Array.length lits - 1 do
      let q = lits.(idx) in
      let v = Lit.var q in
      if t.seen.(v) = 0 then begin
        if t.level.(v) > 0 then begin
          t.seen.(v) <- 1;
          to_clear := v :: !to_clear;
          bump_var t v;
          if t.level.(v) >= conflict_level then incr path_c
          else learnt_tail := q :: !learnt_tail
        end
        else
          (* Root-level literal, resolved away: record its derivation so the
             refutation remains reconstructible. *)
          premises := var_marker v :: !premises
      end
    done;
    (* Select the next literal to resolve on. *)
    while t.seen.(Lit.var (Vec.get t.trail !index)) = 0 do
      decr index
    done;
    p := Vec.get t.trail !index;
    decr index;
    t.seen.(Lit.var !p) <- 0;
    decr path_c;
    if !path_c <= 0 then continue := false
    else
      match t.reason.(Lit.var !p) with
      | Some r -> c := r
      | None -> continue := false (* decision reached; cannot precede the UIP *)
  done;
  (* Conflict-clause minimisation: drop every non-asserting literal whose
     reason chain is fully covered by the remaining clause (recursively, not
     just one level deep).  Each dropped literal's reason joins the
     premises. *)
  let abstract_levels =
    List.fold_left (fun m q -> m lor abstract_level t (Lit.var q)) 0 !learnt_tail
  in
  let minimised =
    List.filter
      (fun q ->
        let v = Lit.var q in
        match t.reason.(v) with
        | None -> true
        | Some r ->
          if lit_redundant t abstract_levels premises to_clear q then begin
            premises := r.cid :: !premises;
            Array.iter
              (fun l ->
                let w = Lit.var l in
                if w <> v && t.level.(w) = 0 then premises := var_marker w :: !premises)
              r.lits;
            t.minimised_lits <- t.minimised_lits + 1;
            false
          end
          else true)
      !learnt_tail
  in
  let learnt = Lit.negate !p :: minimised in
  (* LBD must be computed before backjumping unassigns the asserting
     literal. *)
  let lbd = lits_lbd t learnt in
  List.iter (fun v -> t.seen.(v) <- 0) !to_clear;
  let bj =
    List.fold_left
      (fun acc q -> if q = Lit.negate !p then acc else max acc t.level.(Lit.var q))
      0 learnt
  in
  (learnt, lbd, bj, Array.of_list !premises)

let attach_clause t c =
  Vec.push t.watches.(c.lits.(0)) { blocker = c.lits.(1); wcl = c };
  Vec.push t.watches.(c.lits.(1)) { blocker = c.lits.(0); wcl = c }

let record_refutation t seeds =
  let core, failed = collect_refutation t seeds in
  t.last_core <- core;
  t.last_failed <- List.sort_uniq compare failed

let mark_root_unsat t seeds =
  record_refutation t seeds;
  t.ok <- false

let conflict_seeds confl =
  confl.cid :: Array.fold_left (fun acc l -> var_marker (Lit.var l) :: acc) [] confl.lits

let add_clause ?(tag = -1) t lits =
  (* The listener sees the raw clause stream, pre-simplification and even
     when the solver is already unsat — portfolio replicas must replay the
     exact same stream to keep variable numbering and clause ids aligned. *)
  (match t.clause_listener with Some f -> f tag lits | None -> ());
  if t.ok then begin
    if decision_level t <> 0 then invalid_arg "Solver.add_clause: not at root level";
    (* Deduplicate and drop tautologies / root-satisfied clauses. *)
    let lits = List.sort_uniq compare lits in
    let tautology =
      List.exists (fun l -> List.mem (Lit.negate l) lits) lits
      || List.exists (fun l -> lit_value t l = 1) lits
    in
    if not tautology then begin
      List.iter (fun l ->
          if Lit.var l >= t.nvars then
            invalid_arg "Solver.add_clause: undeclared variable")
        lits;
      let cid = t.next_cid in
      t.next_cid <- cid + 1;
      Hashtbl.replace t.cid_info cid (Original tag);
      let arr = Array.of_list lits in
      let c =
        { cid; lits = arr; learnt = false; activity = 0.0; lbd = 0; removed = false }
      in
      Vec.push t.clauses c;
      let n = Array.length arr in
      (* Move up to two non-false literals into the watch positions; the
         root-falsified literals stay in the clause so refutations remain
         faithful. *)
      let free = ref 0 in
      let i = ref 0 in
      while !free < 2 && !i < n do
        if lit_value t arr.(!i) <> 0 then begin
          let tmp = arr.(!free) in
          arr.(!free) <- arr.(!i);
          arr.(!i) <- tmp;
          incr free
        end;
        incr i
      done;
      if !free = 0 then
        (* All literals false at root: unsatisfiable formula. *)
        mark_root_unsat t
          (cid :: Array.fold_left (fun acc l -> var_marker (Lit.var l) :: acc) [] arr)
      else if !free = 1 then begin
        (* Unit at root level. *)
        enqueue t arr.(0) (Some c);
        match propagate t with
        | None -> ()
        | Some confl -> mark_root_unsat t (conflict_seeds confl)
      end
      else attach_clause t c
    end
  end

(* Approximate per-clause footprint (header + fields) in words, used by the
   learnt-DB memory budget. *)
let clause_overhead = 8

let learn_clause t lits lbd premises =
  if t.proof_logging then t.proof_steps <- Padd lits :: t.proof_steps;
  (match t.share_callback with
  | Some f -> if f ~lbd lits then t.shared_out <- t.shared_out + 1
  | None -> ());
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  Hashtbl.replace t.cid_info cid (Learnt_from premises);
  let arr = Array.of_list lits in
  t.learnt_words <- t.learnt_words + Array.length arr + clause_overhead;
  let c = { cid; lits = arr; learnt = true; activity = 0.0; lbd; removed = false } in
  t.learnt_total <- t.learnt_total + 1;
  t.lbd_sum <- t.lbd_sum + lbd;
  if Array.length arr > 1 then begin
    (* Position 1 must hold the highest-level non-asserting literal so the
       watch invariant survives the backjump. *)
    let best = ref 1 in
    for i = 2 to Array.length arr - 1 do
      if t.level.(Lit.var arr.(i)) > t.level.(Lit.var arr.(!best)) then best := i
    done;
    let tmp = arr.(1) in
    arr.(1) <- arr.(!best);
    arr.(!best) <- tmp;
    Vec.push t.learnts c;
    attach_clause t c
  end
  else Vec.push t.learnts c;
  bump_clause t c;
  c

(* Install a clause learnt by a peer solver over the same variable
   numbering.  Root-level only.  The clause enters the learnt database with
   glue LBD (2), so DB reduction protects it, but it carries no local
   premises: refutations that traverse it are flagged via {!core_complete}.
   Returns [false] when the clause is dropped (unknown variable, tautology,
   or already satisfied at root). *)
let import_clause t lits =
  if decision_level t <> 0 then invalid_arg "Solver.import_clause: not at root level";
  let lits = List.sort_uniq compare lits in
  if
    lits = []
    || List.exists (fun l -> Lit.var l >= t.nvars) lits
    || List.exists (fun l -> List.mem (Lit.negate l) lits) lits
    || List.exists (fun l -> lit_value t l = 1) lits
  then false
  else begin
    let cid = t.next_cid in
    t.next_cid <- cid + 1;
    Hashtbl.replace t.cid_info cid Imported;
    let arr = Array.of_list lits in
    t.learnt_words <- t.learnt_words + Array.length arr + clause_overhead;
    let c = { cid; lits = arr; learnt = true; activity = 0.0; lbd = 2; removed = false } in
    (* Same watch discipline as [add_clause]: move up to two non-false
       literals into the watch positions. *)
    let n = Array.length arr in
    let free = ref 0 in
    let i = ref 0 in
    while !free < 2 && !i < n do
      if lit_value t arr.(!i) <> 0 then begin
        let tmp = arr.(!free) in
        arr.(!free) <- arr.(!i);
        arr.(!i) <- tmp;
        incr free
      end;
      incr i
    done;
    Vec.push t.learnts c;
    if !free = 0 then
      mark_root_unsat t
        (cid :: Array.fold_left (fun acc l -> var_marker (Lit.var l) :: acc) [] arr)
    else if !free = 1 then begin
      enqueue t arr.(0) (Some c);
      match propagate t with
      | None -> ()
      | Some confl -> mark_root_unsat t (conflict_seeds confl)
    end
    else attach_clause t c;
    true
  end

(* Imports are refused under proof logging: a peer's clause is not RUP with
   respect to this instance's own derivation, so admitting it would
   invalidate the DRAT log.  Callers that certify must solve without
   sharing (the portfolio layer enforces this). *)
let import_clauses t cls =
  if t.proof_logging then 0
  else begin
    let n =
      List.fold_left
        (fun acc lits -> if t.ok && import_clause t lits then acc + 1 else acc)
        0 cls
    in
    t.shared_in <- t.shared_in + n;
    n
  end

let pull_imports t =
  match t.import_source with
  | None -> ()
  | Some f -> ignore (import_clauses t (f ()))

let locked t c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  (match t.reason.(v) with Some r -> r == c | None -> false)

(* Learnt-clause database reduction, LBD-first (Glucose): the half of the
   database with the worst (highest) glue goes, ties broken by activity.
   Glue clauses (LBD <= 2), binary clauses and clauses currently locked as
   reasons are protected regardless of their rank. *)
let reduce_db t =
  t.db_reductions <- t.db_reductions + 1;
  let learnts = Vec.fold (fun acc c -> if c.removed then acc else c :: acc) [] t.learnts in
  let arr = Array.of_list learnts in
  Array.sort
    (fun (a : clause) (b : clause) ->
      if a.lbd <> b.lbd then compare b.lbd a.lbd else compare a.activity b.activity)
    arr;
  let n = Array.length arr in
  let deleted = ref 0 in
  Array.iteri
    (fun i c ->
      if
        i < n / 2 && Array.length c.lits > 2 && c.lbd > 2 && not (locked t c)
      then begin
        c.removed <- true;
        if t.proof_logging then
          t.proof_steps <- Pdel (Array.to_list c.lits) :: t.proof_steps;
        t.learnt_words <- t.learnt_words - (Array.length c.lits + clause_overhead);
        incr deleted
      end)
    arr;
  t.deleted_total <- t.deleted_total + !deleted;
  Vec.filter_in_place (fun (c : clause) -> not c.removed) t.learnts;
  (* If protection kept most of the database, allow it to grow so reduction
     does not retrigger on every conflict. *)
  t.max_learnts <- t.max_learnts *. 1.1

let luby y x =
  let rec find_size size seq =
    if size >= x + 1 then (size, seq) else find_size ((2 * size) + 1) (seq + 1)
  in
  let rec reduce size seq x =
    if size - 1 = x then seq
    else
      let size = (size - 1) / 2 in
      reduce size (seq - 1) (x mod size)
  in
  let size, seq = find_size 1 0 in
  y ** float_of_int (reduce size seq x)

let pick_branch_var t =
  let rec loop () =
    if Order_heap.is_empty t.order then -1
    else
      let v = Order_heap.remove_max t.order in
      if t.assign.(v) < 0 then v else loop ()
  in
  loop ()

exception Found of result
exception Restart

(* Deterministic per-instance PRNG (48-bit drand48 LCG) driving random
   phase flips.  State lives in the solver so portfolio replicas diverge
   reproducibly from their seeds. *)
let next_random t =
  let s = ((t.rnd_state * 25214903917) + 11) land 0xFFFFFFFFFFFF in
  t.rnd_state <- s;
  float_of_int ((s lsr 24) land 0xFFFFFF) /. 16777216.0

(* Push the solver's cumulative counters into the ambient trace.  Called on
   a sampling tick in the conflict loop and once per [solve] call, and only
   when tracing is on — the hot path pays one [land] and one branch. *)
let sample_counters t =
  Obs.counter_set "solver.conflicts" (float_of_int t.conflicts);
  Obs.counter_set "solver.decisions" (float_of_int t.decisions);
  Obs.counter_set "solver.propagations" (float_of_int t.propagations);
  Obs.counter_set "solver.restarts" (float_of_int t.restarts);
  Obs.counter_set "solver.learnts" (float_of_int (Vec.size t.learnts))

(* One restart-bounded search episode; raises [Found] on a definitive
   answer, [Restart] when the conflict budget runs out. *)
let search t conflict_budget =
  let conflicts = ref 0 in
  let n_assumptions = Array.length t.assumptions in
  while true do
    match propagate t with
    | Some confl ->
      t.conflicts <- t.conflicts + 1;
      incr conflicts;
      if t.conflicts land 1023 = 0 && Obs.enabled () then sample_counters t;
      (match t.deadline with
      | Some d when t.conflicts land 255 = 0 && Unix.gettimeofday () > d ->
        cancel_until t 0;
        raise Timeout
      | Some _ | None -> ());
      (match t.stop with
      | Some flag when Atomic.get flag ->
        cancel_until t 0;
        raise Stopped
      | Some _ | None -> ());
      (match t.conflict_budget with
      | Some b when t.conflicts - t.conflict_base >= b ->
        cancel_until t 0;
        raise (Budget_exceeded "conflicts")
      | Some _ | None -> ());
      (match t.learnt_budget_mb with
      | Some mb
        when t.conflicts land 255 = 0
             && float_of_int (t.learnt_words * 8) /. 1048576.0 > mb ->
        cancel_until t 0;
        raise (Budget_exceeded "learnt-db memory")
      | Some _ | None -> ());
      if decision_level t = 0 then begin
        mark_root_unsat t (conflict_seeds confl);
        raise (Found Unsat)
      end
      else if decision_level t <= n_assumptions then begin
        (* The conflict is forced by the assumptions alone. *)
        record_refutation t (conflict_seeds confl);
        raise (Found Unsat)
      end
      else begin
        let learnt, lbd, bj, premises = analyze t confl in
        cancel_until t (max bj 0);
        let c = learn_clause t learnt lbd premises in
        (match learnt with
        | asserting :: _ -> enqueue t asserting (Some c)
        | [] -> ());
        t.var_inc <- t.var_inc *. t.var_decay_inv;
        t.cla_inc <- t.cla_inc *. cla_decay;
        if float_of_int (Vec.size t.learnts) >= t.max_learnts then reduce_db t
      end
    | None ->
      (match t.stop with
      | Some flag when Atomic.get flag ->
        cancel_until t 0;
        raise Stopped
      | Some _ | None -> ());
      if !conflicts >= conflict_budget then begin
        cancel_until t 0;
        raise Restart
      end;
      if decision_level t < n_assumptions then begin
        (* Enqueue the next assumption. *)
        let p = t.assumptions.(decision_level t) in
        match lit_value t p with
        | 1 -> new_decision_level t (* already satisfied: placeholder level *)
        | 0 ->
          (* Assumption contradicted by the implied assignment. *)
          let core, failed = collect_refutation t [ var_marker (Lit.var p) ] in
          t.last_core <- core;
          t.last_failed <- List.sort_uniq compare (p :: failed);
          raise (Found Unsat)
        | _ ->
          new_decision_level t;
          enqueue t p None
      end
      else begin
        let v = pick_branch_var t in
        if v < 0 then raise (Found Sat)
        else begin
          t.decisions <- t.decisions + 1;
          new_decision_level t;
          let ph =
            if t.rnd_phase_freq > 0.0 && next_random t < t.rnd_phase_freq then
              not t.phase.(v)
            else t.phase.(v)
          in
          enqueue t (Lit.of_var v ph) None
        end
      end
  done

let solve ?(assumptions = []) t =
  if not t.ok then begin
    t.last_failed <- [];
    Unsat
  end
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        t.solve_time <- t.solve_time +. Unix.gettimeofday () -. t0;
        if Obs.enabled () then sample_counters t)
      (fun () ->
        cancel_until t 0;
        t.conflict_base <- t.conflicts;
        (* Import boundary: peers' clauses enter at root level, here and at
           every restart.  An import can close the formula outright (root
           conflict), so [t.ok] must be re-checked after every pull — a
           consumed root conflict would otherwise let a later search return
           a bogus Sat. *)
        pull_imports t;
        if not t.ok then begin
          t.last_failed <- [];
          Unsat
        end
        else begin
          t.assumptions <- Array.of_list assumptions;
          Array.iter
            (fun l ->
              if Lit.var l >= t.nvars then
                invalid_arg "Solver.solve: undeclared assumption")
            t.assumptions;
          t.max_learnts <- max 1000.0 (float_of_int (Vec.size t.clauses) /. 3.0);
          let restarts = ref 0 in
          let answer = ref None in
          while !answer = None do
            let budget = int_of_float (luby 2.0 !restarts *. t.restart_base) in
            incr restarts;
            match search t budget with
            | exception Restart ->
              t.restarts <- t.restarts + 1;
              pull_imports t;
              if not t.ok then answer := Some Unsat
            | exception Found r -> answer := Some r
            | () -> ()
          done;
          (match !answer with
          | Some Sat ->
            t.model <- Array.sub t.assign 0 t.nvars;
            (* Unassigned variables default to false in the model. *)
            Array.iteri (fun i v -> if v < 0 then t.model.(i) <- 0) t.model
          | Some Unsat | None -> ());
          cancel_until t 0;
          t.assumptions <- [||];
          match !answer with Some r -> r | None -> assert false
        end)
  end

let export_clauses t =
  let acc = ref [] in
  Vec.iter (fun (c : clause) -> acc := Array.to_list c.lits :: !acc) t.clauses;
  List.rev !acc

let value_var t v = v < Array.length t.model && t.model.(v) = 1

let value t l =
  if Lit.sign l then value_var t (Lit.var l) else not (value_var t (Lit.var l))

let unsat_core t = t.last_core

let unsat_core_tags t =
  let tags =
    List.filter_map
      (fun cid ->
        match Hashtbl.find_opt t.cid_info cid with
        | Some (Original tag) when tag >= 0 -> Some tag
        | Some (Original _) | Some (Learnt_from _) | Some Imported | None -> None)
      t.last_core
  in
  List.sort_uniq compare tags

let failed_assumptions t = t.last_failed

let pp_stats ppf t =
  let s = stats t in
  Format.fprintf ppf
    "vars=%d clauses=%d learnts=%d conflicts=%d decisions=%d props=%d restarts=%d \
     deleted=%d minimised=%d avg-lbd=%.2f shared-out=%d shared-in=%d"
    t.nvars (Vec.size t.clauses) (Vec.size t.learnts) s.conflicts s.decisions
    s.propagations s.restarts s.deleted_clauses s.minimised_lits s.avg_lbd
    s.shared_out s.shared_in
