(** Incremental CDCL SAT solver with UNSAT-core extraction.

    The solver implements the standard conflict-driven clause-learning loop
    (two-watched-literal propagation with blocking literals and inlined
    binary-clause handling, first-UIP learning with recursive conflict-clause
    minimisation, VSIDS decision ordering with phase saving, Luby restarts,
    LBD-aware learnt-clause deletion with glue-clause protection) together
    with resolution-trace bookkeeping: every learnt clause records the
    clauses it was resolved from, so that after an UNSAT answer the set of
    {e original} clauses participating in the refutation can be
    reconstructed.  This is the [SAT_Get_Refutation] primitive of the paper
    (Fig. 1 line 10), which proof-based abstraction consumes.

    Clauses may carry an integer [tag]; {!unsat_core_tags} reports the
    distinct tags present in the refutation.  The BMC layers tag clauses with
    latch and memory-port identifiers so that cores translate directly into
    latch reasons (Fig. 1 line 11). *)

type t

type result = Sat | Unsat

val create : unit -> t

val new_var : t -> int
(** Allocate a fresh variable and return its index. *)

val ensure_vars : t -> int -> unit
(** [ensure_vars t n] guarantees variables [0 .. n-1] exist. *)

val num_vars : t -> int

val add_clause : ?tag:int -> t -> Lit.t list -> unit
(** Add a clause over existing variables.  Tautologies are silently dropped.
    Adding the empty clause (or a clause falsified at root level) makes the
    solver permanently unsatisfiable.  Must be called at root level, i.e. not
    from within a [solve] callback. *)

exception Timeout
(** Raised by {!solve} when the {!set_deadline} wall-clock deadline passes.
    The solver stays usable: the interrupted query can be retried. *)

exception Stopped
(** Raised by {!solve} when the {!set_stop} cancellation flag is observed
    set.  Like {!Timeout}, the solver stays usable afterwards.  Used by the
    portfolio layer to cancel loser instances cooperatively. *)

exception Budget_exceeded of string
(** Raised by {!solve} when a resource budget ({!set_conflict_budget} or
    {!set_learnt_budget_mb}) runs out; the payload names the exhausted
    resource ("conflicts" or "learnt-db memory").  Like {!Timeout}, the
    solver stays usable afterwards. *)

val set_deadline : t -> float option -> unit
(** Wall-clock deadline (as given by [Unix.gettimeofday]) checked
    periodically during search; [None] disables it. *)

val set_conflict_budget : t -> int option -> unit
(** Maximum conflicts a single {!solve} call may spend before
    {!Budget_exceeded} is raised; [None] (the default) disables it.  The
    budget is per-call: each [solve] starts a fresh count. *)

val set_learnt_budget_mb : t -> float option -> unit
(** Approximate ceiling, in megabytes, on the memory held by live learnt
    clauses; checked periodically during search, raising {!Budget_exceeded}
    when exceeded.  [None] (the default) disables it. *)

val solve : ?assumptions:Lit.t list -> t -> result
(** Solve the current formula under the given assumption literals.  The
    solver remains usable afterwards: more clauses may be added and [solve]
    called again. *)

(** {2 Portfolio hooks}

    Everything below is inert by default and exists for [lib/portfolio]: an
    in-process portfolio races several solver instances on the same CNF and
    exchanges learnt glue clauses between them.  The hooks are written
    single-domain: each solver instance must only ever be touched by the one
    domain that owns it — cross-domain communication goes through the
    exchange buffer, never through a [t]. *)

val set_stop : t -> bool Atomic.t option -> unit
(** Cooperative cancellation: when the flag reads [true] at a periodic
    check, {!solve} raises {!Stopped} (after backtracking to root, so the
    solver stays usable).  [None] (the default) disables the check. *)

val set_share_callback : t -> (lbd:int -> Lit.t list -> bool) option -> unit
(** Invoked on every learnt clause, before simplification can touch it.
    Returning [true] means the clause was exported (counts towards
    [shared_out] in {!stats}). *)

val set_import_source : t -> (unit -> Lit.t list list) option -> unit
(** Clause supplier drained at every import boundary ({!solve} entry and
    each restart) via {!import_clauses}. *)

val import_clauses : t -> Lit.t list list -> int
(** Install peer-learnt clauses at root level; returns how many were
    actually admitted (tautologies, root-satisfied clauses and clauses over
    undeclared variables are dropped).  Refuses all imports (returns [0])
    while proof logging is on: an imported clause is not RUP with respect to
    this instance's own derivation, so admitting one would invalidate the
    DRAT log.  Must be called at root level, i.e. not from within a search
    callback. *)

val set_clause_listener : t -> (int -> Lit.t list -> unit) option -> unit
(** [f tag lits] observes every {!add_clause} call, pre-simplification and
    regardless of the solver's ok-flag — the exact stream a replica must
    replay to mirror this instance. *)

val core_complete : t -> bool
(** [false] when the last refutation traversed an imported clause, in which
    case {!unsat_core} / {!unsat_core_tags} under-approximate the original
    clauses needed.  Consumers requiring exact cores (proof-based
    abstraction) must solve without sharing. *)

(** {2 Diversification knobs}

    Per-instance search-strategy parameters, all with the classic defaults;
    the portfolio sets them per replica so instances explore different parts
    of the search space. *)

val set_var_decay : t -> float -> unit
(** VSIDS activity decay factor in (0, 1]; default 0.95. *)

val set_restart_base : t -> int -> unit
(** Base conflict budget of the Luby restart sequence; default 100. *)

val set_default_phase : t -> bool -> unit
(** Initial saved phase of fresh (and current) variables; default [false]. *)

val set_random_seed : t -> int -> unit
(** Seed for the per-instance PRNG behind {!set_random_phase_freq}. *)

val set_random_phase_freq : t -> float -> unit
(** Probability in [0, 1] of flipping the saved phase at a decision;
    default 0 (deterministic phase saving). *)

(** {2 Configuration getters}

    Read-backs used by the portfolio to copy limits onto replicas. *)

val deadline : t -> float option
val conflict_budget : t -> int option
val learnt_budget_mb : t -> float option
val proof_logging_enabled : t -> bool

val raw_model : t -> int array
(** Copy of the last [Sat] model ([-1] undef / [0] false / [1] true per
    variable index). *)

val adopt_model : t -> int array -> unit
(** Install a model taken from {!raw_model} of a peer instance with the same
    variable numbering, so {!value} answers from the peer's model. *)

val okay : t -> bool
(** [false] once the clause set is unsatisfiable independent of
    assumptions. *)

val value : t -> Lit.t -> bool
(** Value of a literal in the model of the last [Sat] answer.  Unassigned
    variables (eliminated from the search) read as [false]. *)

val value_var : t -> int -> bool

val unsat_core : t -> int list
(** After an [Unsat] answer: ids of original clauses sufficient for the
    refutation (together with the assumptions).  Ids are those returned
    implicitly by clause insertion order, starting at 0. *)

val unsat_core_tags : t -> int list
(** Distinct non-negative tags of the original clauses in {!unsat_core}. *)

val failed_assumptions : t -> Lit.t list
(** After an [Unsat] answer under assumptions: a subset of the assumptions
    sufficient for unsatisfiability. *)

(** {2 Proof logging}

    With proof logging enabled the solver records a DRAT-style derivation:
    one {!Padd} step per learnt clause and one {!Pdel} step per clause
    dropped by database reduction, in order.  An UNSAT answer (with or
    without assumptions) can then be validated independently of the solver by
    [Cert.Drat.check], replaying the derivation over the original clauses by
    unit propagation alone.  Logging costs one list cell per learnt clause
    and nothing when disabled. *)

type proof_step =
  | Padd of Lit.t list  (** clause learnt (RUP at its position) *)
  | Pdel of Lit.t list  (** learnt clause dropped by DB reduction *)

val set_proof_logging : t -> bool -> unit
(** Record every learnt clause (and deletion) for later validation.  Enable
    before solving; off by default. *)

val proof : t -> proof_step list
(** The recorded derivation, in order. *)

val proof_log : t -> Lit.t list list
(** Learnt clauses in derivation order (the {!Padd} steps of {!proof}). *)

val export_clauses : t -> Lit.t list list
(** The original (problem) clauses as stored, in insertion order — the
    axioms a proof check starts from.  Tautologies and clauses already
    satisfied at root level were dropped at {!add_clause} time and do not
    appear. *)

(** {2 Statistics} *)

val num_clauses : t -> int
val num_learnts : t -> int
val num_conflicts : t -> int
val num_decisions : t -> int
val num_propagations : t -> int

type stats = {
  conflicts : int;
  decisions : int;
  propagations : int;
  restarts : int;
  learnt_clauses : int;  (** total clauses ever learnt *)
  deleted_clauses : int;  (** learnt clauses dropped by DB reduction *)
  db_reductions : int;
  minimised_lits : int;
      (** literals removed by recursive conflict-clause minimisation *)
  avg_lbd : float;  (** mean LBD (glue) over all learnt clauses *)
  solve_time_s : float;  (** cumulative wall time spent inside {!solve} *)
  shared_out : int;  (** learnt clauses accepted by the share callback *)
  shared_in : int;  (** peer clauses admitted by {!import_clauses} *)
}
(** Cumulative search telemetry; all counters are monotone over the
    solver's lifetime. *)

val stats : t -> stats

val empty_stats : stats
(** All-zero record, for call sites that report stats without a solver. *)

val pp_stats : Format.formatter -> t -> unit
