type t = {
  activity : int -> float;
  heap : int Vec.t;
  mutable index : int array; (* var -> position in heap, -1 if absent *)
}

let create ~activity =
  { activity; heap = Vec.create ~dummy:(-1) (); index = Array.make 64 (-1) }

let ensure t v =
  let n = Array.length t.index in
  if v >= n then begin
    let index = Array.make (max (2 * n) (v + 1)) (-1) in
    Array.blit t.index 0 index 0 n;
    t.index <- index
  end

let in_heap t v = v < Array.length t.index && t.index.(v) >= 0
let is_empty t = Vec.is_empty t.heap

(* The sift loops move a hole up/down and drop the element in once, rather
   than swapping at every level; the moving element's activity is computed a
   single time per sift. *)

let sift_up t i =
  let v = Vec.get t.heap i in
  let a = t.activity v in
  let i = ref i in
  let continue_ = ref true in
  while !continue_ && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pv = Vec.get t.heap parent in
    if a > t.activity pv then begin
      Vec.set t.heap !i pv;
      t.index.(pv) <- !i;
      i := parent
    end
    else continue_ := false
  done;
  Vec.set t.heap !i v;
  t.index.(v) <- !i

let sift_down t i =
  let n = Vec.size t.heap in
  let v = Vec.get t.heap i in
  let a = t.activity v in
  let i = ref i in
  let continue_ = ref true in
  while !continue_ do
    let left = (2 * !i) + 1 and right = (2 * !i) + 2 in
    if left >= n then continue_ := false
    else begin
      let child =
        if right < n && t.activity (Vec.get t.heap right) > t.activity (Vec.get t.heap left)
        then right
        else left
      in
      let cv = Vec.get t.heap child in
      if t.activity cv > a then begin
        Vec.set t.heap !i cv;
        t.index.(cv) <- !i;
        i := child
      end
      else continue_ := false
    end
  done;
  Vec.set t.heap !i v;
  t.index.(v) <- !i

let insert t v =
  ensure t v;
  if t.index.(v) < 0 then begin
    Vec.push t.heap v;
    t.index.(v) <- Vec.size t.heap - 1;
    sift_up t (Vec.size t.heap - 1)
  end

let remove_max t =
  if is_empty t then raise Not_found;
  let v = Vec.get t.heap 0 in
  let last = Vec.pop t.heap in
  t.index.(v) <- -1;
  if not (is_empty t) then begin
    Vec.set t.heap 0 last;
    t.index.(last) <- 0;
    sift_down t 0
  end;
  v

let update t v =
  if in_heap t v then begin
    sift_up t t.index.(v);
    sift_down t t.index.(v)
  end

let rebuild t vars =
  while not (is_empty t) do
    ignore (remove_max t)
  done;
  List.iter (insert t) vars
