(** Growable arrays used throughout the solver hot paths.

    A thin imperative vector; unlike [Buffer] it exposes O(1) random access
    and unlike [Dynarray] (OCaml >= 5.2) it is available on this toolchain. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused slots; it is never observable through the API. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** Unchecked {!get} for hot loops whose index is already bounded by
    {!size}; out-of-range access is undefined behaviour. *)

val unsafe_set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** Removes and returns the last element.  Raises [Invalid_argument] when
    empty. *)

val last : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val filter_in_place : ('a -> bool) -> 'a t -> unit
(** Keep only the elements satisfying the predicate, preserving order;
    single left-to-right compaction pass, no allocation. *)

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes index [i] by moving the last element into it;
    O(1), does not preserve order. *)
