type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { data = Array.make capacity dummy; size = 0; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x

let grow v =
  let capacity = 2 * Array.length v.data in
  let data = Array.make capacity v.dummy in
  Array.blit v.data 0 data 0 v.size;
  v.data <- data

let push v x =
  if v.size = Array.length v.data then grow v;
  Array.unsafe_set v.data v.size x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop";
  v.size <- v.size - 1;
  let x = Array.unsafe_get v.data v.size in
  Array.unsafe_set v.data v.size v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last";
  Array.unsafe_get v.data (v.size - 1)

let clear v =
  Array.fill v.data 0 v.size v.dummy;
  v.size <- 0

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.size - n) v.dummy;
  v.size <- n

let iter f v =
  for i = 0 to v.size - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let to_list v = List.rev (fold (fun acc x -> x :: acc) [] v)

let of_list ~dummy xs =
  let v = create ~capacity:(max 1 (List.length xs)) ~dummy () in
  List.iter (push v) xs;
  v

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    let x = Array.unsafe_get v.data i in
    if p x then begin
      Array.unsafe_set v.data !j x;
      incr j
    end
  done;
  Array.fill v.data !j (v.size - !j) v.dummy;
  v.size <- !j

let swap_remove v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.swap_remove";
  v.size <- v.size - 1;
  Array.unsafe_set v.data i (Array.unsafe_get v.data v.size);
  Array.unsafe_set v.data v.size v.dummy
