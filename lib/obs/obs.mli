(** Structured observability: spans, counters, Chrome traces.

    The verification platform needs to answer "where does the time go?" per
    unroll depth, per phase and per worker — the paper's whole evaluation
    (§5) is a performance decomposition of EMM vs explicit modeling.  This
    library provides the measurement substrate:

    - {b hierarchical timing spans} ({!span}): nested begin/end intervals
      with attributes and per-span GC allocation deltas;
    - {b monotonic counters} ({!counter_add}, {!counter_set}) and
      {b instant annotations} ({!instant});
    - an {b injectable clock} ({!Clock}), so tests can run against a
      deterministic fixed clock and the engine's deadline checks share one
      time source with the telemetry ({!now});
    - two {b exporters}: a JSON-lines event stream and the Chrome
      [trace_event] format loadable in [chrome://tracing] / Perfetto;
    - {b worker merging}: a forked worker records events locally
      ({!worker_scope}), marshals them back with its result, and the parent
      {!ingest}s them into one pid-annotated trace.

    The layer is zero-dependency (only [unix] for the wall clock) and
    designed to vanish when disabled: every emission point is a single
    branch on the current-recorder option ({!enabled}), so a run without
    [EMMVER_TRACE] / [--trace-out] pays only that branch. *)

(** {1 Events} *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type event =
  | Begin of { name : string; ts : float; attrs : attr list }
      (** a span opened *)
  | End of { name : string; ts : float; alloc_words : float }
      (** the matching span closed; [alloc_words] is the GC words allocated
          between begin and end (minor + major - promoted deltas) *)
  | Count of { name : string; ts : float; value : float }
      (** a monotonic counter's new total *)
  | Instant of { name : string; ts : float; attrs : attr list }
      (** a point annotation *)

type row = int * event
(** An event annotated with the pid of the process that recorded it.  Rows
    are marshal-safe (plain constructors over strings, ints and floats), so
    they can travel over the worker-pool result pipe. *)

(** {1 Clocks} *)

module Clock : sig
  type t = unit -> float

  val wall : t
  (** [Unix.gettimeofday]. *)

  val fixed : ?start:float -> ?step:float -> unit -> t
  (** A deterministic clock: the first reading is [start] (default 0.0) and
      every subsequent reading advances by [step] (default 1.0).  Two runs
      of the same workload against two [fixed] clocks with the same
      parameters produce identical timestamps — no wall-clock reads. *)
end

(** {1 Recorders} *)

type t
(** A recorder: an append-only event log plus the span stack and counter
    totals needed to emit well-formed streams. *)

val create : ?clock:Clock.t -> ?pid:int -> ?track_alloc:bool -> unit -> t
(** [create ()] makes an empty recorder on the wall clock for the calling
    process.  [~track_alloc:false] zeroes the per-span GC deltas, which
    makes exporter output byte-reproducible across runs even when the
    runtime allocates differently. *)

val clock : t -> Clock.t
val rows : t -> row list
(** Recorded rows, in emission order. *)

val num_rows : t -> int

val open_spans : t -> string list
(** Names of spans begun but not yet ended, innermost first. *)

val close_open_spans : t -> unit
(** Emit [End] events for every open span (innermost first) — used before
    exporting a trace from a run that was cut short. *)

(** {1 The current recorder}

    Emission goes through an ambient current recorder so instrumentation
    points (solver tick, EMM generator, engine loop) need no plumbing.  With
    no current recorder every emission function is a no-op behind one
    branch. *)

val set_current : t option -> unit
val current : unit -> t option

val enabled : unit -> bool
(** [true] iff a current recorder is installed.  Guard any non-trivial
    attribute computation with this. *)

val now : unit -> float
(** The current recorder's clock, or [Unix.gettimeofday] when disabled.
    The single time source for engine deadline checks and telemetry. *)

(** {1 Emission} *)

val span : ?attrs:attr list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a [name] span: a [Begin] row before, an
    [End] row after — also when [f] raises, so streams stay balanced.
    Disabled: exactly [f ()]. *)

val instant : ?attrs:attr list -> string -> unit

val counter_add : string -> int -> unit
(** Add a (non-negative; negative deltas are ignored) delta to a named
    monotonic counter and record its new total. *)

val counter_set : string -> float -> unit
(** Raise a named monotonic counter to the given total; values below the
    current total are clamped (the counter never goes backwards). *)

val counter_total : t -> string -> float
(** The recorder's current total for a named counter ([0.0] if it was
    never bumped) — a snapshot accessor for long-running services that
    report metrics without exporting a trace. *)

val counter_totals : t -> (string * float) list
(** Every counter's current total, sorted by name (deterministic for
    golden output). *)

(** {1 Worker support} *)

val worker_scope : (unit -> 'a) -> 'a * row list
(** Run [f] in a fork-side scope: if tracing is enabled the inherited
    recorder (whose rows belong to the parent) is replaced by a fresh one
    for this process, and the rows recorded by [f] are returned for
    marshalling back.  Disabled: [(f (), [])]. *)

val ingest : t -> row list -> unit
(** Append a worker's rows (keeping their pid annotations) to a parent
    recorder. *)

val ingest_current : row list -> unit
(** [ingest] into the current recorder; no-op when disabled. *)

(** {1 Domain support}

    The current recorder is domain-local ([Domain.DLS]): a freshly spawned
    domain starts disabled and never sees the parent's recorder, so a
    recorder is only ever mutated by the one domain that installed it.  To
    trace work running on another domain, capture a {!domain_fork} token on
    the parent {e before} spawning, run the domain's body inside
    {!domain_scope}, and {!ingest} the returned rows on the parent after
    joining — the portfolio layer does exactly this, mirroring the
    fork-worker flow of {!worker_scope}.

    Caveat: {!Clock.fixed} closures are stateful and unsynchronised; use
    the wall clock for multi-domain traces. *)

type domain_token
(** Parent-side capture (clock, allocation tracking, a fresh synthetic pid)
    for tracing one spawned domain. *)

val domain_fork : ?pid:int -> unit -> domain_token option
(** Capture the current recorder's configuration for a child domain, with a
    distinct synthetic pid (derived from the parent's, unless [pid] is
    given) so merged traces keep one well-formed span stack per domain.
    [None] when tracing is disabled — {!domain_scope} then runs its body
    untraced. *)

val domain_scope : domain_token option -> (unit -> 'a) -> 'a * row list
(** Run a domain's body against a private recorder described by the token,
    returning its rows for the parent to {!ingest} after [Domain.join].
    With [None]: [(f (), [])]. *)

(** {1 Validation and span extraction} *)

type span_info = {
  sp_pid : int;
  sp_name : string;
  sp_start : float;
  sp_stop : float;
  sp_alloc_words : float;
  sp_attrs : attr list;
  sp_level : int;  (** nesting depth, 0 = top-level *)
  sp_parent : int option;  (** index of the enclosing span, if any *)
}

val spans : row list -> (span_info list, string) result
(** Reconstruct the span forest (per pid, via a stack), in begin order.
    [Error] on an orphan [End], a name mismatch, a timestamp running
    backwards within a pid, or a span left open. *)

val validate : row list -> (unit, string) result
(** The well-formedness judgment used by the tests: {!spans} succeeds and
    every counter is monotone per (pid, name). *)

val attr_int : string -> attr list -> int option

val duration : span_info -> float

(** {1 Exporters} *)

type format = Jsonl | Chrome

val format_of_path : string -> format
(** [.jsonl] extension selects {!Jsonl}; anything else {!Chrome}. *)

val export : format -> Buffer.t -> row list -> unit
(** Render rows. {!Jsonl}: one JSON object per line, absolute timestamps.
    {!Chrome}: a [{"traceEvents": [...]}] document with B/E/C/i phase
    events, microsecond timestamps relative to the earliest row, and
    [pid]/[tid] tracks per process — loadable in Perfetto. *)

val write_file : ?format:format -> string -> t -> unit

(** {1 Trace-file plumbing} *)

val trace_env_var : string
(** ["EMMVER_TRACE"]: setting it to a path enables tracing in any CLI or
    bench run, as if [--trace-out] had been given. *)

val run_with_trace : ?clock:Clock.t -> ?out:string -> label:string -> (unit -> 'a) -> 'a
(** [run_with_trace ~out ~label f]: when [out] (or, if [out] is [None], the
    {!trace_env_var} environment variable) names a file, install a fresh
    current recorder, run [f] inside a [label] root span, and write the
    trace to that file ({!format_of_path}) — also when [f] raises or calls
    [exit] (an [at_exit] hook covers the latter; open spans are closed
    first).  Otherwise exactly [f ()]. *)

(** {1 A minimal JSON reader}

    Just enough JSON to parse traces back in the golden tests and the CI
    guard — not a general-purpose implementation. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result
  val member : string -> t -> t option
end
