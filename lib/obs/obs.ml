(* Structured observability.  See obs.mli for the contract.

   Implementation notes: rows are kept as a reversed list (append is the
   only hot operation); the span stack and counter totals live beside the
   log so emission stays well-formed by construction.  Everything a worker
   marshals back is made of plain constructors over immediate values. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type attr = string * value

type event =
  | Begin of { name : string; ts : float; attrs : attr list }
  | End of { name : string; ts : float; alloc_words : float }
  | Count of { name : string; ts : float; value : float }
  | Instant of { name : string; ts : float; attrs : attr list }

type row = int * event

module Clock = struct
  type t = unit -> float

  let wall = Unix.gettimeofday

  let fixed ?(start = 0.0) ?(step = 1.0) () =
    let t = ref (start -. step) in
    fun () ->
      t := !t +. step;
      !t
end

type t = {
  c : Clock.t;
  pid : int;
  track_alloc : bool;
  mutable rev_rows : row list;
  mutable n : int;
  mutable stack : (string * float) list; (* open spans: name, alloc at begin *)
  totals : (string, float) Hashtbl.t;
}

let create ?(clock = Clock.wall) ?pid ?(track_alloc = true) () =
  let pid = match pid with Some p -> p | None -> Unix.getpid () in
  {
    c = clock;
    pid;
    track_alloc;
    rev_rows = [];
    n = 0;
    stack = [];
    totals = Hashtbl.create 16;
  }

let clock t = t.c
let rows t = List.rev t.rev_rows
let num_rows t = t.n
let open_spans t = List.map fst t.stack

(* Cumulative words allocated by this process so far. *)
let alloc_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let push t row =
  t.rev_rows <- (t.pid, row) :: t.rev_rows;
  t.n <- t.n + 1

let end_top t =
  match t.stack with
  | [] -> ()
  | (name, a0) :: rest ->
    t.stack <- rest;
    let alloc = if t.track_alloc then alloc_words () -. a0 else 0.0 in
    push t (End { name; ts = t.c (); alloc_words = alloc })

let close_open_spans t =
  while t.stack <> [] do
    end_top t
  done

(* {2 The current recorder}

   The ambient recorder is domain-local: every domain sees its own slot,
   and a freshly spawned domain starts with [None] (emission disabled)
   until [domain_scope] installs a private recorder for it.  A recorder is
   therefore only ever mutated by the one domain that installed it — the
   cross-domain hand-off happens through [rows] after the domain joins. *)

let cur_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let cur () = Domain.DLS.get cur_key
let set_cur v = Domain.DLS.set cur_key v

let set_current r = set_cur r
let current () = cur ()
let enabled () = cur () <> None

let now () = match cur () with Some r -> r.c () | None -> Unix.gettimeofday ()

let span ?(attrs = []) name f =
  match cur () with
  | None -> f ()
  | Some r ->
    let a0 = if r.track_alloc then alloc_words () else 0.0 in
    r.stack <- (name, a0) :: r.stack;
    push r (Begin { name; ts = r.c (); attrs });
    Fun.protect f ~finally:(fun () -> end_top r)

let instant ?(attrs = []) name =
  match cur () with
  | None -> ()
  | Some r -> push r (Instant { name; ts = r.c (); attrs })

let bump r name total =
  Hashtbl.replace r.totals name total;
  push r (Count { name; ts = r.c (); value = total })

let counter_add name delta =
  match cur () with
  | None -> ()
  | Some r ->
    let delta = max 0 delta in
    let total =
      (match Hashtbl.find_opt r.totals name with Some v -> v | None -> 0.0)
      +. float_of_int delta
    in
    bump r name total

let counter_set name v =
  match cur () with
  | None -> ()
  | Some r ->
    let old = match Hashtbl.find_opt r.totals name with Some v -> v | None -> 0.0 in
    bump r name (Float.max old v)

let counter_total t name =
  match Hashtbl.find_opt t.totals name with Some v -> v | None -> 0.0

let counter_totals t =
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) t.totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* {2 Worker support} *)

let worker_scope f =
  match cur () with
  | None -> (f (), [])
  | Some parent ->
    let r = create ~clock:parent.c ~track_alloc:parent.track_alloc () in
    set_cur (Some r);
    let v = Fun.protect f ~finally:(fun () -> set_cur None) in
    close_open_spans r;
    (v, rows r)

(* Belt-and-braces: ingestion is the one recorder operation several domains
   could plausibly reach concurrently (workers reporting as they finish), so
   it takes a global lock.  The intended discipline remains single-domain —
   parents ingest after join. *)
let ingest_mutex = Mutex.create ()

let ingest t worker_rows =
  Mutex.protect ingest_mutex (fun () ->
      List.iter
        (fun row ->
          t.rev_rows <- row :: t.rev_rows;
          t.n <- t.n + 1)
        worker_rows)

let ingest_current worker_rows =
  match cur () with None -> () | Some r -> ingest r worker_rows

(* {2 Domain support} *)

type domain_token = { dt_parent : t; dt_pid : int }

(* Synthetic-pid allocator: distinct pids keep the per-pid span stacks of
   [spans]/[validate] well-formed when several domains' rows are merged
   into one trace. *)
let domain_seq = Atomic.make 0

let domain_fork ?pid () =
  match cur () with
  | None -> None
  | Some parent ->
    let pid =
      match pid with
      | Some p -> p
      | None -> (parent.pid * 1000) + 1 + Atomic.fetch_and_add domain_seq 1
    in
    Some { dt_parent = parent; dt_pid = pid }

let domain_scope token f =
  match token with
  | None -> (f (), [])
  | Some { dt_parent = parent; dt_pid = pid } ->
    let r = create ~clock:parent.c ~pid ~track_alloc:parent.track_alloc () in
    set_cur (Some r);
    let v = Fun.protect f ~finally:(fun () -> set_cur None) in
    close_open_spans r;
    (v, rows r)

(* {2 Validation and span extraction} *)

type span_info = {
  sp_pid : int;
  sp_name : string;
  sp_start : float;
  sp_stop : float;
  sp_alloc_words : float;
  sp_attrs : attr list;
  sp_level : int;
  sp_parent : int option;
}

let ts_of = function
  | Begin { ts; _ } | End { ts; _ } | Count { ts; _ } | Instant { ts; _ } -> ts

let spans rows =
  (* One stack per pid: (index into the output, name). *)
  let stacks : (int, (int * string) list) Hashtbl.t = Hashtbl.create 4 in
  let last_ts : (int, float) Hashtbl.t = Hashtbl.create 4 in
  let out = ref [] in
  let n_out = ref 0 in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  List.iter
    (fun (pid, ev) ->
      if !err = None then begin
        let ts = ts_of ev in
        (match Hashtbl.find_opt last_ts pid with
        | Some prev when ts < prev ->
          fail "pid %d: timestamp runs backwards (%g after %g)" pid ts prev
        | _ -> Hashtbl.replace last_ts pid ts);
        let stack = match Hashtbl.find_opt stacks pid with Some s -> s | None -> [] in
        match ev with
        | Begin { name; ts; attrs } ->
          let parent = match stack with (i, _) :: _ -> Some i | [] -> None in
          let idx = !n_out in
          out :=
            {
              sp_pid = pid;
              sp_name = name;
              sp_start = ts;
              sp_stop = nan;
              sp_alloc_words = 0.0;
              sp_attrs = attrs;
              sp_level = List.length stack;
              sp_parent = parent;
            }
            :: !out;
          incr n_out;
          Hashtbl.replace stacks pid ((idx, name) :: stack)
        | End { name; ts; alloc_words } -> (
          match stack with
          | [] -> fail "pid %d: orphan end of span %S" pid name
          | (idx, open_name) :: rest ->
            if open_name <> name then
              fail "pid %d: end of span %S while %S is open" pid name open_name
            else begin
              Hashtbl.replace stacks pid rest;
              out :=
                List.mapi
                  (fun i sp ->
                    if i = !n_out - 1 - idx then
                      { sp with sp_stop = ts; sp_alloc_words = alloc_words }
                    else sp)
                  !out
            end)
        | Count _ | Instant _ -> ()
      end)
    rows;
  (match !err with
  | None ->
    Hashtbl.iter
      (fun pid stack ->
        match stack with
        | (_, name) :: _ -> fail "pid %d: span %S left open" pid name
        | [] -> ())
      stacks
  | Some _ -> ());
  match !err with Some m -> Error m | None -> Ok (List.rev !out)

let validate rows =
  match spans rows with
  | Error _ as e -> e
  | Ok _ ->
    let totals : (int * string, float) Hashtbl.t = Hashtbl.create 16 in
    let err = ref None in
    List.iter
      (fun (pid, ev) ->
        if !err = None then
          match ev with
          | Count { name; value; _ } -> (
            match Hashtbl.find_opt totals (pid, name) with
            | Some prev when value < prev ->
              err :=
                Some
                  (Printf.sprintf "pid %d: counter %S not monotone (%g after %g)"
                     pid name value prev)
            | _ -> Hashtbl.replace totals (pid, name) value)
          | Begin _ | End _ | Instant _ -> ())
      rows;
    (match !err with Some m -> Error m | None -> Ok ())

let attr_int key attrs =
  match List.assoc_opt key attrs with Some (Int i) -> Some i | _ -> None

let duration sp = sp.sp_stop -. sp.sp_start

(* {2 Exporters} *)

type format = Jsonl | Chrome

let format_of_path path =
  if Filename.check_suffix path ".jsonl" then Jsonl else Chrome

let escape_into b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_str b s =
  Buffer.add_char b '"';
  escape_into b s;
  Buffer.add_char b '"'

(* Deterministic number rendering: integers without a fraction, everything
   else with six significant digits. *)
let add_num b (x : float) =
  if Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" x)
  else Buffer.add_string b (Printf.sprintf "%.6g" x)

let add_value b = function
  | Str s -> add_str b s
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_num b f
  | Bool bo -> Buffer.add_string b (if bo then "true" else "false")

let add_attrs b attrs =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      add_str b k;
      Buffer.add_char b ':';
      add_value b v)
    attrs;
  Buffer.add_char b '}'

(* Timestamps: JSON-lines keeps the raw clock readings ("ts"); Chrome wants
   microseconds ("ts" in us), which we make relative to the earliest row so
   traces open at t=0 in Perfetto. *)
let add_common b ~ph ~name ~ts ~pid =
  Buffer.add_string b "{\"ph\":\"";
  Buffer.add_string b ph;
  Buffer.add_string b "\",\"name\":";
  add_str b name;
  Buffer.add_string b ",\"ts\":";
  add_num b ts;
  Buffer.add_string b ",\"pid\":";
  Buffer.add_string b (string_of_int pid);
  Buffer.add_string b ",\"tid\":";
  Buffer.add_string b (string_of_int pid)

let add_event b ~us_of (pid, ev) =
  match ev with
  | Begin { name; ts; attrs } ->
    add_common b ~ph:"B" ~name ~ts:(us_of ts) ~pid;
    if attrs <> [] then begin
      Buffer.add_string b ",\"args\":";
      add_attrs b attrs
    end;
    Buffer.add_char b '}'
  | End { name; ts; alloc_words } ->
    add_common b ~ph:"E" ~name ~ts:(us_of ts) ~pid;
    Buffer.add_string b ",\"args\":{\"alloc_words\":";
    add_num b alloc_words;
    Buffer.add_string b "}}"
  | Count { name; ts; value } ->
    add_common b ~ph:"C" ~name ~ts:(us_of ts) ~pid;
    Buffer.add_string b ",\"args\":{\"value\":";
    add_num b value;
    Buffer.add_string b "}}"
  | Instant { name; ts; attrs } ->
    add_common b ~ph:"i" ~name ~ts:(us_of ts) ~pid;
    Buffer.add_string b ",\"s\":\"t\"";
    if attrs <> [] then begin
      Buffer.add_string b ",\"args\":";
      add_attrs b attrs
    end;
    Buffer.add_char b '}'

let export fmt b rows =
  match fmt with
  | Jsonl ->
    List.iter
      (fun row ->
        add_event b ~us_of:Fun.id row;
        Buffer.add_char b '\n')
      rows
  | Chrome ->
    let base =
      List.fold_left (fun acc (_, ev) -> Float.min acc (ts_of ev)) infinity rows
    in
    let base = if base = infinity then 0.0 else base in
    let us_of ts =
      (* Round to a tenth of a microsecond: deterministic and far below
         the clock's own resolution. *)
      Float.round ((ts -. base) *. 1e7) /. 10.0
    in
    Buffer.add_string b "{\"traceEvents\":[";
    List.iteri
      (fun i row ->
        Buffer.add_string b (if i = 0 then "\n" else ",\n");
        add_event b ~us_of row)
      rows;
    Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_file ?format path t =
  let fmt = match format with Some f -> f | None -> format_of_path path in
  let b = Buffer.create 65536 in
  export fmt b (rows t);
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

(* {2 Trace-file plumbing} *)

let trace_env_var = "EMMVER_TRACE"

let run_with_trace ?clock ?out ~label f =
  let out =
    match out with Some _ -> out | None -> Sys.getenv_opt trace_env_var
  in
  match out with
  | None | Some "" -> f ()
  | Some path ->
    let r = create ?clock () in
    set_current (Some r);
    let written = ref false in
    let write () =
      if not !written then begin
        written := true;
        (match current () with
        | Some r' when r' == r -> set_current None
        | Some _ | None -> ());
        close_open_spans r;
        try write_file path r with Sys_error _ -> ()
      end
    in
    (* The CLI exits from inside [f]; the hook makes sure the trace still
       lands on disk. *)
    at_exit write;
    Fun.protect (fun () -> span label f) ~finally:write

(* {2 A minimal JSON reader} *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Fail of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some d when d = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      String.iter (fun c -> expect c) word;
      v
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char b '"'
          | Some '\\' -> Buffer.add_char b '\\'
          | Some '/' -> Buffer.add_char b '/'
          | Some 'b' -> Buffer.add_char b '\b'
          | Some 'f' -> Buffer.add_char b '\012'
          | Some 'n' -> Buffer.add_char b '\n'
          | Some 'r' -> Buffer.add_char b '\r'
          | Some 't' -> Buffer.add_char b '\t'
          | Some 'u' ->
            (* Decode the escape; non-ASCII code points come back as '?'
               (the exporter never emits them). *)
            if !pos + 4 >= n then fail "truncated \\u escape";
            let hex = String.sub s (!pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            Buffer.add_char b (if code < 128 then Char.chr code else '?')
          | _ -> fail "bad escape");
          advance ();
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while match peek () with Some c when is_num_char c -> true | _ -> false do
        advance ()
      done;
      if !pos = start then fail "expected a number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (parse_string ())
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              members ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              elements (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> Num (parse_number ())
      | None -> fail "unexpected end of input"
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Fail m -> Error m

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | Null | Bool _ | Num _ | Str _ | Arr _ -> None
end
