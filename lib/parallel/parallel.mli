(** Fork-based worker pool with crash and timeout isolation.

    The verification platform fans out independent SAT-backed obligations —
    one property per job, or one engine per job when racing a portfolio —
    across OS processes.  Processes, not domains, are the right isolation
    unit here: every job builds its own mutable CDCL solver instance, a
    worker that runs out of memory or dies on a signal must not take the
    batch down, and a job over budget has to be stopped {e hard}
    ([SIGKILL]), which no in-process mechanism can guarantee.

    The design is fork-per-job: each job is executed by a fresh child
    process created with [Unix.fork], so the job closure and all its
    captured data (netlists, options) are inherited by address-space copy
    and never serialised.  Only the {e result} travels back to the parent,
    marshalled over a pipe.  Consequences:

    - the result type must be marshal-safe (no closures, no custom blocks);
      every verdict/outcome type of this platform qualifies;
    - mutations a job performs are invisible to the parent and to other
      jobs — workers cannot race on shared state by construction;
    - a worker that calls [exit], raises, segfaults, is OOM-killed or
      exceeds its wall-clock deadline yields an {!failure} for {e its} slot
      while every other job runs to completion.

    Results are returned in {b job order}, regardless of completion order:
    [run pool ~f [x0; x1; x2]] always pairs slot [i] with [f xi].  Scheduling
    order is therefore unobservable and [-j N] cannot change verdicts.

    {b Tracing}: when an [Obs] recorder is current in the parent, each job
    runs under [Obs.worker_scope] — the child records its own pid-annotated
    rows, marshals them back alongside the result, and the parent ingests
    them, so a [-j N] run yields one merged trace.  Workers that are
    SIGKILLed (deadline, cancellation) or crash before writing a payload
    contribute no rows: partial span trees are dropped, never merged. *)

type reason =
  | Crashed of string
      (** the worker exited non-zero, died on a signal, or raised an
          exception ([Crashed "uncaught exception: ..."]) *)
  | Timed_out of float  (** the per-job deadline, in seconds, that expired *)
  | Cancelled  (** killed (or never started) because a {!race} concluded *)
  | Protocol of string
      (** the worker exited 0 but its result could not be read back *)

type failure = {
  reason : reason;
  elapsed_s : float;
      (** wall-clock seconds the worker ran before failing — the partial
          telemetry surfaced in [Inconclusive "worker killed: ..."]
          outcomes *)
}

val failure_message : failure -> string
(** One-line rendering, e.g. ["killed by deadline after 2.0s"]. *)

type 'a job_result = ('a, failure) result

(** {2 Pools}

    A pool is a concurrency cap plus cumulative counters; it holds no live
    processes between calls, so one pool can be reused across any number of
    batches (the counters accumulate). *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] makes a pool running at most [jobs] workers at once
    (default {!default_jobs}; values [< 1] are clamped to [1]). *)

val jobs : t -> int

val default_jobs : unit -> int
(** The host's available core count ([Domain.recommended_domain_count]). *)

type stats = {
  spawned : int;  (** workers forked over the pool's lifetime *)
  completed : int;  (** workers that returned a result *)
  crashed : int;
  timed_out : int;
  cancelled : int;
}

val stats : t -> stats

(** {2 Running batches} *)

val run :
  ?job_timeout_s:float -> t -> f:('a -> 'b) -> 'a list -> 'b job_result list
(** [run pool ~f xs] executes [f x] for every [x] in a forked worker, at
    most [jobs pool] at a time, and returns the results in job order.
    [job_timeout_s] is a hard per-job wall-clock deadline: a worker still
    alive that long after its own fork is SIGKILLed and its slot reports
    [Timed_out].  The call only raises on pool-level system errors (e.g.
    [fork] itself failing); per-job failures are values.  If such an error
    does escape, every worker still running is SIGKILLed and reaped before
    the exception propagates — an aborted batch never leaks child
    processes, and a pool can be reused for any number of batches without
    accumulating zombies. *)

val map :
  ?jobs:int -> ?job_timeout_s:float -> f:('a -> 'b) -> 'a list -> 'b job_result list
(** One-shot convenience: [map ~jobs ~f xs = run (create ~jobs ()) ~f xs]. *)

(** {2 Incremental jobs}

    The daemon-facing interface: the serve layer multiplexes worker pipes
    with client sockets in one select loop of its own, so it spawns jobs
    one at a time and services each pipe as it becomes readable.  The same
    worker machinery as {!run} backs it — crash containment, SIGKILL
    deadlines and trace-row ingestion behave identically. *)

module Async : sig
  type 'b handle
  (** One live forked job computing a ['b]. *)

  val spawn : t -> ?job_timeout_s:float -> f:('a -> 'b) -> 'a -> 'b handle
  (** Fork one worker computing [f x].  Counts against the pool's
      cumulative {!stats} but {e not} against its concurrency cap — the
      caller schedules admission. *)

  val fd : _ handle -> Unix.file_descr
  (** The parent's read end of the result pipe: select on this. *)

  val pid : _ handle -> int

  val elapsed_s : _ handle -> float
  (** Wall-clock seconds since the fork. *)

  val service : t -> 'b handle -> 'b job_result option
  (** Call when {!fd} is readable: drains available result bytes.  [None]
      while the worker is still producing; [Some result] once the pipe hit
      EOF — the child is then reaped, the fd closed, and the handle must
      not be serviced again ([Invalid_argument] if it is). *)

  val cancel : t -> _ handle -> unit
  (** SIGKILL the worker; its eventual {!service} settles with
      [Cancelled].  Idempotent, and a no-op after a deadline kill. *)

  val check_deadline : t -> _ handle -> unit
  (** SIGKILL the worker if its [job_timeout_s] deadline has passed; the
      eventual {!service} then settles with [Timed_out].  The caller's
      loop invokes this on its own tick. *)
end

(** {2 Orphan reaping}

    A daemon that dies hard (SIGKILL, power loss) abandons its forked
    workers: they reparent to init and keep computing into a closed pipe.
    A restarted daemon knows their pids from its journal, but a pid alone
    is not an identity — the kernel may have recycled it.  The guard is a
    {e process token}: the start time of the process (field 22 of
    [/proc/<pid>/stat], clock ticks since boot), which uniquely names one
    incarnation of a pid on one boot. *)

val process_token : int -> string
(** [process_token pid] is the start-time token of the live process [pid],
    or [""] when it cannot be read (process already gone, or no [/proc]).
    Record it at spawn; feed it back to {!reap_orphan} after a restart. *)

val reap_orphan : pid:int -> token:string -> bool
(** [reap_orphan ~pid ~token] SIGKILLs [pid] {e only} if its current
    process token exactly equals [token], and returns whether it did.
    A [token] of [""] never kills (an unreadable token at spawn must not
    license killing an arbitrary pid later).  The orphan is init's child,
    not ours, so there is nothing to [waitpid] — init reaps it. *)

(** {2 Racing}

    The portfolio combinator: run all candidates concurrently and stop as
    soon as one of them produces a result the caller deems conclusive. *)

val race :
  ?job_timeout_s:float ->
  t ->
  f:('a -> 'b) ->
  conclusive:('b -> bool) ->
  'a list ->
  (int * 'b) option * 'b job_result list
(** [race pool ~f ~conclusive xs] runs every job as {!run} does, but the
    first completed result [v] with [conclusive v = true] wins: all other
    workers are SIGKILLed, unstarted jobs are dropped, and both report
    [Cancelled].  Returns the winner as [(index into xs, value)] — [None]
    if no job produced a conclusive result — together with the full
    job-ordered result list (the winner appears in its slot; losers appear
    as the failures or inconclusive values they produced). *)
