(* Fork-per-job worker pool.  See parallel.mli for the contract.

   Parent-side machinery: one pipe per live worker, a select loop that
   drains result bytes as they are produced (so a result larger than the
   pipe buffer cannot deadlock a worker), wall-clock deadlines enforced
   with SIGKILL, and waitpid-based post-mortems that distinguish clean
   results from crashes, timeouts and cancellations. *)

type reason =
  | Crashed of string
  | Timed_out of float
  | Cancelled
  | Protocol of string

type failure = { reason : reason; elapsed_s : float }

let failure_message f =
  match f.reason with
  | Crashed why -> Printf.sprintf "%s after %.1fs" why f.elapsed_s
  | Timed_out d -> Printf.sprintf "killed by %.1fs deadline" d
  | Cancelled -> "cancelled by portfolio winner"
  | Protocol why -> Printf.sprintf "unreadable result (%s)" why

type 'a job_result = ('a, failure) result

type t = {
  max_jobs : int;
  mutable n_spawned : int;
  mutable n_completed : int;
  mutable n_crashed : int;
  mutable n_timed_out : int;
  mutable n_cancelled : int;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let create ?jobs () =
  let max_jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  { max_jobs; n_spawned = 0; n_completed = 0; n_crashed = 0; n_timed_out = 0; n_cancelled = 0 }

let jobs t = t.max_jobs

type stats = {
  spawned : int;
  completed : int;
  crashed : int;
  timed_out : int;
  cancelled : int;
}

let stats t =
  {
    spawned = t.n_spawned;
    completed = t.n_completed;
    crashed = t.n_crashed;
    timed_out = t.n_timed_out;
    cancelled = t.n_cancelled;
  }

(* {2 Worker side} *)

let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write_all fd bytes =
  let n = Bytes.length bytes in
  let pos = ref 0 in
  while !pos < n do
    pos := !pos + retry_eintr (fun () -> Unix.write fd bytes !pos (n - !pos))
  done

(* The child computes [f x], marshals [Ok v] (or [Error backtrace] when [f]
   raises) to the write end of its pipe and leaves with [_exit], never
   returning into the caller's control flow (at_exit handlers, pending
   alcotest reporters, ... belong to the parent).

   When tracing is on, the whole job runs under [Obs.worker_scope]: the
   child records spans into its own recorder and the rows ride back with
   the result, so the parent can merge a pid-annotated trace.  A worker
   that dies (deadline SIGKILL, crash) writes no payload — its partial
   spans are dropped rather than corrupting the merged stream. *)
let exec_child wfd f x =
  let result, obs_rows =
    Obs.worker_scope (fun () ->
        try Ok (f x) with e -> Error (Printexc.to_string e))
  in
  let payload =
    try Marshal.to_bytes (result, obs_rows) []
    with e ->
      (* the value itself would not marshal (closure, custom block, ...) *)
      Marshal.to_bytes
        ((Error (Printexc.to_string e), obs_rows)
          : (_, string) result * Obs.row list)
        []
  in
  (try write_all wfd payload with _ -> ());
  (try Unix.close wfd with _ -> ());
  Unix._exit 0

(* {2 Parent side} *)

type worker = {
  idx : int;
  pid : int;
  fd : Unix.file_descr;
  buf : Buffer.t;
  started : float;
  kill_at : float option;
  mutable killed : reason option;  (* set when we SIGKILLed it ourselves *)
}

let spawn t ~job_timeout_s ~f idx x =
  (* Anything buffered on the standard channels would be flushed twice —
     once per process — if it survived the fork. *)
  flush stdout;
  flush stderr;
  let rfd, wfd = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
    (try Unix.close rfd with _ -> ());
    exec_child wfd f x
  | pid ->
    Unix.close wfd;
    t.n_spawned <- t.n_spawned + 1;
    let now = Unix.gettimeofday () in
    {
      idx;
      pid;
      fd = rfd;
      buf = Buffer.create 1024;
      started = now;
      kill_at = Option.map (fun d -> now +. d) job_timeout_s;
      killed = None;
    }

let kill_worker w reason =
  (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
  w.killed <- Some reason

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else Printf.sprintf "signal %d" s

(* The worker's pipe hit EOF: reap the process and produce its slot's
   result.  A deadline or cancellation kill takes precedence over whatever
   the dying worker managed to write. *)
let post_mortem t w =
  (try Unix.close w.fd with Unix.Unix_error _ -> ());
  let _, status = retry_eintr (fun () -> Unix.waitpid [] w.pid) in
  let elapsed_s = Unix.gettimeofday () -. w.started in
  let fail reason =
    (match reason with
    | Timed_out _ -> t.n_timed_out <- t.n_timed_out + 1
    | Cancelled -> t.n_cancelled <- t.n_cancelled + 1
    | Crashed _ | Protocol _ -> t.n_crashed <- t.n_crashed + 1);
    Error { reason; elapsed_s }
  in
  match (w.killed, status) with
  | Some reason, _ -> fail reason
  | None, Unix.WEXITED 0 -> (
    match
      (try Ok (Marshal.from_bytes (Buffer.to_bytes w.buf) 0)
       with e -> Error (Printexc.to_string e))
    with
    | Ok ((res : (_, string) result), (obs_rows : Obs.row list)) -> (
      (* Merge the worker's trace rows (pid-annotated at emission) before
         judging the result: a worker that failed with an exception still
         produced a well-formed partial trace worth keeping. *)
      Obs.ingest_current obs_rows;
      match res with
      | Ok v ->
        t.n_completed <- t.n_completed + 1;
        Ok v
      | Error exn_text -> fail (Crashed ("uncaught exception: " ^ exn_text)))
    | Error why -> fail (Protocol why))
  | None, Unix.WEXITED code -> fail (Crashed (Printf.sprintf "exit %d" code))
  | None, Unix.WSIGNALED s | None, Unix.WSTOPPED s ->
    fail (Crashed ("killed by " ^ signal_name s))

(* Core loop shared by [run] and [race].  [on_done idx result] is called as
   each slot settles and may return [`Stop] to cancel everything still
   pending or running. *)
let drive t ~job_timeout_s ~f ~on_done xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  let results = Array.make n None in
  let next = ref 0 in
  let running = ref [] in
  let stopped = ref false in
  let settle w result =
    results.(w.idx) <- Some result;
    running := List.filter (fun w' -> w'.pid <> w.pid) !running;
    match on_done w.idx result with `Stop -> stopped := true | `Continue -> ()
  in
  (* An exception escaping the loop (fork failure, a raising [on_done]
     callback) must not abandon live children: kill, close and reap every
     running worker before letting it propagate, or each aborted drive
     leaks zombies for the life of the parent. *)
  let abandon_running () =
    List.iter
      (fun w ->
        (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try Unix.close w.fd with Unix.Unix_error _ -> ());
        (try ignore (retry_eintr (fun () -> Unix.waitpid [] w.pid))
         with Unix.Unix_error _ -> ()))
      !running;
    running := []
  in
  try
  while (not !stopped && !next < n) || !running <> [] do
    if !stopped then
      (* Cancel the survivors: kill everyone still running; their EOFs are
         collected below.  Unstarted jobs settle immediately. *)
      List.iter
        (fun w -> if w.killed = None then kill_worker w Cancelled)
        !running
    else
      while !next < n && List.length !running < t.max_jobs do
        running := spawn t ~job_timeout_s ~f !next xs.(!next) :: !running;
        incr next
      done;
    let now = Unix.gettimeofday () in
    (* Enforce deadlines, and size the select timeout to the nearest one. *)
    let wait =
      List.fold_left
        (fun wait w ->
          match w.kill_at with
          | Some ka when w.killed = None ->
            if ka <= now then begin
              kill_worker w
                (Timed_out (ka -. w.started));
              wait
            end
            else min wait (ka -. now)
          | _ -> wait)
        0.5 !running
    in
    let fds = List.map (fun w -> w.fd) !running in
    if fds <> [] then begin
      let readable, _, _ =
        retry_eintr (fun () -> Unix.select fds [] [] (max 0.01 wait))
      in
      let chunk = Bytes.create 65536 in
      List.iter
        (fun w ->
          if List.mem w.fd readable then
            let k = retry_eintr (fun () -> Unix.read w.fd chunk 0 (Bytes.length chunk)) in
            if k = 0 then settle w (post_mortem t w)
            else Buffer.add_subbytes w.buf chunk 0 k)
        !running
    end
  done;
  (* Slots never started because a race concluded first. *)
  for i = 0 to n - 1 do
    if results.(i) = None then begin
      t.n_cancelled <- t.n_cancelled + 1;
      results.(i) <- Some (Error { reason = Cancelled; elapsed_s = 0.0 })
    end
  done;
  Array.to_list (Array.map Option.get results)
  with e ->
    abandon_running ();
    raise e

let run ?job_timeout_s t ~f xs =
  drive t ~job_timeout_s ~f ~on_done:(fun _ _ -> `Continue) xs

(* {2 Incremental (daemon) interface}

   [drive] owns its select loop, which suits batch callers; a long-running
   server multiplexes worker pipes with client sockets in one loop of its
   own, so it needs the pieces individually: spawn one job, select on its
   pipe, drain bytes when readable, settle on EOF.  The handle wraps the
   same [worker] record and the same [post_mortem], so crash containment,
   deadline kills and trace-row ingestion behave identically to [run]. *)

module Async = struct
  type 'b handle = { w : worker; mutable settled : bool }

  let spawn t ?job_timeout_s ~f x = { w = spawn t ~job_timeout_s ~f 0 x; settled = false }

  let fd h = h.w.fd
  let pid h = h.w.pid
  let elapsed_s h = Unix.gettimeofday () -. h.w.started

  let kill _t h reason = if h.w.killed = None then kill_worker h.w reason

  let cancel t h = kill t h Cancelled

  let check_deadline t h =
    match h.w.kill_at with
    | Some ka when h.w.killed = None && ka <= Unix.gettimeofday () ->
      kill t h (Timed_out (ka -. h.w.started))
    | _ -> ()

  let service t h =
    if h.settled then invalid_arg "Parallel.Async.service: handle already settled";
    let chunk = Bytes.create 65536 in
    let k = retry_eintr (fun () -> Unix.read h.w.fd chunk 0 (Bytes.length chunk)) in
    if k = 0 then begin
      h.settled <- true;
      Some (post_mortem t h.w)
    end
    else begin
      Buffer.add_subbytes h.w.buf chunk 0 k;
      None
    end
end

(* {2 Orphan reaping}

   A daemon that dies (SIGKILL, power loss) abandons its forked workers:
   they reparent to init and keep burning CPU until their own deadline or
   completion.  The restarted daemon knows their pids from its journal,
   but a pid alone is not an identity — it may have been recycled.  The
   Linux-specific guard is the process start time (field 22 of
   /proc/<pid>/stat, in clock ticks since boot): recorded at spawn, it
   uniquely names one incarnation of a pid.  No /proc, no token, no
   match: never kill. *)

let proc_start_token pid =
  match open_in (Printf.sprintf "/proc/%d/stat" pid) with
  | ic -> (
    let line =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> try Some (input_line ic) with End_of_file -> None)
    in
    match line with
    | None -> None
    | Some line -> (
      (* The comm field is parenthesized and may contain spaces: split
         after the last ')'. *)
      match String.rindex_opt line ')' with
      | None -> None
      | Some i ->
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        let fields =
          String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
        in
        (* [rest] starts at field 3 (state); starttime is field 22. *)
        List.nth_opt fields 19))
  | exception _ -> None

let process_token pid =
  match proc_start_token pid with Some t -> t | None -> ""

let reap_orphan ~pid ~token =
  if token = "" then false
  else
    match proc_start_token pid with
    | Some t when String.equal t token -> (
      match Unix.kill pid Sys.sigkill with
      | () -> true
      | exception Unix.Unix_error _ -> false)
    | _ -> false

let map ?jobs ?job_timeout_s ~f xs = run ?job_timeout_s (create ?jobs ()) ~f xs

let race ?job_timeout_s t ~f ~conclusive xs =
  let winner = ref None in
  let on_done idx result =
    match result with
    | Ok v when !winner = None && conclusive v ->
      winner := Some (idx, v);
      `Stop
    | _ -> `Continue
  in
  let results = drive t ~job_timeout_s ~f ~on_done xs in
  (!winner, results)
