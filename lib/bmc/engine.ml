module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

type proof_kind = Forward_diameter | Backward_induction

type verdict =
  | Proof of { depth : int; kind : proof_kind }
  | Counterexample of Trace.t
  | Bounded_safe of int
  | Reasons_stable of int
  | Timed_out of int
  | Out_of_budget of { depth : int; what : string }

type stats = {
  depths_completed : int;
  solve_time : float;
  encode_time : float;
  cert_time_s : float;
  proof_steps : int;
  num_vars : int;
  num_clauses : int;
  num_conflicts : int;
  vars_saved : int;
  clauses_saved : int;
  peak_memory_mb : float;
  latch_reasons : Netlist.signal list;
  memory_reasons : int list;
  reasons_last_changed : int;
  solver_stats : Solver.stats;
}

type cert_artifact = {
  ca_num_vars : int;
  ca_original : Lit.t list list;
  ca_proof : Cert.Drat.step list;
  ca_obligations : Lit.t list list;
}

type result = {
  verdict : verdict;
  stats : stats;
  certificate : Cert.t;
  artifact : cert_artifact option;
}

type config = {
  max_depth : int;
  deadline : float option;
  proof_checks : bool;
  collect_reasons : bool;
  stop_on_stable : int option;
  free_latches : Netlist.signal -> bool;
  simplify : bool;
  certify : bool;
  conflict_budget : int option;
  learnt_mb_budget : float option;
  proof_file : string option;
  portfolio : Portfolio.config option;
}

let default_config =
  {
    max_depth = 100;
    deadline = None;
    proof_checks = true;
    collect_reasons = false;
    stop_on_stable = None;
    free_latches = (fun _ -> false);
    simplify = true;
    certify = false;
    conflict_budget = None;
    learnt_mb_budget = None;
    proof_file = None;
    portfolio = None;
  }

(* Wrap a freshly created solver in a portfolio when the configuration asks
   for one.  Must run before the unroller adds any clause (replicas mirror
   the primary's clause stream from the beginning).  Sharing is forced off
   when cores or DRAT logs are consumed: imported clauses have no local
   derivation, so they would taint the one and invalidate the other. *)
let make_portfolio config solver =
  match config.portfolio with
  | Some pcfg when pcfg.Portfolio.domains > 1 ->
    let pcfg =
      if config.certify || config.collect_reasons then
        { pcfg with Portfolio.share = false }
      else pcfg
    in
    Some (Portfolio.create ~config:pcfg solver)
  | Some _ | None -> None

(* The memory-interface bits observed by trace certification: write-port
   address/data/enable and read-port address/enable unconditionally,
   read-port data gated on the enable (EMM leaves disabled read data
   unconstrained while the simulator drives zero). *)
let watch_signals net =
  List.concat_map
    (fun m ->
      let mname = Netlist.memory_name m in
      let bits prefix ?enable arr =
        List.mapi
          (fun i s -> (Printf.sprintf "%s.%s[%d]" mname prefix i, s, enable))
          (Array.to_list arr)
      in
      let wr =
        List.concat
          (List.init (Netlist.num_write_ports m) (fun w ->
               let addr, data, en = Netlist.write_port m w in
               bits (Printf.sprintf "w%d.addr" w) addr
               @ bits (Printf.sprintf "w%d.data" w) data
               @ [ (Printf.sprintf "%s.w%d.en" mname w, en, None) ]))
      in
      let rd =
        List.concat
          (List.init (Netlist.num_read_ports m) (fun r ->
               let addr, en, out = Netlist.read_port m r in
               bits (Printf.sprintf "r%d.addr" r) addr
               @ [ (Printf.sprintf "%s.r%d.en" mname r, en, None) ]
               @ bits ~enable:en (Printf.sprintf "r%d.data" r) out))
      in
      wr @ rd)
    (Netlist.memories net)

(* The unroller configuration implied by an engine configuration.  Latch
   aliasing and frame-0 init folding are both gated on [collect_reasons]:
   reason extraction needs the tagged latch clauses.  Init folding further
   requires pure falsification mode ([proof_checks = false]), where every
   solver query assumes [act_init]. *)
let make_unroller config solver net =
  Cnf.create ~free_latches:config.free_latches ~simplify:config.simplify
    ~track_reasons:config.collect_reasons
    ~fold_init:
      (config.simplify && (not config.proof_checks) && not config.collect_reasons)
    solver net

type hooks = {
  on_unroll : Cnf.t -> int -> unit;
  mem_init_of_model : Cnf.t -> int -> (string * (int * int) list) list;
  mem_distinct : (Cnf.t -> i:int -> j:int -> Lit.t) option;
      (* [Some f]: [f unr ~i ~j] is a literal that may be set true only when
         the modeled memory state at frame [i] can differ from frame [j]
         (some enabled write in [j, i) stores a value the location did not
         already hold).  It is OR'd into the loop-free-path distinctness
         clause of every frame pair, making termination proofs range over
         memory state as well as latches.  [None]: memory contents are
         invisible to the distinctness clauses and the engine falls back to
         the conservative latch-only guard below. *)
}

let no_hooks =
  {
    on_unroll = (fun _ _ -> ());
    mem_init_of_model = (fun _ _ -> []);
    mem_distinct = None;
  }

(* Mutable run state threaded through one [check] call. *)
type run = {
  cfg : config;
  hks : hooks;
  net : Netlist.t;
  solver : Solver.t;
  unr : Cnf.t;
  prop : Netlist.signal;
  prop_name : string;
  act_lfp : Lit.t;
  act_cp : Lit.t;
  state_latches : Netlist.signal list;
  reasons : (Netlist.signal, unit) Hashtbl.t;
  mem_reasons : (int, unit) Hashtbl.t;
  watches : (string * Netlist.signal * Netlist.signal option) list;
  portfolio : Portfolio.t option;
  mutable obligations : (Lit.t list * int) list;
      (* UNSAT assumption cubes with the instance that answered them
         (0 = the run's own solver), newest first *)
  mutable reasons_last_changed : int;
  mutable solve_time : float;
  mutable encode_time : float;
}

(* The solver whose bookkeeping matches the last answer: the portfolio
   winner when racing, the run's own solver otherwise. *)
let answer_solver run =
  match run.portfolio with
  | Some p -> Portfolio.winner_solver p
  | None -> run.solver

(* The [solve_time]/[encode_time] accumulators are now derived views over
   the observability spans: both read the same [Obs.now] clock, so [stats]
   stays source-compatible while traces carry the per-phase breakdown. *)
let timed_solve ?(what = "falsify") run assumptions =
  let t0 = Obs.now () in
  let r =
    Fun.protect
      ~finally:(fun () -> run.solve_time <- run.solve_time +. Obs.now () -. t0)
      (fun () ->
        Obs.span "solve" ~attrs:[ ("query", Obs.Str what) ] (fun () ->
            match run.portfolio with
            | Some p -> Portfolio.solve ~assumptions p
            | None -> Solver.solve ~assumptions run.solver))
  in
  if r = Solver.Unsat && run.cfg.certify then begin
    let w = match run.portfolio with Some p -> Portfolio.winner p | None -> 0 in
    run.obligations <- (assumptions, w) :: run.obligations
  end;
  r

let timed_encode run f =
  let t0 = Obs.now () in
  Fun.protect
    ~finally:(fun () -> run.encode_time <- run.encode_time +. Obs.now () -. t0)
    (fun () -> Obs.span "encode" f)

(* Loop-free-path constraints: for the new frame [i], require state [i] to
   differ from every earlier state, guarded by [act_lfp].  State is the latch
   vector plus — when the hooks provide a memory-distinctness predicate — the
   contents of the modeled memories, so a frame pair only counts as a repeat
   when latches AND memory agree. *)
let add_lfp_pairs run i =
  let unr = run.unr in
  List.iter
    (fun j ->
      let diffs =
        List.map
          (fun l ->
            let x = Cnf.lit unr ~frame:j l in
            let y = Cnf.lit unr ~frame:i l in
            let q = Cnf.fresh_lit unr in
            (* q -> (x <> y) *)
            Cnf.add_clause unr [ Lit.negate q; x; y ];
            Cnf.add_clause unr [ Lit.negate q; Lit.negate x; Lit.negate y ];
            q)
          run.state_latches
      in
      let diffs =
        match run.hks.mem_distinct with
        | Some f ->
          let d = f unr ~i ~j in
          if d = Cnf.false_lit unr then diffs else d :: diffs
        | None -> diffs
      in
      Cnf.add_clause unr (Lit.negate run.act_lfp :: diffs))
    (List.init i Fun.id)

let collect_reasons_from_core run =
  List.iter
    (fun tag ->
      match Cnf.meaning_of run.unr tag with
      | Some (Cnf.Tag.Latch l) ->
        if not (Hashtbl.mem run.reasons l) then Hashtbl.replace run.reasons l ()
      | Some (Cnf.Tag.Memory id) ->
        if not (Hashtbl.mem run.mem_reasons id) then Hashtbl.replace run.mem_reasons id ()
      | Some (Cnf.Tag.Misc _) | None -> ())
    (Solver.unsat_core_tags (answer_solver run))

let extract_trace run depth =
  let unr = run.unr in
  let solver = run.solver in
  let inputs =
    Array.init (depth + 1) (fun frame ->
        List.filter_map
          (fun s ->
            match Netlist.node run.net (Netlist.node_of s) with
            | Netlist.Input name ->
              Some (name, Solver.value solver (Cnf.lit unr ~frame s))
            | Netlist.Const_false | Netlist.Latch _ | Netlist.And _
            | Netlist.Mem_out _ -> None)
          (Netlist.inputs run.net))
  in
  let latch0 =
    List.filter_map
      (fun l ->
        match Netlist.latch_init run.net l with
        | None ->
          Some
            ( Netlist.latch_name run.net l,
              Solver.value solver (Cnf.lit unr ~frame:0 l) )
        | Some _ -> None)
      (Netlist.latches run.net)
  in
  let mem_init = run.hks.mem_init_of_model unr depth in
  let watch =
    List.filter_map
      (fun (name, s, enable) ->
        let complete = ref true in
        let values =
          Array.init (depth + 1) (fun frame ->
              match Cnf.lit_opt unr ~frame s with
              | Some l -> Solver.value solver l
              | None ->
                complete := false;
                false)
        in
        if !complete then
          Some
            { Trace.w_name = name; w_signal = s; w_enable = enable; w_values = values }
        else None)
      run.watches
  in
  { Trace.property = run.prop_name; depth; inputs; latch0; mem_init; watch }

(* Validate every recorded UNSAT answer against the solver's DRAT log with
   the independent checker of [Cert.Drat]. *)
let certify_unsat run =
  if run.obligations = [] then Cert.Unchecked "no unsat obligations recorded"
  else begin
    (* Under a portfolio, obligations are grouped by the instance that
       answered them: every instance keeps a self-contained DRAT log over
       the same (replayed) original clauses, so each group is checked
       against its own instance's derivation. *)
    let solver_of k =
      match run.portfolio with
      | Some p -> Portfolio.instance p k
      | None -> run.solver
    in
    let instances = List.sort_uniq compare (List.map snd run.obligations) in
    let rec go = function
      | [] -> Cert.Certified Cert.Drat_checked
      | k :: rest -> (
        let solver = solver_of k in
        let obligations =
          List.rev
            (List.filter_map
               (fun (cube, w) -> if w = k then Some cube else None)
               run.obligations)
        in
        match
          Cert.Drat.check
            ~num_vars:(Solver.num_vars solver)
            ~original:(Solver.export_clauses solver)
            ~proof:(Solver.proof solver) ~obligations ()
        with
        | Cert.Drat.Valid _ -> go rest
        | Cert.Drat.Invalid why -> Cert.Refuted why)
    in
    go instances
  end

let dump_proof run =
  match run.cfg.proof_file with
  | Some path when run.cfg.certify ->
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> Cert.Drat.output oc (Solver.proof run.solver))
  | Some _ | None -> ()

(* The certificate for a finished run: UNSAT verdicts (proofs, and bounded /
   stability results whose every depth answered UNSAT) go through the DRAT
   checker; counterexamples are replayed on the concrete design. *)
let certify_verdict run verdict =
  if not run.cfg.certify then Cert.Unchecked "certification disabled"
  else begin
    dump_proof run;
    match verdict with
    | Proof _ | Bounded_safe _ | Reasons_stable _ -> certify_unsat run
    | Counterexample t -> Trace.certify run.net t
    | Timed_out _ -> Cert.Unchecked "timed out"
    | Out_of_budget { what; _ } -> Cert.Unchecked ("out of budget: " ^ what)
  end

exception Done of verdict

let check ?(config = default_config) ?(hooks = no_hooks) net ~property =
  let solver = Solver.create () in
  let portfolio = make_portfolio config solver in
  Solver.set_deadline solver config.deadline;
  Solver.set_conflict_budget solver config.conflict_budget;
  Solver.set_learnt_budget_mb solver config.learnt_mb_budget;
  if config.certify then Solver.set_proof_logging solver true;
  let unr = make_unroller config solver net in
  let run =
    {
      cfg = config;
      hks = hooks;
      net;
      solver;
      unr;
      prop = Netlist.find_property net property;
      prop_name = property;
      act_lfp = Cnf.fresh_lit unr;
      act_cp = Cnf.fresh_lit unr;
      state_latches =
        List.filter (fun l -> not (config.free_latches l)) (Netlist.latches net);
      reasons = Hashtbl.create 64;
      mem_reasons = Hashtbl.create 4;
      watches = (if config.certify then watch_signals net else []);
      portfolio;
      obligations = [];
      reasons_last_changed = 0;
      solve_time = 0.0;
      encode_time = 0.0;
    }
  in
  let act_init = Cnf.act_init unr in
  (* When the hooks supply a memory-distinctness predicate, the loop-free-path
     constraints range over the full modeled state (latches plus memory
     contents) and termination checks are sound at every depth — including on
     latch-free write-port designs, whose distinctness clause degenerates to
     exactly the memory predicate.  Without it, latch-only distinctness is
     sound only when latches really are the whole state: a memory's contents
     evolve outside the latch vector, so latch-free memory designs keep only
     the depth-0 checks (which involve no distinctness constraints —
     induction at depth 0 is plain validity of the property) and otherwise
     fall back to falsification. *)
  let lfp_meaningful =
    run.hks.mem_distinct <> None
    || run.state_latches <> []
    || List.for_all (fun m -> Netlist.num_write_ports m = 0) (Netlist.memories net)
  in
  let proof_checks_at i = config.proof_checks && (lfp_meaningful || i = 0) in
  (* In pure falsification mode the property literal only ever appears under
     negation (the [~p_i] assumption), so the polarity-aware encoder can
     drop the downward implications of its cone.  The proof checks also use
     it positively (CP clauses). *)
  let prop_pol = if config.proof_checks then Cnf.Both else Cnf.Neg in
  let deadline_passed () =
    match config.deadline with
    | Some d -> Obs.now () > d
    | None -> false
  in
  let completed = ref (-1) in
  let verdict =
    try
      for i = 0 to config.max_depth do
        if deadline_passed () then raise (Done (Timed_out !completed));
        Obs.span "depth" ~attrs:[ ("k", Obs.Int i) ] (fun () ->
        let p_i =
          timed_encode run (fun () ->
              hooks.on_unroll unr i;
              (* Watched memory-interface bits must be encoded with full
                 polarity: a polarity-reduced auxiliary variable's model
                 value is not faithful to the circuit, which would produce
                 spurious replay mismatches. *)
              List.iter
                (fun (_, s, _) -> ignore (Cnf.lit unr ~frame:i s))
                run.watches;
              let p_i = Cnf.lit ~pol:prop_pol unr ~frame:i run.prop in
              (* Loop-free-path constraints only serve the termination
                 checks. *)
              if proof_checks_at i then add_lfp_pairs run i;
              p_i)
        in
        if proof_checks_at i then begin
          (* Forward termination: no loop-free path of length i from I. *)
          if timed_solve ~what:"lfp" run [ act_init; run.act_lfp ] = Solver.Unsat then
            raise (Done (Proof { depth = i; kind = Forward_diameter }));
          (* Backward termination: property inductive at depth i. *)
          if
            timed_solve ~what:"induction" run
              [ run.act_lfp; run.act_cp; Lit.negate p_i ]
            = Solver.Unsat
          then raise (Done (Proof { depth = i; kind = Backward_induction }))
        end;
        (* Falsification: counterexample of length exactly i. *)
        (match timed_solve run [ act_init; Lit.negate p_i ] with
        | Solver.Sat -> raise (Done (Counterexample (extract_trace run i)))
        | Solver.Unsat ->
          if config.collect_reasons then begin
            let before = Hashtbl.length run.reasons + Hashtbl.length run.mem_reasons in
            collect_reasons_from_core run;
            if Hashtbl.length run.reasons + Hashtbl.length run.mem_reasons <> before
            then run.reasons_last_changed <- i
          end);
        completed := i;
        (* CP_{i+1} = CP_i /\ P_i — only the proof checks assume [act_cp],
           so in pure falsification mode the clause is dead weight. *)
        if config.proof_checks then Cnf.add_clause unr [ Lit.negate run.act_cp; p_i ];
        match config.stop_on_stable with
        | Some s when config.collect_reasons && i - run.reasons_last_changed >= s ->
          raise (Done (Reasons_stable i))
        | Some _ | None -> ())
      done;
      Bounded_safe config.max_depth
    with
    | Done v -> v
    | Solver.Timeout -> Timed_out !completed
    | Solver.Budget_exceeded what -> Out_of_budget { depth = !completed; what }
  in
  let cert_t0 = Obs.now () in
  let certificate = Obs.span "certify" (fun () -> certify_verdict run verdict) in
  let cert_time_s = Obs.now () -. cert_t0 in
  let gc = Gc.quick_stat () in
  let cnf_stats = Cnf.stats unr in
  (* Under a portfolio, the solver telemetry aggregates all instances: the
     work the machine actually did, not just the winner's share. *)
  let sstats =
    match run.portfolio with
    | Some p -> Portfolio.merged_stats p
    | None -> Solver.stats solver
  in
  let stats =
    {
      depths_completed = !completed + 1;
      solve_time = run.solve_time;
      encode_time = run.encode_time;
      cert_time_s;
      proof_steps = (if config.certify then List.length (Solver.proof solver) else 0);
      num_vars = Solver.num_vars solver;
      num_clauses = Solver.num_clauses solver;
      num_conflicts = sstats.Solver.conflicts;
      vars_saved = cnf_stats.Cnf.vars_saved;
      clauses_saved = cnf_stats.Cnf.clauses_saved;
      peak_memory_mb = float_of_int (gc.Gc.heap_words * 8) /. 1e6;
      latch_reasons = Hashtbl.fold (fun l () acc -> l :: acc) run.reasons [];
      memory_reasons =
        List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) run.mem_reasons []);
      reasons_last_changed = run.reasons_last_changed;
      solver_stats = sstats;
    }
  in
  (* The self-contained evidence behind a DRAT-checked UNSAT verdict —
     original clauses, derivation and assumption obligations — for layers
     that persist certificates (lib/vcache) and re-check them independently
     later.  Only for single-instance runs: under a portfolio, obligations
     are spread over per-instance derivations and no single artifact
     re-checks them. *)
  let artifact =
    match (certificate, run.portfolio) with
    | Cert.Certified Cert.Drat_checked, None when run.obligations <> [] ->
      Some
        {
          ca_num_vars = Solver.num_vars solver;
          ca_original = Solver.export_clauses solver;
          ca_proof = Solver.proof solver;
          ca_obligations = List.rev_map (fun (cube, _) -> cube) run.obligations;
        }
    | _ -> None
  in
  { verdict; stats; certificate; artifact }

(* Multi-property mode: one incremental run over the shared unrolling.  Each
   property carries its own CP activation literal and is retired as soon as a
   counterexample or a proof lands. *)
type prop_state = {
  ps_name : string;
  ps_signal : Netlist.signal;
  ps_act_cp : Lit.t;
  mutable ps_verdict : verdict option;
}

let check_all ?(config = default_config) ?(hooks = no_hooks) net ~properties =
  let solver = Solver.create () in
  let portfolio = make_portfolio config solver in
  Solver.set_deadline solver config.deadline;
  Solver.set_conflict_budget solver config.conflict_budget;
  Solver.set_learnt_budget_mb solver config.learnt_mb_budget;
  if config.certify then Solver.set_proof_logging solver true;
  let unr = make_unroller config solver net in
  let run =
    {
      cfg = config;
      hks = hooks;
      net;
      solver;
      unr;
      prop = Netlist.true_;
      prop_name = "";
      act_lfp = Cnf.fresh_lit unr;
      act_cp = Cnf.fresh_lit unr;
      state_latches =
        List.filter (fun l -> not (config.free_latches l)) (Netlist.latches net);
      reasons = Hashtbl.create 64;
      mem_reasons = Hashtbl.create 4;
      watches = (if config.certify then watch_signals net else []);
      portfolio;
      obligations = [];
      reasons_last_changed = 0;
      solve_time = 0.0;
      encode_time = 0.0;
    }
  in
  let act_init = Cnf.act_init unr in
  (* Same policy as [check]: with a memory-distinctness predicate the
     loop-free-path constraints cover the full modeled state and proofs run
     at every depth; without one, empty latch-only constraints must not
     claim a zero diameter while memory state evolves, and only the
     distinctness-free depth-0 checks stay. *)
  let lfp_meaningful =
    run.hks.mem_distinct <> None
    || run.state_latches <> []
    || List.for_all (fun m -> Netlist.num_write_ports m = 0) (Netlist.memories net)
  in
  let proof_checks_at i = config.proof_checks && (lfp_meaningful || i = 0) in
  let prop_pol = if config.proof_checks then Cnf.Both else Cnf.Neg in
  let props =
    List.map
      (fun name ->
        {
          ps_name = name;
          ps_signal = Netlist.find_property net name;
          ps_act_cp = Cnf.fresh_lit unr;
          ps_verdict = None;
        })
      properties
  in
  let undecided () = List.filter (fun p -> p.ps_verdict = None) props in
  let deadline_passed () =
    match config.deadline with
    | Some d -> Obs.now () > d
    | None -> false
  in
  let completed = ref (-1) in
  let budget_hit = ref None in
  (try
     let i = ref 0 in
     while !i <= config.max_depth && undecided () <> [] do
       if deadline_passed () then raise Exit;
       Obs.span "depth" ~attrs:[ ("k", Obs.Int !i) ] (fun () ->
       timed_encode run (fun () ->
           hooks.on_unroll unr !i;
           List.iter
             (fun (_, s, _) -> ignore (Cnf.lit unr ~frame:!i s))
             run.watches;
           if proof_checks_at !i then add_lfp_pairs run !i);
       let pending = undecided () in
       if proof_checks_at !i then begin
         (* Forward diameter: settles every remaining property at once. *)
         if timed_solve ~what:"lfp" run [ act_init; run.act_lfp ] = Solver.Unsat
         then begin
           List.iter
             (fun p ->
               p.ps_verdict <- Some (Proof { depth = !i; kind = Forward_diameter }))
             pending;
           raise Exit
         end;
         List.iter
           (fun p ->
             let p_i = Cnf.lit unr ~frame:!i p.ps_signal in
             if
               timed_solve ~what:"induction" run
                 [ run.act_lfp; p.ps_act_cp; Lit.negate p_i ]
               = Solver.Unsat
             then
               p.ps_verdict <- Some (Proof { depth = !i; kind = Backward_induction }))
           pending
       end;
       List.iter
         (fun p ->
           if p.ps_verdict = None then begin
             let p_i =
               timed_encode run (fun () ->
                   Cnf.lit ~pol:prop_pol unr ~frame:!i p.ps_signal)
             in
             match timed_solve run [ act_init; Lit.negate p_i ] with
             | Solver.Sat ->
               let run_p = { run with prop = p.ps_signal; prop_name = p.ps_name } in
               p.ps_verdict <- Some (Counterexample (extract_trace run_p !i))
             | Solver.Unsat ->
               (* Parity with [check]: record when the reason set last grew,
                  so [stop_on_stable] works in multi-property mode too. *)
               if config.collect_reasons then begin
                 let before =
                   Hashtbl.length run.reasons + Hashtbl.length run.mem_reasons
                 in
                 collect_reasons_from_core run;
                 if Hashtbl.length run.reasons + Hashtbl.length run.mem_reasons <> before
                 then run.reasons_last_changed <- !i
               end
           end)
         pending;
       (* CP updates for the survivors — only the proof checks assume the
          per-property [act_cp]. *)
       if config.proof_checks then
         List.iter
           (fun p ->
             if p.ps_verdict = None then
               let p_i = Cnf.lit unr ~frame:!i p.ps_signal in
               Cnf.add_clause unr [ Lit.negate p.ps_act_cp; p_i ])
           pending;
       completed := !i;
       (match config.stop_on_stable with
       | Some s when config.collect_reasons && !i - run.reasons_last_changed >= s ->
         List.iter
           (fun p ->
             if p.ps_verdict = None then p.ps_verdict <- Some (Reasons_stable !i))
           props;
         raise Exit
       | Some _ | None -> ());
       incr i)
     done
   with
  | Exit | Solver.Timeout -> ()
  | Solver.Budget_exceeded what -> budget_hit := Some what);
  (* One DRAT check serves every UNSAT-backed verdict: all obligations were
     answered by the same incremental solver over the shared unrolling. *)
  let cert_t0 = Obs.now () in
  let unsat_certificate =
    lazy
      (if not config.certify then Cert.Unchecked "certification disabled"
       else begin
         dump_proof run;
         certify_unsat run
       end)
  in
  let certificate_of verdict =
    if not config.certify then Cert.Unchecked "certification disabled"
    else
      Obs.span "certify" (fun () ->
          match verdict with
          | Proof _ | Bounded_safe _ | Reasons_stable _ -> Lazy.force unsat_certificate
          | Counterexample t -> Trace.certify net t
          | Timed_out _ -> Cert.Unchecked "timed out"
          | Out_of_budget { what; _ } -> Cert.Unchecked ("out of budget: " ^ what))
  in
  let gc = Gc.quick_stat () in
  let cnf_stats = Cnf.stats unr in
  (* Under a portfolio, the solver telemetry aggregates all instances: the
     work the machine actually did, not just the winner's share. *)
  let sstats =
    match run.portfolio with
    | Some p -> Portfolio.merged_stats p
    | None -> Solver.stats solver
  in
  let stats =
    {
      depths_completed = !completed + 1;
      solve_time = run.solve_time;
      encode_time = run.encode_time;
      cert_time_s = 0.0;
      proof_steps = (if config.certify then List.length (Solver.proof solver) else 0);
      num_vars = Solver.num_vars solver;
      num_clauses = Solver.num_clauses solver;
      num_conflicts = sstats.Solver.conflicts;
      vars_saved = cnf_stats.Cnf.vars_saved;
      clauses_saved = cnf_stats.Cnf.clauses_saved;
      peak_memory_mb = float_of_int (gc.Gc.heap_words * 8) /. 1e6;
      latch_reasons = Hashtbl.fold (fun l () acc -> l :: acc) run.reasons [];
      memory_reasons =
        List.sort compare (Hashtbl.fold (fun id () acc -> id :: acc) run.mem_reasons []);
      reasons_last_changed = run.reasons_last_changed;
      solver_stats = sstats;
    }
  in
  let results =
    List.map
      (fun p ->
        let verdict =
          match p.ps_verdict with
          | Some v -> v
          | None -> (
            match !budget_hit with
            | Some what -> Out_of_budget { depth = !completed; what }
            | None ->
              if deadline_passed () then Timed_out !completed
              else Bounded_safe config.max_depth)
        in
        let certificate = certificate_of verdict in
        (p.ps_name, { verdict; stats; certificate; artifact = None }))
      props
  in
  let stats = { stats with cert_time_s = Obs.now () -. cert_t0 } in
  let results =
    List.map (fun (name, r) -> (name, { r with stats })) results
  in
  (results, stats)

let pp_verdict ppf = function
  | Proof { depth; kind = Forward_diameter } ->
    Format.fprintf ppf "proof (forward diameter %d)" depth
  | Proof { depth; kind = Backward_induction } ->
    Format.fprintf ppf "proof (induction at depth %d)" depth
  | Counterexample t -> Format.fprintf ppf "counterexample at depth %d" t.Trace.depth
  | Bounded_safe n -> Format.fprintf ppf "no counterexample up to depth %d" n
  | Reasons_stable n -> Format.fprintf ppf "latch reasons stable at depth %d" n
  | Timed_out n -> Format.fprintf ppf "timeout after depth %d" n
  | Out_of_budget { depth; what } ->
    Format.fprintf ppf "out of budget (%s) after depth %d" what depth
