type watch = {
  w_name : string;
  w_signal : Netlist.signal;
  w_enable : Netlist.signal option;
  w_values : bool array;
}

type t = {
  property : string;
  depth : int;
  inputs : (string * bool) list array;
  latch0 : (string * bool) list;
  mem_init : (string * (int * int) list) list;
  watch : watch list;
}

let property_values net trace =
  let prop = Netlist.find_property net trace.property in
  let latch_values l =
    match List.assoc_opt (Netlist.latch_name net l) trace.latch0 with
    | Some v -> v
    | None -> false
  in
  let mem_values m a =
    match List.assoc_opt (Netlist.memory_name m) trace.mem_init with
    | Some words -> ( match List.assoc_opt a words with Some w -> w | None -> 0)
    | None -> 0
  in
  let sim = Simulator.create ~latch_values ~mem_values net in
  Array.init (trace.depth + 1) (fun frame ->
      let frame_inputs =
        if frame < Array.length trace.inputs then trace.inputs.(frame) else []
      in
      let inputs name =
        match List.assoc_opt name frame_inputs with Some v -> v | None -> false
      in
      Simulator.step sim ~inputs;
      Simulator.value sim prop)

let replay net trace =
  let values = property_values net trace in
  not values.(trace.depth)

let certify net trace =
  match Netlist.find_property net trace.property with
  | exception Not_found -> Cert.Unchecked ("no property " ^ trace.property)
  | prop -> (
    let latch_values l =
      match List.assoc_opt (Netlist.latch_name net l) trace.latch0 with
      | Some v -> v
      | None -> false
    in
    let mem_values m a =
      match List.assoc_opt (Netlist.memory_name m) trace.mem_init with
      | Some words -> ( match List.assoc_opt a words with Some w -> w | None -> 0)
      | None -> 0
    in
    let sim = Simulator.create ~latch_values ~mem_values net in
    let exception Mismatch of string in
    try
      for frame = 0 to trace.depth do
        let frame_inputs =
          if frame < Array.length trace.inputs then trace.inputs.(frame) else []
        in
        let inputs name =
          match List.assoc_opt name frame_inputs with Some v -> v | None -> false
        in
        Simulator.step sim ~inputs;
        List.iter
          (fun w ->
            (* Read-data watches are meaningful only while the port is
               enabled: with the enable low EMM leaves the data bus
               unconstrained, while the simulator drives zero. *)
            let live =
              match w.w_enable with
              | None -> true
              | Some e -> Simulator.value sim e
            in
            if live && frame < Array.length w.w_values then begin
              let expect = w.w_values.(frame) in
              let got = Simulator.value sim w.w_signal in
              if got <> expect then
                raise
                  (Mismatch
                     (Printf.sprintf
                        "signal %s differs at cycle %d: model %b, simulator %b"
                        w.w_name frame expect got))
            end)
          trace.watch
      done;
      if Simulator.value sim prop then
        Cert.Refuted
          (Printf.sprintf "property %s holds on the concrete design at depth %d"
             trace.property trace.depth)
      else Cert.Certified Cert.Trace_replayed
    with Mismatch why -> Cert.Refuted why)

let pp ppf t =
  Format.fprintf ppf "@[<v>counterexample for %S at depth %d@," t.property t.depth;
  if t.latch0 <> [] then begin
    Format.fprintf ppf "initial latches:";
    List.iter (fun (n, v) -> Format.fprintf ppf " %s=%b" n v) t.latch0;
    Format.fprintf ppf "@,"
  end;
  List.iter
    (fun (m, words) ->
      Format.fprintf ppf "initial %s:" m;
      List.iter (fun (a, w) -> Format.fprintf ppf " [%d]=%d" a w) words;
      Format.fprintf ppf "@,")
    t.mem_init;
  Array.iteri
    (fun frame assignments ->
      Format.fprintf ppf "frame %d:" frame;
      List.iter (fun (n, v) -> if v then Format.fprintf ppf " %s" n) assignments;
      Format.fprintf ppf "@,")
    t.inputs;
  Format.fprintf ppf "@]"
