(** Counterexample traces and their replay.

    A trace records everything needed to reproduce a property violation on
    the {!Simulator}: the primary-input stimulus per frame, the values of
    arbitrary-initial-value latches, and — for EMM counterexamples over
    memories with arbitrary initial contents — the initial memory words the
    solver chose.  Replaying a trace on the original netlist confirms the
    counterexample is a real design behaviour (and exposes spurious ones
    produced by over-abstraction, as in the paper's Industry-II study). *)

type watch = {
  w_name : string;  (** e.g. ["m.w0.addr[2]"] — memory, port, bit *)
  w_signal : Netlist.signal;
  w_enable : Netlist.signal option;
      (** for read-data bits: the port enable; the bit is only compared in
          cycles where the enable is high (EMM leaves disabled read data
          unconstrained, the simulator drives zero) *)
  w_values : bool array;  (** the solver model's value per frame *)
}
(** One memory-interface bit whose solver-model values were recorded at
    extraction time, for cycle-by-cycle diffing during {!certify}. *)

type t = {
  property : string;
  depth : int;  (** frame at which the property fails *)
  inputs : (string * bool) list array;  (** index = frame *)
  latch0 : (string * bool) list;  (** arbitrary-init latches only *)
  mem_init : (string * (int * int) list) list;
      (** memory name -> (address, word) initial contents constraints *)
  watch : watch list;
      (** memory-interface observations; empty unless the run certified *)
}

val replay : Netlist.t -> t -> bool
(** [replay net trace] simulates the stimulus and returns [true] iff the
    named property evaluates to false at frame [depth] — i.e. the trace is a
    genuine counterexample of [net]. *)

val certify : Netlist.t -> t -> Cert.t
(** Replay the trace on the {e concrete} design (the given netlist, with its
    real memories — not the EMM abstraction) and diff every watched memory
    interface signal cycle by cycle, then require the property to fail at
    [depth].  Returns [Certified Trace_replayed], or [Refuted] naming the
    first diverging signal and cycle. *)

val property_values : Netlist.t -> t -> bool array
(** Value of the property signal at each frame [0 .. depth] during replay. *)

val pp : Format.formatter -> t -> unit
