(** SAT-based bounded model checking with induction proofs and proof
    analysis — the BMC-1 algorithm of the paper (Fig. 1), parameterisable
    into BMC-2 and BMC-3 (Figs. 2–3) through {!hooks} and {!config}.

    At every depth [i] the engine can run three queries against one
    incremental solver, selected by assumption literals:

    - forward termination: [I /\ LFP_i] — unsatisfiable when the forward
      proof diameter is exceeded, proving the property;
    - backward termination (induction step): [LFP_i /\ CP_i /\ ~P_i] —
      unsatisfiable when the property is inductive at depth [i];
    - falsification: [I /\ ~P_i] — satisfiable exactly when a counterexample
      of length [i] exists.

    [LFP_i] are loop-free-path (state distinctness) constraints over the
    non-abstracted latches; [CP_i] asserts the property at all earlier
    depths.  After each unsatisfiable falsification query the engine can
    retrace the refutation and accumulate {e latch reasons} — the proof-based
    abstraction of Fig. 1 lines 10–11. *)

type proof_kind = Forward_diameter | Backward_induction

type verdict =
  | Proof of { depth : int; kind : proof_kind }
  | Counterexample of Trace.t
  | Bounded_safe of int  (** no counterexample up to the bound *)
  | Reasons_stable of int
      (** latch reasons unchanged for [stop_on_stable] depths (PBA) *)
  | Timed_out of int  (** deepest fully analysed depth *)
  | Out_of_budget of { depth : int; what : string }
      (** a {!config} resource budget (conflicts, learnt-DB memory) ran out;
          [depth] is the deepest fully analysed depth and [what] names the
          exhausted resource *)

type stats = {
  depths_completed : int;
  solve_time : float;  (** seconds spent inside the SAT solver *)
  encode_time : float;
      (** seconds spent building the formula: unrolling, memory-modeling
          hooks and loop-free-path constraints *)
  cert_time_s : float;  (** seconds spent certifying the verdict *)
  proof_steps : int;  (** DRAT steps logged (0 unless [certify]) *)
  num_vars : int;
  num_clauses : int;
  num_conflicts : int;
  vars_saved : int;
      (** unroller variables avoided by the simplifying encoder vs. the
          plain per-frame Tseitin baseline (0 when [simplify = false]) *)
  clauses_saved : int;  (** unroller clauses avoided, same baseline *)
  peak_memory_mb : float;
  latch_reasons : Netlist.signal list;
      (** union of latch reasons over all analysed depths *)
  memory_reasons : int list;
      (** ids of memories whose EMM constraints appeared in some refutation *)
  reasons_last_changed : int;  (** depth at which either reason set last grew *)
  solver_stats : Satsolver.Solver.stats;
      (** cumulative CDCL telemetry for the run's solver (restarts, learnt /
          deleted clauses, average LBD, minimised literals, ...) *)
}

type cert_artifact = {
  ca_num_vars : int;
  ca_original : Satsolver.Lit.t list list;
  ca_proof : Cert.Drat.step list;
  ca_obligations : Satsolver.Lit.t list list;
}
(** The self-contained evidence behind a DRAT-checked verdict: re-running
    [Cert.Drat.check] over these fields reproduces the certification with no
    solver involved.  Persisted by the verification-result cache so a warm
    hit can be re-checked instead of trusted. *)

type result = {
  verdict : verdict;
  stats : stats;
  certificate : Cert.t;
      (** [Unchecked] unless [config.certify]; otherwise the DRAT-checker
          outcome for UNSAT-backed verdicts and the concrete-design replay
          outcome for counterexamples *)
  artifact : cert_artifact option;
      (** present exactly when [certificate = Certified Drat_checked] and the
          run was single-instance (no Domain portfolio, whose obligations are
          spread over per-instance derivations); {!check_all} never produces
          one *)
}

type config = {
  max_depth : int;
  deadline : float option;  (** wall-clock limit, [Unix.gettimeofday] scale *)
  proof_checks : bool;  (** false = falsification only (BMC-2 style) *)
  collect_reasons : bool;  (** PBA bookkeeping from UNSAT cores *)
  stop_on_stable : int option;
      (** stop once latch reasons are unchanged for this many depths *)
  free_latches : Netlist.signal -> bool;
      (** abstracted latches become pseudo-primary inputs *)
  simplify : bool;
      (** use the simplifying unroller (constant folding, structural
          hashing, polarity-aware emission — see {!Cnf.create});
          [false] selects the plain paper-faithful encoding *)
  certify : bool;
      (** log a DRAT proof, record every UNSAT obligation, watch the memory
          interface signals, and certify the final verdict (see
          {!result.certificate}) *)
  conflict_budget : int option;
      (** conflicts allowed per SAT query before the run reports
          {!Out_of_budget} *)
  learnt_mb_budget : float option;
      (** learnt-clause database ceiling in MB, same failure mode *)
  proof_file : string option;
      (** with [certify], also write the DRAT derivation to this path *)
  portfolio : Portfolio.config option;
      (** with [Some cfg] and [cfg.domains > 1], every SAT query is raced
          by an in-process Domain portfolio (see {!Portfolio}); [None] (the
          default) solves sequentially.  Clause sharing is forced off when
          [certify] (imports would invalidate the DRAT logs; each instance
          keeps a self-contained log and the winner's is checked) or
          [collect_reasons] (imported clauses have no local derivation, so
          cores would under-approximate) is set.  [proof_file] always dumps
          the primary instance's derivation. *)
}

val default_config : config
(** [max_depth = 100], no deadline, proof checks on, no PBA collection,
    simplification on, certification off, no budgets. *)

type hooks = {
  on_unroll : Cnf.t -> int -> unit;
      (** called once per depth before any query at that depth; the EMM
          layer injects its memory-modeling constraints here *)
  mem_init_of_model : Cnf.t -> int -> (string * (int * int) list) list;
      (** called on a satisfiable falsification at the given depth to
          recover initial memory contents for the trace *)
  mem_distinct : (Cnf.t -> i:int -> j:int -> Satsolver.Lit.t) option;
      (** [Some f]: [f unr ~i ~j] (with [j < i], both frames already
          unrolled) returns a literal the solver may set true only when the
          modeled memory contents at frame [i] can differ from frame [j] —
          some enabled write in [j, i) stored a value the addressed location
          did not already hold.  The engine ORs it into the loop-free-path
          distinctness clause of every frame pair, so termination proofs
          (forward diameter and backward induction) become sound for designs
          whose latch state repeats while memory contents diverge, and run
          at every depth even on latch-free write-port designs.  The EMM
          layer provides its [mem_distinct_lit] here.  [None] (the
          [no_hooks] default): distinctness ranges over latches only, and
          the engine conservatively disables termination checks past depth 0
          when the latch vector is empty but some memory has a write port. *)
}

val no_hooks : hooks

val check : ?config:config -> ?hooks:hooks -> Netlist.t -> property:string -> result

val check_all :
  ?config:config ->
  ?hooks:hooks ->
  Netlist.t ->
  properties:string list ->
  (string * result) list * stats
(** Check many properties in a single incremental run, sharing the unrolled
    transition relation, the EMM constraints and all learnt clauses — the way
    the paper's platform processes the 216 reachability properties of its
    first industry case study.  Per depth, every still-undecided property
    gets its own falsification query; the (property-independent)
    forward-diameter check, when it fires, settles every survivor at once,
    and per-property backward-induction checks run against per-property
    assumption literals.  Returns the per-property results plus the shared
    run statistics.  With [collect_reasons] and [stop_on_stable] set, the
    run stops once the shared reason set has been stable for the requested
    number of depths, and every still-undecided property is reported as
    [Reasons_stable] — the same contract as {!check}. *)

val pp_verdict : Format.formatter -> verdict -> unit
