type entry = {
  name : string;
  description : string;
  build : unit -> Netlist.t;
}

let quicksort n =
  {
    name = Printf.sprintf "quicksort-n%d" n;
    description =
      Printf.sprintf
        "quicksort machine over %d elements (array + recursion stack memories); properties P1, P2"
        n;
    build = (fun () -> Quicksort.build (Quicksort.default_config ~n));
  }

let quicksort_buggy n =
  {
    name = Printf.sprintf "quicksort-buggy-n%d" n;
    description =
      Printf.sprintf "quicksort machine over %d elements with a flipped comparison (P1 fails)" n;
    build = (fun () -> Quicksort.build ~buggy:true (Quicksort.default_config ~n));
  }

let all () =
  [
    quicksort 3;
    quicksort 4;
    quicksort 5;
    quicksort_buggy 3;
    {
      name = "image-filter";
      description =
        "low-pass image filter with two line-buffer memories (Industry I equivalent); properties P18..P233";
      build = (fun () -> Image_filter.build Image_filter.default_config);
    };
    {
      name = "multiport";
      description =
        "lookup engine, one memory with 1 write / 3 read ports and a dead write path (Industry II equivalent); properties hit0..hit7, mem_quiet";
      build = (fun () -> Multiport.build Multiport.default_config);
    };
    {
      name = "multiport-rd0";
      description = "multiport engine with the memory removed and read data tied to 0";
      build = (fun () -> Multiport.build ~rd_tied_zero:true Multiport.default_config);
    };
    {
      name = "fifo";
      description = "synchronous FIFO with data-integrity scoreboard; properties fifo_data, fifo_count";
      build = (fun () -> Fifo.build Fifo.default_config);
    };
    {
      name = "fifo-buggy";
      description = "FIFO that accepts pushes when full (overwrite bug)";
      build = (fun () -> Fifo.build ~buggy:true Fifo.default_config);
    };
    {
      name = "bubblesort-n4";
      description =
        "bubble-sort machine over 4 elements (single memory, quadratic diameter); properties sorted, bounds";
      build = (fun () -> Bubblesort.build (Bubblesort.default_config ~n:4));
    };
    {
      name = "bubblesort-buggy-n4";
      description = "bubble-sort machine with inverted comparison (sorted fails)";
      build = (fun () -> Bubblesort.build ~buggy:true (Bubblesort.default_config ~n:4));
    };
    {
      name = "memcpy";
      description =
        "DMA engine copying 6 words between two memories, then verifying; property copied";
      build = (fun () -> Memcpy.build (Memcpy.default_config ~n:6));
    };
    {
      name = "memcpy-buggy";
      description = "DMA engine that skips the last word (copy bug)";
      build = (fun () -> Memcpy.build ~buggy:true (Memcpy.default_config ~n:6));
    };
    {
      name = "cache";
      description =
        "direct-mapped write-through cache (tag, data and backing memories); properties coherent, fill_on_miss";
      build = (fun () -> Cache.build Cache.default_config);
    };
    {
      name = "cache-buggy";
      description = "cache that forgets to update the data store on write hits";
      build = (fun () -> Cache.build ~buggy:true Cache.default_config);
    };
    {
      name = "latchpoor";
      description =
        "1-bit counter + filling memory, the latch-only termination over-proof regression; properties reach1 (fails), never2 (holds)";
      build = (fun () -> Latchpoor.build Latchpoor.default_config);
    };
    {
      name = "regfile";
      description =
        "register file with 1 write / 2 read ports; property read_consistent";
      build = (fun () -> Regfile.build Regfile.default_config);
    };
    {
      name = "regfile-racy";
      description = "register file with two colliding write ports (for `emmver races`)";
      build = (fun () -> Regfile.build ~dual_write:true Regfile.default_config);
    };
  ]

let find name = List.find (fun e -> e.name = name) (all ())
let names () = List.map (fun e -> e.name) (all ())
