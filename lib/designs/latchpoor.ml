type config = { counter_width : int; data_width : int }

let default_config = { counter_width = 1; data_width = 2 }

let build cfg =
  let ctx = Hdl.create () in
  let cw = cfg.counter_width and dw = cfg.data_width in
  let mem =
    Hdl.memory ctx ~name:"m" ~addr_width:cw ~data_width:dw ~init:Netlist.Zeros
  in
  let cnt = Hdl.reg ctx "cnt" ~width:cw in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  Hdl.write_port ctx mem ~addr:cnt ~data:(Hdl.const ~width:dw 1)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:cnt ~enable:Netlist.true_ in
  Hdl.assert_always ctx "reach1" (Netlist.not_ (Hdl.eq_const ctx rd 1));
  Hdl.assert_always ctx "never2" (Netlist.not_ (Hdl.eq_const ctx rd 2));
  Hdl.netlist ctx
