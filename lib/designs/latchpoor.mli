(** The fixed latch-poor over-proof regression: a [counter_width]-bit counter
    is the {e only} latch state, while a zero-initialised memory fills with
    the constant 1 at the counter's address.  Latch state repeats with period
    [2^counter_width] but memory contents keep evolving, so loop-free-path
    termination constraints over latches alone "prove" a forward diameter of
    [2^counter_width] — masking the reachable failure one write later.  The
    memory-state distinctness predicates ([Emm.mem_distinct_lit]) keep the
    paths distinct and restore the true verdicts.

    Property ["reach1"]: a read never returns 1 — {b false}, first
    falsifiable at depth [2^counter_width] (the frame the oldest write
    becomes visible), exactly where the latch-only engine over-proves.

    Property ["never2"]: a read never returns 2 — {b true} (only 0 and 1
    ever occupy the memory), provable by induction once the distinctness
    constraints let termination checks run. *)

type config = { counter_width : int; data_width : int }

val default_config : config

val build : config -> Netlist.t
