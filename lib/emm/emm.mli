(** Efficient Memory Modeling constraints — the paper's core contribution.

    Instead of expanding memory arrays into latches, the verification model
    keeps each memory's interface signals (Addr, WD, RD, WE, RE per port) and
    adds, at every BMC unrolling depth [k], constraints enforcing the data
    forwarding semantics of equation (3):

    {v (E(j,k,w,r) /\ WE(j,w) /\ RE(k,r) /\ no later write to the address)
        ->  RD(k,r) = WD(j,w) v}

    The implementation follows §3–4 of the paper:

    - {b Address comparison} — per (write frame, write port) pair, variables
      [e(i)] per address bit and an equality variable [E], encoded with
      [4m+1] CNF clauses ([m] = address width).
    - {b Exclusive valid-read chains} — equation (4): signals [PS] and [S]
      built from 2-input AND gates (3 gates per frame and write port), such
      that at most one matching write pair can be selected and the selection
      immediately invalidates all others.
    - {b Read-data constraints} — equation (5): [2n] clauses per pair ([n] =
      data width) plus a read-validity clause.
    - {b Arbitrary initial state} — §4.2: a fresh data word [V(k,r)] per read
      access constrained by [N -> RD = V] where [N] ("never written") is the
      chain head, plus the pairwise consistency constraints of equation (6)
      between all read accesses.  Memories declared with [Zeros] initial
      contents additionally force [RD = 0] for unwritten reads, guarded by
      the initial-state activation literal so that backward-induction queries
      still see an arbitrary start state.

    All EMM clauses are tagged with the memory module, so UNSAT cores reveal
    which memories a proof actually depends on.

    {b Simplify mode.}  On top of the paper-faithful encoding above, the
    layer has a simplifying mode (enabled by default whenever the underlying
    unroller was created with [simplify = true], see {!Cnf.create}) that is
    logically equivalent under the activation-literal discipline but
    considerably smaller:

    - the standalone equality variable [E] and the AND gate of [s = E /\ WE]
      merge into one network [s <-> (WA = RA) /\ WE] ([4m+2] clauses);
    - per-bit equality terms are {e shared} across the whole unrolling
      through a structural hash keyed on the literal pair, so equation (3)
      select networks and equation (6) pairwise constraints reuse the same
      equality sub-terms instead of re-encoding them per use;
    - each exclusivity chain step emits [S = s /\ PS'] and [PS = ~s /\ PS']
      jointly in 5 clauses instead of two 3-clause gates;
    - the arbitrary initial word [V] of §4.2 is represented by the read-data
      bus itself (when [N] holds the read observes the initial word), saving
      [n] variables and [2n] clauses per access;
    - equation (6) pair variables are polarity-reduced: only
      [(premises -> u)] and [(u -> V = V')] are emitted;
    - constants (e.g. hard-wired addresses or enables after frame-0 constant
      folding) propagate through all of the above, deleting clauses and
      entire select networks.

    {b Memory-state distinctness.}  The engine's loop-free-path termination
    constraints range over latch state; {!mem_distinct_lit} extends them to
    memory contents with the same interface vocabulary.  For a frame pair
    [(i, j)] it returns a literal [D] with [D -> chg(j) \/ ... \/ chg(i-1)],
    where [chg(f)] may hold only when some enabled write at frame [f] stores
    a value its target location does not already hold at [f] — the value is
    a {e phantom read}: an interface word constrained by the same select
    networks, exclusivity chain and equation-(6) machinery as a real read
    port with [RE = true].  [D] occurs only positively in the engine's LFP
    clauses, so all implications are one-directional; phantom reads are
    memoized per (memory, frame, address bus) and [chg] per frame, so the
    quadratically many frame pairs share linearly many phantom reads. *)

type counts = {
  addr_clauses : int;  (** address-comparison CNF clauses *)
  excl_gates : int;  (** 2-input gates of the exclusivity chains (eq. 4) *)
  data_clauses : int;  (** read-data and validity clauses (eq. 5) *)
  init_clauses : int;  (** arbitrary/zero initial-state clauses (§4.2) *)
  init_pairs : int;  (** equation (6) pairwise consistency constraints *)
  aux_vars : int;  (** auxiliary solver variables introduced *)
  saved_vars : int;
      (** variables avoided by simplify mode vs. the plain encoding of the
          same ports and depths (0 in plain mode) *)
  saved_clauses : int;  (** clauses avoided, same baseline *)
  distinct_preds : int;
      (** predicate variables of the memory-state distinctness machinery:
          per-bit change witnesses, per-write and per-frame change
          predicates, and the per-frame-pair distinctness literals *)
  distinct_clauses : int;
      (** their defining clauses (the underlying phantom-read clauses are
          counted under the addr/data/init/pairs categories above) *)
  encode_time_s : float;  (** wall time spent generating EMM constraints *)
}

val zero_counts : counts
val add_counts : counts -> counts -> counts
val pp_counts : Format.formatter -> counts -> unit

type t

val create :
  ?memories:Netlist.memory list ->
  ?init_consistency:bool ->
  ?simplify:bool ->
  Cnf.t ->
  t
(** Prepare EMM generation over the given unroller.  [memories] restricts
    modeling to a subset (PBA memory abstraction, §4.3); defaults to all
    memories of the netlist.  [init_consistency] (default [true]) controls
    the equation (6) pairwise constraints — disabling them reproduces the
    imprecise arbitrary-initial-state modeling the paper warns about, and is
    used by the ablation benchmarks.  [simplify] selects the simplifying
    encoding described above; it defaults to [Cnf.simplify_enabled] of the
    unroller, and [false] always selects the paper-faithful plain encoding
    (the {!predicted_clauses}/{!predicted_gates} formulas only apply to
    plain mode).  Raises [Invalid_argument] on a memory with concrete
    [Words] initial contents — EMM supports [Zeros] and [Arbitrary], as in
    the paper. *)

val add_constraints : t -> int -> unit
(** [add_constraints t k] is the procedure [EMM_Constraints(k)] of Fig. 2:
    generates the constraints defining all read accesses at depth [k]
    against writes at depths [0..k-1].  Must be called for consecutive
    depths starting at 0. *)

val counts_total : t -> counts
(** Cumulative counts over all depths, including the distinctness
    constraints built by {!mem_distinct_lit} (which run outside any single
    depth). *)

val counts_at : t -> int -> counts
(** Constraints generated by [add_constraints t k] alone. *)

val mem_distinct_lit : t -> i:int -> j:int -> Satsolver.Lit.t
(** [mem_distinct_lit t ~i ~j] (with [0 <= j < i] and frame [i] unrolled) is
    a literal the solver may set true only when the modeled memory contents
    at frame [i] can differ from frame [j]: it implies that some enabled
    write in [j, i) stored a value the addressed location did not already
    hold.  Memoized per pair; the per-frame change predicates and phantom
    reads beneath it are shared across pairs.  Plugged into the
    [mem_distinct] field of {!Bmc.Engine.hooks} by {!hooks} so termination proofs stay
    sound when latch state repeats while memory contents diverge.  Raises
    [Invalid_argument] outside the encoded depth range. *)

val mem_init_of_model : t -> (string * (int * int) list) list
(** After a satisfiable query: initial memory contents consistent with the
    model, reconstructed from the never-written read accesses (their [V]
    words and read addresses). *)

(** {2 Predicted constraint sizes (paper §4.1)} *)

val predicted_clauses : aw:int -> dw:int -> k:int -> writes:int -> reads:int -> int
(** [((4m+2n+1)kW + 2n+1) R] — clauses added at depth [k] by the forwarding
    constraints (excluding the §4.2 initial-state machinery). *)

val predicted_gates : k:int -> writes:int -> reads:int -> int
(** [3kWR] — exclusivity-chain gates added at depth [k]. *)

(** {2 Data-race detection}

    The paper's multi-port semantics assume race freedom — "a memory location
    can be updated at any given cycle through only one write port" — and
    remark that checking for races is an easy extension.  This is that
    extension: a bounded search for a reachable cycle in which two write
    ports of the same memory are simultaneously enabled at the same
    address. *)

type race = {
  race_memory : string;
  race_depth : int;
  race_ports : int * int;
  race_trace : Bmc.Trace.t;  (** input stimulus reaching the race *)
}

val find_data_race :
  ?max_depth:int -> ?deadline:float -> Netlist.t -> race option
(** [None] when no race is reachable within the bound.  Memories with fewer
    than two write ports are trivially race-free. *)

(** {2 BMC with EMM} *)

val hooks :
  ?memories:Netlist.memory list ->
  ?init_consistency:bool ->
  ?simplify:bool ->
  ?mem_distinct:bool ->
  Netlist.t ->
  Bmc.Engine.hooks * (unit -> counts)
(** Engine hooks implementing BMC-2/BMC-3: constraint injection per depth,
    counterexample memory-state extraction, and memory-state distinctness
    for the loop-free-path termination checks.  [mem_distinct] (default
    [true]) wires {!mem_distinct_lit} into the engine; [false] reproduces
    the historical latch-only distinctness (termination checks past depth 0
    are then disabled for latch-free write-port designs) and exists for the
    over-proof mutation tests and ablation benchmarks.  The thunk reports
    cumulative counts once the run has started. *)

val check :
  ?config:Bmc.Engine.config ->
  ?memories:Netlist.memory list ->
  ?init_consistency:bool ->
  ?simplify:bool ->
  ?mem_distinct:bool ->
  Netlist.t ->
  property:string ->
  Bmc.Engine.result * counts
(** BMC-3 (Fig. 3 without the PBA lines unless enabled in [config]): the
    engine's induction proofs and falsification over the EMM model. *)

val check_many :
  ?config:Bmc.Engine.config ->
  ?memories:Netlist.memory list ->
  ?init_consistency:bool ->
  ?simplify:bool ->
  ?mem_distinct:bool ->
  Netlist.t ->
  properties:string list ->
  (string * Bmc.Engine.result) list * Bmc.Engine.stats * counts
(** All properties in one incremental run over a shared unrolling and shared
    EMM constraints — the methodology behind the paper's Industry-I numbers
    (206 witnesses from one 400-second run). *)
