module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

type counts = {
  addr_clauses : int;
  excl_gates : int;
  data_clauses : int;
  init_clauses : int;
  init_pairs : int;
  aux_vars : int;
  saved_vars : int;
  saved_clauses : int;
  distinct_preds : int;
  distinct_clauses : int;
  encode_time_s : float;
}

let zero_counts =
  {
    addr_clauses = 0;
    excl_gates = 0;
    data_clauses = 0;
    init_clauses = 0;
    init_pairs = 0;
    aux_vars = 0;
    saved_vars = 0;
    saved_clauses = 0;
    distinct_preds = 0;
    distinct_clauses = 0;
    encode_time_s = 0.0;
  }

let add_counts a b =
  {
    addr_clauses = a.addr_clauses + b.addr_clauses;
    excl_gates = a.excl_gates + b.excl_gates;
    data_clauses = a.data_clauses + b.data_clauses;
    init_clauses = a.init_clauses + b.init_clauses;
    init_pairs = a.init_pairs + b.init_pairs;
    aux_vars = a.aux_vars + b.aux_vars;
    saved_vars = a.saved_vars + b.saved_vars;
    saved_clauses = a.saved_clauses + b.saved_clauses;
    distinct_preds = a.distinct_preds + b.distinct_preds;
    distinct_clauses = a.distinct_clauses + b.distinct_clauses;
    encode_time_s = a.encode_time_s +. b.encode_time_s;
  }

let pp_counts ppf c =
  Format.fprintf ppf
    "addr-clauses=%d excl-gates=%d data-clauses=%d init-clauses=%d init-pairs=%d \
     aux-vars=%d saved-vars=%d saved-clauses=%d distinct-preds=%d \
     distinct-clauses=%d encode=%.3fs"
    c.addr_clauses c.excl_gates c.data_clauses c.init_clauses c.init_pairs c.aux_vars
    c.saved_vars c.saved_clauses c.distinct_preds c.distinct_clauses c.encode_time_s

(* One read access: frame, read port, its "never written" chain head N, the
   initial-data word V, and the read-address literals (for equation (6)
   pairing and for initial-state extraction).  In simplify mode V is the
   read-data bus itself: when N holds the read observes the initial word, so
   no separate V variables are needed. *)
type access = {
  a_frame : int;
  a_port : int;
  n_lit : Lit.t;
  v_lits : Lit.t array;
  ra_lits : Lit.t array;
}

type mem_state = {
  mem : Netlist.memory;
  tag : int;
  mutable accesses : access list; (* newest first *)
}

type t = {
  unr : Cnf.t;
  mems : mem_state list;
  init_consistency : bool;
  simplify : bool;
  (* Shared equality terms, live for the whole unrolling (simplify mode):
     per-bit equality variables, full address-equality variables and merged
     select networks, each keyed on the literal tuple (plus the memory tag,
     so UNSAT-core attribution stays per-memory). *)
  e_memo : (int * Lit.t * Lit.t, Lit.t) Hashtbl.t;
  eq_memo : (int * Lit.t array * Lit.t array, Lit.t) Hashtbl.t;
  s_memo : (int * Lit.t array * Lit.t array * Lit.t, Lit.t) Hashtbl.t;
  (* Memory-state distinctness state (see [mem_distinct_lit]): phantom read
     accesses per (memory tag, frame, address bus), the per-frame
     "this step changes memory" predicates, and the per-(i, j) distinctness
     literals handed to the engine's loop-free-path clauses. *)
  distinct_tag : int;
  phantom_memo : (int * int * Lit.t array, access) Hashtbl.t;
  chg_memo : (int, Lit.t) Hashtbl.t;
  distinct_memo : (int * int, Lit.t) Hashtbl.t;
  mutable next_depth : int;
  mutable emitted : int; (* clauses actually emitted by this layer *)
  per_depth : (int, counts) Hashtbl.t;
  mutable current : counts; (* accumulator for the depth being generated *)
  mutable extra : counts;
      (* distinctness constraints built outside [add_constraints] (the engine
         requests them per frame pair, after the depth snapshot) *)
}

let create ?memories ?(init_consistency = true) ?simplify unr =
  let net = Cnf.net unr in
  let simplify =
    match simplify with Some s -> s | None -> Cnf.simplify_enabled unr
  in
  let mems = match memories with Some ms -> ms | None -> Netlist.memories net in
  let mems =
    List.map
      (fun mem ->
        (match Netlist.memory_init mem with
        | Netlist.Words _ ->
          invalid_arg
            (Printf.sprintf "Emm.create: memory %s has concrete initial words"
               (Netlist.memory_name mem))
        | Netlist.Zeros | Netlist.Arbitrary -> ());
        let tag = Cnf.tag_for unr (Cnf.Tag.Memory (Netlist.memory_id mem)) in
        { mem; tag; accesses = [] })
      mems
  in
  {
    unr;
    mems;
    init_consistency;
    simplify;
    e_memo = Hashtbl.create 256;
    eq_memo = Hashtbl.create 64;
    s_memo = Hashtbl.create 256;
    distinct_tag = Cnf.tag_for unr (Cnf.Tag.Misc "emm-mem-distinct");
    phantom_memo = Hashtbl.create 64;
    chg_memo = Hashtbl.create 64;
    distinct_memo = Hashtbl.create 64;
    next_depth = 0;
    emitted = 0;
    per_depth = Hashtbl.create 64;
    current = zero_counts;
    extra = zero_counts;
  }

let fresh t =
  t.current <- { t.current with aux_vars = t.current.aux_vars + 1 };
  Cnf.fresh_lit t.unr

let bump_addr t n = t.current <- { t.current with addr_clauses = t.current.addr_clauses + n }
let bump_data t n = t.current <- { t.current with data_clauses = t.current.data_clauses + n }
let bump_init t n = t.current <- { t.current with init_clauses = t.current.init_clauses + n }
let bump_pairs t n = t.current <- { t.current with init_pairs = t.current.init_pairs + n }
let bump_gates t n = t.current <- { t.current with excl_gates = t.current.excl_gates + n }

let bump_saved t v c =
  t.current <-
    {
      t.current with
      saved_vars = t.current.saved_vars + v;
      saved_clauses = t.current.saved_clauses + c;
    }

let bump_distinct t ~preds ~clauses =
  t.current <-
    {
      t.current with
      distinct_preds = t.current.distinct_preds + preds;
      distinct_clauses = t.current.distinct_clauses + clauses;
    }

(* Emission wrapper tracking the clauses this layer actually produced. *)
let emitc ?tag t lits =
  t.emitted <- t.emitted + 1;
  Cnf.add_clause ?tag t.unr lits

let lfalse t = Cnf.false_lit t.unr
let ltrue t = Lit.negate (Cnf.false_lit t.unr)
let is_f t l = l = lfalse t
let is_t t l = l = Lit.negate (lfalse t)

(* A 2-input AND "gate" in the hybrid representation: fresh variable plus the
   three defining clauses.  Counted as one exclusivity gate, per the paper's
   accounting, unless [counted] is false (eq. (6) helper gates are reported
   through [init_pairs] instead).  Plain-mode encoding. *)
let and_gate ?(counted = true) t ~tag a b =
  let v = fresh t in
  emitc ~tag t [ Lit.negate v; a ];
  emitc ~tag t [ Lit.negate v; b ];
  emitc ~tag t [ v; Lit.negate a; Lit.negate b ];
  if counted then bump_gates t 1;
  v

(* Address-equality variable over two literal buses, with the paper's 4m+1
   clause encoding: per bit, (E -> (a=b)) and ((a=b) -> e); finally
   (/\ e -> E).  Plain-mode encoding. *)
let addr_equal t ~tag ~bump a_bus b_bus =
  let m = Array.length a_bus in
  let e_vars = Array.make m (Lit.pos 0) in
  let eq = fresh t in
  for i = 0 to m - 1 do
    let a = a_bus.(i) and b = b_bus.(i) in
    let e = fresh t in
    e_vars.(i) <- e;
    (* E -> (a = b) *)
    emitc ~tag t [ Lit.negate eq; Lit.negate a; b ];
    emitc ~tag t [ Lit.negate eq; a; Lit.negate b ];
    (* (a = b) -> e *)
    emitc ~tag t [ Lit.negate a; Lit.negate b; e ];
    emitc ~tag t [ a; b; e ]
  done;
  (* (/\ e) -> E *)
  emitc ~tag t (eq :: Array.to_list (Array.map Lit.negate e_vars));
  bump t ((4 * m) + 1);
  eq

(* {2 Simplify-mode equality networks}

   Bits of a bus pair are classified once: syntactically equal (dropped),
   complementary (the equality is constantly false), one side constant (the
   bit-equality {e is} the other literal, no clauses), or general (a shared
   one-directional equality variable e with (a=b) -> e, two clauses, memoized
   per memory tag).  The e variables only ever occur as premises, so the
   missing direction is never needed. *)

type bit_class =
  | Bit_conflict (* a = ~b: never equal *)
  | Bit_exact of Lit.t (* equality reduces to this literal, both directions *)
  | Bit_e of Lit.t * Lit.t * Lit.t (* (a, b, e): e one-directional premise *)

let classify_bit t ~tag a b =
  if a = b then Bit_exact (ltrue t)
  else if a = Lit.negate b then Bit_conflict
  else if is_t t a then Bit_exact b
  else if is_f t a then Bit_exact (Lit.negate b)
  else if is_t t b then Bit_exact a
  else if is_f t b then Bit_exact (Lit.negate a)
  else
    let key = (tag, min a b, max a b) in
    let e =
      match Hashtbl.find_opt t.e_memo key with
      | Some e -> e
      | None ->
        let e = fresh t in
        (* (a = b) -> e *)
        emitc ~tag t [ Lit.negate a; Lit.negate b; e ];
        emitc ~tag t [ a; b; e ];
        Hashtbl.replace t.e_memo key e;
        e
    in
    Bit_e (a, b, e)

let classify_bus t ~tag a_bus b_bus =
  let m = Array.length a_bus in
  let rec go i acc =
    if i >= m then Some (List.rev acc)
    else
      match classify_bit t ~tag a_bus.(i) b_bus.(i) with
      | Bit_conflict -> None
      | Bit_exact e when is_t t e -> go (i + 1) acc
      | c -> go (i + 1) (c :: acc)
  in
  go 0 []

(* Full address-equality literal (simplify mode): constant-folded, memoized
   on the bus pair, down-clauses direct on the bits, up-clause through the
   shared e premises. *)
let eq_lit t ~tag a_bus b_bus =
  let a_bus, b_bus = if a_bus <= b_bus then (a_bus, b_bus) else (b_bus, a_bus) in
  let key = (tag, a_bus, b_bus) in
  match Hashtbl.find_opt t.eq_memo key with
  | Some l -> l
  | None ->
    let l =
      match classify_bus t ~tag a_bus b_bus with
      | None -> lfalse t
      | Some [] -> ltrue t
      | Some [ Bit_exact e ] -> e
      | Some bits ->
        let eq = fresh t in
        let premises =
          List.map
            (fun c ->
              match c with
              | Bit_conflict -> assert false
              | Bit_exact e ->
                emitc ~tag t [ Lit.negate eq; e ];
                e
              | Bit_e (a, b, e) ->
                (* eq -> (a = b) *)
                emitc ~tag t [ Lit.negate eq; Lit.negate a; b ];
                emitc ~tag t [ Lit.negate eq; a; Lit.negate b ];
                e)
            bits
        in
        (* (/\ e) -> eq *)
        emitc ~tag t (eq :: List.map Lit.negate premises);
        eq
    in
    Hashtbl.replace t.eq_memo key l;
    l

(* Merged select network (simplify mode): s <-> (wa = ra) /\ we in 4m+2
   clauses, skipping the standalone E variable, memoized on the literal
   tuple so identical (write bus, read bus, enable) combinations share one
   network across ports and depths. *)
let s_net t ~tag wa ra we =
  let wa, ra = if wa <= ra then (wa, ra) else (ra, wa) in
  let key = (tag, wa, ra, we) in
  match Hashtbl.find_opt t.s_memo key with
  | Some s -> s
  | None ->
    let s =
      if is_f t we then lfalse t
      else
        match classify_bus t ~tag wa ra with
        | None -> lfalse t
        | Some [] -> we (* addresses always equal: s = we *)
        | Some [ Bit_exact e ] when is_t t we -> e
        | Some bits ->
          let s = fresh t in
          let premises =
            List.map
              (fun c ->
                match c with
                | Bit_conflict -> assert false
                | Bit_exact e ->
                  emitc ~tag t [ Lit.negate s; e ];
                  e
                | Bit_e (a, b, e) ->
                  (* s -> (a = b) *)
                  emitc ~tag t [ Lit.negate s; Lit.negate a; b ];
                  emitc ~tag t [ Lit.negate s; a; Lit.negate b ];
                  e)
              bits
          in
          let premises = if is_t t we then premises else we :: premises in
          if not (is_t t we) then emitc ~tag t [ Lit.negate s; we ];
          (* (/\ e /\ we) -> s *)
          emitc ~tag t (s :: List.map Lit.negate premises);
          s
    in
    Hashtbl.replace t.s_memo key s;
    s

(* One exclusivity chain step (simplify mode): S = s /\ ps', PS = ~s /\ ps'
   jointly in five clauses instead of two 3-clause gates, with constant
   folding at both inputs. *)
let chain_pair t ~tag s ps' =
  if is_t t s then (ps', lfalse t)
  else if is_f t s then (lfalse t, ps')
  else if is_f t ps' then (lfalse t, lfalse t)
  else if is_t t ps' then (s, Lit.negate s)
  else begin
    let sel = fresh t in
    let ps = fresh t in
    emitc ~tag t [ Lit.negate sel; s ];
    emitc ~tag t [ Lit.negate sel; ps' ];
    emitc ~tag t [ Lit.negate ps; Lit.negate s ];
    emitc ~tag t [ Lit.negate ps; ps' ];
    emitc ~tag t [ Lit.negate ps'; sel; ps ];
    bump_gates t 2;
    (sel, ps)
  end

let lits_of_bus t ~frame bus = Array.map (fun s -> Cnf.lit t.unr ~frame s) bus

(* Polarity-reduced equation-(6) consistency between two accesses: the pair
   variable u only needs (premises -> u) and (u -> V = V'), since u never
   occurs elsewhere.  Shared by the simplifying read encoder and the phantom
   reads of the distinctness machinery. *)
let init_pair_reduced t ~tag ~n_bits this other =
  if not (is_f t this.n_lit || is_f t other.n_lit) then begin
    match classify_bus t ~tag other.ra_lits this.ra_lits with
    | None -> bump_pairs t 1 (* addresses provably differ: no constraint *)
    | Some bits ->
      let e_of = function
        | Bit_conflict -> assert false
        | Bit_exact e | Bit_e (_, _, e) -> e
      in
      let premises = List.filter (fun l -> not (is_t t l)) (List.map e_of bits) in
      let premises =
        premises @ List.filter (fun l -> not (is_t t l)) [ this.n_lit; other.n_lit ]
      in
      let u =
        match premises with
        | [] -> ltrue t
        | [ l ] -> l
        | _ ->
          let u = fresh t in
          (* premises -> u *)
          emitc ~tag t (u :: List.map Lit.negate premises);
          u
      in
      let prefix = if is_t t u then [] else [ Lit.negate u ] in
      for b = 0 to n_bits - 1 do
        if this.v_lits.(b) <> other.v_lits.(b) then begin
          emitc ~tag t (prefix @ [ Lit.negate this.v_lits.(b); other.v_lits.(b) ]);
          emitc ~tag t (prefix @ [ this.v_lits.(b); Lit.negate other.v_lits.(b) ])
        end
      done;
      bump_pairs t 1
  end
  else bump_pairs t 1

(* Generate all constraints for read port [r] of memory [ms] at depth [k] —
   the paper-faithful plain encoding. *)
let constrain_read_plain t ms k r =
  let unr = t.unr in
  let tag = ms.tag in
  let mem = ms.mem in
  let n_bits = Netlist.memory_data_width mem in
  let w_count = Netlist.num_write_ports mem in
  let addr_bus, enable, out = Netlist.read_port mem r in
  let ra = lits_of_bus t ~frame:k addr_bus in
  let re = Cnf.lit unr ~frame:k enable in
  let rd = lits_of_bus t ~frame:k out in
  (* Write-port literals per frame: (addr, data, we). *)
  let write_lits j w =
    let wa, wd, we = Netlist.write_port mem w in
    (lits_of_bus t ~frame:j wa, lits_of_bus t ~frame:j wd, Cnf.lit unr ~frame:j we)
  in
  (* s(j,w) = E(j,k,w,r) /\ WE(j,w) for every write access before k. *)
  let s_of =
    Array.init k (fun j ->
        Array.init w_count (fun w ->
            let wa, _, we = write_lits j w in
            let e = addr_equal t ~tag ~bump:bump_addr wa ra in
            and_gate t ~tag e we))
  in
  (* Exclusivity chains (eq. 4), built from the most recent access backwards:
     PS(k,k,0) = RE; PS(i,p) = ~s(i,p) /\ PS(i,p+1); PS(i,W) = PS(i+1,0);
     S(i,p) = s(i,p) /\ PS(i,p+1). *)
  let s_sel = Array.make_matrix (max k 1) (max w_count 1) (Lit.pos 0) in
  let ps = ref re in
  for i = k - 1 downto 0 do
    for p = w_count - 1 downto 0 do
      let s = s_of.(i).(p) in
      let ps_next = !ps in
      s_sel.(i).(p) <- and_gate t ~tag s ps_next;
      ps := and_gate t ~tag (Lit.negate s) ps_next
    done
  done;
  let n_never = !ps in
  (* Read-data constraints (eq. 5): S(i,p) -> RD = WD(i,p). *)
  for i = 0 to k - 1 do
    for p = 0 to w_count - 1 do
      let _, wd, _ = write_lits i p in
      let sel = s_sel.(i).(p) in
      for b = 0 to n_bits - 1 do
        emitc ~tag t [ Lit.negate sel; Lit.negate rd.(b); wd.(b) ];
        emitc ~tag t [ Lit.negate sel; rd.(b); Lit.negate wd.(b) ]
      done;
      bump_data t (2 * n_bits)
    done
  done;
  (* Arbitrary initial word V: N -> RD = V. *)
  let v_lits = Array.init n_bits (fun _ -> fresh t) in
  for b = 0 to n_bits - 1 do
    emitc ~tag t [ Lit.negate n_never; Lit.negate rd.(b); v_lits.(b) ];
    emitc ~tag t [ Lit.negate n_never; rd.(b); Lit.negate v_lits.(b) ]
  done;
  bump_data t (2 * n_bits);
  (* Read-validity clause: RE -> (\/ S \/ N).  Implied by the chain but added
     explicitly, as in the paper, to speed up the solver. *)
  let sels =
    List.concat_map
      (fun i -> List.map (fun p -> s_sel.(i).(p)) (List.init w_count Fun.id))
      (List.init k Fun.id)
  in
  emitc ~tag t (Lit.negate re :: n_never :: sels);
  bump_data t 1;
  (* Reset contents: a memory initialised to zero reads 0 from unwritten
     locations — but only on paths starting at the initial state. *)
  (match Netlist.memory_init mem with
  | Netlist.Zeros ->
    let act = Cnf.act_init unr in
    for b = 0 to n_bits - 1 do
      emitc ~tag t [ Lit.negate act; Lit.negate n_never; Lit.negate rd.(b) ]
    done;
    bump_init t n_bits
  | Netlist.Arbitrary -> ()
  | Netlist.Words _ -> assert false);
  (* Equation (6): pairwise consistency with every earlier read access. *)
  let this = { a_frame = k; a_port = r; n_lit = n_never; v_lits; ra_lits = ra } in
  if t.init_consistency then
    List.iter
      (fun other ->
        let eq = addr_equal t ~tag ~bump:(fun _ _ -> ()) other.ra_lits ra in
        let u =
          and_gate ~counted:false t ~tag eq
            (and_gate ~counted:false t ~tag n_never other.n_lit)
        in
        for b = 0 to n_bits - 1 do
          emitc ~tag t [ Lit.negate u; Lit.negate v_lits.(b); other.v_lits.(b) ];
          emitc ~tag t [ Lit.negate u; v_lits.(b); Lit.negate other.v_lits.(b) ]
        done;
        bump_pairs t 1)
      ms.accesses;
  ms.accesses <- this :: ms.accesses

(* The simplifying counterpart: merged select networks, joint chain steps,
   the V word merged into the read-data bus, polarity-reduced eq. (6) and
   constant folding everywhere.  [saved_vars]/[saved_clauses] record the
   difference against what the plain encoding above would have emitted for
   the same port and depth. *)
let constrain_read_simpl t ms k r =
  let unr = t.unr in
  let tag = ms.tag in
  let mem = ms.mem in
  let n_bits = Netlist.memory_data_width mem in
  let m_bits = Netlist.memory_addr_width mem in
  let w_count = Netlist.num_write_ports mem in
  let vars0 = t.current.aux_vars and emitted0 = t.emitted in
  let plain_vars = ref 0 and plain_clauses = ref 0 in
  let plain v c =
    plain_vars := !plain_vars + v;
    plain_clauses := !plain_clauses + c
  in
  let addr_bus, enable, out = Netlist.read_port mem r in
  let ra = lits_of_bus t ~frame:k addr_bus in
  let re = Cnf.lit unr ~frame:k enable in
  let rd = lits_of_bus t ~frame:k out in
  let write_lits j w =
    let wa, wd, we = Netlist.write_port mem w in
    (lits_of_bus t ~frame:j wa, lits_of_bus t ~frame:j wd, Cnf.lit unr ~frame:j we)
  in
  (* s(j,w) = (WA(j,w) = RA) /\ WE(j,w), merged and memoized. *)
  let s_of =
    Array.init k (fun j ->
        Array.init w_count (fun w ->
            let wa, _, we = write_lits j w in
            plain (m_bits + 4) ((4 * m_bits) + 10);
            let before = t.emitted in
            let s = s_net t ~tag wa ra we in
            bump_addr t (t.emitted - before);
            s))
  in
  (* Exclusivity chains (eq. 4), folded. *)
  let s_sel = Array.make_matrix (max k 1) (max w_count 1) (Lit.pos 0) in
  let ps = ref re in
  for i = k - 1 downto 0 do
    for p = w_count - 1 downto 0 do
      let sel, ps' = chain_pair t ~tag s_of.(i).(p) !ps in
      s_sel.(i).(p) <- sel;
      ps := ps'
    done
  done;
  let n_never = !ps in
  (* Read-data constraints (eq. 5): S(i,p) -> RD = WD(i,p). *)
  for i = 0 to k - 1 do
    for p = 0 to w_count - 1 do
      plain 0 (2 * n_bits);
      let sel = s_sel.(i).(p) in
      if not (is_f t sel) then begin
        let _, wd, _ = write_lits i p in
        let prefix = if is_t t sel then [] else [ Lit.negate sel ] in
        let emitted = ref 0 in
        for b = 0 to n_bits - 1 do
          if rd.(b) <> wd.(b) then begin
            emitc ~tag t (prefix @ [ Lit.negate rd.(b); wd.(b) ]);
            emitc ~tag t (prefix @ [ rd.(b); Lit.negate wd.(b) ]);
            emitted := !emitted + 2
          end
        done;
        bump_data t !emitted
      end
    done
  done;
  (* The initial word V is the read-data bus itself when N holds: no fresh
     variables and no linking clauses needed. *)
  plain n_bits (2 * n_bits);
  let v_lits = rd in
  (* Read-validity clause: RE -> (\/ S \/ N). *)
  plain 0 1;
  if not (is_f t re) then begin
    let sels =
      List.concat_map
        (fun i ->
          List.filter_map
            (fun p -> if is_f t s_sel.(i).(p) then None else Some s_sel.(i).(p))
            (List.init w_count Fun.id))
        (List.init k Fun.id)
    in
    let tauto = is_t t n_never || List.exists (is_t t) sels in
    if not tauto then begin
      let head = if is_f t n_never then [] else [ n_never ] in
      emitc ~tag t ((Lit.negate re :: head) @ sels);
      bump_data t 1
    end
  end;
  (* Reset contents: a memory initialised to zero reads 0 from unwritten
     locations — but only on paths starting at the initial state. *)
  (match Netlist.memory_init mem with
  | Netlist.Zeros ->
    plain 0 n_bits;
    if not (is_f t n_never) then begin
      let act = Cnf.act_init unr in
      let guard =
        if is_t t n_never then [ Lit.negate act ]
        else [ Lit.negate act; Lit.negate n_never ]
      in
      for b = 0 to n_bits - 1 do
        emitc ~tag t (guard @ [ Lit.negate rd.(b) ])
      done;
      bump_init t n_bits
    end
  | Netlist.Arbitrary -> ()
  | Netlist.Words _ -> assert false);
  (* Equation (6): pairwise consistency with every earlier read access,
     polarity-reduced — the pair variable u only needs (premises -> u) and
     (u -> V = V'), 2m+1+2n clauses instead of 4m+7+2n. *)
  let this = { a_frame = k; a_port = r; n_lit = n_never; v_lits; ra_lits = ra } in
  if t.init_consistency then
    List.iter
      (fun other ->
        plain (m_bits + 3) ((4 * m_bits) + 7 + (2 * n_bits));
        init_pair_reduced t ~tag ~n_bits this other)
      ms.accesses;
  ms.accesses <- this :: ms.accesses;
  bump_saved t
    (!plain_vars - (t.current.aux_vars - vars0))
    (!plain_clauses - (t.emitted - emitted0))

let constrain_read t ms k r =
  if t.simplify then constrain_read_simpl t ms k r else constrain_read_plain t ms k r

(* One instant event per memory per depth, carrying the delta of the eq.(3)–(6)
   constraint counts contributed by that memory's read ports at this depth. *)
let mem_count_attrs ~before ~after ~emitted =
  let d f = Obs.Int (f after - f before) in
  [
    ("addr_clauses", d (fun c -> c.addr_clauses));
    ("excl_gates", d (fun c -> c.excl_gates));
    ("data_clauses", d (fun c -> c.data_clauses));
    ("init_clauses", d (fun c -> c.init_clauses));
    ("init_pairs", d (fun c -> c.init_pairs));
    ("aux_vars", d (fun c -> c.aux_vars));
    ("emitted_clauses", Obs.Int emitted);
  ]

let add_constraints t k =
  if k <> t.next_depth then
    invalid_arg
      (Printf.sprintf "Emm.add_constraints: expected depth %d, got %d" t.next_depth k);
  t.next_depth <- k + 1;
  t.current <- zero_counts;
  let t0 = Obs.now () in
  Obs.span "emm" ~attrs:[ ("k", Obs.Int k) ] (fun () ->
      let emitted_at_start = t.emitted in
      List.iter
        (fun ms ->
          let before = t.current and emitted0 = t.emitted in
          let nports = Netlist.num_read_ports ms.mem in
          List.iter (fun r -> constrain_read t ms k r) (List.init nports Fun.id);
          if Obs.enabled () then
            Obs.instant "emm.memory"
              ~attrs:
                (("name", Obs.Str (Netlist.memory_name ms.mem))
                 :: ("read_ports", Obs.Int nports)
                 :: mem_count_attrs ~before ~after:t.current
                      ~emitted:(t.emitted - emitted0)))
        t.mems;
      if Obs.enabled () then
        Obs.counter_add "emm.clauses" (t.emitted - emitted_at_start));
  t.current <- { t.current with encode_time_s = Obs.now () -. t0 };
  Hashtbl.replace t.per_depth k t.current

let counts_at t k =
  match Hashtbl.find_opt t.per_depth k with Some c -> c | None -> zero_counts

let counts_total t =
  add_counts t.extra
    (Hashtbl.fold (fun _ c acc -> add_counts c acc) t.per_depth zero_counts)

(* {2 Memory-state distinctness (loop-free-path termination)}

   The engine's loop-free-path constraints range over latch state, so a
   design whose latches repeat while memory contents diverge would be
   over-proved.  [mem_distinct_lit t ~i ~j] returns a literal D with

     D -> chg(j) \/ ... \/ chg(i-1)

   where chg(f) may hold only if some enabled write at frame [f] stores a
   value its target location does not already hold — i.e. the step from
   frame [f] to [f+1] changes some modeled memory.  If every step in [j, i)
   leaves memory unchanged then every chg is false, D is forced false, and
   the engine's LFP clause correctly falls back to latch distinctness;
   conversely, whenever memory contents at frames [i] and [j] differ, some
   step in between changed memory, so the solver can satisfy the clause
   through D.  All implications are one-directional — D only ever occurs
   positively in the LFP clauses, so the converse directions are never
   needed.

   "What the location already holds" is a phantom EMM read: an interface
   word for (frame f, the write port's own address bus), constrained by the
   same merged select networks, exclusivity chain, reset-contents and
   equation-(6) machinery as a real read port with RE = true, and registered
   as an access (port -1) so initial-state consistency ties its
   never-written word to every other access of the memory.  Phantom reads
   are memoized per (memory, frame, address bus) and chg(f) per frame, so
   the O(depth^2) frame pairs requested by the engine share O(depth x
   write-ports) phantom reads. *)

(* Phantom read of memory [ms] at frame [f], address bus [ra] (already
   per-frame literals).  Returns the registered access; its [v_lits] is the
   word the memory holds at address [ra] entering frame [f]. *)
let phantom_access t ms f ra =
  let key = (ms.tag, f, ra) in
  match Hashtbl.find_opt t.phantom_memo key with
  | Some a -> a
  | None ->
    let unr = t.unr in
    let tag = ms.tag in
    let mem = ms.mem in
    let n_bits = Netlist.memory_data_width mem in
    let w_count = Netlist.num_write_ports mem in
    let pv = Array.init n_bits (fun _ -> fresh t) in
    let write_lits j w =
      let wa, wd, we = Netlist.write_port mem w in
      (lits_of_bus t ~frame:j wa, lits_of_bus t ~frame:j wd, Cnf.lit unr ~frame:j we)
    in
    (* s(j,w) over every write access before [f]; RE = true. *)
    let s_of =
      Array.init f (fun j ->
          Array.init w_count (fun w ->
              let wa, _, we = write_lits j w in
              let before = t.emitted in
              let s = s_net t ~tag wa ra we in
              bump_addr t (t.emitted - before);
              s))
    in
    let s_sel = Array.make_matrix (max f 1) (max w_count 1) (Lit.pos 0) in
    let ps = ref (ltrue t) in
    for j = f - 1 downto 0 do
      for p = w_count - 1 downto 0 do
        let sel, ps' = chain_pair t ~tag s_of.(j).(p) !ps in
        s_sel.(j).(p) <- sel;
        ps := ps'
      done
    done;
    let n_never = !ps in
    (* S(j,p) -> PV = WD(j,p): the phantom word tracks the stored value. *)
    for j = 0 to f - 1 do
      for p = 0 to w_count - 1 do
        let sel = s_sel.(j).(p) in
        if not (is_f t sel) then begin
          let _, wd, _ = write_lits j p in
          let prefix = if is_t t sel then [] else [ Lit.negate sel ] in
          let emitted = ref 0 in
          for b = 0 to n_bits - 1 do
            if pv.(b) <> wd.(b) then begin
              emitc ~tag t (prefix @ [ Lit.negate pv.(b); wd.(b) ]);
              emitc ~tag t (prefix @ [ pv.(b); Lit.negate wd.(b) ]);
              emitted := !emitted + 2
            end
          done;
          bump_data t !emitted
        end
      done
    done;
    (* Validity: some selector or the never-written head holds (RE = true). *)
    let sels =
      List.concat_map
        (fun j ->
          List.filter_map
            (fun p -> if is_f t s_sel.(j).(p) then None else Some s_sel.(j).(p))
            (List.init w_count Fun.id))
        (List.init f Fun.id)
    in
    if not (is_t t n_never || List.exists (is_t t) sels) then begin
      let head = if is_f t n_never then [] else [ n_never ] in
      emitc ~tag t (head @ sels);
      bump_data t 1
    end;
    (* Reset contents, guarded on initial-state paths as for real reads. *)
    (match Netlist.memory_init mem with
    | Netlist.Zeros ->
      if not (is_f t n_never) then begin
        let act = Cnf.act_init unr in
        let guard =
          if is_t t n_never then [ Lit.negate act ]
          else [ Lit.negate act; Lit.negate n_never ]
        in
        for b = 0 to n_bits - 1 do
          emitc ~tag t (guard @ [ Lit.negate pv.(b) ])
        done;
        bump_init t n_bits
      end
    | Netlist.Arbitrary -> ()
    | Netlist.Words _ -> assert false);
    (* Equation (6) against every earlier access, real or phantom. *)
    let this = { a_frame = f; a_port = -1; n_lit = n_never; v_lits = pv; ra_lits = ra } in
    if t.init_consistency then
      List.iter (fun other -> init_pair_reduced t ~tag ~n_bits this other) ms.accesses;
    ms.accesses <- this :: ms.accesses;
    Hashtbl.replace t.phantom_memo key this;
    this

(* chg(f): some enabled write at frame [f] stores a value its target
   location does not already hold.  One-directional, memoized per frame and
   shared by every (i, j) pair whose window contains [f]. *)
let change_lit t f =
  match Hashtbl.find_opt t.chg_memo f with
  | Some l -> l
  | None ->
    let ds =
      List.concat_map
        (fun ms ->
          let mem = ms.mem in
          let tag = ms.tag in
          let n_bits = Netlist.memory_data_width mem in
          List.filter_map
            (fun w ->
              let wa_bus, wd_bus, we_sig = Netlist.write_port mem w in
              let wa = lits_of_bus t ~frame:f wa_bus in
              let wd = lits_of_bus t ~frame:f wd_bus in
              let we = Cnf.lit t.unr ~frame:f we_sig in
              if is_f t we then None
              else begin
                let pv = (phantom_access t ms f wa).v_lits in
                (* x_b -> WD_b <> PV_b. *)
                let xs =
                  List.filter_map
                    (fun b ->
                      if wd.(b) = pv.(b) then None (* bit provably unchanged *)
                      else if wd.(b) = Lit.negate pv.(b) then Some (ltrue t)
                      else begin
                        let x = fresh t in
                        emitc ~tag t [ Lit.negate x; wd.(b); pv.(b) ];
                        emitc ~tag t
                          [ Lit.negate x; Lit.negate wd.(b); Lit.negate pv.(b) ];
                        bump_distinct t ~preds:1 ~clauses:2;
                        Some x
                      end)
                    (List.init n_bits Fun.id)
                in
                (* d -> WE /\ (\/ x): this write changes its target word. *)
                if xs = [] then None (* rewrites the stored value bit-for-bit *)
                else if List.exists (is_t t) xs then Some we
                else if is_t t we && List.compare_length_with xs 1 = 0 then
                  Some (List.hd xs)
                else begin
                  let d = fresh t in
                  bump_distinct t ~preds:1 ~clauses:0;
                  if not (is_t t we) then begin
                    emitc ~tag t [ Lit.negate d; we ];
                    bump_distinct t ~preds:0 ~clauses:1
                  end;
                  emitc ~tag t (Lit.negate d :: xs);
                  bump_distinct t ~preds:0 ~clauses:1;
                  Some d
                end
              end)
            (List.init (Netlist.num_write_ports mem) Fun.id))
        t.mems
    in
    let ds = List.filter (fun l -> not (is_f t l)) ds in
    let chg =
      if List.exists (is_t t) ds then ltrue t
      else
        match ds with
        | [] -> lfalse t
        | [ d ] -> d
        | ds ->
          let chg = fresh t in
          emitc ~tag:t.distinct_tag t (Lit.negate chg :: ds);
          bump_distinct t ~preds:1 ~clauses:1;
          chg
    in
    Hashtbl.replace t.chg_memo f chg;
    chg

let mem_distinct_lit t ~i ~j =
  if not (0 <= j && j < i) then
    invalid_arg
      (Printf.sprintf "Emm.mem_distinct_lit: need 0 <= j < i, got i=%d j=%d" i j);
  if i >= t.next_depth + 1 then
    invalid_arg
      (Printf.sprintf
         "Emm.mem_distinct_lit: frame %d beyond encoded depth %d (call \
          add_constraints first)"
         i (t.next_depth - 1));
  match Hashtbl.find_opt t.distinct_memo (i, j) with
  | Some l -> l
  | None ->
    (* Distinctness is requested by the engine after [add_constraints] has
       snapshotted the depth's counts, so accumulate into [t.extra]. *)
    let saved = t.current in
    t.current <- zero_counts;
    let t0 = Obs.now () in
    let l =
      let chgs =
        List.filter
          (fun l -> not (is_f t l))
          (List.map (fun f -> change_lit t f) (List.init (i - j) (fun o -> j + o)))
      in
      if List.exists (is_t t) chgs then ltrue t
      else
        match chgs with
        | [] -> lfalse t
        | [ c ] -> c
        | cs ->
          let d = fresh t in
          emitc ~tag:t.distinct_tag t (Lit.negate d :: cs);
          bump_distinct t ~preds:1 ~clauses:1;
          d
    in
    t.extra <- add_counts t.extra { t.current with encode_time_s = Obs.now () -. t0 };
    t.current <- saved;
    Hashtbl.replace t.distinct_memo (i, j) l;
    l

let word_of_lits solver lits =
  let w = ref 0 in
  Array.iteri (fun i l -> if Solver.value solver l then w := !w lor (1 lsl i)) lits;
  !w

let mem_init_of_model t =
  let solver = Cnf.solver t.unr in
  List.filter_map
    (fun ms ->
      match Netlist.memory_init ms.mem with
      | Netlist.Zeros -> None (* defaults already match *)
      | Netlist.Words _ -> None
      | Netlist.Arbitrary ->
        (* First (most recent) access per address wins; a hash table keyed on
           the address keeps the dedup linear in the number of accesses. *)
        let seen = Hashtbl.create 16 in
        let words =
          List.filter_map
            (fun a ->
              if Solver.value solver a.n_lit then begin
                let addr = word_of_lits solver a.ra_lits in
                if Hashtbl.mem seen addr then None
                else begin
                  Hashtbl.add seen addr ();
                  Some (addr, word_of_lits solver a.v_lits)
                end
              end
              else None)
            ms.accesses
        in
        Some (Netlist.memory_name ms.mem, words))
    t.mems

let predicted_clauses ~aw ~dw ~k ~writes ~reads =
  ((((4 * aw) + (2 * dw) + 1) * k * writes) + (2 * dw) + 1) * reads

let predicted_gates ~k ~writes ~reads = 3 * k * writes * reads

type race = {
  race_memory : string;
  race_depth : int;
  race_ports : int * int;
  race_trace : Bmc.Trace.t;
}

(* Input stimulus of the current model, for race reporting. *)
let trace_of_model t ~depth ~label =
  let net = Cnf.net t.unr in
  let solver = Cnf.solver t.unr in
  let inputs =
    Array.init (depth + 1) (fun frame ->
        List.filter_map
          (fun s ->
            match Netlist.node net (Netlist.node_of s) with
            | Netlist.Input name ->
              Some (name, Solver.value solver (Cnf.lit t.unr ~frame s))
            | Netlist.Const_false | Netlist.Latch _ | Netlist.And _
            | Netlist.Mem_out _ -> None)
          (Netlist.inputs net))
  in
  let latch0 =
    List.filter_map
      (fun l ->
        match Netlist.latch_init net l with
        | None ->
          Some (Netlist.latch_name net l, Solver.value solver (Cnf.lit t.unr ~frame:0 l))
        | Some _ -> None)
      (Netlist.latches net)
  in
  {
    Bmc.Trace.property = label;
    depth;
    inputs;
    latch0;
    mem_init = mem_init_of_model t;
    watch = [];
  }

let find_data_race ?(max_depth = 50) ?deadline net =
  let solver = Solver.create () in
  Solver.set_deadline solver deadline;
  (* Every query below assumes [act_init], so frame-0 latch values can be
     folded to constants; no reason extraction happens here. *)
  let unr = Cnf.create ~fold_init:true ~track_reasons:false solver net in
  let t = create unr in
  let act_init = Cnf.act_init unr in
  let deadline_passed () =
    match deadline with Some d -> Obs.now () > d | None -> false
  in
  let result = ref None in
  (try
     for k = 0 to max_depth do
       if deadline_passed () then raise Exit;
       add_constraints t k;
       List.iter
         (fun ms ->
           let mem = ms.mem in
           let w = Netlist.num_write_ports mem in
           for w1 = 0 to w - 1 do
             for w2 = w1 + 1 to w - 1 do
               let a1, _, e1 = Netlist.write_port mem w1 in
               let a2, _, e2 = Netlist.write_port mem w2 in
               let l1 = lits_of_bus t ~frame:k a1 in
               let l2 = lits_of_bus t ~frame:k a2 in
               let eq =
                 if t.simplify then eq_lit t ~tag:ms.tag l1 l2
                 else addr_equal t ~tag:ms.tag ~bump:(fun _ _ -> ()) l1 l2
               in
               let assumptions =
                 [
                   act_init;
                   eq;
                   Cnf.lit unr ~frame:k e1;
                   Cnf.lit unr ~frame:k e2;
                 ]
               in
               if !result = None && Solver.solve ~assumptions solver = Solver.Sat
               then
                 result :=
                   Some
                     {
                       race_memory = Netlist.memory_name mem;
                       race_depth = k;
                       race_ports = (w1, w2);
                       race_trace =
                         trace_of_model t ~depth:k
                           ~label:
                             (Printf.sprintf "__race_%s__" (Netlist.memory_name mem));
                     }
             done
           done)
         t.mems;
       if !result <> None then raise Exit
     done
   with Exit | Solver.Timeout -> ());
  !result

let hooks ?memories ?init_consistency ?simplify ?(mem_distinct = true) net =
  ignore net;
  let state = ref None in
  let get unr =
    match !state with
    | Some s -> s
    | None ->
      let s = create ?memories ?init_consistency ?simplify unr in
      state := Some s;
      s
  in
  let hooks =
    {
      Bmc.Engine.on_unroll = (fun unr k -> add_constraints (get unr) k);
      mem_init_of_model =
        (fun unr _depth -> match !state with
          | Some s -> mem_init_of_model s
          | None -> ignore unr; []);
      mem_distinct =
        (if mem_distinct then
           Some (fun unr ~i ~j -> mem_distinct_lit (get unr) ~i ~j)
         else None);
    }
  in
  let get_counts () = match !state with Some s -> counts_total s | None -> zero_counts in
  (hooks, get_counts)

let check ?config ?memories ?init_consistency ?simplify ?mem_distinct net ~property =
  let hks, get_counts = hooks ?memories ?init_consistency ?simplify ?mem_distinct net in
  let result = Bmc.Engine.check ?config ~hooks:hks net ~property in
  (result, get_counts ())

let check_many ?config ?memories ?init_consistency ?simplify ?mem_distinct net
    ~properties =
  let hks, get_counts = hooks ?memories ?init_consistency ?simplify ?mem_distinct net in
  let results, stats = Bmc.Engine.check_all ?config ~hooks:hks net ~properties in
  (results, stats, get_counts ())
