(** The verification platform façade.

    One entry point over every engine combination the paper evaluates:

    - {!Emm_bmc} — BMC-3: EMM constraints, induction proofs, precise
      arbitrary initial memory state (the paper's contribution);
    - {!Emm_falsify} — BMC-2: EMM constraints, counterexample search only;
    - {!Emm_pba} — BMC-3 + proof-based abstraction: discover the stable
      latch-reason set, abstract irrelevant latches and memories, then prove
      on the reduced model (§4.3, Table 2);
    - {!Explicit_bmc} — BMC-1 on the explicitly expanded memory model (the
      baseline in every comparison table);
    - {!Explicit_pba} — PBA discovery and reduced-model proof over the
      explicit model;
    - {!Abstract_bmc} — memory abstracted away completely (free read data);
      sound only for proofs, produces spurious counterexamples;
    - {!Bdd_reach} — BDD-based forward reachability on the expanded model.

    Every run returns a uniform {!outcome} carrying the verdict, wall-clock
    time, model statistics, and — when EMM was involved — the constraint
    counts of §4.1. *)

type method_ =
  | Emm_bmc
  | Emm_falsify
  | Emm_pba
  | Explicit_bmc
  | Explicit_pba
  | Abstract_bmc
  | Bdd_reach

val method_of_string : string -> (method_, string) result
val method_to_string : method_ -> string
val all_methods : method_ list

type options = {
  max_depth : int;
  timeout_s : float option;  (** wall-clock budget for the whole run *)
  stability : int;  (** PBA stability depth (paper: 10) *)
  max_bdd_nodes : int;
  certify : bool;
      (** certify every verdict: DRAT-check the refutations behind proofs and
          bounded-safe answers, replay counterexamples on the concrete design
          (see {!outcome.certificate}) *)
  proof_dir : string option;
      (** with [certify], also dump each run's DRAT derivation to
          [<proof_dir>/<property>-<method>.drat] *)
  conflict_budget : int option;
      (** conflicts allowed per SAT query before the engine gives up with
          [Inconclusive] and a [Budget_exhausted] error *)
  learnt_mb_budget : float option;
      (** learnt-clause database ceiling in MB, same failure mode *)
  domains : int;
      (** with [> 1], every SAT query runs an in-process Domain portfolio of
          that many diversified CDCL instances (see {!Portfolio}); [1] (the
          default) solves sequentially *)
  share_clauses : bool;
      (** exchange learnt glue clauses between portfolio instances (default
          [true]; forced off under [certify], where imports would invalidate
          the DRAT logs) *)
  cache : bool;
      (** consult and populate the persistent content-addressed result cache
          (see {!Vcache}): before encoding anything, {!verify} looks the
          property's canonical cone signature plus the verdict-relevant
          options up in the on-disk store, validates what it finds (replaying
          counterexamples, re-checking DRAT evidence under [certify]) and
          only reaches the solver on a miss.  Default [false] *)
  cache_dir : string option;
      (** cache store directory; [None] selects {!Vcache.default_dir} *)
}

val default_options : options
(** [max_depth = 100], no timeout, stability 10, 2M BDD nodes, certification
    off, no proof dir, no budgets, sequential solving ([domains = 1]),
    caching off. *)

type conclusion =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int; trace : Bmc.Trace.t option; genuine : bool option }
      (** [genuine] = the trace replays on the concrete design ([None] when
          no trace is available, e.g. from the BDD engine) *)
  | Inconclusive of string

type cache_status =
  | Cache_off  (** caching disabled, or no key could be computed *)
  | Cache_miss  (** store consulted, nothing usable; the verdict was solved
                    fresh and recorded when cacheable *)
  | Cache_hit  (** verdict served from the store and validated *)
  | Cache_dedup
      (** verdict transferred from a structurally identical property solved
          earlier in the same {!verify_many} batch *)

type outcome = {
  conclusion : conclusion;
  time_s : float;
  solve_time_s : float;
  encode_time_s : float;
      (** seconds spent building the formula: unrolling, EMM constraint
          generation and loop-free-path constraints *)
  memory_mb : float;
  model_latches : int;  (** latches of the model actually checked *)
  model_vars : int;
  model_clauses : int;
  vars_saved : int;
      (** solver variables avoided by the simplifying encoder (unroller and
          EMM layer combined) vs. the plain paper-faithful encoding *)
  clauses_saved : int;  (** clauses avoided, same baseline *)
  emm_counts : Emm.counts option;
  abstraction : Pba.abstraction option;
  solver_stats : Satsolver.Solver.stats option;
      (** CDCL telemetry of the underlying run; [None] for the BDD method *)
  certificate : Cert.t;
      (** [Unchecked] unless [options.certify]; then [Certified Drat_checked]
          for a DRAT-verified proof / bounded-safe answer, [Certified
          Trace_replayed] for a counterexample that replays on the concrete
          design, or [Refuted reason] when certification caught a bogus
          verdict *)
  proof_steps : int;  (** DRAT steps logged by the run (0 unless certifying) *)
  error : Policy.error option;
      (** why an [Inconclusive] outcome is inconclusive, on the policy
          taxonomy: [Budget_exhausted] for timeouts and resource budgets,
          [Worker_killed] for dead workers, [Cert_failed] when the
          certificate was refuted; [None] for honest inconclusives (e.g. a
          bound exhausted without a proof) and all conclusive outcomes *)
  degradations : Policy.event list;
      (** resilience events (engine fallbacks, worker retries) accumulated on
          the way to this outcome, chronological; empty outside
          {!verify_resilient} / policy-driven entry points *)
  cache : cache_status;
      (** how the result cache participated in this outcome; on a hit,
          [time_s] is the lookup-and-validate wall clock while
          [solve_time_s] / [encode_time_s] are 0 and the [model_*] fields
          replay the recording run's statistics *)
  cert_artifact : Bmc.Engine.cert_artifact option;
      (** DRAT evidence produced by a certifying run, consumed (and cleared)
          by the cache store; always [None] on outcomes returned by
          {!verify} and the entry points built on it *)
}

val verify : ?options:options -> method_:method_ -> Netlist.t -> property:string -> outcome
(** Check one safety property of the design with the chosen engine.
    Counterexample traces are replayed on the given netlist to classify them
    as genuine or spurious.

    With [options.cache] set, the property's canonical cone signature
    ({!Netlist.cone_signature}) plus the verdict-relevant options key a
    lookup in the persistent store before anything is encoded.  A hit is
    validated, not trusted: counterexamples are replayed on the live design,
    and under [options.certify] proofs and bounded answers are only served
    when their stored DRAT evidence passes the independent checker again
    (otherwise the engine solves fresh).  Entries that contradict the live
    design are evicted.  On a miss, deterministic verdicts — proofs, genuine
    counterexamples, bound-exhausted inconclusives — are recorded; outcomes
    carrying a typed [error] (timeouts, budgets, dead workers) never are. *)

val cache_config : options -> Vcache.config option
(** The store configuration {!verify} uses, [None] when [options.cache] is
    unset — exposed so front ends administer the same store they verify
    against. *)

val cache_key : options -> method_:method_ -> Netlist.t -> property:string -> Vcache.Key.t option
(** The cache key {!verify} would use for this run; [None] when the property
    does not exist in the design. *)

val encoding_version : string
(** Generation tag of the encoding stack, mixed into every cache key as the
    ["encoder"] attribute.  Bumped whenever an encoder change can alter a
    verdict or proved depth for the same (cone, options) pair, so stale
    entries from an older generation silently miss instead of replaying. *)

val verify_resilient :
  ?options:options ->
  ?policy:Policy.t ->
  ?inject:(method_ -> attempt:int -> unit) ->
  Netlist.t ->
  property:string ->
  outcome
(** Run {!verify} under a resilience {!Policy.t}: the policy's budgets narrow
    [options], each engine of the fallback chain (default
    [emm -> explicit -> bdd]) runs in its own forked worker, and on failure —
    a killed worker (retried up to [policy.worker_retries] on the same
    engine), an exhausted budget, an encode error, a refuted certificate —
    control degrades to the next engine.  The first conclusive verdict wins;
    an honest inconclusive is kept as the answer of last resort.  Every
    degradation is recorded in {!outcome.degradations}.  [inject] is a
    fault-injection hook for tests, called inside the forked child before the
    engine starts. *)

val verify_many :
  ?options:options ->
  ?jobs:int ->
  ?job_timeout_s:float ->
  ?policy:Policy.t ->
  method_:method_ ->
  Netlist.t ->
  properties:string list ->
  (string * outcome) list
(** Check a list of properties, fanning the independent {!verify} calls out
    over a {!Parallel} worker pool of [jobs] forked processes (default [1],
    which runs the plain sequential loop in-process).  Results come back in
    property order whatever the completion order, and — because every worker
    builds its own solver in its own address space — verdicts are identical
    for every [jobs] value.  A worker that crashes, runs out of memory or
    exceeds [job_timeout_s] (default: [options.timeout_s] plus slack, when
    set) is SIGKILLed and its property reports
    [Inconclusive "worker killed: ..."] carrying the elapsed wall clock,
    without disturbing the other properties.  With [policy], each property
    runs through {!verify_resilient} instead (and the pool's own kill
    deadline is suppressed so it cannot truncate a fallback chain).

    Properties whose verification cones are structurally identical (equal
    {!Netlist.cone_signature}) are solved once per batch; the others receive
    the representative's verdict with [cache = Cache_dedup], their trace
    re-replayed under their own name.  The dedup needs no store and works
    with caching off; it is disabled under [options.certify] (each property
    deserves its own checked evidence) and under [policy] (fallback chains
    are per-property), and never changes verdicts — only how often the
    solver runs. *)

type delta_status =
  | Delta_unchanged  (** same canonical cone in both designs *)
  | Delta_changed  (** the cone's structure differs *)
  | Delta_added  (** the property does not exist in the old design *)

val delta_status_to_string : delta_status -> string

val verify_delta :
  ?options:options ->
  ?jobs:int ->
  ?job_timeout_s:float ->
  method_:method_ ->
  before:Netlist.t ->
  Netlist.t ->
  properties:string list ->
  (string * delta_status * outcome) list
(** Incremental re-verification after a design edit: classify each property
    by comparing its canonical cone signature in [before] against the new
    design, then verify the new design via {!verify_many}.  With
    [options.cache] set and the store warm from verifying [before] (or any
    earlier revision), every [Delta_unchanged] property is served from the
    cache and only changed or added cones reach a solver — the classification
    itself never skips a property, so a cold cache merely loses the speedup,
    never soundness. *)

val killed_outcome : elapsed_s:float -> string -> outcome
(** The outcome substituted for a worker that died without producing one:
    [Inconclusive "worker killed: <msg>"] with [time_s = elapsed_s] and
    zeroed statistics.  {!verify_many} and {!portfolio} use it internally;
    it is exposed for layers (CLI, bench) that fan {!verify} calls out over
    {!Parallel} themselves. *)

val default_portfolio : method_ list
(** [[Emm_bmc; Explicit_bmc; Bdd_reach]] — the engines raced by
    {!portfolio}. *)

val portfolio :
  ?options:options ->
  ?methods:method_ list ->
  ?job_timeout_s:float ->
  ?policy:Policy.t ->
  Netlist.t ->
  property:string ->
  (method_ * outcome) * (method_ * outcome) list
(** Race several engines on one property in parallel forked workers; the
    first {e conclusive} verdict — a proof, or a counterexample that is not
    known to be spurious — wins and the losers are SIGKILLed.  Returns the
    winner plus the per-method outcomes in [methods] order (losers report
    [Inconclusive "worker killed: cancelled ..."]).  When no engine
    concludes, the winner slot falls back to the first engine's outcome.
    When no engine concluded {e and} some workers died (crashed, out of
    memory — not merely cancelled or timed out), the dead engines get one
    re-race if [policy.worker_retries > 0]; the retry is recorded in the
    winner's {!outcome.degradations}. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_conclusion : Format.formatter -> conclusion -> unit
