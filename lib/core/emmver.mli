(** The verification platform façade.

    One entry point over every engine combination the paper evaluates:

    - {!Emm_bmc} — BMC-3: EMM constraints, induction proofs, precise
      arbitrary initial memory state (the paper's contribution);
    - {!Emm_falsify} — BMC-2: EMM constraints, counterexample search only;
    - {!Emm_pba} — BMC-3 + proof-based abstraction: discover the stable
      latch-reason set, abstract irrelevant latches and memories, then prove
      on the reduced model (§4.3, Table 2);
    - {!Explicit_bmc} — BMC-1 on the explicitly expanded memory model (the
      baseline in every comparison table);
    - {!Explicit_pba} — PBA discovery and reduced-model proof over the
      explicit model;
    - {!Abstract_bmc} — memory abstracted away completely (free read data);
      sound only for proofs, produces spurious counterexamples;
    - {!Bdd_reach} — BDD-based forward reachability on the expanded model.

    Every run returns a uniform {!outcome} carrying the verdict, wall-clock
    time, model statistics, and — when EMM was involved — the constraint
    counts of §4.1. *)

type method_ =
  | Emm_bmc
  | Emm_falsify
  | Emm_pba
  | Explicit_bmc
  | Explicit_pba
  | Abstract_bmc
  | Bdd_reach

val method_of_string : string -> (method_, string) result
val method_to_string : method_ -> string
val all_methods : method_ list

type options = {
  max_depth : int;
  timeout_s : float option;  (** wall-clock budget for the whole run *)
  stability : int;  (** PBA stability depth (paper: 10) *)
  max_bdd_nodes : int;
}

val default_options : options

type conclusion =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int; trace : Bmc.Trace.t option; genuine : bool option }
      (** [genuine] = the trace replays on the concrete design ([None] when
          no trace is available, e.g. from the BDD engine) *)
  | Inconclusive of string

type outcome = {
  conclusion : conclusion;
  time_s : float;
  solve_time_s : float;
  encode_time_s : float;
      (** seconds spent building the formula: unrolling, EMM constraint
          generation and loop-free-path constraints *)
  memory_mb : float;
  model_latches : int;  (** latches of the model actually checked *)
  model_vars : int;
  model_clauses : int;
  vars_saved : int;
      (** solver variables avoided by the simplifying encoder (unroller and
          EMM layer combined) vs. the plain paper-faithful encoding *)
  clauses_saved : int;  (** clauses avoided, same baseline *)
  emm_counts : Emm.counts option;
  abstraction : Pba.abstraction option;
  solver_stats : Satsolver.Solver.stats option;
      (** CDCL telemetry of the underlying run; [None] for the BDD method *)
}

val verify : ?options:options -> method_:method_ -> Netlist.t -> property:string -> outcome
(** Check one safety property of the design with the chosen engine.
    Counterexample traces are replayed on the given netlist to classify them
    as genuine or spurious. *)

val verify_many :
  ?options:options ->
  ?jobs:int ->
  ?job_timeout_s:float ->
  method_:method_ ->
  Netlist.t ->
  properties:string list ->
  (string * outcome) list
(** Check a list of properties, fanning the independent {!verify} calls out
    over a {!Parallel} worker pool of [jobs] forked processes (default [1],
    which runs the plain sequential loop in-process).  Results come back in
    property order whatever the completion order, and — because every worker
    builds its own solver in its own address space — verdicts are identical
    for every [jobs] value.  A worker that crashes, runs out of memory or
    exceeds [job_timeout_s] (default: [options.timeout_s] plus slack, when
    set) is SIGKILLed and its property reports
    [Inconclusive "worker killed: ..."] carrying the elapsed wall clock,
    without disturbing the other properties. *)

val killed_outcome : elapsed_s:float -> string -> outcome
(** The outcome substituted for a worker that died without producing one:
    [Inconclusive "worker killed: <msg>"] with [time_s = elapsed_s] and
    zeroed statistics.  {!verify_many} and {!portfolio} use it internally;
    it is exposed for layers (CLI, bench) that fan {!verify} calls out over
    {!Parallel} themselves. *)

val default_portfolio : method_ list
(** [[Emm_bmc; Explicit_bmc; Bdd_reach]] — the engines raced by
    {!portfolio}. *)

val portfolio :
  ?options:options ->
  ?methods:method_ list ->
  ?job_timeout_s:float ->
  Netlist.t ->
  property:string ->
  (method_ * outcome) * (method_ * outcome) list
(** Race several engines on one property in parallel forked workers; the
    first {e conclusive} verdict — a proof, or a counterexample that is not
    known to be spurious — wins and the losers are SIGKILLed.  Returns the
    winner plus the per-method outcomes in [methods] order (losers report
    [Inconclusive "worker killed: cancelled ..."]).  When no engine
    concludes, the winner slot falls back to the first engine's outcome. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_conclusion : Format.formatter -> conclusion -> unit
