type method_ =
  | Emm_bmc
  | Emm_falsify
  | Emm_pba
  | Explicit_bmc
  | Explicit_pba
  | Abstract_bmc
  | Bdd_reach

let all_methods =
  [ Emm_bmc; Emm_falsify; Emm_pba; Explicit_bmc; Explicit_pba; Abstract_bmc; Bdd_reach ]

let method_to_string = function
  | Emm_bmc -> "emm"
  | Emm_falsify -> "emm-falsify"
  | Emm_pba -> "emm-pba"
  | Explicit_bmc -> "explicit"
  | Explicit_pba -> "explicit-pba"
  | Abstract_bmc -> "abstract"
  | Bdd_reach -> "bdd"

let method_of_string s =
  match List.find_opt (fun m -> method_to_string m = s) all_methods with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown method %S (expected one of: %s)" s
         (String.concat ", " (List.map method_to_string all_methods)))

type options = {
  max_depth : int;
  timeout_s : float option;
  stability : int;
  max_bdd_nodes : int;
  certify : bool;
  proof_dir : string option;
  conflict_budget : int option;
  learnt_mb_budget : float option;
  domains : int;
  share_clauses : bool;
  cache : bool;
  cache_dir : string option;
}

let default_options =
  {
    max_depth = 100;
    timeout_s = None;
    stability = 10;
    max_bdd_nodes = 2_000_000;
    certify = false;
    proof_dir = None;
    conflict_budget = None;
    learnt_mb_budget = None;
    domains = 1;
    share_clauses = true;
    cache = false;
    cache_dir = None;
  }

type conclusion =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int; trace : Bmc.Trace.t option; genuine : bool option }
  | Inconclusive of string

type cache_status = Cache_off | Cache_miss | Cache_hit | Cache_dedup

type outcome = {
  conclusion : conclusion;
  time_s : float;
  solve_time_s : float;
  encode_time_s : float;
  memory_mb : float;
  model_latches : int;
  model_vars : int;
  model_clauses : int;
  vars_saved : int;
  clauses_saved : int;
  emm_counts : Emm.counts option;
  abstraction : Pba.abstraction option;
  solver_stats : Satsolver.Solver.stats option;
      (* None for the BDD method, which involves no SAT solver *)
  certificate : Cert.t;
  proof_steps : int;
  error : Policy.error option;
  degradations : Policy.event list;
  cache : cache_status;
  cert_artifact : Bmc.Engine.cert_artifact option;
}

let deadline_of opts =
  Option.map (fun s -> Obs.now () +. s) opts.timeout_s

let engine_config ?(proof_checks = true) ?free_latches ?proof_file opts =
  {
    Bmc.Engine.default_config with
    max_depth = opts.max_depth;
    deadline = deadline_of opts;
    proof_checks;
    free_latches = Option.value free_latches ~default:(fun _ -> false);
    certify = opts.certify;
    conflict_budget = opts.conflict_budget;
    learnt_mb_budget = opts.learnt_mb_budget;
    proof_file;
    portfolio =
      (if opts.domains > 1 then
         Some
           {
             Portfolio.default_config with
             Portfolio.domains = opts.domains;
             share = opts.share_clauses;
           }
       else None);
  }

(* Translate an engine result, replaying counterexamples on [replay_net]. *)
let conclusion_of_result replay_net (result : Bmc.Engine.result) =
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { depth; kind } ->
    Proved { depth; induction = kind = Bmc.Engine.Backward_induction }
  | Bmc.Engine.Counterexample t ->
    Falsified
      {
        depth = t.Bmc.Trace.depth;
        trace = Some t;
        genuine = Some (Bmc.Trace.replay replay_net t);
      }
  | Bmc.Engine.Bounded_safe d ->
    Inconclusive (Printf.sprintf "no counterexample up to depth %d" d)
  | Bmc.Engine.Reasons_stable d ->
    Inconclusive (Printf.sprintf "latch reasons stable at depth %d" d)
  | Bmc.Engine.Timed_out d -> Inconclusive (Printf.sprintf "timeout after depth %d" d)
  | Bmc.Engine.Out_of_budget { depth; what } ->
    Inconclusive (Printf.sprintf "out of budget (%s) after depth %d" what depth)

(* The typed error behind an inconclusive-for-resource-reasons verdict or a
   refuted certificate, for the policy layer's fallback decisions. *)
let error_of_result (result : Bmc.Engine.result) =
  match result.Bmc.Engine.certificate with
  | Cert.Refuted why -> Some (Policy.Cert_failed why)
  | Cert.Certified _ | Cert.Unchecked _ -> (
    match result.Bmc.Engine.verdict with
    | Bmc.Engine.Timed_out d ->
      Some (Policy.Budget_exhausted (Printf.sprintf "wall clock after depth %d" d))
    | Bmc.Engine.Out_of_budget { depth; what } ->
      Some (Policy.Budget_exhausted (Printf.sprintf "%s after depth %d" what depth))
    | Bmc.Engine.Proof _ | Bmc.Engine.Counterexample _ | Bmc.Engine.Bounded_safe _
    | Bmc.Engine.Reasons_stable _ -> None)

let outcome_of_result ?emm_counts ?abstraction ~model_latches ~time_s replay_net
    (result : Bmc.Engine.result) =
  let stats = result.Bmc.Engine.stats in
  let emm_saved_v, emm_saved_c, emm_encode =
    match emm_counts with
    | Some c -> (c.Emm.saved_vars, c.Emm.saved_clauses, c.Emm.encode_time_s)
    | None -> (0, 0, 0.0)
  in
  {
    conclusion = conclusion_of_result replay_net result;
    time_s;
    solve_time_s = stats.Bmc.Engine.solve_time;
    encode_time_s = stats.Bmc.Engine.encode_time +. emm_encode;
    memory_mb = stats.Bmc.Engine.peak_memory_mb;
    model_latches;
    model_vars = stats.Bmc.Engine.num_vars;
    model_clauses = stats.Bmc.Engine.num_clauses;
    vars_saved = stats.Bmc.Engine.vars_saved + emm_saved_v;
    clauses_saved = stats.Bmc.Engine.clauses_saved + emm_saved_c;
    emm_counts;
    abstraction;
    solver_stats = Some stats.Bmc.Engine.solver_stats;
    certificate = result.Bmc.Engine.certificate;
    proof_steps = stats.Bmc.Engine.proof_steps;
    error = error_of_result result;
    degradations = [];
    cache = Cache_off;
    cert_artifact = result.Bmc.Engine.artifact;
  }

let num_latches net = List.length (Netlist.latches net)

(* Where to dump this run's DRAT derivation, when [options.proof_dir] asks
   for one.  The directory is created on demand. *)
let proof_file_of options ~method_ ~property =
  match options.proof_dir with
  | None -> None
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let sanitize s =
      String.map (fun c ->
          match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c | _ -> '_')
        s
    in
    Some
      (Filename.concat dir
         (Printf.sprintf "%s-%s.drat" (sanitize property) (method_to_string method_)))

let rec verify_uncached ?(options = default_options) ~method_ net ~property =
  Obs.span "verify"
    ~attrs:
      [
        ("method", Obs.Str (method_to_string method_));
        ("property", Obs.Str property);
      ]
    (fun () ->
  let t0 = Obs.now () in
  let elapsed () = Obs.now () -. t0 in
  let proof_file = proof_file_of options ~method_ ~property in
  match method_ with
  | Emm_bmc ->
    let result, counts =
      Emm.check ~config:(engine_config ?proof_file options) net ~property
    in
    outcome_of_result ~emm_counts:counts ~model_latches:(num_latches net)
      ~time_s:(elapsed ()) net result
  | Emm_falsify ->
    let result, counts =
      Emm.check ~config:(engine_config ~proof_checks:false ?proof_file options) net
        ~property
    in
    outcome_of_result ~emm_counts:counts ~model_latches:(num_latches net)
      ~time_s:(elapsed ()) net result
  | Explicit_bmc ->
    let expanded = Explicitmem.expand net in
    let result =
      Bmc.Engine.check ~config:(engine_config ?proof_file options) expanded ~property
    in
    outcome_of_result ~model_latches:(num_latches expanded) ~time_s:(elapsed ())
      expanded result
  | Abstract_bmc ->
    (* Memory read data left entirely unconstrained: cheap, but
       counterexamples may be spurious (checked by replay). *)
    let result =
      Bmc.Engine.check ~config:(engine_config ?proof_file options) net ~property
    in
    outcome_of_result ~model_latches:(num_latches net) ~time_s:(elapsed ()) net result
  | Emm_pba -> verify_pba ~options ~use_emm:true net ~property ~t0
  | Explicit_pba ->
    let expanded = Explicitmem.expand net in
    verify_pba ~options ~use_emm:false expanded ~property ~t0
  | Bdd_reach ->
    let expanded = Explicitmem.expand net in
    let r =
      Bddmc.check ~max_nodes:options.max_bdd_nodes ~max_steps:options.max_depth
        expanded ~property
    in
    let conclusion, error =
      match r.Bddmc.verdict with
      | Bddmc.Safe steps -> (Proved { depth = steps; induction = false }, None)
      | Bddmc.Unsafe steps ->
        (Falsified { depth = steps; trace = None; genuine = None }, None)
      | Bddmc.Node_limit ->
        ( Inconclusive "BDD node limit exceeded",
          Some (Policy.Budget_exhausted "BDD node limit") )
      | Bddmc.Step_limit n -> (Inconclusive (Printf.sprintf "BDD step limit (%d)" n), None)
    in
    {
      conclusion;
      time_s = elapsed ();
      solve_time_s = r.Bddmc.time;
      encode_time_s = 0.0;
      memory_mb = float_of_int (r.Bddmc.peak_nodes * 40) /. 1e6;
      model_latches = num_latches expanded;
      model_vars = 2 * num_latches expanded;
      model_clauses = 0;
      vars_saved = 0;
      clauses_saved = 0;
      emm_counts = None;
      abstraction = None;
      solver_stats = None;
      certificate = Cert.Unchecked "bdd engine produces no certificate";
      proof_steps = 0;
      error;
      degradations = [];
      cache = Cache_off;
      cert_artifact = None;
    })

and verify_pba ~options ~use_emm net ~property ~t0 =
  let elapsed () = Obs.now () -. t0 in
  match
    Pba.discover ~max_depth:options.max_depth ~stability:options.stability
      ?deadline:(deadline_of options) ~use_emm net ~property
  with
  | Either.Right verdict ->
    (* Discovery itself concluded. *)
    let result =
      { Bmc.Engine.verdict;
        stats =
          {
            Bmc.Engine.depths_completed = 0;
            solve_time = 0.0;
            encode_time = 0.0;
            cert_time_s = 0.0;
            proof_steps = 0;
            num_vars = 0;
            num_clauses = 0;
            num_conflicts = 0;
            vars_saved = 0;
            clauses_saved = 0;
            peak_memory_mb = 0.0;
            latch_reasons = [];
            memory_reasons = [];
            reasons_last_changed = 0;
            solver_stats = Satsolver.Solver.empty_stats;
          };
        certificate = Cert.Unchecked "pba discovery verdict";
        artifact = None;
      }
    in
    outcome_of_result ~model_latches:(num_latches net) ~time_s:(elapsed ()) net result
  | Either.Left abstraction ->
    let result, counts =
      Pba.check_with_abstraction ~config:(engine_config options) net abstraction
        ~property
    in
    outcome_of_result ~emm_counts:counts ~abstraction
      ~model_latches:(List.length abstraction.Pba.kept_latches)
      ~time_s:(elapsed ()) net result

(* {2 The verification-result cache} *)

(* Generation tag of the whole encoding stack, part of every cache key.
   Bump on any change to the unroller, the EMM constraint generator, the
   explicit expansion, PBA discovery or the BDD engine that can change a
   verdict for the same (cone, options) pair.
   History: "2" — memory-state distinctness joined the loop-free-path
   termination constraints (proved depths and verdicts can differ from
   generation "1" on latch-poor designs with write ports). *)
let encoding_version = "2"

let cache_config (options : options) =
  if options.cache then Some (Vcache.config ?dir:options.cache_dir ()) else None

(* The verdict-relevant option attributes.  Deliberately absent: [certify]
   (changes the evidence, never the verdict), [timeout_s] / conflict and
   learnt budgets (runs they cut short carry a typed error and are never
   cached; runs they don't cut short are identical), [domains] /
   [share_clauses] (a portfolio race returns the same verdict), [proof_dir]. *)
let cache_attrs options ~method_ =
  let base =
    [
      ("engine", method_to_string method_);
      ("max_depth", string_of_int options.max_depth);
      ("encoder", encoding_version);
    ]
  in
  match method_ with
  | Emm_pba | Explicit_pba -> ("stability", string_of_int options.stability) :: base
  | Bdd_reach -> ("max_bdd_nodes", string_of_int options.max_bdd_nodes) :: base
  | Emm_bmc | Emm_falsify | Explicit_bmc | Abstract_bmc -> base

let cone_of net ~property =
  match Netlist.find_property net property with
  | root -> Some (Netlist.cone_signature net root)
  | exception _ -> None

let cache_key options ~method_ net ~property =
  Option.map
    (fun cone -> Vcache.Key.make ~cone ~attrs:(cache_attrs options ~method_))
    (cone_of net ~property)

(* Is this outcome safe to persist?  Only verdicts that are deterministic
   functions of (cone, key attributes): proofs, genuine counterexamples with
   their trace, and honest bound-exhausted inconclusives.  Anything carrying
   a typed error — timeouts, resource budgets, dead workers, refuted
   certificates — depends on machine load or luck and is never cached. *)
let entry_of_outcome options ~method_ (o : outcome) =
  if o.error <> None then None
  else
    let unsat_payload =
      match o.cert_artifact with
      | Some a -> Vcache.Drat_payload a
      | None -> Vcache.No_payload
    in
    let verdict_payload =
      match o.conclusion with
      | Proved { depth; induction } ->
        Some (Vcache.Proved { depth; induction }, unsat_payload)
      | Falsified { depth; trace = Some t; genuine } when genuine <> Some false ->
        Some (Vcache.Falsified { depth }, Vcache.Trace_payload t)
      | Falsified _ -> None
      | Inconclusive reason ->
        Some (Vcache.Bounded { depth = options.max_depth; reason }, unsat_payload)
    in
    Option.map
      (fun (e_verdict, e_payload) ->
        {
          Vcache.e_method = method_to_string method_;
          e_verdict;
          e_time_s = o.time_s;
          e_solve_time_s = o.solve_time_s;
          e_model_vars = o.model_vars;
          e_model_clauses = o.model_clauses;
          e_model_latches = o.model_latches;
          e_cert = Cert.label o.certificate;
          e_created = Unix.gettimeofday ();
          e_payload;
        })
      verdict_payload

(* A loaded entry is evidence, not gospel: [Stale] evidence contradicts the
   live design (entry removed, solved fresh); [Unusable] evidence cannot
   satisfy the caller's certification demand (entry kept, solved fresh). *)
type hit = Hit of outcome | Stale | Unusable

let outcome_of_entry ~certify ~t0 net ~property (e : Vcache.entry) =
  let base conclusion certificate proof_steps =
    {
      conclusion;
      time_s = Obs.now () -. t0;
      solve_time_s = 0.0;
      encode_time_s = 0.0;
      memory_mb = 0.0;
      model_latches = e.Vcache.e_model_latches;
      model_vars = e.Vcache.e_model_vars;
      model_clauses = e.Vcache.e_model_clauses;
      vars_saved = 0;
      clauses_saved = 0;
      emm_counts = None;
      abstraction = None;
      solver_stats = None;
      certificate;
      proof_steps;
      error = None;
      degradations = [];
      cache = Cache_hit;
      cert_artifact = None;
    }
  in
  let uncertified =
    Cert.Unchecked (Printf.sprintf "cache hit (recorded: %s)" e.Vcache.e_cert)
  in
  (* Proofs and bound-exhausted answers rest on UNSAT queries: accept as-is
     when the caller does not demand certification, otherwise re-run the
     independent DRAT checker over the stored evidence. *)
  let unsat_backed conclusion =
    if not certify then Hit (base conclusion uncertified 0)
    else
      match e.Vcache.e_payload with
      | Vcache.Drat_payload a -> (
        match
          Cert.Drat.check ~num_vars:a.Bmc.Engine.ca_num_vars
            ~original:a.Bmc.Engine.ca_original ~proof:a.Bmc.Engine.ca_proof
            ~obligations:a.Bmc.Engine.ca_obligations ()
        with
        | Cert.Drat.Valid r ->
          Hit (base conclusion (Cert.Certified Cert.Drat_checked) r.Cert.Drat.steps)
        | Cert.Drat.Invalid _ -> Stale
        | exception _ -> Stale)
      | Vcache.No_payload | Vcache.Trace_payload _ -> Unusable
  in
  match e.Vcache.e_verdict with
  | Vcache.Proved { depth; induction } -> unsat_backed (Proved { depth; induction })
  | Vcache.Bounded { reason; _ } -> unsat_backed (Inconclusive reason)
  | Vcache.Falsified { depth } -> (
    match e.Vcache.e_payload with
    | Vcache.Trace_payload t -> (
      (* A counterexample self-validates: replay it on the live design.  A
         trace recorded against an isomorphic-but-renamed design fails the
         replay and degrades to a miss — never to a wrong verdict. *)
      let t = { t with Bmc.Trace.property } in
      if certify then
        match Bmc.Trace.certify net t with
        | Cert.Certified _ as c ->
          Hit (base (Falsified { depth; trace = Some t; genuine = Some true }) c 0)
        | Cert.Refuted _ | Cert.Unchecked _ -> Stale
        | exception _ -> Stale
      else
        match Bmc.Trace.replay net t with
        | true ->
          Hit
            (base
               (Falsified { depth; trace = Some t; genuine = Some true })
               uncertified 0)
        | false -> Stale
        | exception _ -> Stale)
    | Vcache.No_payload | Vcache.Drat_payload _ -> Stale)

let verify ?(options = default_options) ~method_ net ~property =
  (* The artifact exists to feed the store; never let it escape (outcomes
     cross process boundaries in the worker pools). *)
  let finish o = { o with cert_artifact = None } in
  let uncached status =
    finish { (verify_uncached ~options ~method_ net ~property) with cache = status }
  in
  match cache_config options with
  | None -> uncached Cache_off
  | Some cfg -> (
    let t0 = Obs.now () in
    match cache_key options ~method_ net ~property with
    | None -> uncached Cache_off
    | Some key -> (
      let solve_and_store () =
        let o = verify_uncached ~options ~method_ net ~property in
        (match entry_of_outcome options ~method_ o with
        | Some entry -> Vcache.store cfg key entry
        | None -> ());
        finish { o with cache = Cache_miss }
      in
      match Vcache.load cfg key with
      | None -> solve_and_store ()
      | Some e -> (
        match outcome_of_entry ~certify:options.certify ~t0 net ~property e with
        | Hit o -> o
        | Stale ->
          Obs.counter_add "vcache.stale" 1;
          Vcache.remove cfg key;
          solve_and_store ()
        | Unusable ->
          Obs.counter_add "vcache.uncertifiable_hits" 1;
          solve_and_store ())))

(* {2 Parallel fan-out} *)

(* The slot outcome of a worker that never produced one: crashed, ran out of
   memory, was SIGKILLed by the job deadline or cancelled by a portfolio
   winner.  The elapsed wall clock is the worker's partial telemetry. *)
let killed_outcome ~elapsed_s msg =
  {
    conclusion = Inconclusive ("worker killed: " ^ msg);
    time_s = elapsed_s;
    solve_time_s = 0.0;
    encode_time_s = 0.0;
    memory_mb = 0.0;
    model_latches = 0;
    model_vars = 0;
    model_clauses = 0;
    vars_saved = 0;
    clauses_saved = 0;
    emm_counts = None;
    abstraction = None;
    solver_stats = None;
    certificate = Cert.Unchecked "worker killed";
    proof_steps = 0;
    error = Some (Policy.Worker_killed msg);
    degradations = [];
    cache = Cache_off;
    cert_artifact = None;
  }

let is_infix ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

(* Map a worker-pool failure onto the policy taxonomy.  A child that died of
   a signal, a nonzero exit, out-of-memory or a stack overflow is a killed
   worker (retryable); an exception escaping the engine — typically the
   encoder — is an encode error (not retryable, fall through). *)
let error_of_failure (f : Parallel.failure) =
  match f.Parallel.reason with
  | Parallel.Timed_out d ->
    Policy.Budget_exhausted (Printf.sprintf "worker exceeded %.1fs wall-clock deadline" d)
  | Parallel.Cancelled -> Policy.Worker_killed "cancelled"
  | Parallel.Protocol why -> Policy.Worker_killed ("protocol: " ^ why)
  | Parallel.Crashed why ->
    (* [Printexc.to_string] spells the built-in exceptions with spaces. *)
    if is_infix ~affix:"Out of memory" why || is_infix ~affix:"Stack overflow" why
    then Policy.Worker_killed why
    else if is_infix ~affix:"uncaught exception" why then Policy.Encode_error why
    else Policy.Worker_killed why

(* Engines already honour [options.timeout_s] internally and return
   [Timed_out]; the hard SIGKILL deadline is a backstop for workers stuck
   outside the solver's periodic deadline checks, so it gets slack. *)
let hard_deadline options job_timeout_s =
  match job_timeout_s with
  | Some _ -> job_timeout_s
  | None -> Option.map (fun t -> (t *. 1.25) +. 5.0) options.timeout_s

let slot_outcome key = function
  | Ok o -> (key, o)
  | Error (f : Parallel.failure) ->
    let o = killed_outcome ~elapsed_s:f.Parallel.elapsed_s (Parallel.failure_message f) in
    (key, { o with error = Some (error_of_failure f) })

(* {2 Policy-driven resilience} *)

(* Narrow the run options to the policy's budgets. *)
let apply_budgets options (b : Policy.budgets) =
  {
    options with
    timeout_s =
      (match (b.Policy.wall_s, options.timeout_s) with
      | Some w, Some t -> Some (Float.min w t)
      | Some w, None -> Some w
      | None, t -> t);
    max_depth =
      (match b.Policy.max_depth with
      | Some d -> min d options.max_depth
      | None -> options.max_depth);
    conflict_budget =
      (match b.Policy.conflicts with Some _ as c -> c | None -> options.conflict_budget);
    learnt_mb_budget =
      (match b.Policy.learnt_mb with Some _ as m -> m | None -> options.learnt_mb_budget);
  }

(* How one engine attempt feeds the fallback chain: a refuted certificate or
   a resource-exhausted verdict is a failure (fall through / retry); a
   conclusive verdict wins; anything else is an honest inconclusive kept as
   the answer of last resort. *)
let classify_outcome conclusive o =
  match o.error with
  | Some e -> Policy.Failed e
  | None -> if conclusive o then Policy.Done o else Policy.Soft o

let verify_resilient ?(options = default_options) ?(policy = Policy.default) ?inject net
    ~property =
  let t0 = Obs.now () in
  let elapsed () = Obs.now () -. t0 in
  let options = apply_budgets options policy.Policy.budgets in
  let stages =
    match
      List.filter_map
        (fun s -> Result.to_option (method_of_string s))
        policy.Policy.fallback
    with
    | [] -> [ Emm_bmc ]
    | ms -> ms
  in
  let conclusive o =
    match o.conclusion with
    | Proved _ -> true
    | Falsified { genuine = Some false; _ } -> false
    | Falsified _ -> true
    | Inconclusive _ -> false
  in
  let run method_ ~attempt =
    (* One forked worker per attempt: crash isolation, and a hook for the
       fault-injection tests to kill or poison the child. *)
    let results =
      Parallel.map ~jobs:1
        ?job_timeout_s:(hard_deadline options None)
        ~f:(fun () ->
          (match inject with Some f -> f method_ ~attempt | None -> ());
          verify ~options ~method_ net ~property)
        [ () ]
    in
    match results with
    | [ Ok o ] -> classify_outcome conclusive o
    | [ Error f ] -> Policy.Failed (error_of_failure f)
    | _ -> Policy.Failed (Policy.Worker_killed "no worker result")
  in
  let result, events =
    Policy.execute policy ~stages ~stage_name:method_to_string ~run
  in
  match result with
  | Ok o -> { o with degradations = events }
  | Error err ->
    let o = killed_outcome ~elapsed_s:(elapsed ()) (Policy.error_message err) in
    {
      o with
      conclusion = Inconclusive (Policy.error_message err);
      error = Some err;
      degradations = events;
    }

(* Transfer the representative's outcome to a structurally identical
   property.  The verdict transfers by cone isomorphism; the concrete trace
   transfers only when it replays under the duplicate's names (with
   hash-consing, duplicates usually share the very nodes, so it does). *)
let retarget_dup net ~property (o : outcome) =
  Obs.counter_add "vcache.dedup" 1;
  let conclusion =
    match o.conclusion with
    | Falsified { depth; trace = Some t; genuine } -> (
      let t = { t with Bmc.Trace.property } in
      match genuine with
      | Some true ->
        if try Bmc.Trace.replay net t with _ -> false then
          Falsified { depth; trace = Some t; genuine = Some true }
        else Falsified { depth; trace = None; genuine = Some true }
      | g -> Falsified { depth; trace = Some t; genuine = g })
    | c -> c
  in
  { o with conclusion; cache = Cache_dedup }

let verify_many ?(options = default_options) ?(jobs = 1) ?job_timeout_s ?policy ~method_
    net ~properties =
  let verify_one property =
    match policy with
    | None -> verify ~options ~method_ net ~property
    | Some policy -> verify_resilient ~options ~policy net ~property
  in
  (* Intra-batch structural dedup: properties whose cones have identical
     canonical signatures are solved once and the verdict fanned out —
     independent of (and composing with) the persistent cache.  Off under
     [certify] (every property deserves its own checked evidence) and under
     a policy (fallback chains are per-property). *)
  let dedup_on = policy = None && (not options.certify) && List.length properties > 1 in
  let plan =
    let seen = Hashtbl.create 16 in
    List.map
      (fun p ->
        match if dedup_on then cone_of net ~property:p else None with
        | None -> (p, None)
        | Some s -> (
          match Hashtbl.find_opt seen s with
          | Some rep -> (p, Some rep)
          | None ->
            Hashtbl.add seen s p;
            (p, None)))
      properties
  in
  let to_solve = List.filter_map (fun (p, rep) -> if rep = None then Some p else None) plan in
  let solved =
    if jobs <= 1 then List.map (fun property -> (property, verify_one property)) to_solve
    else
      Obs.span "verify_many"
        ~attrs:[ ("jobs", Obs.Int jobs); ("properties", Obs.Int (List.length to_solve)) ]
        (fun () ->
          let pool = Parallel.create ~jobs () in
          Parallel.run
            ?job_timeout_s:
              (match policy with
              | None -> hard_deadline options job_timeout_s
              | Some _ ->
                (* The resilient path forks and deadlines its own attempts; a
                   pool deadline would kill the whole chain mid-fallback. *)
                job_timeout_s)
            pool ~f:verify_one to_solve
          |> List.map2 slot_outcome to_solve)
  in
  List.map
    (fun (p, rep) ->
      match rep with
      | None -> (p, List.assoc p solved)
      | Some rep -> (p, retarget_dup net ~property:p (List.assoc rep solved)))
    plan

(* {2 Incremental re-verification} *)

type delta_status = Delta_unchanged | Delta_changed | Delta_added

let delta_status_to_string = function
  | Delta_unchanged -> "unchanged"
  | Delta_changed -> "changed"
  | Delta_added -> "added"

let verify_delta ?(options = default_options) ?(jobs = 1) ?job_timeout_s ~method_ ~before
    net ~properties =
  let statuses =
    List.map
      (fun p ->
        match (cone_of before ~property:p, cone_of net ~property:p) with
        | None, _ -> (p, Delta_added)
        | Some _, None -> (p, Delta_changed)
        | Some old_sig, Some new_sig ->
          (p, if String.equal old_sig new_sig then Delta_unchanged else Delta_changed))
      properties
  in
  let outcomes = verify_many ~options ~jobs ?job_timeout_s ~method_ net ~properties in
  List.map2 (fun (p, st) (_, o) -> (p, st, o)) statuses outcomes

(* A conclusive verdict settles the property: a proof, or a counterexample
   not known to be spurious.  [Inconclusive] and replay-refuted
   counterexamples (the abstract engine's speciality) leave the race open. *)
let conclusive o =
  match o.conclusion with
  | Proved _ -> true
  | Falsified { genuine = Some false; _ } -> false
  | Falsified _ -> true
  | Inconclusive _ -> false

let default_portfolio = [ Emm_bmc; Explicit_bmc; Bdd_reach ]

let portfolio ?(options = default_options) ?(methods = default_portfolio) ?job_timeout_s
    ?(policy = Policy.default) net ~property =
  if methods = [] then invalid_arg "Emmver.portfolio: empty method list";
  let race ms =
    Obs.span "race"
      ~attrs:
        [ ("methods", Obs.Str (String.concat "," (List.map method_to_string ms))) ]
      (fun () ->
        let pool = Parallel.create ~jobs:(List.length ms) () in
        Parallel.race
          ?job_timeout_s:(hard_deadline options job_timeout_s)
          pool
          ~f:(fun method_ -> verify ~options ~method_ net ~property)
          ~conclusive ms)
  in
  let winner, results = race methods in
  let slots = List.combine methods results in
  (* When nobody won and some workers died, grant the dead engines one
     re-race per the policy's worker-death retry allowance. *)
  let dead =
    List.filter_map
      (fun (m, r) ->
        match r with
        | Error ({ Parallel.reason = Parallel.Crashed _ | Parallel.Protocol _; _ } as f)
          -> Some (m, f)
        | Ok _ | Error _ -> None)
      slots
  in
  let winner, slots, events =
    match (winner, dead) with
    | None, _ :: _ when policy.Policy.worker_retries > 0 ->
      let events =
        List.map
          (fun (m, f) ->
            {
              Policy.ev_stage = method_to_string m;
              ev_attempt = 0;
              ev_error = error_of_failure f;
              ev_elapsed_s = f.Parallel.elapsed_s;
            })
          dead
      in
      let dead_methods = List.map fst dead in
      let winner2, results2 = race dead_methods in
      let retried = List.combine dead_methods results2 in
      let slots =
        List.map
          (fun (m, r) ->
            match List.assoc_opt m retried with Some r2 -> (m, r2) | None -> (m, r))
          slots
      in
      let winner2 =
        Option.map (fun (i, o) -> (List.nth dead_methods i, o)) winner2
      in
      (winner2, slots, events)
    | Some (i, o), _ -> (Some (List.nth methods i, o), slots, [])
    | _ -> (None, slots, [])
  in
  let outcomes = List.map (fun (m, r) -> slot_outcome m r) slots in
  let win =
    match winner with
    | Some (m, o) -> (m, { o with degradations = events @ o.degradations })
    | None ->
      let m, o = List.hd outcomes in
      (m, { o with degradations = events @ o.degradations })
  in
  (win, outcomes)

let pp_conclusion ppf = function
  | Proved { depth; induction } ->
    Format.fprintf ppf "proved (%s at depth %d)"
      (if induction then "induction" else "diameter/fixpoint")
      depth
  | Falsified { depth; genuine; _ } ->
    Format.fprintf ppf "falsified at depth %d%s" depth
      (match genuine with
      | Some true -> " (genuine counterexample)"
      | Some false -> " (SPURIOUS counterexample)"
      | None -> "")
  | Inconclusive msg -> Format.fprintf ppf "inconclusive: %s" msg

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%a@,time %.2fs (solver %.2fs, encode %.2fs), %.1f MB, model: %d latches, \
     %d vars, %d clauses (saved %d vars, %d clauses)@]"
    pp_conclusion o.conclusion o.time_s o.solve_time_s o.encode_time_s o.memory_mb
    o.model_latches o.model_vars o.model_clauses o.vars_saved o.clauses_saved;
  (match o.cache with
  | Cache_off -> ()
  | Cache_miss -> Format.fprintf ppf "@,cache: miss (recorded)"
  | Cache_hit -> Format.fprintf ppf "@,cache: hit"
  | Cache_dedup -> Format.fprintf ppf "@,cache: deduplicated within batch");
  (match o.solver_stats with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "@,solver: conflicts=%d decisions=%d props=%d restarts=%d learnt=%d \
       deleted=%d minimised=%d avg-lbd=%.2f"
      s.Satsolver.Solver.conflicts s.decisions s.propagations s.restarts
      s.learnt_clauses s.deleted_clauses s.minimised_lits s.avg_lbd;
    if s.shared_out > 0 || s.shared_in > 0 then
      Format.fprintf ppf " shared-out=%d shared-in=%d" s.shared_out s.shared_in);
  (match o.certificate with
  | Cert.Unchecked _ -> ()
  | c -> Format.fprintf ppf "@,certificate: %a" Cert.pp c);
  List.iter
    (fun ev -> Format.fprintf ppf "@,degraded: %a" Policy.pp_event ev)
    o.degradations
