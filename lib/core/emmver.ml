type method_ =
  | Emm_bmc
  | Emm_falsify
  | Emm_pba
  | Explicit_bmc
  | Explicit_pba
  | Abstract_bmc
  | Bdd_reach

let all_methods =
  [ Emm_bmc; Emm_falsify; Emm_pba; Explicit_bmc; Explicit_pba; Abstract_bmc; Bdd_reach ]

let method_to_string = function
  | Emm_bmc -> "emm"
  | Emm_falsify -> "emm-falsify"
  | Emm_pba -> "emm-pba"
  | Explicit_bmc -> "explicit"
  | Explicit_pba -> "explicit-pba"
  | Abstract_bmc -> "abstract"
  | Bdd_reach -> "bdd"

let method_of_string s =
  match List.find_opt (fun m -> method_to_string m = s) all_methods with
  | Some m -> Ok m
  | None ->
    Error
      (Printf.sprintf "unknown method %S (expected one of: %s)" s
         (String.concat ", " (List.map method_to_string all_methods)))

type options = {
  max_depth : int;
  timeout_s : float option;
  stability : int;
  max_bdd_nodes : int;
}

let default_options =
  { max_depth = 100; timeout_s = None; stability = 10; max_bdd_nodes = 2_000_000 }

type conclusion =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int; trace : Bmc.Trace.t option; genuine : bool option }
  | Inconclusive of string

type outcome = {
  conclusion : conclusion;
  time_s : float;
  solve_time_s : float;
  encode_time_s : float;
  memory_mb : float;
  model_latches : int;
  model_vars : int;
  model_clauses : int;
  vars_saved : int;
  clauses_saved : int;
  emm_counts : Emm.counts option;
  abstraction : Pba.abstraction option;
  solver_stats : Satsolver.Solver.stats option;
      (* None for the BDD method, which involves no SAT solver *)
}

let deadline_of opts =
  Option.map (fun s -> Unix.gettimeofday () +. s) opts.timeout_s

let engine_config ?(proof_checks = true) ?free_latches opts =
  {
    Bmc.Engine.default_config with
    max_depth = opts.max_depth;
    deadline = deadline_of opts;
    proof_checks;
    free_latches = Option.value free_latches ~default:(fun _ -> false);
  }

(* Translate an engine result, replaying counterexamples on [replay_net]. *)
let conclusion_of_result replay_net (result : Bmc.Engine.result) =
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { depth; kind } ->
    Proved { depth; induction = kind = Bmc.Engine.Backward_induction }
  | Bmc.Engine.Counterexample t ->
    Falsified
      {
        depth = t.Bmc.Trace.depth;
        trace = Some t;
        genuine = Some (Bmc.Trace.replay replay_net t);
      }
  | Bmc.Engine.Bounded_safe d ->
    Inconclusive (Printf.sprintf "no counterexample up to depth %d" d)
  | Bmc.Engine.Reasons_stable d ->
    Inconclusive (Printf.sprintf "latch reasons stable at depth %d" d)
  | Bmc.Engine.Timed_out d -> Inconclusive (Printf.sprintf "timeout after depth %d" d)

let outcome_of_result ?emm_counts ?abstraction ~model_latches ~time_s replay_net
    (result : Bmc.Engine.result) =
  let stats = result.Bmc.Engine.stats in
  let emm_saved_v, emm_saved_c, emm_encode =
    match emm_counts with
    | Some c -> (c.Emm.saved_vars, c.Emm.saved_clauses, c.Emm.encode_time_s)
    | None -> (0, 0, 0.0)
  in
  {
    conclusion = conclusion_of_result replay_net result;
    time_s;
    solve_time_s = stats.Bmc.Engine.solve_time;
    encode_time_s = stats.Bmc.Engine.encode_time +. emm_encode;
    memory_mb = stats.Bmc.Engine.peak_memory_mb;
    model_latches;
    model_vars = stats.Bmc.Engine.num_vars;
    model_clauses = stats.Bmc.Engine.num_clauses;
    vars_saved = stats.Bmc.Engine.vars_saved + emm_saved_v;
    clauses_saved = stats.Bmc.Engine.clauses_saved + emm_saved_c;
    emm_counts;
    abstraction;
    solver_stats = Some stats.Bmc.Engine.solver_stats;
  }

let num_latches net = List.length (Netlist.latches net)

let rec verify ?(options = default_options) ~method_ net ~property =
  let t0 = Unix.gettimeofday () in
  let elapsed () = Unix.gettimeofday () -. t0 in
  match method_ with
  | Emm_bmc ->
    let result, counts = Emm.check ~config:(engine_config options) net ~property in
    outcome_of_result ~emm_counts:counts ~model_latches:(num_latches net)
      ~time_s:(elapsed ()) net result
  | Emm_falsify ->
    let result, counts =
      Emm.check ~config:(engine_config ~proof_checks:false options) net ~property
    in
    outcome_of_result ~emm_counts:counts ~model_latches:(num_latches net)
      ~time_s:(elapsed ()) net result
  | Explicit_bmc ->
    let expanded = Explicitmem.expand net in
    let result = Bmc.Engine.check ~config:(engine_config options) expanded ~property in
    outcome_of_result ~model_latches:(num_latches expanded) ~time_s:(elapsed ())
      expanded result
  | Abstract_bmc ->
    (* Memory read data left entirely unconstrained: cheap, but
       counterexamples may be spurious (checked by replay). *)
    let result = Bmc.Engine.check ~config:(engine_config options) net ~property in
    outcome_of_result ~model_latches:(num_latches net) ~time_s:(elapsed ()) net result
  | Emm_pba -> verify_pba ~options ~use_emm:true net ~property ~t0
  | Explicit_pba ->
    let expanded = Explicitmem.expand net in
    verify_pba ~options ~use_emm:false expanded ~property ~t0
  | Bdd_reach ->
    let expanded = Explicitmem.expand net in
    let r =
      Bddmc.check ~max_nodes:options.max_bdd_nodes ~max_steps:options.max_depth
        expanded ~property
    in
    let conclusion =
      match r.Bddmc.verdict with
      | Bddmc.Safe steps -> Proved { depth = steps; induction = false }
      | Bddmc.Unsafe steps -> Falsified { depth = steps; trace = None; genuine = None }
      | Bddmc.Node_limit -> Inconclusive "BDD node limit exceeded"
      | Bddmc.Step_limit n -> Inconclusive (Printf.sprintf "BDD step limit (%d)" n)
    in
    {
      conclusion;
      time_s = elapsed ();
      solve_time_s = r.Bddmc.time;
      encode_time_s = 0.0;
      memory_mb = float_of_int (r.Bddmc.peak_nodes * 40) /. 1e6;
      model_latches = num_latches expanded;
      model_vars = 2 * num_latches expanded;
      model_clauses = 0;
      vars_saved = 0;
      clauses_saved = 0;
      emm_counts = None;
      abstraction = None;
      solver_stats = None;
    }

and verify_pba ~options ~use_emm net ~property ~t0 =
  let elapsed () = Unix.gettimeofday () -. t0 in
  match
    Pba.discover ~max_depth:options.max_depth ~stability:options.stability
      ?deadline:(deadline_of options) ~use_emm net ~property
  with
  | Either.Right verdict ->
    (* Discovery itself concluded. *)
    let result =
      { Bmc.Engine.verdict;
        stats =
          {
            Bmc.Engine.depths_completed = 0;
            solve_time = 0.0;
            encode_time = 0.0;
            num_vars = 0;
            num_clauses = 0;
            num_conflicts = 0;
            vars_saved = 0;
            clauses_saved = 0;
            peak_memory_mb = 0.0;
            latch_reasons = [];
            memory_reasons = [];
            reasons_last_changed = 0;
            solver_stats = Satsolver.Solver.empty_stats;
          };
      }
    in
    outcome_of_result ~model_latches:(num_latches net) ~time_s:(elapsed ()) net result
  | Either.Left abstraction ->
    let result, counts =
      Pba.check_with_abstraction ~config:(engine_config options) net abstraction
        ~property
    in
    outcome_of_result ~emm_counts:counts ~abstraction
      ~model_latches:(List.length abstraction.Pba.kept_latches)
      ~time_s:(elapsed ()) net result

(* {2 Parallel fan-out} *)

(* The slot outcome of a worker that never produced one: crashed, ran out of
   memory, was SIGKILLed by the job deadline or cancelled by a portfolio
   winner.  The elapsed wall clock is the worker's partial telemetry. *)
let killed_outcome ~elapsed_s msg =
  {
    conclusion = Inconclusive ("worker killed: " ^ msg);
    time_s = elapsed_s;
    solve_time_s = 0.0;
    encode_time_s = 0.0;
    memory_mb = 0.0;
    model_latches = 0;
    model_vars = 0;
    model_clauses = 0;
    vars_saved = 0;
    clauses_saved = 0;
    emm_counts = None;
    abstraction = None;
    solver_stats = None;
  }

(* Engines already honour [options.timeout_s] internally and return
   [Timed_out]; the hard SIGKILL deadline is a backstop for workers stuck
   outside the solver's periodic deadline checks, so it gets slack. *)
let hard_deadline options job_timeout_s =
  match job_timeout_s with
  | Some _ -> job_timeout_s
  | None -> Option.map (fun t -> (t *. 1.25) +. 5.0) options.timeout_s

let slot_outcome key = function
  | Ok o -> (key, o)
  | Error (f : Parallel.failure) ->
    (key, killed_outcome ~elapsed_s:f.Parallel.elapsed_s (Parallel.failure_message f))

let verify_many ?(options = default_options) ?(jobs = 1) ?job_timeout_s ~method_ net
    ~properties =
  if jobs <= 1 then
    List.map (fun property -> (property, verify ~options ~method_ net ~property)) properties
  else
    let pool = Parallel.create ~jobs () in
    Parallel.run
      ?job_timeout_s:(hard_deadline options job_timeout_s)
      pool
      ~f:(fun property -> verify ~options ~method_ net ~property)
      properties
    |> List.map2 slot_outcome properties

(* A conclusive verdict settles the property: a proof, or a counterexample
   not known to be spurious.  [Inconclusive] and replay-refuted
   counterexamples (the abstract engine's speciality) leave the race open. *)
let conclusive o =
  match o.conclusion with
  | Proved _ -> true
  | Falsified { genuine = Some false; _ } -> false
  | Falsified _ -> true
  | Inconclusive _ -> false

let default_portfolio = [ Emm_bmc; Explicit_bmc; Bdd_reach ]

let portfolio ?(options = default_options) ?(methods = default_portfolio) ?job_timeout_s
    net ~property =
  if methods = [] then invalid_arg "Emmver.portfolio: empty method list";
  let pool = Parallel.create ~jobs:(List.length methods) () in
  let winner, results =
    Parallel.race
      ?job_timeout_s:(hard_deadline options job_timeout_s)
      pool
      ~f:(fun method_ -> verify ~options ~method_ net ~property)
      ~conclusive methods
  in
  let outcomes = List.map2 slot_outcome methods results in
  let win =
    match winner with
    | Some (i, o) -> (List.nth methods i, o)
    | None -> List.hd outcomes
  in
  (win, outcomes)

let pp_conclusion ppf = function
  | Proved { depth; induction } ->
    Format.fprintf ppf "proved (%s at depth %d)"
      (if induction then "induction" else "diameter/fixpoint")
      depth
  | Falsified { depth; genuine; _ } ->
    Format.fprintf ppf "falsified at depth %d%s" depth
      (match genuine with
      | Some true -> " (genuine counterexample)"
      | Some false -> " (SPURIOUS counterexample)"
      | None -> "")
  | Inconclusive msg -> Format.fprintf ppf "inconclusive: %s" msg

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%a@,time %.2fs (solver %.2fs, encode %.2fs), %.1f MB, model: %d latches, \
     %d vars, %d clauses (saved %d vars, %d clauses)@]"
    pp_conclusion o.conclusion o.time_s o.solve_time_s o.encode_time_s o.memory_mb
    o.model_latches o.model_vars o.model_clauses o.vars_saved o.clauses_saved;
  match o.solver_stats with
  | None -> ()
  | Some s ->
    Format.fprintf ppf
      "@,solver: conflicts=%d decisions=%d props=%d restarts=%d learnt=%d \
       deleted=%d minimised=%d avg-lbd=%.2f"
      s.Satsolver.Solver.conflicts s.decisions s.propagations s.restarts
      s.learnt_clauses s.deleted_clauses s.minimised_lits s.avg_lbd
