(** Content-addressed, persistent verification-result cache.

    The netlist is hash-consed and every engine encodes exactly the
    sequential fan-in cone of the property it checks, so a verification
    sub-problem is fully determined by {e cone structure} plus the
    verdict-relevant options (method, bound, encoder generation).  This
    module keys [(verdict, certificate)] entries by an MD5 digest of
    [Netlist.cone_signature] and those options, and persists them in an
    on-disk store shared by every process on the machine — identical
    sub-problems across runs, designs, depths and parallel workers reach
    the SAT solver once.

    Trust model: a cache hit is {e evidence}, not gospel.

    - Every entry carries a whole-file checksum; a corrupt, truncated,
      tampered or version-mismatched file is a miss, never an error.
    - Falsified entries carry the counterexample trace; the engine layer
      replays it on the live design before believing the hit (and under
      [--certify] runs the full interface-diffing replay), so a stale or
      foreign entry degrades to a miss.
    - Proved / bounded-safe entries can carry the DRAT evidence
      ({!Bmc.Engine.cert_artifact}); under [--certify] the independent
      checker re-validates it on the hit path.

    Writes are atomic (write-to-temp then [rename] within the store
    directory), so concurrent writers — the fork worker pool, racing
    portfolio engines, unrelated CLI runs — never corrupt the store; the
    last writer of an identical key wins and all of them wrote the same
    verdict.  All store operations are instrumented with [Obs] spans and
    [vcache.*] counters. *)

type config = {
  dir : string;  (** store directory, created on demand *)
  payload_limit_bytes : int;
      (** DRAT payloads above this size are dropped at store time (the entry
          is still written, verdict-only); default 32 MB *)
}

val default_dir : unit -> string
(** [$EMMVER_CACHE_DIR], else [$XDG_CACHE_HOME/emmver], else
    [~/.cache/emmver], else [.emmver-cache] when no home is known. *)

val config : ?dir:string -> ?payload_limit_bytes:int -> unit -> config

(** {1 Keys} *)

module Key : sig
  type t

  val make : cone:string -> attrs:(string * string) list -> t
  (** Digest of a canonical cone serialization ({!Netlist.cone_signature})
      and the verdict-relevant option attributes, order-normalized. *)

  val to_hex : t -> string
end

(** {1 Entries} *)

type verdict =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int }
  | Bounded of { depth : int; reason : string }
      (** a deterministic inconclusive: the bound (in the key) was exhausted
          without a counterexample; [reason] is the engine's message *)

type payload =
  | No_payload
  | Trace_payload of Bmc.Trace.t  (** counterexample evidence *)
  | Drat_payload of Bmc.Engine.cert_artifact  (** UNSAT evidence *)

type entry = {
  e_method : string;
  e_verdict : verdict;
  e_time_s : float;  (** wall clock of the recording (cold) run *)
  e_solve_time_s : float;
  e_model_vars : int;
  e_model_clauses : int;
  e_model_latches : int;
  e_cert : string;  (** certificate label of the recording run *)
  e_created : float;  (** seconds since the epoch *)
  e_payload : payload;
}

(** {1 Store operations} *)

val store : config -> Key.t -> entry -> unit
(** Atomically persist the entry under its key.  Never raises: an
    unwritable store directory only drops the entry (recorded on the
    [vcache.store_errors] counter). *)

val load : config -> Key.t -> entry option
(** [None] on absence, checksum mismatch, version mismatch or any parse
    error — corruption is indistinguishable from a miss by design.  A hit
    refreshes the entry's mtime and drops an empty [<entry>.json.hit]
    sidecar next to it: watermark eviction treats entries that never
    earned a hit as first to go (see {!maintain}). *)

val remove : config -> Key.t -> unit
(** Drop one entry (used when a hit fails its independent re-check). *)

(** {1 Administration} *)

type store_stats = {
  entries : int;
  bytes : int;
  proved : int;
  falsified : int;
  bounded : int;
  with_payload : int;
}

val stats : config -> store_stats
val clear : config -> int
(** Delete every entry; returns the number deleted. *)

val gc : config -> max_bytes:int -> int * int
(** [gc cfg ~max_bytes] deletes entries until the store fits the byte
    budget and returns [(deleted, kept)].  Eviction order is never-hit
    entries oldest-first, then least-recently-used (a {!load} hit
    refreshes an entry's clock). *)

(** {1 Daemon-grade maintenance}

    A long-running server cannot rely on an operator running [cache gc] by
    hand; it calls {!maintain} periodically from its event loop.  Eviction
    is hit-rate-aware on two axes: watermarks order by {e last use}, not
    creation ({!load} refreshes a served entry's mtime), and the size
    watermark evicts entries that {e never} earned a hit before touching
    any entry that did — a burst of one-off writes cannot flush the
    working set.  The only bookkeeping is the filesystem's (mtimes and
    empty [.hit] sidecars). *)

type gc_policy = {
  max_bytes : int option;
      (** size watermark: evict cold-then-LRU entries down to this *)
  max_age_s : float option;
      (** age watermark: evict entries not used for this many seconds *)
}

val gc_policy : ?max_bytes:int -> ?max_age_s:float -> unit -> gc_policy
(** Both watermarks default to off ([None]). *)

type maintain_report = {
  evicted_age : int;  (** entries dropped by the age watermark *)
  evicted_size : int;  (** entries dropped by the size watermark *)
  evicted_cold : int;
      (** of [evicted_size], how many had never earned a hit — the
          hit-rate-aware half of the size watermark *)
  kept : int;
  kept_bytes : int;
}

val maintain : config -> gc_policy -> maintain_report
(** Apply the age watermark, then the size watermark (never-hit entries
    oldest-first, then LRU).  Never raises; unremovable files are kept and
    counted.  Instrumented with the [cache.maintain] span and the
    [vcache.gc_evicted_age]/[vcache.gc_evicted_size]/[vcache.gc_evicted_cold]
    counters. *)
