type config = { dir : string; payload_limit_bytes : int }

let default_dir () =
  match Sys.getenv_opt "EMMVER_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "emmver"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "emmver"
      | _ -> ".emmver-cache"))

let config ?dir ?(payload_limit_bytes = 32 * 1024 * 1024) () =
  {
    dir = (match dir with Some d -> d | None -> default_dir ());
    payload_limit_bytes;
  }

module Key = struct
  type t = string (* MD5 hex *)

  let make ~cone ~attrs =
    let attrs = List.sort compare attrs in
    let buf = Buffer.create (String.length cone + 64) in
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf k;
        Buffer.add_char buf '=';
        Buffer.add_string buf v;
        Buffer.add_char buf ';')
      attrs;
    Buffer.add_char buf '\n';
    Buffer.add_string buf cone;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let to_hex k = k
end

type verdict =
  | Proved of { depth : int; induction : bool }
  | Falsified of { depth : int }
  | Bounded of { depth : int; reason : string }

type payload =
  | No_payload
  | Trace_payload of Bmc.Trace.t
  | Drat_payload of Bmc.Engine.cert_artifact

type entry = {
  e_method : string;
  e_verdict : verdict;
  e_time_s : float;
  e_solve_time_s : float;
  e_model_vars : int;
  e_model_clauses : int;
  e_model_latches : int;
  e_cert : string;
  e_created : float;
  e_payload : payload;
}

(* {2 JSON writing} *)

let add_jstring b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_field b ~first name f =
  if not first then Buffer.add_char b ',';
  add_jstring b name;
  Buffer.add_char b ':';
  f b

let jint n b = Buffer.add_string b (string_of_int n)
let jfloat x b = Buffer.add_string b (Printf.sprintf "%.17g" x)
let jbool v b = Buffer.add_string b (if v then "true" else "false")
let jstr s b = add_jstring b s

(* {2 Signals, traces, DRAT artifacts as JSON-friendly values} *)

(* A signal travels as [2 * node + complement] — the store may be read by a
   different process against a rebuilt (but structurally identical) design,
   and the hit path replays the trace before trusting it, so stale codes
   only ever cause a miss. *)
let signal_code s =
  (2 * Netlist.node_of s) lor (if Netlist.is_complement s then 1 else 0)

let signal_of_code c = Netlist.signal_of_node (c lsr 1) (c land 1 = 1)

let bits_of_string s = Array.init (String.length s) (fun i -> s.[i] = '1')

let string_of_bits a =
  String.init (Array.length a) (fun i -> if a.(i) then '1' else '0')

let trace_to_json (t : Bmc.Trace.t) b =
  Buffer.add_char b '{';
  add_field b ~first:true "property" (jstr t.Bmc.Trace.property);
  add_field b ~first:false "depth" (jint t.Bmc.Trace.depth);
  add_field b ~first:false "inputs" (fun b ->
      Buffer.add_char b '[';
      Array.iteri
        (fun i frame ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          List.iteri
            (fun j (name, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_char b '[';
              add_jstring b name;
              Buffer.add_char b ',';
              jbool v b;
              Buffer.add_char b ']')
            frame;
          Buffer.add_char b ']')
        t.Bmc.Trace.inputs;
      Buffer.add_char b ']');
  add_field b ~first:false "latch0" (fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun j (name, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          add_jstring b name;
          Buffer.add_char b ',';
          jbool v b;
          Buffer.add_char b ']')
        t.Bmc.Trace.latch0;
      Buffer.add_char b ']');
  add_field b ~first:false "mem_init" (fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun j (name, words) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_char b '[';
          add_jstring b name;
          Buffer.add_string b ",[";
          List.iteri
            (fun k (a, w) ->
              if k > 0 then Buffer.add_char b ',';
              Buffer.add_string b (Printf.sprintf "[%d,%d]" a w))
            words;
          Buffer.add_string b "]]")
        t.Bmc.Trace.mem_init;
      Buffer.add_char b ']');
  add_field b ~first:false "watch" (fun b ->
      Buffer.add_char b '[';
      List.iteri
        (fun j (w : Bmc.Trace.watch) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_char b '{';
          add_field b ~first:true "name" (jstr w.Bmc.Trace.w_name);
          add_field b ~first:false "signal" (jint (signal_code w.Bmc.Trace.w_signal));
          add_field b ~first:false "enable"
            (jint
               (match w.Bmc.Trace.w_enable with
               | Some e -> signal_code e
               | None -> -1));
          add_field b ~first:false "values"
            (jstr (string_of_bits w.Bmc.Trace.w_values));
          Buffer.add_char b '}')
        t.Bmc.Trace.watch;
      Buffer.add_char b ']');
  Buffer.add_char b '}'

(* DRAT artifacts travel as DIMACS text: one clause/cube per line terminated
   by 0, deletions prefixed with "d " — compact and trivially stable. *)
let dimacs_of_clauses clauses =
  let b = Buffer.create 4096 in
  List.iter
    (fun c ->
      List.iter
        (fun l ->
          Buffer.add_string b (string_of_int (Satsolver.Lit.to_dimacs l));
          Buffer.add_char b ' ')
        c;
      Buffer.add_string b "0\n")
    clauses;
  Buffer.contents b

let dimacs_of_proof proof =
  let b = Buffer.create 4096 in
  List.iter
    (fun (step : Cert.Drat.step) ->
      let c =
        match step with
        | Cert.Drat.Padd c -> c
        | Cert.Drat.Pdel c ->
          Buffer.add_string b "d ";
          c
      in
      List.iter
        (fun l ->
          Buffer.add_string b (string_of_int (Satsolver.Lit.to_dimacs l));
          Buffer.add_char b ' ')
        c;
      Buffer.add_string b "0\n")
    proof;
  Buffer.contents b

exception Corrupt

let clauses_of_dimacs s =
  let clauses = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then begin
        let toks = String.split_on_char ' ' line in
        let toks = List.filter (fun t -> t <> "") toks in
        let lits =
          List.filter_map
            (fun t ->
              match int_of_string_opt t with
              | Some 0 -> None
              | Some d -> Some (Satsolver.Lit.of_dimacs d)
              | None -> raise Corrupt)
            toks
        in
        (match List.rev toks with "0" :: _ -> () | _ -> raise Corrupt);
        clauses := lits :: !clauses
      end)
    (String.split_on_char '\n' s);
  List.rev !clauses

let proof_of_dimacs s =
  let steps = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then begin
        let del = String.length line >= 2 && String.sub line 0 2 = "d " in
        let body = if del then String.sub line 2 (String.length line - 2) else line in
        match clauses_of_dimacs body with
        | [ c ] ->
          steps := (if del then Cert.Drat.Pdel c else Cert.Drat.Padd c) :: !steps
        | [] -> steps := (if del then Cert.Drat.Pdel [] else Cert.Drat.Padd []) :: !steps
        | _ -> raise Corrupt
      end)
    (String.split_on_char '\n' s);
  List.rev !steps

(* Cubes serialize like clauses; an empty cube (plain UNSAT) is a bare "0"
   line, which [clauses_of_dimacs] drops — count lines instead. *)
let cubes_of_dimacs s =
  let cubes = ref [] in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line <> "" then
        match clauses_of_dimacs line with
        | [ c ] -> cubes := c :: !cubes
        | [] -> cubes := [] :: !cubes
        | _ -> raise Corrupt)
    (String.split_on_char '\n' s);
  List.rev !cubes

(* {2 Entry rendering} *)

let entry_to_json e =
  let b = Buffer.create 1024 in
  Buffer.add_char b '{';
  add_field b ~first:true "version" (jint 1);
  add_field b ~first:false "method" (jstr e.e_method);
  (match e.e_verdict with
  | Proved { depth; induction } ->
    add_field b ~first:false "verdict" (jstr "proved");
    add_field b ~first:false "depth" (jint depth);
    add_field b ~first:false "induction" (jbool induction)
  | Falsified { depth } ->
    add_field b ~first:false "verdict" (jstr "falsified");
    add_field b ~first:false "depth" (jint depth)
  | Bounded { depth; reason } ->
    add_field b ~first:false "verdict" (jstr "bounded");
    add_field b ~first:false "depth" (jint depth);
    add_field b ~first:false "reason" (jstr reason));
  add_field b ~first:false "time_s" (jfloat e.e_time_s);
  add_field b ~first:false "solve_time_s" (jfloat e.e_solve_time_s);
  add_field b ~first:false "model_vars" (jint e.e_model_vars);
  add_field b ~first:false "model_clauses" (jint e.e_model_clauses);
  add_field b ~first:false "model_latches" (jint e.e_model_latches);
  add_field b ~first:false "cert" (jstr e.e_cert);
  add_field b ~first:false "created" (jfloat e.e_created);
  (match e.e_payload with
  | No_payload -> add_field b ~first:false "payload" (jstr "none")
  | Trace_payload t ->
    add_field b ~first:false "payload" (jstr "trace");
    add_field b ~first:false "trace" (trace_to_json t)
  | Drat_payload a ->
    add_field b ~first:false "payload" (jstr "drat");
    add_field b ~first:false "drat" (fun b ->
        Buffer.add_char b '{';
        add_field b ~first:true "num_vars" (jint a.Bmc.Engine.ca_num_vars);
        add_field b ~first:false "cnf"
          (jstr (dimacs_of_clauses a.Bmc.Engine.ca_original));
        add_field b ~first:false "proof" (jstr (dimacs_of_proof a.Bmc.Engine.ca_proof));
        add_field b ~first:false "obligations"
          (jstr (dimacs_of_clauses a.Bmc.Engine.ca_obligations));
        Buffer.add_char b '}'));
  Buffer.add_char b '}';
  Buffer.contents b

(* {2 Entry parsing} *)

open Obs.Json

let str_field name o = match member name o with Some (Str s) -> s | _ -> raise Corrupt
let num_field name o =
  match member name o with Some (Num n) -> n | _ -> raise Corrupt

let int_field name o = int_of_float (num_field name o)

let bool_field name o =
  match member name o with Some (Bool v) -> v | _ -> raise Corrupt

let pairs_field name o =
  match member name o with
  | Some (Arr l) ->
    List.map
      (function Arr [ Str n; Bool v ] -> (n, v) | _ -> raise Corrupt)
      l
  | _ -> raise Corrupt

let trace_of_json o : Bmc.Trace.t =
  let inputs =
    match member "inputs" o with
    | Some (Arr frames) ->
      Array.of_list
        (List.map
           (function
             | Arr pairs ->
               List.map
                 (function Arr [ Str n; Bool v ] -> (n, v) | _ -> raise Corrupt)
                 pairs
             | _ -> raise Corrupt)
           frames)
    | _ -> raise Corrupt
  in
  let mem_init =
    match member "mem_init" o with
    | Some (Arr l) ->
      List.map
        (function
          | Arr [ Str n; Arr words ] ->
            ( n,
              List.map
                (function
                  | Arr [ Num a; Num w ] -> (int_of_float a, int_of_float w)
                  | _ -> raise Corrupt)
                words )
          | _ -> raise Corrupt)
        l
    | _ -> raise Corrupt
  in
  let watch =
    match member "watch" o with
    | Some (Arr l) ->
      List.map
        (fun w ->
          let enable = int_field "enable" w in
          {
            Bmc.Trace.w_name = str_field "name" w;
            w_signal = signal_of_code (int_field "signal" w);
            w_enable = (if enable < 0 then None else Some (signal_of_code enable));
            w_values = bits_of_string (str_field "values" w);
          })
        l
    | _ -> raise Corrupt
  in
  {
    Bmc.Trace.property = str_field "property" o;
    depth = int_field "depth" o;
    inputs;
    latch0 = pairs_field "latch0" o;
    mem_init;
    watch;
  }

let entry_of_json o =
  if int_field "version" o <> 1 then raise Corrupt;
  let depth = int_field "depth" o in
  let e_verdict =
    match str_field "verdict" o with
    | "proved" -> Proved { depth; induction = bool_field "induction" o }
    | "falsified" -> Falsified { depth }
    | "bounded" -> Bounded { depth; reason = str_field "reason" o }
    | _ -> raise Corrupt
  in
  let e_payload =
    match str_field "payload" o with
    | "none" -> No_payload
    | "trace" -> (
      match member "trace" o with
      | Some t -> Trace_payload (trace_of_json t)
      | None -> raise Corrupt)
    | "drat" -> (
      match member "drat" o with
      | Some d ->
        Drat_payload
          {
            Bmc.Engine.ca_num_vars = int_field "num_vars" d;
            ca_original = clauses_of_dimacs (str_field "cnf" d);
            ca_proof = proof_of_dimacs (str_field "proof" d);
            ca_obligations = cubes_of_dimacs (str_field "obligations" d);
          }
      | None -> raise Corrupt)
    | _ -> raise Corrupt
  in
  {
    e_method = str_field "method" o;
    e_verdict;
    e_time_s = num_field "time_s" o;
    e_solve_time_s = num_field "solve_time_s" o;
    e_model_vars = int_field "model_vars" o;
    e_model_clauses = int_field "model_clauses" o;
    e_model_latches = int_field "model_latches" o;
    e_cert = str_field "cert" o;
    e_created = num_field "created" o;
    e_payload;
  }

(* {2 The on-disk store} *)

(* File layout: a one-line header [EMMVER-VCACHE 1 <md5-of-body>] followed
   by the JSON body.  The checksum makes truncation and bit-flips a miss;
   the version makes format evolution a miss rather than a parse error. *)

let magic = "EMMVER-VCACHE 1 "

let entry_path cfg key = Filename.concat cfg.dir (Key.to_hex key ^ ".json")

(* Hit-rate sidecar: an empty [<entry>.json.hit] file is created the first
   time an entry is served.  Watermark eviction uses it to tell entries
   that earned at least one hit from entries written once and never asked
   for again — the latter are evicted first, whatever their age.  A
   sidecar, not a field, so recording a hit never rewrites (and never
   risks tearing) the checksummed entry itself. *)
let hit_marker path = path ^ ".hit"

let mark_hit path =
  try
    Unix.close
      (Unix.openfile (hit_marker path) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644)
  with _ -> ()

let remove_with_marker path =
  (try Sys.remove (hit_marker path) with _ -> ());
  Sys.remove path

let ensure_dir dir =
  let rec mk d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mk (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  mk dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let tmp_counter = ref 0

let store cfg key entry =
  Obs.span "cache.store" (fun () ->
      try
        ensure_dir cfg.dir;
        let entry =
          match entry.e_payload with
          | Drat_payload a
            when String.length (dimacs_of_proof a.Bmc.Engine.ca_proof)
                 + String.length (dimacs_of_clauses a.Bmc.Engine.ca_original)
                 > cfg.payload_limit_bytes ->
            Obs.counter_add "vcache.payloads_dropped" 1;
            { entry with e_payload = No_payload }
          | _ -> entry
        in
        let body = entry_to_json entry in
        let data = magic ^ Digest.to_hex (Digest.string body) ^ "\n" ^ body in
        incr tmp_counter;
        let tmp =
          Filename.concat cfg.dir
            (Printf.sprintf ".tmp-%d-%d" (Unix.getpid ()) !tmp_counter)
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc data);
        (* Atomic within one directory: concurrent writers of the same key
           race benignly, the survivor is one complete entry. *)
        Sys.rename tmp (entry_path cfg key);
        Obs.counter_add "vcache.stores" 1;
        Obs.counter_add "vcache.bytes_written" (String.length data)
      with _ -> Obs.counter_add "vcache.store_errors" 1)

let parse_data data =
  let nl = String.index data '\n' in
  let header = String.sub data 0 nl in
  let body = String.sub data (nl + 1) (String.length data - nl - 1) in
  if String.length header <> String.length magic + 32 then raise Corrupt;
  if String.sub header 0 (String.length magic) <> magic then raise Corrupt;
  let sum = String.sub header (String.length magic) 32 in
  if not (String.equal sum (Digest.to_hex (Digest.string body))) then raise Corrupt;
  match Obs.Json.parse body with
  | Ok o -> entry_of_json o
  | Error _ -> raise Corrupt

let load cfg key =
  Obs.span "cache.lookup" (fun () ->
      let path = entry_path cfg key in
      match
        if Sys.file_exists path then
          let data = read_file path in
          Some (parse_data data, String.length data)
        else None
      with
      | Some (entry, bytes) ->
        Obs.counter_add "vcache.hits" 1;
        Obs.counter_add "vcache.bytes_read" bytes;
        (* Refresh the entry's clock: watermark GC ([maintain], [gc])
           orders evictions by mtime, so a hit renews the entry's lease —
           entries that keep earning hits survive the size watermark,
           entries nobody asks for age out.  Best-effort: a read-only
           store still serves hits. *)
        (try Unix.utimes (entry_path cfg key) 0.0 0.0 with _ -> ());
        mark_hit (entry_path cfg key);
        Some entry
      | None ->
        Obs.counter_add "vcache.misses" 1;
        None
      | exception _ ->
        (* Corrupt, truncated, tampered, unreadable, version-mismatched:
           all of it is a miss, never an error. *)
        Obs.counter_add "vcache.misses" 1;
        Obs.counter_add "vcache.corrupt" 1;
        None)

let remove cfg key = try remove_with_marker (entry_path cfg key) with _ -> ()

type store_stats = {
  entries : int;
  bytes : int;
  proved : int;
  falsified : int;
  bounded : int;
  with_payload : int;
}

let entry_files cfg =
  if Sys.file_exists cfg.dir && Sys.is_directory cfg.dir then
    Array.to_list (Sys.readdir cfg.dir)
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.map (fun f -> Filename.concat cfg.dir f)
  else []

let stats cfg =
  List.fold_left
    (fun acc path ->
      match parse_data (read_file path) with
      | e ->
        let size = (Unix.stat path).Unix.st_size in
        {
          entries = acc.entries + 1;
          bytes = acc.bytes + size;
          proved = (acc.proved + match e.e_verdict with Proved _ -> 1 | _ -> 0);
          falsified =
            (acc.falsified + match e.e_verdict with Falsified _ -> 1 | _ -> 0);
          bounded = (acc.bounded + match e.e_verdict with Bounded _ -> 1 | _ -> 0);
          with_payload =
            (acc.with_payload + match e.e_payload with No_payload -> 0 | _ -> 1);
        }
      | exception _ -> acc)
    { entries = 0; bytes = 0; proved = 0; falsified = 0; bounded = 0; with_payload = 0 }
    (entry_files cfg)

let clear cfg =
  List.fold_left
    (fun n path ->
      match remove_with_marker path with () -> n + 1 | exception _ -> n)
    0 (entry_files cfg)

(* {2 Daemon-grade maintenance}

   The serve loop runs [maintain] periodically: an age watermark drops
   entries not used (loaded or written) for [max_age_s], then a size
   watermark evicts entries until the store fits [max_bytes].  Eviction is
   hit-rate-aware on two axes: [load] refreshes an entry's mtime (a hot
   entry is never older than its last hit), and the size watermark evicts
   {e never-hit} entries (no [.hit] sidecar) oldest-first before touching
   any entry that earned at least one hit — a burst of one-off writes
   cannot flush the working set. *)

type gc_policy = { max_bytes : int option; max_age_s : float option }

let gc_policy ?max_bytes ?max_age_s () = { max_bytes; max_age_s }

type maintain_report = {
  evicted_age : int;
  evicted_size : int;
  evicted_cold : int;
  kept : int;
  kept_bytes : int;
}

(* Entries as (path, mtime, size, ever_hit), oldest last-use first. *)
let scan_entries cfg =
  List.filter_map
    (fun path ->
      match Unix.stat path with
      | st ->
        Some
          ( path,
            st.Unix.st_mtime,
            st.Unix.st_size,
            Sys.file_exists (hit_marker path) )
      | exception _ -> None)
    (entry_files cfg)
  |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare a b)

(* Size-watermark order: cold (never-hit) entries oldest-first, then hot
   entries oldest-first. *)
let eviction_order files =
  let cold, hot = List.partition (fun (_, _, _, hit) -> not hit) files in
  cold @ hot

let maintain cfg policy =
  Obs.span "cache.maintain" (fun () ->
      let now = Unix.gettimeofday () in
      let files = scan_entries cfg in
      let evicted_age = ref 0 and evicted_size = ref 0 and evicted_cold = ref 0 in
      let survivors =
        match policy.max_age_s with
        | None -> files
        | Some age ->
          List.filter
            (fun (path, mtime, _, _) ->
              if now -. mtime > age then (
                (match remove_with_marker path with
                | () -> incr evicted_age
                | exception _ -> ());
                false)
              else true)
            files
      in
      let remaining =
        ref (List.fold_left (fun acc (_, _, s, _) -> acc + s) 0 survivors)
      in
      let kept = ref 0 and kept_bytes = ref 0 in
      List.iter
        (fun (path, _, size, hit) ->
          match policy.max_bytes with
          | Some budget when !remaining > budget -> (
            match remove_with_marker path with
            | () ->
              incr evicted_size;
              if not hit then incr evicted_cold;
              remaining := !remaining - size
            | exception _ ->
              incr kept;
              kept_bytes := !kept_bytes + size)
          | _ ->
            incr kept;
            kept_bytes := !kept_bytes + size)
        (eviction_order survivors);
      Obs.counter_add "vcache.gc_evicted_age" !evicted_age;
      Obs.counter_add "vcache.gc_evicted_size" !evicted_size;
      Obs.counter_add "vcache.gc_evicted_cold" !evicted_cold;
      {
        evicted_age = !evicted_age;
        evicted_size = !evicted_size;
        evicted_cold = !evicted_cold;
        kept = !kept;
        kept_bytes = !kept_bytes;
      })

let gc cfg ~max_bytes =
  let files = eviction_order (scan_entries cfg) in
  let total = List.fold_left (fun acc (_, _, s, _) -> acc + s) 0 files in
  let deleted = ref 0 and kept = ref 0 and remaining = ref total in
  List.iter
    (fun (path, _, size, _) ->
      if !remaining > max_bytes then begin
        (match remove_with_marker path with
        | () ->
          incr deleted;
          remaining := !remaining - size
        | exception _ -> incr kept)
      end
      else incr kept)
    files;
  (!deleted, !kept)
