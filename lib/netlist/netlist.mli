(** Bit-level structural netlists with embedded memory modules.

    The combinational fabric is an AND-inverter graph: nodes are constants,
    primary inputs, latches, 2-input AND gates, or memory read-data outputs;
    signals are node references with a complement bit, so inversion is free.
    AND construction performs constant folding and structural hashing.

    Memories are kept as {e word-level modules} rather than expanded into
    bits: a memory has an address width, a data width, an initial-contents
    policy and a set of read and write ports, each port built from ordinary
    signals (address/data buses, enable).  A read port's data bus is a vector
    of [Mem_out] nodes — free variables from the point of view of the
    combinational fabric, to be constrained either by EMM (the paper's
    approach) or by explicit expansion (the baseline).

    This mirrors the paper's verification model: "the memory arrays are
    eliminated, but the memory interface signals and their control logic are
    retained". *)

type t

type signal
(** A node reference with complement bit. *)

(** {2 Construction} *)

val create : unit -> t

val false_ : signal
val true_ : signal
val of_bool : bool -> signal
val input : t -> string -> signal

val latch : t -> ?init:bool option -> string -> signal
(** A state element.  [init] defaults to [Some false] (reset to 0); [None]
    models an arbitrary initial value.  The next-state function must be set
    later with {!set_next} — latches may appear in their own support. *)

val set_next : t -> signal -> signal -> unit
(** [set_next t l n] sets the next-state input of latch [l].  Raises
    [Invalid_argument] if [l] is not a positive latch reference or if its
    next-state was already set. *)

val not_ : signal -> signal
val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal
val xnor_ : t -> signal -> signal -> signal
val implies : t -> signal -> signal -> signal
val mux : t -> signal -> signal -> signal -> signal
(** [mux t sel a b] is [a] when [sel] is true, else [b]. *)

val and_list : t -> signal list -> signal
val or_list : t -> signal list -> signal

(** {2 Memory modules} *)

type mem_init =
  | Zeros  (** all locations reset to 0 *)
  | Arbitrary  (** unconstrained initial contents (paper §4.2) *)
  | Words of int array  (** concrete initial words, index = address *)

type memory

val add_memory :
  t -> name:string -> addr_width:int -> data_width:int -> init:mem_init -> memory

val add_write_port :
  t -> memory -> addr:signal array -> data:signal array -> enable:signal -> int
(** Returns the port index within the memory.  Bus widths must match the
    memory's declared widths. *)

val add_read_port : t -> memory -> addr:signal array -> enable:signal -> signal array
(** Returns the read-data bus: fresh [Mem_out] signals of width
    [data_width]. *)

val memories : t -> memory list
val memory_name : memory -> string
val memory_id : memory -> int
val memory_addr_width : memory -> int
val memory_data_width : memory -> int
val memory_init : memory -> mem_init
val num_write_ports : memory -> int
val num_read_ports : memory -> int

val write_port : memory -> int -> signal array * signal array * signal
(** [write_port m w] is [(addr, data, enable)]. *)

val read_port : memory -> int -> signal array * signal * signal array
(** [read_port m r] is [(addr, enable, data_out)]. *)

(** {2 Properties and outputs} *)

val add_property : t -> string -> signal -> unit
(** Register a named safety property: the signal must hold in all reachable
    states ([AG p]). *)

val properties : t -> (string * signal) list
val find_property : t -> string -> signal

val add_output : t -> string -> signal -> unit
val outputs : t -> (string * signal) list

(** {2 Observers} *)

val is_complement : signal -> bool
val node_of : signal -> int
val signal_of_node : int -> bool -> signal

type node =
  | Const_false
  | Input of string
  | Latch of { name : string; init : bool option; next : signal option }
  | And of signal * signal
  | Mem_out of { mem : int; port : int; bit : int }

val node : t -> int -> node
val num_nodes : t -> int
val inputs : t -> signal list
val latches : t -> signal list
(** Positive references to all latch nodes, in creation order. *)

val latch_next : t -> signal -> signal
(** Next-state signal of a latch.  Raises [Invalid_argument] if unset. *)

val latch_init : t -> signal -> bool option
val latch_name : t -> signal -> string

val fold_cone : t -> signal list -> init:'a -> f:('a -> int -> node -> 'a) -> 'a
(** Fold over the transitive fan-in cone of the given signals in topological
    order (definitions before uses).  The cone stops at latches, inputs and
    memory outputs: latch next-state functions are {e not} entered. *)

val memory_interface_signals : memory -> signal list
(** All signals driving the memory's ports: write addresses/data/enables and
    read addresses/enables.  The latches in their sequential cone are the
    memory's "control logic" in the paper's sense (§4.3). *)

val support_latches : t -> signal list -> signal list
(** Latches in the sequential cone of influence of the given signals
    (following latch next-state functions and memory-port control to a fixed
    point). *)

val cone_signature : t -> signal -> string
(** A canonical serialization of the signal's {e sequential} fan-in cone —
    the content-address of a verification sub-problem (see [Vcache]).  The
    cone follows latch next-state functions and, at a memory read, the whole
    memory module (every port's address/data/enable cone), exactly the model
    slice any engine encodes for a property rooted at the signal.

    The serialization is construction-order independent and name-free:
    node ids, insertion order and instance names do not appear; canonical
    ids are assigned by a deterministic traversal ordered by an iterated
    structural refinement (AND children in refined-hash order, memory ports
    and bus bits in index order — write-port order is semantically
    significant, the last enabled write wins).  Two signals with equal
    signatures have isomorphic cones, so every verification verdict
    transfers between them; the converse holds up to hash-tie ambiguity,
    which can only cause a spurious inequality (a cache miss), never a
    false equality.  Latch initial values, memory descriptors (widths,
    initial contents, port counts) and sharing structure are all captured,
    so flipping any of them changes the signature. *)

type stats = {
  num_inputs : int;
  num_latches : int;
  num_ands : int;
  num_memories : int;
  num_mem_bits : int;  (** total bits if the memories were expanded *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
