type signal = int

let is_complement s = s land 1 = 1
let node_of s = s lsr 1
let signal_of_node n compl = (2 * n) lor (if compl then 1 else 0)
let not_ s = s lxor 1
let false_ = 0
let true_ = 1
let of_bool b = if b then true_ else false_

type inode =
  | INconst
  | INinput of string
  | INlatch of { lname : string; linit : bool option; mutable next : int (* -1 unset *) }
  | INand of int * int
  | INmem_out of { mem : int; port : int; bit : int }

type mem_init = Zeros | Arbitrary | Words of int array

type wport = { w_addr : signal array; w_data : signal array; w_enable : signal }
type rport = { r_addr : signal array; r_enable : signal; r_out : signal array }

type memory = {
  mem_id : int;
  mname : string;
  addr_width : int;
  data_width : int;
  minit : mem_init;
  mutable wports : wport list; (* reverse order *)
  mutable rports : rport list; (* reverse order *)
}

type t = {
  mutable nodes : inode array;
  mutable num_nodes : int;
  strash : (int * int, int) Hashtbl.t;
  mutable rev_inputs : int list;
  mutable rev_latches : int list;
  mutable rev_memories : memory list;
  mutable rev_properties : (string * signal) list;
  mutable rev_outputs : (string * signal) list;
}

let create () =
  let t =
    {
      nodes = Array.make 1024 INconst;
      num_nodes = 0;
      strash = Hashtbl.create 4096;
      rev_inputs = [];
      rev_latches = [];
      rev_memories = [];
      rev_properties = [];
      rev_outputs = [];
    }
  in
  t.nodes.(0) <- INconst;
  t.num_nodes <- 1;
  t

let alloc t n =
  if t.num_nodes = Array.length t.nodes then begin
    let nodes = Array.make (2 * t.num_nodes) INconst in
    Array.blit t.nodes 0 nodes 0 t.num_nodes;
    t.nodes <- nodes
  end;
  let id = t.num_nodes in
  t.nodes.(id) <- n;
  t.num_nodes <- id + 1;
  id

let input t name =
  let id = alloc t (INinput name) in
  t.rev_inputs <- id :: t.rev_inputs;
  signal_of_node id false

let latch t ?(init = Some false) name =
  let id = alloc t (INlatch { lname = name; linit = init; next = -1 }) in
  t.rev_latches <- id :: t.rev_latches;
  signal_of_node id false

let set_next t l n =
  if is_complement l then invalid_arg "Netlist.set_next: complemented latch reference";
  match t.nodes.(node_of l) with
  | INlatch r ->
    if r.next >= 0 then invalid_arg "Netlist.set_next: next-state already set";
    r.next <- n
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.set_next: not a latch"

let and_ t a b =
  if a = false_ || b = false_ then false_
  else if a = true_ then b
  else if b = true_ then a
  else if a = b then a
  else if a = not_ b then false_
  else begin
    let key = if a < b then (a, b) else (b, a) in
    match Hashtbl.find_opt t.strash key with
    | Some id -> signal_of_node id false
    | None ->
      let ka, kb = key in
      let id = alloc t (INand (ka, kb)) in
      Hashtbl.add t.strash key id;
      signal_of_node id false
  end

let or_ t a b = not_ (and_ t (not_ a) (not_ b))
let implies t a b = or_ t (not_ a) b
let xor_ t a b = or_ t (and_ t a (not_ b)) (and_ t (not_ a) b)
let xnor_ t a b = not_ (xor_ t a b)
let mux t sel a b = or_ t (and_ t sel a) (and_ t (not_ sel) b)
let and_list t = List.fold_left (and_ t) true_
let or_list t = List.fold_left (or_ t) false_

let add_memory t ~name ~addr_width ~data_width ~init =
  if addr_width <= 0 || data_width <= 0 then invalid_arg "Netlist.add_memory: bad widths";
  let m =
    {
      mem_id = List.length t.rev_memories;
      mname = name;
      addr_width;
      data_width;
      minit = init;
      wports = [];
      rports = [];
    }
  in
  t.rev_memories <- m :: t.rev_memories;
  m

let add_write_port _t m ~addr ~data ~enable =
  if Array.length addr <> m.addr_width then invalid_arg "add_write_port: address width";
  if Array.length data <> m.data_width then invalid_arg "add_write_port: data width";
  let idx = List.length m.wports in
  m.wports <- { w_addr = addr; w_data = data; w_enable = enable } :: m.wports;
  idx

let add_read_port t m ~addr ~enable =
  if Array.length addr <> m.addr_width then invalid_arg "add_read_port: address width";
  let idx = List.length m.rports in
  let out =
    Array.init m.data_width (fun bit ->
        signal_of_node (alloc t (INmem_out { mem = m.mem_id; port = idx; bit })) false)
  in
  m.rports <- { r_addr = addr; r_enable = enable; r_out = out } :: m.rports;
  out

let memories t = List.rev t.rev_memories
let memory_name m = m.mname
let memory_id m = m.mem_id
let memory_addr_width m = m.addr_width
let memory_data_width m = m.data_width
let memory_init m = m.minit
let num_write_ports m = List.length m.wports
let num_read_ports m = List.length m.rports

let write_port m w =
  let p = List.nth (List.rev m.wports) w in
  (p.w_addr, p.w_data, p.w_enable)

let read_port m r =
  let p = List.nth (List.rev m.rports) r in
  (p.r_addr, p.r_enable, p.r_out)

let add_property t name s = t.rev_properties <- (name, s) :: t.rev_properties
let properties t = List.rev t.rev_properties

let find_property t name =
  match List.assoc_opt name t.rev_properties with
  | Some s -> s
  | None -> invalid_arg ("Netlist.find_property: unknown property " ^ name)

let add_output t name s = t.rev_outputs <- (name, s) :: t.rev_outputs
let outputs t = List.rev t.rev_outputs

type node =
  | Const_false
  | Input of string
  | Latch of { name : string; init : bool option; next : signal option }
  | And of signal * signal
  | Mem_out of { mem : int; port : int; bit : int }

let node t id =
  if id < 0 || id >= t.num_nodes then invalid_arg "Netlist.node: bad id";
  match t.nodes.(id) with
  | INconst -> Const_false
  | INinput name -> Input name
  | INlatch { lname; linit; next } ->
    Latch { name = lname; init = linit; next = (if next < 0 then None else Some next) }
  | INand (a, b) -> And (a, b)
  | INmem_out { mem; port; bit } -> Mem_out { mem; port; bit }

let num_nodes t = t.num_nodes
let inputs t = List.rev_map (fun id -> signal_of_node id false) t.rev_inputs
let latches t = List.rev_map (fun id -> signal_of_node id false) t.rev_latches

let latch_next t l =
  match t.nodes.(node_of l) with
  | INlatch { next; _ } ->
    if next < 0 then invalid_arg "Netlist.latch_next: next-state unset"
    else if is_complement l then not_ next
    else next
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_next: not a latch"

let latch_init t l =
  match t.nodes.(node_of l) with
  | INlatch { linit; _ } ->
    if is_complement l then Option.map not linit else linit
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_init: not a latch"

let latch_name t l =
  match t.nodes.(node_of l) with
  | INlatch { lname; _ } -> lname
  | INconst | INinput _ | INand _ | INmem_out _ ->
    invalid_arg "Netlist.latch_name: not a latch"

(* Topological fold over the combinational fan-in cone (stops at latches,
   inputs, memory outputs and constants). *)
let fold_cone t roots ~init ~f =
  let visited = Hashtbl.create 1024 in
  let acc = ref init in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      (match t.nodes.(id) with
      | INand (a, b) ->
        visit (node_of a);
        visit (node_of b)
      | INconst | INinput _ | INlatch _ | INmem_out _ -> ());
      acc := f !acc id (node t id)
    end
  in
  List.iter (fun s -> visit (node_of s)) roots;
  !acc

let memory_interface_signals m =
  List.concat_map
    (fun p -> p.w_enable :: (Array.to_list p.w_addr @ Array.to_list p.w_data))
    m.wports
  @ List.concat_map (fun p -> p.r_enable :: Array.to_list p.r_addr) m.rports

let support_latches t roots =
  let seen_latch = Hashtbl.create 64 in
  let seen_mem = Hashtbl.create 8 in
  let visited = Hashtbl.create 1024 in
  let order = ref [] in
  let rec visit id =
    if not (Hashtbl.mem visited id) then begin
      Hashtbl.add visited id ();
      match t.nodes.(id) with
      | INconst | INinput _ -> ()
      | INand (a, b) ->
        visit (node_of a);
        visit (node_of b)
      | INlatch { next; _ } ->
        if not (Hashtbl.mem seen_latch id) then begin
          Hashtbl.add seen_latch id ();
          order := id :: !order
        end;
        if next >= 0 then visit (node_of next)
      | INmem_out { mem; _ } ->
        if not (Hashtbl.mem seen_mem mem) then begin
          Hashtbl.add seen_mem mem ();
          let m = List.find (fun m -> m.mem_id = mem) t.rev_memories in
          List.iter (fun s -> visit (node_of s)) (memory_interface_signals m)
        end
    end
  in
  List.iter (fun s -> visit (node_of s)) roots;
  List.rev_map (fun id -> signal_of_node id false) !order

(* {2 Canonical cone signatures}

   A construction-order-independent serialization of a signal's sequential
   fan-in cone, used as the content-address of verification results
   (lib/vcache).  Two requirements pull in opposite directions:

   - {e no false hits}: non-isomorphic cones must serialize differently,
     including sharing (the same input feeding two gates is not the same
     cone as two distinct inputs doing so);
   - {e maximal hits}: node ids, construction order and instance names must
     not leak into the signature, so the same design rebuilt in a different
     order — or a structurally identical twin (symmetric ports) — keys to
     the same entry.

   The implementation is the classic two-phase scheme: (1) Weisfeiler–Leman
   style iterated refinement assigns every cone node a structural hash that
   converges to the orbit partition (names excluded; latch inits, memory
   descriptors, port and bit indices included); (2) a deterministic DFS from
   the property root — visiting AND children in refined-hash order, memory
   ports in index order, discovered latches/memories in FIFO discovery
   order — assigns canonical ids and serializes exact node records over
   them.  Phase 2 captures sharing exactly; phase 1 only decides traversal
   order, so a hash collision can at worst flip a tie-break and cause a
   spurious {e miss}, never a false hit between cones whose serializations
   are compared in full. *)

let mix a b =
  let h = (a * 0x9e3779b1) lxor b in
  let h = h lxor (h lsr 29) in
  (h * 0x85ebca77) land max_int

let cone_signature t root =
  (* Phase 0: collect the sequential cone — through latch next-states, and
     through whole memory modules (EMM and explicit expansion both encode
     every port of a memory the cone reads). *)
  let in_cone = Hashtbl.create 256 in
  let mems = Hashtbl.create 4 in
  let rec collect id =
    if not (Hashtbl.mem in_cone id) then begin
      Hashtbl.add in_cone id ();
      match t.nodes.(id) with
      | INconst | INinput _ -> ()
      | INand (a, b) ->
        collect (node_of a);
        collect (node_of b)
      | INlatch { next; _ } -> if next >= 0 then collect (node_of next)
      | INmem_out { mem; _ } ->
        if not (Hashtbl.mem mems mem) then begin
          let m = List.find (fun m -> m.mem_id = mem) t.rev_memories in
          Hashtbl.add mems mem m;
          List.iter (fun s -> collect (node_of s)) (memory_interface_signals m);
          List.iter
            (fun p -> Array.iter (fun s -> collect (node_of s)) p.r_out)
            m.rports
        end
    end
  in
  collect (node_of root);
  let descr_hash m =
    let h = mix (mix 7 m.addr_width) m.data_width in
    let h =
      mix h
        (match m.minit with
        | Zeros -> 11
        | Arbitrary -> 13
        | Words a -> Array.fold_left (fun h w -> mix h (w + 1)) 17 a)
    in
    mix (mix h (List.length m.wports)) (List.length m.rports)
  in
  (* Phase 1: WL refinement to a stable partition. *)
  let h0 id =
    match t.nodes.(id) with
    | INconst -> 3
    | INinput _ -> 5
    | INlatch { linit; _ } ->
      mix 19 (match linit with None -> 0 | Some false -> 1 | Some true -> 2)
    | INand _ -> 23
    | INmem_out { mem; port; bit } ->
      mix (mix (mix 29 (descr_hash (Hashtbl.find mems mem))) port) bit
  in
  let cur = Hashtbl.create 256 in
  Hashtbl.iter (fun id () -> Hashtbl.add cur id (h0 id)) in_cone;
  let shash tbl s =
    mix (Hashtbl.find tbl (node_of s)) (if is_complement s then 1 else 2)
  in
  let mem_hash tbl m =
    let f h s = mix h (shash tbl s) in
    let h = descr_hash m in
    let h =
      List.fold_left
        (fun h p ->
          Array.fold_left f (Array.fold_left f (f (mix h 31) p.w_enable) p.w_addr)
            p.w_data)
        h (List.rev m.wports)
    in
    List.fold_left
      (fun h p -> Array.fold_left f (f (mix h 37) p.r_enable) p.r_addr)
      h (List.rev m.rports)
  in
  let distinct tbl =
    let seen = Hashtbl.create 256 in
    Hashtbl.iter (fun _ h -> Hashtbl.replace seen h ()) tbl;
    Hashtbl.length seen
  in
  let refine () =
    let mem_hashes = Hashtbl.create 4 in
    Hashtbl.iter (fun id m -> Hashtbl.add mem_hashes id (mem_hash cur m)) mems;
    let next = Hashtbl.create (Hashtbl.length cur) in
    Hashtbl.iter
      (fun id old ->
        let h =
          match t.nodes.(id) with
          | INconst | INinput _ -> old
          | INand (a, b) ->
            let x = shash cur a and y = shash cur b in
            let x, y = if x <= y then (x, y) else (y, x) in
            mix (mix old x) y
          | INlatch { next = nx; _ } ->
            if nx >= 0 then mix old (shash cur nx) else mix old 41
          | INmem_out { mem; _ } -> mix old (Hashtbl.find mem_hashes mem)
        in
        Hashtbl.add next id h)
      cur;
    next
  in
  let classes = ref (distinct cur) in
  (let continue = ref true and rounds = ref 0 in
   while !continue && !rounds < 1024 do
     incr rounds;
     let next = refine () in
     Hashtbl.reset cur;
     Hashtbl.iter (Hashtbl.add cur) next;
     let c = distinct cur in
     if c <= !classes then continue := false else classes := c
   done);
  (* Phase 2: canonical ids by deterministic DFS, exact serialization. *)
  let buf = Buffer.create 4096 in
  let canon = Hashtbl.create 256 in
  let mem_canon = Hashtbl.create 4 in
  let queue = Queue.create () in
  let canon_id id =
    match Hashtbl.find_opt canon id with
    | Some c -> c
    | None ->
      let c = Hashtbl.length canon in
      Hashtbl.add canon id c;
      c
  in
  let mem_id_canon mem =
    match Hashtbl.find_opt mem_canon mem with
    | Some c -> c
    | None ->
      let c = Hashtbl.length mem_canon in
      Hashtbl.add mem_canon mem c;
      Queue.add (`Mem mem) queue;
      c
  in
  let sref s = Printf.sprintf "%d%c" (canon_id (node_of s)) (if is_complement s then '-' else '+') in
  let rec ser s =
    let id = node_of s in
    if not (Hashtbl.mem canon id) then begin
      match t.nodes.(id) with
      | INconst -> Buffer.add_string buf (Printf.sprintf "c%d;" (canon_id id))
      | INinput _ -> Buffer.add_string buf (Printf.sprintf "i%d;" (canon_id id))
      | INlatch { linit; _ } ->
        let c = canon_id id in
        Queue.add (`Latch id) queue;
        Buffer.add_string buf
          (Printf.sprintf "l%d:%s;" c
             (match linit with None -> "x" | Some false -> "0" | Some true -> "1"))
      | INand (a, b) ->
        let ka = (Hashtbl.find cur (node_of a), is_complement a)
        and kb = (Hashtbl.find cur (node_of b), is_complement b) in
        let x, y = if ka <= kb then (a, b) else (b, a) in
        ser x;
        ser y;
        Buffer.add_string buf
          (Printf.sprintf "a%d=%s,%s;" (canon_id id) (sref x) (sref y))
      | INmem_out { mem; port; bit } ->
        let mc = mem_id_canon mem in
        Buffer.add_string buf
          (Printf.sprintf "o%d=m%d.r%d.b%d;" (canon_id id) mc port bit)
    end
  in
  ser (signal_of_node (node_of root) false);
  Buffer.add_string buf (Printf.sprintf "root=%s;" (sref root));
  let ser_bus prefix arr =
    Array.iter ser arr;
    Buffer.add_string buf prefix;
    Array.iter (fun s -> Buffer.add_string buf (sref s); Buffer.add_char buf ',') arr
  in
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | `Latch id ->
      let c = canon_id id in
      (match t.nodes.(id) with
      | INlatch { next; _ } when next >= 0 ->
        ser next;
        Buffer.add_string buf (Printf.sprintf "n%d=%s;" c (sref next))
      | _ -> Buffer.add_string buf (Printf.sprintf "n%d=?;" c))
    | `Mem mem ->
      let m = Hashtbl.find mems mem in
      let mc = Hashtbl.find mem_canon mem in
      Buffer.add_string buf
        (Printf.sprintf "m%d:aw%d,dw%d,init%s;" mc m.addr_width m.data_width
           (match m.minit with
           | Zeros -> "z"
           | Arbitrary -> "a"
           | Words a ->
             String.concat "," (Array.to_list (Array.map string_of_int a))));
      List.iteri
        (fun j p ->
          ser_bus (Printf.sprintf "w%d.%d:" mc j) p.w_addr;
          ser_bus "|" p.w_data;
          ser p.w_enable;
          Buffer.add_string buf ("|" ^ sref p.w_enable ^ ";"))
        (List.rev m.wports);
      List.iteri
        (fun r p ->
          ser_bus (Printf.sprintf "r%d.%d:" mc r) p.r_addr;
          ser p.r_enable;
          Buffer.add_string buf ("|" ^ sref p.r_enable ^ "|");
          Array.iter
            (fun s ->
              ser s;
              Buffer.add_string buf (sref s);
              Buffer.add_char buf ',')
            p.r_out;
          Buffer.add_char buf ';')
        (List.rev m.rports)
  done;
  Buffer.contents buf

type stats = {
  num_inputs : int;
  num_latches : int;
  num_ands : int;
  num_memories : int;
  num_mem_bits : int;
}

let stats t =
  let num_ands = ref 0 in
  for i = 0 to t.num_nodes - 1 do
    match t.nodes.(i) with
    | INand _ -> incr num_ands
    | INconst | INinput _ | INlatch _ | INmem_out _ -> ()
  done;
  let num_mem_bits =
    List.fold_left
      (fun acc m -> acc + ((1 lsl m.addr_width) * m.data_width))
      0 t.rev_memories
  in
  {
    num_inputs = List.length t.rev_inputs;
    num_latches = List.length t.rev_latches;
    num_ands = !num_ands;
    num_memories = List.length t.rev_memories;
    num_mem_bits;
  }

let pp_stats ppf s =
  Format.fprintf ppf "inputs=%d latches=%d ands=%d memories=%d mem-bits=%d"
    s.num_inputs s.num_latches s.num_ands s.num_memories s.num_mem_bits
