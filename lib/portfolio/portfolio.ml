(* In-process Domain portfolio.  See portfolio.mli for the contract.

   Concurrency discipline: a Solver.t is only ever touched by the one
   domain running its instance.  Cross-domain traffic is limited to (a) the
   mutex-guarded exchange buffer, (b) the stop/winner atomics, and (c) the
   per-slot outcome array, where slot [k] is written only by instance [k]'s
   domain before it terminates and read by the caller after [Domain.join]
   — the join provides the happens-before edge. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

module Exchange = struct
  type entry = { owner : int; lits : Lit.t list }

  type t = {
    lock : Mutex.t;
    buf : entry array; (* ring: logical position p lives at p mod capacity *)
    capacity : int;
    consumers : int;
    mutable head : int; (* total entries ever admitted *)
    cursors : int array; (* per-consumer read position *)
    mutable published : int;
    mutable dropped : int;
    mutable delivered : int;
  }

  let create ~consumers ~capacity =
    if consumers < 1 || capacity < 1 then invalid_arg "Exchange.create";
    {
      lock = Mutex.create ();
      buf = Array.make capacity { owner = -1; lits = [] };
      capacity;
      consumers;
      head = 0;
      cursors = Array.make consumers 0;
      published = 0;
      dropped = 0;
      delivered = 0;
    }

  let min_cursor t = Array.fold_left min max_int t.cursors

  (* Full means the slowest consumer has not yet read the entry the new one
     would overwrite; the publish is refused rather than losing data, which
     is what makes the exactly-once delivery invariant checkable. *)
  let publish t ~owner lits =
    if owner < 0 || owner >= t.consumers then invalid_arg "Exchange.publish";
    Mutex.protect t.lock (fun () ->
        if t.head - min_cursor t >= t.capacity then begin
          t.dropped <- t.dropped + 1;
          false
        end
        else begin
          t.buf.(t.head mod t.capacity) <- { owner; lits };
          t.head <- t.head + 1;
          t.published <- t.published + 1;
          true
        end)

  let drain t k =
    if k < 0 || k >= t.consumers then invalid_arg "Exchange.drain";
    Mutex.protect t.lock (fun () ->
        let acc = ref [] in
        for p = t.cursors.(k) to t.head - 1 do
          let e = t.buf.(p mod t.capacity) in
          if e.owner <> k then begin
            acc := e.lits :: !acc;
            t.delivered <- t.delivered + 1
          end
        done;
        t.cursors.(k) <- t.head;
        List.rev !acc)

  type stats = { published : int; dropped : int; delivered : int }

  let stats t =
    Mutex.protect t.lock (fun () ->
        { published = t.published; dropped = t.dropped; delivered = t.delivered })
end

type config = {
  domains : int;
  share : bool;
  share_lbd_max : int;
  exchange_capacity : int;
  corrupt_imports : bool;
}

let default_config =
  {
    domains = 2;
    share = true;
    share_lbd_max = 2;
    exchange_capacity = 512;
    corrupt_imports = false;
  }

(* Per-slot race outcome, written by the owning domain only. *)
type outcome = Res of Solver.result | Halted | Failed of exn

type t = {
  cfg : config;
  primary : Solver.t;
  replicas : Solver.t array; (* instances 1 .. domains-1 *)
  exchange : Exchange.t option; (* one buffer for the portfolio's lifetime *)
  mutable pending : (int * Lit.t list) list; (* clause log since last sync, newest first *)
  mutable races : int;
  mutable last_winner : int;
}

(* Diversification tables, indexed by instance number.  Instance 0 (the
   primary) keeps the classic defaults so [domains = 1] measures the true
   sequential baseline. *)
let decay_table = [| 0.95; 0.92; 0.97; 0.90; 0.94; 0.96; 0.91; 0.93 |]
let restart_table = [| 100; 50; 200; 150; 80; 120; 60; 250 |]

let diversify k s =
  Solver.set_var_decay s decay_table.(k mod Array.length decay_table);
  Solver.set_restart_base s restart_table.(k mod Array.length restart_table);
  Solver.set_default_phase s (k land 1 = 1);
  Solver.set_random_seed s (k * 0x9e3779);
  Solver.set_random_phase_freq s 0.01

let create ?(config = default_config) primary =
  if config.domains < 1 then invalid_arg "Portfolio.create: domains < 1";
  if Solver.num_clauses primary > 0 || Solver.num_vars primary > 0 then
    invalid_arg "Portfolio.create: primary solver is not fresh";
  let replicas =
    Array.init (config.domains - 1) (fun i ->
        let s = Solver.create () in
        diversify (i + 1) s;
        s)
  in
  let exchange =
    if config.share && config.domains > 1 then
      Some
        (Exchange.create ~consumers:config.domains
           ~capacity:config.exchange_capacity)
    else None
  in
  let t =
    { cfg = config; primary; replicas; exchange; pending = []; races = 0; last_winner = -1 }
  in
  Solver.set_clause_listener primary
    (Some (fun tag lits -> t.pending <- (tag, lits) :: t.pending));
  t

let num_instances t = Array.length t.replicas + 1
let instance t k = if k = 0 then t.primary else t.replicas.(k - 1)
let races t = t.races
let winner t = t.last_winner
let winner_solver t = instance t (max 0 t.last_winner)

let exchange_stats t =
  match t.exchange with
  | Some ex -> Exchange.stats ex
  | None -> { Exchange.published = 0; dropped = 0; delivered = 0 }

let merged_stats t =
  let acc = ref Solver.empty_stats in
  for k = 0 to num_instances t - 1 do
    let s = Solver.stats (instance t k) in
    let a = !acc in
    acc :=
      {
        Solver.conflicts = a.Solver.conflicts + s.Solver.conflicts;
        decisions = a.Solver.decisions + s.Solver.decisions;
        propagations = a.Solver.propagations + s.Solver.propagations;
        restarts = a.Solver.restarts + s.Solver.restarts;
        learnt_clauses = a.Solver.learnt_clauses + s.Solver.learnt_clauses;
        deleted_clauses = a.Solver.deleted_clauses + s.Solver.deleted_clauses;
        db_reductions = a.Solver.db_reductions + s.Solver.db_reductions;
        minimised_lits = a.Solver.minimised_lits + s.Solver.minimised_lits;
        avg_lbd =
          (* running weighted mean over learnt clauses *)
          (let n = a.Solver.learnt_clauses + s.Solver.learnt_clauses in
           if n = 0 then 0.0
           else
             ((a.Solver.avg_lbd *. float_of_int a.Solver.learnt_clauses)
             +. (s.Solver.avg_lbd *. float_of_int s.Solver.learnt_clauses))
             /. float_of_int n);
        solve_time_s = a.Solver.solve_time_s +. s.Solver.solve_time_s;
        shared_out = a.Solver.shared_out + s.Solver.shared_out;
        shared_in = a.Solver.shared_in + s.Solver.shared_in;
      }
  done;
  !acc

(* Replay the primary's clause stream into every replica and copy the
   primary's current limits.  Runs on the calling domain, before any racing
   domain is spawned. *)
let sync t =
  let log = List.rev t.pending in
  t.pending <- [];
  let nvars = Solver.num_vars t.primary in
  Array.iter
    (fun r ->
      Solver.ensure_vars r nvars;
      List.iter (fun (tag, lits) -> Solver.add_clause ~tag r lits) log;
      Solver.set_deadline r (Solver.deadline t.primary);
      Solver.set_conflict_budget r (Solver.conflict_budget t.primary);
      Solver.set_learnt_budget_mb r (Solver.learnt_budget_mb t.primary);
      Solver.set_proof_logging r (Solver.proof_logging_enabled t.primary))
    t.replicas

let result_name = function Solver.Sat -> "SAT" | Solver.Unsat -> "UNSAT"

let solve ?(assumptions = []) t =
  sync t;
  t.races <- t.races + 1;
  let n = num_instances t in
  if n = 1 then begin
    t.last_winner <- 0;
    Solver.solve ~assumptions t.primary
  end
  else begin
    let stop = Atomic.make false in
    let winner = Atomic.make (-1) in
    (* Imports would invalidate a DRAT log, so sharing pauses while proof
       logging is on; [Solver.import_clauses] also refuses on its own. *)
    let exchange =
      if Solver.proof_logging_enabled t.primary then None else t.exchange
    in
    Array.init n (instance t)
    |> Array.iteri (fun k s ->
           Solver.set_stop s (Some stop);
           match exchange with
           | Some ex ->
             let lbd_max = t.cfg.share_lbd_max in
             Solver.set_share_callback s
               (Some
                  (fun ~lbd lits ->
                    lbd <= lbd_max && Exchange.publish ex ~owner:k lits));
             let corrupt = t.cfg.corrupt_imports in
             Solver.set_import_source s
               (Some
                  (fun () ->
                    let cls = Exchange.drain ex k in
                    if corrupt then
                      List.map
                        (function [] -> [] | l :: rest -> Lit.negate l :: rest)
                        cls
                    else cls))
           | None -> ());
    let outcomes = Array.make n Halted in
    let run_instance k s =
      (match Solver.solve ~assumptions s with
      | r ->
        outcomes.(k) <- Res r;
        (* First finisher wins and cancels the rest.  A loser that was
           already past its last stop check may still finish: its result is
           kept for the agreement check below. *)
        if Atomic.compare_and_set winner (-1) k then Atomic.set stop true
      | exception Solver.Stopped -> outcomes.(k) <- Halted
      | exception e ->
        (* Do not cancel the race: the peers run under the same copied
           deadline and budgets and will halt on their own, and one of them
           may still beat the limit that killed this instance. *)
        outcomes.(k) <- Failed e);
      ()
    in
    let spawn k =
      let token = Obs.domain_fork () in
      Domain.spawn (fun () ->
          Obs.domain_scope token (fun () ->
              Obs.span "portfolio.instance"
                ~attrs:[ ("k", Obs.Int k) ]
                (fun () -> run_instance k (instance t k))))
    in
    let domains = Array.init (n - 1) (fun i -> spawn (i + 1)) in
    Obs.span "portfolio.instance"
      ~attrs:[ ("k", Obs.Int 0) ]
      (fun () -> run_instance 0 t.primary);
    let worker_rows = Array.map (fun d -> snd (Domain.join d)) domains in
    Array.iter Obs.ingest_current worker_rows;
    Array.init n (instance t)
    |> Array.iter (fun s ->
           Solver.set_stop s None;
           Solver.set_share_callback s None;
           Solver.set_import_source s None);
    let w = Atomic.get winner in
    if w < 0 then begin
      t.last_winner <- -1;
      (* No instance finished: every slot is Halted (impossible — nobody
         set the stop flag) or Failed; surface the first failure. *)
      let first_failure =
        Array.fold_left
          (fun acc o ->
            match (acc, o) with None, Failed e -> Some e | _ -> acc)
          None outcomes
      in
      match first_failure with
      | Some e -> raise e
      | None -> failwith "portfolio: race ended with no result and no failure"
    end
    else begin
      t.last_winner <- w;
      let result = match outcomes.(w) with Res r -> r | _ -> assert false in
      (* Soundness tripwire: all instances solve the same formula under the
         same assumptions, so every finisher must agree. *)
      Array.iteri
        (fun k o ->
          match o with
          | Res r when r <> result ->
            failwith
              (Printf.sprintf
                 "portfolio: instance %d answered %s but winner %d answered %s"
                 k (result_name r) w (result_name result))
          | Res _ | Halted | Failed _ -> ())
        outcomes;
      (* Make the primary answer-shaped regardless of who won, so callers
         keep reading models off the solver they fed. *)
      if w <> 0 && result = Solver.Sat then
        Solver.adopt_model t.primary (Solver.raw_model (instance t w));
      result
    end
  end
