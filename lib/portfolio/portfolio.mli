(** In-process portfolio SAT solving over OCaml 5 domains.

    A portfolio races [domains] diversified CDCL instances on the same CNF:
    instance 0 is the caller's own solver (the one the BMC encoder feeds)
    and runs on the calling domain, undiversified, so [domains = 1] is an
    honest sequential baseline; instances [1 .. domains-1] are replicas kept
    in lockstep by replaying the primary's clause stream (captured via
    [Solver.set_clause_listener]) and diversified through the solver's
    seed / phase / restart / VSIDS-decay knobs.

    During a race the instances cooperate: every learnt clause with
    LBD <= [share_lbd_max] is published into a bounded exchange buffer, and
    each instance imports its peers' clauses at its restart boundaries (and
    at solve entry).  The exchange persists across races — a learnt clause
    is implied by the formula alone, also under assumptions, so clauses
    learnt while answering depth [k] legitimately accelerate depth [k+1].

    The first instance to finish wins: it publishes its result, flips the
    shared stop flag, and the losers back out cooperatively
    ([Solver.Stopped]) at their next periodic check.  Any two instances
    that both finish must agree — a disagreement raises [Failure], which is
    the portfolio's built-in soundness tripwire.

    Sharing is automatically disabled while the primary has proof logging
    enabled: an imported clause is not RUP with respect to the importing
    instance's own derivation, so it would invalidate the DRAT log.
    Racing still happens; each instance keeps its own self-contained log,
    and certification checks the winner's. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

(** Bounded multi-producer broadcast buffer for learnt clauses.

    A single-mutex ring (measured: the solver publishes at most a handful
    of clauses per thousand conflicts, so the lock is nowhere near
    contended).  Every successfully published clause is delivered exactly
    once, in publication order, to every consumer other than its owner —
    publishing fails (and is counted) when the ring is full, it never
    evicts an unread entry.  Clauses are immutable literal lists, so no
    torn reads are possible. *)
module Exchange : sig
  type t

  val create : consumers:int -> capacity:int -> t

  val publish : t -> owner:int -> Lit.t list -> bool
  (** [publish t ~owner lits] offers a clause to every other consumer;
      [false] (counted as dropped) when the ring is full. *)

  val drain : t -> int -> Lit.t list list
  (** [drain t k] returns, in publication order, every clause published
      since [k] last drained whose owner is not [k], and advances [k]'s
      cursor past them. *)

  type stats = { published : int; dropped : int; delivered : int }

  val stats : t -> stats
end

type config = {
  domains : int;  (** instances raced, including the primary; >= 1 *)
  share : bool;  (** exchange learnt glue clauses between instances *)
  share_lbd_max : int;  (** publish learnt clauses with LBD <= this *)
  exchange_capacity : int;  (** ring slots in the exchange buffer *)
  corrupt_imports : bool;
      (** test-only fault injection: negate the first literal of every
          imported clause, making the import path unsound on purpose so the
          differential battery can demonstrate it would catch a real
          sharing bug.  Never enable outside tests. *)
}

val default_config : config
(** [{ domains = 2; share = true; share_lbd_max = 2;
      exchange_capacity = 512; corrupt_imports = false }] *)

type t

val create : ?config:config -> Solver.t -> t
(** [create primary] wraps a {e fresh} solver (no variables or clauses yet
    — raises [Invalid_argument] otherwise, since replicas mirror the
    primary by replaying its clause stream from the beginning) and builds
    [domains - 1] diversified replicas.  Installs a clause listener on the
    primary; the caller keeps feeding the primary as usual. *)

val solve : ?assumptions:Lit.t list -> t -> Solver.result
(** Race all instances on the primary's current formula under the given
    assumptions.  Replicas are first synchronised (clause replay; the
    primary's deadline, budgets and proof-logging flag are copied), then
    [domains - 1] domains are spawned while instance 0 runs on the calling
    domain.  Returns the winner's result; the primary's model is made
    authoritative ([Solver.value] works as after a sequential solve) even
    when a replica won.  Re-raises the first instance failure
    ([Solver.Timeout], [Solver.Budget_exceeded], ...) when no instance
    finished.  Raises [Failure] if two finished instances disagree.

    With [domains = 1] this is exactly [Solver.solve] on the primary, plus
    one listener call per clause.  Obs span trees recorded by the racing
    domains are merged into the caller's recorder, one synthetic pid per
    domain, like the fork pool's worker traces. *)

val winner : t -> int
(** Instance index that answered the last {!solve}; [-1] before the first
    race or if the last race ended in a failure. *)

val winner_solver : t -> Solver.t
(** The instance that answered the last race (the primary before any). *)

val instance : t -> int -> Solver.t
(** [instance t k] is instance [k]; [instance t 0] is the primary. *)

val num_instances : t -> int

val races : t -> int
(** Number of {!solve} calls so far. *)

val exchange_stats : t -> Exchange.stats
(** Cumulative exchange-buffer counters (all zero when sharing is off). *)

val merged_stats : t -> Solver.stats
(** Sum of all instances' counters ([avg_lbd] weighted by learnt clauses)
    — the portfolio-wide work, as opposed to the winner's. *)
