(* Shared differential-net generator: seeded random closed designs with one
   memory, a simulator ground truth and a verdict signature.  Used by
   [test_differential] (the four-way EMM/explicit/plain/simulator net),
   [test_portfolio] (the same designs routed through the in-process Domain
   portfolio) and [test_vcache] (cold vs. warm verdicts). *)

let depth_bound = 8

(* No primary inputs: all stimulus derives from a free-running counter, so
   the simulator yields a ground-truth verdict.  Write-port enables are
   mutually exclusive by construction (the EMM model assumes race freedom,
   while the explicit model resolves same-address collisions by port order).
   Read enables are tied to true — the EMM contract allows designs to depend
   on read data only while the read is enabled.

   Two generator styles share the [cfg] record:

   - [Classic]: a 3-bit counter, write data a function of the counter, an
     XOR accumulator latch — the original falsification-oriented net.
   - [Latch_poor]: [cw] counter bits (possibly {e zero} latches), write data
     a function of the written {e address} alone shared by every write port,
     and no accumulator.  Latch state cycles with period [2^cw] while memory
     fills monotonically towards [f(addr)] — exactly the regime where
     latch-only loop-free-path distinctness over-proves, and where the
     memory-state distinctness predicates must agree with the explicit
     model's sound latch-level proofs on both verdict and proved depth.
     (Data depending only on the address means a write can never restore a
     location to an older value, so "some write changed memory" coincides
     with "memory state differs" along loop-free paths and proved depths
     match exactly, not just soundly.) *)

type style = Classic | Latch_poor

type cfg = {
  id : int;
  style : style;
  cw : int; (* counter width; latches in the design (Classic: always 3) *)
  aw : int;
  dw : int;
  wports : int;
  rports : int;
  arbitrary : bool;
  wconsts : int array; (* write address = counter xor this *)
  dconsts : int array; (* write data   = counter (Classic) / addr xor this *)
  rconsts : int array; (* read address = counter xor this *)
  en_bit : int option; (* None: first write port always enabled *)
  prop_on_acc : bool; (* property watches accumulator vs raw read data *)
  target : int;
}

let random_cfg id =
  let st = Random.State.make [| 0x3d1f; id |] in
  let aw = 1 + Random.State.int st 2 in
  let dw = 1 + Random.State.int st 3 in
  let wports = 1 + Random.State.int st 2 in
  let rports = 1 + Random.State.int st 2 in
  let const8 () = Random.State.int st 8 in
  {
    id;
    style = Classic;
    cw = 3;
    aw;
    dw;
    wports;
    rports;
    arbitrary = Random.State.bool st;
    wconsts = Array.init wports (fun _ -> const8 ());
    dconsts = Array.init wports (fun _ -> const8 ());
    rconsts = Array.init rports (fun _ -> const8 ());
    en_bit = (if Random.State.bool st then Some (Random.State.int st 3) else None);
    prop_on_acc = Random.State.bool st;
    target = Random.State.int st (1 lsl dw);
  }

(* The latch-poor net draws from its own seed space so the classic seeds
   stay byte-stable. *)
let latch_poor_cfg id =
  let st = Random.State.make [| 0x7a2b; 0x5eed; id |] in
  let cw = Random.State.int st 3 in
  let aw = 1 + Random.State.int st 2 in
  let dw = 1 + Random.State.int st 3 in
  let wports = 1 + Random.State.int st 2 in
  let rports = 1 + Random.State.int st 2 in
  let const8 () = Random.State.int st 8 in
  {
    id;
    style = Latch_poor;
    cw;
    aw;
    dw;
    wports;
    rports;
    (* Arbitrary init makes most targets reachable at depth 0; keep it rare
       so the net stays proof-rich (proved depths are the point here). *)
    arbitrary = Random.State.int st 4 = 0;
    wconsts = Array.init wports (fun _ -> const8 ());
    dconsts = [| const8 () |]; (* one shared data function of the address *)
    rconsts = Array.init rports (fun _ -> const8 ());
    en_bit =
      (if cw > 0 && Random.State.bool st then Some (Random.State.int st cw)
       else None);
    prop_on_acc = false;
    target = Random.State.int st (1 lsl dw);
  }

let build_classic cfg =
  let ctx = Hdl.create () in
  let init = if cfg.arbitrary then Netlist.Arbitrary else Netlist.Zeros in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:cfg.aw ~data_width:cfg.dw ~init in
  let cnt = Hdl.reg ctx "cnt" ~width:3 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let addr_of c =
    Hdl.select (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~hi:(cfg.aw - 1) ~lo:0
  in
  let data_of c = Hdl.uresize (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~width:cfg.dw in
  let en0 =
    match cfg.en_bit with None -> Netlist.true_ | Some b -> Hdl.bit_of cnt b
  in
  for w = 0 to cfg.wports - 1 do
    let enable = if w = 0 then en0 else Netlist.not_ en0 in
    Hdl.write_port ctx mem ~addr:(addr_of cfg.wconsts.(w)) ~data:(data_of cfg.dconsts.(w))
      ~enable
  done;
  let rds =
    List.init cfg.rports (fun r ->
        Hdl.read_port ctx mem ~addr:(addr_of cfg.rconsts.(r)) ~enable:Netlist.true_)
  in
  let acc = Hdl.reg ctx "acc" ~width:cfg.dw in
  Hdl.connect ctx acc (List.fold_left (Hdl.xor_v ctx) acc rds);
  let watched = if cfg.prop_on_acc then acc else List.hd rds in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx watched cfg.target));
  Hdl.netlist ctx

let build_latch_poor cfg =
  let ctx = Hdl.create () in
  let init = if cfg.arbitrary then Netlist.Arbitrary else Netlist.Zeros in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:cfg.aw ~data_width:cfg.dw ~init in
  let cnt =
    if cfg.cw = 0 then None
    else begin
      let cnt = Hdl.reg ctx "cnt" ~width:cfg.cw in
      Hdl.connect ctx cnt (Hdl.incr ctx cnt);
      Some cnt
    end
  in
  let addr_of c =
    let cbus = Hdl.const ~width:cfg.aw c in
    match cnt with
    | None -> cbus
    | Some cnt -> Hdl.xor_v ctx (Hdl.uresize cnt ~width:cfg.aw) cbus
  in
  (* Write data depends on the written address only, identically across
     ports: writes are idempotent per location, so memory state evolves
     monotonically and EMM's "some write changed memory" predicate is exact
     (see the style comment above). *)
  let data_of addr =
    Hdl.xor_v ctx (Hdl.uresize addr ~width:cfg.dw)
      (Hdl.const ~width:cfg.dw cfg.dconsts.(0))
  in
  let en0 =
    match (cfg.en_bit, cnt) with
    | Some b, Some cnt -> Hdl.bit_of cnt b
    | _ -> Netlist.true_
  in
  for w = 0 to cfg.wports - 1 do
    let enable = if w = 0 then en0 else Netlist.not_ en0 in
    let addr = addr_of cfg.wconsts.(w) in
    Hdl.write_port ctx mem ~addr ~data:(data_of addr) ~enable
  done;
  let rds =
    List.init cfg.rports (fun r ->
        Hdl.read_port ctx mem ~addr:(addr_of cfg.rconsts.(r)) ~enable:Netlist.true_)
  in
  Hdl.assert_always ctx "p"
    (Netlist.not_ (Hdl.eq_const ctx (List.hd rds) cfg.target));
  Hdl.netlist ctx

let build cfg =
  match cfg.style with Classic -> build_classic cfg | Latch_poor -> build_latch_poor cfg

(* Ground truth on a closed design: first frame (after-step convention, as in
   [Bmc.Trace.property_values]) at which the property fails, within the
   bound. *)
let sim_first_failure ?(depth = depth_bound) net =
  let sim = Simulator.create net in
  let p = Netlist.find_property net "p" in
  let rec go k =
    if k > depth then None
    else begin
      Simulator.step sim ~inputs:(fun _ -> false);
      if not (Simulator.value sim p) then Some k else go (k + 1)
    end
  in
  go 0

let falsify_config =
  { Bmc.Engine.default_config with max_depth = depth_bound; proof_checks = false }

let signature = function
  | Bmc.Engine.Counterexample t -> Printf.sprintf "cex@%d" t.Bmc.Trace.depth
  | Bmc.Engine.Proof { depth; _ } -> Printf.sprintf "proof@%d" depth
  | Bmc.Engine.Bounded_safe d -> Printf.sprintf "safe@%d" d
  | Bmc.Engine.Reasons_stable d -> Printf.sprintf "stable@%d" d
  | Bmc.Engine.Timed_out d -> Printf.sprintf "timeout@%d" d
  | Bmc.Engine.Out_of_budget { depth; what } -> Printf.sprintf "budget(%s)@%d" what depth
