(* Correctness tests for the EMM constraint generator: direct validation of
   the forwarding semantics against a reference functional memory, size
   formulas, equivalence with explicit modeling, and the arbitrary-initial-
   state machinery of §4.2. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

(* {2 A memory harness: every interface signal driven by a primary input} *)

type harness = {
  net : Netlist.t;
  mem : Netlist.memory;
  waddr : Hdl.vector array; (* per write port *)
  wdata : Hdl.vector array;
  we : Hdl.bit array;
  raddr : Hdl.vector array; (* per read port *)
  re : Hdl.bit array;
  rd : Hdl.vector array;
}

let harness ~aw ~dw ~wports ~rports ~init =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:aw ~data_width:dw ~init in
  let waddr = Array.init wports (fun w -> Hdl.input ctx (Printf.sprintf "wa%d" w) ~width:aw) in
  let wdata = Array.init wports (fun w -> Hdl.input ctx (Printf.sprintf "wd%d" w) ~width:dw) in
  let we = Array.init wports (fun w -> Hdl.input_bit ctx (Printf.sprintf "we%d" w)) in
  Array.iteri
    (fun w addr -> Hdl.write_port ctx mem ~addr ~data:wdata.(w) ~enable:we.(w))
    waddr;
  let raddr = Array.init rports (fun r -> Hdl.input ctx (Printf.sprintf "ra%d" r) ~width:aw) in
  let re = Array.init rports (fun r -> Hdl.input_bit ctx (Printf.sprintf "re%d" r)) in
  let rd = Array.map2 (fun addr enable -> Hdl.read_port ctx mem ~addr ~enable) raddr re in
  Hdl.assert_always ctx "true" Netlist.true_;
  { net = Hdl.netlist ctx; mem; waddr; wdata; we; raddr; re; rd }

(* One cycle of stimulus for the harness. *)
type cycle = {
  writes : (int * int * bool) array; (* (addr, data, enable) per write port *)
  reads : (int * bool) array; (* (addr, enable) per read port *)
}

let assume_bus unr frame bus value =
  Array.to_list bus
  |> List.mapi (fun i s ->
         let l = Cnf.lit unr ~frame s in
         if (value lsr i) land 1 = 1 then l else Lit.negate l)

let assume_bit unr frame s v =
  let l = Cnf.lit unr ~frame s in
  if v then l else Lit.negate l

(* Reference functional memory with the paper's semantics: reads observe the
   contents at the start of the cycle; writes land afterwards. *)
let reference_run ~aw ~init_word cycles =
  let contents = Array.init (1 lsl aw) init_word in
  List.map
    (fun c ->
      let observed =
        Array.map (fun (addr, en) -> if en then Some contents.(addr) else None) c.reads
      in
      Array.iter
        (fun (addr, data, en) -> if en then contents.(addr) <- data)
        c.writes;
      observed)
    cycles

(* Drive the EMM-constrained model with a fully concrete stimulus and compare
   every enabled read against the reference. *)
let run_forwarding_check ~aw ~dw ~wports ~rports ~init cycles =
  let h = harness ~aw ~dw ~wports ~rports ~init in
  let solver = Solver.create () in
  let unr = Cnf.create solver h.net in
  let emm = Emm.create unr in
  let assumptions = ref [ Cnf.act_init unr ] in
  List.iteri
    (fun frame c ->
      Emm.add_constraints emm frame;
      Array.iteri
        (fun w (addr, data, en) ->
          assumptions := assume_bus unr frame h.waddr.(w) addr @ !assumptions;
          assumptions := assume_bus unr frame h.wdata.(w) data @ !assumptions;
          assumptions := assume_bit unr frame h.we.(w) en :: !assumptions)
        c.writes;
      Array.iteri
        (fun r (addr, en) ->
          assumptions := assume_bus unr frame h.raddr.(r) addr @ !assumptions;
          assumptions := assume_bit unr frame h.re.(r) en :: !assumptions)
        c.reads)
    cycles;
  match Solver.solve ~assumptions:!assumptions solver with
  | Solver.Unsat -> Error "unexpected UNSAT under concrete stimulus"
  | Solver.Sat ->
    let expected = reference_run ~aw ~init_word:(fun _ -> 0) cycles in
    let ok = ref true in
    List.iteri
      (fun frame observed ->
        Array.iteri
          (fun r expect ->
            match expect with
            | None -> ()
            | Some word ->
              let got = ref 0 in
              Array.iteri
                (fun b s ->
                  if Solver.value solver (Cnf.lit unr ~frame s) then
                    got := !got lor (1 lsl b))
                h.rd.(r);
              if !got <> word then ok := false)
          observed)
      expected;
    if !ok then Ok () else Error "read data mismatch"

let gen_cycles ~aw ~dw ~wports ~rports =
  QCheck2.Gen.(
    let gen_cycle =
      let gen_write = map2 (fun a d -> (a, d)) (int_bound ((1 lsl aw) - 1)) (int_bound ((1 lsl dw) - 1)) in
      let* writes = array_size (pure wports) (pair gen_write bool) in
      let* reads = array_size (pure rports) (pair (int_bound ((1 lsl aw) - 1)) bool) in
      (* Avoid data races: disable later writes that hit an earlier enabled
         write's address this cycle (the paper assumes race freedom). *)
      let seen = Hashtbl.create 4 in
      let writes =
        Array.map
          (fun ((a, d), en) ->
            let en = en && not (Hashtbl.mem seen a) in
            if en then Hashtbl.add seen a ();
            (a, d, en))
          writes
      in
      pure { writes; reads }
    in
    list_size (int_range 1 6) gen_cycle)

(* Arbitrary initial contents: solve under a concrete stimulus, extract the
   initial memory the solver chose, and check the model's read data against a
   reference memory seeded with exactly that initial state. *)
let run_arbitrary_init_check ~aw ~dw ~wports ~rports cycles =
  let h = harness ~aw ~dw ~wports ~rports ~init:Netlist.Arbitrary in
  let solver = Solver.create () in
  let unr = Cnf.create solver h.net in
  let emm = Emm.create unr in
  let assumptions = ref [] in
  List.iteri
    (fun frame c ->
      Emm.add_constraints emm frame;
      Array.iteri
        (fun w (addr, data, en) ->
          assumptions := assume_bus unr frame h.waddr.(w) addr @ !assumptions;
          assumptions := assume_bus unr frame h.wdata.(w) data @ !assumptions;
          assumptions := assume_bit unr frame h.we.(w) en :: !assumptions)
        c.writes;
      Array.iteri
        (fun r (addr, en) ->
          assumptions := assume_bus unr frame h.raddr.(r) addr @ !assumptions;
          assumptions := assume_bit unr frame h.re.(r) en :: !assumptions)
        c.reads)
    cycles;
  match Solver.solve ~assumptions:!assumptions solver with
  | Solver.Unsat -> false
  | Solver.Sat ->
    let init_words =
      match Emm.mem_init_of_model emm with
      | [ (_, words) ] -> words
      | [] -> []
      | _ -> []
    in
    let init_word a = match List.assoc_opt a init_words with Some w -> w | None -> 0 in
    let expected = reference_run ~aw ~init_word cycles in
    List.for_all2
      (fun frame observed ->
        List.for_all
          (fun r ->
            match observed.(r) with
            | None -> true
            | Some word ->
              let got = ref 0 in
              Array.iteri
                (fun b s ->
                  if Solver.value solver (Cnf.lit unr ~frame s) then
                    got := !got lor (1 lsl b))
                h.rd.(r);
              !got = word)
          (List.init rports Fun.id))
      (List.mapi (fun i _ -> i) cycles)
      expected

let prop_arbitrary_init_consistent =
  QCheck2.Test.make ~count:60 ~name:"arbitrary-init model matches extracted memory"
    (gen_cycles ~aw:2 ~dw:3 ~wports:1 ~rports:2)
    (fun cycles -> run_arbitrary_init_check ~aw:2 ~dw:3 ~wports:1 ~rports:2 cycles)

let prop_forwarding_single_port =
  QCheck2.Test.make ~count:100 ~name:"forwarding semantics, 1R1W"
    (gen_cycles ~aw:2 ~dw:3 ~wports:1 ~rports:1)
    (fun cycles ->
      run_forwarding_check ~aw:2 ~dw:3 ~wports:1 ~rports:1 ~init:Netlist.Zeros cycles
      = Ok ())

let prop_forwarding_multi_port =
  QCheck2.Test.make ~count:60 ~name:"forwarding semantics, 3R2W"
    (gen_cycles ~aw:2 ~dw:2 ~wports:2 ~rports:3)
    (fun cycles ->
      run_forwarding_check ~aw:2 ~dw:2 ~wports:2 ~rports:3 ~init:Netlist.Zeros cycles
      = Ok ())

(* {2 Constraint-size formulas (§3, §4.1)} *)

let test_constraint_counts () =
  let aw = 3 and dw = 4 and wports = 2 and rports = 3 in
  let h = harness ~aw ~dw ~wports ~rports ~init:Netlist.Zeros in
  let solver = Solver.create () in
  (* Plain mode: the §4.1 size formulas describe the paper-faithful
     encoding, not the simplifying one. *)
  let unr = Cnf.create ~simplify:false solver h.net in
  (* Disable eq-6 pairing so the §4.1 counts are isolated. *)
  let emm = Emm.create ~init_consistency:false ~simplify:false unr in
  for k = 0 to 5 do
    Emm.add_constraints emm k;
    let c = Emm.counts_at emm k in
    let predicted_cl = Emm.predicted_clauses ~aw ~dw ~k ~writes:wports ~reads:rports in
    let predicted_g = Emm.predicted_gates ~k ~writes:wports ~reads:rports in
    Alcotest.(check int)
      (Printf.sprintf "clauses at depth %d" k)
      predicted_cl
      (c.Emm.addr_clauses + c.Emm.data_clauses);
    Alcotest.(check int) (Printf.sprintf "gates at depth %d" k) predicted_g c.Emm.excl_gates
  done

let test_counts_quadratic_growth () =
  (* Cumulative constraints grow quadratically: the per-depth increment is
     linear in k. *)
  let h = harness ~aw:2 ~dw:2 ~wports:1 ~rports:1 ~init:Netlist.Zeros in
  let solver = Solver.create () in
  let unr = Cnf.create ~simplify:false solver h.net in
  let emm = Emm.create ~init_consistency:false ~simplify:false unr in
  let increments =
    List.map
      (fun k ->
        Emm.add_constraints emm k;
        let c = Emm.counts_at emm k in
        c.Emm.addr_clauses + c.Emm.data_clauses)
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let diffs =
    match increments with
    | _ :: tl -> List.map2 (fun a b -> b - a) (List.filteri (fun i _ -> i < 5) increments) tl
    | [] -> []
  in
  (* Linear increment: constant second difference. *)
  match diffs with
  | d :: rest -> List.iter (fun d' -> Alcotest.(check int) "constant slope" d d') rest
  | [] -> Alcotest.fail "no data"

let test_model_size_scaling () =
  (* The paper's core scaling claim: EMM constraint sizes are linear in the
     address width, while the explicit model grows with memory capacity
     (2^AW latches). *)
  let emm_clauses aw =
    let h = harness ~aw ~dw:8 ~wports:1 ~rports:1 ~init:Netlist.Zeros in
    let solver = Solver.create () in
    let unr = Cnf.create ~simplify:false solver h.net in
    let emm = Emm.create ~init_consistency:false ~simplify:false unr in
    for k = 0 to 5 do
      Emm.add_constraints emm k
    done;
    let c = Emm.counts_total emm in
    c.Emm.addr_clauses + c.Emm.data_clauses
  in
  let explicit_latches aw =
    let h = harness ~aw ~dw:8 ~wports:1 ~rports:1 ~init:Netlist.Zeros in
    (Netlist.stats (Explicitmem.expand h.net)).Netlist.num_latches
  in
  (* Doubling AW adds a constant to EMM but doubles the explicit model. *)
  Alcotest.(check bool) "EMM grows linearly in AW" true
    (emm_clauses 8 - emm_clauses 4 = emm_clauses 12 - emm_clauses 8);
  Alcotest.(check int) "explicit doubles per AW bit" (2 * explicit_latches 4)
    (explicit_latches 5)

(* {2 EMM against explicit modeling on closed designs} *)

(* A small closed design: a counter-driven writer and an input-driven reader
   feeding an accumulator, with a property on the accumulator. *)
let closed_design ~init ~target =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init in
  let count = Hdl.reg ctx "count" ~width:2 in
  Hdl.connect ctx count (Hdl.incr ctx count);
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx mem ~addr:count ~data:(Hdl.not_v count) ~enable:we;
  let raddr = Hdl.input ctx "raddr" ~width:2 in
  let re = Hdl.input_bit ctx "re" in
  let rd = Hdl.read_port ctx mem ~addr:raddr ~enable:re in
  let acc = Hdl.reg ctx "acc" ~width:2 in
  let gated = Hdl.mux2 ctx re rd (Hdl.zero ~width:2) in
  Hdl.connect ctx acc (Hdl.xor_v ctx acc gated);
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx acc target));
  Hdl.netlist ctx

let falsify_config depth =
  { Bmc.Engine.default_config with max_depth = depth; proof_checks = false }

let verdict_signature = function
  | Bmc.Engine.Counterexample t -> `Cex t.Bmc.Trace.depth
  | Bmc.Engine.Proof { depth; _ } -> `Proof depth
  | Bmc.Engine.Bounded_safe d -> `Safe d
  | Bmc.Engine.Reasons_stable d -> `Stable d
  | Bmc.Engine.Timed_out d -> `Timeout d
  | Bmc.Engine.Out_of_budget { depth; _ } -> `Budget depth

let prop_emm_matches_explicit =
  QCheck2.Test.make ~count:12 ~name:"EMM verdict = explicit-model verdict"
    QCheck2.Gen.(pair (int_bound 3) bool)
    (fun (target, arbitrary) ->
      let init = if arbitrary then Netlist.Arbitrary else Netlist.Zeros in
      let net = closed_design ~init ~target in
      let emm_result, _ = Emm.check ~config:(falsify_config 6) net ~property:"p" in
      let expanded = Explicitmem.expand net in
      let exp_result =
        Bmc.Engine.check ~config:(falsify_config 6) expanded ~property:"p"
      in
      let same =
        verdict_signature emm_result.Bmc.Engine.verdict
        = verdict_signature exp_result.Bmc.Engine.verdict
      in
      let emm_replays =
        match emm_result.Bmc.Engine.verdict with
        | Bmc.Engine.Counterexample t -> Bmc.Trace.replay net t
        | _ -> true
      in
      let explicit_replays =
        match exp_result.Bmc.Engine.verdict with
        | Bmc.Engine.Counterexample t -> Bmc.Trace.replay expanded t
        | _ -> true
      in
      same && emm_replays && explicit_replays)

(* {2 End-to-end BMC with EMM} *)

let test_emm_counterexample () =
  (* Write 5 to address 0, read it back: rd can become 5. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  let wdata = Hdl.input ctx "wdata" ~width:3 in
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:wdata ~enable:we;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 5));
  let net = Hdl.netlist ctx in
  let result, _ = Emm.check ~config:(falsify_config 4) net ~property:"p" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check int) "depth" 1 t.Bmc.Trace.depth;
    Alcotest.(check bool) "replays" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected counterexample"

let test_emm_zero_memory_proof () =
  (* Never-written zero memory always reads zero: provable. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:3 ~data_width:4 ~init:Netlist.Zeros in
  let raddr = Hdl.input ctx "raddr" ~width:3 in
  let rd = Hdl.read_port ctx mem ~addr:raddr ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx rd 0);
  let net = Hdl.netlist ctx in
  let result, _ = Emm.check net ~property:"p" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof _ -> ()
  | v ->
    Alcotest.failf "expected proof, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

(* Arbitrary-initial-state consistency (§4.2): two reads of the same
   never-written location must agree. *)
let same_address_design () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Arbitrary in
  let a = Hdl.input ctx "a" ~width:2 in
  let b = Hdl.input ctx "b" ~width:2 in
  let rd1 = Hdl.read_port ctx mem ~addr:a ~enable:Netlist.true_ in
  let rd2 = Hdl.read_port ctx mem ~addr:b ~enable:Netlist.true_ in
  let net = Hdl.netlist ctx in
  let equal_addresses = Hdl.eq ctx a b in
  let equal_data = Hdl.eq ctx rd1 rd2 in
  Hdl.assert_always ctx "consistent" (Netlist.implies net equal_addresses equal_data);
  net

let test_init_consistency_two_ports () =
  let net = same_address_design () in
  let result, _ = Emm.check ~config:(falsify_config 2) net ~property:"consistent" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Bounded_safe _ | Bmc.Engine.Proof _ -> ()
  | _ -> Alcotest.fail "expected no counterexample with eq-(6) constraints"

let test_init_consistency_ablated () =
  let net = same_address_design () in
  let result, _ =
    Emm.check ~config:(falsify_config 2) ~init_consistency:false net
      ~property:"consistent"
  in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    (* The counterexample is spurious: simulation contradicts it. *)
    Alcotest.(check bool) "spurious" false (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected spurious counterexample without eq-(6)"

(* Cross-frame consistency of the same read port: the paper's count formula
   mentions only cross-port pairs, but same-port reads at different depths
   must also agree on never-written locations. *)
let cross_frame_design () =
  let ctx = Hdl.create () in
  let net = Hdl.netlist ctx in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Arbitrary in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  let started = Hdl.reg_bit ctx "started" in
  Hdl.connect_bit ctx started Netlist.true_;
  let first = Hdl.reg ctx "first" ~width:2 in
  Hdl.connect ctx first (Hdl.mux2 ctx started first rd);
  Hdl.assert_always ctx "stable"
    (Netlist.implies net started (Hdl.eq ctx first rd));
  net

let test_init_consistency_cross_frame () =
  let net = cross_frame_design () in
  let result, _ = Emm.check ~config:(falsify_config 4) net ~property:"stable" in
  (match result.Bmc.Engine.verdict with
  | Bmc.Engine.Bounded_safe _ | Bmc.Engine.Proof _ -> ()
  | _ -> Alcotest.fail "expected no counterexample with eq-(6) constraints");
  let ablated, _ =
    Emm.check ~config:(falsify_config 4) ~init_consistency:false net ~property:"stable"
  in
  match ablated.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check bool) "spurious" false (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected spurious counterexample without eq-(6)"

let test_induction_with_arbitrary_memory () =
  (* The cross-frame design is provable only with precise arbitrary-init
     modeling; BMC-3's induction machinery should close it. *)
  let net = cross_frame_design () in
  let config = { Bmc.Engine.default_config with max_depth = 20 } in
  let result, _ = Emm.check ~config net ~property:"stable" in
  match result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof _ -> ()
  | v ->
    Alcotest.failf "expected proof, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

(* {2 Memory-state-aware termination proofs}

   Proved diameters pinned on hand-built designs, against the explicit
   expansion whose loop-free-path constraints range over the expanded memory
   bits and are sound unconditionally.  The EMM engine reaches the same
   verdict {e and} the same proof kind and depth through its memory-state
   distinctness predicates ({!Emm.mem_distinct_lit}); the [mem_distinct:false]
   knob reproduces the pre-fix behavior and shows what each design would
   degrade to. *)

let proof_config = { Bmc.Engine.default_config with max_depth = 12 }

let proof_sig = function
  | Bmc.Engine.Proof { depth; kind = Bmc.Engine.Forward_diameter } ->
    Printf.sprintf "diameter@%d" depth
  | Bmc.Engine.Proof { depth; kind = Bmc.Engine.Backward_induction } ->
    Printf.sprintf "induction@%d" depth
  | Bmc.Engine.Counterexample t -> Printf.sprintf "cex@%d" t.Bmc.Trace.depth
  | Bmc.Engine.Bounded_safe d -> Printf.sprintf "safe@%d" d
  | v -> Format.asprintf "%a" Bmc.Engine.pp_verdict v

let check_pinned name net ~expect ~mutated =
  let emm_result, counts = Emm.check ~config:proof_config net ~property:"p" in
  Alcotest.(check string) (name ^ ": EMM") expect (proof_sig emm_result.Bmc.Engine.verdict);
  let exp_result =
    Bmc.Engine.check ~config:proof_config (Explicitmem.expand net) ~property:"p"
  in
  Alcotest.(check string) (name ^ ": explicit") expect
    (proof_sig exp_result.Bmc.Engine.verdict);
  let mut_result, mut_counts =
    Emm.check ~config:proof_config ~mem_distinct:false net ~property:"p"
  in
  Alcotest.(check string) (name ^ ": mem_distinct:false degrades as expected")
    mutated (proof_sig mut_result.Bmc.Engine.verdict);
  Alcotest.(check int) (name ^ ": no distinctness telemetry when disabled") 0
    mut_counts.Emm.distinct_preds;
  ignore counts

(* A write-free memory cannot evolve, so the distinctness predicates reduce
   to constants and the forward diameter is the latch period: the 1-bit
   counter gives diameter 2, with or without the fix. *)
let test_pinned_write_free () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:1 ~data_width:2 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:1 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let rd = Hdl.read_port ctx mem ~addr:cnt ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 3));
  check_pinned "write-free" (Hdl.netlist ctx) ~expect:"diameter@2"
    ~mutated:"diameter@2"

(* A single latch plus a filling memory: the safe sibling of the over-proof
   regression in test_differential.  Both models close it by induction at 2;
   the pre-fix engine still "proves" at depth 2, but as a forward-diameter
   proof fired by latch-only distinctness — right depth, wrong reason, and
   unsound in general (see the unsafe sibling). *)
let test_pinned_counter_mem () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:1 ~data_width:2 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:1 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  Hdl.write_port ctx mem ~addr:cnt ~data:(Hdl.const ~width:2 1) ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:cnt ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 2));
  check_pinned "counter-mem" (Hdl.netlist ctx) ~expect:"induction@2"
    ~mutated:"diameter@2"

(* A pure-memory FSM: zero latches, every frame writes 1 to word 0.  The
   pre-fix engine had no state vector at all here and PR 7's guard disabled
   termination checks entirely (bounded-safe at the depth limit); the
   distinctness predicates re-enable them and the proof lands exactly where
   the explicit expansion puts it. *)
let test_pinned_pure_memory () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:1 ~data_width:2 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.const ~width:1 0) ~data:(Hdl.const ~width:2 1)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.const ~width:1 1) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 3));
  check_pinned "pure-memory" (Hdl.netlist ctx) ~expect:"induction@1"
    ~mutated:"safe@12"

(* The distinctness machinery reports its own telemetry: a proof-mode run on
   a write-port design builds change predicates and their clauses, and the
   cumulative counts include them. *)
let test_distinct_counts_reported () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:1 ~data_width:2 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:1 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  Hdl.write_port ctx mem ~addr:cnt ~data:(Hdl.const ~width:2 1) ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:cnt ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 2));
  let _, counts = Emm.check ~config:proof_config (Hdl.netlist ctx) ~property:"p" in
  Alcotest.(check bool) "distinct_preds > 0" true (counts.Emm.distinct_preds > 0);
  Alcotest.(check bool) "distinct_clauses > 0" true (counts.Emm.distinct_clauses > 0)

let test_words_init_rejected () =
  let ctx = Hdl.create () in
  let _mem =
    Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2
      ~init:(Netlist.Words [| 1; 2; 3; 0 |])
  in
  Hdl.assert_always ctx "p" Netlist.true_;
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  Alcotest.check_raises "words rejected"
    (Invalid_argument "Emm.create: memory m has concrete initial words")
    (fun () -> ignore (Emm.create unr))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_forwarding_single_port; prop_forwarding_multi_port;
        prop_arbitrary_init_consistent; prop_emm_matches_explicit;
      ]
  in
  Alcotest.run "emm"
    [
      ( "unit",
        [
          Alcotest.test_case "constraint counts match paper" `Quick test_constraint_counts;
          Alcotest.test_case "quadratic growth" `Quick test_counts_quadratic_growth;
          Alcotest.test_case "model size scaling" `Quick test_model_size_scaling;
          Alcotest.test_case "counterexample via memory" `Quick test_emm_counterexample;
          Alcotest.test_case "zero-memory proof" `Quick test_emm_zero_memory_proof;
          Alcotest.test_case "init consistency, two ports" `Quick
            test_init_consistency_two_ports;
          Alcotest.test_case "init consistency ablated" `Quick test_init_consistency_ablated;
          Alcotest.test_case "init consistency across frames" `Quick
            test_init_consistency_cross_frame;
          Alcotest.test_case "pinned diameter: write-free memory" `Quick
            test_pinned_write_free;
          Alcotest.test_case "pinned diameter: counter + memory fill" `Quick
            test_pinned_counter_mem;
          Alcotest.test_case "pinned diameter: pure-memory FSM" `Quick
            test_pinned_pure_memory;
          Alcotest.test_case "distinctness telemetry in counts" `Quick
            test_distinct_counts_reported;
          Alcotest.test_case "induction with arbitrary memory" `Quick
            test_induction_with_arbitrary_memory;
          Alcotest.test_case "words init rejected" `Quick test_words_init_rejected;
        ] );
      ("property", qsuite);
    ]
