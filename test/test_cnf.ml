(* Unroller tests: the CNF time-frame expansion must agree with the
   cycle-accurate simulator on every netlist signal, under any concrete
   stimulus; plus activation-literal and tagging behaviour, and the
   multi-property engine's consistency with single-property runs. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

let bus_env assignments name =
  match String.index_opt name '[' with
  | None -> ( match List.assoc_opt name assignments with Some v -> v <> 0 | None -> false)
  | Some br ->
    let prefix = String.sub name 0 br in
    let idx = int_of_string (String.sub name (br + 1) (String.length name - br - 2)) in
    (match List.assoc_opt prefix assignments with
    | Some v -> (v lsr idx) land 1 = 1
    | None -> false)

(* A memory-free design rich in latches and logic. *)
let build_design () =
  let ctx = Hdl.create () in
  let d = Hdl.input ctx "d" ~width:4 in
  let en = Hdl.input_bit ctx "en" in
  let acc = Hdl.reg ctx "acc" ~width:4 in
  let cnt = Hdl.reg ctx "cnt" ~width:4 in
  Hdl.connect ctx acc (Hdl.mux2 ctx en (Hdl.add ctx acc d) acc);
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let probe = Hdl.xor_v ctx acc cnt in
  Hdl.output ctx "probe" probe;
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx probe 15));
  (Hdl.netlist ctx, probe)

(* Force a concrete stimulus through assumptions and compare every probe bit
   at every frame with the simulator. *)
let prop_unrolling_matches_simulator =
  QCheck2.Test.make ~count:60 ~name:"unrolled CNF = simulator"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_bound 15) bool))
    (fun stimulus ->
      let net, probe = build_design () in
      let solver = Solver.create () in
      let unr = Cnf.create solver net in
      let assumptions = ref [ Cnf.act_init unr ] in
      List.iteri
        (fun frame (d, en) ->
          List.iter
            (fun s ->
              match Netlist.node net (Netlist.node_of s) with
              | Netlist.Input name ->
                let value = bus_env [ ("d", d); ("en", Bool.to_int en) ] name in
                let l = Cnf.lit unr ~frame s in
                assumptions := (if value then l else Lit.negate l) :: !assumptions
              | _ -> ())
            (Netlist.inputs net))
        stimulus;
      (* Build probe literals for every frame up front. *)
      let frames = List.length stimulus in
      let probe_lits =
        List.init frames (fun frame -> Array.map (Cnf.lit unr ~frame) probe)
      in
      match Solver.solve ~assumptions:!assumptions solver with
      | Solver.Unsat -> false
      | Solver.Sat ->
        let sim = Simulator.create net in
        List.for_all2
          (fun (d, en) lits ->
            Simulator.step sim ~inputs:(bus_env [ ("d", d); ("en", Bool.to_int en) ]);
            Array.for_all2
              (fun s l -> Simulator.value sim s = Solver.value solver l)
              probe lits)
          stimulus probe_lits)

let test_act_init_gates_reset () =
  (* Without the activation literal, the latch can assume any value at frame
     0; with it, the reset value is forced. *)
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~init:(Some 5) "r" ~width:3 in
  Hdl.connect ctx r r;
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  let latches = Netlist.latches net in
  let bit0 = Cnf.lit unr ~frame:0 (List.nth latches 0) in
  let bit1 = Cnf.lit unr ~frame:0 (List.nth latches 1) in
  (* r = 5 = 101b, so bit1 = 0.  Unconstrained without act_init: *)
  Alcotest.(check bool) "bit1 free without reset" true
    (Solver.solve ~assumptions:[ bit1 ] solver = Solver.Sat);
  Alcotest.(check bool) "bit1 forced low under reset" true
    (Solver.solve ~assumptions:[ Cnf.act_init unr; bit1 ] solver = Solver.Unsat);
  Alcotest.(check bool) "bit0 forced high under reset" true
    (Solver.solve ~assumptions:[ Cnf.act_init unr; Lit.negate bit0 ] solver
    = Solver.Unsat)

let test_transition_link () =
  (* A toggling latch alternates across frames. *)
  let ctx = Hdl.create () in
  let r = Hdl.reg_bit ctx "r" in
  Hdl.connect_bit ctx r (Netlist.not_ r);
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  let l0 = Cnf.lit unr ~frame:0 r in
  let l3 = Cnf.lit unr ~frame:3 r in
  (* Same parity: frame 3 = not frame 0 XOR'd thrice = negation. *)
  Alcotest.(check bool) "frames linked" true
    (Solver.solve ~assumptions:[ l0; l3 ] solver = Solver.Unsat);
  Alcotest.(check bool) "consistent assignment accepted" true
    (Solver.solve ~assumptions:[ l0; Lit.negate l3 ] solver = Solver.Sat)

let test_latch_tags_present () =
  let ctx = Hdl.create () in
  let r = Hdl.reg_bit ctx "r" in
  Hdl.connect_bit ctx r Netlist.true_;
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  (* Query: reset r and demand it low at frame 1 — the refutation must cite
     the latch. *)
  let l1 = Cnf.lit unr ~frame:1 r in
  Alcotest.(check bool) "unsat" true
    (Solver.solve ~assumptions:[ Cnf.act_init unr; Lit.negate l1 ] solver
    = Solver.Unsat);
  let tags = Solver.unsat_core_tags solver in
  let latch_tag = Cnf.tag_for unr (Cnf.Tag.Latch r) in
  Alcotest.(check bool) "latch tag in core" true (List.mem latch_tag tags)

let test_free_latch_is_unconstrained () =
  let ctx = Hdl.create () in
  let r = Hdl.reg_bit ctx "r" in
  Hdl.connect_bit ctx r Netlist.true_;
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create ~free_latches:(fun _ -> true) solver net in
  let l1 = Cnf.lit unr ~frame:1 r in
  Alcotest.(check bool) "free latch low at frame 1 is satisfiable" true
    (Solver.solve ~assumptions:[ Cnf.act_init unr; Lit.negate l1 ] solver = Solver.Sat)

let test_constant_nodes () =
  let net = Netlist.create () in
  Netlist.add_property net "p" Netlist.true_;
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  let t = Cnf.lit unr ~frame:0 Netlist.true_ in
  let f = Cnf.lit unr ~frame:2 Netlist.false_ in
  Alcotest.(check bool) "true assumable" true (Solver.solve ~assumptions:[ t ] solver = Solver.Sat);
  Alcotest.(check bool) "false refutable" true
    (Solver.solve ~assumptions:[ f ] solver = Solver.Unsat)

let test_negative_frame_rejected () =
  let net = Netlist.create () in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  Alcotest.check_raises "negative frame" (Invalid_argument "Cnf.lit: negative frame")
    (fun () -> ignore (Cnf.lit unr ~frame:(-1) Netlist.true_))

(* check_all must agree with independent single-property runs. *)
let test_check_all_consistency () =
  let net = Designs.Image_filter.build { Designs.Image_filter.default_config with addr_width = 2 } in
  let names = [ "P18"; "P60"; "P120"; "P230"; "P232" ] in
  let config = { Bmc.Engine.default_config with max_depth = 25 } in
  let results, _, _ = Emm.check_many ~config net ~properties:names in
  List.iter
    (fun (name, multi) ->
      let single, _ = Emm.check ~config net ~property:name in
      let signature r =
        match r.Bmc.Engine.verdict with
        | Bmc.Engine.Counterexample t -> `Cex t.Bmc.Trace.depth
        | Bmc.Engine.Proof { kind; _ } -> `Proof kind
        | Bmc.Engine.Bounded_safe d -> `Safe d
        | Bmc.Engine.Reasons_stable d -> `Stable d
        | Bmc.Engine.Timed_out d -> `Timeout d
        | Bmc.Engine.Out_of_budget { depth; _ } -> `Budget depth
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s agrees" name)
        true
        (signature multi = signature single))
    results

let test_check_all_traces_replay () =
  let net = Designs.Image_filter.build { Designs.Image_filter.default_config with addr_width = 2 } in
  let names = [ "P20"; "P40"; "P60" ] in
  let config = { Bmc.Engine.default_config with max_depth = 25; proof_checks = false } in
  let results, _, _ = Emm.check_many ~config net ~properties:names in
  List.iter
    (fun (name, r) ->
      match r.Bmc.Engine.verdict with
      | Bmc.Engine.Counterexample t ->
        Alcotest.(check string) "trace property" name t.Bmc.Trace.property;
        Alcotest.(check bool) (name ^ " replays") true (Bmc.Trace.replay net t)
      | _ -> Alcotest.failf "%s: expected witness" name)
    results

let () =
  Alcotest.run "cnf"
    [
      ( "unit",
        [
          Alcotest.test_case "act_init gates reset" `Quick test_act_init_gates_reset;
          Alcotest.test_case "transition link" `Quick test_transition_link;
          Alcotest.test_case "latch tags present" `Quick test_latch_tags_present;
          Alcotest.test_case "free latch unconstrained" `Quick
            test_free_latch_is_unconstrained;
          Alcotest.test_case "constant nodes" `Quick test_constant_nodes;
          Alcotest.test_case "negative frame rejected" `Quick test_negative_frame_rejected;
          Alcotest.test_case "check_all consistency" `Quick test_check_all_consistency;
          Alcotest.test_case "check_all traces replay" `Quick test_check_all_traces_replay;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_unrolling_matches_simulator ] );
    ]
