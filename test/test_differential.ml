(* Differential test net: seeded random closed designs with one memory are
   checked four ways — EMM-BMC with the simplifying encoder, EMM-BMC with
   the plain paper-faithful encoder, explicit-expansion BMC, and
   cycle-accurate simulation — and the verdicts (including counterexample
   depths up to 8) must agree.  This is the safety net for rewrites of the
   solver hot path, the unroller and the EMM constraint generator: any
   divergence in memory semantics between the models shows up as a verdict
   or depth mismatch here. *)

open Diffgen

(* The four-way comparison as a predicate: [None] when every pair of
   verdicts agrees (and every counterexample replays on the simulator),
   [Some reason] naming the first divergence.  The sweep fails through this
   rather than through per-assertion Alcotest checks so the shrinker below
   can re-run the exact same judgment on reduced configurations.

   EMM and the explicit expansion must agree exactly, arbitrary init
   included (both quantify over the same initial states); the simplifying
   and plain encoders are different CNFs of the same model, so their
   verdicts must match too; and for all-zero initial contents the default
   simulation is itself the unique run of the closed design, supplying an
   independent third verdict. *)
let design_mismatch ?(depth = depth_bound) cfg =
  let net = build cfg in
  let config = { falsify_config with Bmc.Engine.max_depth = depth } in
  let plain = { config with Bmc.Engine.simplify = false } in
  let emm_result, _ = Emm.check ~config net ~property:"p" in
  let plain_result, _ = Emm.check ~config:plain net ~property:"p" in
  let expanded = Explicitmem.expand net in
  let exp_result = Bmc.Engine.check ~config expanded ~property:"p" in
  let emm_sig = signature emm_result.Bmc.Engine.verdict in
  let exp_sig = signature exp_result.Bmc.Engine.verdict in
  let plain_sig = signature plain_result.Bmc.Engine.verdict in
  let replay_failure label net' = function
    | Bmc.Engine.Counterexample t when not (Bmc.Trace.replay net' t) ->
      Some (Printf.sprintf "%s trace does not replay on the simulator" label)
    | _ -> None
  in
  let ( <|> ) r next = match r with Some _ -> r | None -> next () in
  (if emm_sig <> exp_sig then
     Some (Printf.sprintf "EMM verdict %s <> explicit verdict %s" emm_sig exp_sig)
   else None)
  <|> (fun () ->
        if plain_sig <> emm_sig then
          Some
            (Printf.sprintf "plain-encoder verdict %s <> simplifying verdict %s"
               plain_sig emm_sig)
        else None)
  <|> (fun () -> replay_failure "EMM" net emm_result.Bmc.Engine.verdict)
  <|> (fun () -> replay_failure "plain-encoder" net plain_result.Bmc.Engine.verdict)
  <|> (fun () -> replay_failure "explicit" expanded exp_result.Bmc.Engine.verdict)
  <|> (fun () ->
        if cfg.arbitrary then None
        else
          let expected =
            match sim_first_failure ~depth net with
            | Some d -> Printf.sprintf "cex@%d" d
            | None -> Printf.sprintf "safe@%d" depth
          in
          if expected <> emm_sig then
            Some (Printf.sprintf "simulator verdict %s <> EMM verdict %s" expected emm_sig)
          else None)

(* {2 A greedy reproducer shrinker}

   When a sweep design diverges, the raw configuration is noisy: two write
   ports, an enable bit, arbitrary init and depth 8 all at once.  Before
   failing we greedily minimize the (configuration, depth) pair — take the
   first candidate reduction on which the mismatch persists and restart from
   it — and print the minimal reproducer.  Candidates in decreasing order of
   structural weight: ports first, then address bits, then data bits and
   flags, then the unroll depth.  (The generator builds exactly one memory,
   so a "fewer memories" step would be vacuous here.)  Every candidate
   strictly decreases the sum of those quantities, so the greedy loop
   terminates. *)

let shrink_candidates (cfg, depth) =
  List.concat
    [
      (if cfg.wports > 1 then
         [ ({ cfg with
              wports = 1;
              wconsts = Array.sub cfg.wconsts 0 1;
              dconsts = Array.sub cfg.dconsts 0 1;
            }, depth) ]
       else []);
      (if cfg.rports > 1 then
         [ ({ cfg with rports = 1; rconsts = Array.sub cfg.rconsts 0 1 }, depth) ]
       else []);
      (if cfg.aw > 1 then [ ({ cfg with aw = cfg.aw - 1 }, depth) ] else []);
      (if cfg.dw > 1 then
         [ ({ cfg with
              dw = cfg.dw - 1;
              target = cfg.target land ((1 lsl (cfg.dw - 1)) - 1);
            }, depth) ]
       else []);
      (if cfg.arbitrary then [ ({ cfg with arbitrary = false }, depth) ] else []);
      (match cfg.en_bit with
      | Some _ -> [ ({ cfg with en_bit = None }, depth) ]
      | None -> []);
      (if depth > 1 then [ (cfg, depth - 1) ] else []);
    ]

let rec shrink ~mismatch state =
  match List.find_opt (fun c -> mismatch c <> None) (shrink_candidates state) with
  | Some smaller -> shrink ~mismatch smaller
  | None -> state

let cfg_to_string c =
  let arr a = String.concat "; " (List.map string_of_int (Array.to_list a)) in
  Printf.sprintf
    "{ aw = %d; dw = %d; wports = %d; rports = %d; arbitrary = %b; wconsts = \
     [| %s |]; dconsts = [| %s |]; rconsts = [| %s |]; en_bit = %s; \
     prop_on_acc = %b; target = %d }"
    c.aw c.dw c.wports c.rports c.arbitrary (arr c.wconsts) (arr c.dconsts)
    (arr c.rconsts)
    (match c.en_bit with None -> "None" | Some b -> Printf.sprintf "Some %d" b)
    c.prop_on_acc c.target

let test_differential_sweep () =
  for id = 0 to 49 do
    let cfg = random_cfg id in
    match design_mismatch cfg with
    | None -> ()
    | Some reason ->
      let mcfg, mdepth =
        shrink ~mismatch:(fun (c, d) -> design_mismatch ~depth:d c) (cfg, depth_bound)
      in
      let mreason =
        Option.value ~default:reason (design_mismatch ~depth:mdepth mcfg)
      in
      Printf.printf
        "minimal reproducer (shrunk from design %d):\n\
        \  cfg   = %s\n\
        \  depth = %d\n\
        \  fails: %s\n%!"
        cfg.id (cfg_to_string mcfg) mdepth mreason;
      Alcotest.failf "design %d: %s — minimal reproducer %s at depth %d (%s)"
        cfg.id reason (cfg_to_string mcfg) mdepth mreason
  done

(* The shrinker itself, against an artificial mismatch predicate whose
   failure region is known in closed form: "fails iff two write ports or
   depth >= 3".  From a maximal configuration the greedy pass must strip
   every irrelevant feature (the depth clause keeps the predicate true while
   ports, widths and flags shrink) and stop exactly at the depth
   boundary. *)
let test_shrinker_converges () =
  let mismatch (c, d) =
    if c.wports >= 2 || d >= 3 then Some "artificial" else None
  in
  let start =
    {
      id = -1;
      aw = 2;
      dw = 3;
      wports = 2;
      rports = 2;
      arbitrary = true;
      wconsts = [| 3; 5 |];
      dconsts = [| 1; 2 |];
      rconsts = [| 4; 6 |];
      en_bit = Some 1;
      prop_on_acc = true;
      target = 7;
    }
  in
  let c, d = shrink ~mismatch (start, depth_bound) in
  Alcotest.(check (option string)) "result still fails" (Some "artificial")
    (mismatch (c, d));
  Alcotest.(check int) "depth at the boundary" 3 d;
  Alcotest.(check int) "write ports shrunk" 1 c.wports;
  Alcotest.(check int) "read ports shrunk" 1 c.rports;
  Alcotest.(check int) "address bits shrunk" 1 c.aw;
  Alcotest.(check int) "data bits shrunk" 1 c.dw;
  Alcotest.(check bool) "arbitrary init dropped" false c.arbitrary;
  Alcotest.(check bool) "enable bit dropped" true (c.en_bit = None);
  Alcotest.(check int) "port constant arrays follow the port counts" 1
    (Array.length c.wconsts + Array.length c.rconsts - 1)

(* {2 Forwarding smoke check}

   A fixed read-after-write design: a constant write lands at cycle 0 and
   reads observe the pre-write contents, so the read returns the written
   word first at frame 1 — never at frame 0.  If EMM forwarding were broken
   towards same-cycle visibility the counterexample would land at depth 0,
   and towards an extra cycle of latency at depth 2; the exact-depth
   assertions here are the inverted smoke check that fails in either
   case. *)

let raw_design () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 5)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 5));
  Hdl.netlist ctx

let cex_depth name = function
  | Bmc.Engine.Counterexample t -> t.Bmc.Trace.depth
  | v -> Alcotest.failf "%s: expected counterexample, got %s" name (signature v)

let test_forwarding_depth () =
  let net = raw_design () in
  Alcotest.(check (option int)) "simulator sees the write at frame 1" (Some 1)
    (sim_first_failure net);
  let emm_result, _ = Emm.check ~config:falsify_config net ~property:"p" in
  let d = cex_depth "emm" emm_result.Bmc.Engine.verdict in
  Alcotest.(check int) "EMM counterexample exactly at depth 1 (not 0: no \
                        same-cycle forwarding; not 2: no extra latency)" 1 d;
  (match emm_result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check bool) "replays" true (Bmc.Trace.replay net t)
  | _ -> ());
  let expanded = Explicitmem.expand net in
  let exp_result = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check int) "explicit expansion agrees" 1
    (cex_depth "explicit" exp_result.Bmc.Engine.verdict)

(* The same RAW pattern with the read data delayed through a register — the
   shape a forwarding bug would produce.  The differential net must tell the
   two designs apart: the failure moves to frame 2. *)
let test_forwarding_break_detected () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 5)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  let delayed = Hdl.reg ctx "delayed" ~width:3 in
  Hdl.connect ctx delayed rd;
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx delayed 5));
  let net = Hdl.netlist ctx in
  Alcotest.(check (option int)) "delayed variant fails at frame 2, not 1" (Some 2)
    (sim_first_failure net);
  let emm_result, _ = Emm.check ~config:falsify_config net ~property:"p" in
  Alcotest.(check int) "EMM places the delayed failure at depth 2" 2
    (cex_depth "emm" emm_result.Bmc.Engine.verdict)

let () =
  Alcotest.run "differential"
    [
      ( "unit",
        [
          Alcotest.test_case "50 random designs: EMM = explicit = simulator" `Quick
            test_differential_sweep;
          Alcotest.test_case "shrinker converges to the minimal reproducer" `Quick
            test_shrinker_converges;
          Alcotest.test_case "forwarding lands at depth 1 exactly" `Quick
            test_forwarding_depth;
          Alcotest.test_case "broken-forwarding shape detected" `Quick
            test_forwarding_break_detected;
        ] );
    ]
