(* Differential test net: seeded random closed designs with one memory are
   checked four ways — EMM-BMC with the simplifying encoder, EMM-BMC with
   the plain paper-faithful encoder, explicit-expansion BMC, and
   cycle-accurate simulation — and the verdicts (including counterexample
   depths up to 8) must agree.  This is the safety net for rewrites of the
   solver hot path, the unroller and the EMM constraint generator: any
   divergence in memory semantics between the models shows up as a verdict
   or depth mismatch here.

   Two sweeps run through the same mismatch predicate and shrinker:

   - the classic falsification net (proof checks off, counterexample depths
     compared);
   - the latch-poor battery ([Diffgen.latch_poor_cfg], proof checks {e on}):
     latch state cycles while memory contents diverge, so the termination
     checks only stay sound through the memory-state distinctness
     predicates, and proved depths / proof verdicts must agree with the
     explicit expansion's sound latch-level loop-free-path proofs.  A
     mutation sweep disables the predicates and asserts the battery notices
     the resulting over-proofs. *)

open Diffgen

(* The four-way comparison as a predicate: [None] when every pair of
   verdicts agrees (and every counterexample replays on the simulator),
   [Some reason] naming the first divergence.  The sweep fails through this
   rather than through per-assertion Alcotest checks so the shrinker below
   can re-run the exact same judgment on reduced configurations.

   EMM and the explicit expansion must agree exactly, arbitrary init
   included (both quantify over the same initial states); the simplifying
   and plain encoders are different CNFs of the same model, so their
   verdicts must match too; and for all-zero initial contents the default
   simulation is itself the unique run of the closed design, supplying an
   independent third verdict.  With [proofs] set, proof checks run and the
   comparison additionally pins proved depths (the signature carries them);
   the simulator then cross-checks counterexample placement only, since it
   cannot prove. *)
let design_mismatch ?(depth = depth_bound) ?(proofs = false) cfg =
  let net = build cfg in
  let config =
    if proofs then { Bmc.Engine.default_config with max_depth = depth }
    else { falsify_config with Bmc.Engine.max_depth = depth }
  in
  let plain = { config with Bmc.Engine.simplify = false } in
  let emm_result, _ = Emm.check ~config net ~property:"p" in
  let plain_result, _ = Emm.check ~config:plain net ~property:"p" in
  let expanded = Explicitmem.expand net in
  let exp_result = Bmc.Engine.check ~config expanded ~property:"p" in
  let emm_sig = signature emm_result.Bmc.Engine.verdict in
  let exp_sig = signature exp_result.Bmc.Engine.verdict in
  let plain_sig = signature plain_result.Bmc.Engine.verdict in
  let replay_failure label net' = function
    | Bmc.Engine.Counterexample t when not (Bmc.Trace.replay net' t) ->
      Some (Printf.sprintf "%s trace does not replay on the simulator" label)
    | _ -> None
  in
  let ( <|> ) r next = match r with Some _ -> r | None -> next () in
  (if emm_sig <> exp_sig then
     Some (Printf.sprintf "EMM verdict %s <> explicit verdict %s" emm_sig exp_sig)
   else None)
  <|> (fun () ->
        if plain_sig <> emm_sig then
          Some
            (Printf.sprintf "plain-encoder verdict %s <> simplifying verdict %s"
               plain_sig emm_sig)
        else None)
  <|> (fun () -> replay_failure "EMM" net emm_result.Bmc.Engine.verdict)
  <|> (fun () -> replay_failure "plain-encoder" net plain_result.Bmc.Engine.verdict)
  <|> (fun () -> replay_failure "explicit" expanded exp_result.Bmc.Engine.verdict)
  <|> (fun () ->
        if cfg.arbitrary then None
        else
          let sim = sim_first_failure ~depth net in
          if proofs then
            (* The simulator cannot prove; it pins counterexamples only.  A
               failing run must be reported at exactly the simulated depth,
               and a clean run must not be reported as a counterexample —
               an over-proof that masks a reachable failure trips the first
               branch. *)
            match sim with
            | Some d ->
              let expected = Printf.sprintf "cex@%d" d in
              if expected <> emm_sig then
                Some
                  (Printf.sprintf "simulator failure %s <> EMM verdict %s" expected
                     emm_sig)
              else None
            | None ->
              if String.length emm_sig >= 4 && String.sub emm_sig 0 4 = "cex@" then
                Some
                  (Printf.sprintf
                     "EMM verdict %s but the simulator never fails within %d" emm_sig
                     depth)
              else None
          else
            let expected =
              match sim with
              | Some d -> Printf.sprintf "cex@%d" d
              | None -> Printf.sprintf "safe@%d" depth
            in
            if expected <> emm_sig then
              Some
                (Printf.sprintf "simulator verdict %s <> EMM verdict %s" expected
                   emm_sig)
            else None)

(* {2 A greedy reproducer shrinker}

   When a sweep design diverges, the raw configuration is noisy: two write
   ports, an enable bit, arbitrary init and depth 8 all at once.  Before
   failing we greedily minimize the (configuration, depth) pair — take the
   first candidate reduction on which the mismatch persists and restart from
   it — and print the minimal reproducer.  Candidates in decreasing order of
   structural weight: ports first, then address bits, then data bits and
   flags, then the unroll depth.  (The generator builds exactly one memory,
   so a "fewer memories" step would be vacuous here.)  Every candidate
   strictly decreases the sum of those quantities, so the greedy loop
   terminates. *)

let shrink_candidates (cfg, depth) =
  List.concat
    [
      (if cfg.wports > 1 then
         [ ({ cfg with
              wports = 1;
              wconsts = Array.sub cfg.wconsts 0 1;
              dconsts = Array.sub cfg.dconsts 0 (min 1 (Array.length cfg.dconsts));
            }, depth) ]
       else []);
      (if cfg.rports > 1 then
         [ ({ cfg with rports = 1; rconsts = Array.sub cfg.rconsts 0 1 }, depth) ]
       else []);
      (* Latch-poor designs additionally shrink the counter, one latch at a
         time down to zero; the enable bit is dropped when its index falls
         off the narrowed counter. *)
      (if cfg.style = Latch_poor && cfg.cw > 0 then
         [ ({ cfg with
              cw = cfg.cw - 1;
              en_bit =
                (match cfg.en_bit with
                | Some b when b >= cfg.cw - 1 -> None
                | e -> e);
            }, depth) ]
       else []);
      (if cfg.aw > 1 then [ ({ cfg with aw = cfg.aw - 1 }, depth) ] else []);
      (if cfg.dw > 1 then
         [ ({ cfg with
              dw = cfg.dw - 1;
              target = cfg.target land ((1 lsl (cfg.dw - 1)) - 1);
            }, depth) ]
       else []);
      (if cfg.arbitrary then [ ({ cfg with arbitrary = false }, depth) ] else []);
      (match cfg.en_bit with
      | Some _ -> [ ({ cfg with en_bit = None }, depth) ]
      | None -> []);
      (if depth > 1 then [ (cfg, depth - 1) ] else []);
    ]

let rec shrink ~mismatch state =
  match List.find_opt (fun c -> mismatch c <> None) (shrink_candidates state) with
  | Some smaller -> shrink ~mismatch smaller
  | None -> state

let cfg_to_string c =
  let arr a = String.concat "; " (List.map string_of_int (Array.to_list a)) in
  Printf.sprintf
    "{ style = %s; cw = %d; aw = %d; dw = %d; wports = %d; rports = %d; \
     arbitrary = %b; wconsts = [| %s |]; dconsts = [| %s |]; rconsts = [| %s \
     |]; en_bit = %s; prop_on_acc = %b; target = %d }"
    (match c.style with Classic -> "Classic" | Latch_poor -> "Latch_poor")
    c.cw c.aw c.dw c.wports c.rports c.arbitrary (arr c.wconsts) (arr c.dconsts)
    (arr c.rconsts)
    (match c.en_bit with None -> "None" | Some b -> Printf.sprintf "Some %d" b)
    c.prop_on_acc c.target

(* On a sweep failure, shrink to a minimal reproducer, print it, and — when
   [DIFFGEN_REPRO_FILE] is set (the CI battery job does this) — also write
   it to that file so it survives as a build artifact. *)
let fail_with_reproducer ~sweep ~proofs ~depth cfg reason =
  let mismatch (c, d) = design_mismatch ~depth:d ~proofs c in
  let mcfg, mdepth = shrink ~mismatch (cfg, depth) in
  let mreason = Option.value ~default:reason (mismatch (mcfg, mdepth)) in
  let text =
    Printf.sprintf
      "minimal reproducer (%s sweep, shrunk from design %d):\n\
      \  cfg   = %s\n\
      \  depth = %d\n\
      \  proofs = %b\n\
      \  fails: %s\n"
      sweep cfg.id (cfg_to_string mcfg) mdepth proofs mreason
  in
  print_string text;
  flush stdout;
  (match Sys.getenv_opt "DIFFGEN_REPRO_FILE" with
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    output_string oc text;
    close_out oc
  | None -> ());
  Alcotest.failf "design %d: %s — minimal reproducer %s at depth %d (%s)" cfg.id
    reason (cfg_to_string mcfg) mdepth mreason

let test_differential_sweep () =
  for id = 0 to 49 do
    let cfg = random_cfg id in
    match design_mismatch cfg with
    | None -> ()
    | Some reason ->
      fail_with_reproducer ~sweep:"classic" ~proofs:false ~depth:depth_bound cfg
        reason
  done

(* {2 The latch-poor battery}

   50 seeded latch-poor designs with proof checks on: latch state has period
   [2^cw] (possibly 1: zero latches) while memory contents diverge, so a
   termination proof is sound only through the memory-state distinctness
   predicates.  Verdicts, proved depths and counterexample depths must agree
   between both EMM encoders and the explicit expansion, whose
   latch-level loop-free-path constraints see the expanded memory bits and
   are sound unconditionally. *)

let latch_poor_depth = 12

let test_latch_poor_battery () =
  for id = 0 to 49 do
    let cfg = latch_poor_cfg id in
    match design_mismatch ~depth:latch_poor_depth ~proofs:true cfg with
    | None -> ()
    | Some reason ->
      fail_with_reproducer ~sweep:"latch-poor" ~proofs:true ~depth:latch_poor_depth
        cfg reason
  done

(* Mutation check: with the distinctness predicates disabled
   ([mem_distinct:false] reproduces the pre-fix engine, which falls back to
   latch-only distinctness, or to no termination checks past depth 0 for
   latch-free write-port designs), the battery must notice — some seed's
   verdict must diverge from the explicit expansion.  This is the test of
   the tests: if it ever passes silently, the battery lost its power to
   detect over-proving and needs stronger designs. *)
let test_latch_poor_mutation_detected () =
  let config = { Bmc.Engine.default_config with max_depth = latch_poor_depth } in
  let detected = ref 0 in
  for id = 0 to 49 do
    let cfg = latch_poor_cfg id in
    let net = build cfg in
    let mut_result, _ = Emm.check ~config ~mem_distinct:false net ~property:"p" in
    let exp_result = Bmc.Engine.check ~config (Explicitmem.expand net) ~property:"p" in
    if
      signature mut_result.Bmc.Engine.verdict
      <> signature exp_result.Bmc.Engine.verdict
    then incr detected
  done;
  if !detected = 0 then
    Alcotest.fail
      "disabling the memory-state distinctness predicates went unnoticed across \
       all 50 latch-poor seeds: the battery cannot detect over-proving";
  Printf.printf "mutation detected on %d/50 latch-poor seeds\n%!" !detected

(* {2 The fixed over-proof regression}

   The minimal latch-poor over-proof: a 1-bit counter (latch period 2) and a
   2-word memory filling with the constant 1 — the read observes 0,0 then
   1,1,... so "rd <> 1" first fails at frame 2, exactly when the latch state
   repeats.  The pre-fix engine's latch-only termination check fires first
   and reports a bogus forward-diameter proof at depth 2, masking the
   reachable failure; the distinctness predicates keep the path alive and
   both EMM and the explicit expansion report the counterexample. *)

let overproof_regression_design () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:1 ~data_width:2 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:1 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  Hdl.write_port ctx mem ~addr:cnt ~data:(Hdl.const ~width:2 1) ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:cnt ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 1));
  Hdl.netlist ctx

let test_overproof_regression () =
  let net = overproof_regression_design () in
  let config = { Bmc.Engine.default_config with max_depth = 12 } in
  Alcotest.(check (option int)) "simulator places the failure at frame 2" (Some 2)
    (sim_first_failure ~depth:12 net);
  let emm_result, _ = Emm.check ~config net ~property:"p" in
  Alcotest.(check string) "EMM finds the counterexample" "cex@2"
    (signature emm_result.Bmc.Engine.verdict);
  let exp_result = Bmc.Engine.check ~config (Explicitmem.expand net) ~property:"p" in
  Alcotest.(check string) "explicit expansion agrees" "cex@2"
    (signature exp_result.Bmc.Engine.verdict);
  (* The pre-fix engine over-proves: latch-only distinctness cannot tell
     frames 0 and 2 apart, so the forward termination check fires at depth 2
     — before falsification at that depth runs — and the reachable failure
     is lost behind a bogus proof. *)
  let mut_result, _ = Emm.check ~config ~mem_distinct:false net ~property:"p" in
  Alcotest.(check string)
    "latch-only LFP proves at the wrong depth (the over-proof this PR fixes)"
    "proof@2"
    (signature mut_result.Bmc.Engine.verdict);
  match mut_result.Bmc.Engine.verdict with
  | Bmc.Engine.Proof { kind = Bmc.Engine.Forward_diameter; _ } -> ()
  | v ->
    Alcotest.failf "expected a bogus forward-diameter proof, got %s" (signature v)

(* The shrinker itself, against an artificial mismatch predicate whose
   failure region is known in closed form: "fails iff two write ports or
   depth >= 3".  From a maximal configuration the greedy pass must strip
   every irrelevant feature (the depth clause keeps the predicate true while
   ports, widths and flags shrink) and stop exactly at the depth
   boundary. *)
let test_shrinker_converges () =
  let mismatch (c, d) =
    if c.wports >= 2 || d >= 3 then Some "artificial" else None
  in
  let start =
    {
      id = -1;
      style = Classic;
      cw = 3;
      aw = 2;
      dw = 3;
      wports = 2;
      rports = 2;
      arbitrary = true;
      wconsts = [| 3; 5 |];
      dconsts = [| 1; 2 |];
      rconsts = [| 4; 6 |];
      en_bit = Some 1;
      prop_on_acc = true;
      target = 7;
    }
  in
  let c, d = shrink ~mismatch (start, depth_bound) in
  Alcotest.(check (option string)) "result still fails" (Some "artificial")
    (mismatch (c, d));
  Alcotest.(check int) "depth at the boundary" 3 d;
  Alcotest.(check int) "write ports shrunk" 1 c.wports;
  Alcotest.(check int) "read ports shrunk" 1 c.rports;
  Alcotest.(check int) "address bits shrunk" 1 c.aw;
  Alcotest.(check int) "data bits shrunk" 1 c.dw;
  Alcotest.(check bool) "arbitrary init dropped" false c.arbitrary;
  Alcotest.(check bool) "enable bit dropped" true (c.en_bit = None);
  Alcotest.(check int) "port constant arrays follow the port counts" 1
    (Array.length c.wconsts + Array.length c.rconsts - 1)

(* {2 Forwarding smoke check}

   A fixed read-after-write design: a constant write lands at cycle 0 and
   reads observe the pre-write contents, so the read returns the written
   word first at frame 1 — never at frame 0.  If EMM forwarding were broken
   towards same-cycle visibility the counterexample would land at depth 0,
   and towards an extra cycle of latency at depth 2; the exact-depth
   assertions here are the inverted smoke check that fails in either
   case. *)

let raw_design () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 5)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 5));
  Hdl.netlist ctx

let cex_depth name = function
  | Bmc.Engine.Counterexample t -> t.Bmc.Trace.depth
  | v -> Alcotest.failf "%s: expected counterexample, got %s" name (signature v)

let test_forwarding_depth () =
  let net = raw_design () in
  Alcotest.(check (option int)) "simulator sees the write at frame 1" (Some 1)
    (sim_first_failure net);
  let emm_result, _ = Emm.check ~config:falsify_config net ~property:"p" in
  let d = cex_depth "emm" emm_result.Bmc.Engine.verdict in
  Alcotest.(check int) "EMM counterexample exactly at depth 1 (not 0: no \
                        same-cycle forwarding; not 2: no extra latency)" 1 d;
  (match emm_result.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check bool) "replays" true (Bmc.Trace.replay net t)
  | _ -> ());
  let expanded = Explicitmem.expand net in
  let exp_result = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check int) "explicit expansion agrees" 1
    (cex_depth "explicit" exp_result.Bmc.Engine.verdict)

(* The same RAW pattern with the read data delayed through a register — the
   shape a forwarding bug would produce.  The differential net must tell the
   two designs apart: the failure moves to frame 2. *)
let test_forwarding_break_detected () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 5)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  let delayed = Hdl.reg ctx "delayed" ~width:3 in
  Hdl.connect ctx delayed rd;
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx delayed 5));
  let net = Hdl.netlist ctx in
  Alcotest.(check (option int)) "delayed variant fails at frame 2, not 1" (Some 2)
    (sim_first_failure net);
  let emm_result, _ = Emm.check ~config:falsify_config net ~property:"p" in
  Alcotest.(check int) "EMM places the delayed failure at depth 2" 2
    (cex_depth "emm" emm_result.Bmc.Engine.verdict)

let () =
  Alcotest.run "differential"
    [
      ( "unit",
        [
          Alcotest.test_case "50 random designs: EMM = explicit = simulator" `Quick
            test_differential_sweep;
          Alcotest.test_case "shrinker converges to the minimal reproducer" `Quick
            test_shrinker_converges;
          Alcotest.test_case "forwarding lands at depth 1 exactly" `Quick
            test_forwarding_depth;
          Alcotest.test_case "broken-forwarding shape detected" `Quick
            test_forwarding_break_detected;
        ] );
      (* Its own group so CI can run the latch-poor battery in isolation:
         `test_differential.exe test proofs`. *)
      ( "proofs",
        [
          Alcotest.test_case
            "latch-poor battery: proved depths EMM = explicit across 50 seeds"
            `Quick test_latch_poor_battery;
          Alcotest.test_case "latch-poor battery detects disabled distinctness"
            `Quick test_latch_poor_mutation_detected;
          Alcotest.test_case "fixed over-proof regression (latch repeats, memory \
                              diverges)" `Quick test_overproof_regression;
        ] );
    ]
