(* Tests for the resilience policy layer (lib/policy) and its Emmver
   instantiation: the generic fallback executor, and fault-injection runs
   (SIGKILL, out-of-memory, poisoned encoder, exhausted budgets) asserting
   that degradation never changes the final verdict. *)

let signature o = Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion

(* {2 The generic executor} *)

let test_execute_first_done_wins () =
  let ran = ref [] in
  let run stage ~attempt =
    ran := (stage, attempt) :: !ran;
    if stage = "b" then Policy.Done "b!" else Policy.Soft "meh"
  in
  let result, events =
    Policy.execute Policy.default ~stages:[ "a"; "b"; "c" ] ~stage_name:Fun.id ~run
  in
  Alcotest.(check bool) "done result" true (result = Ok "b!");
  Alcotest.(check (list (pair string int)))
    "c never ran"
    [ ("a", 0); ("b", 0) ]
    (List.rev !ran);
  Alcotest.(check int) "no degradation events" 0 (List.length events)

let test_execute_retries_worker_death () =
  let run stage ~attempt =
    match (stage, attempt) with
    | "a", 0 -> Policy.Failed (Policy.Worker_killed "SIGKILL")
    | "a", _ -> Policy.Done "recovered"
    | _ -> Policy.Done "fallback"
  in
  let result, events =
    Policy.execute Policy.default ~stages:[ "a"; "b" ] ~stage_name:Fun.id ~run
  in
  Alcotest.(check bool) "same stage recovered on retry" true (result = Ok "recovered");
  match events with
  | [ { Policy.ev_stage = "a"; ev_attempt = 0; ev_error = Policy.Worker_killed _; _ } ]
    -> ()
  | _ -> Alcotest.failf "expected one worker-death event, got %d" (List.length events)

let test_execute_encode_error_advances () =
  let attempts_on_a = ref 0 in
  let run stage ~attempt:_ =
    if stage = "a" then begin
      incr attempts_on_a;
      Policy.Failed (Policy.Encode_error "poisoned")
    end
    else Policy.Done "fallback"
  in
  let result, events =
    Policy.execute Policy.default ~stages:[ "a"; "b" ] ~stage_name:Fun.id ~run
  in
  Alcotest.(check bool) "fell through to b" true (result = Ok "fallback");
  Alcotest.(check int) "encode errors are not retried" 1 !attempts_on_a;
  Alcotest.(check int) "one event" 1 (List.length events)

let test_execute_soft_is_last_resort () =
  let run stage ~attempt:_ =
    if stage = "a" then Policy.Soft "honest inconclusive"
    else Policy.Failed (Policy.Budget_exhausted stage)
  in
  let result, events =
    Policy.execute Policy.default ~stages:[ "a"; "b"; "c" ] ~stage_name:Fun.id ~run
  in
  Alcotest.(check bool) "soft answer survives later failures" true
    (result = Ok "honest inconclusive");
  Alcotest.(check (list string))
    "failures recorded in order" [ "b"; "c" ]
    (List.map (fun e -> e.Policy.ev_stage) events)

let test_execute_all_failed () =
  let streamed = ref [] in
  let run stage ~attempt:_ = Policy.Failed (Policy.Budget_exhausted stage) in
  let result, events =
    Policy.execute
      ~on_event:(fun e -> streamed := e :: !streamed)
      { Policy.default with Policy.worker_retries = 0 }
      ~stages:[ "a"; "b" ] ~stage_name:Fun.id ~run
  in
  (match result with
  | Error (Policy.Budget_exhausted "b") -> ()
  | Error e -> Alcotest.failf "wrong final error: %s" (Policy.error_message e)
  | Ok _ -> Alcotest.fail "nothing should have succeeded");
  Alcotest.(check int) "both failures recorded" 2 (List.length events);
  Alcotest.(check bool) "on_event streamed the same events" true
    (List.rev !streamed = events)

(* {2 Fault injection through Emmver.verify_resilient}

   Each scenario compares against a clean run of the same policy: injected
   faults may add degradation events but must never change the verdict. *)

let proved_net = Designs.Fifo.build Designs.Fifo.default_config
let buggy_net = Designs.Fifo.build ~buggy:true Designs.Fifo.default_config
let options = { Emmver.default_options with Emmver.max_depth = 12 }

let clean_signature net ~property =
  signature (Emmver.verify_resilient ~options net ~property)

let test_sigkill_once_retried () =
  let inject method_ ~attempt =
    if method_ = Emmver.Emm_bmc && attempt = 0 then
      Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  List.iter
    (fun (net, property) ->
      let o = Emmver.verify_resilient ~options ~inject net ~property in
      Alcotest.(check string)
        (property ^ ": verdict unchanged by a killed worker")
        (clean_signature net ~property) (signature o);
      match o.Emmver.degradations with
      | [ { Policy.ev_stage = "emm"; ev_error = Policy.Worker_killed _; _ } ] -> ()
      | evs -> Alcotest.failf "expected one emm worker-death event, got %d" (List.length evs))
    [ (proved_net, "fifo_count"); (buggy_net, "fifo_data") ]

let test_sigkill_always_falls_back () =
  (* emm dies on every attempt: the chain must degrade to explicit and still
     produce the clean verdict. *)
  let inject method_ ~attempt:_ =
    if method_ = Emmver.Emm_bmc then Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let o = Emmver.verify_resilient ~options ~inject buggy_net ~property:"fifo_data" in
  Alcotest.(check string) "explicit fallback reproduces the verdict"
    (clean_signature buggy_net ~property:"fifo_data")
    (signature o);
  Alcotest.(check (list string))
    "emm died twice (initial + retry) before falling back"
    [ "emm"; "emm" ]
    (List.map (fun e -> e.Policy.ev_stage) o.Emmver.degradations)

let test_oom_treated_as_worker_death () =
  let inject method_ ~attempt =
    if method_ = Emmver.Emm_bmc && attempt = 0 then raise Out_of_memory
  in
  let o = Emmver.verify_resilient ~options ~inject proved_net ~property:"fifo_count" in
  Alcotest.(check string) "verdict unchanged by OOM"
    (clean_signature proved_net ~property:"fifo_count")
    (signature o);
  match o.Emmver.degradations with
  | [ { Policy.ev_error = Policy.Worker_killed why; _ } ] ->
    Alcotest.(check bool) "OOM named in the event" true
      (let affix = "Out of memory" in
       let n = String.length why and m = String.length affix in
       let rec go i = i + m <= n && (String.sub why i m = affix || go (i + 1)) in
       go 0)
  | evs -> Alcotest.failf "expected one OOM event, got %d" (List.length evs)

let test_poisoned_encoder_falls_through () =
  let inject method_ ~attempt:_ =
    if method_ = Emmver.Emm_bmc then failwith "poisoned encoder"
  in
  let o = Emmver.verify_resilient ~options ~inject buggy_net ~property:"fifo_data" in
  Alcotest.(check string) "verdict unchanged by a poisoned encoder"
    (clean_signature buggy_net ~property:"fifo_data")
    (signature o);
  (* Encode errors are not retried: exactly one emm event, then explicit. *)
  match o.Emmver.degradations with
  | [ { Policy.ev_stage = "emm"; ev_error = Policy.Encode_error _; _ } ] -> ()
  | evs ->
    Alcotest.failf "expected one encode-error event, got [%s]"
      (String.concat "; "
         (List.map (fun e -> Format.asprintf "%a" Policy.pp_event e) evs))

let test_budget_exhaustion_degrades () =
  (* A one-conflict budget starves both SAT engines on the hard property;
     the chain ends with a typed budget error, not a bogus verdict. *)
  let policy =
    {
      Policy.default with
      Policy.budgets = { Policy.unlimited with Policy.conflicts = Some 1 };
      fallback = [ "emm"; "explicit" ];
    }
  in
  let o =
    Emmver.verify_resilient ~options ~policy proved_net ~property:"fifo_data"
  in
  (match o.Emmver.conclusion with
  | Emmver.Inconclusive _ -> ()
  | c -> Alcotest.failf "starved run must be inconclusive, got %a" Emmver.pp_conclusion c);
  (match o.Emmver.error with
  | Some (Policy.Budget_exhausted _) -> ()
  | Some e -> Alcotest.failf "wrong error class: %s" (Policy.error_message e)
  | None -> Alcotest.fail "expected a typed budget error");
  Alcotest.(check (list string))
    "both stages exhausted in order" [ "emm"; "explicit" ]
    (List.map (fun e -> e.Policy.ev_stage) o.Emmver.degradations)

let test_budget_narrows_but_verdict_survives () =
  (* An easy property concludes within one SAT query even under a small
     conflict budget — budgets narrow the work, never the answer. *)
  let policy =
    {
      Policy.default with
      Policy.budgets = { Policy.unlimited with Policy.conflicts = Some 50 };
    }
  in
  let o = Emmver.verify_resilient ~options ~policy proved_net ~property:"fifo_count" in
  Alcotest.(check string) "verdict as clean run"
    (clean_signature proved_net ~property:"fifo_count")
    (signature o)

let () =
  Alcotest.run "policy"
    [
      ( "execute",
        [
          Alcotest.test_case "first Done wins" `Quick test_execute_first_done_wins;
          Alcotest.test_case "worker death retried on same stage" `Quick
            test_execute_retries_worker_death;
          Alcotest.test_case "encode error advances the chain" `Quick
            test_execute_encode_error_advances;
          Alcotest.test_case "soft answer kept as last resort" `Quick
            test_execute_soft_is_last_resort;
          Alcotest.test_case "all-failed returns the last error" `Quick
            test_execute_all_failed;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "SIGKILL on first attempt is retried" `Quick
            test_sigkill_once_retried;
          Alcotest.test_case "persistent SIGKILL falls back to explicit" `Quick
            test_sigkill_always_falls_back;
          Alcotest.test_case "OOM classified as worker death" `Quick
            test_oom_treated_as_worker_death;
          Alcotest.test_case "poisoned encoder falls through, no retry" `Quick
            test_poisoned_encoder_falls_through;
          Alcotest.test_case "exhausted budgets degrade with typed error" `Quick
            test_budget_exhaustion_degrades;
          Alcotest.test_case "budget does not change an easy verdict" `Quick
            test_budget_narrows_but_verdict_survives;
        ] );
    ]
