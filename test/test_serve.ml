(* The verification daemon: protocol codec golden tests, then live-server
   behaviour — backpressure, fairness, crash containment, disconnect
   cleanup, warm cache, SIGTERM drain.

   Live tests fork a real daemon (Serve.Server.run in a child process) on a
   socket in a fresh temp directory and talk to it through Serve.Client.
   Scripted job bodies are injected via the server's [runner] seam; the
   submit's request id encodes the behaviour ("sleep:0.3", "crash", ...),
   while the design/property resolution stays the real one. *)

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emmver-serve-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  dir

(* {1 Protocol golden tests} *)

let submit_full =
  {
    Serve.Proto.s_id = "r1";
    s_design = "fifo";
    s_property = Some "fifo_data";
    s_method = "emm";
    s_max_depth = Some 12;
    s_timeout_s = Some 1.5;
    s_cache = Some true;
  }

let submit_min =
  {
    Serve.Proto.s_id = "r2";
    s_design = "fifo";
    s_property = None;
    s_method = "emm";
    s_max_depth = None;
    s_timeout_s = None;
    s_cache = None;
  }

(* Recorded transcripts: every request and reply form, byte for byte.  The
   rendering is part of the wire contract — fixed field order, %.3f floats
   — so any codec drift must fail here, not against a deployed client. *)
let golden_requests =
  [
    (Serve.Proto.Hello "alice", {|{"op":"hello","client":"alice"}|});
    (Serve.Proto.Ping, {|{"op":"ping"}|});
    ( Serve.Proto.Submit submit_full,
      {|{"op":"submit","id":"r1","design":"fifo","property":"fifo_data","method":"emm","max_depth":12,"timeout_s":1.500,"cache":true}|}
    );
    ( Serve.Proto.Submit submit_min,
      {|{"op":"submit","id":"r2","design":"fifo","method":"emm"}|} );
    (Serve.Proto.Poll 7, {|{"op":"poll","job":7}|});
    (Serve.Proto.Resume "alice", {|{"op":"resume","client":"alice"}|});
    (Serve.Proto.Ack 7, {|{"op":"ack","job":7}|});
    (Serve.Proto.Metrics, {|{"op":"metrics"}|});
    (Serve.Proto.Shutdown, {|{"op":"shutdown"}|});
  ]

let golden_replies =
  [
    ( Serve.Proto.Hello_ok { server = "emmver"; version = 1 },
      {|{"reply":"hello","server":"emmver","version":1}|} );
    (Serve.Proto.Pong, {|{"reply":"pong"}|});
    ( Serve.Proto.Accepted
        { id = "r1"; jobs = [ (1, "fifo_data"); (2, "fifo_count") ]; queue_depth = 2 },
      {|{"reply":"accepted","id":"r1","jobs":[{"job":1,"property":"fifo_data"},{"job":2,"property":"fifo_count"}],"queue_depth":2}|}
    );
    ( Serve.Proto.Busy
        { id = "r9"; queue_depth = 4; max_queue = 4; retry_after_s = 1.5 },
      {|{"reply":"busy","id":"r9","queue_depth":4,"max_queue":4,"retry_after_s":1.500}|}
    );
    ( Serve.Proto.Shutdown_reply { id = "r1"; job = Some 3; retry_after_s = None },
      {|{"reply":"shutdown","id":"r1","job":3}|} );
    ( Serve.Proto.Shutdown_reply { id = "r1"; job = None; retry_after_s = None },
      {|{"reply":"shutdown","id":"r1"}|} );
    ( Serve.Proto.Shutdown_reply
        { id = "r1"; job = None; retry_after_s = Some 5.0 },
      {|{"reply":"shutdown","id":"r1","retry_after_s":5.000}|} );
    ( Serve.Proto.Error { id = Some "r1"; message = "unknown design \"nope\"" },
      {|{"reply":"error","id":"r1","message":"unknown design \"nope\""}|} );
    ( Serve.Proto.Error { id = None; message = "bad JSON: truncated" },
      {|{"reply":"error","message":"bad JSON: truncated"}|} );
    ( Serve.Proto.Result
        {
          r_job = 1;
          r_id = "r1";
          r_property = "fifo_data";
          r_method = "emm";
          r_verdict = "proved";
          r_depth = Some 12;
          r_induction = Some true;
          r_genuine = None;
          r_reason = None;
          r_time_s = 0.103;
          r_cache = "hit";
          r_certificate = "drat-checked";
        },
      {|{"reply":"result","job":1,"id":"r1","property":"fifo_data","method":"emm","verdict":"proved","depth":12,"induction":true,"time_s":0.103,"cache":"hit","certificate":"drat-checked"}|}
    );
    ( Serve.Proto.Result
        {
          r_job = 2;
          r_id = "r1";
          r_property = "fifo_data";
          r_method = "emm";
          r_verdict = "inconclusive";
          r_depth = None;
          r_induction = None;
          r_genuine = None;
          r_reason = Some "worker killed: timed out";
          r_time_s = 2.0;
          r_cache = "off";
          r_certificate = "unchecked";
        },
      {|{"reply":"result","job":2,"id":"r1","property":"fifo_data","method":"emm","verdict":"inconclusive","reason":"worker killed: timed out","time_s":2.000,"cache":"off","certificate":"unchecked"}|}
    );
    ( Serve.Proto.Status { job = 7; state = "running" },
      {|{"reply":"status","job":7,"state":"running"}|} );
    ( Serve.Proto.Resumed { client = "alice"; results = 2; pending = 1 },
      {|{"reply":"resumed","client":"alice","results":2,"pending":1}|} );
    (Serve.Proto.Acked { job = 7 }, {|{"reply":"acked","job":7}|});
    ( Serve.Proto.Metrics_reply
        {
          m_uptime_s = 12.5;
          m_queue_depth = 1;
          m_running = 2;
          m_clients = 3;
          m_accepted = 10;
          m_completed = 7;
          m_failed = 1;
          m_cancelled = 1;
          m_rejected_busy = 2;
          m_rejected_shutdown = 0;
          m_protocol_errors = 1;
          m_cache_hits = 4;
          m_cache_misses = 3;
          m_cache_entries = 3;
          m_cache_bytes = 981;
          m_gc_runs = 1;
          m_gc_evicted = 2;
          m_journal_records = 120;
          m_journal_bytes = 9876;
          m_compactions = 2;
          m_replayed = 3;
          m_recovered = 2;
          m_orphans_killed = 1;
          m_redelivered = 2;
          m_acked = 5;
          m_retained = 1;
          m_methods = [ ("bdd", 2, 0.5); ("emm", 8, 3.25) ];
        },
      {|{"reply":"metrics","uptime_s":12.500,"queue_depth":1,"running":2,"clients":3,"jobs":{"accepted":10,"completed":7,"failed":1,"cancelled":1,"rejected_busy":2,"rejected_shutdown":0,"protocol_errors":1},"cache":{"hits":4,"misses":3,"entries":3,"bytes":981,"gc_runs":1,"gc_evicted":2},"durability":{"journal_records":120,"journal_bytes":9876,"compactions":2,"replayed":3,"recovered_results":2,"orphans_killed":1,"redelivered":2,"acked":5,"retained":1},"methods":[{"method":"bdd","jobs":2,"wall_s":0.500},{"method":"emm","jobs":8,"wall_s":3.250}]}|}
    );
    (Serve.Proto.Draining, {|{"reply":"draining"}|});
  ]

let test_golden_requests () =
  List.iter
    (fun (req, expected) ->
      Alcotest.(check string) expected expected (Serve.Proto.request_to_string req);
      match Serve.Proto.request_of_string expected with
      | Ok back ->
        Alcotest.(check string)
          ("round-trip " ^ expected)
          expected
          (Serve.Proto.request_to_string back)
      | Error e -> Alcotest.failf "cannot parse %s: %s" expected e)
    golden_requests

let test_golden_replies () =
  List.iter
    (fun (reply, expected) ->
      Alcotest.(check string) expected expected (Serve.Proto.reply_to_string reply);
      match Serve.Proto.reply_of_string expected with
      | Ok back ->
        Alcotest.(check string)
          ("round-trip " ^ expected)
          expected
          (Serve.Proto.reply_to_string back)
      | Error e -> Alcotest.failf "cannot parse %s: %s" expected e)
    golden_replies

let test_protocol_errors () =
  (match Serve.Proto.request_of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Serve.Proto.request_of_string {|{"op":"warp"}|} with
  | Error e -> Alcotest.(check bool) "names op" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown op accepted");
  (match Serve.Proto.request_of_string {|{"op":"submit"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit without design accepted");
  match Serve.Proto.reply_of_string {|{"reply":"result","job":1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated result accepted"

(* A v2 client against a v1 daemon: replies without the durability surface
   parse, with the new fields reading as zero / absent. *)
let test_v1_compat () =
  (match
     Serve.Proto.reply_of_string
       {|{"reply":"busy","id":"r9","queue_depth":4,"max_queue":4}|}
   with
  | Ok (Serve.Proto.Busy { retry_after_s; _ }) ->
    Alcotest.(check (float 0.0)) "missing hint reads 0" 0.0 retry_after_s
  | Ok r -> Alcotest.failf "wrong reply: %s" (Serve.Proto.reply_to_string r)
  | Error e -> Alcotest.failf "v1 busy rejected: %s" e);
  (match
     Serve.Proto.reply_of_string {|{"reply":"shutdown","id":"r1","job":3}|}
   with
  | Ok (Serve.Proto.Shutdown_reply { retry_after_s = None; job = Some 3; _ }) ->
    ()
  | Ok r -> Alcotest.failf "wrong reply: %s" (Serve.Proto.reply_to_string r)
  | Error e -> Alcotest.failf "v1 shutdown rejected: %s" e);
  match
    Serve.Proto.reply_of_string
      {|{"reply":"metrics","uptime_s":12.500,"queue_depth":1,"running":2,"clients":3,"jobs":{"accepted":10,"completed":7,"failed":1,"cancelled":1,"rejected_busy":2,"rejected_shutdown":0,"protocol_errors":1},"cache":{"hits":4,"misses":3,"entries":3,"bytes":981,"gc_runs":1,"gc_evicted":2},"methods":[]}|}
  with
  | Ok (Serve.Proto.Metrics_reply m) ->
    Alcotest.(check int) "no journal records" 0 m.Serve.Proto.m_journal_records;
    Alcotest.(check int) "nothing retained" 0 m.Serve.Proto.m_retained;
    Alcotest.(check int) "nothing replayed" 0 m.Serve.Proto.m_replayed
  | Ok r -> Alcotest.failf "wrong reply: %s" (Serve.Proto.reply_to_string r)
  | Error e -> Alcotest.failf "v1 metrics rejected: %s" e

let test_backoff () =
  (* Deterministic bounds: the k-th delay is min(cap, max(base, hint)·2^k)
     scaled by a jitter in [0.5, 1.0). *)
  let b = Serve.Backoff.create ~base_s:1.0 ~cap_s:4.0 ~attempts:3 () in
  let expect_between lo hi = function
    | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "%.3f in [%.2f, %.2f)" d lo hi)
        true
        (d >= lo && d < hi)
    | None -> Alcotest.fail "backoff gave up early"
  in
  expect_between 0.5 1.0 (Serve.Backoff.next b ~hint_s:None);
  expect_between 1.0 2.0 (Serve.Backoff.next b ~hint_s:None);
  expect_between 2.0 4.0 (Serve.Backoff.next b ~hint_s:None);
  (match Serve.Backoff.next b ~hint_s:None with
  | None -> ()
  | Some _ -> Alcotest.fail "fourth retry allowed with attempts = 3");
  Alcotest.(check int) "attempts counted" 3 (Serve.Backoff.attempts_used b);
  (* The server's hint raises the floor of the first delay. *)
  let h = Serve.Backoff.create ~base_s:0.5 ~cap_s:30.0 ~attempts:1 () in
  expect_between 1.5 3.0 (Serve.Backoff.next h ~hint_s:(Some 3.0));
  (* attempts = 0 means never retry. *)
  match Serve.Backoff.next (Serve.Backoff.create ~attempts:0 ()) ~hint_s:None with
  | None -> ()
  | Some _ -> Alcotest.fail "attempts = 0 retried"

(* {1 Journal unit tests} *)

let jsub i =
  {
    Serve.Journal.a_job = i;
    a_tenant = "t";
    a_req = "req";
    a_design = "fifo";
    a_property = "fifo_data";
    a_method = "emm";
    a_max_depth = Some 5;
    a_timeout_s = None;
    a_cache = None;
  }

let jres i =
  {
    Serve.Journal.f_job = i;
    f_tenant = "t";
    f_req = "req";
    f_property = "fifo_data";
    f_method = "emm";
    f_verdict = "proved";
    f_depth = Some 1;
    f_induction = Some false;
    f_genuine = None;
    f_reason = None;
    f_time_s = 0.01;
    f_cache = "off";
    f_certificate = "unchecked";
  }

let test_journal_recovery () =
  let dir = tmpdir () in
  let path = Filename.concat dir "journal" in
  let j, r0 = Serve.Journal.open_ path in
  Alcotest.(check int) "fresh journal: nothing pending" 0 (List.length r0.Serve.Journal.pending);
  Alcotest.(check int) "fresh journal: job ids start at 1" 1 r0.Serve.Journal.next_job;
  (* Job 1 queued, job 2 mid-run, job 3 finished-not-acked, job 4 closed. *)
  Serve.Journal.append j (Serve.Journal.Accepted (jsub 1));
  Serve.Journal.append j (Serve.Journal.Accepted (jsub 2));
  Serve.Journal.append j
    (Serve.Journal.Started { job = 2; pid = 4242; token = "boot:77" });
  Serve.Journal.append j (Serve.Journal.Accepted (jsub 3));
  Serve.Journal.append j (Serve.Journal.Finished (jres 3));
  Serve.Journal.append j (Serve.Journal.Accepted (jsub 4));
  Serve.Journal.append j (Serve.Journal.Finished (jres 4));
  Serve.Journal.append j (Serve.Journal.Acked { job = 4 });
  Serve.Journal.sync j;
  Serve.Journal.close j;
  let j2, r = Serve.Journal.open_ path in
  Alcotest.(check (list int)) "unfinished jobs pending, in order" [ 1; 2 ]
    (List.map (fun s -> s.Serve.Journal.a_job) r.Serve.Journal.pending);
  Alcotest.(check (list (triple int int string))) "mid-run job is an orphan"
    [ (2, 4242, "boot:77") ]
    r.Serve.Journal.orphans;
  Alcotest.(check (list int)) "finished-not-acked retained" [ 3 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r.Serve.Journal.undelivered);
  Alcotest.(check int) "next job id past everything" 5 r.Serve.Journal.next_job;
  Alcotest.(check int) "no corruption" 0 r.Serve.Journal.corrupt;
  (* open_ compacted: the acked job is gone from disk, the rest survives a
     third replay identically. *)
  Serve.Journal.close j2;
  let j3, r2 = Serve.Journal.open_ path in
  Alcotest.(check (list int)) "stable after compaction" [ 1; 2 ]
    (List.map (fun s -> s.Serve.Journal.a_job) r2.Serve.Journal.pending);
  Alcotest.(check (list int)) "undelivered survives compaction" [ 3 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r2.Serve.Journal.undelivered);
  Serve.Journal.close j3

(* Write a journal file by hand and damage it: a torn tail, a flipped
   checksum and a duplicated record must each replay to a consistent state,
   never a crash or a lost neighbour. *)
let test_journal_corruption () =
  let dir = tmpdir () in
  let write_file path lines =
    let oc = open_out_bin path in
    output_string oc "EMMVER-JOURNAL 1\n";
    List.iter (output_string oc) lines;
    close_out oc
  in
  let l1 = Serve.Journal.line_of_record (Serve.Journal.Accepted (jsub 1)) in
  let l2 = Serve.Journal.line_of_record (Serve.Journal.Accepted (jsub 2)) in
  let l3 = Serve.Journal.line_of_record (Serve.Journal.Finished (jres 1)) in
  (* Torn tail: the last record was half-written when the power died. *)
  let torn = Filename.concat dir "torn" in
  write_file torn [ l1; l3; String.sub l2 0 (String.length l2 / 2) ];
  let j, r = Serve.Journal.open_ torn in
  Alcotest.(check (list int)) "torn tail: intact records survive" []
    (List.map (fun s -> s.Serve.Journal.a_job) r.Serve.Journal.pending);
  Alcotest.(check (list int)) "torn tail: finished job retained" [ 1 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r.Serve.Journal.undelivered);
  Alcotest.(check int) "torn tail counted corrupt" 1 r.Serve.Journal.corrupt;
  Serve.Journal.close j;
  (* Flipped checksum: one record's checksum no longer matches its body —
     that record is dead, its neighbours are untouched. *)
  let flipped = Filename.concat dir "flipped" in
  let flip s =
    let b = Bytes.of_string s in
    Bytes.set b 0 (if Bytes.get b 0 = '0' then 'f' else '0');
    Bytes.to_string b
  in
  write_file flipped [ l1; flip l2; l3 ];
  let j, r = Serve.Journal.open_ flipped in
  Alcotest.(check (list int)) "flip: only the damaged record is lost" []
    (List.map (fun s -> s.Serve.Journal.a_job) r.Serve.Journal.pending);
  Alcotest.(check (list int)) "flip: neighbours intact" [ 1 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r.Serve.Journal.undelivered);
  Alcotest.(check int) "flip counted corrupt" 1 r.Serve.Journal.corrupt;
  Serve.Journal.close j;
  (* Duplicated records: replay is idempotent — the same state as if each
     record appeared once. *)
  let dup = Filename.concat dir "dup" in
  write_file dup [ l1; l1; l3; l3; l1 ];
  let j, r = Serve.Journal.open_ dup in
  Alcotest.(check (list int)) "dup: one pending set" []
    (List.map (fun s -> s.Serve.Journal.a_job) r.Serve.Journal.pending);
  Alcotest.(check (list int)) "dup: one undelivered result" [ 1 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r.Serve.Journal.undelivered);
  Alcotest.(check int) "dup: nothing corrupt" 0 r.Serve.Journal.corrupt;
  Serve.Journal.close j;
  (* After the cleaning compaction in open_, a re-open sees no corruption
     and the same state. *)
  let j, r = Serve.Journal.open_ torn in
  Alcotest.(check int) "compaction scrubbed the tail" 0 r.Serve.Journal.corrupt;
  Alcotest.(check (list int)) "state stable after scrub" [ 1 ]
    (List.map (fun f -> f.Serve.Journal.f_job) r.Serve.Journal.undelivered);
  Serve.Journal.close j

(* {1 Live-server harness} *)

(* A scripted job body: the submit's request id selects the behaviour.
   Runs inside the server's forked worker, so crashes and sleeps exercise
   the real containment machinery. *)
let scripted (s : Serve.Proto.submit) ~property ~options:_ =
  ignore property;
  let proved =
    {
      (Emmver.killed_outcome ~elapsed_s:0.01 "scripted") with
      Emmver.conclusion = Emmver.Proved { depth = 1; induction = false };
      error = None;
    }
  in
  match String.split_on_char ':' s.Serve.Proto.s_id with
  | "sleep" :: d :: _ ->
    Unix.sleepf (float_of_string d);
    proved
  | "crash" :: _ -> Unix._exit 42
  | "once" :: flag :: _ ->
    (* First run: leave a flag and hang (to be orphaned by a daemon kill);
       any later run proves immediately.  Exercises re-running a replayed
       job whose first worker died with the daemon. *)
    if Sys.file_exists flag then proved
    else begin
      Unix.close (Unix.openfile flag [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644);
      Unix.sleepf 30.0;
      proved
    end
  | _ -> proved

let spawn_daemon cfg =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Serve.Server.run cfg with _ -> Unix._exit 1);
    Unix._exit 0
  | pid -> pid

(* Readiness by connecting, not by the socket file existing: after a
   SIGKILL the stale socket file lingers, and the restarted daemon only
   accepts once it has replaced it. *)
let wait_ready socket =
  let rec go n =
    if n = 0 then Alcotest.fail "daemon never became ready"
    else
      match Serve.Client.connect ~timeout_s:2.0 socket with
      | Ok c -> Serve.Client.close c
      | Error _ ->
        Unix.sleepf 0.02;
        go (n - 1)
  in
  go 500

let with_server ?(workers = 2) ?(max_queue = 8) ?(cache = false)
    ?(journal = false) ?budgets ?runner f =
  let dir = tmpdir () in
  let socket = Filename.concat dir "daemon.sock" in
  let cache_dir = if cache then Some (Filename.concat dir "cache") else None in
  let journal = if journal then Some (Filename.concat dir "journal") else None in
  let cfg =
    Serve.Server.config ~workers ~max_queue ~cache_dir ?budgets ~quiet:true
      ?journal ?runner ~socket ()
  in
  let pid = spawn_daemon cfg in
  wait_ready socket;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0)))
    (fun () -> f ~socket ~pid)

(* A journalled daemon the test can SIGKILL and restart on the same socket
   and journal — the crash-recovery harness. *)
let with_crash_server ?(workers = 2) ?runner f =
  let dir = tmpdir () in
  let socket = Filename.concat dir "daemon.sock" in
  let journal = Filename.concat dir "journal" in
  let cfg =
    Serve.Server.config ~workers ~max_queue:16 ~cache_dir:None ~quiet:true
      ~journal ?runner ~socket ()
  in
  let pid = ref (spawn_daemon cfg) in
  wait_ready socket;
  let kill9 () =
    Unix.kill !pid Sys.sigkill;
    ignore (Unix.waitpid [] !pid)
  in
  let restart () =
    pid := spawn_daemon cfg;
    wait_ready socket
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill !pid Sys.sigkill with Unix.Unix_error _ -> ());
      ignore
        (try Unix.waitpid [] !pid with Unix.Unix_error _ -> (!pid, Unix.WEXITED 0)))
    (fun () -> f ~dir ~socket ~kill9 ~restart)

let connect ?client socket =
  match Serve.Client.connect ?client socket with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request c req =
  match Serve.Client.request ~timeout_s:30.0 c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e

let submit_one ?(id = "job") ?(property = "fifo_data") c =
  match
    request c
      (Serve.Proto.Submit
         {
           Serve.Proto.s_id = id;
           s_design = "fifo";
           s_property = Some property;
           s_method = "emm";
           s_max_depth = Some 5;
           s_timeout_s = None;
           s_cache = None;
         })
  with
  | Serve.Proto.Accepted { jobs = [ (j, _) ]; _ } -> j
  | r -> Alcotest.failf "expected accepted: %s" (Serve.Proto.reply_to_string r)

let read_result c =
  let rec go () =
    match Serve.Client.read_reply ~timeout_s:30.0 c with
    | Ok (Serve.Proto.Result r) -> r
    | Ok _ -> go ()
    | Error e -> Alcotest.failf "read_result: %s" e
  in
  go ()

let metrics c =
  match request c Serve.Proto.Metrics with
  | Serve.Proto.Metrics_reply m -> m
  | r -> Alcotest.failf "expected metrics: %s" (Serve.Proto.reply_to_string r)

let wait_state c job state =
  let rec go n =
    if n = 0 then Alcotest.failf "job %d never reached %s" job state
    else
      match request c (Serve.Proto.Poll job) with
      | Serve.Proto.Status { state = s; _ } when s = state -> ()
      | Serve.Proto.Status _ ->
        Unix.sleepf 0.05;
        go (n - 1)
      | r -> Alcotest.failf "expected status: %s" (Serve.Proto.reply_to_string r)
  in
  go 200

(* {1 Live tests} *)

let test_hello_ping () =
  with_server ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"alice" socket in
      (match request c Serve.Proto.Ping with
      | Serve.Proto.Pong -> ()
      | r -> Alcotest.failf "expected pong: %s" (Serve.Proto.reply_to_string r));
      (match request c (Serve.Proto.Poll 99) with
      | Serve.Proto.Status { state = "unknown"; _ } -> ()
      | r -> Alcotest.failf "expected unknown: %s" (Serve.Proto.reply_to_string r));
      (* A garbage line earns an error reply, not a dropped connection. *)
      (match Serve.Client.send c Serve.Proto.Ping with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      ignore (Serve.Client.read_reply ~timeout_s:5.0 c);
      Serve.Client.close c)

let test_concurrent_clients () =
  with_server ~workers:2 ~runner:scripted (fun ~socket ~pid:_ ->
      let clients =
        List.init 4 (fun i -> (i, connect ~client:(Printf.sprintf "tenant-%d" i) socket))
      in
      let jobs =
        List.map (fun (i, c) -> (c, submit_one ~id:(Printf.sprintf "c%d" i) c)) clients
      in
      List.iter
        (fun (c, j) ->
          let r = read_result c in
          Alcotest.(check int) "result for own job" j r.Serve.Proto.r_job;
          Alcotest.(check string) "proved" "proved" r.Serve.Proto.r_verdict)
        jobs;
      let c0 = snd (List.hd clients) in
      let m = metrics c0 in
      Alcotest.(check int) "all completed" 4 m.Serve.Proto.m_completed;
      Alcotest.(check bool) "clients counted" true (m.Serve.Proto.m_clients >= 4);
      List.iter (fun (_, c) -> Serve.Client.close c) clients)

let test_backpressure () =
  with_server ~workers:1 ~max_queue:2 ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"flood" socket in
      let j1 = submit_one ~id:"sleep:2.0" c in
      wait_state c j1 "running";
      let _j2 = submit_one ~id:"sleep:0.1" c in
      let _j3 = submit_one ~id:"sleep:0.1" c in
      (match
         request c
           (Serve.Proto.Submit
              {
                Serve.Proto.s_id = "overflow";
                s_design = "fifo";
                s_property = Some "fifo_data";
                s_method = "emm";
                s_max_depth = None;
                s_timeout_s = None;
                s_cache = None;
              })
       with
      | Serve.Proto.Busy { queue_depth; max_queue; retry_after_s; _ } ->
        Alcotest.(check int) "queue reported full" 2 queue_depth;
        Alcotest.(check int) "max reported" 2 max_queue;
        Alcotest.(check bool) "busy carries a positive retry hint" true
          (retry_after_s > 0.0 && retry_after_s <= 30.0)
      | r -> Alcotest.failf "expected busy: %s" (Serve.Proto.reply_to_string r));
      (* An all-or-nothing batch: both fifo properties would overflow the
         one remaining... queue is already full, so nothing is enqueued. *)
      let m = metrics c in
      Alcotest.(check int) "busy rejection counted" 1 m.Serve.Proto.m_rejected_busy;
      Alcotest.(check int) "nothing extra queued" 2 m.Serve.Proto.m_queue_depth;
      Serve.Client.close c)

let test_fairness () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let flood = connect ~client:"flood" socket in
      let polite = connect ~client:"polite" socket in
      let j1 = submit_one ~id:"sleep:0.3" flood in
      wait_state flood j1 "running";
      let flood_jobs =
        List.init 3 (fun _ -> submit_one ~id:"sleep:0.3" flood)
      in
      let pj = submit_one ~id:"sleep:0.3" polite in
      (* Round-robin: the polite tenant's single job must not wait behind
         the flooder's whole backlog. *)
      let r = read_result polite in
      Alcotest.(check int) "polite job done" pj r.Serve.Proto.r_job;
      let undone =
        List.filter
          (fun j ->
            match request polite (Serve.Proto.Poll j) with
            | Serve.Proto.Status { state = "done"; _ } -> false
            | _ -> true)
          flood_jobs
      in
      Alcotest.(check bool)
        "flooder still has work after polite finished" true
        (List.length undone >= 1);
      Serve.Client.close flood;
      Serve.Client.close polite)

let test_crash_containment () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"crash" socket in
      let j = submit_one ~id:"crash" c in
      let r = read_result c in
      Alcotest.(check int) "crashed job answered" j r.Serve.Proto.r_job;
      Alcotest.(check string) "inconclusive" "inconclusive" r.Serve.Proto.r_verdict;
      (match r.Serve.Proto.r_reason with
      | Some why ->
        Alcotest.(check bool) "reason names the kill" true
          (String.length why >= 13 && String.sub why 0 13 = "worker killed")
      | None -> Alcotest.fail "no reason on crashed job");
      (* The daemon survives and serves the next job normally. *)
      let j2 = submit_one ~id:"after" c in
      let r2 = read_result c in
      Alcotest.(check int) "next job fine" j2 r2.Serve.Proto.r_job;
      Alcotest.(check string) "proved" "proved" r2.Serve.Proto.r_verdict;
      let m = metrics c in
      Alcotest.(check int) "failure counted" 1 m.Serve.Proto.m_failed;
      Alcotest.(check int) "completion counted" 1 m.Serve.Proto.m_completed;
      Serve.Client.close c)

let test_disconnect_cancels () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let doomed = connect ~client:"doomed" socket in
      let j = submit_one ~id:"sleep:30" doomed in
      wait_state doomed j "running";
      Serve.Client.close doomed;
      (* The abandoned worker is killed, not waited for 30 s. *)
      let c = connect ~client:"watcher" socket in
      let rec wait n =
        if n = 0 then Alcotest.fail "abandoned job never cancelled"
        else
          let m = metrics c in
          if m.Serve.Proto.m_cancelled >= 1 && m.Serve.Proto.m_running = 0 then ()
          else begin
            Unix.sleepf 0.05;
            wait (n - 1)
          end
      in
      wait 200;
      let j2 = submit_one ~id:"after" c in
      let r = read_result c in
      Alcotest.(check int) "worker slot freed" j2 r.Serve.Proto.r_job;
      Serve.Client.close c)

let test_warm_cache () =
  with_server ~workers:1 ~cache:true (fun ~socket ~pid:_ ->
      let c = connect ~client:"cache" socket in
      let _ = submit_one ~id:"cold" c in
      let cold = read_result c in
      Alcotest.(check string) "cold run misses" "miss" cold.Serve.Proto.r_cache;
      let _ = submit_one ~id:"warm" c in
      let warm = read_result c in
      Alcotest.(check string) "warm run hits" "hit" warm.Serve.Proto.r_cache;
      Alcotest.(check string)
        "same verdict" cold.Serve.Proto.r_verdict warm.Serve.Proto.r_verdict;
      let m = metrics c in
      Alcotest.(check int) "hit counted" 1 m.Serve.Proto.m_cache_hits;
      Alcotest.(check int) "miss counted" 1 m.Serve.Proto.m_cache_misses;
      Alcotest.(check bool) "store populated" true (m.Serve.Proto.m_cache_entries >= 1);
      Serve.Client.close c)

let test_sigterm_drain () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid ->
      let c = connect ~client:"drain" socket in
      let j1 = submit_one ~id:"sleep:0.5" c in
      wait_state c j1 "running";
      let j2 = submit_one ~id:"queued" c in
      Unix.kill pid Sys.sigterm;
      (* The in-flight job delivers its result; the queued one is dropped
         with a shutdown reply; then the daemon exits 0. *)
      let got_result = ref false and got_shutdown = ref false in
      let rec collect n =
        if n > 0 && not (!got_result && !got_shutdown) then begin
          (match Serve.Client.read_reply ~timeout_s:10.0 c with
          | Ok (Serve.Proto.Result r) ->
            Alcotest.(check int) "running job finished" j1 r.Serve.Proto.r_job;
            Alcotest.(check string) "proved" "proved" r.Serve.Proto.r_verdict;
            got_result := true
          | Ok (Serve.Proto.Shutdown_reply { job = Some j; _ }) ->
            Alcotest.(check int) "queued job dropped" j2 j;
            got_shutdown := true
          | Ok _ -> ()
          | Error e -> Alcotest.failf "during drain: %s" e);
          collect (n - 1)
        end
      in
      collect 10;
      Alcotest.(check bool) "result delivered" true !got_result;
      Alcotest.(check bool) "shutdown reply delivered" true !got_shutdown;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
        Alcotest.fail "daemon killed, not drained");
      Serve.Client.close c)

let test_budget_clamp () =
  (* The server clamps submissions to its policy ceilings; the runner seam
     observes the clamped options. *)
  let seen = ref None in
  let probe (s : Serve.Proto.submit) ~property ~options =
    ignore s;
    ignore property;
    seen := Some options;
    {
      (Emmver.killed_outcome
         ~elapsed_s:
           (match options.Emmver.timeout_s with Some t -> t | None -> 0.0)
         "probe")
      with
      Emmver.conclusion =
        Emmver.Inconclusive
          (Printf.sprintf "depth=%d timeout=%s" options.Emmver.max_depth
             (match options.Emmver.timeout_s with
             | Some t -> Printf.sprintf "%.1f" t
             | None -> "none"));
      error = None;
    }
  in
  let budgets =
    { Policy.wall_s = Some 5.0; conflicts = None; learnt_mb = None; max_depth = Some 10 }
  in
  ignore seen;
  with_server ~workers:1 ~budgets ~runner:probe (fun ~socket ~pid:_ ->
      let c = connect ~client:"clamp" socket in
      let _ =
        match
          request c
            (Serve.Proto.Submit
               {
                 Serve.Proto.s_id = "want-more";
                 s_design = "fifo";
                 s_property = Some "fifo_data";
                 s_method = "emm";
                 s_max_depth = Some 1000;
                 s_timeout_s = Some 3600.0;
                 s_cache = None;
               })
        with
        | Serve.Proto.Accepted _ -> ()
        | r -> Alcotest.failf "expected accepted: %s" (Serve.Proto.reply_to_string r)
      in
      let r = read_result c in
      (match r.Serve.Proto.r_reason with
      | Some why ->
        Alcotest.(check string) "clamped to ceilings" "depth=10 timeout=5.0" why
      | None -> Alcotest.fail "probe reason lost");
      Serve.Client.close c)

(* {1 Crash safety} *)

(* Reconnect as [tenant] and resume until [want] distinct job results are
   in hand, acking each as it arrives.  Results may also be pushed live to
   the (named) connection while we hold it — both paths collect. *)
let resume_collect ?(attempts = 150) socket tenant want =
  let got = Hashtbl.create 8 in
  let rec outer n =
    if Hashtbl.length got >= want then ()
    else if n = 0 then
      Alcotest.failf "resume collected %d of %d results" (Hashtbl.length got)
        want
    else begin
      let c = connect ~client:tenant socket in
      (match request c (Serve.Proto.Resume tenant) with
      | Serve.Proto.Resumed { results; _ } ->
        for _ = 1 to results do
          match Serve.Client.read_reply ~timeout_s:30.0 c with
          | Ok (Serve.Proto.Result r) ->
            if not (Hashtbl.mem got r.Serve.Proto.r_job) then
              Hashtbl.replace got r.Serve.Proto.r_job r;
            ignore (Serve.Client.send c (Serve.Proto.Ack r.Serve.Proto.r_job))
          | Ok _ -> ()
          | Error e -> Alcotest.failf "resume stream: %s" e
        done
      | r -> Alcotest.failf "expected resumed: %s" (Serve.Proto.reply_to_string r));
      Serve.Client.close c;
      if Hashtbl.length got < want then Unix.sleepf 0.05;
      outer (n - 1)
    end
  in
  outer attempts;
  got

let test_resume_ack () =
  with_server ~workers:1 ~journal:true ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"tess" socket in
      let j = submit_one ~id:"job" c in
      let r = read_result c in
      Alcotest.(check int) "delivered live" j r.Serve.Proto.r_job;
      (* Never acked: the server must retain it across the disconnect. *)
      Serve.Client.close c;
      let c2 = connect ~client:"tess" socket in
      (match request c2 (Serve.Proto.Resume "tess") with
      | Serve.Proto.Resumed { results = 1; pending = 0; _ } -> ()
      | r -> Alcotest.failf "expected 1 retained: %s" (Serve.Proto.reply_to_string r));
      let again = read_result c2 in
      Alcotest.(check int) "same job redelivered" j again.Serve.Proto.r_job;
      Alcotest.(check string)
        "same verdict" r.Serve.Proto.r_verdict again.Serve.Proto.r_verdict;
      (match request c2 (Serve.Proto.Ack j) with
      | Serve.Proto.Acked { job } -> Alcotest.(check int) "acked" j job
      | r -> Alcotest.failf "expected acked: %s" (Serve.Proto.reply_to_string r));
      (* Idempotent: acking again is harmless, and nothing is left. *)
      (match request c2 (Serve.Proto.Ack j) with
      | Serve.Proto.Acked _ -> ()
      | r -> Alcotest.failf "expected acked: %s" (Serve.Proto.reply_to_string r));
      (match request c2 (Serve.Proto.Resume "tess") with
      | Serve.Proto.Resumed { results = 0; _ } -> ()
      | r -> Alcotest.failf "expected drained: %s" (Serve.Proto.reply_to_string r));
      let m = metrics c2 in
      Alcotest.(check int) "redelivery counted" 1 m.Serve.Proto.m_redelivered;
      Alcotest.(check int) "ack counted" 1 m.Serve.Proto.m_acked;
      Alcotest.(check int) "nothing retained" 0 m.Serve.Proto.m_retained;
      Alcotest.(check bool) "journal populated" true
        (m.Serve.Proto.m_journal_records > 0);
      Serve.Client.close c2)

let test_crash_recovery () =
  with_crash_server ~workers:1 ~runner:scripted
    (fun ~dir ~socket ~kill9 ~restart ->
      let flag = Filename.concat dir "once.flag" in
      let c = connect ~client:"cr" socket in
      let j1 = submit_one ~id:("once:" ^ flag) c in
      wait_state c j1 "running";
      let j2 = submit_one ~id:"queued" c in
      (* The worker has really started (it wrote its flag) before the kill,
         so the restarted daemon has a live orphan to reap. *)
      let rec wait_flag n =
        if Sys.file_exists flag then ()
        else if n = 0 then Alcotest.fail "worker never started"
        else begin
          Unix.sleepf 0.02;
          wait_flag (n - 1)
        end
      in
      wait_flag 250;
      kill9 ();
      Serve.Client.close c;
      restart ();
      let got = resume_collect socket "cr" 2 in
      Alcotest.(check bool) "mid-run job recovered" true (Hashtbl.mem got j1);
      Alcotest.(check bool) "queued job recovered" true (Hashtbl.mem got j2);
      Alcotest.(check string) "re-run concluded" "proved"
        (Hashtbl.find got j1).Serve.Proto.r_verdict;
      let c2 = connect ~client:"watch" socket in
      let m = metrics c2 in
      Alcotest.(check int) "both jobs replayed" 2 m.Serve.Proto.m_replayed;
      Alcotest.(check int) "orphaned worker reaped" 1
        m.Serve.Proto.m_orphans_killed;
      Serve.Client.close c2)

(* The acceptance property, sampled: SIGKILL the daemon at a random instant
   in a batch's lifetime — mid-queue, mid-run, mid-delivery — and every
   accepted job must still produce a result after restart + resume. *)
let test_kill_points () =
  for _round = 1 to 5 do
    with_crash_server ~workers:2 ~runner:scripted
      (fun ~dir:_ ~socket ~kill9 ~restart ->
        let c = connect ~client:"kp" socket in
        let jobs =
          List.init 3 (fun i ->
              submit_one ~id:(Printf.sprintf "sleep:0.0%d" (i + 1)) c)
        in
        Unix.sleepf (Random.float 0.15);
        kill9 ();
        Serve.Client.close c;
        restart ();
        let got = resume_collect socket "kp" 3 in
        List.iter
          (fun j ->
            Alcotest.(check bool)
              (Printf.sprintf "job %d survived the kill" j)
              true (Hashtbl.mem got j))
          jobs)
  done

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "golden requests, byte-for-byte" `Quick
            test_golden_requests;
          Alcotest.test_case "golden replies, byte-for-byte" `Quick
            test_golden_replies;
          Alcotest.test_case "malformed lines are rejected" `Quick
            test_protocol_errors;
          Alcotest.test_case "v1 replies parse with absent v2 fields" `Quick
            test_v1_compat;
          Alcotest.test_case "backoff delays are bounded and jittered" `Quick
            test_backoff;
        ] );
      ( "journal",
        [
          Alcotest.test_case "replay projects pending/orphans/undelivered"
            `Quick test_journal_recovery;
          Alcotest.test_case "torn, flipped and duplicated records recover"
            `Quick test_journal_corruption;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "hello, ping, poll unknown" `Quick test_hello_ping;
          Alcotest.test_case "concurrent clients each get their results" `Quick
            test_concurrent_clients;
          Alcotest.test_case "queue-full submissions get busy" `Quick
            test_backpressure;
          Alcotest.test_case "round-robin fairness under a flooding tenant"
            `Quick test_fairness;
          Alcotest.test_case "worker crash is contained to its job" `Quick
            test_crash_containment;
          Alcotest.test_case "client disconnect cancels its jobs" `Quick
            test_disconnect_cancels;
          Alcotest.test_case "second submission is served warm" `Quick
            test_warm_cache;
          Alcotest.test_case "SIGTERM drains gracefully" `Quick
            test_sigterm_drain;
          Alcotest.test_case "submissions are clamped to policy budgets" `Quick
            test_budget_clamp;
          Alcotest.test_case "unacked results survive for resume" `Quick
            test_resume_ack;
          Alcotest.test_case "SIGKILL + restart recovers queue and orphans"
            `Quick test_crash_recovery;
          Alcotest.test_case "random kill points never lose an accepted job"
            `Quick test_kill_points;
        ] );
    ]
