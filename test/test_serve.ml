(* The verification daemon: protocol codec golden tests, then live-server
   behaviour — backpressure, fairness, crash containment, disconnect
   cleanup, warm cache, SIGTERM drain.

   Live tests fork a real daemon (Serve.Server.run in a child process) on a
   socket in a fresh temp directory and talk to it through Serve.Client.
   Scripted job bodies are injected via the server's [runner] seam; the
   submit's request id encodes the behaviour ("sleep:0.3", "crash", ...),
   while the design/property resolution stays the real one. *)

let tmpdir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "emmver-serve-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir dir 0o700;
  dir

(* {1 Protocol golden tests} *)

let submit_full =
  {
    Serve.Proto.s_id = "r1";
    s_design = "fifo";
    s_property = Some "fifo_data";
    s_method = "emm";
    s_max_depth = Some 12;
    s_timeout_s = Some 1.5;
    s_cache = Some true;
  }

let submit_min =
  {
    Serve.Proto.s_id = "r2";
    s_design = "fifo";
    s_property = None;
    s_method = "emm";
    s_max_depth = None;
    s_timeout_s = None;
    s_cache = None;
  }

(* Recorded transcripts: every request and reply form, byte for byte.  The
   rendering is part of the wire contract — fixed field order, %.3f floats
   — so any codec drift must fail here, not against a deployed client. *)
let golden_requests =
  [
    (Serve.Proto.Hello "alice", {|{"op":"hello","client":"alice"}|});
    (Serve.Proto.Ping, {|{"op":"ping"}|});
    ( Serve.Proto.Submit submit_full,
      {|{"op":"submit","id":"r1","design":"fifo","property":"fifo_data","method":"emm","max_depth":12,"timeout_s":1.500,"cache":true}|}
    );
    ( Serve.Proto.Submit submit_min,
      {|{"op":"submit","id":"r2","design":"fifo","method":"emm"}|} );
    (Serve.Proto.Poll 7, {|{"op":"poll","job":7}|});
    (Serve.Proto.Metrics, {|{"op":"metrics"}|});
    (Serve.Proto.Shutdown, {|{"op":"shutdown"}|});
  ]

let golden_replies =
  [
    ( Serve.Proto.Hello_ok { server = "emmver"; version = 1 },
      {|{"reply":"hello","server":"emmver","version":1}|} );
    (Serve.Proto.Pong, {|{"reply":"pong"}|});
    ( Serve.Proto.Accepted
        { id = "r1"; jobs = [ (1, "fifo_data"); (2, "fifo_count") ]; queue_depth = 2 },
      {|{"reply":"accepted","id":"r1","jobs":[{"job":1,"property":"fifo_data"},{"job":2,"property":"fifo_count"}],"queue_depth":2}|}
    );
    ( Serve.Proto.Busy { id = "r9"; queue_depth = 4; max_queue = 4 },
      {|{"reply":"busy","id":"r9","queue_depth":4,"max_queue":4}|} );
    ( Serve.Proto.Shutdown_reply { id = "r1"; job = Some 3 },
      {|{"reply":"shutdown","id":"r1","job":3}|} );
    ( Serve.Proto.Shutdown_reply { id = "r1"; job = None },
      {|{"reply":"shutdown","id":"r1"}|} );
    ( Serve.Proto.Error { id = Some "r1"; message = "unknown design \"nope\"" },
      {|{"reply":"error","id":"r1","message":"unknown design \"nope\""}|} );
    ( Serve.Proto.Error { id = None; message = "bad JSON: truncated" },
      {|{"reply":"error","message":"bad JSON: truncated"}|} );
    ( Serve.Proto.Result
        {
          r_job = 1;
          r_id = "r1";
          r_property = "fifo_data";
          r_method = "emm";
          r_verdict = "proved";
          r_depth = Some 12;
          r_induction = Some true;
          r_genuine = None;
          r_reason = None;
          r_time_s = 0.103;
          r_cache = "hit";
          r_certificate = "drat-checked";
        },
      {|{"reply":"result","job":1,"id":"r1","property":"fifo_data","method":"emm","verdict":"proved","depth":12,"induction":true,"time_s":0.103,"cache":"hit","certificate":"drat-checked"}|}
    );
    ( Serve.Proto.Result
        {
          r_job = 2;
          r_id = "r1";
          r_property = "fifo_data";
          r_method = "emm";
          r_verdict = "inconclusive";
          r_depth = None;
          r_induction = None;
          r_genuine = None;
          r_reason = Some "worker killed: timed out";
          r_time_s = 2.0;
          r_cache = "off";
          r_certificate = "unchecked";
        },
      {|{"reply":"result","job":2,"id":"r1","property":"fifo_data","method":"emm","verdict":"inconclusive","reason":"worker killed: timed out","time_s":2.000,"cache":"off","certificate":"unchecked"}|}
    );
    ( Serve.Proto.Status { job = 7; state = "running" },
      {|{"reply":"status","job":7,"state":"running"}|} );
    ( Serve.Proto.Metrics_reply
        {
          m_uptime_s = 12.5;
          m_queue_depth = 1;
          m_running = 2;
          m_clients = 3;
          m_accepted = 10;
          m_completed = 7;
          m_failed = 1;
          m_cancelled = 1;
          m_rejected_busy = 2;
          m_rejected_shutdown = 0;
          m_protocol_errors = 1;
          m_cache_hits = 4;
          m_cache_misses = 3;
          m_cache_entries = 3;
          m_cache_bytes = 981;
          m_gc_runs = 1;
          m_gc_evicted = 2;
          m_methods = [ ("bdd", 2, 0.5); ("emm", 8, 3.25) ];
        },
      {|{"reply":"metrics","uptime_s":12.500,"queue_depth":1,"running":2,"clients":3,"jobs":{"accepted":10,"completed":7,"failed":1,"cancelled":1,"rejected_busy":2,"rejected_shutdown":0,"protocol_errors":1},"cache":{"hits":4,"misses":3,"entries":3,"bytes":981,"gc_runs":1,"gc_evicted":2},"methods":[{"method":"bdd","jobs":2,"wall_s":0.500},{"method":"emm","jobs":8,"wall_s":3.250}]}|}
    );
    (Serve.Proto.Draining, {|{"reply":"draining"}|});
  ]

let test_golden_requests () =
  List.iter
    (fun (req, expected) ->
      Alcotest.(check string) expected expected (Serve.Proto.request_to_string req);
      match Serve.Proto.request_of_string expected with
      | Ok back ->
        Alcotest.(check string)
          ("round-trip " ^ expected)
          expected
          (Serve.Proto.request_to_string back)
      | Error e -> Alcotest.failf "cannot parse %s: %s" expected e)
    golden_requests

let test_golden_replies () =
  List.iter
    (fun (reply, expected) ->
      Alcotest.(check string) expected expected (Serve.Proto.reply_to_string reply);
      match Serve.Proto.reply_of_string expected with
      | Ok back ->
        Alcotest.(check string)
          ("round-trip " ^ expected)
          expected
          (Serve.Proto.reply_to_string back)
      | Error e -> Alcotest.failf "cannot parse %s: %s" expected e)
    golden_replies

let test_protocol_errors () =
  (match Serve.Proto.request_of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  (match Serve.Proto.request_of_string {|{"op":"warp"}|} with
  | Error e -> Alcotest.(check bool) "names op" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "unknown op accepted");
  (match Serve.Proto.request_of_string {|{"op":"submit"}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "submit without design accepted");
  match Serve.Proto.reply_of_string {|{"reply":"result","job":1}|} with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated result accepted"

(* {1 Live-server harness} *)

(* A scripted job body: the submit's request id selects the behaviour.
   Runs inside the server's forked worker, so crashes and sleeps exercise
   the real containment machinery. *)
let scripted (s : Serve.Proto.submit) ~property ~options:_ =
  ignore property;
  let proved =
    {
      (Emmver.killed_outcome ~elapsed_s:0.01 "scripted") with
      Emmver.conclusion = Emmver.Proved { depth = 1; induction = false };
      error = None;
    }
  in
  match String.split_on_char ':' s.Serve.Proto.s_id with
  | "sleep" :: d :: _ ->
    Unix.sleepf (float_of_string d);
    proved
  | "crash" :: _ -> Unix._exit 42
  | _ -> proved

let with_server ?(workers = 2) ?(max_queue = 8) ?(cache = false) ?budgets ?runner f
    =
  let dir = tmpdir () in
  let socket = Filename.concat dir "daemon.sock" in
  let cache_dir = if cache then Some (Filename.concat dir "cache") else None in
  let cfg =
    Serve.Server.config ~workers ~max_queue ~cache_dir ?budgets ~quiet:true
      ?runner ~socket ()
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (try Serve.Server.run cfg with _ -> Unix._exit 1);
    Unix._exit 0
  | pid ->
    let rec wait_socket n =
      if Sys.file_exists socket then ()
      else if n = 0 then Alcotest.fail "daemon never bound its socket"
      else begin
        Unix.sleepf 0.02;
        wait_socket (n - 1)
      end
    in
    wait_socket 250;
    Fun.protect
      ~finally:(fun () ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (pid, Unix.WEXITED 0)))
      (fun () -> f ~socket ~pid)

let connect ?client socket =
  match Serve.Client.connect ?client socket with
  | Ok c -> c
  | Error e -> Alcotest.failf "connect: %s" e

let request c req =
  match Serve.Client.request ~timeout_s:30.0 c req with
  | Ok r -> r
  | Error e -> Alcotest.failf "request: %s" e

let submit_one ?(id = "job") ?(property = "fifo_data") c =
  match
    request c
      (Serve.Proto.Submit
         {
           Serve.Proto.s_id = id;
           s_design = "fifo";
           s_property = Some property;
           s_method = "emm";
           s_max_depth = Some 5;
           s_timeout_s = None;
           s_cache = None;
         })
  with
  | Serve.Proto.Accepted { jobs = [ (j, _) ]; _ } -> j
  | r -> Alcotest.failf "expected accepted: %s" (Serve.Proto.reply_to_string r)

let read_result c =
  let rec go () =
    match Serve.Client.read_reply ~timeout_s:30.0 c with
    | Ok (Serve.Proto.Result r) -> r
    | Ok _ -> go ()
    | Error e -> Alcotest.failf "read_result: %s" e
  in
  go ()

let metrics c =
  match request c Serve.Proto.Metrics with
  | Serve.Proto.Metrics_reply m -> m
  | r -> Alcotest.failf "expected metrics: %s" (Serve.Proto.reply_to_string r)

let wait_state c job state =
  let rec go n =
    if n = 0 then Alcotest.failf "job %d never reached %s" job state
    else
      match request c (Serve.Proto.Poll job) with
      | Serve.Proto.Status { state = s; _ } when s = state -> ()
      | Serve.Proto.Status _ ->
        Unix.sleepf 0.05;
        go (n - 1)
      | r -> Alcotest.failf "expected status: %s" (Serve.Proto.reply_to_string r)
  in
  go 200

(* {1 Live tests} *)

let test_hello_ping () =
  with_server ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"alice" socket in
      (match request c Serve.Proto.Ping with
      | Serve.Proto.Pong -> ()
      | r -> Alcotest.failf "expected pong: %s" (Serve.Proto.reply_to_string r));
      (match request c (Serve.Proto.Poll 99) with
      | Serve.Proto.Status { state = "unknown"; _ } -> ()
      | r -> Alcotest.failf "expected unknown: %s" (Serve.Proto.reply_to_string r));
      (* A garbage line earns an error reply, not a dropped connection. *)
      (match Serve.Client.send c Serve.Proto.Ping with
      | Ok () -> ()
      | Error e -> Alcotest.fail e);
      ignore (Serve.Client.read_reply ~timeout_s:5.0 c);
      Serve.Client.close c)

let test_concurrent_clients () =
  with_server ~workers:2 ~runner:scripted (fun ~socket ~pid:_ ->
      let clients =
        List.init 4 (fun i -> (i, connect ~client:(Printf.sprintf "tenant-%d" i) socket))
      in
      let jobs =
        List.map (fun (i, c) -> (c, submit_one ~id:(Printf.sprintf "c%d" i) c)) clients
      in
      List.iter
        (fun (c, j) ->
          let r = read_result c in
          Alcotest.(check int) "result for own job" j r.Serve.Proto.r_job;
          Alcotest.(check string) "proved" "proved" r.Serve.Proto.r_verdict)
        jobs;
      let c0 = snd (List.hd clients) in
      let m = metrics c0 in
      Alcotest.(check int) "all completed" 4 m.Serve.Proto.m_completed;
      Alcotest.(check bool) "clients counted" true (m.Serve.Proto.m_clients >= 4);
      List.iter (fun (_, c) -> Serve.Client.close c) clients)

let test_backpressure () =
  with_server ~workers:1 ~max_queue:2 ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"flood" socket in
      let j1 = submit_one ~id:"sleep:2.0" c in
      wait_state c j1 "running";
      let _j2 = submit_one ~id:"sleep:0.1" c in
      let _j3 = submit_one ~id:"sleep:0.1" c in
      (match
         request c
           (Serve.Proto.Submit
              {
                Serve.Proto.s_id = "overflow";
                s_design = "fifo";
                s_property = Some "fifo_data";
                s_method = "emm";
                s_max_depth = None;
                s_timeout_s = None;
                s_cache = None;
              })
       with
      | Serve.Proto.Busy { queue_depth; max_queue; _ } ->
        Alcotest.(check int) "queue reported full" 2 queue_depth;
        Alcotest.(check int) "max reported" 2 max_queue
      | r -> Alcotest.failf "expected busy: %s" (Serve.Proto.reply_to_string r));
      (* An all-or-nothing batch: both fifo properties would overflow the
         one remaining... queue is already full, so nothing is enqueued. *)
      let m = metrics c in
      Alcotest.(check int) "busy rejection counted" 1 m.Serve.Proto.m_rejected_busy;
      Alcotest.(check int) "nothing extra queued" 2 m.Serve.Proto.m_queue_depth;
      Serve.Client.close c)

let test_fairness () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let flood = connect ~client:"flood" socket in
      let polite = connect ~client:"polite" socket in
      let j1 = submit_one ~id:"sleep:0.3" flood in
      wait_state flood j1 "running";
      let flood_jobs =
        List.init 3 (fun _ -> submit_one ~id:"sleep:0.3" flood)
      in
      let pj = submit_one ~id:"sleep:0.3" polite in
      (* Round-robin: the polite tenant's single job must not wait behind
         the flooder's whole backlog. *)
      let r = read_result polite in
      Alcotest.(check int) "polite job done" pj r.Serve.Proto.r_job;
      let undone =
        List.filter
          (fun j ->
            match request polite (Serve.Proto.Poll j) with
            | Serve.Proto.Status { state = "done"; _ } -> false
            | _ -> true)
          flood_jobs
      in
      Alcotest.(check bool)
        "flooder still has work after polite finished" true
        (List.length undone >= 1);
      Serve.Client.close flood;
      Serve.Client.close polite)

let test_crash_containment () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let c = connect ~client:"crash" socket in
      let j = submit_one ~id:"crash" c in
      let r = read_result c in
      Alcotest.(check int) "crashed job answered" j r.Serve.Proto.r_job;
      Alcotest.(check string) "inconclusive" "inconclusive" r.Serve.Proto.r_verdict;
      (match r.Serve.Proto.r_reason with
      | Some why ->
        Alcotest.(check bool) "reason names the kill" true
          (String.length why >= 13 && String.sub why 0 13 = "worker killed")
      | None -> Alcotest.fail "no reason on crashed job");
      (* The daemon survives and serves the next job normally. *)
      let j2 = submit_one ~id:"after" c in
      let r2 = read_result c in
      Alcotest.(check int) "next job fine" j2 r2.Serve.Proto.r_job;
      Alcotest.(check string) "proved" "proved" r2.Serve.Proto.r_verdict;
      let m = metrics c in
      Alcotest.(check int) "failure counted" 1 m.Serve.Proto.m_failed;
      Alcotest.(check int) "completion counted" 1 m.Serve.Proto.m_completed;
      Serve.Client.close c)

let test_disconnect_cancels () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid:_ ->
      let doomed = connect ~client:"doomed" socket in
      let j = submit_one ~id:"sleep:30" doomed in
      wait_state doomed j "running";
      Serve.Client.close doomed;
      (* The abandoned worker is killed, not waited for 30 s. *)
      let c = connect ~client:"watcher" socket in
      let rec wait n =
        if n = 0 then Alcotest.fail "abandoned job never cancelled"
        else
          let m = metrics c in
          if m.Serve.Proto.m_cancelled >= 1 && m.Serve.Proto.m_running = 0 then ()
          else begin
            Unix.sleepf 0.05;
            wait (n - 1)
          end
      in
      wait 200;
      let j2 = submit_one ~id:"after" c in
      let r = read_result c in
      Alcotest.(check int) "worker slot freed" j2 r.Serve.Proto.r_job;
      Serve.Client.close c)

let test_warm_cache () =
  with_server ~workers:1 ~cache:true (fun ~socket ~pid:_ ->
      let c = connect ~client:"cache" socket in
      let _ = submit_one ~id:"cold" c in
      let cold = read_result c in
      Alcotest.(check string) "cold run misses" "miss" cold.Serve.Proto.r_cache;
      let _ = submit_one ~id:"warm" c in
      let warm = read_result c in
      Alcotest.(check string) "warm run hits" "hit" warm.Serve.Proto.r_cache;
      Alcotest.(check string)
        "same verdict" cold.Serve.Proto.r_verdict warm.Serve.Proto.r_verdict;
      let m = metrics c in
      Alcotest.(check int) "hit counted" 1 m.Serve.Proto.m_cache_hits;
      Alcotest.(check int) "miss counted" 1 m.Serve.Proto.m_cache_misses;
      Alcotest.(check bool) "store populated" true (m.Serve.Proto.m_cache_entries >= 1);
      Serve.Client.close c)

let test_sigterm_drain () =
  with_server ~workers:1 ~runner:scripted (fun ~socket ~pid ->
      let c = connect ~client:"drain" socket in
      let j1 = submit_one ~id:"sleep:0.5" c in
      wait_state c j1 "running";
      let j2 = submit_one ~id:"queued" c in
      Unix.kill pid Sys.sigterm;
      (* The in-flight job delivers its result; the queued one is dropped
         with a shutdown reply; then the daemon exits 0. *)
      let got_result = ref false and got_shutdown = ref false in
      let rec collect n =
        if n > 0 && not (!got_result && !got_shutdown) then begin
          (match Serve.Client.read_reply ~timeout_s:10.0 c with
          | Ok (Serve.Proto.Result r) ->
            Alcotest.(check int) "running job finished" j1 r.Serve.Proto.r_job;
            Alcotest.(check string) "proved" "proved" r.Serve.Proto.r_verdict;
            got_result := true
          | Ok (Serve.Proto.Shutdown_reply { job = Some j; _ }) ->
            Alcotest.(check int) "queued job dropped" j2 j;
            got_shutdown := true
          | Ok _ -> ()
          | Error e -> Alcotest.failf "during drain: %s" e);
          collect (n - 1)
        end
      in
      collect 10;
      Alcotest.(check bool) "result delivered" true !got_result;
      Alcotest.(check bool) "shutdown reply delivered" true !got_shutdown;
      (match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, Unix.WEXITED n -> Alcotest.failf "daemon exited %d" n
      | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
        Alcotest.fail "daemon killed, not drained");
      Serve.Client.close c)

let test_budget_clamp () =
  (* The server clamps submissions to its policy ceilings; the runner seam
     observes the clamped options. *)
  let seen = ref None in
  let probe (s : Serve.Proto.submit) ~property ~options =
    ignore s;
    ignore property;
    seen := Some options;
    {
      (Emmver.killed_outcome
         ~elapsed_s:
           (match options.Emmver.timeout_s with Some t -> t | None -> 0.0)
         "probe")
      with
      Emmver.conclusion =
        Emmver.Inconclusive
          (Printf.sprintf "depth=%d timeout=%s" options.Emmver.max_depth
             (match options.Emmver.timeout_s with
             | Some t -> Printf.sprintf "%.1f" t
             | None -> "none"));
      error = None;
    }
  in
  let budgets =
    { Policy.wall_s = Some 5.0; conflicts = None; learnt_mb = None; max_depth = Some 10 }
  in
  ignore seen;
  with_server ~workers:1 ~budgets ~runner:probe (fun ~socket ~pid:_ ->
      let c = connect ~client:"clamp" socket in
      let _ =
        match
          request c
            (Serve.Proto.Submit
               {
                 Serve.Proto.s_id = "want-more";
                 s_design = "fifo";
                 s_property = Some "fifo_data";
                 s_method = "emm";
                 s_max_depth = Some 1000;
                 s_timeout_s = Some 3600.0;
                 s_cache = None;
               })
        with
        | Serve.Proto.Accepted _ -> ()
        | r -> Alcotest.failf "expected accepted: %s" (Serve.Proto.reply_to_string r)
      in
      let r = read_result c in
      (match r.Serve.Proto.r_reason with
      | Some why ->
        Alcotest.(check string) "clamped to ceilings" "depth=10 timeout=5.0" why
      | None -> Alcotest.fail "probe reason lost");
      Serve.Client.close c)

let () =
  Random.self_init ();
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "golden requests, byte-for-byte" `Quick
            test_golden_requests;
          Alcotest.test_case "golden replies, byte-for-byte" `Quick
            test_golden_replies;
          Alcotest.test_case "malformed lines are rejected" `Quick
            test_protocol_errors;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "hello, ping, poll unknown" `Quick test_hello_ping;
          Alcotest.test_case "concurrent clients each get their results" `Quick
            test_concurrent_clients;
          Alcotest.test_case "queue-full submissions get busy" `Quick
            test_backpressure;
          Alcotest.test_case "round-robin fairness under a flooding tenant"
            `Quick test_fairness;
          Alcotest.test_case "worker crash is contained to its job" `Quick
            test_crash_containment;
          Alcotest.test_case "client disconnect cancels its jobs" `Quick
            test_disconnect_cancels;
          Alcotest.test_case "second submission is served warm" `Quick
            test_warm_cache;
          Alcotest.test_case "SIGTERM drains gracefully" `Quick
            test_sigterm_drain;
          Alcotest.test_case "submissions are clamped to policy budgets" `Quick
            test_budget_clamp;
        ] );
    ]
