(* Tests for the fork-based worker pool (lib/parallel) and its Emmver
   surface: crash containment, deadline SIGKILL, result-order determinism,
   pool reuse across batches, and a differential check that fanning
   verification out over forked workers never changes a verdict. *)

let is_infix ~affix s =
  let n = String.length s and m = String.length affix in
  let rec go i = i + m <= n && (String.sub s i m = affix || go (i + 1)) in
  go 0

let ok_exn = function
  | Ok v -> v
  | Error (f : Parallel.failure) ->
    Alcotest.failf "unexpected worker failure: %s" (Parallel.failure_message f)

let reason_label = function
  | Ok _ -> "ok"
  | Error { Parallel.reason = Parallel.Crashed _; _ } -> "crashed"
  | Error { Parallel.reason = Parallel.Timed_out _; _ } -> "timed_out"
  | Error { Parallel.reason = Parallel.Cancelled; _ } -> "cancelled"
  | Error { Parallel.reason = Parallel.Protocol _; _ } -> "protocol"

(* {2 Pool mechanics} *)

let test_basic_map () =
  let results = Parallel.map ~jobs:4 ~f:(fun i -> i * i) [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Alcotest.(check (list int))
    "squares in order"
    [ 0; 1; 4; 9; 16; 25; 36; 49 ]
    (List.map ok_exn results)

(* A worker that exits, raises, or kills itself loses only its own slot;
   every other job completes. *)
let test_crash_containment () =
  let f i =
    match i with
    | 2 -> exit 137
    | 4 -> failwith "boom"
    | 5 ->
      Unix.kill (Unix.getpid ()) Sys.sigsegv;
      i
    | _ -> i * 10
  in
  let results = Parallel.map ~jobs:3 ~f [ 0; 1; 2; 3; 4; 5; 6 ] in
  Alcotest.(check (list string))
    "crashes contained to their slots"
    [ "ok"; "ok"; "crashed"; "ok"; "crashed"; "crashed"; "ok" ]
    (List.map reason_label results);
  Alcotest.(check (list int))
    "survivors computed"
    [ 0; 10; 30; 60 ]
    (List.filter_map (function Ok v -> Some v | Error _ -> None) results);
  (* The failure messages identify what happened. *)
  let msg i =
    match List.nth results i with
    | Error f -> Parallel.failure_message f
    | Ok _ -> Alcotest.failf "slot %d should have failed" i
  in
  Alcotest.(check bool) "exit code reported" true
    (is_infix ~affix:"exit 137" (msg 2));
  Alcotest.(check bool) "exception text reported" true
    (is_infix ~affix:"boom" (msg 4));
  Alcotest.(check bool) "signal reported" true
    (is_infix ~affix:"SIGSEGV" (msg 5))

(* Deadline enforcement is a hard SIGKILL: a worker stuck in a sleep — no
   cooperative cancellation point — still dies, within a wall-clock bound
   far below its sleep. *)
let test_deadline_sigkill () =
  let t0 = Unix.gettimeofday () in
  let results =
    Parallel.map ~jobs:4 ~job_timeout_s:0.3
      ~f:(fun i -> if i = 1 then Unix.sleepf 30.0; i)
      [ 0; 1; 2 ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  Alcotest.(check (list string))
    "only the sleeper dies"
    [ "ok"; "timed_out"; "ok" ]
    (List.map reason_label results);
  Alcotest.(check bool)
    (Printf.sprintf "batch returned promptly (%.1fs)" wall)
    true (wall < 10.0);
  match List.nth results 1 with
  | Error f -> Alcotest.(check bool) "partial telemetry: elapsed recorded" true (f.Parallel.elapsed_s >= 0.3)
  | Ok _ -> Alcotest.fail "sleeper should have timed out"

(* Results come back in job order whatever the completion order: give every
   job a pseudo-random duration and check the slots still line up. *)
let test_order_determinism () =
  let n = 16 in
  let f i =
    let st = Random.State.make [| 0xfeed; i |] in
    Unix.sleepf (Random.State.float st 0.15);
    i
  in
  let results = Parallel.map ~jobs:4 ~f (List.init n Fun.id) in
  Alcotest.(check (list int))
    "slot i holds f(i)" (List.init n Fun.id)
    (List.map ok_exn results)

(* One pool across several batches: no leaked state, counters accumulate. *)
let test_pool_reuse () =
  let pool = Parallel.create ~jobs:2 () in
  let batch xs = List.map ok_exn (Parallel.run pool ~f:(fun i -> i + 1) xs) in
  Alcotest.(check (list int)) "batch 1" [ 1; 2; 3 ] (batch [ 0; 1; 2 ]);
  Alcotest.(check (list int)) "batch 2" [ 11; 21 ] (batch [ 10; 20 ]);
  let crashes =
    Parallel.run pool ~f:(fun i -> if i = 0 then exit 7 else i) [ 0; 1 ]
  in
  Alcotest.(check (list string))
    "batch 3 with a crash" [ "crashed"; "ok" ]
    (List.map reason_label crashes);
  let s = Parallel.stats pool in
  Alcotest.(check int) "spawned accumulates over batches" 7 s.Parallel.spawned;
  Alcotest.(check int) "completed" 6 s.Parallel.completed;
  Alcotest.(check int) "crashed" 1 s.Parallel.crashed

(* Racing: first conclusive result wins, losers are SIGKILLed. *)
let test_race () =
  let pool = Parallel.create ~jobs:3 () in
  let f = function
    | `Fast -> "fast"
    | `Slow ->
      Unix.sleepf 30.0;
      "slow"
    | `Inconclusive -> "inconclusive"
  in
  let t0 = Unix.gettimeofday () in
  let winner, results =
    Parallel.race pool ~f
      ~conclusive:(fun v -> v <> "inconclusive")
      [ `Inconclusive; `Slow; `Fast ]
  in
  let wall = Unix.gettimeofday () -. t0 in
  (match winner with
  | Some (2, "fast") -> ()
  | Some (i, v) -> Alcotest.failf "wrong winner: slot %d = %s" i v
  | None -> Alcotest.fail "no winner");
  Alcotest.(check bool) "slow loser cancelled, not awaited" true (wall < 10.0);
  Alcotest.(check string) "slow slot reports cancellation" "cancelled"
    (reason_label (List.nth results 1))

(* No process may survive a finished batch: after reaping everything the
   pool owes us, waitpid(-1) must report that this process has no children
   at all. *)
let check_no_children label =
  match Unix.waitpid [ Unix.WNOHANG ] (-1) with
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
  | 0, _ -> Alcotest.failf "%s: a child is still running" label
  | pid, _ -> Alcotest.failf "%s: zombie child %d left behind" label pid

(* Loser cleanup under sustained reuse: 100 races in one pool, each with a
   winner and a SIGKILLed long-sleeping loser.  A single unreaped loser
   anywhere turns up as a zombie (or a live child) at the end. *)
let test_race_loser_reaping () =
  let pool = Parallel.create ~jobs:2 () in
  let f = function
    | `Fast -> "fast"
    | `Slow ->
      Unix.sleepf 30.0;
      "slow"
  in
  for round = 0 to 99 do
    let winner, _ =
      Parallel.race pool ~f ~conclusive:(fun v -> v = "fast") [ `Slow; `Fast ]
    in
    match winner with
    | Some (1, "fast") -> ()
    | _ -> Alcotest.failf "round %d: fast worker should have won" round
  done;
  check_no_children "after 100 races";
  let s = Parallel.stats pool in
  Alcotest.(check int) "every race spawned both workers" 200 s.Parallel.spawned;
  Alcotest.(check int) "every loser accounted as cancelled" 100 s.Parallel.cancelled

(* An exception escaping the drive loop itself — here a raising [conclusive]
   callback — must not abandon the still-running workers. *)
let test_exception_reaps_workers () =
  let pool = Parallel.create ~jobs:2 () in
  let t0 = Unix.gettimeofday () in
  (try
     ignore
       (Parallel.race pool
          ~f:(fun i -> if i = 0 then "quick" else (Unix.sleepf 30.0; "slow"))
          ~conclusive:(fun _ -> failwith "callback boom")
          [ 0; 1 ]);
     Alcotest.fail "callback exception should propagate"
   with Failure msg ->
     Alcotest.(check string) "original exception survives" "callback boom" msg);
  Alcotest.(check bool) "sleeper killed, not awaited" true
    (Unix.gettimeofday () -. t0 < 10.0);
  check_no_children "after aborted race"

(* {2 Differential: forked fan-out never changes a verdict}

   The 50 seeded random memory designs of test_differential.ml (same
   generator constants), verified sequentially and through a 4-worker pool:
   the conclusions must match slot for slot. *)

type cfg = {
  id : int;
  aw : int;
  dw : int;
  wports : int;
  rports : int;
  arbitrary : bool;
  wconsts : int array;
  dconsts : int array;
  rconsts : int array;
  en_bit : int option;
  prop_on_acc : bool;
  target : int;
}

let random_cfg id =
  let st = Random.State.make [| 0x3d1f; id |] in
  let aw = 1 + Random.State.int st 2 in
  let dw = 1 + Random.State.int st 3 in
  let wports = 1 + Random.State.int st 2 in
  let rports = 1 + Random.State.int st 2 in
  let const8 () = Random.State.int st 8 in
  {
    id;
    aw;
    dw;
    wports;
    rports;
    arbitrary = Random.State.bool st;
    wconsts = Array.init wports (fun _ -> const8 ());
    dconsts = Array.init wports (fun _ -> const8 ());
    rconsts = Array.init rports (fun _ -> const8 ());
    en_bit = (if Random.State.bool st then Some (Random.State.int st 3) else None);
    prop_on_acc = Random.State.bool st;
    target = Random.State.int st (1 lsl dw);
  }

let build cfg =
  let ctx = Hdl.create () in
  let init = if cfg.arbitrary then Netlist.Arbitrary else Netlist.Zeros in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:cfg.aw ~data_width:cfg.dw ~init in
  let cnt = Hdl.reg ctx "cnt" ~width:3 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let addr_of c =
    Hdl.select (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~hi:(cfg.aw - 1) ~lo:0
  in
  let data_of c = Hdl.uresize (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~width:cfg.dw in
  let en0 =
    match cfg.en_bit with None -> Netlist.true_ | Some b -> Hdl.bit_of cnt b
  in
  for w = 0 to cfg.wports - 1 do
    let enable = if w = 0 then en0 else Netlist.not_ en0 in
    Hdl.write_port ctx mem ~addr:(addr_of cfg.wconsts.(w)) ~data:(data_of cfg.dconsts.(w))
      ~enable
  done;
  let rds =
    List.init cfg.rports (fun r ->
        Hdl.read_port ctx mem ~addr:(addr_of cfg.rconsts.(r)) ~enable:Netlist.true_)
  in
  let acc = Hdl.reg ctx "acc" ~width:cfg.dw in
  Hdl.connect ctx acc (List.fold_left (Hdl.xor_v ctx) acc rds);
  let watched = if cfg.prop_on_acc then acc else List.hd rds in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx watched cfg.target));
  Hdl.netlist ctx

let options = { Emmver.default_options with Emmver.max_depth = 8 }

let conclusion_signature o =
  Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion

let test_differential_fanout () =
  let ids = List.init 50 Fun.id in
  let verify_one id =
    Emmver.verify ~options ~method_:Emmver.Emm_falsify (build (random_cfg id))
      ~property:"p"
  in
  let sequential = List.map (fun id -> conclusion_signature (verify_one id)) ids in
  let parallel =
    Parallel.map ~jobs:4 ~f:(fun id -> conclusion_signature (verify_one id)) ids
  in
  List.iteri
    (fun id seq ->
      Alcotest.(check string)
        (Printf.sprintf "design %d: -j 4 verdict = sequential verdict" id)
        seq
        (ok_exn (List.nth parallel id)))
    sequential

(* The Emmver surface: verify_many at -j 4 equals the sequential loop on a
   multi-property design, slot for slot. *)
let test_verify_many_differential () =
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  let properties = List.map fst (Netlist.properties net) in
  let options = { Emmver.default_options with Emmver.max_depth = 6 } in
  let sequential =
    List.map
      (fun p ->
        (p, conclusion_signature (Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:p)))
      properties
  in
  let parallel =
    Emmver.verify_many ~options ~jobs:4 ~method_:Emmver.Emm_bmc net ~properties
    |> List.map (fun (p, o) -> (p, conclusion_signature o))
  in
  Alcotest.(check (list (pair string string)))
    "verify_many -j 4 = sequential loop" sequential parallel

(* {2 Tracing through the pool}

   With a recorder installed in the parent, forked workers record events
   locally ([Obs.worker_scope] in the pool's child shim) and marshal them
   back alongside their results; the parent merges them into one
   pid-annotated stream. *)

let with_recorder r f =
  let saved = Obs.current () in
  Obs.set_current (Some r);
  Fun.protect ~finally:(fun () -> Obs.set_current saved) f

let worker_pids rows =
  let parent = Unix.getpid () in
  List.sort_uniq compare
    (List.filter_map (fun (pid, _) -> if pid <> parent then Some pid else None) rows)

let spans_exn rows =
  match Obs.spans rows with
  | Ok s -> s
  | Error e -> Alcotest.failf "span reconstruction failed: %s" e

(* A -j 4 fanout over the 50 seeded designs yields one merged trace: the
   stream validates, and every worker pid contributes a well-formed span
   tree containing a "verify" span whose parents stay within that pid. *)
let test_traced_fanout () =
  let r = Obs.create ~track_alloc:false () in
  let results =
    with_recorder r (fun () ->
        Parallel.map ~jobs:4
          ~f:(fun id ->
            conclusion_signature
              (Emmver.verify ~options ~method_:Emmver.Emm_falsify
                 (build (random_cfg id)) ~property:"p"))
          (List.init 50 Fun.id))
  in
  List.iter (fun res -> ignore (ok_exn res)) results;
  let rows = Obs.rows r in
  (match Obs.validate rows with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace invalid: %s" e);
  let spans = spans_exn rows in
  let pids = worker_pids rows in
  Alcotest.(check bool)
    (Printf.sprintf "many workers contributed (%d pids)" (List.length pids))
    true
    (List.length pids >= 4);
  List.iter
    (fun pid ->
      let mine = List.filter (fun s -> s.Obs.sp_pid = pid) spans in
      Alcotest.(check bool)
        (Printf.sprintf "worker %d contributed spans" pid)
        true (mine <> []);
      Alcotest.(check bool)
        (Printf.sprintf "worker %d recorded a verify span" pid)
        true
        (List.exists (fun s -> s.Obs.sp_name = "verify") mine);
      List.iter
        (fun s ->
          match s.Obs.sp_parent with
          | None -> ()
          | Some idx ->
            Alcotest.(check int)
              (Printf.sprintf "worker %d: enclosing span in same process" pid)
              pid
              (List.nth spans idx).Obs.sp_pid)
        mine)
    pids

(* A SIGKILLed worker marshals nothing back: its partial spans are dropped,
   the merged stream stays valid, and survivors' spans still arrive. *)
let test_sigkill_drops_partial_spans () =
  let r = Obs.create ~track_alloc:false () in
  let results =
    with_recorder r (fun () ->
        Parallel.map ~jobs:3 ~job_timeout_s:0.3
          ~f:(fun i ->
            Obs.span "job" ~attrs:[ ("i", Obs.Int i) ] (fun () ->
                if i = 1 then Unix.sleepf 30.0;
                i))
          [ 0; 1; 2 ])
  in
  Alcotest.(check (list string))
    "only the sleeper dies"
    [ "ok"; "timed_out"; "ok" ]
    (List.map reason_label results);
  let rows = Obs.rows r in
  (match Obs.validate rows with
  | Ok () -> ()
  | Error e -> Alcotest.failf "merged trace corrupted by the kill: %s" e);
  let job_ids =
    List.filter_map
      (fun s ->
        if s.Obs.sp_name = "job" then Obs.attr_int "i" s.Obs.sp_attrs else None)
      (spans_exn rows)
    |> List.sort compare
  in
  Alcotest.(check (list int))
    "killed worker's span dropped, survivors kept"
    [ 0; 2 ] job_ids;
  Alcotest.(check int)
    "exactly the two surviving workers contributed rows"
    2
    (List.length (worker_pids rows))

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map returns in order" `Quick test_basic_map;
          Alcotest.test_case "crash containment (exit/raise/signal)" `Quick
            test_crash_containment;
          Alcotest.test_case "deadline enforced by SIGKILL" `Quick test_deadline_sigkill;
          Alcotest.test_case "order deterministic under random durations" `Quick
            test_order_determinism;
          Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "race cancels losers" `Quick test_race;
          Alcotest.test_case "100 races leave no zombies" `Quick
            test_race_loser_reaping;
          Alcotest.test_case "exception mid-drive reaps workers" `Quick
            test_exception_reaps_workers;
        ] );
      ( "differential",
        [
          Alcotest.test_case "50 seeded designs: -j 4 = sequential" `Quick
            test_differential_fanout;
          Alcotest.test_case "verify_many -j 4 = sequential loop" `Quick
            test_verify_many_differential;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "50-design fanout merges one valid trace" `Quick
            test_traced_fanout;
          Alcotest.test_case "SIGKILLed worker's partial spans dropped" `Quick
            test_sigkill_drops_partial_spans;
        ] );
    ]
