(* Dedicated tests for the explicit memory expansion (BMC-1's model): each
   memory becomes 2^AW x DW latches with mux-tree reads and per-word write
   muxes.  The reference for every behaviour is the cycle-accurate
   [Simulator] running the *original* netlist, which implements the paper's
   semantics directly: reads observe the pre-write contents of the cycle,
   writes become visible one cycle later. *)

let depth_bound = 8

let falsify_config =
  { Bmc.Engine.default_config with max_depth = depth_bound; proof_checks = false }

(* First frame at which property [p] of the closed design fails under
   default (all-zero) initial state, simulator convention: frame k is
   evaluated after k+1 steps. *)
let sim_first_failure net =
  let sim = Simulator.create net in
  let p = Netlist.find_property net "p" in
  let rec go k =
    if k > depth_bound then None
    else begin
      Simulator.step sim ~inputs:(fun _ -> false);
      if not (Simulator.value sim p) then Some k else go (k + 1)
    end
  in
  go 0

let cex_depth = function
  | Bmc.Engine.Counterexample t -> Some t.Bmc.Trace.depth
  | Bmc.Engine.Bounded_safe _ -> None
  | v -> Alcotest.failf "unexpected verdict %s" (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

(* A closed single-port design: write [wdata(cnt)] to a fixed address when
   [we(cnt)], read the same address continuously. *)
let fixed_addr_design ~enable_from ~data ~target =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:3 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let enable = enable_from ctx cnt in
  Hdl.write_port ctx mem ~addr:(Hdl.const ~width:2 1) ~data:(Hdl.const ~width:3 data)
    ~enable;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.const ~width:2 1) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd target));
  Hdl.netlist ctx

let test_read_after_write () =
  (* Always-enabled write of 5: the read sees 0 at frame 0 and 5 from frame 1
     on, in the expansion exactly as in the simulator. *)
  let net = fixed_addr_design ~enable_from:(fun _ _ -> Netlist.true_) ~data:5 ~target:5 in
  Alcotest.(check (option int)) "simulator: visible at frame 1" (Some 1)
    (sim_first_failure net);
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion: visible at frame 1" (Some 1)
    (cex_depth r.Bmc.Engine.verdict);
  match r.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check bool) "trace replays on the expansion" true
      (Bmc.Trace.replay expanded t);
    Alcotest.(check bool) "trace replays on the original" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "expected counterexample"

let test_write_enable_gating () =
  (* Enable = bit 1 of the counter: first enabled write happens at cycle 2,
     so the read first returns the data at frame 3. *)
  let net =
    fixed_addr_design ~enable_from:(fun _ cnt -> Hdl.bit_of cnt 1) ~data:6 ~target:6
  in
  Alcotest.(check (option int)) "simulator: gated write lands at frame 3" (Some 3)
    (sim_first_failure net);
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion: gated write lands at frame 3" (Some 3)
    (cex_depth r.Bmc.Engine.verdict)

let test_write_enable_tied_off () =
  (* Enable tied to false: the memory never changes, the property is safe for
     the whole bound. *)
  let net =
    fixed_addr_design
      ~enable_from:(fun _ _ -> Netlist.not_ Netlist.true_)
      ~data:5 ~target:5
  in
  Alcotest.(check (option int)) "simulator: never fails" None (sim_first_failure net);
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion: never fails" None
    (cex_depth r.Bmc.Engine.verdict)

let test_disabled_read_drives_zero () =
  (* Paper contract: a read port whose enable is low drives 0, in the
     simulator and in the expansion alike. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  let cnt = Hdl.reg ctx "cnt" ~width:3 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  Hdl.write_port ctx mem ~addr:(Hdl.const ~width:2 1) ~data:(Hdl.const ~width:3 7)
    ~enable:Netlist.true_;
  let re = Hdl.bit_of cnt 0 in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.const ~width:2 1) ~enable:re in
  (* rd = 7 requires the enable: fails first at the first odd frame after the
     write, i.e. frame 1. *)
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 7));
  let net = Hdl.netlist ctx in
  Alcotest.(check (option int)) "simulator" (Some 1) (sim_first_failure net);
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion" (Some 1) (cex_depth r.Bmc.Engine.verdict)

(* {2 Initial-state expansion} *)

let test_structure_and_init () =
  (* 2^AW x DW latches, named m<addr>[bit], inheriting the memory's initial
     state: Zeros memories expand to initialised latches, Arbitrary to
     arbitrary-init latches. *)
  let build init =
    let ctx = Hdl.create () in
    let mem = Hdl.memory ctx ~name:"m" ~addr_width:3 ~data_width:4 ~init in
    let a = Hdl.input ctx "a" ~width:3 in
    ignore (Hdl.read_port ctx mem ~addr:a ~enable:Netlist.true_);
    Hdl.assert_always ctx "p" Netlist.true_;
    Hdl.netlist ctx
  in
  let count_latches init =
    let expanded = Explicitmem.expand (build init) in
    List.length (Netlist.latches expanded)
  in
  Alcotest.(check int) "2^3 x 4 latches (zeros)" 32 (count_latches Netlist.Zeros);
  Alcotest.(check int) "2^3 x 4 latches (arbitrary)" 32 (count_latches Netlist.Arbitrary)

let test_arbitrary_init_expansion () =
  (* With arbitrary initial contents the expansion must let the solver pick
     any initial word: "rd <> 6" is falsifiable at frame 0, and the trace
     replays on the expansion (which carries the chosen latch values). *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Arbitrary in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 6));
  let net = Hdl.netlist ctx in
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  match r.Bmc.Engine.verdict with
  | Bmc.Engine.Counterexample t ->
    Alcotest.(check int) "found at frame 0" 0 t.Bmc.Trace.depth;
    Alcotest.(check bool) "replays with the chosen initial state" true
      (Bmc.Trace.replay expanded t)
  | v ->
    Alcotest.failf "expected counterexample, got %s"
      (Format.asprintf "%a" Bmc.Engine.pp_verdict v)

let test_zeros_init_expansion () =
  (* The same design with zero-initialised contents is safe: no initial
     state can make the never-written location non-zero. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 6));
  let net = Hdl.netlist ctx in
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "safe" None (cex_depth r.Bmc.Engine.verdict)

let test_words_init_expansion () =
  (* Concrete initial words are supported by the expansion (unlike EMM,
     which rejects them): the read observes the initialised word at frame
     0. *)
  let ctx = Hdl.create () in
  let mem =
    Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3
      ~init:(Netlist.Words [| 4; 1; 2; 7 |])
  in
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.const ~width:2 3) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 7));
  let net = Hdl.netlist ctx in
  Alcotest.(check (option int)) "simulator observes word 7 at frame 0" (Some 0)
    (sim_first_failure net);
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion observes word 7 at frame 0" (Some 0)
    (cex_depth r.Bmc.Engine.verdict)

(* {2 Port-order write resolution}

   The expansion folds write ports in order, the later-listed port's mux
   wrapping the earlier one — matching the simulator's resolution when two
   enabled writes hit the same address. *)
let test_same_address_write_priority () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:3 ~init:Netlist.Zeros in
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 3)
    ~enable:Netlist.true_;
  Hdl.write_port ctx mem ~addr:(Hdl.zero ~width:2) ~data:(Hdl.const ~width:3 5)
    ~enable:Netlist.true_;
  let rd = Hdl.read_port ctx mem ~addr:(Hdl.zero ~width:2) ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 5));
  let net = Hdl.netlist ctx in
  let sim_verdict = sim_first_failure net in
  let expanded = Explicitmem.expand net in
  let r = Bmc.Engine.check ~config:falsify_config expanded ~property:"p" in
  Alcotest.(check (option int)) "expansion resolves the race like the simulator"
    sim_verdict
    (cex_depth r.Bmc.Engine.verdict)

let () =
  Alcotest.run "explicitmem"
    [
      ( "unit",
        [
          Alcotest.test_case "read-after-write timing" `Quick test_read_after_write;
          Alcotest.test_case "write-enable gating" `Quick test_write_enable_gating;
          Alcotest.test_case "write enable tied off" `Quick test_write_enable_tied_off;
          Alcotest.test_case "disabled read drives zero" `Quick
            test_disabled_read_drives_zero;
          Alcotest.test_case "expansion structure and init" `Quick test_structure_and_init;
          Alcotest.test_case "arbitrary initial state" `Quick test_arbitrary_init_expansion;
          Alcotest.test_case "zeros initial state" `Quick test_zeros_init_expansion;
          Alcotest.test_case "concrete words initial state" `Quick test_words_init_expansion;
          Alcotest.test_case "same-address write priority" `Quick
            test_same_address_write_priority;
        ] );
    ]
