(* Concurrency battery for the in-process Domain portfolio (lib/portfolio).

   Three layers of defence, mirroring the risk profile of racing CDCL
   instances over shared state:

   - the exchange buffer is model-checked: random concurrent publish/drain
     schedules from up to 8 domains are compared against the sequential
     reference semantics (exactly-once, in-order, no torn clauses, never
     evicting an unread entry);

   - verdicts are differentially tested: the 50 seeded random memory
     designs of [test_differential] run through the portfolio (sharing on
     and off) and must answer exactly what sequential solving answers;

   - the safety net itself is mutation-tested: a fault-injection switch
     corrupts every imported clause, and the battery must notice — if it
     does not, the differential net would also miss a real sharing bug. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit
module Exchange = Portfolio.Exchange
open Diffgen

(* {2 Exchange buffer: sequential semantics} *)

let clause_list = Alcotest.(list (list int))
let show_clauses cs = List.map (List.map Lit.to_dimacs) cs

let test_exchange_single_consumer () =
  (* Degenerate single-domain portfolio: the one consumer only ever sees
     its own clauses, so drains are empty — but cursors still advance, so
     the ring never wedges. *)
  let ex = Exchange.create ~consumers:1 ~capacity:4 in
  for i = 0 to 3 do
    Alcotest.(check bool) "publish into free slot" true
      (Exchange.publish ex ~owner:0 [ Lit.of_var i true ])
  done;
  Alcotest.(check bool) "5th publish refused (ring full)" false
    (Exchange.publish ex ~owner:0 [ Lit.of_var 4 true ]);
  Alcotest.check clause_list "own clauses are filtered" []
    (show_clauses (Exchange.drain ex 0));
  Alcotest.(check bool) "drain freed the ring" true
    (Exchange.publish ex ~owner:0 [ Lit.of_var 4 true ]);
  let s = Exchange.stats ex in
  Alcotest.(check int) "published" 5 s.Exchange.published;
  Alcotest.(check int) "dropped" 1 s.Exchange.dropped;
  Alcotest.(check int) "delivered" 0 s.Exchange.delivered

let test_exchange_order_and_filtering () =
  let ex = Exchange.create ~consumers:3 ~capacity:16 in
  let c0a = [ Lit.of_var 1 true ]
  and c0b = [ Lit.of_var 2 true; Lit.of_var 3 false ]
  and c1a = [ Lit.of_var 4 false ] in
  assert (Exchange.publish ex ~owner:0 c0a);
  assert (Exchange.publish ex ~owner:0 c0b);
  assert (Exchange.publish ex ~owner:1 c1a);
  Alcotest.check clause_list "consumer 2 sees all, in publication order"
    (show_clauses [ c0a; c0b; c1a ])
    (show_clauses (Exchange.drain ex 2));
  Alcotest.check clause_list "consumer 0 sees only peer clauses"
    (show_clauses [ c1a ])
    (show_clauses (Exchange.drain ex 0));
  Alcotest.check clause_list "consumer 1 sees only peer clauses"
    (show_clauses [ c0a; c0b ])
    (show_clauses (Exchange.drain ex 1));
  Alcotest.check clause_list "second drain is empty" []
    (show_clauses (Exchange.drain ex 2));
  let s = Exchange.stats ex in
  Alcotest.(check int) "delivered = 3 + 1 + 2" 6 s.Exchange.delivered

let test_exchange_never_evicts () =
  let ex = Exchange.create ~consumers:2 ~capacity:2 in
  assert (Exchange.publish ex ~owner:0 [ Lit.of_var 1 true ]);
  assert (Exchange.publish ex ~owner:0 [ Lit.of_var 2 true ]);
  Alcotest.(check bool) "full: refused" false
    (Exchange.publish ex ~owner:0 [ Lit.of_var 3 true ]);
  Alcotest.(check int) "consumer 1 drains both" 2
    (List.length (Exchange.drain ex 1));
  (* Consumer 0 (the slowest cursor) still has not read — the slot is
     protected even though owner 0 would only ever skip it. *)
  Alcotest.(check bool) "still full while any cursor lags" false
    (Exchange.publish ex ~owner:0 [ Lit.of_var 3 true ]);
  ignore (Exchange.drain ex 0);
  Alcotest.(check bool) "both cursors caught up: admitted" true
    (Exchange.publish ex ~owner:0 [ Lit.of_var 3 true ])

(* {2 Exchange buffer: concurrent model check}

   Every domain [k] runs a schedule of publishes (its clauses carry
   [owner * 1000 + serial] in the first literal and a checksum literal, so
   torn or cross-wired clauses are detectable) interleaved with drains.
   After the domains join, the main domain drains the remainders and checks
   the outcome against the sequential reference model: consumer [k]
   received exactly the successfully-published clauses of every other
   owner, exactly once, in each owner's publication order, contents
   intact.  The interleaving is whatever the scheduler produced — the
   invariants are schedule-independent, which is what makes the test
   deterministic in verdict. *)

let encode ~owner ~serial =
  let v = (owner * 1000) + serial in
  [ Lit.of_var v true; Lit.of_var (v + 100_000) false ]

let decode = function
  | [ l1; l2 ]
    when Lit.sign l1 && (not (Lit.sign l2)) && Lit.var l2 = Lit.var l1 + 100_000 ->
    Some (Lit.var l1 / 1000, Lit.var l1 mod 1000)
  | _ -> None

let concurrent_exchange_invariant (consumers, capacity, pubs, drain_every) =
  let ex = Exchange.create ~consumers ~capacity in
  let ok = Array.make consumers [||] in
  let recv = Array.make consumers [] in
  let worker k () =
    let sent = Array.make pubs false in
    for serial = 0 to pubs - 1 do
      sent.(serial) <- Exchange.publish ex ~owner:k (encode ~owner:k ~serial);
      if serial mod drain_every = 0 then
        recv.(k) <- recv.(k) @ Exchange.drain ex k
    done;
    ok.(k) <- sent
  in
  let doms = List.init (consumers - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join doms;
  for k = 0 to consumers - 1 do
    recv.(k) <- recv.(k) @ Exchange.drain ex k
  done;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let seen = Hashtbl.create 64 in
  for k = 0 to consumers - 1 do
    let last_serial = Array.make consumers (-1) in
    List.iter
      (fun clause ->
        match decode clause with
        | None -> fail "consumer %d received a torn clause" k
        | Some (owner, serial) ->
          if owner = k then fail "consumer %d received its own clause" k;
          if owner < 0 || owner >= consumers || serial >= pubs then
            fail "consumer %d received alien clause %d/%d" k owner serial
          else begin
            if not ok.(owner).(serial) then
              fail "consumer %d received dropped clause %d/%d" k owner serial;
            if Hashtbl.mem seen (k, owner, serial) then
              fail "consumer %d received %d/%d twice" k owner serial;
            Hashtbl.add seen (k, owner, serial) ();
            if serial <= last_serial.(owner) then
              fail "consumer %d saw %d/%d out of order" k owner serial;
            last_serial.(owner) <- serial
          end)
      recv.(k);
    (* Exactly-once: everything successfully published by a peer arrived. *)
    for owner = 0 to consumers - 1 do
      if owner <> k then
        Array.iteri
          (fun serial sent ->
            if sent && not (Hashtbl.mem seen (k, owner, serial)) then
              fail "consumer %d never received %d/%d" k owner serial)
          ok.(owner)
    done
  done;
  let s = Exchange.stats ex in
  let published =
    Array.fold_left
      (fun acc sent ->
        acc + Array.fold_left (fun a b -> if b then a + 1 else a) 0 sent)
      0 ok
  in
  if s.Exchange.published <> published then
    fail "stats.published %d <> successful publishes %d" s.Exchange.published
      published;
  let delivered = Array.fold_left (fun acc l -> acc + List.length l) 0 recv in
  if s.Exchange.delivered <> delivered then
    fail "stats.delivered %d <> clauses received %d" s.Exchange.delivered delivered;
  match !failures with
  | [] -> true
  | fs -> QCheck2.Test.fail_report (String.concat "\n" fs)

let exchange_model_test =
  QCheck2.Test.make ~count:30
    ~name:"concurrent publish/drain schedules match the sequential model"
    QCheck2.Gen.(
      quad (int_range 2 8) (int_range 1 16) (int_range 1 25) (int_range 1 5))
    concurrent_exchange_invariant

(* {2 Differential battery: portfolio verdicts = sequential verdicts}

   Two sweeps of 50 seeds each, both against sequential solving:

   - the random memory designs of [test_differential] through [Bmc.Engine]
     with the portfolio enabled — these exercise the replay/race machinery
     over real BMC queries (assumptions, incremental clauses, multi-race
     lifecycles), but they are propagation-solved, so no clauses are learnt
     and the exchange stays idle;

   - random 3-SAT instances near the phase transition straight through
     {!Portfolio.solve} — these conflict heavily, so the exchange carries
     real traffic (the test asserts imports happened), and the verdicts
     must still match a fresh sequential solver.  Each seed races twice:
     the second race's solve-entry drain makes imports deterministic, not
     scheduler-dependent. *)

let portfolio_config ~share ?(share_lbd_max = 2) ?(corrupt = false) () =
  {
    Portfolio.default_config with
    Portfolio.domains = 4;
    share;
    share_lbd_max;
    corrupt_imports = corrupt;
  }

let check_with pcfg net =
  let config = { falsify_config with Bmc.Engine.portfolio = pcfg } in
  let result, _ = Emm.check ~config net ~property:"p" in
  result

let test_differential_portfolio () =
  for id = 0 to 49 do
    let net = build (random_cfg id) in
    let seq = signature (check_with None net).Bmc.Engine.verdict in
    let shared =
      signature
        (check_with (Some (portfolio_config ~share:true ())) net).Bmc.Engine.verdict
    in
    let unshared =
      signature
        (check_with (Some (portfolio_config ~share:false ())) net).Bmc.Engine.verdict
    in
    if shared <> seq then
      Alcotest.failf "design %d: portfolio(share) %s <> sequential %s" id shared seq;
    if unshared <> seq then
      Alcotest.failf "design %d: portfolio(no-share) %s <> sequential %s" id
        unshared seq
  done

(* The latch-poor regime with proof checks on: termination queries carry the
   memory-state distinctness assumptions, so racing them through the
   portfolio must preserve both the verdict and the proved depth. *)
let test_latch_poor_portfolio () =
  let check pcfg net =
    let config =
      { Bmc.Engine.default_config with max_depth = 12; portfolio = pcfg }
    in
    signature (fst (Emm.check ~config net ~property:"p")).Bmc.Engine.verdict
  in
  for id = 0 to 11 do
    let net = build (latch_poor_cfg id) in
    let seq = check None net in
    let shared = check (Some (portfolio_config ~share:true ())) net in
    let unshared = check (Some (portfolio_config ~share:false ())) net in
    if shared <> seq then
      Alcotest.failf "latch-poor %d: portfolio(share) %s <> sequential %s" id
        shared seq;
    if unshared <> seq then
      Alcotest.failf "latch-poor %d: portfolio(no-share) %s <> sequential %s" id
        unshared seq
  done

let random_3sat seed n m =
  let st = Random.State.make [| 0xbeef; seed |] in
  List.init m (fun _ ->
      let rec pick acc k =
        if k = 0 then acc
        else
          let v = Random.State.int st n in
          if List.exists (fun l -> Lit.var l = v) acc then pick acc k
          else pick (Lit.of_var v (Random.State.bool st) :: acc) (k - 1)
      in
      pick [] 3)

let sat_n = 60
let sat_m = 252 (* clause ratio 4.2: mixed sat/unsat, conflict-heavy *)

let load_3sat s seed =
  Solver.ensure_vars s sat_n;
  List.iter (Solver.add_clause s) (random_3sat seed sat_n sat_m)

let sequential_verdict seed =
  let s = Solver.create () in
  load_3sat s seed;
  Solver.solve s

let test_raw_differential_sharing () =
  let imports = ref 0 in
  for seed = 0 to 49 do
    let reference = sequential_verdict seed in
    List.iter
      (fun share ->
        let s = Solver.create () in
        let p =
          Portfolio.create
            ~config:(portfolio_config ~share ~share_lbd_max:30 ())
            s
        in
        load_3sat s seed;
        for race = 1 to 2 do
          if Portfolio.solve p <> reference then
            Alcotest.failf "seed %d race %d (share=%b): verdict differs from \
                            sequential" seed race share
        done;
        if share then
          imports := !imports + (Portfolio.merged_stats p).Solver.shared_in)
      [ true; false ]
  done;
  if !imports = 0 then
    Alcotest.fail "sharing sweep never imported a clause: the net is vacuous"

(* {2 Mutation test: the battery catches a corrupted import}

   First the deterministic core: a corrupted import flips a SAT verdict on
   a two-line formula, so the import path really is on the soundness
   boundary.  Then the battery-level claim: with [corrupt_imports] negating
   the first literal of every imported clause, the 50-seed 3-SAT sweep must
   import clauses and must catch divergences — either as a verdict mismatch
   against sequential solving or as the portfolio's own agreement tripwire
   ([Failure]).  A sharing bug that corrupts clauses in flight is exactly
   this fault, so a green mutation run would mean the net has a hole in it.
   (Measured: 15-19 of the 50 seeds diverge per run; the assertion asks for
   at least one, so scheduler variation has three orders of margin.) *)

let test_mutation_direct () =
  let sat () =
    let s = Solver.create () in
    Solver.ensure_vars s 2;
    Solver.add_clause s [ Lit.of_var 0 true; Lit.of_var 1 true ];
    s
  in
  let s = sat () in
  Alcotest.(check bool) "formula is satisfiable" true (Solver.solve s = Solver.Sat);
  let s = sat () in
  Alcotest.(check int) "implied import is admitted" 1
    (Solver.import_clauses s [ [ Lit.of_var 0 true; Lit.of_var 1 true ] ]);
  Alcotest.(check bool) "still satisfiable" true (Solver.solve s = Solver.Sat);
  let s = sat () in
  (* The corrupted units [~x0], [~x1] are not implied: importing them must
     flip the verdict, which is what [corrupt_imports] provokes at scale. *)
  ignore
    (Solver.import_clauses s [ [ Lit.of_var 0 false ]; [ Lit.of_var 1 false ] ]);
  Alcotest.(check bool) "corrupted import flips the verdict" true
    (Solver.solve s = Solver.Unsat)

let test_mutation_battery () =
  let imports = ref 0 in
  let divergences = ref 0 in
  for seed = 0 to 49 do
    let reference = sequential_verdict seed in
    let s = Solver.create () in
    let p =
      Portfolio.create
        ~config:(portfolio_config ~share:true ~share_lbd_max:30 ~corrupt:true ())
        s
    in
    load_3sat s seed;
    let detected =
      try
        (* Two races: race 1 fills the persistent exchange, race 2's
           solve-entry drain then imports corrupted clauses for certain. *)
        let a = Portfolio.solve p in
        let b = Portfolio.solve p in
        a <> reference || b <> reference
      with Failure _ ->
        (* Two instances finished with different answers: the agreement
           tripwire fired, which is a caught divergence too. *)
        true
    in
    imports := !imports + (Portfolio.merged_stats p).Solver.shared_in;
    if detected then incr divergences
  done;
  if !imports = 0 then
    Alcotest.fail "mutation run never imported a clause: the sweep is vacuous";
  if !divergences = 0 then
    Alcotest.failf
      "corrupted imports went undetected over 50 seeds (%d imports): the \
       differential battery has a hole"
      !imports

(* {2 Cancellation, teardown, churn} *)

let pigeonhole_clauses pigeons holes =
  let v p h = Lit.of_var ((p * holes) + h) true in
  let at_least_one = List.init pigeons (fun p -> List.init holes (fun h -> v p h)) in
  let at_most_one =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p ->
            List.filter_map
              (fun q ->
                if q > p then Some [ Lit.negate (v p h); Lit.negate (v q h) ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  (pigeons * holes, at_least_one @ at_most_one)

let load_pigeonhole s pigeons holes =
  let nvars, clauses = pigeonhole_clauses pigeons holes in
  Solver.ensure_vars s nvars;
  List.iter (Solver.add_clause s) clauses

let test_stop_flag_observed () =
  (* A pre-set stop flag must make the solver back out at its first
     periodic check instead of grinding through the refutation. *)
  let s = Solver.create () in
  load_pigeonhole s 9 8;
  let stop = Atomic.make true in
  Solver.set_stop s (Some stop);
  let t0 = Unix.gettimeofday () in
  (match Solver.solve s with
  | exception Solver.Stopped -> ()
  | Solver.Sat | Solver.Unsat -> Alcotest.fail "expected Stopped");
  let elapsed = Unix.gettimeofday () -. t0 in
  Alcotest.(check bool)
    (Printf.sprintf "backed out promptly (%.3fs)" elapsed)
    true (elapsed < 1.0);
  (* The flag is live state, not a one-shot: clearing it restores the
     solver, which must then answer normally. *)
  Atomic.set stop false;
  Alcotest.(check bool) "solver recovers once the flag clears" true
    (Solver.solve s = Solver.Unsat)

let test_race_losers_join () =
  (* The race only returns after every loser joined; a loser that ignored
     the stop flag would show up as a hang (the CI-level timeout) or as a
     domain leak in the churn test below.  php-8-7 is hard enough that all
     four instances are mid-search when the winner finishes. *)
  let s = Solver.create () in
  let p = Portfolio.create ~config:(portfolio_config ~share:true ()) s in
  load_pigeonhole s 8 7;
  Alcotest.(check bool) "portfolio refutes php-8-7" true
    (Portfolio.solve p = Solver.Unsat);
  let w = Portfolio.winner p in
  Alcotest.(check bool) "winner recorded" true (w >= 0 && w < 4)

let test_race_churn_no_leak () =
  (* 100 back-to-back races, 3 spawned domains each.  The runtime caps live
     domains (around 128): if solve ever failed to join its losers, the
     accumulated live domains would make a later spawn raise — so mere
     completion is the leak assertion. *)
  let s = Solver.create () in
  let p = Portfolio.create ~config:(portfolio_config ~share:true ()) s in
  load_pigeonhole s 5 4;
  for _ = 1 to 100 do
    Alcotest.(check bool) "churn race verdict" true (Portfolio.solve p = Solver.Unsat)
  done;
  Alcotest.(check int) "all races accounted" 100 (Portfolio.races p)

let test_model_adopted_from_winner () =
  let s = Solver.create () in
  let p = Portfolio.create ~config:(portfolio_config ~share:true ()) s in
  (* Satisfiable implication chain: whoever wins, the primary must expose a
     model that satisfies every clause. *)
  Solver.ensure_vars s 10;
  let clauses =
    List.init 9 (fun i -> [ Lit.of_var i true; Lit.of_var (i + 1) false ])
  in
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "chain is satisfiable" true (Portfolio.solve p = Solver.Sat);
  List.iter
    (fun clause ->
      Alcotest.(check bool) "model satisfies clause" true
        (List.exists (fun l -> Solver.value s l) clause))
    clauses

(* {2 Certification under the portfolio}

   With [certify] the engine forces sharing off (imported clauses are not
   RUP in the importer's DRAT log) but keeps racing; the winner's
   self-contained log must still check.  Differential seeds 0 and 4 cover
   both certificate shapes (a replayed counterexample and a DRAT-checked
   bounded-safe answer). *)

let test_certified_under_portfolio () =
  List.iter
    (fun id ->
      let net = build (random_cfg id) in
      let options =
        {
          Emmver.default_options with
          Emmver.max_depth = depth_bound;
          certify = true;
          domains = 4;
        }
      in
      let o = Emmver.verify ~options ~method_:Emmver.Emm_bmc net ~property:"p" in
      (match o.Emmver.certificate with
      | Cert.Certified _ -> ()
      | c ->
        Alcotest.failf "design %d: expected a certificate, got %s" id (Cert.label c));
      match o.Emmver.solver_stats with
      | None -> Alcotest.fail "no solver stats"
      | Some s ->
        Alcotest.(check int)
          (Printf.sprintf "design %d: no imports under certification" id)
          0 s.Solver.shared_in)
    [ 0; 4 ]

let () =
  Alcotest.run "portfolio"
    [
      ( "exchange",
        [
          Alcotest.test_case "single-consumer degenerate case" `Quick
            test_exchange_single_consumer;
          Alcotest.test_case "publication order and owner filtering" `Quick
            test_exchange_order_and_filtering;
          Alcotest.test_case "full ring refuses instead of evicting" `Quick
            test_exchange_never_evicts;
          QCheck_alcotest.to_alcotest exchange_model_test;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "50 designs: portfolio = sequential (share on+off)"
            `Quick test_differential_portfolio;
          Alcotest.test_case "latch-poor proofs: portfolio = sequential" `Quick
            test_latch_poor_portfolio;
          Alcotest.test_case "50 3-SAT seeds: sharing races = sequential" `Quick
            test_raw_differential_sharing;
          Alcotest.test_case "corrupted import flips a verdict (direct)" `Quick
            test_mutation_direct;
          Alcotest.test_case "corrupted imports are caught by the battery" `Quick
            test_mutation_battery;
          Alcotest.test_case "certified verdicts race but never import" `Quick
            test_certified_under_portfolio;
        ] );
      ( "teardown",
        [
          Alcotest.test_case "pre-set stop flag backs the solver out" `Quick
            test_stop_flag_observed;
          Alcotest.test_case "losers join and a winner is recorded" `Quick
            test_race_losers_join;
          Alcotest.test_case "100-race churn leaks no domains" `Quick
            test_race_churn_no_leak;
          Alcotest.test_case "winning model is adopted by the primary" `Quick
            test_model_adopted_from_winner;
        ] );
    ]
