(* Tests for the structured observability layer (lib/obs).

   Everything runs against an injected fixed clock and [~track_alloc:false],
   so no test depends on wall-clock readings or on how much the runtime
   happens to allocate: exporter output is byte-reproducible and asserted
   as such. *)

let fixed_recorder ?(pid = 7) () =
  Obs.create ~clock:(Obs.Clock.fixed ()) ~pid ~track_alloc:false ()

(* Run [f] with [r] installed as the current recorder, restoring whatever
   was current before — keeps test cases independent. *)
let with_recorder r f =
  let saved = Obs.current () in
  Obs.set_current (Some r);
  Fun.protect f ~finally:(fun () -> Obs.set_current saved)

let check_ok what = function
  | Ok _ -> ()
  | Error why -> Alcotest.failf "%s: unexpectedly invalid: %s" what why

let check_error what = function
  | Ok _ -> Alcotest.failf "%s: unexpectedly valid" what
  | Error _ -> ()

(* {2 Clocks} *)

let test_fixed_clock () =
  let c = Obs.Clock.fixed ~start:10.0 ~step:0.5 () in
  Alcotest.(check (float 1e-9)) "first" 10.0 (c ());
  Alcotest.(check (float 1e-9)) "second" 10.5 (c ());
  Alcotest.(check (float 1e-9)) "third" 11.0 (c ())

let test_now_disabled_is_wall () =
  Obs.set_current None;
  (* No recorder: [now] must fall back to a real clock, i.e. something in
     the last/next decade rather than the fixed clock's small integers. *)
  Alcotest.(check bool) "wall-clock magnitude" true (Obs.now () > 1e9)

(* {2 Span nesting} *)

let test_span_nesting () =
  let r = fixed_recorder () in
  with_recorder r (fun () ->
      Obs.span "a" (fun () ->
          Obs.span "b" (fun () -> Obs.instant "p");
          Obs.span "c" (fun () -> ())));
  let rows = Obs.rows r in
  check_ok "nested spans" (Obs.validate rows);
  match Obs.spans rows with
  | Error why -> Alcotest.fail why
  | Ok spans ->
    let names = List.map (fun s -> s.Obs.sp_name) spans in
    Alcotest.(check (list string)) "begin order" [ "a"; "b"; "c" ] names;
    let levels = List.map (fun s -> s.Obs.sp_level) spans in
    Alcotest.(check (list int)) "levels" [ 0; 1; 1 ] levels;
    let parents = List.map (fun s -> s.Obs.sp_parent) spans in
    Alcotest.(check (list (option int))) "parents" [ None; Some 0; Some 0 ] parents;
    (* Strict containment: every child's interval lies inside its parent's. *)
    let arr = Array.of_list spans in
    List.iter
      (fun sp ->
        match sp.Obs.sp_parent with
        | None -> ()
        | Some p ->
          Alcotest.(check bool) "starts after parent" true
            (sp.Obs.sp_start >= arr.(p).Obs.sp_start);
          Alcotest.(check bool) "stops before parent" true
            (sp.Obs.sp_stop <= arr.(p).Obs.sp_stop))
      spans

let test_span_result_and_exception () =
  let r = fixed_recorder () in
  with_recorder r (fun () ->
      Alcotest.(check int) "span returns" 42 (Obs.span "ok" (fun () -> 42));
      (* A raising span must still emit its End row (balanced stream). *)
      (try Obs.span "boom" (fun () -> failwith "x") with Failure _ -> ());
      Alcotest.(check (list string)) "no open spans" [] (Obs.open_spans r));
  check_ok "balanced after exception" (Obs.validate (Obs.rows r))

let test_orphan_end_detected () =
  let bad = [ (1, Obs.End { name = "ghost"; ts = 0.0; alloc_words = 0.0 }) ] in
  check_error "orphan end" (Obs.validate bad)

let test_name_mismatch_detected () =
  let bad =
    [
      (1, Obs.Begin { name = "a"; ts = 0.0; attrs = [] });
      (1, Obs.End { name = "b"; ts = 1.0; alloc_words = 0.0 });
    ]
  in
  check_error "mismatched end" (Obs.validate bad)

let test_unclosed_span_detected () =
  let bad = [ (1, Obs.Begin { name = "a"; ts = 0.0; attrs = [] }) ] in
  check_error "span left open" (Obs.validate bad)

let test_backwards_time_detected () =
  let bad =
    [
      (1, Obs.Begin { name = "a"; ts = 5.0; attrs = [] });
      (1, Obs.End { name = "a"; ts = 1.0; alloc_words = 0.0 });
    ]
  in
  check_error "time runs backwards" (Obs.validate bad)

let test_close_open_spans () =
  let r = fixed_recorder () in
  with_recorder r (fun () ->
      (* Simulate a run cut short mid-span (the at_exit path). *)
      ignore
        (try
           Obs.span "outer" (fun () ->
               (* open a span by hand, bypassing Fun.protect *)
               ignore (Obs.span "inner" (fun () -> ()));
               raise Exit)
         with Exit -> ()));
  Obs.close_open_spans r;
  check_ok "closed" (Obs.validate (Obs.rows r))

(* {2 Counters} *)

let test_counter_monotone () =
  let r = fixed_recorder () in
  with_recorder r (fun () ->
      Obs.counter_add "c" 3;
      Obs.counter_add "c" (-100);
      (* ignored *)
      Obs.counter_add "c" 2;
      Obs.counter_set "g" 10.0;
      Obs.counter_set "g" 4.0;
      (* clamped: stays at 10 *)
      Obs.counter_set "g" 12.5);
  let rows = Obs.rows r in
  check_ok "counters monotone" (Obs.validate rows);
  let values name =
    List.filter_map
      (function
        | _, Obs.Count { name = n; value; _ } when n = name -> Some value
        | _ -> None)
      rows
  in
  Alcotest.(check (list (float 1e-9))) "adds" [ 3.0; 3.0; 5.0 ] (values "c");
  Alcotest.(check (list (float 1e-9))) "sets" [ 10.0; 10.0; 12.5 ] (values "g")

let test_nonmonotone_counter_detected () =
  let bad =
    [
      (1, Obs.Count { name = "c"; ts = 0.0; value = 5.0 });
      (1, Obs.Count { name = "c"; ts = 1.0; value = 4.0 });
    ]
  in
  check_error "counter went backwards" (Obs.validate bad)

let test_counters_per_pid () =
  (* The same counter name on different pids is independent. *)
  let rows =
    [
      (1, Obs.Count { name = "c"; ts = 0.0; value = 5.0 });
      (2, Obs.Count { name = "c"; ts = 1.0; value = 1.0 });
    ]
  in
  check_ok "per-pid counters" (Obs.validate rows)

(* {2 Disabled layer} *)

let test_disabled_noops () =
  Obs.set_current None;
  Alcotest.(check bool) "disabled" false (Obs.enabled ());
  Alcotest.(check int) "span passthrough" 9 (Obs.span "x" (fun () -> 9));
  Obs.instant "nothing";
  Obs.counter_add "nothing" 1;
  Obs.counter_set "nothing" 1.0;
  let v, rows = Obs.worker_scope (fun () -> 5) in
  Alcotest.(check int) "worker passthrough" 5 v;
  Alcotest.(check int) "no rows" 0 (List.length rows)

(* {2 Worker merging} *)

let test_worker_scope_and_ingest () =
  let parent = fixed_recorder ~pid:1 () in
  with_recorder parent (fun () ->
      Obs.span "parent-work" (fun () -> ());
      let (), worker_rows =
        Obs.worker_scope (fun () -> Obs.span "child-work" (fun () -> ()))
      in
      (* worker_scope clears the current recorder (it runs in a forked child
         in production); reinstall the parent as the pool would have it. *)
      Obs.set_current (Some parent);
      Alcotest.(check bool) "worker produced rows" true (worker_rows <> []);
      (* Re-pid the rows as if they came from another process, then merge. *)
      let worker_rows = List.map (fun (_, ev) -> (2, ev)) worker_rows in
      Obs.ingest_current worker_rows);
  let rows = Obs.rows parent in
  check_ok "merged" (Obs.validate rows);
  match Obs.spans rows with
  | Error why -> Alcotest.fail why
  | Ok spans ->
    let by_pid p = List.filter (fun s -> s.Obs.sp_pid = p) spans in
    Alcotest.(check int) "parent spans" 1 (List.length (by_pid 1));
    Alcotest.(check int) "worker spans" 1 (List.length (by_pid 2))

(* {2 Domain merging}

   The portfolio's shape: the parent recorder forks one token per racing
   domain, each domain records its own spans into a domain-local recorder
   ([domain_scope]), and the parent ingests the returned rows after the
   join.  The merged trace must validate and keep one distinct synthetic
   pid per domain.  A wall clock, not the fixed one: [Clock.fixed] is
   documented single-domain-only (it mutates unsynchronised state). *)

let test_domain_scope_and_ingest () =
  let parent = Obs.create ~pid:1 ~track_alloc:false () in
  with_recorder parent (fun () ->
      Obs.span "race" (fun () ->
          let spawned =
            List.init 3 (fun k ->
                let token = Obs.domain_fork () in
                Domain.spawn (fun () ->
                    Obs.domain_scope token (fun () ->
                        Obs.span "instance" (fun () ->
                            Obs.counter_add "work" (k + 1)))))
          in
          List.iter
            (fun d ->
              let (), rows = Domain.join d in
              Alcotest.(check bool) "domain produced rows" true (rows <> []);
              Obs.ingest_current rows)
            spawned));
  let rows = Obs.rows parent in
  check_ok "merged multi-domain trace validates" (Obs.validate rows);
  match Obs.spans rows with
  | Error why -> Alcotest.fail why
  | Ok spans ->
    let pids =
      List.sort_uniq compare (List.map (fun s -> s.Obs.sp_pid) spans)
    in
    Alcotest.(check int) "parent + 3 domain pids" 4 (List.length pids);
    Alcotest.(check int) "one instance span per domain" 3
      (List.length (List.filter (fun s -> s.Obs.sp_name = "instance") spans))

let test_domain_fork_disabled_is_none () =
  Obs.set_current None;
  Alcotest.(check bool) "no recorder: no token" true (Obs.domain_fork () = None);
  let v, rows = Obs.domain_scope None (fun () -> 11) in
  Alcotest.(check int) "passthrough" 11 v;
  Alcotest.(check int) "no rows" 0 (List.length rows)

let test_interleaved_pids_validate () =
  (* Ingested rows appear after the parent's even though their timestamps
     interleave; validation is per-pid so this must pass. *)
  let rows =
    [
      (1, Obs.Begin { name = "a"; ts = 0.0; attrs = [] });
      (1, Obs.End { name = "a"; ts = 10.0; alloc_words = 0.0 });
      (2, Obs.Begin { name = "b"; ts = 3.0; attrs = [] });
      (2, Obs.End { name = "b"; ts = 4.0; alloc_words = 0.0 });
    ]
  in
  check_ok "per-pid streams" (Obs.validate rows)

(* {2 Exporters} *)

(* A fixed small workload used by the golden and determinism tests. *)
let record_workload () =
  let r = fixed_recorder () in
  with_recorder r (fun () ->
      Obs.span "run" ~attrs:[ ("design", Obs.Str "quick\"sort") ] (fun () ->
          Obs.span "depth" ~attrs:[ ("k", Obs.Int 0) ] (fun () ->
              Obs.counter_add "clauses" 12;
              Obs.instant "note" ~attrs:[ ("ok", Obs.Bool true) ])));
  r

let export_string fmt r =
  let b = Buffer.create 256 in
  Obs.export fmt b (Obs.rows r);
  Buffer.contents b

let test_deterministic_exports () =
  (* Two runs, two fresh fixed clocks: identical bytes, both formats. *)
  let a = record_workload () and b = record_workload () in
  Alcotest.(check string) "chrome identical"
    (export_string Obs.Chrome a) (export_string Obs.Chrome b);
  Alcotest.(check string) "jsonl identical"
    (export_string Obs.Jsonl a) (export_string Obs.Jsonl b)

let test_chrome_golden_parses_back () =
  let r = record_workload () in
  let text = export_string Obs.Chrome r in
  match Obs.Json.parse text with
  | Error why -> Alcotest.failf "chrome trace is not JSON: %s" why
  | Ok doc ->
    let events =
      match Obs.Json.member "traceEvents" doc with
      | Some (Obs.Json.Arr evs) -> evs
      | _ -> Alcotest.fail "no traceEvents array"
    in
    (* 2 Begin + 2 End + 1 Count + 1 Instant *)
    Alcotest.(check int) "event count" 6 (List.length events);
    let field name ev =
      match Obs.Json.member name ev with
      | Some v -> v
      | None -> Alcotest.failf "event missing %S" name
    in
    let phases =
      List.map
        (fun ev ->
          match field "ph" ev with
          | Obs.Json.Str s -> s
          | _ -> Alcotest.fail "ph not a string")
        events
    in
    Alcotest.(check (list string)) "phases" [ "B"; "B"; "C"; "i"; "E"; "E" ] phases;
    List.iter
      (fun ev ->
        (match field "ts" ev with
        | Obs.Json.Num ts -> Alcotest.(check bool) "ts >= 0" true (ts >= 0.0)
        | _ -> Alcotest.fail "ts not a number");
        match (field "pid" ev, field "tid" ev) with
        | Obs.Json.Num p, Obs.Json.Num t ->
          Alcotest.(check (float 0.0)) "pid = tid" p t
        | _ -> Alcotest.fail "pid/tid not numbers")
      events;
    (* First event is the "run" Begin at relative ts 0 with its attr intact
       (exercises string escaping both ways). *)
    (match events with
    | first :: _ ->
      (match field "ts" first with
      | Obs.Json.Num ts -> Alcotest.(check (float 0.0)) "starts at 0us" 0.0 ts
      | _ -> Alcotest.fail "ts not a number");
      (match Obs.Json.member "args" first with
      | Some args -> (
        match Obs.Json.member "design" args with
        | Some (Obs.Json.Str s) ->
          Alcotest.(check string) "escaped attr roundtrips" "quick\"sort" s
        | _ -> Alcotest.fail "design attr missing")
      | None -> Alcotest.fail "args missing")
    | [] -> Alcotest.fail "no events");
    (* End events carry the allocation delta. *)
    let ends =
      List.filter
        (fun ev ->
          match field "ph" ev with Obs.Json.Str "E" -> true | _ -> false)
        events
    in
    List.iter
      (fun ev ->
        match Obs.Json.member "args" ev with
        | Some args -> (
          match Obs.Json.member "alloc_words" args with
          | Some (Obs.Json.Num 0.0) -> ()
          | Some (Obs.Json.Num n) ->
            Alcotest.failf "alloc tracked despite track_alloc:false: %g" n
          | _ -> Alcotest.fail "no alloc_words")
        | None -> Alcotest.fail "End without args")
      ends

let test_jsonl_lines_parse () =
  let r = record_workload () in
  let text = export_string Obs.Jsonl r in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "line count" 6 (List.length lines);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok (Obs.Json.Obj _) -> ()
      | Ok _ -> Alcotest.fail "line is not an object"
      | Error why -> Alcotest.failf "bad jsonl line %S: %s" line why)
    lines

let test_format_of_path () =
  Alcotest.(check bool) "jsonl" true (Obs.format_of_path "t.jsonl" = Obs.Jsonl);
  Alcotest.(check bool) "json" true (Obs.format_of_path "t.json" = Obs.Chrome);
  Alcotest.(check bool) "other" true (Obs.format_of_path "trace" = Obs.Chrome)

let test_write_file_roundtrip () =
  let r = record_workload () in
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.write_file path r;
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.parse text with
      | Ok doc ->
        Alcotest.(check bool) "has traceEvents" true
          (Obs.Json.member "traceEvents" doc <> None)
      | Error why -> Alcotest.failf "file not parseable: %s" why)

(* {2 run_with_trace} *)

let test_run_with_trace_writes () =
  let path = Filename.temp_file "obs_rwt" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let v =
        Obs.run_with_trace ~clock:(Obs.Clock.fixed ()) ~out:path ~label:"root"
          (fun () ->
            Obs.span "inner" (fun () -> ());
            17)
      in
      Alcotest.(check int) "result" 17 v;
      Alcotest.(check bool) "recorder uninstalled" false (Obs.enabled ());
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Obs.Json.parse text with
      | Ok doc -> (
        match Obs.Json.member "traceEvents" doc with
        | Some (Obs.Json.Arr evs) ->
          Alcotest.(check int) "root+inner spans" 4 (List.length evs)
        | _ -> Alcotest.fail "no traceEvents")
      | Error why -> Alcotest.failf "not JSON: %s" why)

let test_run_with_trace_disabled () =
  (* No out and no env var: pure passthrough, no recorder installed. *)
  Unix.putenv Obs.trace_env_var "";
  let v = Obs.run_with_trace ~label:"root" (fun () -> Obs.enabled ()) in
  Alcotest.(check bool) "stayed disabled" false v

(* {2 The Json reader} *)

let test_json_values () =
  let p s =
    match Obs.Json.parse s with
    | Ok v -> v
    | Error why -> Alcotest.failf "parse %S: %s" s why
  in
  Alcotest.(check bool) "null" true (p "null" = Obs.Json.Null);
  Alcotest.(check bool) "true" true (p "true" = Obs.Json.Bool true);
  Alcotest.(check bool) "int" true (p "42" = Obs.Json.Num 42.0);
  Alcotest.(check bool) "neg float" true (p "-1.5e2" = Obs.Json.Num (-150.0));
  Alcotest.(check bool) "string" true (p {|"a\"b\\c\n"|} = Obs.Json.Str "a\"b\\c\n");
  Alcotest.(check bool) "unicode escape" true (p {|"\u0041"|} = Obs.Json.Str "A");
  Alcotest.(check bool) "array" true
    (p "[1, 2]" = Obs.Json.Arr [ Obs.Json.Num 1.0; Obs.Json.Num 2.0 ]);
  Alcotest.(check bool) "nested object" true
    (p {| {"a": {"b": []}, "c": 1} |}
    = Obs.Json.Obj
        [ ("a", Obs.Json.Obj [ ("b", Obs.Json.Arr []) ]); ("c", Obs.Json.Num 1.0) ])

let test_json_errors () =
  List.iter
    (fun s ->
      match Obs.Json.parse s with
      | Ok _ -> Alcotest.failf "parse %S should fail" s
      | Error _ -> ())
    [ ""; "{"; "[1,"; "\"unterminated"; "tru"; "{\"a\" 1}"; "1 2"; "{,}" ]

let test_json_member () =
  match Obs.Json.parse {|{"x": 1}|} with
  | Ok doc ->
    Alcotest.(check bool) "present" true
      (Obs.Json.member "x" doc = Some (Obs.Json.Num 1.0));
    Alcotest.(check bool) "absent" true (Obs.Json.member "y" doc = None)
  | Error why -> Alcotest.fail why

(* {2 Property tests} *)

(* Any balanced nesting program produces a validating stream; generate one
   as a random tree of span calls. *)
let test_random_nesting =
  QCheck.Test.make ~name:"random span trees validate" ~count:100
    QCheck.(small_list (int_bound 2))
    (fun shape ->
      let r = fixed_recorder () in
      with_recorder r (fun () ->
          List.iter
            (fun depth ->
              let rec go d =
                if d <= 0 then Obs.instant "leaf"
                else Obs.span (Printf.sprintf "s%d" d) (fun () -> go (d - 1))
              in
              go depth)
            shape);
      match Obs.validate (Obs.rows r) with Ok () -> true | Error _ -> false)

let () =
  Alcotest.run "obs"
    [
      ( "clock",
        [
          Alcotest.test_case "fixed clock" `Quick test_fixed_clock;
          Alcotest.test_case "now falls back to wall" `Quick test_now_disabled_is_wall;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and containment" `Quick test_span_nesting;
          Alcotest.test_case "result and exception safety" `Quick
            test_span_result_and_exception;
          Alcotest.test_case "orphan end" `Quick test_orphan_end_detected;
          Alcotest.test_case "name mismatch" `Quick test_name_mismatch_detected;
          Alcotest.test_case "unclosed span" `Quick test_unclosed_span_detected;
          Alcotest.test_case "backwards time" `Quick test_backwards_time_detected;
          Alcotest.test_case "close_open_spans" `Quick test_close_open_spans;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotone semantics" `Quick test_counter_monotone;
          Alcotest.test_case "non-monotone detected" `Quick
            test_nonmonotone_counter_detected;
          Alcotest.test_case "independent per pid" `Quick test_counters_per_pid;
        ] );
      ( "disabled",
        [ Alcotest.test_case "everything no-ops" `Quick test_disabled_noops ] );
      ( "workers",
        [
          Alcotest.test_case "scope and ingest" `Quick test_worker_scope_and_ingest;
          Alcotest.test_case "interleaved pid streams" `Quick
            test_interleaved_pids_validate;
          Alcotest.test_case "multi-domain scope and ingest" `Quick
            test_domain_scope_and_ingest;
          Alcotest.test_case "domain fork no-ops when disabled" `Quick
            test_domain_fork_disabled_is_none;
        ] );
      ( "export",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_deterministic_exports;
          Alcotest.test_case "chrome golden parses back" `Quick
            test_chrome_golden_parses_back;
          Alcotest.test_case "jsonl lines parse" `Quick test_jsonl_lines_parse;
          Alcotest.test_case "format of path" `Quick test_format_of_path;
          Alcotest.test_case "write_file roundtrip" `Quick test_write_file_roundtrip;
        ] );
      ( "run_with_trace",
        [
          Alcotest.test_case "writes the trace" `Quick test_run_with_trace_writes;
          Alcotest.test_case "disabled passthrough" `Quick
            test_run_with_trace_disabled;
        ] );
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "member" `Quick test_json_member;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest test_random_nesting ] );
    ]
