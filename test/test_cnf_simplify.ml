(* Tests for the simplifying unroller: structural-hash idempotence,
   constant folding soundness, polarity-aware emission, latch aliasing, and
   the savings telemetry — all against the plain paper-faithful encoding
   and the cycle-accurate simulator. *)

module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

(* The latch-and-logic design of test_cnf, memory-free. *)
let build_design () =
  let ctx = Hdl.create () in
  let d = Hdl.input ctx "d" ~width:4 in
  let en = Hdl.input_bit ctx "en" in
  let acc = Hdl.reg ctx "acc" ~width:4 in
  let cnt = Hdl.reg ctx "cnt" ~width:4 in
  Hdl.connect ctx acc (Hdl.mux2 ctx en (Hdl.add ctx acc d) acc);
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let probe = Hdl.xor_v ctx acc cnt in
  Hdl.output ctx "probe" probe;
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx probe 15));
  (Hdl.netlist ctx, probe)

let all_signals net =
  List.concat
    [
      Netlist.latches net;
      List.map snd (Netlist.properties net);
      List.map snd (Netlist.outputs net);
    ]

(* Re-encoding a frame that has already been elaborated must be free: every
   literal is found in the frame map or the structural hash, so no variable
   and no clause is added. *)
let test_reencoding_is_free () =
  let net, probe = build_design () in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  for frame = 0 to 3 do
    List.iter (fun s -> ignore (Cnf.lit unr ~frame s)) (all_signals net);
    Array.iter (fun s -> ignore (Cnf.lit unr ~frame s)) probe
  done;
  let vars = Solver.num_vars solver in
  let clauses = Cnf.clauses_added unr in
  let lits_before =
    List.init 4 (fun frame -> List.map (Cnf.lit unr ~frame) (all_signals net))
  in
  (* Second pass over the same frames and signals. *)
  for frame = 0 to 3 do
    List.iter (fun s -> ignore (Cnf.lit unr ~frame s)) (all_signals net);
    Array.iter (fun s -> ignore (Cnf.lit unr ~frame s)) probe
  done;
  Alcotest.(check int) "no new variables" vars (Solver.num_vars solver);
  Alcotest.(check int) "no new clauses" clauses (Cnf.clauses_added unr);
  let lits_after =
    List.init 4 (fun frame -> List.map (Cnf.lit unr ~frame) (all_signals net))
  in
  Alcotest.(check bool) "identical literals" true (lits_before = lits_after)

(* The same holds for and_lit: the structural hash returns the same literal
   for the same (sorted) leaf set, without re-encoding. *)
let test_and_lit_hashed () =
  let net, _ = build_design () in
  let solver = Solver.create () in
  let unr = Cnf.create solver net in
  let a = Cnf.fresh_lit unr and b = Cnf.fresh_lit unr and c = Cnf.fresh_lit unr in
  let v1 = Cnf.and_lit unr [ a; b; c ] in
  let vars = Solver.num_vars solver in
  let clauses = Cnf.clauses_added unr in
  let v2 = Cnf.and_lit unr [ c; a; b ] in
  Alcotest.(check bool) "same literal for permuted leaves" true (v1 = v2);
  Alcotest.(check int) "no new variables" vars (Solver.num_vars solver);
  Alcotest.(check int) "no new clauses" clauses (Cnf.clauses_added unr);
  (* Folding: true drops, duplicate drops, complement cancels. *)
  Alcotest.(check bool) "unit conjunction is the literal" true
    (Cnf.and_lit unr [ a ] = a);
  Alcotest.(check bool) "duplicates collapse" true (Cnf.and_lit unr [ a; a ] = a);
  let f = Cnf.and_lit unr [ a; Lit.negate a ] in
  Alcotest.(check bool) "complement pair is false" true
    (Solver.solve ~assumptions:[ f ] solver = Solver.Unsat);
  let t = Cnf.and_lit unr [] in
  Alcotest.(check bool) "empty conjunction is true" true
    (Solver.solve ~assumptions:[ Lit.negate t ] solver = Solver.Unsat)

(* Folded latch-init constants: with [fold_init] the frame-0 value of an
   initialised latch is a constant literal, and the model stays sound. *)
let test_fold_init_sound () =
  let ctx = Hdl.create () in
  let r = Hdl.reg ctx ~init:(Some 5) "r" ~width:3 in
  Hdl.connect ctx r (Hdl.incr ctx r);
  Hdl.assert_always ctx "p" Netlist.true_;
  let net = Hdl.netlist ctx in
  let solver = Solver.create () in
  let unr = Cnf.create ~fold_init:true ~track_reasons:false solver net in
  let latches = Netlist.latches net in
  let bit0 = Cnf.lit unr ~frame:0 (List.nth latches 0) in
  let bit1 = Cnf.lit unr ~frame:0 (List.nth latches 1) in
  (* r = 5 = 101b: folded unconditionally, act_init not even needed. *)
  Alcotest.(check bool) "bit0 constant true" true
    (Solver.solve ~assumptions:[ Lit.negate bit0 ] solver = Solver.Unsat);
  Alcotest.(check bool) "bit1 constant false" true
    (Solver.solve ~assumptions:[ bit1 ] solver = Solver.Unsat);
  (* The folded constants feed the next-state logic: r = 6 at frame 1. *)
  let v frame =
    match Solver.solve ~assumptions:[ Cnf.act_init unr ] solver with
    | Solver.Unsat -> Alcotest.fail "unexpected UNSAT"
    | Solver.Sat ->
      List.fold_left
        (fun acc (i, s) ->
          if Solver.value solver (Cnf.lit unr ~frame s) then acc lor (1 lsl i) else acc)
        0
        (List.mapi (fun i s -> (i, s)) latches)
  in
  ignore (Cnf.lit unr ~frame:1 (List.hd latches));
  Alcotest.(check int) "frame 1 value" 6 (v 1);
  Alcotest.(check int) "frame 3 value" 0 (v 3)

(* Full-machine equivalence under the falsification-mode encoder (folding,
   aliasing, polarity): every probe bit at every frame must match the
   simulator, exactly like the plain encoder does in test_cnf. *)
let prop_simplify_matches_simulator =
  QCheck2.Test.make ~count:60 ~name:"simplifying CNF = simulator"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_bound 15) bool))
    (fun stimulus ->
      let net, probe = build_design () in
      let solver = Solver.create () in
      let unr = Cnf.create ~fold_init:true ~track_reasons:false solver net in
      let assumptions = ref [ Cnf.act_init unr ] in
      List.iteri
        (fun frame (d, en) ->
          List.iter
            (fun s ->
              match Netlist.node net (Netlist.node_of s) with
              | Netlist.Input name ->
                let value =
                  match String.index_opt name '[' with
                  | None -> en
                  | Some br ->
                    let idx =
                      int_of_string
                        (String.sub name (br + 1) (String.length name - br - 2))
                    in
                    (d lsr idx) land 1 = 1
                in
                let l = Cnf.lit unr ~frame s in
                assumptions := (if value then l else Lit.negate l) :: !assumptions
              | _ -> ())
            (Netlist.inputs net))
        stimulus;
      let frames = List.length stimulus in
      let probe_lits =
        List.init frames (fun frame -> Array.map (Cnf.lit unr ~frame) probe)
      in
      match Solver.solve ~assumptions:!assumptions solver with
      | Solver.Unsat -> false
      | Solver.Sat ->
        let sim = Simulator.create net in
        List.for_all2
          (fun (d, en) lits ->
            Simulator.step sim ~inputs:(fun name ->
                match String.index_opt name '[' with
                | None -> en
                | Some br ->
                  let idx =
                    int_of_string
                      (String.sub name (br + 1) (String.length name - br - 2))
                  in
                  (d lsr idx) land 1 = 1);
            Array.for_all2
              (fun s l -> Simulator.value sim s = Solver.value solver l)
              probe lits)
          stimulus probe_lits)

(* The savings telemetry: on a real design the simplifying encoder must be
   strictly smaller than the plain baseline it accounts against, and the
   engine must thread the numbers through to its stats. *)
let test_savings_reported () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  let config =
    { Bmc.Engine.default_config with max_depth = 6; proof_checks = false }
  in
  let result, counts = Emm.check ~config net ~property:"P1" in
  let stats = result.Bmc.Engine.stats in
  Alcotest.(check bool) "unroller saves variables" true (stats.Bmc.Engine.vars_saved > 0);
  Alcotest.(check bool) "unroller saves clauses" true
    (stats.Bmc.Engine.clauses_saved > 0);
  Alcotest.(check bool) "EMM layer saves variables" true (counts.Emm.saved_vars > 0);
  Alcotest.(check bool) "EMM layer saves clauses" true (counts.Emm.saved_clauses > 0);
  Alcotest.(check bool) "encode time measured" true (stats.Bmc.Engine.encode_time >= 0.0);
  (* Plain mode reports zero savings. *)
  let plain = { config with Bmc.Engine.simplify = false } in
  let result, counts = Emm.check ~config:plain net ~property:"P1" in
  Alcotest.(check int) "plain unroller saves nothing" 0
    result.Bmc.Engine.stats.Bmc.Engine.vars_saved;
  Alcotest.(check int) "plain EMM saves nothing" 0 counts.Emm.saved_clauses

(* Both encoders must agree on proofs as well as counterexamples; quicksort
   P1 is an induction proof in the seed suite. *)
let test_proof_parity () =
  let net = Designs.Quicksort.build (Designs.Quicksort.default_config ~n:3) in
  let config = { Bmc.Engine.default_config with max_depth = 40 } in
  let verdict cfg =
    let result, _ = Emm.check ~config:cfg net ~property:"P1" in
    match result.Bmc.Engine.verdict with
    | Bmc.Engine.Proof _ -> "proof"
    | Bmc.Engine.Counterexample _ -> "cex"
    | _ -> "inconclusive"
  in
  Alcotest.(check string) "simplify proves" "proof" (verdict config);
  Alcotest.(check string) "plain proves" "proof"
    (verdict { config with Bmc.Engine.simplify = false })

let () =
  Alcotest.run "cnf-simplify"
    [
      ( "unit",
        [
          Alcotest.test_case "re-encoding a frame is free" `Quick
            test_reencoding_is_free;
          Alcotest.test_case "and_lit hashed and folded" `Quick test_and_lit_hashed;
          Alcotest.test_case "fold_init constants sound" `Quick test_fold_init_sound;
          Alcotest.test_case "savings telemetry" `Quick test_savings_reported;
          Alcotest.test_case "proof parity with plain encoder" `Quick
            test_proof_parity;
        ] );
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_simplify_matches_simulator ] );
    ]
