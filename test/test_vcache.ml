(* Verification-result cache tests: canonical cone fingerprints (stability
   under construction order, sensitivity to every semantic knob), on-disk
   store correctness (cold = warm over the 50-seed differential net, tamper
   and forgery degrade to misses, DRAT re-check on certified hits),
   concurrent-writer safety, and intra-batch structural dedup. *)

let tmp_store label =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "emmver-vcache-test-%d-%s" (Unix.getpid ()) label)
  in
  (* Stale leftovers from a killed previous run must not pollute us. *)
  ignore (Vcache.clear (Vcache.config ~dir ()));
  dir

let drop_store dir =
  ignore (Vcache.clear (Vcache.config ~dir ()));
  try Unix.rmdir dir with _ -> ()

let options ?(certify = false) ?(max_depth = 8) ?cache_dir () =
  {
    Emmver.default_options with
    Emmver.max_depth;
    certify;
    cache = cache_dir <> None;
    cache_dir;
  }

let conclusion_str (o : Emmver.outcome) =
  Format.asprintf "%a" Emmver.pp_conclusion o.Emmver.conclusion

let sig_of net = Netlist.cone_signature net (Netlist.find_property net "p")

(* {2 Fingerprint stability and sensitivity} *)

(* Two memories used symmetrically plus an XOR cone.  [flip] permutes every
   construction choice that must NOT matter: node-id offsets (padding
   inputs first), memory creation order, XOR argument order. *)
let order_design flip =
  let ctx = Hdl.create () in
  if flip then ignore (Hdl.input ctx "pad" ~width:5);
  let mk name = Hdl.memory ctx ~name ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let ma, mb =
    if flip then
      let b = mk "mb" in
      let a = mk "ma" in
      (a, b)
    else
      let a = mk "ma" in
      let b = mk "mb" in
      (a, b)
  in
  let wa = Hdl.input ctx "wa" ~width:2 in
  let wd = Hdl.input ctx "wd" ~width:2 in
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx ma ~addr:wa ~data:wd ~enable:we;
  Hdl.write_port ctx mb ~addr:wa ~data:wd ~enable:(Netlist.not_ we);
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rda = Hdl.read_port ctx ma ~addr:ra ~enable:Netlist.true_ in
  let rdb = Hdl.read_port ctx mb ~addr:ra ~enable:Netlist.true_ in
  let x = if flip then Hdl.xor_v ctx rdb rda else Hdl.xor_v ctx rda rdb in
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx x 0);
  Hdl.netlist ctx

let test_construction_order_invariance () =
  Alcotest.(check string)
    "same cone, permuted construction" (sig_of (order_design false))
    (sig_of (order_design true))

(* One knob per variant; every variant must move the fingerprint. *)
let knob_design ?(target = 0) ?(init = Netlist.Zeros) ?(dw = 2) ?(latch_init = Some 0)
    () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:dw ~init in
  let wa = Hdl.input ctx "wa" ~width:2 in
  let wd = Hdl.input ctx "wd" ~width:dw in
  let we = Hdl.input_bit ctx "we" in
  Hdl.write_port ctx mem ~addr:wa ~data:wd ~enable:we;
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  let seen = Hdl.reg ctx ~init:latch_init "seen" ~width:1 in
  Hdl.connect ctx seen (Hdl.or_v ctx seen (Hdl.uresize wd ~width:1));
  let viol = [| Netlist.not_ (Hdl.eq_const ctx rd target) |] in
  let bad = Hdl.and_v ctx seen viol in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.bit_of bad 0));
  Hdl.netlist ctx

let test_fingerprint_sensitivity () =
  let base = sig_of (knob_design ()) in
  let distinct what s =
    if String.equal base s then Alcotest.failf "%s did not change the fingerprint" what
  in
  distinct "gate constant flip" (sig_of (knob_design ~target:1 ()));
  distinct "memory init descriptor" (sig_of (knob_design ~init:Netlist.Arbitrary ()));
  distinct "memory data width" (sig_of (knob_design ~dw:3 ()));
  distinct "latch initial value" (sig_of (knob_design ~latch_init:(Some 1) ()));
  distinct "latch arbitrary init" (sig_of (knob_design ~latch_init:None ()))

let test_key_attrs_sensitivity () =
  let net = knob_design () in
  let key o m =
    match Emmver.cache_key o ~method_:m net ~property:"p" with
    | Some k -> Vcache.Key.to_hex k
    | None -> Alcotest.fail "no key for an existing property"
  in
  let o = options ~cache_dir:"unused" () in
  let base = key o Emmver.Emm_bmc in
  Alcotest.(check bool)
    "method changes the key" false
    (String.equal base (key o Emmver.Explicit_bmc));
  Alcotest.(check bool)
    "depth changes the key" false
    (String.equal base (key (options ~max_depth:9 ~cache_dir:"unused" ()) Emmver.Emm_bmc));
  Alcotest.(check bool)
    "certify does not change the key" true
    (String.equal base (key (options ~certify:true ~cache_dir:"unused" ()) Emmver.Emm_bmc));
  (* The encoder generation is an attribute of Key.make like any other. *)
  let cone = sig_of net in
  let k v = Vcache.Key.to_hex (Vcache.Key.make ~cone ~attrs:[ ("encoder", v) ]) in
  Alcotest.(check bool) "encoder mode changes the key" false (String.equal (k "1") (k "2"));
  Alcotest.(check string)
    "attribute order does not change the key"
    (Vcache.Key.to_hex
       (Vcache.Key.make ~cone ~attrs:[ ("a", "1"); ("b", "2") ]))
    (Vcache.Key.to_hex
       (Vcache.Key.make ~cone ~attrs:[ ("b", "2"); ("a", "1") ]))

let test_unknown_property_has_no_key () =
  let net = knob_design () in
  match Emmver.cache_key (options ~cache_dir:"unused" ()) ~method_:Emmver.Emm_bmc net ~property:"ghost" with
  | None -> ()
  | Some _ -> Alcotest.fail "expected no key for an unknown property"

(* {2 Store correctness} *)

let test_cold_equals_warm_differential () =
  let dir = tmp_store "differential" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let opts = options ~cache_dir:dir () in
  let check label net =
    let cold = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
    let warm = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
    Alcotest.(check string)
      (Printf.sprintf "%s: warm conclusion = cold" label)
      (conclusion_str cold) (conclusion_str warm);
    (if cold.Emmver.cache <> Emmver.Cache_miss then
       Alcotest.failf "%s: cold run was not a recorded miss" label);
    if warm.Emmver.cache <> Emmver.Cache_hit then
      Alcotest.failf "%s: warm run missed (%s)" label (conclusion_str warm)
  in
  for id = 0 to 49 do
    check (Printf.sprintf "design %d" id) (Diffgen.build (Diffgen.random_cfg id))
  done;
  (* The latch-poor regime: proved-depth-bearing entries must round-trip
     just like falsifications. *)
  for id = 0 to 11 do
    check
      (Printf.sprintf "latch-poor %d" id)
      (Diffgen.build (Diffgen.latch_poor_cfg id))
  done

(* The encoder-generation attribute in action: an entry recorded under the
   previous generation ("1", latch-only loop-free-path distinctness) keys
   differently and must silently miss after the bump — its proved depths
   can be wrong on latch-poor designs, so replaying it would launder an
   over-proof through the cache. *)
let test_pre_bump_entry_misses () =
  let dir = tmp_store "generation" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let net = knob_design () in
  let opts = options ~cache_dir:dir () in
  Alcotest.(check bool)
    "the generation was bumped past \"1\"" false
    (String.equal Emmver.encoding_version "1");
  let key encoder =
    Vcache.Key.make ~cone:(sig_of net)
      ~attrs:[ ("engine", "emm"); ("max_depth", "8"); ("encoder", encoder) ]
  in
  (* The replica attrs above must track the live attribute set, or the
     planted entry below would miss for the wrong reason. *)
  (match Emmver.cache_key opts ~method_:Emmver.Emm_bmc net ~property:"p" with
  | Some k ->
    Alcotest.(check string) "replica key matches the live attrs"
      (Vcache.Key.to_hex k)
      (Vcache.Key.to_hex (key Emmver.encoding_version))
  | None -> Alcotest.fail "no key");
  let cfg = Option.get (Emmver.cache_config opts) in
  Vcache.store cfg (key "1")
    {
      Vcache.e_method = "emm";
      e_verdict = Vcache.Proved { depth = 0; induction = false };
      e_time_s = 0.0;
      e_solve_time_s = 0.0;
      e_model_vars = 0;
      e_model_clauses = 0;
      e_model_latches = 0;
      e_cert = "unchecked";
      e_created = 0.0;
      e_payload = Vcache.No_payload;
    };
  let o = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  if o.Emmver.cache <> Emmver.Cache_miss then
    Alcotest.fail "pre-bump entry was served across the generation bump"

let test_certified_hit_rechecks_drat () =
  let dir = tmp_store "drat" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  (* A provable design: a never-written zero memory reads zero.  The
     toggling register gives the loop-free-path check state to close over,
     so the proof lands by forward diameter. *)
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Zeros in
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  let tick = Hdl.reg ctx "tick" ~width:1 in
  Hdl.connect ctx tick (Hdl.not_v tick);
  Hdl.assert_always ctx "p" (Hdl.eq_const ctx rd 0);
  let net = Hdl.netlist ctx in
  let opts = options ~certify:true ~cache_dir:dir () in
  let cold = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  (match cold.Emmver.certificate with
  | Cert.Certified Cert.Drat_checked -> ()
  | c -> Alcotest.failf "cold certificate: %s" (Cert.label c));
  let warm = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  Alcotest.(check string) "warm conclusion" (conclusion_str cold) (conclusion_str warm);
  (if warm.Emmver.cache <> Emmver.Cache_hit then Alcotest.fail "expected a cache hit");
  (match warm.Emmver.certificate with
  | Cert.Certified Cert.Drat_checked -> ()
  | c -> Alcotest.failf "warm hit not re-certified: %s" (Cert.label c));
  if warm.Emmver.proof_steps <= 0 then
    Alcotest.fail "re-check replayed no proof steps";
  (* An entry recorded without evidence cannot satisfy --certify: honest
     re-solve, not a trusting hit. *)
  let dir2 = tmp_store "drat-nopayload" in
  Fun.protect ~finally:(fun () -> drop_store dir2) @@ fun () ->
  let plain = options ~cache_dir:dir2 () in
  let _ = Emmver.verify ~options:plain ~method_:Emmver.Emm_bmc net ~property:"p" in
  let demand = options ~certify:true ~cache_dir:dir2 () in
  let o = Emmver.verify ~options:demand ~method_:Emmver.Emm_bmc net ~property:"p" in
  (if o.Emmver.cache <> Emmver.Cache_miss then
     Alcotest.fail "payload-free entry must not satisfy a certify demand");
  match o.Emmver.certificate with
  | Cert.Certified Cert.Drat_checked -> ()
  | c -> Alcotest.failf "re-solve not certified: %s" (Cert.label c)

(* A memory that latches any nonzero write and a property that a read can
   never return 3: falsifiable, so the cache entry carries a trace. *)
let falsifiable_design () =
  let ctx = Hdl.create () in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:2 ~data_width:2 ~init:Netlist.Arbitrary in
  let wa = Hdl.input ctx "wa" ~width:2 in
  let wd = Hdl.input ctx "wd" ~width:2 in
  Hdl.write_port ctx mem ~addr:wa ~data:wd ~enable:Netlist.true_;
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rd = Hdl.read_port ctx mem ~addr:ra ~enable:Netlist.true_ in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx rd 3));
  Hdl.netlist ctx

let test_checksum_tamper_is_a_miss () =
  let dir = tmp_store "tamper" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let net = falsifiable_design () in
  let opts = options ~cache_dir:dir () in
  let cold = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  let key =
    match Emmver.cache_key opts ~method_:Emmver.Emm_bmc net ~property:"p" with
    | Some k -> k
    | None -> Alcotest.fail "no key"
  in
  let path = Filename.concat dir (Vcache.Key.to_hex key ^ ".json") in
  let ic = open_in_bin path in
  let data = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* Flip one byte in the middle of the body. *)
  let bytes = Bytes.of_string data in
  let mid = Bytes.length bytes / 2 in
  Bytes.set bytes mid (if Bytes.get bytes mid = 'x' then 'y' else 'x');
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  let cfg = Option.get (Emmver.cache_config opts) in
  (match Vcache.load cfg key with
  | None -> ()
  | Some _ -> Alcotest.fail "tampered entry loaded");
  let again = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  (if again.Emmver.cache <> Emmver.Cache_miss then
     Alcotest.fail "tampered entry must be a miss");
  Alcotest.(check string) "re-solved verdict" (conclusion_str cold) (conclusion_str again)

let test_forged_trace_is_stale () =
  let dir = tmp_store "forged" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let net = falsifiable_design () in
  let opts = options ~cache_dir:dir () in
  let key =
    match Emmver.cache_key opts ~method_:Emmver.Emm_bmc net ~property:"p" with
    | Some k -> k
    | None -> Alcotest.fail "no key"
  in
  let cfg = Option.get (Emmver.cache_config opts) in
  (* A checksum-valid entry whose trace is nonsense: the replay gate must
     reject it and the engine must solve fresh. *)
  let forged : Bmc.Trace.t =
    {
      Bmc.Trace.property = "p";
      depth = 0;
      inputs = [| [ ("no_such_input", true) ] |];
      latch0 = [];
      mem_init = [];
      watch = [];
    }
  in
  Vcache.store cfg key
    {
      Vcache.e_method = "emm";
      e_verdict = Vcache.Falsified { depth = 0 };
      e_time_s = 0.0;
      e_solve_time_s = 0.0;
      e_model_vars = 0;
      e_model_clauses = 0;
      e_model_latches = 0;
      e_cert = "unchecked";
      e_created = 0.0;
      e_payload = Vcache.Trace_payload forged;
    };
  let o = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  (if o.Emmver.cache <> Emmver.Cache_miss then
     Alcotest.fail "forged trace must not be served");
  (match o.Emmver.conclusion with
  | Emmver.Falsified { genuine = Some true; _ } -> ()
  | c ->
    Alcotest.failf "expected genuine falsification, got %s"
      (Format.asprintf "%a" Emmver.pp_conclusion c));
  (* The stale entry was evicted and replaced by the honest one. *)
  match Vcache.load cfg key with
  | Some { Vcache.e_payload = Vcache.Trace_payload t; _ } ->
    Alcotest.(check bool) "replaced trace replays" true (Bmc.Trace.replay net t)
  | _ -> Alcotest.fail "honest entry not recorded after eviction"

let test_stats_gc_clear () =
  let dir = tmp_store "admin" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let cfg = Vcache.config ~dir () in
  let entry v =
    {
      Vcache.e_method = "emm";
      e_verdict = v;
      e_time_s = 1.0;
      e_solve_time_s = 0.5;
      e_model_vars = 10;
      e_model_clauses = 20;
      e_model_latches = 3;
      e_cert = "unchecked";
      e_created = 0.0;
      e_payload = Vcache.No_payload;
    }
  in
  let key i = Vcache.Key.make ~cone:"c" ~attrs:[ ("i", string_of_int i) ] in
  Vcache.store cfg (key 0) (entry (Vcache.Proved { depth = 3; induction = true }));
  Unix.sleepf 0.05;
  Vcache.store cfg (key 1) (entry (Vcache.Falsified { depth = 2 }));
  Unix.sleepf 0.05;
  Vcache.store cfg (key 2) (entry (Vcache.Bounded { depth = 8; reason = "bound" }));
  let s = Vcache.stats cfg in
  Alcotest.(check int) "entries" 3 s.Vcache.entries;
  Alcotest.(check int) "proved" 1 s.Vcache.proved;
  Alcotest.(check int) "falsified" 1 s.Vcache.falsified;
  Alcotest.(check int) "bounded" 1 s.Vcache.bounded;
  (* Round-trip of one entry. *)
  (match Vcache.load cfg (key 1) with
  | Some e ->
    Alcotest.(check bool) "verdict round-trips" true
      (e.Vcache.e_verdict = Vcache.Falsified { depth = 2 });
    Alcotest.(check int) "model vars round-trip" 10 e.Vcache.e_model_vars
  | None -> Alcotest.fail "stored entry did not load");
  (* GC drops exactly the oldest entry when one entry's bytes must go. *)
  let deleted, kept = Vcache.gc cfg ~max_bytes:(s.Vcache.bytes - 1) in
  Alcotest.(check int) "gc deleted" 1 deleted;
  Alcotest.(check int) "gc kept" 2 kept;
  (match Vcache.load cfg (key 0) with
  | None -> ()
  | Some _ -> Alcotest.fail "gc kept the oldest entry");
  (if Vcache.load cfg (key 2) = None then Alcotest.fail "gc dropped the newest entry");
  Alcotest.(check int) "clear" 2 (Vcache.clear cfg);
  Alcotest.(check int) "empty after clear" 0 (Vcache.stats cfg).Vcache.entries

(* The daemon-grade watermarks: age and size evict by last use, and a
   [load] hit refreshes an entry's lease so hot entries survive. *)
let test_maintain_watermarks () =
  let dir = tmp_store "maintain" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let cfg = Vcache.config ~dir () in
  let entry =
    {
      Vcache.e_method = "emm";
      e_verdict = Vcache.Proved { depth = 3; induction = true };
      e_time_s = 1.0;
      e_solve_time_s = 0.5;
      e_model_vars = 10;
      e_model_clauses = 20;
      e_model_latches = 3;
      e_cert = "unchecked";
      e_created = 0.0;
      e_payload = Vcache.No_payload;
    }
  in
  let key i = Vcache.Key.make ~cone:"c" ~attrs:[ ("i", string_of_int i) ] in
  let path i = Filename.concat dir (Vcache.Key.to_hex (key i) ^ ".json") in
  let set_age i seconds =
    let t = Unix.gettimeofday () -. seconds in
    Unix.utimes (path i) t t
  in
  List.iter (fun i -> Vcache.store cfg (key i) entry) [ 0; 1; 2 ];
  (* No watermarks: nothing moves. *)
  let r = Vcache.maintain cfg (Vcache.gc_policy ()) in
  Alcotest.(check int) "no policy evicts nothing"
    0
    (r.Vcache.evicted_age + r.Vcache.evicted_size);
  Alcotest.(check int) "all kept" 3 r.Vcache.kept;
  (* Age watermark: only the entry unused for 100s falls. *)
  set_age 0 100.0;
  let r = Vcache.maintain cfg (Vcache.gc_policy ~max_age_s:50.0 ()) in
  Alcotest.(check int) "age watermark evicts the stale entry" 1 r.Vcache.evicted_age;
  Alcotest.(check int) "age watermark keeps the rest" 2 r.Vcache.kept;
  Alcotest.(check bool) "stale entry gone" true (Vcache.load cfg (key 0) = None);
  (* Size watermark is LRU, and a hit refreshes the lease: make key 1 the
     older of the two survivors, then load it (refresh) — the watermark
     must now evict key 2 instead. *)
  set_age 1 30.0;
  set_age 2 20.0;
  (match Vcache.load cfg (key 1) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected key 1 to load");
  let bytes_of_one = (Unix.stat (path 2)).Unix.st_size in
  let r = Vcache.maintain cfg (Vcache.gc_policy ~max_bytes:bytes_of_one ()) in
  Alcotest.(check int) "size watermark evicts one" 1 r.Vcache.evicted_size;
  Alcotest.(check int) "size watermark keeps one" 1 r.Vcache.kept;
  Alcotest.(check bool) "hit-refreshed entry survives" true
    (Vcache.load cfg (key 1) <> None);
  Alcotest.(check bool) "cold entry evicted" true (Vcache.load cfg (key 2) = None);
  Alcotest.(check int) "kept bytes accounted" bytes_of_one r.Vcache.kept_bytes

(* Never-hit entries fall before ever-hit ones, even when the hot entry is
   the oldest by mtime: an entry that earned a hit has proven its worth,
   one that never did is the cheapest to lose. *)
let test_hit_aware_eviction () =
  let dir = tmp_store "hitaware" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let cfg = Vcache.config ~dir () in
  let entry =
    {
      Vcache.e_method = "emm";
      e_verdict = Vcache.Proved { depth = 3; induction = true };
      e_time_s = 1.0;
      e_solve_time_s = 0.5;
      e_model_vars = 10;
      e_model_clauses = 20;
      e_model_latches = 3;
      e_cert = "unchecked";
      e_created = 0.0;
      e_payload = Vcache.No_payload;
    }
  in
  let key i = Vcache.Key.make ~cone:"c" ~attrs:[ ("i", string_of_int i) ] in
  let path i = Filename.concat dir (Vcache.Key.to_hex (key i) ^ ".json") in
  let set_age i seconds =
    let t = Unix.gettimeofday () -. seconds in
    Unix.utimes (path i) t t
  in
  List.iter (fun i -> Vcache.store cfg (key i) entry) [ 0; 1; 2 ];
  (match Vcache.load cfg (key 0) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected key 0 to load");
  (* Re-age the hot entry to be the oldest: pure LRU would evict it first. *)
  set_age 0 100.0;
  set_age 1 50.0;
  set_age 2 20.0;
  let bytes_of_one = (Unix.stat (path 2)).Unix.st_size in
  let r = Vcache.maintain cfg (Vcache.gc_policy ~max_bytes:bytes_of_one ()) in
  Alcotest.(check int) "two evicted by size" 2 r.Vcache.evicted_size;
  Alcotest.(check int) "both evictees were never-hit" 2 r.Vcache.evicted_cold;
  Alcotest.(check int) "one kept" 1 r.Vcache.kept;
  Alcotest.(check bool) "the hot (oldest) entry survives" true
    (Vcache.load cfg (key 0) <> None);
  Alcotest.(check bool) "cold entries gone" true
    (Vcache.load cfg (key 1) = None && Vcache.load cfg (key 2) = None)

let test_default_dir_env_override () =
  let saved = Sys.getenv_opt "EMMVER_CACHE_DIR" in
  Unix.putenv "EMMVER_CACHE_DIR" "/tmp/emmver-env-test";
  let d = Vcache.default_dir () in
  Unix.putenv "EMMVER_CACHE_DIR" (Option.value saved ~default:"");
  Alcotest.(check string) "env override" "/tmp/emmver-env-test" d

(* {2 Concurrent writers} *)

let test_same_key_racing_writers () =
  let dir = tmp_store "race" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let net = falsifiable_design () in
  let opts = options ~cache_dir:dir () in
  (* Eight forked workers all solve the same cold problem and race to write
     the same key; atomic rename means the survivor is one complete entry. *)
  let results =
    Parallel.map ~jobs:4
      ~f:(fun () ->
        conclusion_str (Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p"))
      (List.init 8 (fun _ -> ()))
  in
  let conclusions =
    List.map (function Ok c -> c | Error f -> Parallel.failure_message f) results
  in
  (match conclusions with
  | c :: rest -> List.iter (Alcotest.(check string) "racing workers agree" c) rest
  | [] -> ());
  let cfg = Option.get (Emmver.cache_config opts) in
  Alcotest.(check int) "one entry" 1 (Vcache.stats cfg).Vcache.entries;
  let warm = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:"p" in
  (if warm.Emmver.cache <> Emmver.Cache_hit then
     Alcotest.fail "surviving entry is not servable");
  Alcotest.(check string) "warm agrees" (List.hd conclusions) (conclusion_str warm)

let test_verify_many_shared_store () =
  let dir = tmp_store "pool" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let net = Designs.Multiport.build Designs.Multiport.default_config in
  let props = List.map fst (Netlist.properties net) in
  let opts = options ~max_depth:6 ~cache_dir:dir () in
  let cold = Emmver.verify_many ~options:opts ~jobs:4 ~method_:Emmver.Emm_bmc net ~properties:props in
  let warm = Emmver.verify_many ~options:opts ~jobs:4 ~method_:Emmver.Emm_bmc net ~properties:props in
  List.iter2
    (fun (p, c) (p', w) ->
      Alcotest.(check string) "slot order" p p';
      Alcotest.(check string) (p ^ " conclusion") (conclusion_str c) (conclusion_str w);
      if w.Emmver.cache = Emmver.Cache_miss || w.Emmver.cache = Emmver.Cache_off then
        Alcotest.failf "%s: warm run re-solved" p)
    cold warm;
  (* Every file the forked workers wrote parses. *)
  let cfg = Option.get (Emmver.cache_config opts) in
  let s = Vcache.stats cfg in
  Alcotest.(check bool) "store populated" true (s.Vcache.entries > 0);
  let on_disk =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.length
  in
  Alcotest.(check int) "no unparsable files" on_disk s.Vcache.entries

(* {2 Intra-batch dedup} *)

(* Two isomorphic-but-distinct cones: the same usage pattern over two
   different memories, sharing the address inputs.  Both properties are
   falsifiable (an arbitrary initial cell can already hold 3). *)
let twin_design () =
  let ctx = Hdl.create () in
  let mk name =
    Hdl.memory ctx ~name ~addr_width:2 ~data_width:2 ~init:Netlist.Arbitrary
  in
  let ma = mk "ma" in
  let mb = mk "mb" in
  let wa = Hdl.input ctx "wa" ~width:2 in
  let wd = Hdl.input ctx "wd" ~width:2 in
  Hdl.write_port ctx ma ~addr:wa ~data:wd ~enable:Netlist.true_;
  Hdl.write_port ctx mb ~addr:wa ~data:wd ~enable:Netlist.true_;
  let ra = Hdl.input ctx "ra" ~width:2 in
  let rda = Hdl.read_port ctx ma ~addr:ra ~enable:Netlist.true_ in
  let rdb = Hdl.read_port ctx mb ~addr:ra ~enable:Netlist.true_ in
  let prop rd = Netlist.not_ (Hdl.eq_const ctx rd 3) in
  Hdl.assert_always ctx "pa" (prop rda);
  (* Same signal under a second name: the strongest dedup case. *)
  Hdl.assert_always ctx "pa2" (prop rda);
  Hdl.assert_always ctx "pb" (prop rdb);
  Hdl.netlist ctx

let test_dedup_transfers_verdict () =
  let net = twin_design () in
  Alcotest.(check string)
    "twin cones are isomorphic"
    (Netlist.cone_signature net (Netlist.find_property net "pa"))
    (Netlist.cone_signature net (Netlist.find_property net "pb"));
  let opts = options () in
  (* Cache off: dedup must work on its own. *)
  let batch =
    Emmver.verify_many ~options:opts ~method_:Emmver.Emm_bmc net
      ~properties:[ "pa"; "pa2"; "pb" ]
  in
  let oa = List.assoc "pa" batch in
  let oa2 = List.assoc "pa2" batch in
  let ob = List.assoc "pb" batch in
  (if oa.Emmver.cache = Emmver.Cache_dedup then
     Alcotest.fail "representative must be solved, not deduplicated");
  (if oa2.Emmver.cache <> Emmver.Cache_dedup || ob.Emmver.cache <> Emmver.Cache_dedup
   then Alcotest.fail "structural duplicates were not deduplicated");
  List.iter
    (fun p ->
      let solo =
        Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc net ~property:p
      in
      Alcotest.(check string)
        (p ^ ": dedup conclusion = individual verify")
        (conclusion_str solo)
        (conclusion_str (List.assoc p batch)))
    [ "pa"; "pa2"; "pb" ];
  (* Same-signal duplicate: the representative's trace retargets and
     replays on the duplicate property. *)
  (match oa2.Emmver.conclusion with
  | Emmver.Falsified { trace = Some t; genuine = Some true; _ } ->
    Alcotest.(check string) "trace retargeted" "pa2" t.Bmc.Trace.property;
    Alcotest.(check bool) "retargeted trace replays" true (Bmc.Trace.replay net t)
  | c ->
    Alcotest.failf "same-signal duplicate: expected a replayed counterexample, got %s"
      (Format.asprintf "%a" Emmver.pp_conclusion c));
  (* Cross-memory twin: the witness names memory "ma", which does not
     transfer to "mb" — the verdict carries over, the stale trace must not. *)
  match ob.Emmver.conclusion with
  | Emmver.Falsified { trace = None; genuine = Some true; _ } -> ()
  | Emmver.Falsified { trace = Some t; genuine = Some true; _ } ->
    Alcotest.(check bool) "kept twin trace replays" true (Bmc.Trace.replay net t)
  | c ->
    Alcotest.failf "cross-memory twin: expected a genuine falsification, got %s"
      (Format.asprintf "%a" Emmver.pp_conclusion c)

let test_dedup_consistent_across_jobs () =
  let net = twin_design () in
  let opts = options () in
  let seq =
    Emmver.verify_many ~options:opts ~method_:Emmver.Emm_bmc net ~properties:[ "pa"; "pb" ]
  in
  let par =
    Emmver.verify_many ~options:opts ~jobs:2 ~method_:Emmver.Emm_bmc net
      ~properties:[ "pa"; "pb" ]
  in
  List.iter2
    (fun (p, a) (p', b) ->
      Alcotest.(check string) "order" p p';
      Alcotest.(check string) (p ^ " jobs-invariant") (conclusion_str a) (conclusion_str b))
    seq par

let test_certify_disables_dedup () =
  let net = twin_design () in
  let opts = options ~certify:true () in
  let batch =
    Emmver.verify_many ~options:opts ~method_:Emmver.Emm_bmc net ~properties:[ "pa"; "pb" ]
  in
  List.iter
    (fun (p, o) ->
      (if o.Emmver.cache = Emmver.Cache_dedup then
         Alcotest.failf "%s deduplicated under certify" p);
      match o.Emmver.certificate with
      | Cert.Certified _ -> ()
      | c -> Alcotest.failf "%s not certified: %s" p (Cert.label c))
    batch

(* {2 Incremental re-verification} *)

let test_verify_delta_classification () =
  let dir = tmp_store "delta" in
  Fun.protect ~finally:(fun () -> drop_store dir) @@ fun () ->
  let before = knob_design () in
  let after = knob_design ~target:1 () in
  let opts = options ~cache_dir:dir () in
  (* Warm the store on the old design. *)
  let _ = Emmver.verify ~options:opts ~method_:Emmver.Emm_bmc before ~property:"p" in
  (* Unchanged design: served from the old run's entry. *)
  (match
     Emmver.verify_delta ~options:opts ~method_:Emmver.Emm_bmc ~before
       (knob_design ()) ~properties:[ "p" ]
   with
  | [ ("p", Emmver.Delta_unchanged, o) ] ->
    if o.Emmver.cache <> Emmver.Cache_hit then
      Alcotest.fail "unchanged cone did not hit the warm store"
  | _ -> Alcotest.fail "expected one unchanged property");
  (* Edited design: flagged changed, solved fresh. *)
  match
    Emmver.verify_delta ~options:opts ~method_:Emmver.Emm_bmc ~before after
      ~properties:[ "p" ]
  with
  | [ ("p", Emmver.Delta_changed, o) ] ->
    if o.Emmver.cache <> Emmver.Cache_miss then
      Alcotest.fail "changed cone must be re-verified"
  | _ -> Alcotest.fail "expected one changed property"

let () =
  Alcotest.run "vcache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "construction-order invariance" `Quick
            test_construction_order_invariance;
          Alcotest.test_case "semantic knobs move the fingerprint" `Quick
            test_fingerprint_sensitivity;
          Alcotest.test_case "method/depth/encoder move the key" `Quick
            test_key_attrs_sensitivity;
          Alcotest.test_case "unknown property has no key" `Quick
            test_unknown_property_has_no_key;
        ] );
      ( "store",
        [
          Alcotest.test_case "cold = warm over 50 seeded designs" `Slow
            test_cold_equals_warm_differential;
          Alcotest.test_case "pre-bump encoder-generation entry misses" `Quick
            test_pre_bump_entry_misses;
          Alcotest.test_case "certified hit re-checks the DRAT evidence" `Quick
            test_certified_hit_rechecks_drat;
          Alcotest.test_case "checksum tamper degrades to a miss" `Quick
            test_checksum_tamper_is_a_miss;
          Alcotest.test_case "forged trace is evicted and re-solved" `Quick
            test_forged_trace_is_stale;
          Alcotest.test_case "stats/gc/clear administration" `Quick test_stats_gc_clear;
          Alcotest.test_case "never-hit entries are evicted first" `Quick
            test_hit_aware_eviction;
          Alcotest.test_case "maintain: age/size watermarks, LRU hit refresh" `Quick
            test_maintain_watermarks;
          Alcotest.test_case "EMMVER_CACHE_DIR overrides the default" `Quick
            test_default_dir_env_override;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "same-key racing writers" `Quick
            test_same_key_racing_writers;
          Alcotest.test_case "verify_many -j4 shares one store" `Quick
            test_verify_many_shared_store;
        ] );
      ( "dedup",
        [
          Alcotest.test_case "isomorphic cones solved once" `Quick
            test_dedup_transfers_verdict;
          Alcotest.test_case "dedup invariant under -j" `Quick
            test_dedup_consistent_across_jobs;
          Alcotest.test_case "certify disables dedup" `Quick test_certify_disables_dedup;
        ] );
      ( "delta",
        [
          Alcotest.test_case "unchanged hits, changed re-verifies" `Quick
            test_verify_delta_classification;
        ] );
    ]
