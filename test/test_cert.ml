(* Tests for the certification layer (lib/cert): the backward DRAT/RUP
   checker on hand-built cores and solver-produced derivations, proof
   mutation rejection, textual DRAT output, counterexample replay
   certification, and a 50-seed differential run asserting that certifying
   never changes a verdict and every verdict certifies. *)

open Satsolver

let lit v sign = Lit.of_var v sign

let valid = function
  | Cert.Drat.Valid _ -> true
  | Cert.Drat.Invalid _ -> false

let report = function
  | Cert.Drat.Valid r -> r
  | Cert.Drat.Invalid why -> Alcotest.failf "expected valid proof, got: %s" why

(* {2 Hand-built cores} *)

(* (a|b)(a|~b)(~a|c)(~a|~c) is UNSAT; [a] is RUP (asserting ~a unit-
   propagates b and then empties a|~b), and adding it makes the empty
   obligation unit-refutable. *)
let hand_core =
  [
    [ lit 0 true; lit 1 true ];
    [ lit 0 true; lit 1 false ];
    [ lit 0 false; lit 2 true ];
    [ lit 0 false; lit 2 false ];
  ]

let test_hand_core_proof () =
  let outcome =
    Cert.Drat.check ~num_vars:3 ~original:hand_core
      ~proof:[ Cert.Drat.Padd [ lit 0 true ] ]
      ~obligations:[ [] ] ()
  in
  let r = report outcome in
  Alcotest.(check int) "one lemma" 1 r.Cert.Drat.lemmas;
  Alcotest.(check int) "lemma verified" 1 r.Cert.Drat.checked_lemmas;
  Alcotest.(check int) "one obligation" 1 r.Cert.Drat.obligations

(* Assumption obligations need no lemmas when the originals already unit-
   refute the cube: (~a|b)(~b|c) with assumptions a, ~c. *)
let test_assumption_obligation () =
  let outcome =
    Cert.Drat.check ~num_vars:3
      ~original:[ [ lit 0 false; lit 1 true ]; [ lit 1 false; lit 2 true ] ]
      ~proof:[]
      ~obligations:[ [ lit 0 true; lit 2 false ] ]
      ()
  in
  Alcotest.(check bool) "assumption cube refuted" true (valid outcome);
  Alcotest.(check int) "no lemmas needed" 0 (report outcome).Cert.Drat.lemmas

let test_unrefutable_obligation_rejected () =
  (* (a|b) refutes nothing by unit propagation. *)
  let outcome =
    Cert.Drat.check ~num_vars:2
      ~original:[ [ lit 0 true; lit 1 true ] ]
      ~proof:[] ~obligations:[ [] ] ()
  in
  Alcotest.(check bool) "satisfiable set does not certify" false (valid outcome)

(* A deleted lemma is revived when an obligation needs it: deletion never
   removes implications, so the retry is sound and must succeed. *)
let test_deleted_lemma_revived () =
  let outcome =
    Cert.Drat.check ~num_vars:3 ~original:hand_core
      ~proof:[ Cert.Drat.Padd [ lit 0 true ]; Cert.Drat.Pdel [ lit 0 true ] ]
      ~obligations:[ [] ] ()
  in
  Alcotest.(check bool) "obligation passes after reviving deletions" true
    (valid outcome)

let test_delete_of_absent_clause_rejected () =
  let outcome =
    Cert.Drat.check ~num_vars:3 ~original:hand_core
      ~proof:[ Cert.Drat.Pdel [ lit 1 true; lit 2 true ] ]
      ~obligations:[ [] ] ()
  in
  Alcotest.(check bool) "deleting a clause never added is malformed" false
    (valid outcome)

(* {2 Mutation: corrupted proofs are rejected} *)

let pigeonhole_clauses holes =
  (* holes+1 pigeons in [holes] holes; var p*holes+h = pigeon p in hole h. *)
  let var p h = p * holes + h in
  let each_pigeon_somewhere =
    List.init (holes + 1) (fun p -> List.init holes (fun h -> lit (var p h) true))
  in
  let no_two_share =
    List.concat_map
      (fun h ->
        List.concat
          (List.init (holes + 1) (fun p ->
               List.init p (fun q -> [ lit (var p h) false; lit (var q h) false ]))))
      (List.init holes Fun.id)
  in
  each_pigeon_somewhere @ no_two_share

let logged_refutation clauses =
  let s = Solver.create () in
  Solver.set_proof_logging s true;
  let nv =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
      0 clauses
  in
  Solver.ensure_vars s nv;
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "instance is unsat" true (Solver.solve s = Solver.Unsat);
  (nv, Solver.proof s)

let test_solver_proof_certifies () =
  let clauses = pigeonhole_clauses 4 in
  let nv, proof = logged_refutation clauses in
  let outcome =
    Cert.Drat.check ~num_vars:nv ~original:clauses ~proof ~obligations:[ [] ] ()
  in
  let r = report outcome in
  Alcotest.(check bool) "solver logged real work" true (r.Cert.Drat.lemmas > 0);
  Alcotest.(check bool) "cone smaller than or equal to the log" true
    (r.Cert.Drat.checked_lemmas <= r.Cert.Drat.lemmas)

(* Corrupt one addition step of a genuine solver proof — replace it with a
   unit over a fresh variable, which nothing implies — and demand rejection.
   [every_lemma] forces the checker to look at the corrupted line even when
   no obligation happens to depend on it. *)
let test_mutated_proof_rejected () =
  let clauses = pigeonhole_clauses 4 in
  let nv, proof = logged_refutation clauses in
  let adds = List.length (List.filter (function Cert.Drat.Padd _ -> true | _ -> false) proof) in
  Alcotest.(check bool) "proof has additions to corrupt" true (adds > 0);
  let corrupted_at k =
    let seen = ref (-1) in
    List.map
      (function
        | Cert.Drat.Padd _ when (incr seen; !seen = k) ->
          Cert.Drat.Padd [ lit nv true ]
        | step -> step)
      proof
  in
  List.iter
    (fun k ->
      let outcome =
        Cert.Drat.check ~every_lemma:true ~num_vars:(nv + 1) ~original:clauses
          ~proof:(corrupted_at k) ~obligations:[ [] ] ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "corrupting addition %d of %d is caught" k adds)
        false (valid outcome))
    [ 0; adds / 2; adds - 1 ]

(* {2 Incremental obligations (the BMC usage pattern)} *)

let test_assumption_obligations_across_solves () =
  let s = Solver.create () in
  Solver.set_proof_logging s true;
  Solver.ensure_vars s 4;
  (* act0 -> chain forcing a contradiction; act1 -> a different one. *)
  Solver.add_clause s [ lit 0 false; lit 2 true ];
  Solver.add_clause s [ lit 0 false; lit 2 false ];
  Solver.add_clause s [ lit 1 false; lit 3 true ];
  Solver.add_clause s [ lit 1 false; lit 2 true; lit 3 false ];
  let obligations = ref [] in
  List.iter
    (fun assumptions ->
      (match Solver.solve ~assumptions s with
      | Solver.Unsat -> obligations := assumptions :: !obligations
      | Solver.Sat -> ()))
    [ [ lit 0 true ]; [ lit 1 true ]; [ lit 1 true; lit 2 false ] ];
  Alcotest.(check bool) "at least one unsat query" true (!obligations <> []);
  let outcome =
    Cert.Drat.check ~num_vars:(Solver.num_vars s)
      ~original:(Solver.export_clauses s) ~proof:(Solver.proof s)
      ~obligations:(List.rev !obligations) ()
  in
  Alcotest.(check bool) "all recorded obligations certify" true (valid outcome)

(* {2 Textual DRAT output} *)

let test_drat_output_format () =
  let path = Filename.temp_file "emmver_test" ".drat" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Cert.Drat.output oc
        [
          Cert.Drat.Padd [ lit 0 true; lit 1 false ];
          Cert.Drat.Pdel [ lit 2 true ];
        ];
      close_out oc;
      let ic = open_in path in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "standard DRAT text" "1 -2 0\nd 3 0\n" text)

(* {2 Counterexample replay certification} *)

let buggy_options = { Emmver.default_options with Emmver.max_depth = 12; certify = true }

let test_replay_certifies_genuine_cex () =
  let net = Designs.Fifo.build ~buggy:true Designs.Fifo.default_config in
  let o = Emmver.verify ~options:buggy_options ~method_:Emmver.Emm_falsify net
      ~property:"fifo_data"
  in
  (match o.Emmver.conclusion with
  | Emmver.Falsified { genuine = Some true; _ } -> ()
  | c -> Alcotest.failf "expected genuine cex, got %a" Emmver.pp_conclusion c);
  Alcotest.(check string) "trace-replayed certificate" "trace-replayed"
    (Cert.label o.Emmver.certificate)

let test_mismatched_trace_refuted () =
  let net = Designs.Fifo.build ~buggy:true Designs.Fifo.default_config in
  let config =
    { Bmc.Engine.default_config with Bmc.Engine.max_depth = 12; certify = true }
  in
  let result, _ = Emm.check ~config net ~property:"fifo_data" in
  let trace =
    match result.Bmc.Engine.verdict with
    | Bmc.Engine.Counterexample t -> t
    | v -> Alcotest.failf "expected counterexample, got %a" Bmc.Engine.pp_verdict v
  in
  Alcotest.(check string) "untampered trace certifies" "trace-replayed"
    (Cert.label (Bmc.Trace.certify net trace));
  (* Tamper with the stimulus: flip every recorded input bit of frame 0. *)
  let tampered =
    {
      trace with
      Bmc.Trace.inputs =
        Array.mapi
          (fun i frame ->
            if i = 0 then List.map (fun (n, b) -> (n, not b)) frame else frame)
          trace.Bmc.Trace.inputs;
    }
  in
  match Bmc.Trace.certify net tampered with
  | Cert.Refuted _ -> ()
  | c -> Alcotest.failf "tampered trace must be refuted, got %s" (Cert.label c)

(* {2 Differential: certification never changes a verdict}

   The 50 seeded random memory designs of test_differential.ml /
   test_parallel.ml (same generator constants), each verified plain and with
   [certify]: the conclusions must match, and every conclusive certified run
   must carry a [Certified] certificate of the right kind. *)

type cfg = {
  id : int;
  aw : int;
  dw : int;
  wports : int;
  rports : int;
  arbitrary : bool;
  wconsts : int array;
  dconsts : int array;
  rconsts : int array;
  en_bit : int option;
  prop_on_acc : bool;
  target : int;
}

let random_cfg id =
  let st = Random.State.make [| 0x3d1f; id |] in
  let aw = 1 + Random.State.int st 2 in
  let dw = 1 + Random.State.int st 3 in
  let wports = 1 + Random.State.int st 2 in
  let rports = 1 + Random.State.int st 2 in
  let const8 () = Random.State.int st 8 in
  {
    id;
    aw;
    dw;
    wports;
    rports;
    arbitrary = Random.State.bool st;
    wconsts = Array.init wports (fun _ -> const8 ());
    dconsts = Array.init wports (fun _ -> const8 ());
    rconsts = Array.init rports (fun _ -> const8 ());
    en_bit = (if Random.State.bool st then Some (Random.State.int st 3) else None);
    prop_on_acc = Random.State.bool st;
    target = Random.State.int st (1 lsl dw);
  }

let build cfg =
  let ctx = Hdl.create () in
  let init = if cfg.arbitrary then Netlist.Arbitrary else Netlist.Zeros in
  let mem = Hdl.memory ctx ~name:"m" ~addr_width:cfg.aw ~data_width:cfg.dw ~init in
  let cnt = Hdl.reg ctx "cnt" ~width:3 in
  Hdl.connect ctx cnt (Hdl.incr ctx cnt);
  let addr_of c =
    Hdl.select (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~hi:(cfg.aw - 1) ~lo:0
  in
  let data_of c = Hdl.uresize (Hdl.xor_v ctx cnt (Hdl.const ~width:3 c)) ~width:cfg.dw in
  let en0 =
    match cfg.en_bit with None -> Netlist.true_ | Some b -> Hdl.bit_of cnt b
  in
  for w = 0 to cfg.wports - 1 do
    let enable = if w = 0 then en0 else Netlist.not_ en0 in
    Hdl.write_port ctx mem ~addr:(addr_of cfg.wconsts.(w)) ~data:(data_of cfg.dconsts.(w))
      ~enable
  done;
  let rds =
    List.init cfg.rports (fun r ->
        Hdl.read_port ctx mem ~addr:(addr_of cfg.rconsts.(r)) ~enable:Netlist.true_)
  in
  let acc = Hdl.reg ctx "acc" ~width:cfg.dw in
  Hdl.connect ctx acc (List.fold_left (Hdl.xor_v ctx) acc rds);
  let watched = if cfg.prop_on_acc then acc else List.hd rds in
  Hdl.assert_always ctx "p" (Netlist.not_ (Hdl.eq_const ctx watched cfg.target));
  Hdl.netlist ctx

let test_differential_certify () =
  for id = 0 to 49 do
    let net = build (random_cfg id) in
    let plain =
      Emmver.verify
        ~options:{ Emmver.default_options with Emmver.max_depth = 8 }
        ~method_:Emmver.Emm_falsify net ~property:"p"
    in
    let certified =
      Emmver.verify
        ~options:{ Emmver.default_options with Emmver.max_depth = 8; certify = true }
        ~method_:Emmver.Emm_falsify net ~property:"p"
    in
    Alcotest.(check string)
      (Printf.sprintf "design %d: certify does not change the verdict" id)
      (Format.asprintf "%a" Emmver.pp_conclusion plain.Emmver.conclusion)
      (Format.asprintf "%a" Emmver.pp_conclusion certified.Emmver.conclusion);
    let expected_label =
      match certified.Emmver.conclusion with
      | Emmver.Falsified _ -> "trace-replayed"
      | Emmver.Proved _ | Emmver.Inconclusive _ -> "drat-checked"
    in
    Alcotest.(check string)
      (Printf.sprintf "design %d: verdict certifies" id)
      expected_label
      (Cert.label certified.Emmver.certificate)
  done

let () =
  Alcotest.run "cert"
    [
      ( "drat",
        [
          Alcotest.test_case "hand-built core with known proof" `Quick
            test_hand_core_proof;
          Alcotest.test_case "assumption-cube obligation" `Quick
            test_assumption_obligation;
          Alcotest.test_case "satisfiable set rejected" `Quick
            test_unrefutable_obligation_rejected;
          Alcotest.test_case "deleted lemma revived for obligations" `Quick
            test_deleted_lemma_revived;
          Alcotest.test_case "delete of absent clause rejected" `Quick
            test_delete_of_absent_clause_rejected;
          Alcotest.test_case "solver pigeonhole proof certifies" `Quick
            test_solver_proof_certifies;
          Alcotest.test_case "mutated proof lines rejected" `Quick
            test_mutated_proof_rejected;
          Alcotest.test_case "obligations across incremental solves" `Quick
            test_assumption_obligations_across_solves;
          Alcotest.test_case "textual DRAT output" `Quick test_drat_output_format;
        ] );
      ( "replay",
        [
          Alcotest.test_case "genuine counterexample certifies" `Quick
            test_replay_certifies_genuine_cex;
          Alcotest.test_case "tampered trace refuted" `Quick
            test_mismatched_trace_refuted;
        ] );
      ( "differential",
        [
          Alcotest.test_case "50 seeded designs: certify = plain" `Quick
            test_differential_certify;
        ] );
    ]
