(* Unit and property tests for the CDCL solver, checked against a brute-force
   truth-table reference on small instances. *)

open Satsolver

(* The forward RUP checker moved into the certification library when proof
   logging grew into full DRAT; the solver tests keep exercising it under
   its old name. *)
module Checker = Cert.Drat

let lit v sign = Lit.of_var v sign

(* Reference: does an assignment drawn from the bits of [m] satisfy all
   clauses? *)
let assignment_satisfies m clauses =
  List.for_all
    (List.exists (fun l ->
         let bit = (m lsr Lit.var l) land 1 = 1 in
         if Lit.sign l then bit else not bit))
    clauses

let brute_force_sat num_vars clauses =
  let rec loop m = m < 1 lsl num_vars && (assignment_satisfies m clauses || loop (m + 1)) in
  loop 0

let solve_clauses ?(num_vars = 0) clauses =
  let s = Solver.create () in
  let nv =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
      num_vars clauses
  in
  Solver.ensure_vars s nv;
  List.iter (Solver.add_clause s) clauses;
  (s, Solver.solve s)

let check_model s clauses =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        "clause satisfied by model" true
        (List.exists (Solver.value s) c))
    clauses

(* {2 Unit tests} *)

let test_trivial_sat () =
  let clauses = [ [ lit 0 true; lit 1 true ]; [ lit 0 false ] ] in
  let s, r = solve_clauses clauses in
  Alcotest.(check bool) "sat" true (r = Solver.Sat);
  check_model s clauses;
  Alcotest.(check bool) "b is true" true (Solver.value_var s 1)

let test_trivial_unsat () =
  let clauses = [ [ lit 0 true ]; [ lit 0 false ] ] in
  let _, r = solve_clauses clauses in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat)

let test_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause s [];
  Alcotest.(check bool) "not okay" false (Solver.okay s);
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat)

let test_empty_formula () =
  let s = Solver.create () in
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

let test_tautology_dropped () =
  let s = Solver.create () in
  Solver.ensure_vars s 1;
  Solver.add_clause s [ lit 0 true; lit 0 false ];
  Alcotest.(check int) "no clause stored" 0 (Solver.num_clauses s);
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

(* Pigeonhole principle PHP(n+1, n): unsatisfiable, stresses learning. *)
let pigeonhole_clauses pigeons holes =
  let var p h = (p * holes) + h in
  let at_least =
    List.init pigeons (fun p -> List.init holes (fun h -> lit (var p h) true))
  in
  let at_most =
    List.concat_map
      (fun h ->
        List.concat_map
          (fun p1 ->
            List.filter_map
              (fun p2 ->
                if p1 < p2 then Some [ lit (var p1 h) false; lit (var p2 h) false ]
                else None)
              (List.init pigeons Fun.id))
          (List.init pigeons Fun.id))
      (List.init holes Fun.id)
  in
  at_least @ at_most

let test_pigeonhole_unsat () =
  let clauses = pigeonhole_clauses 5 4 in
  let _, r = solve_clauses clauses in
  Alcotest.(check bool) "php(5,4) unsat" true (r = Solver.Unsat)

let test_pigeonhole_sat () =
  let clauses = pigeonhole_clauses 4 4 in
  let s, r = solve_clauses clauses in
  Alcotest.(check bool) "php(4,4) sat" true (r = Solver.Sat);
  check_model s clauses

let test_assumptions_basic () =
  let s = Solver.create () in
  Solver.ensure_vars s 2;
  Solver.add_clause s [ lit 0 false; lit 1 true ];
  (* a -> b *)
  Alcotest.(check bool) "sat under a" true
    (Solver.solve ~assumptions:[ lit 0 true ] s = Solver.Sat);
  Alcotest.(check bool) "b forced" true (Solver.value_var s 1);
  Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat under a" true
    (Solver.solve ~assumptions:[ lit 0 true ] s = Solver.Unsat);
  let failed = Solver.failed_assumptions s in
  Alcotest.(check bool) "a among failed" true (List.mem (lit 0 true) failed);
  Alcotest.(check bool) "sat without assumptions" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a is false now" false (Solver.value_var s 0)

let test_assumptions_conflicting () =
  let s = Solver.create () in
  Solver.ensure_vars s 1;
  let r = Solver.solve ~assumptions:[ lit 0 true; lit 0 false ] s in
  Alcotest.(check bool) "contradictory assumptions" true (r = Solver.Unsat);
  Alcotest.(check bool) "still okay" true (Solver.okay s);
  Alcotest.(check bool) "recovers" true (Solver.solve s = Solver.Sat)

let test_incremental_reuse () =
  let s = Solver.create () in
  Solver.ensure_vars s 8;
  Solver.add_clause s [ lit 0 true; lit 1 true ];
  Alcotest.(check bool) "sat 1" true (Solver.solve s = Solver.Sat);
  Solver.add_clause s [ lit 0 false ];
  Alcotest.(check bool) "sat 2" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b" true (Solver.value_var s 1);
  Solver.add_clause s [ lit 1 false ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "not okay" false (Solver.okay s)

let test_unsat_core_subset () =
  (* Clauses 0..2 form the contradiction; 3..4 are irrelevant. *)
  let s = Solver.create () in
  Solver.ensure_vars s 5;
  Solver.add_clause s ~tag:0 [ lit 0 true ];
  Solver.add_clause s ~tag:1 [ lit 0 false; lit 1 true ];
  Solver.add_clause s ~tag:2 [ lit 1 false ];
  Solver.add_clause s ~tag:3 [ lit 2 true; lit 3 true ];
  Solver.add_clause s ~tag:4 [ lit 4 true ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let tags = Solver.unsat_core_tags s in
  Alcotest.(check bool) "contains chain" true
    (List.mem 0 tags && List.mem 1 tags && List.mem 2 tags);
  Alcotest.(check bool) "excludes junk" true
    (not (List.mem 3 tags) && not (List.mem 4 tags))

let test_unsat_core_under_assumptions () =
  let s = Solver.create () in
  Solver.ensure_vars s 4;
  Solver.add_clause s ~tag:10 [ lit 0 false; lit 1 true ];
  Solver.add_clause s ~tag:11 [ lit 1 false; lit 2 true ];
  Solver.add_clause s ~tag:12 [ lit 2 false ];
  Solver.add_clause s ~tag:13 [ lit 3 true ];
  let r = Solver.solve ~assumptions:[ lit 0 true ] s in
  Alcotest.(check bool) "unsat" true (r = Solver.Unsat);
  let tags = Solver.unsat_core_tags s in
  Alcotest.(check bool) "implication chain in core" true
    (List.mem 10 tags && List.mem 11 tags && List.mem 12 tags);
  Alcotest.(check bool) "irrelevant unit excluded" true (not (List.mem 13 tags))

let test_dimacs_roundtrip () =
  let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n" in
  let p = Dimacs.parse_string text in
  Alcotest.(check int) "vars" 3 p.Dimacs.num_vars;
  Alcotest.(check int) "clauses" 2 (List.length p.Dimacs.clauses);
  let p2 = Dimacs.parse_string (Dimacs.to_string p) in
  Alcotest.(check bool) "roundtrip" true (p.Dimacs.clauses = p2.Dimacs.clauses);
  let s = Solver.create () in
  Dimacs.load_into s p;
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat)

(* {2 Refutation checking (independent RUP validation)} *)

let test_checker_validates_pigeonhole () =
  let clauses = pigeonhole_clauses 5 4 in
  let s = Solver.create () in
  Solver.set_proof_logging s true;
  let nv =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
      0 clauses
  in
  Solver.ensure_vars s nv;
  List.iter (Solver.add_clause s) clauses;
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "refutation validates" true
    (Checker.verify ~num_vars:nv ~original:clauses ~derivation:(Solver.proof_log s))

let test_checker_rejects_bogus_derivation () =
  (* A clause that is not implied must fail the RUP check. *)
  let clauses = [ [ lit 0 true; lit 1 true ] ] in
  Alcotest.(check bool) "non-implied clause rejected" false
    (Checker.clause_is_rup ~num_vars:2 clauses [ lit 0 true ]);
  Alcotest.(check bool) "implied clause accepted" true
    (Checker.clause_is_rup ~num_vars:2
       [ [ lit 0 true ]; [ lit 0 false; lit 1 true ] ]
       [ lit 1 true ])

let test_checker_rejects_sat_set () =
  Alcotest.(check bool) "satisfiable set does not verify" false
    (Checker.verify ~num_vars:2 ~original:[ [ lit 0 true ] ] ~derivation:[])

let prop_checker_validates_random_unsat =
  let gen =
    QCheck2.Gen.(
      let gen_lit = map2 (fun v s -> lit v s) (int_bound 6) bool in
      list_size (int_range 5 40) (list_size (int_range 1 3) gen_lit))
  in
  QCheck2.Test.make ~count:150 ~name:"refutations of random UNSAT instances validate"
    gen
    (fun clauses ->
      let s = Solver.create () in
      Solver.set_proof_logging s true;
      Solver.ensure_vars s 7;
      List.iter (Solver.add_clause s) clauses;
      match Solver.solve s with
      | Solver.Sat -> true
      | Solver.Unsat ->
        Checker.verify ~num_vars:7 ~original:clauses ~derivation:(Solver.proof_log s))

(* Core re-verification: for known UNSAT instances, the extracted core —
   taken alone — must itself admit a solver refutation that passes the RUP
   checker.  Guards the premise bookkeeping through the LBD / recursive-
   minimisation machinery: an unsound core would either be satisfiable or
   fail verification. *)
let core_reverifies clauses =
  let arr = Array.of_list clauses in
  let s = Solver.create () in
  let nv =
    List.fold_left
      (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
      0 clauses
  in
  Solver.ensure_vars s nv;
  Array.iteri (fun i c -> Solver.add_clause s ~tag:i c) arr;
  match Solver.solve s with
  | Solver.Sat -> Alcotest.fail "expected UNSAT instance"
  | Solver.Unsat ->
    let core = List.map (fun t -> arr.(t)) (Solver.unsat_core_tags s) in
    let s2 = Solver.create () in
    Solver.set_proof_logging s2 true;
    Solver.ensure_vars s2 nv;
    List.iter (Solver.add_clause s2) core;
    Alcotest.(check bool) "core is unsat" true (Solver.solve s2 = Solver.Unsat);
    Alcotest.(check bool) "core refutation passes the checker" true
      (Checker.verify ~num_vars:nv ~original:core ~derivation:(Solver.proof_log s2))

let test_known_unsat_cores_verify () =
  core_reverifies (pigeonhole_clauses 5 4);
  core_reverifies (pigeonhole_clauses 6 5);
  (* XOR chain contradiction: x0, x0->x1, x1->x2, x2->~x0-ish cycle. *)
  core_reverifies
    [
      [ lit 0 true ];
      [ lit 0 false; lit 1 true ];
      [ lit 1 false; lit 2 true ];
      [ lit 2 false; lit 0 false ];
      (* irrelevant satisfiable padding that must not break the core *)
      [ lit 3 true; lit 4 true ];
      [ lit 4 false; lit 5 true ];
    ];
  (* Forces both minimisation and root-level resolution: units plus chains. *)
  core_reverifies
    [
      [ lit 0 true; lit 1 true; lit 2 true ];
      [ lit 0 false; lit 3 true ];
      [ lit 1 false; lit 3 true ];
      [ lit 2 false; lit 3 true ];
      [ lit 3 false; lit 4 true ];
      [ lit 3 false; lit 4 false ];
    ]

let test_dimacs_file_roundtrip () =
  let p = Dimacs.parse_string "p cnf 4 3\n1 -2 0\n2 3 -4 0\n4 0\n" in
  let path = Filename.temp_file "emmver_test" ".cnf" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Dimacs.to_string p);
      close_out oc;
      let p2 = Dimacs.parse_file path in
      Alcotest.(check int) "vars survive the file" p.Dimacs.num_vars p2.Dimacs.num_vars;
      Alcotest.(check bool) "clauses survive the file" true
        (p.Dimacs.clauses = p2.Dimacs.clauses);
      let s = Solver.create () in
      Dimacs.load_into s p2;
      Alcotest.(check bool) "solvable" true (Solver.solve s = Solver.Sat))

(* Naive DPLL oracle: unit propagation + first-unassigned-variable split.
   Deliberately simple — shares no code or heuristics with the CDCL path. *)
let rec dpll clauses =
  if List.exists (( = ) []) clauses then false
  else
    match clauses with
    | [] -> true
    | _ ->
      let unit_lit = List.find_map (function [ l ] -> Some l | _ -> None) clauses in
      let branch l =
        let neg = Lit.negate l in
        dpll
          (List.filter_map
             (fun c ->
               if List.mem l c then None
               else Some (List.filter (fun x -> x <> neg) c))
             clauses)
      in
      (match unit_lit with
      | Some l -> branch l
      | None ->
        let l = List.hd (List.hd clauses) in
        branch l || branch (Lit.negate l))

let test_random_3sat_vs_dpll () =
  (* Seeded random 3-SAT around the phase-transition ratio, up to 20 vars:
     the CDCL answer must match the DPLL oracle on every instance. *)
  for seed = 0 to 39 do
    let st = Random.State.make [| 0xacc1; seed |] in
    let num_vars = 5 + Random.State.int st 16 in
    let num_clauses = int_of_float (4.2 *. float_of_int num_vars) in
    let clauses =
      List.init num_clauses (fun _ ->
          (* three distinct variables per clause *)
          let rec pick acc =
            if List.length acc = 3 then acc
            else
              let v = Random.State.int st num_vars in
              if List.mem v acc then pick acc else pick (v :: acc)
          in
          List.map (fun v -> lit v (Random.State.bool st)) (pick []))
    in
    let s, r = solve_clauses ~num_vars clauses in
    let expected = dpll clauses in
    (match r with
    | Solver.Sat ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: oracle agrees (sat)" seed)
        true expected;
      check_model s clauses
    | Solver.Unsat ->
      Alcotest.(check bool)
        (Printf.sprintf "seed %d: oracle agrees (unsat)" seed)
        false expected)
  done

let test_stats_sanity () =
  let s = Solver.create () in
  let zero = Solver.stats s in
  Alcotest.(check int) "fresh solver: no conflicts" 0 zero.Solver.conflicts;
  Alcotest.(check (float 0.0)) "empty_stats avg lbd" 0.0 Solver.empty_stats.Solver.avg_lbd;
  List.iter (Solver.add_clause s)
    (let nv =
       List.fold_left
         (fun acc c -> List.fold_left (fun acc l -> max acc (Lit.var l + 1)) acc c)
         0 (pigeonhole_clauses 6 5)
     in
     Solver.ensure_vars s nv;
     pigeonhole_clauses 6 5);
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  let st = Solver.stats s in
  Alcotest.(check bool) "conflicts counted" true (st.Solver.conflicts > 0);
  Alcotest.(check bool) "propagations counted" true (st.Solver.propagations > 0);
  Alcotest.(check bool) "learnt clauses counted" true (st.Solver.learnt_clauses > 0);
  Alcotest.(check bool) "avg lbd positive" true (st.Solver.avg_lbd > 0.0);
  Alcotest.(check bool) "solve time accumulated" true (st.Solver.solve_time_s >= 0.0);
  Alcotest.(check bool) "counters monotone across solves" true
    (let before = st.Solver.conflicts in
     ignore (Solver.solve s);
     (Solver.stats s).Solver.conflicts >= before)

(* {2 Property tests} *)

let gen_clauses num_vars =
  QCheck2.Gen.(
    let gen_lit = map2 (fun v s -> lit v s) (int_bound (num_vars - 1)) bool in
    let gen_clause = list_size (int_range 1 3) gen_lit in
    list_size (int_range 1 40) gen_clause)

let prop_agrees_with_brute_force =
  QCheck2.Test.make ~count:300 ~name:"solver agrees with truth table"
    (gen_clauses 8)
    (fun clauses ->
      let s, r = solve_clauses ~num_vars:8 clauses in
      let expected = brute_force_sat 8 clauses in
      match r with
      | Solver.Sat ->
        expected && List.for_all (List.exists (Solver.value s)) clauses
      | Solver.Unsat -> not expected)

let prop_core_is_unsat =
  QCheck2.Test.make ~count:200 ~name:"unsat core is itself unsat"
    (gen_clauses 7)
    (fun clauses ->
      let arr = Array.of_list clauses in
      let s = Solver.create () in
      Solver.ensure_vars s 7;
      Array.iteri (fun i c -> Solver.add_clause s ~tag:i c) arr;
      match Solver.solve s with
      | Solver.Sat -> true
      | Solver.Unsat ->
        let core_clauses =
          List.map (fun t -> arr.(t)) (Solver.unsat_core_tags s)
        in
        not (brute_force_sat 7 core_clauses))

let prop_assumption_core =
  QCheck2.Test.make ~count:200 ~name:"core + failed assumptions are unsat"
    QCheck2.Gen.(pair (gen_clauses 7) (list_size (int_range 1 3) (int_bound 6)))
    (fun (clauses, assumed_vars) ->
      let assumptions = List.sort_uniq compare (List.map (fun v -> lit v true) assumed_vars) in
      let arr = Array.of_list clauses in
      let s = Solver.create () in
      Solver.ensure_vars s 7;
      Array.iteri (fun i c -> Solver.add_clause s ~tag:i c) arr;
      match Solver.solve ~assumptions s with
      | Solver.Sat -> List.for_all (Solver.value s) assumptions
      | Solver.Unsat ->
        let core_clauses =
          List.map (fun t -> arr.(t)) (Solver.unsat_core_tags s)
        in
        let failed = Solver.failed_assumptions s in
        let as_units = List.map (fun l -> [ l ]) failed in
        List.for_all (fun l -> List.mem l assumptions) failed
        && not (brute_force_sat 7 (as_units @ core_clauses)))

let prop_incremental_consistent =
  QCheck2.Test.make ~count:100 ~name:"incremental solving matches fresh solver"
    QCheck2.Gen.(pair (gen_clauses 7) (gen_clauses 7))
    (fun (first, second) ->
      let s = Solver.create () in
      Solver.ensure_vars s 7;
      List.iter (Solver.add_clause s) first;
      let _ = Solver.solve s in
      List.iter (Solver.add_clause s) second;
      let incremental = Solver.solve s in
      let _, fresh = solve_clauses ~num_vars:7 (first @ second) in
      incremental = fresh)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_agrees_with_brute_force;
        prop_core_is_unsat;
        prop_assumption_core;
        prop_incremental_consistent;
        prop_checker_validates_random_unsat;
      ]
  in
  Alcotest.run "satsolver"
    [
      ( "unit",
        [
          Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
          Alcotest.test_case "trivial unsat" `Quick test_trivial_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "empty formula" `Quick test_empty_formula;
          Alcotest.test_case "tautology dropped" `Quick test_tautology_dropped;
          Alcotest.test_case "pigeonhole unsat" `Quick test_pigeonhole_unsat;
          Alcotest.test_case "pigeonhole sat" `Quick test_pigeonhole_sat;
          Alcotest.test_case "assumptions basic" `Quick test_assumptions_basic;
          Alcotest.test_case "assumptions conflicting" `Quick test_assumptions_conflicting;
          Alcotest.test_case "incremental reuse" `Quick test_incremental_reuse;
          Alcotest.test_case "unsat core subset" `Quick test_unsat_core_subset;
          Alcotest.test_case "unsat core under assumptions" `Quick
            test_unsat_core_under_assumptions;
          Alcotest.test_case "dimacs roundtrip" `Quick test_dimacs_roundtrip;
          Alcotest.test_case "checker validates pigeonhole" `Quick
            test_checker_validates_pigeonhole;
          Alcotest.test_case "checker rejects bogus derivation" `Quick
            test_checker_rejects_bogus_derivation;
          Alcotest.test_case "checker rejects satisfiable set" `Quick
            test_checker_rejects_sat_set;
          Alcotest.test_case "known unsat cores re-verify" `Quick
            test_known_unsat_cores_verify;
          Alcotest.test_case "dimacs file roundtrip" `Quick test_dimacs_file_roundtrip;
          Alcotest.test_case "random 3-sat vs dpll oracle" `Quick
            test_random_3sat_vs_dpll;
          Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
        ] );
      ("property", qsuite);
    ]
