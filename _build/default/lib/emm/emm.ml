module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

type counts = {
  addr_clauses : int;
  excl_gates : int;
  data_clauses : int;
  init_clauses : int;
  init_pairs : int;
  aux_vars : int;
}

let zero_counts =
  {
    addr_clauses = 0;
    excl_gates = 0;
    data_clauses = 0;
    init_clauses = 0;
    init_pairs = 0;
    aux_vars = 0;
  }

let add_counts a b =
  {
    addr_clauses = a.addr_clauses + b.addr_clauses;
    excl_gates = a.excl_gates + b.excl_gates;
    data_clauses = a.data_clauses + b.data_clauses;
    init_clauses = a.init_clauses + b.init_clauses;
    init_pairs = a.init_pairs + b.init_pairs;
    aux_vars = a.aux_vars + b.aux_vars;
  }

let pp_counts ppf c =
  Format.fprintf ppf
    "addr-clauses=%d excl-gates=%d data-clauses=%d init-clauses=%d init-pairs=%d aux-vars=%d"
    c.addr_clauses c.excl_gates c.data_clauses c.init_clauses c.init_pairs c.aux_vars

(* One read access: frame, read port, its "never written" chain head N, the
   fresh initial-data word V, and the read-address literals (for equation (6)
   pairing and for initial-state extraction). *)
type access = {
  a_frame : int;
  a_port : int;
  n_lit : Lit.t;
  v_lits : Lit.t array;
  ra_lits : Lit.t array;
}

type mem_state = {
  mem : Netlist.memory;
  tag : int;
  mutable accesses : access list; (* newest first *)
}

type t = {
  unr : Cnf.t;
  mems : mem_state list;
  init_consistency : bool;
  mutable next_depth : int;
  per_depth : (int, counts) Hashtbl.t;
  mutable current : counts; (* accumulator for the depth being generated *)
}

let create ?memories ?(init_consistency = true) unr =
  let net = Cnf.net unr in
  let mems = match memories with Some ms -> ms | None -> Netlist.memories net in
  let mems =
    List.map
      (fun mem ->
        (match Netlist.memory_init mem with
        | Netlist.Words _ ->
          invalid_arg
            (Printf.sprintf "Emm.create: memory %s has concrete initial words"
               (Netlist.memory_name mem))
        | Netlist.Zeros | Netlist.Arbitrary -> ());
        let tag = Cnf.tag_for unr (Cnf.Tag.Memory (Netlist.memory_id mem)) in
        { mem; tag; accesses = [] })
      mems
  in
  {
    unr;
    mems;
    init_consistency;
    next_depth = 0;
    per_depth = Hashtbl.create 64;
    current = zero_counts;
  }

let fresh t =
  t.current <- { t.current with aux_vars = t.current.aux_vars + 1 };
  Cnf.fresh_lit t.unr

let bump_addr t n = t.current <- { t.current with addr_clauses = t.current.addr_clauses + n }
let bump_data t n = t.current <- { t.current with data_clauses = t.current.data_clauses + n }
let bump_init t n = t.current <- { t.current with init_clauses = t.current.init_clauses + n }
let bump_pairs t n = t.current <- { t.current with init_pairs = t.current.init_pairs + n }
let bump_gates t n = t.current <- { t.current with excl_gates = t.current.excl_gates + n }

(* A 2-input AND "gate" in the hybrid representation: fresh variable plus the
   three defining clauses.  Counted as one exclusivity gate, per the paper's
   accounting, unless [counted] is false (eq. (6) helper gates are reported
   through [init_pairs] instead). *)
let and_gate ?(counted = true) t ~tag a b =
  let v = fresh t in
  Cnf.add_clause ~tag t.unr [ Lit.negate v; a ];
  Cnf.add_clause ~tag t.unr [ Lit.negate v; b ];
  Cnf.add_clause ~tag t.unr [ v; Lit.negate a; Lit.negate b ];
  if counted then bump_gates t 1;
  v

(* Address-equality variable over two literal buses, with the paper's 4m+1
   clause encoding: per bit, (E -> (a=b)) and ((a=b) -> e); finally
   (/\ e -> E). *)
let addr_equal t ~tag ~bump a_bus b_bus =
  let m = Array.length a_bus in
  let e_vars = Array.make m (Lit.pos 0) in
  let eq = fresh t in
  for i = 0 to m - 1 do
    let a = a_bus.(i) and b = b_bus.(i) in
    let e = fresh t in
    e_vars.(i) <- e;
    (* E -> (a = b) *)
    Cnf.add_clause ~tag t.unr [ Lit.negate eq; Lit.negate a; b ];
    Cnf.add_clause ~tag t.unr [ Lit.negate eq; a; Lit.negate b ];
    (* (a = b) -> e *)
    Cnf.add_clause ~tag t.unr [ Lit.negate a; Lit.negate b; e ];
    Cnf.add_clause ~tag t.unr [ a; b; e ]
  done;
  (* (/\ e) -> E *)
  Cnf.add_clause ~tag t.unr
    (eq :: Array.to_list (Array.map Lit.negate e_vars));
  bump t ((4 * m) + 1);
  eq

let lits_of_bus t ~frame bus = Array.map (fun s -> Cnf.lit t.unr ~frame s) bus

(* Generate all constraints for read port [r] of memory [ms] at depth [k]. *)
let constrain_read t ms k r =
  let unr = t.unr in
  let tag = ms.tag in
  let mem = ms.mem in
  let n_bits = Netlist.memory_data_width mem in
  let w_count = Netlist.num_write_ports mem in
  let addr_bus, enable, out = Netlist.read_port mem r in
  let ra = lits_of_bus t ~frame:k addr_bus in
  let re = Cnf.lit unr ~frame:k enable in
  let rd = lits_of_bus t ~frame:k out in
  (* Write-port literals per frame: (addr, data, we). *)
  let write_lits j w =
    let wa, wd, we = Netlist.write_port mem w in
    (lits_of_bus t ~frame:j wa, lits_of_bus t ~frame:j wd, Cnf.lit unr ~frame:j we)
  in
  (* s(j,w) = E(j,k,w,r) /\ WE(j,w) for every write access before k. *)
  let s_of =
    Array.init k (fun j ->
        Array.init w_count (fun w ->
            let wa, _, we = write_lits j w in
            let e = addr_equal t ~tag ~bump:bump_addr wa ra in
            and_gate t ~tag e we))
  in
  (* Exclusivity chains (eq. 4), built from the most recent access backwards:
     PS(k,k,0) = RE; PS(i,p) = ~s(i,p) /\ PS(i,p+1); PS(i,W) = PS(i+1,0);
     S(i,p) = s(i,p) /\ PS(i,p+1). *)
  let s_sel = Array.make_matrix (max k 1) (max w_count 1) (Lit.pos 0) in
  let ps = ref re in
  for i = k - 1 downto 0 do
    for p = w_count - 1 downto 0 do
      let s = s_of.(i).(p) in
      let ps_next = !ps in
      s_sel.(i).(p) <- and_gate t ~tag s ps_next;
      ps := and_gate t ~tag (Lit.negate s) ps_next
    done
  done;
  let n_never = !ps in
  (* Read-data constraints (eq. 5): S(i,p) -> RD = WD(i,p). *)
  for i = 0 to k - 1 do
    for p = 0 to w_count - 1 do
      let _, wd, _ = write_lits i p in
      let sel = s_sel.(i).(p) in
      for b = 0 to n_bits - 1 do
        Cnf.add_clause ~tag unr [ Lit.negate sel; Lit.negate rd.(b); wd.(b) ];
        Cnf.add_clause ~tag unr [ Lit.negate sel; rd.(b); Lit.negate wd.(b) ]
      done;
      bump_data t (2 * n_bits)
    done
  done;
  (* Arbitrary initial word V: N -> RD = V. *)
  let v_lits = Array.init n_bits (fun _ -> fresh t) in
  for b = 0 to n_bits - 1 do
    Cnf.add_clause ~tag unr [ Lit.negate n_never; Lit.negate rd.(b); v_lits.(b) ];
    Cnf.add_clause ~tag unr [ Lit.negate n_never; rd.(b); Lit.negate v_lits.(b) ]
  done;
  bump_data t (2 * n_bits);
  (* Read-validity clause: RE -> (\/ S \/ N).  Implied by the chain but added
     explicitly, as in the paper, to speed up the solver. *)
  let sels =
    List.concat_map
      (fun i -> List.map (fun p -> s_sel.(i).(p)) (List.init w_count Fun.id))
      (List.init k Fun.id)
  in
  Cnf.add_clause ~tag unr (Lit.negate re :: n_never :: sels);
  bump_data t 1;
  (* Reset contents: a memory initialised to zero reads 0 from unwritten
     locations — but only on paths starting at the initial state. *)
  (match Netlist.memory_init mem with
  | Netlist.Zeros ->
    let act = Cnf.act_init unr in
    for b = 0 to n_bits - 1 do
      Cnf.add_clause ~tag unr [ Lit.negate act; Lit.negate n_never; Lit.negate rd.(b) ]
    done;
    bump_init t n_bits
  | Netlist.Arbitrary -> ()
  | Netlist.Words _ -> assert false);
  (* Equation (6): pairwise consistency with every earlier read access. *)
  let this = { a_frame = k; a_port = r; n_lit = n_never; v_lits; ra_lits = ra } in
  if t.init_consistency then
    List.iter
      (fun other ->
        let eq = addr_equal t ~tag ~bump:(fun _ _ -> ()) other.ra_lits ra in
        let u =
          and_gate ~counted:false t ~tag eq
            (and_gate ~counted:false t ~tag n_never other.n_lit)
        in
        for b = 0 to n_bits - 1 do
          Cnf.add_clause ~tag unr
            [ Lit.negate u; Lit.negate v_lits.(b); other.v_lits.(b) ];
          Cnf.add_clause ~tag unr
            [ Lit.negate u; v_lits.(b); Lit.negate other.v_lits.(b) ]
        done;
        bump_pairs t 1)
      ms.accesses;
  ms.accesses <- this :: ms.accesses

let add_constraints t k =
  if k <> t.next_depth then
    invalid_arg
      (Printf.sprintf "Emm.add_constraints: expected depth %d, got %d" t.next_depth k);
  t.next_depth <- k + 1;
  t.current <- zero_counts;
  List.iter
    (fun ms ->
      List.iter
        (fun r -> constrain_read t ms k r)
        (List.init (Netlist.num_read_ports ms.mem) Fun.id))
    t.mems;
  Hashtbl.replace t.per_depth k t.current

let counts_at t k =
  match Hashtbl.find_opt t.per_depth k with Some c -> c | None -> zero_counts

let counts_total t =
  Hashtbl.fold (fun _ c acc -> add_counts c acc) t.per_depth zero_counts

let word_of_lits solver lits =
  let w = ref 0 in
  Array.iteri (fun i l -> if Solver.value solver l then w := !w lor (1 lsl i)) lits;
  !w

let mem_init_of_model t =
  let solver = Cnf.solver t.unr in
  List.filter_map
    (fun ms ->
      match Netlist.memory_init ms.mem with
      | Netlist.Zeros -> None (* defaults already match *)
      | Netlist.Words _ -> None
      | Netlist.Arbitrary ->
        let words =
          List.filter_map
            (fun a ->
              if Solver.value solver a.n_lit then
                Some (word_of_lits solver a.ra_lits, word_of_lits solver a.v_lits)
              else None)
            ms.accesses
        in
        let dedup =
          List.fold_left
            (fun acc (addr, w) -> if List.mem_assoc addr acc then acc else (addr, w) :: acc)
            [] words
        in
        Some (Netlist.memory_name ms.mem, dedup))
    t.mems

let predicted_clauses ~aw ~dw ~k ~writes ~reads =
  ((((4 * aw) + (2 * dw) + 1) * k * writes) + (2 * dw) + 1) * reads

let predicted_gates ~k ~writes ~reads = 3 * k * writes * reads

type race = {
  race_memory : string;
  race_depth : int;
  race_ports : int * int;
  race_trace : Bmc.Trace.t;
}

(* Input stimulus of the current model, for race reporting. *)
let trace_of_model t ~depth ~label =
  let net = Cnf.net t.unr in
  let solver = Cnf.solver t.unr in
  let inputs =
    Array.init (depth + 1) (fun frame ->
        List.filter_map
          (fun s ->
            match Netlist.node net (Netlist.node_of s) with
            | Netlist.Input name ->
              Some (name, Solver.value solver (Cnf.lit t.unr ~frame s))
            | Netlist.Const_false | Netlist.Latch _ | Netlist.And _
            | Netlist.Mem_out _ -> None)
          (Netlist.inputs net))
  in
  let latch0 =
    List.filter_map
      (fun l ->
        match Netlist.latch_init net l with
        | None ->
          Some (Netlist.latch_name net l, Solver.value solver (Cnf.lit t.unr ~frame:0 l))
        | Some _ -> None)
      (Netlist.latches net)
  in
  {
    Bmc.Trace.property = label;
    depth;
    inputs;
    latch0;
    mem_init = mem_init_of_model t;
  }

let find_data_race ?(max_depth = 50) ?deadline net =
  let solver = Solver.create () in
  Solver.set_deadline solver deadline;
  let unr = Cnf.create solver net in
  let t = create unr in
  let act_init = Cnf.act_init unr in
  let deadline_passed () =
    match deadline with Some d -> Unix.gettimeofday () > d | None -> false
  in
  let result = ref None in
  (try
     for k = 0 to max_depth do
       if deadline_passed () then raise Exit;
       add_constraints t k;
       List.iter
         (fun ms ->
           let mem = ms.mem in
           let w = Netlist.num_write_ports mem in
           for w1 = 0 to w - 1 do
             for w2 = w1 + 1 to w - 1 do
               let a1, _, e1 = Netlist.write_port mem w1 in
               let a2, _, e2 = Netlist.write_port mem w2 in
               let eq =
                 addr_equal t ~tag:ms.tag
                   ~bump:(fun _ _ -> ())
                   (lits_of_bus t ~frame:k a1) (lits_of_bus t ~frame:k a2)
               in
               let assumptions =
                 [
                   act_init;
                   eq;
                   Cnf.lit unr ~frame:k e1;
                   Cnf.lit unr ~frame:k e2;
                 ]
               in
               if !result = None && Solver.solve ~assumptions solver = Solver.Sat
               then
                 result :=
                   Some
                     {
                       race_memory = Netlist.memory_name mem;
                       race_depth = k;
                       race_ports = (w1, w2);
                       race_trace =
                         trace_of_model t ~depth:k
                           ~label:
                             (Printf.sprintf "__race_%s__" (Netlist.memory_name mem));
                     }
             done
           done)
         t.mems;
       if !result <> None then raise Exit
     done
   with Exit | Solver.Timeout -> ());
  !result

let hooks ?memories ?init_consistency net =
  ignore net;
  let state = ref None in
  let get unr =
    match !state with
    | Some s -> s
    | None ->
      let s = create ?memories ?init_consistency unr in
      state := Some s;
      s
  in
  let hooks =
    {
      Bmc.Engine.on_unroll = (fun unr k -> add_constraints (get unr) k);
      mem_init_of_model =
        (fun unr _depth -> match !state with
          | Some s -> mem_init_of_model s
          | None -> ignore unr; []);
    }
  in
  let get_counts () = match !state with Some s -> counts_total s | None -> zero_counts in
  (hooks, get_counts)

let check ?config ?memories ?init_consistency net ~property =
  let hks, get_counts = hooks ?memories ?init_consistency net in
  let result = Bmc.Engine.check ?config ~hooks:hks net ~property in
  (result, get_counts ())

let check_many ?config ?memories ?init_consistency net ~properties =
  let hks, get_counts = hooks ?memories ?init_consistency net in
  let results, stats = Bmc.Engine.check_all ?config ~hooks:hks net ~properties in
  (results, stats, get_counts ())
