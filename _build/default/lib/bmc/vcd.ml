(* Identifier codes: VCD allows any printable ASCII; generate short unique
   codes from an integer counter. *)
let code_of_int n =
  let base = 94 and first = 33 in
  let rec go n acc =
    let acc = String.make 1 (Char.chr (first + (n mod base))) ^ acc in
    if n < base then acc else go ((n / base) - 1) acc
  in
  go n ""

type watched = { w_name : string; w_code : string; w_signal : Netlist.signal }

let sanitize name =
  String.map (fun c -> if c = ' ' || c = '$' then '_' else c) name

let write net trace out =
  let watched = ref [] in
  let counter = ref 0 in
  let add name signal =
    let w = { w_name = sanitize name; w_code = code_of_int !counter; w_signal = signal } in
    incr counter;
    watched := w :: !watched
  in
  List.iter
    (fun s ->
      match Netlist.node net (Netlist.node_of s) with
      | Netlist.Input name -> add name s
      | Netlist.Const_false | Netlist.Latch _ | Netlist.And _ | Netlist.Mem_out _ -> ())
    (Netlist.inputs net);
  List.iter (fun l -> add (Netlist.latch_name net l) l) (Netlist.latches net);
  List.iter (fun (name, s) -> add ("out." ^ name) s) (Netlist.outputs net);
  List.iter (fun (name, s) -> add ("prop." ^ name) s) (Netlist.properties net);
  let watched = List.rev !watched in
  Printf.fprintf out "$date reproduced counterexample $end\n";
  Printf.fprintf out "$version emmver $end\n";
  Printf.fprintf out "$timescale 1ns $end\n";
  Printf.fprintf out "$scope module %s $end\n" (sanitize trace.Trace.property);
  List.iter
    (fun w -> Printf.fprintf out "$var wire 1 %s %s $end\n" w.w_code w.w_name)
    watched;
  Printf.fprintf out "$upscope $end\n$enddefinitions $end\n";
  (* Replay, dumping values after each evaluated cycle. *)
  let latch_values l =
    match List.assoc_opt (Netlist.latch_name net l) trace.Trace.latch0 with
    | Some v -> v
    | None -> false
  in
  let mem_values m a =
    match List.assoc_opt (Netlist.memory_name m) trace.Trace.mem_init with
    | Some words -> ( match List.assoc_opt a words with Some w -> w | None -> 0)
    | None -> 0
  in
  let sim = Simulator.create ~latch_values ~mem_values net in
  let previous = Hashtbl.create 64 in
  for frame = 0 to trace.Trace.depth do
    let frame_inputs =
      if frame < Array.length trace.Trace.inputs then trace.Trace.inputs.(frame) else []
    in
    let inputs name =
      match List.assoc_opt name frame_inputs with Some v -> v | None -> false
    in
    Simulator.step sim ~inputs;
    Printf.fprintf out "#%d\n" (frame * 10);
    if frame = 0 then Printf.fprintf out "$dumpvars\n";
    List.iter
      (fun w ->
        let v = Simulator.value sim w.w_signal in
        let changed =
          match Hashtbl.find_opt previous w.w_code with
          | Some old -> old <> v
          | None -> true
        in
        if changed then begin
          Hashtbl.replace previous w.w_code v;
          Printf.fprintf out "%d%s\n" (Bool.to_int v) w.w_code
        end)
      watched;
    if frame = 0 then Printf.fprintf out "$end\n"
  done;
  Printf.fprintf out "#%d\n" ((trace.Trace.depth + 1) * 10)

let write_file net trace path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> write net trace out)
