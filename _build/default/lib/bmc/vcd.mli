(** Value-change-dump export of counterexample traces.

    Replays a trace on the cycle-accurate simulator and emits a VCD file
    with every primary input, latch, output and property of the design, so
    counterexamples can be inspected in any waveform viewer (GTKWave
    etc.). *)

val write : Netlist.t -> Trace.t -> out_channel -> unit
(** Raises the usual [Invalid_argument]/[Not_found] of trace replay if the
    trace does not belong to the netlist. *)

val write_file : Netlist.t -> Trace.t -> string -> unit
