type t = {
  property : string;
  depth : int;
  inputs : (string * bool) list array;
  latch0 : (string * bool) list;
  mem_init : (string * (int * int) list) list;
}

let property_values net trace =
  let prop = Netlist.find_property net trace.property in
  let latch_values l =
    match List.assoc_opt (Netlist.latch_name net l) trace.latch0 with
    | Some v -> v
    | None -> false
  in
  let mem_values m a =
    match List.assoc_opt (Netlist.memory_name m) trace.mem_init with
    | Some words -> ( match List.assoc_opt a words with Some w -> w | None -> 0)
    | None -> 0
  in
  let sim = Simulator.create ~latch_values ~mem_values net in
  Array.init (trace.depth + 1) (fun frame ->
      let frame_inputs =
        if frame < Array.length trace.inputs then trace.inputs.(frame) else []
      in
      let inputs name =
        match List.assoc_opt name frame_inputs with Some v -> v | None -> false
      in
      Simulator.step sim ~inputs;
      Simulator.value sim prop)

let replay net trace =
  let values = property_values net trace in
  not values.(trace.depth)

let pp ppf t =
  Format.fprintf ppf "@[<v>counterexample for %S at depth %d@," t.property t.depth;
  if t.latch0 <> [] then begin
    Format.fprintf ppf "initial latches:";
    List.iter (fun (n, v) -> Format.fprintf ppf " %s=%b" n v) t.latch0;
    Format.fprintf ppf "@,"
  end;
  List.iter
    (fun (m, words) ->
      Format.fprintf ppf "initial %s:" m;
      List.iter (fun (a, w) -> Format.fprintf ppf " [%d]=%d" a w) words;
      Format.fprintf ppf "@,")
    t.mem_init;
  Array.iteri
    (fun frame assignments ->
      Format.fprintf ppf "frame %d:" frame;
      List.iter (fun (n, v) -> if v then Format.fprintf ppf " %s" n) assignments;
      Format.fprintf ppf "@,")
    t.inputs;
  Format.fprintf ppf "@]"
