(** Counterexample traces and their replay.

    A trace records everything needed to reproduce a property violation on
    the {!Simulator}: the primary-input stimulus per frame, the values of
    arbitrary-initial-value latches, and — for EMM counterexamples over
    memories with arbitrary initial contents — the initial memory words the
    solver chose.  Replaying a trace on the original netlist confirms the
    counterexample is a real design behaviour (and exposes spurious ones
    produced by over-abstraction, as in the paper's Industry-II study). *)

type t = {
  property : string;
  depth : int;  (** frame at which the property fails *)
  inputs : (string * bool) list array;  (** index = frame *)
  latch0 : (string * bool) list;  (** arbitrary-init latches only *)
  mem_init : (string * (int * int) list) list;
      (** memory name -> (address, word) initial contents constraints *)
}

val replay : Netlist.t -> t -> bool
(** [replay net trace] simulates the stimulus and returns [true] iff the
    named property evaluates to false at frame [depth] — i.e. the trace is a
    genuine counterexample of [net]. *)

val property_values : Netlist.t -> t -> bool array
(** Value of the property signal at each frame [0 .. depth] during replay. *)

val pp : Format.formatter -> t -> unit
