lib/bmc/trace.mli: Format Netlist
