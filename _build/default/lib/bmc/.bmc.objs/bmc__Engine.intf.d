lib/bmc/engine.mli: Cnf Format Netlist Trace
