lib/bmc/vcd.ml: Array Bool Char Fun Hashtbl List Netlist Printf Simulator String Trace
