lib/bmc/engine.ml: Array Cnf Format Fun Gc Hashtbl List Netlist Satsolver Trace Unix
