lib/bmc/vcd.mli: Netlist Trace
