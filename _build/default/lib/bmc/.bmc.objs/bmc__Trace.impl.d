lib/bmc/trace.ml: Array Format List Netlist Simulator
