(** BDD-based symbolic model checking (forward reachability).

    The classical comparator the paper's prototype platform also carries:
    states are encoded over one BDD variable per latch, the monolithic
    transition relation is the conjunction of next-state equivalences, and
    reachability iterates image computation to a fixed point.  Memories must
    be expanded first (see {!Explicitmem.expand}) — which is precisely why
    this engine collapses on embedded-memory designs, as reported in the
    paper ("our BDD-based model checker was unable to build even the
    transition relation").  The [max_nodes] budget turns that collapse into
    the {!verdict} [Node_limit] instead of exhausting the machine. *)

type verdict =
  | Safe of int  (** fixpoint reached after this many image steps *)
  | Unsafe of int  (** a bad state is reachable within this many steps *)
  | Node_limit  (** the BDD package exceeded its node budget *)
  | Step_limit of int

type result = {
  verdict : verdict;
  peak_nodes : int;
  reachable_size : int;  (** BDD nodes of the final reachable-set *)
  time : float;
}

val check :
  ?max_nodes:int -> ?max_steps:int -> Netlist.t -> property:string -> result
(** Raises [Invalid_argument] if the netlist still contains memory
    modules. *)

val pp_verdict : Format.formatter -> verdict -> unit
