type verdict = Safe of int | Unsafe of int | Node_limit | Step_limit of int

type result = {
  verdict : verdict;
  peak_nodes : int;
  reachable_size : int;
  time : float;
}

(* Variable layout: latch i gets current-state var 2i and next-state var
   2i+1 (interleaving keeps the transition relation small); inputs follow
   after all state variables. *)
let check ?(max_nodes = 2_000_000) ?(max_steps = 10_000) net ~property =
  if Netlist.memories net <> [] then
    invalid_arg "Bddmc.check: netlist has memory modules; expand them first";
  let t0 = Unix.gettimeofday () in
  let m = Bdd.man ~max_nodes () in
  let latches = Array.of_list (Netlist.latches net) in
  let nl = Array.length latches in
  let cur_var i = 2 * i and nxt_var i = (2 * i) + 1 in
  let latch_index = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace latch_index (Netlist.node_of l) i) latches;
  let input_index = Hashtbl.create 64 in
  let input_var id =
    match Hashtbl.find_opt input_index id with
    | Some v -> v
    | None ->
      let v = (2 * nl) + Hashtbl.length input_index in
      Hashtbl.replace input_index id v;
      v
  in
  (* Combinational BDD of a signal over current-state and input vars. *)
  let node_cache = Hashtbl.create 1024 in
  let rec bdd_of_node id =
    match Hashtbl.find_opt node_cache id with
    | Some b -> b
    | None ->
      let b =
        match Netlist.node net id with
        | Netlist.Const_false -> Bdd.fls m
        | Netlist.Input _ -> Bdd.var m (input_var id)
        | Netlist.Latch _ -> Bdd.var m (cur_var (Hashtbl.find latch_index id))
        | Netlist.And (a, b) -> Bdd.and_ m (bdd_of_signal a) (bdd_of_signal b)
        | Netlist.Mem_out _ -> assert false
      in
      Hashtbl.replace node_cache id b;
      b
  and bdd_of_signal s =
    let b = bdd_of_node (Netlist.node_of s) in
    if Netlist.is_complement s then Bdd.not_ m b else b
  in
  let finish verdict reachable =
    {
      verdict;
      peak_nodes = Bdd.live_nodes m;
      reachable_size = Bdd.size reachable;
      time = Unix.gettimeofday () -. t0;
    }
  in
  try
    let prop = bdd_of_signal (Netlist.find_property net property) in
    (* Transition relation: /\ (next_i <-> f_i). *)
    let trans =
      Array.to_list latches
      |> List.mapi (fun i l ->
             Bdd.xnor_ m
               (Bdd.var m (nxt_var i))
               (bdd_of_signal (Netlist.latch_next net l)))
      |> List.fold_left (Bdd.and_ m) (Bdd.tru m)
    in
    let init =
      Array.to_list latches
      |> List.mapi (fun i l ->
             match Netlist.latch_init net l with
             | Some true -> Bdd.var m (cur_var i)
             | Some false -> Bdd.nvar m (cur_var i)
             | None -> Bdd.tru m)
      |> List.fold_left (Bdd.and_ m) (Bdd.tru m)
    in
    let input_vars () = Hashtbl.fold (fun _ v acc -> v :: acc) input_index [] in
    let cur_vars = List.init nl cur_var in
    (* Bad states: some input valuation falsifies the property. *)
    let bad = Bdd.exists m (input_vars ()) (Bdd.not_ m prop) in
    let rename_next_to_cur b =
      Bdd.compose m
        (fun v ->
          if v < 2 * nl && v land 1 = 1 then Some (Bdd.var m (v - 1)) else None)
        b
    in
    let image s =
      rename_next_to_cur
        (Bdd.exists m (cur_vars @ input_vars ()) (Bdd.and_ m s trans))
    in
    let rec iterate reached frontier step =
      if not (Bdd.is_false (Bdd.and_ m reached bad)) then finish (Unsafe step) reached
      else if step >= max_steps then finish (Step_limit step) reached
      else
        let next = image frontier in
        let fresh = Bdd.and_ m next (Bdd.not_ m reached) in
        if Bdd.is_false fresh then finish (Safe step) reached
        else iterate (Bdd.or_ m reached fresh) fresh (step + 1)
    in
    iterate init init 0
  with Bdd.Blowup -> finish Node_limit (Bdd.fls m)

let pp_verdict ppf = function
  | Safe n -> Format.fprintf ppf "safe (fixpoint after %d steps)" n
  | Unsafe n -> Format.fprintf ppf "unsafe (bad state reachable in %d steps)" n
  | Node_limit -> Format.fprintf ppf "BDD node limit exceeded"
  | Step_limit n -> Format.fprintf ppf "step limit reached (%d)" n
