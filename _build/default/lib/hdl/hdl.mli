(** Word-level RTL construction DSL.

    A thin synthesisable layer over {!Netlist}: vectors are little-endian
    arrays of bit signals (index 0 = LSB), and every operation elaborates
    directly into AND-inverter gates.  The case-study designs (quicksort
    machine, image filter, multi-port lookup engine) are written against this
    interface.

    All operations check widths and raise [Invalid_argument] on mismatch. *)

type ctx
type bit = Netlist.signal
type vector = bit array

val create : unit -> ctx
val netlist : ctx -> Netlist.t

(** {2 Constants and inputs} *)

val const : width:int -> int -> vector
(** [const ~width n] encodes the low [width] bits of [n]. *)

val zero : width:int -> vector
val ones : width:int -> vector
val input : ctx -> string -> width:int -> vector
val input_bit : ctx -> string -> bit

(** {2 Bitwise and logical operations} *)

val not_v : vector -> vector
val and_v : ctx -> vector -> vector -> vector
val or_v : ctx -> vector -> vector -> vector
val xor_v : ctx -> vector -> vector -> vector
val mux2 : ctx -> bit -> vector -> vector -> vector
(** [mux2 ctx sel a b] is [a] when [sel] else [b]. *)

val pmux : ctx -> (bit * vector) list -> default:vector -> vector
(** Priority multiplexer: first true condition wins. *)

val reduce_or : ctx -> vector -> bit
val reduce_and : ctx -> vector -> bit

(** {2 Arithmetic and comparison (unsigned)} *)

val add : ctx -> vector -> vector -> vector
val add_carry : ctx -> vector -> vector -> vector * bit
val sub : ctx -> vector -> vector -> vector
val incr : ctx -> vector -> vector
val decr : ctx -> vector -> vector
val eq : ctx -> vector -> vector -> bit
val neq : ctx -> vector -> vector -> bit
val lt : ctx -> vector -> vector -> bit
val le : ctx -> vector -> vector -> bit
val gt : ctx -> vector -> vector -> bit
val ge : ctx -> vector -> vector -> bit
val eq_const : ctx -> vector -> int -> bit

(** {2 Structural} *)

val concat : vector -> vector -> vector
(** [concat lo hi] appends [hi] above [lo]. *)

val select : vector -> hi:int -> lo:int -> vector
val bit_of : vector -> int -> bit
val uresize : vector -> width:int -> vector
(** Zero-extend or truncate. *)

val shift_left_const : vector -> int -> vector
val shift_right_const : vector -> int -> vector

(** {2 State} *)

val reg : ctx -> ?init:int option -> string -> width:int -> vector
(** A register.  [init] defaults to [Some 0]; [None] gives an arbitrary
    initial value.  Connect its input later with {!connect}. *)

val reg_bit : ctx -> ?init:bool option -> string -> bit
val connect : ctx -> vector -> vector -> unit
(** [connect ctx q d] sets the next-state of register [q] to [d]. *)

val connect_bit : ctx -> bit -> bit -> unit

(** {2 Finite-state-machine helper} *)

module Fsm : sig
  type t

  val create : ctx -> string -> states:string list -> t
  (** Binary-encoded state register, reset to the first state. *)

  val is : t -> string -> bit
  (** True when the machine is in the named state. *)

  val finalize : t -> (bit * string) list -> unit
  (** [finalize fsm transitions] connects the state register: the first
      transition whose condition holds selects the next state; otherwise the
      machine keeps its state.  Must be called exactly once. *)

  val state_vector : t -> vector
  val encoding : t -> string -> int
end

(** {2 Memories} *)

val memory :
  ctx -> name:string -> addr_width:int -> data_width:int -> init:Netlist.mem_init ->
  Netlist.memory

val write_port :
  ctx -> Netlist.memory -> addr:vector -> data:vector -> enable:bit -> unit

val read_port : ctx -> Netlist.memory -> addr:vector -> enable:bit -> vector

(** {2 Verification hooks} *)

val assert_always : ctx -> string -> bit -> unit
(** Register a safety property [AG p]. *)

val output : ctx -> string -> vector -> unit
val output_bit : ctx -> string -> bit -> unit
