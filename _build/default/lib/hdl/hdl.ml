type ctx = { net : Netlist.t }
type bit = Netlist.signal
type vector = bit array

let create () = { net = Netlist.create () }
let netlist ctx = ctx.net

let const ~width n =
  if width <= 0 then invalid_arg "Hdl.const: width";
  Array.init width (fun i -> Netlist.of_bool ((n lsr i) land 1 = 1))

let zero ~width = const ~width 0
let ones ~width = const ~width (-1)

let input ctx name ~width =
  Array.init width (fun i -> Netlist.input ctx.net (Printf.sprintf "%s[%d]" name i))

let input_bit ctx name = Netlist.input ctx.net name

let check_same_width op a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Hdl.%s: width mismatch (%d vs %d)" op (Array.length a)
                   (Array.length b))

let not_v a = Array.map Netlist.not_ a
let map2 f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let and_v ctx a b =
  check_same_width "and_v" a b;
  map2 (Netlist.and_ ctx.net) a b

let or_v ctx a b =
  check_same_width "or_v" a b;
  map2 (Netlist.or_ ctx.net) a b

let xor_v ctx a b =
  check_same_width "xor_v" a b;
  map2 (Netlist.xor_ ctx.net) a b

let mux2 ctx sel a b =
  check_same_width "mux2" a b;
  map2 (fun x y -> Netlist.mux ctx.net sel x y) a b

let pmux ctx cases ~default =
  List.fold_right (fun (cond, v) acc -> mux2 ctx cond v acc) cases default

let reduce_or ctx a = Array.fold_left (Netlist.or_ ctx.net) Netlist.false_ a
let reduce_and ctx a = Array.fold_left (Netlist.and_ ctx.net) Netlist.true_ a

(* Ripple-carry addition; [cin] threads through for subtraction reuse. *)
let add_with_cin ctx a b cin =
  check_same_width "add" a b;
  let n = Array.length a in
  let sum = Array.make n Netlist.false_ in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let x = a.(i) and y = b.(i) in
    let xy = Netlist.xor_ ctx.net x y in
    sum.(i) <- Netlist.xor_ ctx.net xy !carry;
    carry :=
      Netlist.or_ ctx.net (Netlist.and_ ctx.net x y) (Netlist.and_ ctx.net xy !carry)
  done;
  (sum, !carry)

let add_carry ctx a b = add_with_cin ctx a b Netlist.false_
let add ctx a b = fst (add_carry ctx a b)
let sub ctx a b = fst (add_with_cin ctx a (not_v b) Netlist.true_)
let incr ctx a = add ctx a (const ~width:(Array.length a) 1)
let decr ctx a = sub ctx a (const ~width:(Array.length a) 1)

let eq ctx a b =
  check_same_width "eq" a b;
  reduce_and ctx (map2 (Netlist.xnor_ ctx.net) a b)

let neq ctx a b = Netlist.not_ (eq ctx a b)

(* a < b (unsigned) iff a + ~b + 1 has no carry out, i.e. a - b borrows. *)
let lt ctx a b =
  check_same_width "lt" a b;
  let _, carry = add_with_cin ctx a (not_v b) Netlist.true_ in
  Netlist.not_ carry

let ge ctx a b = Netlist.not_ (lt ctx a b)
let gt ctx a b = lt ctx b a
let le ctx a b = ge ctx b a
let eq_const ctx a n = eq ctx a (const ~width:(Array.length a) n)

let concat lo hi = Array.append lo hi

let select v ~hi ~lo =
  if lo < 0 || hi >= Array.length v || hi < lo then invalid_arg "Hdl.select: range";
  Array.sub v lo (hi - lo + 1)

let bit_of v i =
  if i < 0 || i >= Array.length v then invalid_arg "Hdl.bit_of: index";
  v.(i)

let uresize v ~width =
  let n = Array.length v in
  if width <= n then Array.sub v 0 width
  else Array.append v (Array.make (width - n) Netlist.false_)

let shift_left_const v k =
  let n = Array.length v in
  Array.init n (fun i -> if i < k then Netlist.false_ else v.(i - k))

let shift_right_const v k =
  let n = Array.length v in
  Array.init n (fun i -> if i + k < n then v.(i + k) else Netlist.false_)

let reg ctx ?(init = Some 0) name ~width =
  Array.init width (fun i ->
      let bit_init = Option.map (fun n -> (n lsr i) land 1 = 1) init in
      Netlist.latch ctx.net ~init:bit_init (Printf.sprintf "%s[%d]" name i))

let reg_bit ctx ?(init = Some false) name = Netlist.latch ctx.net ~init name

let connect ctx q d =
  check_same_width "connect" q d;
  Array.iteri (fun i l -> Netlist.set_next ctx.net l d.(i)) q

let connect_bit ctx q d = Netlist.set_next ctx.net q d

module Fsm = struct
  type t = {
    ctx : ctx;
    state : vector;
    names : string array;
    mutable finalized : bool;
  }

  let width_for n =
    let rec go w = if 1 lsl w >= n then w else go (w + 1) in
    max 1 (go 0)

  let create ctx name ~states =
    if states = [] then invalid_arg "Fsm.create: no states";
    let names = Array.of_list states in
    let state = reg ctx ~init:(Some 0) name ~width:(width_for (Array.length names)) in
    { ctx; state; names; finalized = false }

  let encoding t name =
    let rec find i =
      if i >= Array.length t.names then invalid_arg ("Fsm: unknown state " ^ name)
      else if t.names.(i) = name then i
      else find (i + 1)
    in
    find 0

  let is t name = eq_const t.ctx t.state (encoding t name)

  let finalize t transitions =
    if t.finalized then invalid_arg "Fsm.finalize: called twice";
    t.finalized <- true;
    let width = Array.length t.state in
    let next =
      pmux t.ctx
        (List.map (fun (cond, target) -> (cond, const ~width (encoding t target)))
           transitions)
        ~default:t.state
    in
    connect t.ctx t.state next

  let state_vector t = t.state
end

let memory ctx ~name ~addr_width ~data_width ~init =
  Netlist.add_memory ctx.net ~name ~addr_width ~data_width ~init

let write_port ctx m ~addr ~data ~enable =
  ignore (Netlist.add_write_port ctx.net m ~addr ~data ~enable)

let read_port ctx m ~addr ~enable = Netlist.add_read_port ctx.net m ~addr ~enable

let assert_always ctx name p = Netlist.add_property ctx.net name p

let output ctx name v =
  Array.iteri
    (fun i s -> Netlist.add_output ctx.net (Printf.sprintf "%s[%d]" name i) s)
    v

let output_bit ctx name s = Netlist.add_output ctx.net name s
