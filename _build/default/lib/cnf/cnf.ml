module Solver = Satsolver.Solver
module Lit = Satsolver.Lit

module Tag = struct
  type meaning =
    | Latch of Netlist.signal
    | Memory of int
    | Misc of string
end

type t = {
  solver : Solver.t;
  net : Netlist.t;
  free_latches : Netlist.signal -> bool;
  frames : (int, (int, int) Hashtbl.t) Hashtbl.t; (* frame -> node id -> var *)
  tags : (Tag.meaning, int) Hashtbl.t;
  meanings : (int, Tag.meaning) Hashtbl.t;
  mutable next_tag : int;
  mutable act_init : Lit.t option;
  mutable false_lit : Lit.t option;
  mutable clauses_added : int;
  mutable aux_vars : int;
}

let create ?(free_latches = fun _ -> false) solver net =
  {
    solver;
    net;
    free_latches;
    frames = Hashtbl.create 64;
    tags = Hashtbl.create 64;
    meanings = Hashtbl.create 64;
    next_tag = 0;
    act_init = None;
    false_lit = None;
    clauses_added = 0;
    aux_vars = 0;
  }

let solver t = t.solver
let net t = t.net

let add_clause ?tag t lits =
  t.clauses_added <- t.clauses_added + 1;
  Solver.add_clause ?tag t.solver lits

let fresh_lit t =
  t.aux_vars <- t.aux_vars + 1;
  Lit.pos (Solver.new_var t.solver)

let tag_for t meaning =
  match Hashtbl.find_opt t.tags meaning with
  | Some tag -> tag
  | None ->
    let tag = t.next_tag in
    t.next_tag <- tag + 1;
    Hashtbl.replace t.tags meaning tag;
    Hashtbl.replace t.meanings tag meaning;
    tag

let meaning_of t tag = Hashtbl.find_opt t.meanings tag

let act_init t =
  match t.act_init with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    t.act_init <- Some l;
    l

let false_lit t =
  match t.false_lit with
  | Some l -> l
  | None ->
    let l = Lit.pos (Solver.new_var t.solver) in
    add_clause t [ Lit.negate l ];
    t.false_lit <- Some l;
    l

let frame_table t frame =
  match Hashtbl.find_opt t.frames frame with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    Hashtbl.replace t.frames frame tbl;
    tbl

let is_free_latch t l = t.free_latches l

(* Literal of a node (positive phase) at a frame, elaborating on demand. *)
let rec node_lit t frame id =
  let tbl = frame_table t frame in
  match Hashtbl.find_opt tbl id with
  | Some v -> Lit.pos v
  | None ->
    let v = Solver.new_var t.solver in
    (* Register before elaborating the definition: latch links reach back to
       earlier frames only, so no cycle goes through (frame, id) itself, but
       early registration keeps the recursion linear. *)
    Hashtbl.replace tbl id v;
    let lv = Lit.pos v in
    (match Netlist.node t.net id with
    | Netlist.Const_false -> add_clause t [ Lit.negate lv ]
    | Netlist.Input _ | Netlist.Mem_out _ -> ()
    | Netlist.And (a, b) ->
      let la = signal_lit t frame a in
      let lb = signal_lit t frame b in
      add_clause t [ Lit.negate lv; la ];
      add_clause t [ Lit.negate lv; lb ];
      add_clause t [ lv; Lit.negate la; Lit.negate lb ]
    | Netlist.Latch { init; next; _ } ->
      let lsig = Netlist.signal_of_node id false in
      if not (t.free_latches lsig) then begin
        let tag = tag_for t (Tag.Latch lsig) in
        if frame = 0 then begin
          match init with
          | Some b ->
            let a = act_init t in
            add_clause ~tag t [ Lit.negate a; (if b then lv else Lit.negate lv) ]
          | None -> ()
        end
        else begin
          match next with
          | Some n ->
            let ln = signal_lit t (frame - 1) n in
            add_clause ~tag t [ Lit.negate lv; ln ];
            add_clause ~tag t [ lv; Lit.negate ln ]
          | None -> invalid_arg "Cnf: latch with unset next-state"
        end
      end);
    lv

and signal_lit t frame s =
  let l = node_lit t frame (Netlist.node_of s) in
  if Netlist.is_complement s then Lit.negate l else l

let lit t ~frame s =
  if frame < 0 then invalid_arg "Cnf.lit: negative frame";
  signal_lit t frame s

let clauses_added t = t.clauses_added
let aux_vars t = t.aux_vars
