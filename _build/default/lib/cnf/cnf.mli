(** Time-frame expansion of a netlist into CNF.

    Implements the [Unroll] step of the BMC algorithms (Figs. 1–3 of the
    paper): every netlist signal gets a solver literal per time frame,
    created on demand.  AND gates receive standard Tseitin clauses; latches
    at frame [k > 0] get fresh variables linked to the previous frame's
    next-state literal by equivalence clauses {e tagged with the latch}, so
    that UNSAT cores translate into latch reasons ([Get_Latch_Reasons],
    Fig. 1 line 11).  Latch initial values are guarded by a dedicated
    activation literal {!act_init} so the same incremental solver serves
    initialised (forward) and uninitialised (backward-induction) queries.

    Memory read-data outputs ([Mem_out] nodes) become free variables per
    frame — the EMM layer constrains them; the explicit baseline never
    produces such nodes. *)

module Tag : sig
  (** What a clause tag refers to, for core-to-model mapping. *)
  type meaning =
    | Latch of Netlist.signal  (** transition-link / init clauses of a latch *)
    | Memory of int  (** EMM constraint clauses of a memory module *)
    | Misc of string
end

type t

val create :
  ?free_latches:(Netlist.signal -> bool) -> Satsolver.Solver.t -> Netlist.t -> t
(** [free_latches] marks latches abstracted into pseudo-primary inputs (PBA
    abstraction): they get fresh unconstrained variables in every frame. *)

val solver : t -> Satsolver.Solver.t
val net : t -> Netlist.t

val lit : t -> frame:int -> Netlist.signal -> Satsolver.Lit.t
(** The solver literal of a signal at a time frame ([frame >= 0]),
    elaborating the required cone on first use. *)

val fresh_lit : t -> Satsolver.Lit.t
(** A fresh positive literal, for auxiliary constraint variables. *)

val add_clause : ?tag:int -> t -> Satsolver.Lit.t list -> unit

val tag_for : t -> Tag.meaning -> int
(** Intern a tag.  The same meaning always yields the same tag. *)

val meaning_of : t -> int -> Tag.meaning option

val act_init : t -> Satsolver.Lit.t
(** Assumption literal activating the initial-state constraints (latch reset
    values; the EMM layer also guards reset memory contents with it). *)

val false_lit : t -> Satsolver.Lit.t
(** A literal constrained to false (the constant node). *)

val is_free_latch : t -> Netlist.signal -> bool
val clauses_added : t -> int
val aux_vars : t -> int
(** Variables created by {!fresh_lit} (EMM bookkeeping: constraint size). *)
