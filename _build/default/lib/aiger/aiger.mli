(** ASCII AIGER (aag) reading and writing for memory-free netlists.

    The industry interchange format of the hardware model-checking
    competitions: after {!Explicitmem.expand}, any design in this repository
    can be exported to other checkers (ABC, nuXmv, ...), and HWMCC-style
    benchmarks can be imported and verified with this platform's engines.

    Version 1.9 headers ([aag M I L O A B]) are produced when the netlist
    has safety properties: each property [p] is emitted as a bad-state
    literal [!p].  Plain [aag M I L O A] files are accepted on input, in
    which case outputs named [bad...] (or all outputs, if
    [outputs_are_bad]) become properties.  Latch reset values 0/1/arbitrary
    are supported via the optional third field of a latch line.

    Memories are not representable: {!to_string} raises
    [Invalid_argument] if any are present — expand them first. *)

val to_string : Netlist.t -> string
val save : Netlist.t -> string -> unit

val of_string : ?outputs_are_bad:bool -> string -> Netlist.t
(** Raises [Failure] with a line number on malformed input. *)

val load : ?outputs_are_bad:bool -> string -> Netlist.t
