(* Writer: canonical variable numbering — inputs 1..I, latches I+1..I+L, AND
   gates following in topological (node id) order. *)

let to_string net =
  if Netlist.memories net <> [] then
    invalid_arg "Aiger.to_string: netlist has memory modules; expand them first";
  let inputs = Netlist.inputs net in
  let latches = Netlist.latches net in
  let var_of_node = Hashtbl.create 1024 in
  let next_var = ref 1 in
  let assign s =
    Hashtbl.replace var_of_node (Netlist.node_of s) !next_var;
    incr next_var
  in
  List.iter assign inputs;
  List.iter assign latches;
  let ands = ref [] in
  for id = 1 to Netlist.num_nodes net - 1 do
    match Netlist.node net id with
    | Netlist.And (a, b) ->
      Hashtbl.replace var_of_node id !next_var;
      incr next_var;
      ands := (id, a, b) :: !ands
    | Netlist.Const_false | Netlist.Input _ | Netlist.Latch _ -> ()
    | Netlist.Mem_out _ -> invalid_arg "Aiger.to_string: memory output present"
  done;
  let ands = List.rev !ands in
  let lit s =
    let v = Hashtbl.find var_of_node (Netlist.node_of s) in
    (2 * v) + if Netlist.is_complement s then 1 else 0
  in
  let lit s =
    if s = Netlist.false_ then 0 else if s = Netlist.true_ then 1 else lit s
  in
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let m = !next_var - 1 in
  let outputs = Netlist.outputs net in
  let properties = Netlist.properties net in
  line "aag %d %d %d %d %d %d" m (List.length inputs) (List.length latches)
    (List.length outputs) (List.length ands) (List.length properties);
  List.iter (fun s -> line "%d" (lit s)) inputs;
  List.iter
    (fun l ->
      let self = lit l in
      let next = lit (Netlist.latch_next net l) in
      match Netlist.latch_init net l with
      | Some false -> line "%d %d" self next
      | Some true -> line "%d %d 1" self next
      | None -> line "%d %d %d" self next self (* uninitialised: its own literal *))
    latches;
  List.iter (fun (_, s) -> line "%d" (lit s)) outputs;
  (* Bad-state literals: the negation of each safety property. *)
  List.iter (fun (_, s) -> line "%d" (lit (Netlist.not_ s))) properties;
  List.iter
    (fun (id, a, b) ->
      let l0 = lit a and l1 = lit b in
      let hi = max l0 l1 and lo = min l0 l1 in
      line "%d %d %d" (2 * Hashtbl.find var_of_node id) hi lo)
    ands;
  List.iteri (fun i s ->
      match Netlist.node net (Netlist.node_of s) with
      | Netlist.Input name -> line "i%d %s" i name
      | _ -> ())
    inputs;
  List.iteri (fun i l -> line "l%d %s" i (Netlist.latch_name net l)) latches;
  List.iteri (fun i (name, _) -> line "o%d %s" i name) outputs;
  List.iteri (fun i (name, _) -> line "b%d %s" i name) properties;
  line "c";
  line "written by emmver";
  Buffer.contents buf

let save net path =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () ->
      output_string out (to_string net))

(* {2 Reader} *)

let of_string ?(outputs_are_bad = false) text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let pos = ref 0 in
  let fail fmt =
    Printf.ksprintf (fun s -> failwith (Printf.sprintf "aag line %d: %s" (!pos + 1) s)) fmt
  in
  let next_line () =
    if !pos >= Array.length lines then fail "unexpected end of file"
    else begin
      let l = String.trim lines.(!pos) in
      incr pos;
      l
    end
  in
  let ints_of line = List.filter_map int_of_string_opt (String.split_on_char ' ' line) in
  let header = next_line () in
  let m, ni, nl, no, na, nb =
    match String.split_on_char ' ' header |> List.filter (( <> ) "") with
    | "aag" :: rest -> (
      match List.map int_of_string rest with
      | [ m; i; l; o; a ] -> (m, i, l, o, a, 0)
      | [ m; i; l; o; a; b ] -> (m, i, l, o, a, b)
      | m :: i :: l :: o :: a :: b :: _ -> (m, i, l, o, a, b)
      | _ -> fail "bad header")
    | _ -> fail "expected aag header"
  in
  let input_lits = Array.init ni (fun _ -> match ints_of (next_line ()) with
      | [ l ] -> l
      | _ -> fail "bad input line")
  in
  let latch_defs =
    Array.init nl (fun _ ->
        match ints_of (next_line ()) with
        | [ self; next ] -> (self, next, Some false)
        | [ self; next; 0 ] -> (self, next, Some false)
        | [ self; next; 1 ] -> (self, next, Some true)
        | [ self; next; r ] when r = self -> (self, next, None)
        | _ -> fail "bad latch line")
  in
  let output_lits = Array.init no (fun _ -> match ints_of (next_line ()) with
      | [ l ] -> l
      | _ -> fail "bad output line")
  in
  let bad_lits = Array.init nb (fun _ -> match ints_of (next_line ()) with
      | [ l ] -> l
      | _ -> fail "bad bad-state line")
  in
  let and_defs =
    Array.init na (fun _ ->
        match ints_of (next_line ()) with
        | [ lhs; r0; r1 ] -> (lhs, r0, r1)
        | _ -> fail "bad and line")
  in
  (* Symbol table. *)
  let symbols = Hashtbl.create 64 in
  (try
     while !pos < Array.length lines do
       let l = String.trim lines.(!pos) in
       incr pos;
       if l = "c" then raise Exit
       else if l <> "" then
         match String.index_opt l ' ' with
         | Some sp -> Hashtbl.replace symbols (String.sub l 0 sp)
                        (String.sub l (sp + 1) (String.length l - sp - 1))
         | None -> ()
     done
   with Exit -> ());
  let symbol kind i default =
    match Hashtbl.find_opt symbols (Printf.sprintf "%s%d" kind i) with
    | Some s -> s
    | None -> default
  in
  ignore m;
  let net = Netlist.create () in
  (* var -> (kind, index) resolution tables. *)
  let input_of_var = Hashtbl.create 64 in
  Array.iteri (fun i l -> Hashtbl.replace input_of_var (l / 2) i) input_lits;
  let latch_of_var = Hashtbl.create 64 in
  Array.iteri (fun i (self, _, _) -> Hashtbl.replace latch_of_var (self / 2) i) latch_defs;
  let and_of_var = Hashtbl.create 64 in
  Array.iter (fun (lhs, r0, r1) -> Hashtbl.replace and_of_var (lhs / 2) (r0, r1))
    and_defs;
  let input_signals =
    Array.init ni (fun i -> Netlist.input net (symbol "i" i (Printf.sprintf "i%d" i)))
  in
  let latch_signals =
    Array.init nl (fun i ->
        let _, _, init = latch_defs.(i) in
        Netlist.latch net ~init (symbol "l" i (Printf.sprintf "l%d" i)))
  in
  let memo = Hashtbl.create 256 in
  let rec signal_of_lit l =
    if l = 0 then Netlist.false_
    else if l = 1 then Netlist.true_
    else
      let v = l / 2 in
      let s =
        match Hashtbl.find_opt memo v with
        | Some s -> s
        | None ->
          let s =
            match Hashtbl.find_opt input_of_var v with
            | Some i -> input_signals.(i)
            | None -> (
              match Hashtbl.find_opt latch_of_var v with
              | Some i -> latch_signals.(i)
              | None -> (
                match Hashtbl.find_opt and_of_var v with
                | Some (r0, r1) ->
                  Netlist.and_ net (signal_of_lit r0) (signal_of_lit r1)
                | None -> failwith (Printf.sprintf "aag: undefined variable %d" v)))
          in
          Hashtbl.replace memo v s;
          s
      in
      if l land 1 = 1 then Netlist.not_ s else s
  in
  Array.iteri
    (fun i (_, next, _) -> Netlist.set_next net latch_signals.(i) (signal_of_lit next))
    latch_defs;
  Array.iteri
    (fun i l ->
      let name = symbol "o" i (Printf.sprintf "o%d" i) in
      let s = signal_of_lit l in
      if outputs_are_bad then Netlist.add_property net name (Netlist.not_ s)
      else Netlist.add_output net name s)
    output_lits;
  Array.iteri
    (fun i l ->
      let name = symbol "b" i (Printf.sprintf "b%d" i) in
      Netlist.add_property net name (Netlist.not_ (signal_of_lit l)))
    bad_lits;
  net

let load ?outputs_are_bad path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string ?outputs_are_bad text
