(** Textual interchange format for netlists with memory modules ("EMN").

    A line-oriented format in the spirit of ASCII AIGER, extended with
    word-level memory modules so that embedded-memory designs survive the
    round trip.  Node definitions appear in topological (id) order; signals
    are written as [<node-id>] or [!<node-id>] for the complement.

    {v
    emn 1
    node 3 input we
    node 4 latch count[0] 0      # init 0 | 1 | x (arbitrary)
    node 7 and 6 !4
    memory 0 ram 4 8 zeros       # id name AW DW zeros|arbitrary|words ...
    wport 0 8 10 11 12 13 : 14 15 16 17 18 19 20 21
    rport 0 9 22 23 24 25 : 30 31 32 33 34 35 36 37
    next 4 !7
    property safe !40
    output full 12
    v}

    Loading reconstructs the design through the ordinary {!Netlist}
    construction API (structural hashing may merge duplicate gates, so node
    ids are not preserved — behaviour is). *)

val to_string : Netlist.t -> string
val save : Netlist.t -> string -> unit

val of_string : string -> Netlist.t
(** Raises [Failure] with a line number on malformed input. *)

val load : string -> Netlist.t
